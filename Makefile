# Tier-1 verification and CI targets.
#
#   make tier1       build + vet + test          (the ROADMAP tier-1 gate)
#   make lint        gofmt -l empty + go vet (+ staticcheck when installed)
#   make race        full suite under -race      (guards the parallel runner)
#   make ci          tier1 + race
#   make bench       paper-regeneration + scheduler benchmarks
#   make race-live   loopback server/client under -race (live network path)
#   make profile     cpu.pprof + mem.pprof of a full-matrix run (go tool pprof)
#   make bench-json  run committed benchmarks, write $(BENCH_JSON) trajectory
#   make bench-diff  compare $(BENCH_OLD) vs $(BENCH_NEW), fail on allocs/op regression
#   make fuzz-smoke  run every fuzz target briefly (native Go fuzzing)
#   make cover       whole-repo coverage.out + enforce the faults/sweep/fleet floors
#   make sweep-smoke kill a sweep with SIGKILL, resume it, diff vs uninterrupted
#   make fleet-load  10k-session loadgen under -race with a heap ceiling
#   make fleet-cluster  root + 3 collectors over the wire, SIGKILL one mid-run
#   make sweep-shard-cluster  coordinator + 3 shard workers over loopback,
#                             SIGKILL one mid-run, merged export must be
#                             byte-identical to the single-process sweep

GO ?= go

.PHONY: all build vet test lint race race-core race-live tier1 ci bench profile bench-json bench-diff fuzz-smoke cover sweep-smoke fleet-load fleet-cluster sweep-shard-cluster

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# lint fails when any file needs gofmt, then vets. staticcheck runs only
# when present on PATH (CI images without it skip with a note rather than
# requiring a network install).
lint:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (gofmt + go vet ran)"; \
	fi

# race runs everything under the race detector; race-core is the quick
# loop for the parallel study scheduler.
race:
	$(GO) test -race ./...

race-core:
	$(GO) test -race ./internal/core/...

# race-live exercises the real-socket path (loopback only): the live
# measurement server, its drain/observability wiring and the client
# drivers, with a timeout so a hung drain fails fast instead of wedging CI.
race-live:
	$(GO) test -race -timeout 180s ./internal/server/... ./internal/liveclient/...

tier1: build vet test

ci: tier1 race

bench:
	$(GO) test -bench=. -benchmem .

# profile captures pprof CPU and allocation profiles of a representative
# full-matrix study (the Figure 3 workload the allocation work targets).
# Inspect with `go tool pprof -top mem.pprof` or the pprof web UI; the
# allocation war is fought from the alloc_objects view of mem.pprof.
PROFILE_RUNS ?= 20
profile:
	$(GO) run ./cmd/appraise -fig 3 -runs $(PROFILE_RUNS) \
		-cpuprofile cpu.pprof -memprofile mem.pprof >/dev/null
	@echo "wrote cpu.pprof and mem.pprof (inspect: go tool pprof -top mem.pprof)"

# bench-json runs every committed benchmark and converts the output into
# the perf-trajectory snapshot BENCH_<pr>.json (ns/op, B/op, allocs/op
# per benchmark). BENCHTIME=3x trades a little CI time for numbers that
# are not single-iteration noise; override with BENCHTIME=100ms (or more)
# for lower-variance local runs. The setting is recorded in the snapshot
# header so downstream diffs know what they are looking at.
BENCH_JSON ?= BENCH_ci.json
BENCHTIME ?= 3x
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... > bench.out
	$(GO) run ./cmd/benchjson -in bench.out -benchtime $(BENCHTIME) -out $(BENCH_JSON)
	@rm -f bench.out

# bench-diff compares two trajectory snapshots and exits non-zero when
# any benchmark's allocs/op regressed past 20% or ns/op past 25% (above
# the 1µs noise floor). Baseline discovery lives in benchdiff itself
# (numerically highest committed BENCH_<n>.json, loud error when none
# exists — the logic is unit-tested in cmd/benchdiff); override with
# BENCH_OLD=.... On GitHub runners benchdiff also appends a Markdown
# delta table to $GITHUB_STEP_SUMMARY.
BENCH_OLD ?=
BENCH_NEW ?= BENCH_ci.json
bench-diff:
	$(GO) run ./cmd/benchdiff $(if $(BENCH_OLD),-old $(BENCH_OLD)) -new $(BENCH_NEW)

# fuzz-smoke runs each native fuzz target briefly. Go allows one -fuzz
# target per invocation, so the budget is split across the seven. The
# weekly extended run (.github/workflows/fuzz-weekly.yml) uses the same
# target with FUZZTIME=100s.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz '^FuzzPacketParse$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/netsim/
	$(GO) test -fuzz '^FuzzParseRequest$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/httpsim/
	$(GO) test -fuzz '^FuzzParseResponse$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/httpsim/
	$(GO) test -fuzz '^FuzzManifestParse$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/sweep/
	$(GO) test -fuzz '^FuzzCellDecode$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/sweep/
	$(GO) test -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/fleetwire/
	$(GO) test -fuzz '^FuzzControlDecode$$' -fuzztime $(FUZZTIME) -run '^$$' ./internal/shard/

# cover writes the whole-repo profile to coverage.out (the CI artifact)
# and enforces the statement-coverage floors on the fault-injection
# layer, the sweep cache, and the fleet aggregation plane (whose
# correctness claims rest on their tests).
FAULTS_COVER_MIN ?= 85
SWEEP_COVER_MIN ?= 85
FLEET_COVER_MIN ?= 85
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) test -coverprofile=coverage_faults.out ./internal/faults/
	@total="$$($(GO) tool cover -func=coverage_faults.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}')"; \
	echo "internal/faults coverage: $$total% (floor $(FAULTS_COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(FAULTS_COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "internal/faults coverage below floor"; exit 1; }
	@rm -f coverage_faults.out
	$(GO) test -coverprofile=coverage_sweep.out ./internal/sweep/
	@total="$$($(GO) tool cover -func=coverage_sweep.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}')"; \
	echo "internal/sweep coverage: $$total% (floor $(SWEEP_COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(SWEEP_COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "internal/sweep coverage below floor"; exit 1; }
	@rm -f coverage_sweep.out
	$(GO) test -coverprofile=coverage_fleet.out ./internal/fleet/
	@total="$$($(GO) tool cover -func=coverage_fleet.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}')"; \
	echo "internal/fleet coverage: $$total% (floor $(FLEET_COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(FLEET_COVER_MIN)" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || \
		{ echo "internal/fleet coverage below floor"; exit 1; }
	@rm -f coverage_fleet.out

# sweep-smoke proves the kill/resume contract end to end on the real CLI:
# a cold sweep is SIGKILLed mid-flight (no chance to clean up), resumed
# from its manifest, and the resumed CSV must be byte-identical to an
# uninterrupted sweep of the same configuration in a fresh cache. The runs
# count is sized so the cold sweep takes tens of seconds — long enough
# that the 2 s SIGKILL reliably lands mid-sweep.
SWEEP_SMOKE_DIR ?= sweep-smoke.tmp
SWEEP_SMOKE_RUNS ?= 2500
SWEEP_SMOKE_FLAGS = -sweep -runs $(SWEEP_SMOKE_RUNS) -seed 42 -faults clean,lossy1pct
sweep-smoke:
	rm -rf $(SWEEP_SMOKE_DIR)
	mkdir -p $(SWEEP_SMOKE_DIR)
	$(GO) build -o $(SWEEP_SMOKE_DIR)/appraise ./cmd/appraise
	-timeout -s KILL 2 $(SWEEP_SMOKE_DIR)/appraise $(SWEEP_SMOKE_FLAGS) \
		-cache-dir $(SWEEP_SMOKE_DIR)/killed >/dev/null 2>&1
	test -f $(SWEEP_SMOKE_DIR)/killed/manifest.jsonl
	$(SWEEP_SMOKE_DIR)/appraise $(SWEEP_SMOKE_FLAGS) -resume \
		-cache-dir $(SWEEP_SMOKE_DIR)/killed -csv $(SWEEP_SMOKE_DIR)/resumed.csv >/dev/null
	$(SWEEP_SMOKE_DIR)/appraise $(SWEEP_SMOKE_FLAGS) \
		-cache-dir $(SWEEP_SMOKE_DIR)/cold -csv $(SWEEP_SMOKE_DIR)/cold.csv >/dev/null
	cmp $(SWEEP_SMOKE_DIR)/resumed.csv $(SWEEP_SMOKE_DIR)/cold.csv
	@echo "sweep-smoke: resumed export is byte-identical to an uninterrupted sweep"
	@rm -rf $(SWEEP_SMOKE_DIR)

# fleet-load is the CI-sized live-observability load proof: 10k concurrent
# synthetic sessions ingested under the race detector, with loadgen's own
# assertions (session floor, sample conservation, /metrics byte-stability)
# plus a live-heap ceiling. The full 100k-session shape documented in
# EXPERIMENTS.md is the same binary without -race and with the defaults.
FLEET_SESSIONS ?= 10000
FLEET_ROUNDS ?= 3
FLEET_HEAP_MB ?= 192
fleet-load:
	$(GO) run -race ./cmd/loadgen -sessions $(FLEET_SESSIONS) -rounds $(FLEET_ROUNDS) \
		-assert-heap-mb $(FLEET_HEAP_MB)

# fleet-cluster proves the multi-node observability plane end to end on
# real binaries: a bmagg root plus three loadgen collectors shipping
# delta-sketch frames over HTTP, all built with -race. One collector is
# SIGKILLed mid-run; the root must keep serving /readyz, /metrics (byte-
# stable double scrape) and /live/history with the survivors' frames
# still merging. The in-process proofs run first under -race: cluster
# rows exactly equal to each collector's local snapshot regardless of
# frame arrival order, duplicate/gap/version fault paths, and the
# never-block uplink contract.
FLEET_CLUSTER_DIR ?= fleet-cluster.tmp
FLEET_CLUSTER_PORT ?= 19410
fleet-cluster:
	$(GO) test -race -count=1 -run 'TestCluster|TestAggregator|TestUplink|TestFourNode' \
		./internal/fleet/ ./internal/fleetwire/
	rm -rf $(FLEET_CLUSTER_DIR)
	mkdir -p $(FLEET_CLUSTER_DIR)
	$(GO) build -race -o $(FLEET_CLUSTER_DIR)/bmagg ./cmd/bmagg
	$(GO) build -race -o $(FLEET_CLUSTER_DIR)/loadgen ./cmd/loadgen
	@set -e; \
	root=http://127.0.0.1:$(FLEET_CLUSTER_PORT); \
	$(FLEET_CLUSTER_DIR)/bmagg -addr 127.0.0.1:$(FLEET_CLUSTER_PORT) -interval 300ms \
		>$(FLEET_CLUSTER_DIR)/root.log 2>&1 & AGG=$$!; \
	trap 'kill $$AGG 2>/dev/null || true' EXIT; \
	sleep 1; \
	code=$$(curl -s -m 5 -o /dev/null -w '%{http_code}' $$root/readyz); \
	[ "$$code" = 503 ] || { echo "fleet-cluster: /readyz before any frame = $$code, want 503"; exit 1; }; \
	for n in c1 c2 c3; do \
		$(FLEET_CLUSTER_DIR)/loadgen -sessions 1500 -rounds 6 -fanin 150ms -round-delay 500ms \
			-uplink $$root/ingest -node $$n >$(FLEET_CLUSTER_DIR)/$$n.log 2>&1 & \
		eval "$$n=$$!"; \
	done; \
	sleep 2; kill -9 $$c3 2>/dev/null || true; \
	wait $$c1; wait $$c2; wait $$c3 2>/dev/null || true; \
	sleep 1; \
	code=$$(curl -s -m 5 -o /dev/null -w '%{http_code}' $$root/readyz); \
	[ "$$code" = 200 ] || { echo "fleet-cluster: /readyz after the kill = $$code, want 200"; exit 1; }; \
	stable=; i=0; \
	while [ $$i -lt 5 ]; do \
		curl -s -m 5 $$root/metrics >$(FLEET_CLUSTER_DIR)/m1.prom; \
		curl -s -m 5 $$root/metrics >$(FLEET_CLUSTER_DIR)/m2.prom; \
		if cmp -s $(FLEET_CLUSTER_DIR)/m1.prom $(FLEET_CLUSTER_DIR)/m2.prom; then stable=1; break; fi; \
		i=$$((i+1)); \
	done; \
	[ -n "$$stable" ] || { echo "fleet-cluster: root /metrics never byte-stable across a double scrape"; exit 1; }; \
	grep -q '^fleet_agg_nodes 3$$' $(FLEET_CLUSTER_DIR)/m1.prom || \
		{ echo "fleet-cluster: root did not see 3 nodes"; grep '^fleet_agg' $(FLEET_CLUSTER_DIR)/m1.prom; exit 1; }; \
	grep -q '^fleet_agg_frames_rejected_total{reason="corrupt"} 0$$' $(FLEET_CLUSTER_DIR)/m1.prom || \
		{ echo "fleet-cluster: root rejected frames from healthy collectors"; exit 1; }; \
	curl -s -m 5 "$$root/live/history?since=0" >$(FLEET_CLUSTER_DIR)/history.json; \
	grep -q '"node":"c1"' $(FLEET_CLUSTER_DIR)/history.json || \
		{ echo "fleet-cluster: history has no rows for surviving node c1"; exit 1; }; \
	grep -q '"node":"c2"' $(FLEET_CLUSTER_DIR)/history.json || \
		{ echo "fleet-cluster: history has no rows for surviving node c2"; exit 1; }; \
	grep -q '^loadgen: PASS$$' $(FLEET_CLUSTER_DIR)/c1.log || \
		{ echo "fleet-cluster: collector c1 failed"; tail -20 $(FLEET_CLUSTER_DIR)/c1.log; exit 1; }; \
	grep -q '^loadgen: PASS$$' $(FLEET_CLUSTER_DIR)/c2.log || \
		{ echo "fleet-cluster: collector c2 failed"; tail -20 $(FLEET_CLUSTER_DIR)/c2.log; exit 1; }; \
	kill $$AGG 2>/dev/null; wait $$AGG 2>/dev/null || true; trap - EXIT; \
	echo "fleet-cluster: root survived a SIGKILLed collector; cluster view stayed live and byte-stable"
	@rm -rf $(FLEET_CLUSTER_DIR)

# sweep-shard-cluster proves the distributed shard runner end to end on
# real processes: a coordinator plus three workers over loopback execute
# the same sweep a single process runs first, one worker is SIGKILLed
# mid-run (its leases must expire and be reassigned), and the merged
# stdout report and CSV must be byte-identical to the single-process
# artifacts. The in-process equivalence/crash/lease proofs run first
# under -race. The runs count is sized so the worker phase takes several
# seconds — long enough that the 2 s SIGKILL reliably lands while the
# victim still holds leases; the kill failing because the worker already
# exited fails the target (an un-exercised crash path is not a pass).
SHARD_CLUSTER_DIR ?= shard-cluster.tmp
SHARD_CLUSTER_PORT ?= 19420
SHARD_CLUSTER_RUNS ?= 2500
SHARD_CLUSTER_FLAGS = -runs $(SHARD_CLUSTER_RUNS) -seed 42 -faults clean,lossy1pct
sweep-shard-cluster:
	$(GO) test -race -count=1 -run 'TestShard|TestWire|TestPartition' ./internal/shard/
	rm -rf $(SHARD_CLUSTER_DIR)
	mkdir -p $(SHARD_CLUSTER_DIR)
	$(GO) build -o $(SHARD_CLUSTER_DIR)/appraise ./cmd/appraise
	$(SHARD_CLUSTER_DIR)/appraise -sweep $(SHARD_CLUSTER_FLAGS) \
		-cache-dir $(SHARD_CLUSTER_DIR)/solo -csv $(SHARD_CLUSTER_DIR)/solo.csv \
		>$(SHARD_CLUSTER_DIR)/solo.txt 2>$(SHARD_CLUSTER_DIR)/solo.log
	@set -e; \
	addr=127.0.0.1:$(SHARD_CLUSTER_PORT); \
	$(SHARD_CLUSTER_DIR)/appraise -shard-coordinator $$addr $(SHARD_CLUSTER_FLAGS) \
		-shard-count 16 -shard-lease-ttl 2s \
		-cache-dir $(SHARD_CLUSTER_DIR)/cluster -csv $(SHARD_CLUSTER_DIR)/cluster.csv \
		>$(SHARD_CLUSTER_DIR)/cluster.txt 2>$(SHARD_CLUSTER_DIR)/coord.log & COORD=$$!; \
	trap 'kill $$COORD 2>/dev/null || true' EXIT; \
	sleep 1; \
	for n in w1 w2 w3; do \
		$(SHARD_CLUSTER_DIR)/appraise -shard-worker $$addr -shard-name $$n \
			$(SHARD_CLUSTER_FLAGS) -cache-dir $(SHARD_CLUSTER_DIR)/cluster \
			>$(SHARD_CLUSTER_DIR)/$$n.log 2>&1 & \
		eval "$$n=$$!"; \
	done; \
	sleep 2; \
	if kill -9 $$w2 2>/dev/null; then \
		echo "sweep-shard-cluster: SIGKILLed worker w2 mid-run"; \
	else \
		echo "sweep-shard-cluster: w2 finished before the kill — raise SHARD_CLUSTER_RUNS"; exit 1; \
	fi; \
	wait $$w1 || { echo "sweep-shard-cluster: worker w1 failed"; tail -20 $(SHARD_CLUSTER_DIR)/w1.log; exit 1; }; \
	wait $$w3 || { echo "sweep-shard-cluster: worker w3 failed"; tail -20 $(SHARD_CLUSTER_DIR)/w3.log; exit 1; }; \
	wait $$w2 2>/dev/null || true; \
	wait $$COORD || { echo "sweep-shard-cluster: coordinator failed"; tail -20 $(SHARD_CLUSTER_DIR)/coord.log; exit 1; }; \
	trap - EXIT; \
	cmp $(SHARD_CLUSTER_DIR)/solo.csv $(SHARD_CLUSTER_DIR)/cluster.csv || \
		{ echo "sweep-shard-cluster: merged CSV differs from the single-process sweep"; exit 1; }; \
	cmp $(SHARD_CLUSTER_DIR)/solo.txt $(SHARD_CLUSTER_DIR)/cluster.txt || \
		{ echo "sweep-shard-cluster: merged report differs from the single-process sweep"; exit 1; }; \
	echo "sweep-shard-cluster: merged export byte-identical to the single-process sweep after a SIGKILLed worker"
	@rm -rf $(SHARD_CLUSTER_DIR)
