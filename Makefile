# Tier-1 verification and CI targets.
#
#   make tier1   build + vet + test          (the ROADMAP tier-1 gate)
#   make race    full suite under -race      (guards the parallel runner)
#   make ci      tier1 + race
#   make bench   paper-regeneration + scheduler benchmarks

GO ?= go

.PHONY: all build vet test race race-core tier1 ci bench

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs everything under the race detector; race-core is the quick
# loop for the parallel study scheduler.
race:
	$(GO) test -race ./...

race-core:
	$(GO) test -race ./internal/core/...

tier1: build vet test

ci: tier1 race

bench:
	$(GO) test -bench=. -benchmem .
