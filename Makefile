# Tier-1 verification and CI targets.
#
#   make tier1       build + vet + test          (the ROADMAP tier-1 gate)
#   make race        full suite under -race      (guards the parallel runner)
#   make ci          tier1 + race
#   make bench       paper-regeneration + scheduler benchmarks
#   make race-live   loopback server/client under -race (live network path)
#   make bench-json  run committed benchmarks, write $(BENCH_JSON) trajectory
#   make bench-diff  compare $(BENCH_OLD) vs $(BENCH_NEW), fail on allocs/op regression

GO ?= go

.PHONY: all build vet test race race-core race-live tier1 ci bench bench-json bench-diff

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs everything under the race detector; race-core is the quick
# loop for the parallel study scheduler.
race:
	$(GO) test -race ./...

race-core:
	$(GO) test -race ./internal/core/...

# race-live exercises the real-socket path (loopback only): the live
# measurement server, its drain/observability wiring and the client
# drivers, with a timeout so a hung drain fails fast instead of wedging CI.
race-live:
	$(GO) test -race -timeout 180s ./internal/server/... ./internal/liveclient/...

tier1: build vet test

ci: tier1 race

bench:
	$(GO) test -bench=. -benchmem .

# bench-json runs every committed benchmark and converts the output into
# the perf-trajectory snapshot BENCH_<pr>.json (ns/op, B/op, allocs/op
# per benchmark). BENCHTIME=3x trades a little CI time for numbers that
# are not single-iteration noise; override with BENCHTIME=100ms (or more)
# for lower-variance local runs. The setting is recorded in the snapshot
# header so downstream diffs know what they are looking at.
BENCH_JSON ?= BENCH_4.json
BENCHTIME ?= 3x
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... > bench.out
	$(GO) run ./cmd/benchjson -in bench.out -benchtime $(BENCHTIME) -out $(BENCH_JSON)
	@rm -f bench.out

# bench-diff compares two trajectory snapshots and exits non-zero when any
# benchmark's allocs/op regressed by more than 20% — the allocation gate
# CI runs against the committed baseline.
BENCH_OLD ?= BENCH_4.json
BENCH_NEW ?= BENCH_ci.json
bench-diff:
	$(GO) run ./cmd/benchdiff -old $(BENCH_OLD) -new $(BENCH_NEW)
