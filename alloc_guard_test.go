package browsermetric

import "testing"

// TestStudyAllocCeiling is the top-level allocation regression guard for
// the zero-allocation hot-path work: a full Figure 3 study (every
// method × profile cell, 20 runs each) must stay under the ceiling. The
// seed study needed ~740k allocations for the same workload; the pooled
// event engine, sealed stats views and interned labels brought it under
// 150k, and the arena tier (worker-owned slab recycling plus persistent
// per-cell runner state) under 16k. The ceiling keeps ~50% headroom for
// benign drift; the near-zero warm-path contract lives in
// TestWarmRunSteadyStateAllocs.
func TestStudyAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell study in -short mode")
	}
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := RunStudy(StudyOptions{Runs: 20, BaseSeed: 1}); err != nil {
			t.Error(err)
		}
	})
	const ceiling = 24_000
	if allocs > ceiling {
		t.Fatalf("Fig3-style study allocated %.0f objects, ceiling %d", allocs, ceiling)
	}
}

// TestCleanFaultProfileAllocCeiling is the zero-overhead-when-disabled
// guard for the fault-injection layer: selecting the Clean profile must
// not install an impairment (the link keeps its nil fast path), so the
// allocation count stays under the same ceiling as the pre-faults study.
func TestCleanFaultProfileAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell study in -short mode")
	}
	allocs := testing.AllocsPerRun(1, func() {
		opts := StudyOptions{Runs: 20, BaseSeed: 1}
		opts.Testbed.Faults = FaultClean
		if _, err := RunStudy(opts); err != nil {
			t.Error(err)
		}
	})
	const ceiling = 24_000
	if allocs > ceiling {
		t.Fatalf("Clean-profile study allocated %.0f objects, ceiling %d", allocs, ceiling)
	}
}
