// Benchmarks for the extension experiments: derived-metric impact
// (jitter, throughput, loss), overhead attribution, and the server-side
// overhead sweep — the design points EXPERIMENTS.md records beyond the
// paper's own tables/figures.
package browsermetric

import (
	"testing"
	"time"
)

// BenchmarkImpact_Jitter measures how much jitter each method class
// injects on a 20-probe train (Section 2.2's jitter claim).
func BenchmarkImpact_Jitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sock, err := MeasureJitter(MethodJavaTCP, Firefox, Windows, Options{Timing: NanoTime}, 20)
		if err != nil {
			b.Fatal(err)
		}
		flash, err := MeasureJitter(MethodFlashGet, Firefox, Windows, Options{Timing: NanoTime}, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sock.Inflation(), "socket_jitter_ms")
		b.ReportMetric(flash.Inflation(), "flash_jitter_ms")
	}
}

// BenchmarkImpact_Throughput measures the round-trip throughput bias of a
// 256 KiB transfer (Section 2.2's throughput claim).
func BenchmarkImpact_Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		xhr, err := MeasureThroughput(MethodXHRGet, IE, Windows, Options{Timing: NanoTime}, 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		sock, err := MeasureThroughput(MethodJavaTCP, IE, Windows, Options{Timing: NanoTime}, 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*xhr.Bias(), "xhr_bias_pct")
		b.ReportMetric(100*sock.Bias(), "socket_bias_pct")
	}
}

// BenchmarkImpact_Loss verifies tool-reported and capture-observed loss
// agree under 10% injected frame loss (Section 2's no-distortion claim).
func BenchmarkImpact_Loss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		li, err := MeasureLoss(Chrome, Ubuntu, Options{
			Timing:  NanoTime,
			Testbed: TestbedConfig{Seed: int64(i + 1), LossRate: 0.10},
		}, 100)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*li.BrowserLoss, "tool_loss_pct")
		b.ReportMetric(100*li.WireLoss, "wire_loss_pct")
	}
}

// BenchmarkImpact_Attribution decomposes Opera's Flash GET Δd1 into
// mechanism shares (the Section 4.1 investigation, automated).
func BenchmarkImpact_Attribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, attributed, err := AppraiseAttributed(MethodFlashGet, Opera, Windows, Options{
			Timing: NanoTime, Runs: benchRuns,
		})
		if err != nil {
			b.Fatal(err)
		}
		var hs, resid float64
		n := 0
		for _, a := range attributed {
			if a.Round != 1 {
				continue
			}
			hs += float64(a.Attribution.Handshake) / float64(time.Millisecond)
			resid += float64(a.Residual) / float64(time.Millisecond)
			n++
		}
		b.ReportMetric(hs/float64(n), "handshake_ms")
		b.ReportMetric(resid/float64(n), "residual_ms")
	}
}

// BenchmarkImpact_ServerOverhead sweeps server processing cost and shows
// the wire RTT absorbing it one-for-one (the Section 7 extension).
func BenchmarkImpact_ServerOverhead(b *testing.B) {
	costs := []time.Duration{0, 5 * time.Millisecond, 10 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		rows, err := MeasureServerOverhead(MethodXHRGet, Chrome, Ubuntu, Options{
			Timing: NanoTime, Runs: 8,
		}, costs)
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.ServerShare())/1e6, "server_share_ms")
		b.ReportMetric(last.ClientOverhead, "client_d2_ms")
	}
}
