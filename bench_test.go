// Benchmark harness: one bench per table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the paper-vs-measured record), plus
// ablation benches for the design choices DESIGN.md calls out and micro
// benches for the substrates.
//
// The custom metrics (reported via b.ReportMetric) carry the
// paper-comparable numbers: medians and means in milliseconds. Run with
//
//	go test -bench=. -benchmem
package browsermetric

import (
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/core"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/netsim"
	"github.com/browsermetric/browsermetric/internal/testbed"
	"github.com/browsermetric/browsermetric/internal/wssim"
)

// benchRuns keeps regeneration benches affordable while preserving every
// distributional shape (the paper uses 50; medians stabilize well below).
const benchRuns = 20

// BenchmarkTable1_Taxonomy regenerates Table 1 (method taxonomy).
func BenchmarkTable1_Taxonomy(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(Table1())
	}
	b.ReportMetric(float64(n), "bytes")
}

// BenchmarkTable2_Matrix regenerates Table 2 (browser/system matrix).
func BenchmarkTable2_Matrix(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(Table2())
	}
	b.ReportMetric(float64(n), "bytes")
}

// BenchmarkRunStudy times the full measurement matrix on the strictly
// sequential scheduler (Workers: 1) — the perf baseline the parallel
// engine is compared against (see EXPERIMENTS.md).
func BenchmarkRunStudy(b *testing.B) {
	benchStudy(b, 1)
}

// BenchmarkRunStudyParallel times the same matrix on a GOMAXPROCS-wide
// worker pool. Cells are embarrassingly parallel (isolated testbeds,
// position-derived seeds), so speedup tracks core count; the determinism
// suite in internal/core proves the exports stay byte-identical.
func BenchmarkRunStudyParallel(b *testing.B) {
	benchStudy(b, 0) // 0 = runtime.GOMAXPROCS(0) workers
}

func benchStudy(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		st, err := RunStudy(StudyOptions{Runs: benchRuns, BaseSeed: int64(i), Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(st.Stats.Workers), "workers")
			b.ReportMetric(float64(st.Stats.CellsFinished), "cells")
		}
	}
}

// BenchmarkFig3_DelayOverheadBoxes regenerates Figure 3: the full ten
// methods × eight browser-OS matrix of Δd1/Δd2 box summaries.
func BenchmarkFig3_DelayOverheadBoxes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := RunStudy(StudyOptions{Runs: benchRuns, BaseSeed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		// Surface the headline comparison: WebSocket vs Flash GET Δd2
		// medians averaged over combos.
		report(b, st, MethodWebSocket, "ws_d2_ms")
		report(b, st, MethodFlashGet, "flash_d2_ms")
	}
}

func report(b *testing.B, st *Study, kind Method, name string) {
	b.Helper()
	cells := st.MethodCells(kind)
	var sum float64
	for _, c := range cells {
		sum += c.Exp.Box(2).Median
	}
	b.ReportMetric(sum/float64(len(cells)), name)
}

// BenchmarkFig4a_CDFBrowsers regenerates Figure 4(a): Java TCP socket Δd
// CDFs across the five Windows browsers with Date.getTime.
func BenchmarkFig4a_CDFBrowsers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := Fig4(benchRuns)
		if err != nil {
			b.Fatal(err)
		}
		multi := 0
		for _, r := range rows {
			if r.Label != "AV (W)" && len(r.Levels) >= 2 {
				multi++
			}
		}
		b.ReportMetric(float64(multi), "bimodal_rows")
	}
}

// BenchmarkFig4b_CDFAppletviewer regenerates Figure 4(b): the
// appletviewer control still shows the discrete levels, ruling the
// browser out as the cause.
func BenchmarkFig4b_CDFAppletviewer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := core.Run(core.Config{
			Method:  methods.JavaTCP,
			Profile: browser.AppletviewerProfile(),
			Timing:  browser.GetTime,
			Runs:    50,
			Testbed: testbed.Config{Seed: int64(900 + i)},
		})
		if err != nil {
			b.Fatal(err)
		}
		bimodal := 0.0
		if exp.Bimodal(1) {
			bimodal = 1
		}
		b.ReportMetric(bimodal, "bimodal")
	}
}

// BenchmarkFig5_Granularity regenerates Figure 5: the Date.getTime
// granularity probe across the Windows regime cycle.
func BenchmarkFig5_Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, distinct := Fig5(12)
		b.ReportMetric(float64(len(distinct)), "granularity_levels")
	}
}

// BenchmarkTable3_FlashOpera regenerates Table 3: median Δd1/Δd2 for
// Flash GET/POST in Opera on both systems.
func BenchmarkTable3_FlashOpera(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, vals, err := Table3(benchRuns)
		if err != nil {
			b.Fatal(err)
		}
		v := vals["O (W)"]
		b.ReportMetric(v[0], "get_d1_ms")
		b.ReportMetric(v[1], "get_d2_ms")
		b.ReportMetric(v[3], "post_d2_ms")
	}
}

// BenchmarkTable4_NanoTime regenerates Table 4: Java applet methods on
// Windows with System.nanoTime (mean ± 95% CI).
func BenchmarkTable4_NanoTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, vals, err := Table4(benchRuns)
		if err != nil {
			b.Fatal(err)
		}
		chrome := vals["Chrome"]
		b.ReportMetric(chrome["GET"][0].Mean, "chrome_get_d1_ms")
		b.ReportMetric(chrome["Socket"][0].Mean, "chrome_sock_d1_ms")
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblation_HandshakeInclusion isolates the Table 3 mechanism:
// the same Flash GET workload with Opera's new-connection policy versus
// Chrome's reuse policy. The Δd1 gap is the handshake.
func BenchmarkAblation_HandshakeInclusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opera, err := Appraise(MethodFlashGet, Opera, Windows, Options{Runs: benchRuns})
		if err != nil {
			b.Fatal(err)
		}
		chrome, err := Appraise(MethodFlashGet, Chrome, Windows, Options{Runs: benchRuns})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(opera.MedianOverhead(1), "newconn_d1_ms")
		b.ReportMetric(chrome.MedianOverhead(1), "reuse_d1_ms")
	}
}

// BenchmarkAblation_ClockQuantization isolates the Section 4.2 mechanism:
// the identical Java socket workload with Date.getTime vs System.nanoTime.
func BenchmarkAblation_ClockQuantization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		get, err := Appraise(MethodJavaTCP, Firefox, Windows, Options{Timing: GetTime, Runs: 40})
		if err != nil {
			b.Fatal(err)
		}
		nano, err := Appraise(MethodJavaTCP, Firefox, Windows, Options{Timing: NanoTime, Runs: 40})
		if err != nil {
			b.Fatal(err)
		}
		gb, nb := get.Box(1), nano.Box(1)
		b.ReportMetric(gb.Max-gb.Min, "getTime_range_ms")
		b.ReportMetric(nb.Max-nb.Min, "nanoTime_range_ms")
	}
}

// BenchmarkAblation_ServerDelay varies the paper's +50 ms testbed delay,
// showing the handshake-inflation term tracks the path delay (Section 3's
// observation that the delay choice determines RTT inflation).
func BenchmarkAblation_ServerDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, delay := range []time.Duration{25, 50, 100} {
			d := delay * time.Millisecond
			exp, err := Appraise(MethodFlashGet, Opera, Ubuntu, Options{
				Runs:    benchRuns,
				Testbed: TestbedConfig{ServerDelay: d, Seed: int64(i + 1)},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(exp.MedianOverhead(1), "d1_ms_delay_"+d.String())
		}
	}
}

// BenchmarkAblation_SystemLoad measures overhead inflation under
// background load (Section 3's load-sensitivity observation): plugin
// methods degrade hardest.
func BenchmarkAblation_SystemLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, load := range []float64{0, 0.5, 1.0} {
			flash, err := Appraise(MethodFlashGet, Chrome, Windows, Options{
				Timing: NanoTime, Runs: benchRuns, Load: load,
			})
			if err != nil {
				b.Fatal(err)
			}
			ws, err := Appraise(MethodWebSocket, Chrome, Windows, Options{
				Timing: NanoTime, Runs: benchRuns, Load: load,
			})
			if err != nil {
				b.Fatal(err)
			}
			suffix := fmt.Sprintf("_load%.0f0pct", load*10)
			b.ReportMetric(flash.MedianOverhead(2), "flash_d2_ms"+suffix)
			b.ReportMetric(ws.MedianOverhead(2), "ws_d2_ms"+suffix)
		}
	}
}

// BenchmarkAblation_TimingOnUbuntu verifies the artifact is Windows-only:
// getTime on Ubuntu keeps a steady 1 ms granularity, so no bimodality.
func BenchmarkAblation_TimingOnUbuntu(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := Appraise(MethodJavaTCP, Chrome, Ubuntu, Options{Timing: GetTime, Runs: 40})
		if err != nil {
			b.Fatal(err)
		}
		bimodal := 0.0
		if exp.Bimodal(1) {
			bimodal = 1
		}
		b.ReportMetric(bimodal, "bimodal")
	}
}

// BenchmarkAblation_CrossTraffic compares wire jitter on the paper's
// controlled (traffic-free) testbed against a contended one — quantifying
// what the paper's cross-traffic control excludes.
func BenchmarkAblation_CrossTraffic(b *testing.B) {
	jitter := func(seed int64, rate float64) float64 {
		tb := testbed.New(testbed.Config{Seed: seed})
		if rate > 0 {
			tb.StartCrossTraffic(rate, 1500)
		}
		r := &methods.Runner{TB: tb, Profile: browser.Lookup(browser.Chrome, browser.Ubuntu), Timing: browser.NanoTime}
		tb.Cap.Reset()
		train, err := r.RunTrain(methods.JavaTCP, 20)
		if err != nil {
			b.Fatal(err)
		}
		pairs := tb.Cap.MatchRTT(train.ServerPort)
		var sum float64
		for i := 1; i < len(pairs); i++ {
			d := float64(pairs[i].RTT()-pairs[i-1].RTT()) / 1e6
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return sum / float64(len(pairs)-1)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(jitter(int64(i+1), 0), "clean_wire_jitter_ms")
		b.ReportMetric(jitter(int64(i+1), 4000), "contended_wire_jitter_ms")
	}
}

// --- Observability overhead ---

// benchExperiment runs one small experiment cell (5 repetitions, 10 wire
// probes) with the given tracer/metrics — the workload BenchmarkRun and
// BenchmarkRunTraced share.
func benchExperiment(b *testing.B, tr *Tracer, m *Metrics) *core.Experiment {
	b.Helper()
	exp, err := core.Run(core.Config{
		Method:  methods.FlashGet,
		Profile: browser.Lookup(browser.Opera, browser.Windows),
		Timing:  browser.GetTime,
		Runs:    5,
		Gap:     time.Second,
		Testbed: testbed.Config{Seed: 7},
		Tracer:  tr,
		Metrics: m,
	})
	if err != nil {
		b.Fatal(err)
	}
	return exp
}

// BenchmarkRun is the observability-off baseline: the instrumented code
// paths run with a nil tracer and nil metrics registry, whose methods are
// allocation-free no-ops (TestNilTracerZeroAlloc). Compare against
// BenchmarkRunTraced for the cost of leaving instrumentation compiled in;
// EXPERIMENTS.md records the numbers.
func BenchmarkRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchExperiment(b, nil, nil)
	}
}

// BenchmarkRunTraced runs the identical workload with a live tracer and
// metrics registry, measuring the full recording cost (span and attribute
// allocation, histogram updates).
func BenchmarkRunTraced(b *testing.B) {
	b.ReportAllocs()
	var spans int
	for i := 0; i < b.N; i++ {
		tr := NewTracer()
		benchExperiment(b, tr, NewMetrics())
		spans = len(tr.Spans())
	}
	b.ReportMetric(float64(spans), "spans")
}

// --- Substrate micro benches ---

// BenchmarkSubstrate_MeasurementRun times one full two-round measurement
// (preparation + probes) on the simulated testbed.
func BenchmarkSubstrate_MeasurementRun(b *testing.B) {
	tb := testbed.New(testbed.Config{Seed: 1})
	prof := browser.Lookup(browser.Chrome, browser.Ubuntu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &methods.Runner{TB: tb, Profile: prof, Timing: browser.NanoTime}
		tb.Cap.Reset()
		if _, err := r.Run(methods.WebSocket); err != nil {
			b.Fatal(err)
		}
		tb.Advance(time.Second)
	}
}

// BenchmarkSubstrate_TCPTransfer times a 64 KiB reliable transfer through
// the simulated stack (handshake + segmentation + acks).
func BenchmarkSubstrate_TCPTransfer(b *testing.B) {
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		tb := testbed.New(testbed.Config{Seed: int64(i + 1), ServerDelay: time.Millisecond})
		got := 0
		c, err := tb.Client.Dial(tb.ServerAddr, testbed.TCPEchoPort)
		if err != nil {
			b.Fatal(err)
		}
		c.OnEstablished = func() { c.Send(payload) }
		c.OnData = func(p []byte) { got += len(p) }
		tb.Sim.RunUntil(30 * time.Second)
		if got != len(payload) {
			b.Fatalf("echoed %d of %d bytes", got, len(payload))
		}
	}
}

// BenchmarkSubstrate_PacketCodec times a full Ethernet/IPv4/TCP
// serialize+decode round trip.
func BenchmarkSubstrate_PacketCodec(b *testing.B) {
	src := netsim.MAC{2, 0, 0, 0, 0, 1}
	dst := netsim.MAC{2, 0, 0, 0, 0, 2}
	tbd := testbed.New(testbed.Config{Seed: 1})
	payload := []byte("GET /probe HTTP/1.1\r\nHost: server\r\n\r\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := netsim.BuildTCP(src, dst, tbd.Client.Addr(), tbd.ServerAddr, uint16(i),
			&netsim.TCP{SrcPort: 49152, DstPort: 80, Flags: netsim.FlagPSH | netsim.FlagACK}, payload)
		if _, err := netsim.Decode(frame, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrate_WebSocketFrame times the RFC 6455 frame codec with
// masking (the per-message cost of the WebSocket method).
func BenchmarkSubstrate_WebSocketFrame(b *testing.B) {
	payload := make([]byte, 512)
	f := &wssim.Frame{Fin: true, Opcode: wssim.OpBinary, Masked: true,
		MaskKey: [4]byte{1, 2, 3, 4}, Payload: payload}
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		if _, _, err := wssim.ParseFrame(f.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrate_PcapWrite times exporting a capture to pcap.
func BenchmarkSubstrate_PcapWrite(b *testing.B) {
	tb := testbed.New(testbed.Config{Seed: 2})
	prof := browser.Lookup(browser.Chrome, browser.Ubuntu)
	r := &methods.Runner{TB: tb, Profile: prof}
	if _, err := r.Run(methods.XHRGet); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Cap.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
