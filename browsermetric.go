// Package browsermetric appraises the delay accuracy of browser-based
// network measurement, reproducing Li, Mok, Chang and Fok, "Appraising the
// Delay Accuracy in Browser-based Network Measurement" (ACM IMC 2013).
//
// # What it does
//
// Browser-based tools (speedtests, Netalyzr-style diagnostics) estimate
// the network round-trip time from timestamps taken inside the browser.
// Those timestamps sit above JavaScript engines, plugin bridges, HTTP
// stacks and coarse timing APIs, so the reported RTT differs from the
// wire RTT by a delay overhead:
//
//	Δd = (tBr − tBs) − (tNr − tNs)        (paper Eq. 1)
//
// This library measures Δd for the paper's ten measurement methods
// (XHR GET/POST, DOM, WebSocket, Flash GET/POST, Flash TCP, Java applet
// GET/POST/TCP — plus the Java UDP variant) across calibrated models of
// the paper's five browsers on Windows 7 and Ubuntu 12.04, on a
// deterministic virtual testbed with a packet-capture ground truth. It
// regenerates every table and figure of the paper's evaluation, and also
// ships a real-network mode (a deployable measurement server plus live
// client drivers over real sockets).
//
// # Quickstart
//
//	exp, err := browsermetric.Appraise(browsermetric.MethodWebSocket,
//		browsermetric.Chrome, browsermetric.Ubuntu,
//		browsermetric.Options{Runs: 50})
//	if err != nil { ... }
//	box := exp.Box(2) // Δd2 five-number summary, in milliseconds
//	fmt.Printf("median overhead: %.2f ms\n", box.Median)
//
// See the examples directory for full programs and DESIGN.md for the
// architecture and the per-experiment index.
package browsermetric

import (
	"context"
	"fmt"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/core"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/liveclient"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/server"
	"github.com/browsermetric/browsermetric/internal/shard"
	"github.com/browsermetric/browsermetric/internal/stats"
	"github.com/browsermetric/browsermetric/internal/sweep"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

// Method identifies a measurement method (paper Table 1).
type Method = methods.Kind

// The ten compared methods plus the Java UDP extension.
const (
	MethodXHRGet    Method = methods.XHRGet
	MethodXHRPost   Method = methods.XHRPost
	MethodDOM       Method = methods.DOM
	MethodWebSocket Method = methods.WebSocket
	MethodFlashGet  Method = methods.FlashGet
	MethodFlashPost Method = methods.FlashPost
	MethodFlashTCP  Method = methods.FlashTCP
	MethodJavaGet   Method = methods.JavaGet
	MethodJavaPost  Method = methods.JavaPost
	MethodJavaTCP   Method = methods.JavaTCP
	MethodJavaUDP   Method = methods.JavaUDP
)

// Browser identifies a browser model (paper Table 2).
type Browser = browser.Name

// The five browsers plus the appletviewer control environment.
const (
	Chrome       Browser = browser.Chrome
	Firefox      Browser = browser.Firefox
	IE           Browser = browser.IE
	Opera        Browser = browser.Opera
	Safari       Browser = browser.Safari
	Appletviewer Browser = browser.Appletviewer
)

// OS identifies the client operating system.
type OS = browser.OS

// The two systems of the paper's testbed.
const (
	Windows OS = browser.Windows
	Ubuntu  OS = browser.Ubuntu
)

// TimingFunc selects the timestamping API measurement code uses.
type TimingFunc = browser.TimingFunc

// GetTime is Date.getTime() (the paper's tool default, quantized);
// NanoTime is System.nanoTime() (the Section 4.2 fix, exact).
const (
	GetTime  TimingFunc = browser.GetTime
	NanoTime TimingFunc = browser.NanoTime
)

// Profile is a calibrated browser×OS model.
type Profile = browser.Profile

// Experiment is a completed measurement cell; see its Box, CDF, MeanCI,
// JitterInflation, ThroughputBias and Calibrate methods.
type Experiment = core.Experiment

// Sample is one round of one run (browser RTT, wire RTT, overhead).
type Sample = core.Sample

// Study is a full method × browser×OS matrix (Figure 3).
type Study = core.Study

// Cell is one (method, profile) experiment of a study.
type Cell = core.Cell

// Calibration is per-method, per-browser overhead-correction data.
type Calibration = core.Calibration

// Recommendation is the data-derived Section 5 guidance.
type Recommendation = core.Recommendation

// Box is a five-number summary with 1.5·IQR whiskers (Figure 3 unit: ms).
type Box = stats.Box

// CDF is an empirical distribution function (Figure 4).
type CDF = stats.CDF

// Spec is the Table 1 row describing a method.
type Spec = methods.Spec

// TestbedConfig tunes the simulated network (defaults reproduce Fig. 2).
type TestbedConfig = testbed.Config

// Options configures Appraise.
type Options struct {
	// Timing selects the timestamp API (default GetTime, as the paper's
	// surveyed tools use).
	Timing TimingFunc
	// Runs is the repetition count (default 50).
	Runs int
	// Gap is the idle time between repetitions (default 10 s of virtual
	// time; spreading runs is what exposes Windows granularity regimes).
	Gap time.Duration
	// Warp advances the clock before the first run.
	Warp time.Duration
	// Testbed overrides network parameters.
	Testbed TestbedConfig
	// OracleJRE swaps the browser's Java plugin for the stock Oracle JRE
	// (the paper's Safari fix in Section 5).
	OracleJRE bool
	// Load applies a background system-load factor in [0, 1] to the
	// browser model (0 = the paper's idle testbed). Plugin-based methods
	// degrade the most under load.
	Load float64
	// Tracer and Metrics, when non-nil, capture the experiment's
	// observability stream (spans / counters). Purely observational.
	Tracer  *Tracer
	Metrics *Metrics
}

// Appraise measures the delay overhead of one method in one browser×OS
// environment and returns the completed experiment.
func Appraise(m Method, b Browser, os OS, opts Options) (*Experiment, error) {
	cfg, err := optsToConfig(m, b, os, opts)
	if err != nil {
		return nil, err
	}
	return core.Run(cfg)
}

// AppraiseProfile is Appraise for a caller-supplied profile — e.g. a
// load-adjusted profile, or ModernProfile for a plugin-free evergreen
// browser with performance.now-class timing.
func AppraiseProfile(m Method, prof *Profile, opts Options) (*Experiment, error) {
	if prof == nil {
		return nil, fmt.Errorf("browsermetric: nil profile")
	}
	if opts.OracleJRE {
		prof = prof.WithOracleJRE()
	}
	if opts.Load > 0 {
		prof = prof.WithLoad(opts.Load)
	}
	return core.Run(core.Config{
		Method:  m,
		Profile: prof,
		Timing:  opts.Timing,
		Runs:    opts.Runs,
		Gap:     opts.Gap,
		Warp:    opts.Warp,
		Testbed: opts.Testbed,
		Tracer:  opts.Tracer,
		Metrics: opts.Metrics,
	})
}

// ModernProfile returns a forward-looking plugin-free browser model (not
// part of the Table 2 matrix) for contrasting 2013 with today.
func ModernProfile(os OS) *Profile { return browser.ModernProfile(os) }

// StudyOptions configures RunStudy; zero values reproduce the paper's
// full matrix (ten methods × eight combos × 50 runs) on a
// GOMAXPROCS-wide worker pool. Set Workers to 1 for strictly sequential
// execution — results are byte-identical either way.
type StudyOptions = core.StudyOptions

// CellStatus is the per-cell progress report passed to
// StudyOptions.OnCellDone.
type CellStatus = core.CellStatus

// StudyStats are the study scheduler's observability counters
// (Study.Stats): cells started/finished/skipped/failed and wall time.
type StudyStats = core.StudyStats

// RunStudy executes a full measurement matrix, fanning the (method,
// profile) cells out over StudyOptions.Workers goroutines. Each cell runs
// on its own isolated testbed with a seed derived from its matrix
// position, so the exported results do not depend on the schedule.
func RunStudy(opts StudyOptions) (*Study, error) { return core.RunStudy(opts) }

// RunStudyContext is RunStudy with cancellation: canceling ctx aborts the
// study promptly and returns ctx.Err(); the first cell failure cancels
// the remaining work.
func RunStudyContext(ctx context.Context, opts StudyOptions) (*Study, error) {
	return core.RunStudyContext(ctx, opts)
}

// CellSeed is the pure per-cell seed derivation RunStudy uses:
// CellSeed(BaseSeed, methodIndex, profileIndex). Exposed so external
// harnesses can reproduce any single cell of a study in isolation.
func CellSeed(base int64, methodIndex, profileIndex int) int64 {
	return core.CellSeed(base, methodIndex, profileIndex)
}

// Recommend distills the Section 5 guidance from a study.
func Recommend(s *Study) Recommendation { return core.Recommend(s) }

// --- Fault injection ---

// FaultProfile names a canned network-impairment scenario applied to the
// testbed's server link (TestbedConfig.Faults). The zero value runs the
// paper's pristine wire.
type FaultProfile = faults.Profile

// The built-in fault profiles.
const (
	// FaultClean is the paper's loss-free LAN (no impairment installed).
	FaultClean FaultProfile = faults.Clean
	// FaultLossy1pct drops 1% of frames independently.
	FaultLossy1pct FaultProfile = faults.Lossy1pct
	// FaultBurstyWiFi is Gilbert–Elliott bursty loss with jitter,
	// reordering and duplication — an interfered wireless link.
	FaultBurstyWiFi FaultProfile = faults.BurstyWiFi
	// FaultCongested is a rate-limited bottleneck with a finite queue.
	FaultCongested FaultProfile = faults.Congested
)

// FaultProfiles lists the built-in fault profiles in severity order.
func FaultProfiles() []FaultProfile { return faults.Profiles() }

// ParseFaultProfile resolves a profile name case-insensitively; "" and
// "none" mean FaultClean. Unknown names error.
func ParseFaultProfile(s string) (FaultProfile, error) { return faults.Parse(s) }

// FaultImpactOptions configures RunFaultImpact.
type FaultImpactOptions = core.FaultImpactOptions

// FaultImpact is a completed impairment study: per-method Δd quantiles
// under a sweep of fault profiles, with a text Report.
type FaultImpact = core.FaultImpact

// MethodFaultImpact is one row of the impact matrix.
type MethodFaultImpact = core.MethodFaultImpact

// RunFaultImpact appraises every method under each fault profile with
// identical seeds and tabulates how the Δd distribution degrades. The
// expected shape mirrors the paper's handshake finding: methods that open
// TCP connections inside the timed window grow heavy tails at the first
// lost handshake segment, while socket methods stay tight because loss
// recovery happens below both the browser and the capture clocks.
func RunFaultImpact(ctx context.Context, opts FaultImpactOptions) (*FaultImpact, error) {
	return core.RunFaultImpact(ctx, opts)
}

// --- Sweep engine: content-addressed cache & resumable manifests ---

// CellCache caches completed study cells keyed by their full config; set
// StudyOptions.Cache to one to make repeated studies warm. The contract:
// a cached replay exports byte-identically to recomputation.
type CellCache = core.CellCache

// SweepCache is the content-addressed disk implementation of CellCache:
// one checksummed file per cell under <dir>/cells, addressed by the
// SHA-256 of the cell's canonical config plus a code-version salt.
// Corrupt entries are detected, logged and recomputed, never served.
type SweepCache = sweep.Cache

// SweepCacheStats snapshots a cache's hit/miss/corruption counters.
type SweepCacheStats = sweep.CacheStats

// OpenSweepCache opens (creating if needed) a cell cache rooted at dir.
// An empty salt selects SweepSalt.
func OpenSweepCache(dir, salt string) (*SweepCache, error) { return sweep.OpenCache(dir, salt) }

// SweepSalt is the current code-version salt; cells cached under another
// salt miss and are recomputed.
const SweepSalt = sweep.DefaultSalt

// SweepOptions configures RunSweep: the methods × browsers × fault-
// profiles matrix, the cache directory, and resume behaviour.
type SweepOptions = sweep.Options

// SweepResult is a completed sweep (one study per fault profile, the
// manifest, and warm/cold counters) with WriteCSV and Report exports.
type SweepResult = sweep.Result

// SweepStats summarizes a sweep (computed vs cached cells, resume count,
// wall time).
type SweepStats = sweep.Stats

// RunSweep crosses methods × browser profiles × fault profiles into a
// single manifest-driven run on the deterministic scheduler. Every
// completed cell is persisted in the content-addressed cache and recorded
// in the manifest, so a killed sweep resumed with SweepOptions.Resume
// finishes only the missing cells — and still exports byte-identically to
// an uninterrupted run.
func RunSweep(ctx context.Context, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(ctx, opts)
}

// --- Distributed shard runner ---

// ShardCoordinator partitions a sweep's cell matrix into shards and
// leases them to worker processes over a framed loopback/LAN control
// protocol; once every shard completes it merges the per-worker
// manifests and replays the sweep warm from the shared cache, producing
// output byte-identical to a single-process RunSweep.
type ShardCoordinator = shard.Coordinator

// ShardCoordinatorOptions configures NewShardCoordinator.
type ShardCoordinatorOptions = shard.CoordinatorOptions

// ShardStats snapshots the coordinator's counters (the shard_* metric
// families).
type ShardStats = shard.Stats

// ShardWorkerOptions configures RunShardWorker.
type ShardWorkerOptions = shard.WorkerOptions

// ShardWorkerStats summarizes one worker's contribution to a sweep.
type ShardWorkerStats = shard.WorkerStats

// DefaultShardCount is the default partition count for a sharded sweep.
const DefaultShardCount = shard.DefaultShards

// NewShardCoordinator starts the coordinator listening; point workers at
// its Addr() and call Wait for the merged result. Workers must be
// configured with an identical SweepOptions — the handshake enforces it.
func NewShardCoordinator(opts ShardCoordinatorOptions) (*ShardCoordinator, error) {
	return shard.NewCoordinator(opts)
}

// RunShardWorker connects to a coordinator and executes leased shards
// (through the shared content-addressed cache) until the sweep is done.
func RunShardWorker(ctx context.Context, opts ShardWorkerOptions) (ShardWorkerStats, error) {
	return shard.RunWorker(ctx, opts)
}

// --- Observability ---

// Tracer records virtual-time spans across a testbed run; see the
// internal/obs package doc for the span taxonomy and the determinism
// guarantee. A nil *Tracer is the disabled tracer (zero-cost no-ops).
type Tracer = obs.Tracer

// Span is one traced operation with virtual start/end and attributes.
type Span = obs.Span

// Metrics is a registry of counters, gauges and fixed-bucket histograms
// fed by the simulated stack and the study scheduler. A nil *Metrics is
// the disabled registry.
type Metrics = obs.Metrics

// NewTracer returns an enabled span tracer for Options/StudyOptions.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetrics returns an enabled metrics registry.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// CellStatsTable renders the n slowest study cells by host wall time
// (the data behind `appraise -cellstats`).
func CellStatsTable(s *Study, n int) string { return core.CellStatsTable(s, n) }

// Profiles returns the Table 2 browser×OS matrix.
func Profiles() []*Profile { return browser.Profiles() }

// LookupProfile returns one profile, or nil for combos outside Table 2.
func LookupProfile(b Browser, os OS) *Profile { return browser.Lookup(b, os) }

// Methods returns the Table 1 taxonomy (all eleven specs).
func Methods() []Spec { return methods.All() }

// ComparedMethods returns the ten methods the paper's evaluation compares.
func ComparedMethods() []Spec { return methods.Compared() }

// Report generators: each returns the text regeneration of a paper
// artifact. See EXPERIMENTS.md for the mapping and expectations.
var (
	// Table1 renders the method taxonomy.
	Table1 = core.Table1
	// Table2 renders the browser/system matrix.
	Table2 = core.Table2
	// Fig3 renders per-method box summaries from a study.
	Fig3 = core.Fig3
	// Fig4 runs and renders the Java-socket CDF experiment (browsers +
	// appletviewer control).
	Fig4 = core.Fig4
	// Fig4ASCII renders the Figure 4 CDFs as terminal decile bars.
	Fig4ASCII = core.Fig4ASCII
	// Fig5 runs and renders the timestamp-granularity probe.
	Fig5 = core.Fig5
	// Table3 runs and renders the Opera Flash GET/POST medians.
	Table3 = core.Table3
	// Table4 runs and renders the Java methods with System.nanoTime.
	Table4 = core.Table4
)

// --- Overhead attribution and derived-metric impact ---

// Attribution decomposes one overhead sample into send path, receive
// path, handshake and residual (clock error).
type Attribution = core.Attribution

// AttributedSample pairs a Sample with its Attribution.
type AttributedSample = core.AttributedSample

// AppraiseAttributed is Appraise plus per-sample attribution.
func AppraiseAttributed(m Method, b Browser, os OS, opts Options) (*Experiment, []AttributedSample, error) {
	cfg, err := optsToConfig(m, b, os, opts)
	if err != nil {
		return nil, nil, err
	}
	return core.RunAttributed(cfg)
}

// JitterImpact compares tool-reported vs wire jitter over a probe train.
type JitterImpact = core.JitterImpact

// MeasureJitter runs a probes-long train and compares both jitters.
func MeasureJitter(m Method, b Browser, os OS, opts Options, probes int) (JitterImpact, error) {
	cfg, err := optsToConfig(m, b, os, opts)
	if err != nil {
		return JitterImpact{}, err
	}
	return core.MeasureJitter(cfg, probes)
}

// ThroughputImpact compares tool-computed vs wire round-trip throughput.
type ThroughputImpact = core.ThroughputImpact

// MeasureThroughput runs one bulk transfer of size bytes.
func MeasureThroughput(m Method, b Browser, os OS, opts Options, size int) (ThroughputImpact, error) {
	cfg, err := optsToConfig(m, b, os, opts)
	if err != nil {
		return ThroughputImpact{}, err
	}
	return core.MeasureThroughput(cfg, size)
}

// LossImpact compares tool-reported vs capture-observed loss rates.
type LossImpact = core.LossImpact

// MeasureLoss runs a UDP probe train under the configured link loss.
func MeasureLoss(b Browser, os OS, opts Options, probes int) (LossImpact, error) {
	cfg, err := optsToConfig(MethodJavaUDP, b, os, opts)
	if err != nil {
		return LossImpact{}, err
	}
	return core.MeasureLoss(cfg, probes)
}

// Fig3ASCII renders Figure 3 as terminal box-plot art.
var Fig3ASCII = core.Fig3ASCII

// MarkdownReport renders a study as a self-contained Markdown document.
var MarkdownReport = core.MarkdownReport

// AttributionReport renders mean per-round overhead attribution.
func AttributionReport(m Method, b Browser, os OS, opts Options) (string, error) {
	cfg, err := optsToConfig(m, b, os, opts)
	if err != nil {
		return "", err
	}
	return core.AttributionReport(cfg)
}

// ImpactReport renders jitter/throughput/loss impact for one profile.
func ImpactReport(b Browser, os OS, timing TimingFunc) (string, error) {
	prof := browser.Lookup(b, os)
	if prof == nil {
		return "", fmt.Errorf("browsermetric: %v on %v is not a Table 2 configuration", b, os)
	}
	return core.ImpactReport(prof, timing)
}

// ServerOverhead is one point of a server-side processing sweep.
type ServerOverhead = core.ServerOverhead

// MeasureServerOverhead sweeps server processing cost for an HTTP method,
// showing it lands in the wire RTT, invisible to client-side calibration
// (the paper's Section 7 extension).
func MeasureServerOverhead(m Method, b Browser, os OS, opts Options, parseCosts []time.Duration) ([]ServerOverhead, error) {
	cfg, err := optsToConfig(m, b, os, opts)
	if err != nil {
		return nil, err
	}
	return core.MeasureServerOverhead(cfg, parseCosts)
}

// ServerOverheadReport renders the server-side sweep for one profile.
func ServerOverheadReport(b Browser, os OS, timing TimingFunc, runs int) (string, error) {
	prof := browser.Lookup(b, os)
	if prof == nil {
		return "", fmt.Errorf("browsermetric: %v on %v is not a Table 2 configuration", b, os)
	}
	return core.ServerOverheadReport(prof, timing, runs)
}

func optsToConfig(m Method, b Browser, os OS, opts Options) (core.Config, error) {
	prof := browser.Lookup(b, os)
	if prof == nil {
		return core.Config{}, fmt.Errorf("browsermetric: %v on %v is not a Table 2 configuration", b, os)
	}
	if opts.OracleJRE {
		prof = prof.WithOracleJRE()
	}
	if opts.Load > 0 {
		prof = prof.WithLoad(opts.Load)
	}
	return core.Config{
		Method:  m,
		Profile: prof,
		Timing:  opts.Timing,
		Runs:    opts.Runs,
		Gap:     opts.Gap,
		Warp:    opts.Warp,
		Testbed: opts.Testbed,
		Tracer:  opts.Tracer,
		Metrics: opts.Metrics,
	}, nil
}

// --- Real-network mode ---

// Server is a deployable measurement server (HTTP probe endpoints,
// WebSocket echo, TCP/UDP echo).
type Server = server.Server

// ServerConfig configures StartServer.
type ServerConfig = server.Config

// ServerAddrs lists a running server's bound addresses.
type ServerAddrs = server.Addrs

// StartServer launches the real-network measurement server.
func StartServer(cfg ServerConfig) (*Server, error) { return server.Start(cfg) }

// LiveMethod is a real-socket measurement driver.
type LiveMethod = liveclient.Method

// LiveMeasurement is one live probe's timestamps.
type LiveMeasurement = liveclient.Measurement

// Live drivers mirroring the method taxonomy over real sockets.
var (
	NewLiveHTTPGet   = liveclient.NewHTTPGet
	NewLiveHTTPPost  = liveclient.NewHTTPPost
	NewLiveWebSocket = liveclient.NewWebSocket
	NewLiveTCP       = liveclient.NewTCP
	NewLiveUDP       = liveclient.NewUDP
)

// AppraiseLive runs n probes through a live driver and summarizes the
// overhead distribution (box stats in ms, mean ± 95% CI).
func AppraiseLive(m LiveMethod, n int) (Box, float64, float64, error) {
	return liveclient.Appraise(m, n)
}
