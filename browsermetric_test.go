package browsermetric

import (
	"strings"
	"testing"
	"time"
)

func TestAppraiseQuick(t *testing.T) {
	exp, err := Appraise(MethodWebSocket, Chrome, Ubuntu, Options{Timing: NanoTime, Runs: 8, Gap: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	box := exp.Box(2)
	if box.N != 8 {
		t.Fatalf("N = %d", box.N)
	}
	if box.Median < 0 || box.Median > 2 {
		t.Fatalf("WebSocket Δd2 median = %.2f ms", box.Median)
	}
}

func TestAppraiseRejectsNonTable2Combo(t *testing.T) {
	if _, err := Appraise(MethodXHRGet, IE, Ubuntu, Options{}); err == nil {
		t.Fatal("expected error for IE on Ubuntu")
	}
}

func TestAppraiseOracleJRE(t *testing.T) {
	plain, err := Appraise(MethodJavaTCP, Safari, Windows, Options{Timing: NanoTime, Runs: 8, Gap: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Appraise(MethodJavaTCP, Safari, Windows, Options{Timing: NanoTime, Runs: 8, Gap: time.Second, OracleJRE: true})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.MedianOverhead(2) >= plain.MedianOverhead(2) {
		t.Fatalf("Oracle JRE %.3f should beat plugin %.3f", fixed.MedianOverhead(2), plain.MedianOverhead(2))
	}
}

func TestPublicTaxonomy(t *testing.T) {
	if len(Methods()) != 11 || len(ComparedMethods()) != 10 {
		t.Fatal("taxonomy sizes wrong")
	}
	if len(Profiles()) != 8 {
		t.Fatal("profile matrix size wrong")
	}
	if LookupProfile(Safari, Ubuntu) != nil {
		t.Fatal("Safari on Ubuntu should not resolve")
	}
	if !strings.Contains(Table1(), "WebSocket") || !strings.Contains(Table2(), "Ubuntu") {
		t.Fatal("static tables broken")
	}
}

func TestPublicStudyAndRecommend(t *testing.T) {
	st, err := RunStudy(StudyOptions{
		Methods: []Method{MethodWebSocket, MethodFlashGet},
		Runs:    5,
		Gap:     time.Second,
		Timing:  NanoTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := Recommend(st)
	if rec.BestMethod != MethodWebSocket {
		t.Fatalf("best method = %v, want WebSocket (vs Flash)", rec.BestMethod)
	}
	if !strings.Contains(Fig3(st), "Figure 3") {
		t.Fatal("Fig3 render broken")
	}
}

func TestLiveRoundTrip(t *testing.T) {
	srv, err := StartServer(ServerConfig{Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	m, err := NewLiveTCP(srv.Addrs().TCPEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	box, mean, _, err := AppraiseLive(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if box.N != 5 || mean > 10 {
		t.Fatalf("box.N=%d mean=%.3f", box.N, mean)
	}
}
