// Command appraise regenerates the paper's evaluation artifacts: every
// table and figure of "Appraising the Delay Accuracy in Browser-based
// Network Measurement" (IMC 2013), from the simulated testbed.
//
// Usage:
//
//	appraise -all                # everything (50 runs per cell)
//	appraise -table 1|2|3|4      # one table
//	appraise -fig 3|4|5          # one figure
//	appraise -recommend          # the Section 5 recommendations
//	appraise -runs 20            # fewer repetitions (faster)
//	appraise -workers 4          # cap the study's cell-level parallelism
//	appraise -trace out.json     # Chrome trace_event export of the study
//	appraise -metrics m.json     # metrics snapshot (JSON or text by extension)
//	appraise -cellstats          # slowest cells by host wall time
//	appraise -progress           # structured per-cell progress on stderr
//	appraise -faults lossy1pct   # appraise under a network-impairment profile
//	appraise -faultimpact        # Δd degradation study across fault profiles
//	appraise -cache-dir d ...    # content-addressed cell cache: warm reruns replay from disk
//	appraise -sweep -cache-dir d # methods x browsers x fault profiles, manifest-driven
//	appraise -sweep -resume ...  # finish a killed sweep from its manifest
//	appraise -shard-coordinator 127.0.0.1:9400 -cache-dir d  # sharded sweep: coordinator
//	appraise -shard-worker 127.0.0.1:9400 -shard-name w1 -cache-dir d  # sharded sweep: worker
//	appraise -cpuprofile cpu.pb.gz -memprofile mem.pb.gz ...  # pprof profiles of the run
//
// All progress and statistics lines go to stderr; stdout carries only the
// regenerated artifacts, so reports can be piped or redirected cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	bm "github.com/browsermetric/browsermetric"
)

// cpuProfileFile is the open -cpuprofile output; memProfilePath the
// -memprofile destination. Both are finalized by stopProfiles, which
// exit() routes every termination path through (os.Exit skips defers,
// and a truncated CPU profile is worse than none).
var (
	cpuProfileFile *os.File
	memProfilePath string
)

// startProfiles begins CPU profiling and records the heap-profile
// destination. The heap profile is written at exit so it reflects the
// retained state of the full run, not the state at flag parse.
func startProfiles(cpu, mem string) error {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuProfileFile = f
	}
	memProfilePath = mem
	return nil
}

// stopProfiles finalizes both profile outputs; safe to call on any path,
// including before startProfiles ran.
func stopProfiles() {
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		if err := cpuProfileFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "appraise: cpuprofile:", err)
		}
		cpuProfileFile = nil
	}
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "appraise: memprofile:", err)
			return
		}
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "appraise: memprofile:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "appraise: memprofile:", err)
		}
		memProfilePath = ""
	}
}

// exit flushes the profiles before terminating; every exit in main goes
// through it.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// baseSeed decorrelates the study cells; settable via -seed.
var baseSeed int64

// workers caps the study scheduler's parallelism; settable via -workers
// (0 = one worker per CPU, 1 = sequential).
var workers int

// tracing / metricsReg / progressMode mirror the -trace, -metrics and
// -progress flags for runStudy.
var (
	tracing      bool
	metricsReg   *bm.Metrics
	progressMode bool
)

// faultProfile is the impairment profile every study cell runs under
// (-faults flag; FaultClean keeps the paper's pristine wire).
var faultProfile bm.FaultProfile

// studyCache, when non-nil (-cache-dir), replays unchanged study cells
// from the content-addressed disk cache instead of recomputing them.
var studyCache *bm.SweepCache

// runStudy executes the full matrix with progress on stderr. Everything
// it prints goes to stderr — stdout is reserved for artifacts — and any
// partial carriage-return counter line is terminated before returning,
// so a following report or error message starts on a fresh line.
func runStudy(runs int) (*bm.Study, error) {
	fmt.Fprintf(os.Stderr, "running the full matrix (%d methods x %d combos x %d runs)...\n",
		len(bm.ComparedMethods()), len(bm.Profiles()), runs)
	opts := bm.StudyOptions{
		Runs:     runs,
		BaseSeed: baseSeed,
		Workers:  workers,
		Tracing:  tracing,
		Metrics:  metricsReg,
	}
	opts.Testbed.Faults = faultProfile
	if faultProfile.Enabled() {
		fmt.Fprintf(os.Stderr, "fault profile: %s\n", faultProfile)
	}
	if studyCache != nil {
		opts.Cache = studyCache
	}
	partialLine := false // an unterminated \r counter line is on stderr
	if progressMode {
		// Structured per-cell lines: one complete line per cell, safe to
		// interleave with other stderr writers and to parse.
		opts.OnCellDone = func(cs bm.CellStatus) {
			status := "ok"
			switch {
			case cs.Skipped:
				status = "skip"
			case cs.Err != nil:
				status = "fail"
			case cs.Cached:
				status = "hit"
			}
			fmt.Fprintf(os.Stderr, "cell %3d/%d %-4s method=%q browser=%q wall=%v\n",
				cs.Done, cs.Total, status, cs.Method.String(), cs.Profile.Label(), cs.Wall.Round(10*time.Microsecond))
		}
	} else {
		opts.OnCellDone = func(cs bm.CellStatus) {
			fmt.Fprintf(os.Stderr, "\r  %d/%d cells", cs.Done, cs.Total)
			partialLine = cs.Done != cs.Total
			if cs.Done == cs.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	study, err := bm.RunStudy(opts)
	if partialLine {
		// The study ended (failure or cancellation) mid-counter: finish
		// the line so the error doesn't print on top of it.
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return nil, err
	}
	s := study.Stats
	fmt.Fprintf(os.Stderr, "matrix done in %v (%d workers, %d cells, %d skipped, %d cached)\n",
		s.Wall.Round(time.Millisecond), s.Workers, s.CellsFinished, s.CellsSkipped, s.CellsCached)
	return study, nil
}

// writeMetricsSnapshot dumps the shared registry to path (JSON when the
// extension is .json, text otherwise); empty path is a no-op.
func writeMetricsSnapshot(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := error(nil)
	if strings.HasSuffix(path, ".json") {
		werr = metricsReg.WriteJSON(f)
	} else {
		werr = metricsReg.WriteText(f)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", path)
	return nil
}

// runSweep executes the -sweep mode: methods x browser profiles x fault
// profiles as one manifest-driven run against the content-addressed
// cache, with warm/cold accounting on stderr and the summary table (plus
// optional full CSV) as the stdout artifact.
// sweepOptions builds the SweepOptions every sweep mode shares — plain
// -sweep, -shard-coordinator and -shard-worker must construct identical
// options (modulo Dir-local knobs) or the shard handshake refuses the
// worker.
func sweepOptions(runs int, cacheDir string, resume bool, sweepFaults []bm.FaultProfile) bm.SweepOptions {
	return bm.SweepOptions{
		Faults:   sweepFaults,
		Runs:     runs,
		BaseSeed: baseSeed,
		Workers:  workers,
		Dir:      cacheDir,
		Resume:   resume,
		Log:      func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		Metrics:  metricsReg,
	}
}

// writeSweepArtifacts prints the stdout report and the optional CSV —
// the byte surfaces the shard equivalence contract is stated over, so
// single-process and coordinator runs share this exact code path.
func writeSweepArtifacts(res *bm.SweepResult, csvPath string) error {
	fmt.Println(res.Report())
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := res.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote sweep samples to %s\n", csvPath)
	}
	return nil
}

func runSweep(runs int, cacheDir string, resume bool, sweepFaults []bm.FaultProfile, csvPath string) error {
	opts := sweepOptions(runs, cacheDir, resume, sweepFaults)
	nFaults := len(sweepFaults)
	if nFaults == 0 {
		nFaults = len(bm.FaultProfiles())
	}
	fmt.Fprintf(os.Stderr, "sweeping %d methods x %d combos x %d fault profiles (%d runs/cell, cache %s)...\n",
		len(bm.ComparedMethods()), len(bm.Profiles()), nFaults, runs, cacheDir)
	done := 0
	partialLine := false
	if progressMode {
		opts.OnCell = func(fp bm.FaultProfile, cs bm.CellStatus) {
			status := "ok"
			switch {
			case cs.Skipped:
				status = "skip"
			case cs.Err != nil:
				status = "fail"
			case cs.Cached:
				status = "hit"
			}
			done++
			fmt.Fprintf(os.Stderr, "cell %4d %-4s faults=%q method=%q browser=%q wall=%v\n",
				done, status, fp.String(), cs.Method.String(), cs.Profile.Label(), cs.Wall.Round(10*time.Microsecond))
		}
	} else {
		opts.OnCell = func(fp bm.FaultProfile, cs bm.CellStatus) {
			done++
			fmt.Fprintf(os.Stderr, "\r  %d cells (%s)", done, fp)
			partialLine = true
		}
	}
	res, err := bm.RunSweep(context.Background(), opts)
	if partialLine {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(os.Stderr, "sweep done in %v: %d cells (%d computed, %d cached, %d skipped; %d resumed from manifest, %d corrupt entries recomputed)\n",
		st.Wall.Round(time.Millisecond), st.Cells, st.Computed, st.CachedHits, st.Skipped, st.Resumed, st.Corrupt)
	return writeSweepArtifacts(res, csvPath)
}

// runShardCoordinator executes the -shard-coordinator mode: partition
// the sweep, lease shards to workers, merge their manifests, replay the
// sweep warm, and emit the same stdout artifacts as a single-process
// -sweep run (byte-identically).
func runShardCoordinator(listen string, shards int, leaseTTL time.Duration, opts bm.SweepOptions, csvPath string) error {
	c, err := bm.NewShardCoordinator(bm.ShardCoordinatorOptions{
		Listen:   listen,
		Sweep:    opts,
		Shards:   shards,
		LeaseTTL: leaseTTL,
		Log:      opts.Log,
		Metrics:  metricsReg,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(os.Stderr, "shard coordinator listening on %s (%d shards, lease TTL %v); start workers with -shard-worker %s\n",
		c.Addr(), c.Stats().Shards, leaseTTL, c.Addr())
	res, err := c.Wait(context.Background())
	if err != nil {
		return err
	}
	cs := c.Stats()
	fmt.Fprintf(os.Stderr, "shard sweep done: %d shards, %d workers (%d cells computed, %d cached across shard reports; %d leases granted, %d renewals, %d reassigned)\n",
		cs.ShardsDone, cs.WorkersSeen, cs.CellsComputed, cs.CellsCached, cs.LeasesGranted, cs.Renewals, cs.Reassigned)
	return writeSweepArtifacts(res, csvPath)
}

// runShardWorker executes the -shard-worker mode: lease shards from the
// coordinator and run their cells into the shared cache until the sweep
// completes. Workers print no stdout artifact — the coordinator owns the
// merged output.
func runShardWorker(addr, name string, opts bm.SweepOptions) error {
	st, err := bm.RunShardWorker(context.Background(), bm.ShardWorkerOptions{
		Addr:    addr,
		Name:    name,
		Sweep:   opts,
		Workers: workers,
		Log:     opts.Log,
		Metrics: metricsReg,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shard worker %q finished: %d shards done, %d cells computed, %d cached, %d leases revoked\n",
		name, st.ShardsDone, st.Computed, st.Cached, st.Revoked)
	return nil
}

func main() {
	var (
		table       = flag.Int("table", 0, "regenerate one table (1-4)")
		fig         = flag.Int("fig", 0, "regenerate one figure (3-5)")
		runs        = flag.Int("runs", 50, "repetitions per experiment cell")
		all         = flag.Bool("all", false, "regenerate every table and figure")
		recommend   = flag.Bool("recommend", false, "print the Section 5 recommendations")
		ascii       = flag.Bool("ascii", false, "render Figure 3 as terminal box-plot art")
		attribution = flag.Bool("attribution", false, "decompose overheads (Section 4 investigations)")
		impact      = flag.Bool("impact", false, "jitter/throughput/loss impact report")
		csvPath     = flag.String("csv", "", "also export the full study's samples as CSV to this file")
		mdPath      = flag.String("markdown", "", "write a Markdown report of the full study to this file")
		seed        = flag.Int64("seed", 0, "base seed for the deterministic simulation")
		nworkers    = flag.Int("workers", 0, "concurrent study cells (0 = one per CPU, 1 = sequential; results are identical)")
		tracePath   = flag.String("trace", "", "write the study as Chrome trace_event JSON to this file (open in chrome://tracing or Perfetto)")
		metricsPath = flag.String("metrics", "", "write a metrics snapshot to this file (.json extension = JSON, otherwise text)")
		cellstats   = flag.Bool("cellstats", false, "print the slowest study cells by host wall time")
		progressFl  = flag.Bool("progress", false, "structured per-cell progress lines on stderr (instead of the counter)")
		faultsFl    = flag.String("faults", "", "network-impairment profile for every study cell (clean, lossy1pct, burstywifi, congested); with -sweep, a comma-separated list")
		faultimpact = flag.Bool("faultimpact", false, "Δd degradation study: every method under every fault profile")
		cacheDirFl  = flag.String("cache-dir", "", "content-addressed cell cache directory (unchanged cells replay from disk byte-identically)")
		sweepFl     = flag.Bool("sweep", false, "run methods x browsers x fault profiles as one manifest-driven sweep (requires -cache-dir)")
		resumeFl    = flag.Bool("resume", false, "with -sweep: resume a killed sweep from its manifest instead of starting fresh")
		shardCoord  = flag.String("shard-coordinator", "", "run the sweep sharded, as the coordinator listening on this address (e.g. 127.0.0.1:9400); requires -cache-dir, output is byte-identical to -sweep")
		shardWorker = flag.String("shard-worker", "", "join a sharded sweep as a worker, connecting to this coordinator address; requires the coordinator's -cache-dir and sweep flags")
		shardName   = flag.String("shard-name", "", "unique worker name for -shard-worker (default worker<pid>)")
		shardCount  = flag.Int("shard-count", 0, "partition count for -shard-coordinator (0 = default; more shards = finer reassignment on worker death)")
		shardTTL    = flag.Duration("shard-lease-ttl", 5*time.Second, "shard lease TTL for -shard-coordinator; a worker silent past it forfeits the shard")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file (go tool pprof)")
		memprofile  = flag.String("memprofile", "", "write an allocation profile to this file at exit (go tool pprof)")
	)
	flag.Parse()
	if err := startProfiles(*cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "appraise:", err)
		os.Exit(2)
	}
	defer stopProfiles() // normal returns; exit() covers the error paths
	baseSeed = *seed
	workers = *nworkers
	tracing = *tracePath != ""
	if *metricsPath != "" {
		metricsReg = bm.NewMetrics()
	}
	progressMode = *progressFl

	if *sweepFl || *shardCoord != "" || *shardWorker != "" {
		// Sweep modes (single-process, shard coordinator, shard worker):
		// -faults may list several profiles, comma-separated (empty =
		// every built-in profile).
		modes := 0
		for _, on := range []bool{*sweepFl, *shardCoord != "", *shardWorker != ""} {
			if on {
				modes++
			}
		}
		if modes > 1 {
			fmt.Fprintln(os.Stderr, "appraise: -sweep, -shard-coordinator and -shard-worker are mutually exclusive")
			exit(2)
		}
		if *cacheDirFl == "" {
			fmt.Fprintln(os.Stderr, "appraise: sweep modes require -cache-dir")
			exit(2)
		}
		var sweepFaults []bm.FaultProfile
		if *faultsFl != "" {
			for _, name := range strings.Split(*faultsFl, ",") {
				fp, err := bm.ParseFaultProfile(name)
				if err != nil {
					fmt.Fprintln(os.Stderr, "appraise:", err)
					exit(2)
				}
				sweepFaults = append(sweepFaults, fp)
			}
		}
		var err error
		switch {
		case *shardCoord != "":
			opts := sweepOptions(*runs, *cacheDirFl, *resumeFl, sweepFaults)
			err = runShardCoordinator(*shardCoord, *shardCount, *shardTTL, opts, *csvPath)
		case *shardWorker != "":
			name := *shardName
			if name == "" {
				name = fmt.Sprintf("worker%d", os.Getpid())
			}
			opts := sweepOptions(*runs, *cacheDirFl, *resumeFl, sweepFaults)
			err = runShardWorker(*shardWorker, name, opts)
		default:
			err = runSweep(*runs, *cacheDirFl, *resumeFl, sweepFaults, *csvPath)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "appraise:", err)
			exit(1)
		}
		if err := writeMetricsSnapshot(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "appraise:", err)
			exit(1)
		}
		return
	}

	var err error
	faultProfile, err = bm.ParseFaultProfile(*faultsFl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "appraise:", err)
		exit(2)
	}
	if *cacheDirFl != "" {
		studyCache, err = bm.OpenSweepCache(*cacheDirFl, "")
		if err != nil {
			fmt.Fprintln(os.Stderr, "appraise:", err)
			exit(2)
		}
		studyCache.SetLog(func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) })
	}

	if !*all && *table == 0 && *fig == 0 && !*recommend && !*attribution && !*impact && *csvPath == "" && *mdPath == "" &&
		*tracePath == "" && *metricsPath == "" && !*cellstats && !*faultimpact {
		flag.Usage()
		exit(2)
	}
	if err := run(*table, *fig, *runs, *all, *recommend, *ascii, *attribution, *impact,
		*csvPath, *mdPath, *tracePath, *metricsPath, *cellstats, *faultimpact); err != nil {
		fmt.Fprintln(os.Stderr, "appraise:", err)
		exit(1)
	}
}

func run(table, fig, runs int, all, recommend, ascii, attribution, impact bool, csvPath, mdPath, tracePath, metricsPath string, cellstats, faultimpact bool) error {
	var study *bm.Study
	needStudy := all || fig == 3 || recommend || csvPath != "" || mdPath != "" ||
		tracePath != "" || metricsPath != "" || cellstats
	if needStudy {
		var err error
		study, err = runStudy(runs)
		if err != nil {
			return err
		}
	}

	if all || table == 1 {
		fmt.Println(bm.Table1())
	}
	if all || table == 2 {
		fmt.Println(bm.Table2())
	}
	if all || fig == 3 {
		if ascii {
			fmt.Println(bm.Fig3ASCII(study, 72))
		} else {
			fmt.Println(bm.Fig3(study))
		}
	}
	if all || fig == 4 {
		report, _, err := bm.Fig4(runs)
		if err != nil {
			return err
		}
		fmt.Println(report)
		if ascii {
			art, err := bm.Fig4ASCII(runs, 50)
			if err != nil {
				return err
			}
			fmt.Println(art)
		}
	}
	if all || fig == 5 {
		report, _ := bm.Fig5(12)
		fmt.Println(report)
	}
	if all || table == 3 {
		report, _, err := bm.Table3(runs)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if all || table == 4 {
		report, _, err := bm.Table4(runs)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if all || recommend {
		if study == nil {
			var err error
			study, err = runStudy(runs)
			if err != nil {
				return err
			}
		}
		rec := bm.Recommend(study)
		fmt.Println("Section 5: practical considerations (derived from the study)")
		fmt.Printf("  best method overall:   %v\n", rec.BestMethod)
		fmt.Printf("  best plugin-free:      %v\n", rec.BestNative)
		oses := make([]string, 0, len(rec.BestBrowser))
		for os := range rec.BestBrowser {
			oses = append(oses, os)
		}
		sort.Strings(oses)
		for _, os := range oses {
			fmt.Printf("  preferred browser on %s: %v\n", os, rec.BestBrowser[os])
		}
		fmt.Printf("  avoid (uncalibratable): %v\n", rec.AvoidMethods)
		for _, n := range rec.Notes {
			fmt.Printf("  note: %s\n", n)
		}
	}
	if all || attribution {
		// The two Section 4 investigations: Opera's Flash handshake and
		// the Java socket clock error.
		for _, c := range []struct {
			m      bm.Method
			b      bm.Browser
			timing bm.TimingFunc
			warp   time.Duration
		}{
			{bm.MethodFlashGet, bm.Opera, bm.NanoTime, 0},
			{bm.MethodJavaTCP, bm.Chrome, bm.GetTime, 5 * time.Minute},
		} {
			report, err := bm.AttributionReport(c.m, c.b, bm.Windows, bm.Options{
				Timing: c.timing, Runs: runs, Warp: c.warp,
			})
			if err != nil {
				return err
			}
			fmt.Println(report)
		}
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := study.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote study samples to %s\n", csvPath)
	}
	if mdPath != "" {
		if err := os.WriteFile(mdPath, []byte(bm.MarkdownReport(study)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote Markdown report to %s\n", mdPath)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := study.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (open in chrome://tracing or Perfetto)\n", tracePath)
	}
	if err := writeMetricsSnapshot(metricsPath); err != nil {
		return err
	}
	if all || impact {
		report, err := bm.ImpactReport(bm.Firefox, bm.Windows, bm.NanoTime)
		if err != nil {
			return err
		}
		fmt.Println(report)
		sweep, err := bm.ServerOverheadReport(bm.Firefox, bm.Windows, bm.NanoTime, runs)
		if err != nil {
			return err
		}
		fmt.Println(sweep)
	}
	if faultimpact {
		fmt.Fprintf(os.Stderr, "running the fault-impact study (%d profiles x %d methods x %d runs)...\n",
			len(bm.FaultProfiles()), len(bm.ComparedMethods()), runs)
		fi, err := bm.RunFaultImpact(context.Background(), bm.FaultImpactOptions{
			Runs:     runs,
			BaseSeed: baseSeed,
			Workers:  workers,
		})
		if err != nil {
			return err
		}
		fmt.Println(fi.Report())
	}
	// Last so the regenerated artifacts above stay byte-identical with
	// and without the flag.
	if cellstats {
		fmt.Println(bm.CellStatsTable(study, 15))
	}
	return nil
}
