package main

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// baselinePattern matches committed trajectory snapshots: BENCH_<n>.json
// where <n> is the PR number that recorded it.
var baselinePattern = regexp.MustCompile(`^BENCH_([0-9]+)\.json$`)

// LatestBaseline finds the highest-numbered committed BENCH_<n>.json in
// dir — the baseline `make bench-diff` gates against when -old is not
// given explicitly. No matching file is an error, never a silent pass:
// a gate without a baseline gates nothing.
func LatestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("benchdiff: baseline discovery: %w", err)
	}
	best, bestName := -1, ""
	for _, e := range entries {
		m := baselinePattern.FindStringSubmatch(e.Name())
		if m == nil || e.IsDir() {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > best {
			best, bestName = n, e.Name()
		}
	}
	if best < 0 {
		return "", fmt.Errorf("benchdiff: no committed BENCH_<n>.json baseline in %s — commit one with 'make bench-json' or pass -old explicitly", dir)
	}
	return bestName, nil
}
