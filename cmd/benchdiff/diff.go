package main

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"github.com/browsermetric/browsermetric/internal/benchfmt"
)

// steadyMetric is the custom benchmark metric carrying the steady-state
// warm-path allocation count (BenchmarkSteadyStateRun reports it via
// b.ReportMetric). It is gated alongside allocs/op because the warm
// number is the one the arena tier drives to zero: a cold allocs/op
// snapshot can hide a warm-path regression behind setup-cost noise.
const steadyMetric = "warm-allocs/run"

// steadySlack is the absolute noise floor for the steady-state gate:
// near zero, a purely relative threshold would flag 0.00 -> 0.02
// measurement jitter, so a regression must also exceed half an object
// per run.
const steadySlack = 0.5

// Diff renders the per-benchmark deltas between two snapshots and returns
// the benchmarks whose allocs/op — or whose warm-allocs/run steady-state
// metric — regressed by more than threshold (a fraction: 0.20 = 20%).
// Benchmarks present in only one snapshot are listed but never counted
// as regressions.
func Diff(oldFile, newFile *benchfmt.File, threshold float64) (report string, regressions []string) {
	oldBy := make(map[string]benchfmt.Result, len(oldFile.Benchmarks))
	for _, r := range oldFile.Benchmarks {
		oldBy[r.Key()] = r
	}

	var sb strings.Builder
	if oldFile.Benchtime != "" || newFile.Benchtime != "" {
		fmt.Fprintf(&sb, "benchtime: old=%s new=%s\n", orDash(oldFile.Benchtime), orDash(newFile.Benchtime))
	}
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op old\tnew\tΔ\tB/op old\tnew\tΔ\tallocs/op old\tnew\tΔ")
	seen := make(map[string]bool, len(newFile.Benchmarks))
	for _, n := range newFile.Benchmarks {
		seen[n.Key()] = true
		o, ok := oldBy[n.Key()]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\t-\t%d\tnew\t-\t%d\tnew\n",
				n.Name, n.NsPerOp, n.BytesPerOp, n.AllocsPerOp)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%d\t%d\t%s\t%d\t%d\t%s\n",
			n.Name,
			o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp),
			o.BytesPerOp, n.BytesPerOp, pct(float64(o.BytesPerOp), float64(n.BytesPerOp)),
			o.AllocsPerOp, n.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(n.AllocsPerOp)))
		if float64(n.AllocsPerOp) > float64(o.AllocsPerOp)*(1+threshold) {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %d -> %d (%s)", n.Key(), o.AllocsPerOp, n.AllocsPerOp,
					pct(float64(o.AllocsPerOp), float64(n.AllocsPerOp))))
		}
		nw, nok := n.Metrics[steadyMetric]
		ow, ook := o.Metrics[steadyMetric]
		if nok && ook {
			fmt.Fprintf(tw, "%s [%s]\t\t\t\t\t\t\t%.2f\t%.2f\t%s\n",
				n.Name, steadyMetric, ow, nw, pct(ow, nw))
			if nw > ow*(1+threshold) && nw-ow > steadySlack {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.2f -> %.2f (%s)", n.Key(), steadyMetric, ow, nw, pct(ow, nw)))
			}
		}
	}
	for _, o := range oldFile.Benchmarks {
		if !seen[o.Key()] {
			fmt.Fprintf(tw, "%s\t%.0f\t-\tgone\t%d\t-\tgone\t%d\t-\tgone\n",
				o.Name, o.NsPerOp, o.BytesPerOp, o.AllocsPerOp)
		}
	}
	tw.Flush()
	return sb.String(), regressions
}

// pct formats the relative change from old to new.
func pct(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0%"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
