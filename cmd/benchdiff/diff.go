package main

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"github.com/browsermetric/browsermetric/internal/benchfmt"
)

// steadyMetric is the custom benchmark metric carrying the steady-state
// warm-path allocation count (BenchmarkSteadyStateRun reports it via
// b.ReportMetric). It is gated alongside allocs/op because the warm
// number is the one the arena tier drives to zero: a cold allocs/op
// snapshot can hide a warm-path regression behind setup-cost noise.
const steadyMetric = "warm-allocs/run"

// steadySlack is the absolute noise floor for the steady-state gate:
// near zero, a purely relative threshold would flag 0.00 -> 0.02
// measurement jitter, so a regression must also exceed half an object
// per run.
const steadySlack = 0.5

// Thresholds bundles the regression gates Diff applies.
type Thresholds struct {
	// Allocs is the allocs/op (and warm-allocs/run) relative regression
	// fraction that fails the diff (0.20 = 20%). Allocation counts are
	// deterministic across machines, so there is no absolute floor.
	Allocs float64
	// Ns is the ns/op relative regression fraction (0 disables the time
	// gate). Wall time is noisy, so this gate is looser than the
	// allocation gate and additionally floored by NsFloor.
	Ns float64
	// NsFloor is the ns/op noise floor: benchmarks whose baseline ns/op
	// is below it are never time-gated (sub-microsecond benchmarks swing
	// far more than any sane threshold run-to-run on shared CI hardware).
	NsFloor float64
}

// Diff renders the per-benchmark deltas between two snapshots and
// returns the benchmarks that regressed past a Thresholds gate, plus how
// many benchmarks the snapshots have in common. Benchmarks present in
// only one snapshot are listed but never counted as regressions; a
// matched count of zero means the diff gated nothing, and the caller
// should fail loudly instead of reporting success.
func Diff(oldFile, newFile *benchfmt.File, th Thresholds) (report string, regressions []string, matched int) {
	oldBy := make(map[string]benchfmt.Result, len(oldFile.Benchmarks))
	for _, r := range oldFile.Benchmarks {
		oldBy[r.Key()] = r
	}

	var sb strings.Builder
	if oldFile.Benchtime != "" || newFile.Benchtime != "" {
		fmt.Fprintf(&sb, "benchtime: old=%s new=%s\n", orDash(oldFile.Benchtime), orDash(newFile.Benchtime))
	}
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op old\tnew\tΔ\tB/op old\tnew\tΔ\tallocs/op old\tnew\tΔ")
	seen := make(map[string]bool, len(newFile.Benchmarks))
	for _, n := range newFile.Benchmarks {
		seen[n.Key()] = true
		o, ok := oldBy[n.Key()]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\t-\t%d\tnew\t-\t%d\tnew\n",
				n.Name, n.NsPerOp, n.BytesPerOp, n.AllocsPerOp)
			continue
		}
		matched++
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%s\t%d\t%d\t%s\t%d\t%d\t%s\n",
			n.Name,
			o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp),
			o.BytesPerOp, n.BytesPerOp, pct(float64(o.BytesPerOp), float64(n.BytesPerOp)),
			o.AllocsPerOp, n.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(n.AllocsPerOp)))
		if float64(n.AllocsPerOp) > float64(o.AllocsPerOp)*(1+th.Allocs) {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %d -> %d (%s)", n.Key(), o.AllocsPerOp, n.AllocsPerOp,
					pct(float64(o.AllocsPerOp), float64(n.AllocsPerOp))))
		}
		if th.Ns > 0 && o.NsPerOp >= th.NsFloor && n.NsPerOp > o.NsPerOp*(1+th.Ns) {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %.0f -> %.0f (%s)", n.Key(), o.NsPerOp, n.NsPerOp,
					pct(o.NsPerOp, n.NsPerOp)))
		}
		nw, nok := n.Metrics[steadyMetric]
		ow, ook := o.Metrics[steadyMetric]
		if nok && ook {
			fmt.Fprintf(tw, "%s [%s]\t\t\t\t\t\t\t%.2f\t%.2f\t%s\n",
				n.Name, steadyMetric, ow, nw, pct(ow, nw))
			if nw > ow*(1+th.Allocs) && nw-ow > steadySlack {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.2f -> %.2f (%s)", n.Key(), steadyMetric, ow, nw, pct(ow, nw)))
			}
		}
	}
	for _, o := range oldFile.Benchmarks {
		if !seen[o.Key()] {
			fmt.Fprintf(tw, "%s\t%.0f\t-\tgone\t%d\t-\tgone\t%d\t-\tgone\n",
				o.Name, o.NsPerOp, o.BytesPerOp, o.AllocsPerOp)
		}
	}
	tw.Flush()
	return sb.String(), regressions, matched
}

// MarkdownTable renders the per-benchmark delta as a GitHub-flavored
// Markdown table for $GITHUB_STEP_SUMMARY: one row per benchmark present
// in both snapshots, plus new/gone rows, with the regressions (if any)
// called out underneath.
func MarkdownTable(oldFile, newFile *benchfmt.File, regressions []string) string {
	oldBy := make(map[string]benchfmt.Result, len(oldFile.Benchmarks))
	for _, r := range oldFile.Benchmarks {
		oldBy[r.Key()] = r
	}
	var sb strings.Builder
	sb.WriteString("### Benchmark delta\n\n")
	if oldFile.Benchtime != "" || newFile.Benchtime != "" {
		fmt.Fprintf(&sb, "benchtime: old=`%s` new=`%s`\n\n", orDash(oldFile.Benchtime), orDash(newFile.Benchtime))
	}
	sb.WriteString("| benchmark | ns/op old | ns/op new | Δ | allocs/op old | allocs/op new | Δ |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	seen := make(map[string]bool, len(newFile.Benchmarks))
	for _, n := range newFile.Benchmarks {
		seen[n.Key()] = true
		o, ok := oldBy[n.Key()]
		if !ok {
			fmt.Fprintf(&sb, "| %s | - | %.0f | new | - | %d | new |\n", n.Name, n.NsPerOp, n.AllocsPerOp)
			continue
		}
		fmt.Fprintf(&sb, "| %s | %.0f | %.0f | %s | %d | %d | %s |\n",
			n.Name,
			o.NsPerOp, n.NsPerOp, pct(o.NsPerOp, n.NsPerOp),
			o.AllocsPerOp, n.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(n.AllocsPerOp)))
		if nw, nok := n.Metrics[steadyMetric]; nok {
			if ow, ook := o.Metrics[steadyMetric]; ook {
				fmt.Fprintf(&sb, "| %s `[%s]` | | | | %.2f | %.2f | %s |\n",
					n.Name, steadyMetric, ow, nw, pct(ow, nw))
			}
		}
	}
	for _, o := range oldFile.Benchmarks {
		if !seen[o.Key()] {
			fmt.Fprintf(&sb, "| %s | %.0f | - | gone | %d | - | gone |\n", o.Name, o.NsPerOp, o.AllocsPerOp)
		}
	}
	if len(regressions) > 0 {
		sb.WriteString("\n**Regressions:**\n\n")
		for _, r := range regressions {
			fmt.Fprintf(&sb, "- ❌ %s\n", r)
		}
	} else {
		sb.WriteString("\n✅ no regressions past the gates\n")
	}
	return sb.String()
}

// pct formats the relative change from old to new.
func pct(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0%"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
