package main

import (
	"strings"
	"testing"

	"github.com/browsermetric/browsermetric/internal/benchfmt"
)

func snap(results ...benchfmt.Result) *benchfmt.File {
	return &benchfmt.File{Benchmarks: results}
}

func res(name string, ns float64, b, allocs int64) benchfmt.Result {
	return benchfmt.Result{Name: name, Package: "pkg", NsPerOp: ns, BytesPerOp: b, AllocsPerOp: allocs}
}

func TestDiffImprovementPasses(t *testing.T) {
	report, regressions := Diff(
		snap(res("BenchmarkA", 1000, 500, 100)),
		snap(res("BenchmarkA", 900, 400, 20)),
		0.20,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none", regressions)
	}
	if !strings.Contains(report, "BenchmarkA") || !strings.Contains(report, "-80.0%") {
		t.Fatalf("report missing delta:\n%s", report)
	}
}

func TestDiffFlagsAllocRegression(t *testing.T) {
	_, regressions := Diff(
		snap(res("BenchmarkA", 1000, 500, 100)),
		snap(res("BenchmarkA", 1000, 500, 121)), // +21% > 20% threshold
		0.20,
	)
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want 1", regressions)
	}
	if !strings.Contains(regressions[0], "100 -> 121") {
		t.Fatalf("regression detail = %q", regressions[0])
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	_, regressions := Diff(
		snap(res("BenchmarkA", 1000, 500, 100)),
		snap(res("BenchmarkA", 5000, 500, 119)), // ns/op noise ignored; +19% allocs OK
		0.20,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none", regressions)
	}
}

func TestDiffHandlesAddedAndRemoved(t *testing.T) {
	report, regressions := Diff(
		snap(res("BenchmarkOld", 1000, 0, 10)),
		snap(res("BenchmarkNew", 1000, 0, 999)),
		0.20,
	)
	if len(regressions) != 0 {
		t.Fatalf("added/removed benchmarks must not regress: %v", regressions)
	}
	if !strings.Contains(report, "new") || !strings.Contains(report, "gone") {
		t.Fatalf("report should mark added/removed:\n%s", report)
	}
}
