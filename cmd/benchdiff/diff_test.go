package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/browsermetric/browsermetric/internal/benchfmt"
)

func snap(results ...benchfmt.Result) *benchfmt.File {
	return &benchfmt.File{Benchmarks: results}
}

func res(name string, ns float64, b, allocs int64) benchfmt.Result {
	return benchfmt.Result{Name: name, Package: "pkg", NsPerOp: ns, BytesPerOp: b, AllocsPerOp: allocs}
}

// allocGate is the historical alloc-only configuration most tests use:
// Ns=0 disables the time gate entirely.
var allocGate = Thresholds{Allocs: 0.20}

// fullGate adds the default ns/op gate (25% over a 1µs floor).
var fullGate = Thresholds{Allocs: 0.20, Ns: 0.25, NsFloor: 1000}

func TestDiffImprovementPasses(t *testing.T) {
	report, regressions, matched := Diff(
		snap(res("BenchmarkA", 1000, 500, 100)),
		snap(res("BenchmarkA", 900, 400, 20)),
		fullGate,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none", regressions)
	}
	if matched != 1 {
		t.Fatalf("matched = %d, want 1", matched)
	}
	if !strings.Contains(report, "BenchmarkA") || !strings.Contains(report, "-80.0%") {
		t.Fatalf("report missing delta:\n%s", report)
	}
}

func TestDiffFlagsAllocRegression(t *testing.T) {
	_, regressions, _ := Diff(
		snap(res("BenchmarkA", 1000, 500, 100)),
		snap(res("BenchmarkA", 1000, 500, 121)), // +21% > 20% threshold
		allocGate,
	)
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want 1", regressions)
	}
	if !strings.Contains(regressions[0], "100 -> 121") {
		t.Fatalf("regression detail = %q", regressions[0])
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	_, regressions, _ := Diff(
		snap(res("BenchmarkA", 1000, 500, 100)),
		snap(res("BenchmarkA", 5000, 500, 119)), // ns/op gate disabled; +19% allocs OK
		allocGate,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none", regressions)
	}
}

func TestDiffFlagsNsRegression(t *testing.T) {
	_, regressions, _ := Diff(
		snap(res("BenchmarkA", 10000, 500, 100)),
		snap(res("BenchmarkA", 13000, 500, 100)), // +30% > 25% threshold
		fullGate,
	)
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want 1", regressions)
	}
	if !strings.Contains(regressions[0], "ns/op 10000 -> 13000") {
		t.Fatalf("regression detail = %q", regressions[0])
	}
}

func TestDiffNsWithinThresholdPasses(t *testing.T) {
	_, regressions, _ := Diff(
		snap(res("BenchmarkA", 10000, 500, 100)),
		snap(res("BenchmarkA", 12000, 500, 100)), // +20% < 25% threshold
		fullGate,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none", regressions)
	}
}

func TestDiffNsNoiseFloor(t *testing.T) {
	// A 3x jump on a 200ns benchmark is scheduling noise on shared CI
	// hardware — under the 1µs floor, never gated.
	_, regressions, _ := Diff(
		snap(res("BenchmarkTiny", 200, 0, 0)),
		snap(res("BenchmarkTiny", 600, 0, 0)),
		fullGate,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none (baseline under the %.0fns floor)", regressions, fullGate.NsFloor)
	}
}

func TestDiffHandlesAddedAndRemoved(t *testing.T) {
	report, regressions, matched := Diff(
		snap(res("BenchmarkOld", 1000, 0, 10)),
		snap(res("BenchmarkNew", 1000, 0, 999)),
		fullGate,
	)
	if len(regressions) != 0 {
		t.Fatalf("added/removed benchmarks must not regress: %v", regressions)
	}
	if matched != 0 {
		t.Fatalf("matched = %d, want 0 (disjoint snapshots)", matched)
	}
	if !strings.Contains(report, "new") || !strings.Contains(report, "gone") {
		t.Fatalf("report should mark added/removed:\n%s", report)
	}
}

// wres builds a Result carrying the steady-state warm-allocs/run metric.
func wres(name string, allocs int64, warm float64) benchfmt.Result {
	r := res(name, 1000, 500, allocs)
	r.Metrics = map[string]float64{steadyMetric: warm}
	return r
}

func TestDiffFlagsSteadyStateRegression(t *testing.T) {
	_, regressions, _ := Diff(
		snap(wres("BenchmarkSteadyStateRun", 100, 1.0)),
		snap(wres("BenchmarkSteadyStateRun", 100, 3.0)), // +200% and +2 objects
		allocGate,
	)
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want 1", regressions)
	}
	if !strings.Contains(regressions[0], steadyMetric) || !strings.Contains(regressions[0], "1.00 -> 3.00") {
		t.Fatalf("regression detail = %q", regressions[0])
	}
}

func TestDiffSteadyStateNoiseFloorNearZero(t *testing.T) {
	// 0.00 -> 0.30 is a huge relative jump but under half an object per
	// run: measurement jitter, not a regression.
	_, regressions, _ := Diff(
		snap(wres("BenchmarkSteadyStateRun", 100, 0.0)),
		snap(wres("BenchmarkSteadyStateRun", 100, 0.3)),
		allocGate,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none (under the %.1f-object noise floor)", regressions, steadySlack)
	}
	// A whole new object per run from zero must fail even though the
	// cold allocs/op column is unchanged.
	_, regressions, _ = Diff(
		snap(wres("BenchmarkSteadyStateRun", 100, 0.0)),
		snap(wres("BenchmarkSteadyStateRun", 100, 1.0)),
		allocGate,
	)
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want 1", regressions)
	}
}

func TestDiffSteadyStateMetricInReport(t *testing.T) {
	report, _, _ := Diff(
		snap(wres("BenchmarkSteadyStateRun", 100, 2.0)),
		snap(wres("BenchmarkSteadyStateRun", 100, 1.0)),
		allocGate,
	)
	if !strings.Contains(report, steadyMetric) || !strings.Contains(report, "-50.0%") {
		t.Fatalf("report missing steady-state row:\n%s", report)
	}
}

func TestDiffSteadyStateMissingInOneSnapshotIgnored(t *testing.T) {
	// A baseline without the metric (pre-gate snapshots) never trips the
	// gate; only allocs/op is compared.
	_, regressions, _ := Diff(
		snap(res("BenchmarkSteadyStateRun", 1000, 500, 100)),
		snap(wres("BenchmarkSteadyStateRun", 100, 50.0)),
		allocGate,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none", regressions)
	}
}

func TestMarkdownTable(t *testing.T) {
	oldSnap := snap(res("BenchmarkA", 10000, 500, 100), res("BenchmarkGone", 1, 0, 0))
	newSnap := snap(res("BenchmarkA", 13000, 500, 121), res("BenchmarkFresh", 1, 0, 0))
	_, regressions, _ := Diff(oldSnap, newSnap, fullGate)
	md := MarkdownTable(oldSnap, newSnap, regressions)
	for _, want := range []string{
		"### Benchmark delta",
		"| BenchmarkA | 10000 | 13000 | +30.0% | 100 | 121 | +21.0% |",
		"| BenchmarkFresh | - |",
		"| BenchmarkGone | 1 | - | gone |",
		"**Regressions:**",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	clean := MarkdownTable(oldSnap, oldSnap, nil)
	if !strings.Contains(clean, "no regressions") {
		t.Errorf("clean table missing the all-clear line:\n%s", clean)
	}
}

func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_3.json", "BENCH_9.json", "BENCH_10.json", "BENCH_ci.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric ordering, not lexical: 10 > 9 even though "10" < "9".
	if got != "BENCH_10.json" {
		t.Fatalf("LatestBaseline = %q, want BENCH_10.json", got)
	}
}

func TestLatestBaselineFailsLoudlyWhenMissing(t *testing.T) {
	dir := t.TempDir()
	// Near-misses only: the CI snapshot, a non-numeric name, a stray file.
	for _, name := range []string{"BENCH_ci.json", "BENCH_.json", "bench_3.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LatestBaseline(dir); err == nil {
		t.Fatal("LatestBaseline found a baseline in a dir with none")
	} else if !strings.Contains(err.Error(), "no committed BENCH_<n>.json baseline") {
		t.Fatalf("error should explain the missing baseline: %v", err)
	}
}

func TestAppendSummaryCreatesAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "summary.md")
	if err := appendSummary(path, "first"); err != nil {
		t.Fatal(err)
	}
	if err := appendSummary(path, "second"); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b); got != "first\nsecond\n" {
		t.Fatalf("summary content = %q", got)
	}
}
