package main

import (
	"strings"
	"testing"

	"github.com/browsermetric/browsermetric/internal/benchfmt"
)

func snap(results ...benchfmt.Result) *benchfmt.File {
	return &benchfmt.File{Benchmarks: results}
}

func res(name string, ns float64, b, allocs int64) benchfmt.Result {
	return benchfmt.Result{Name: name, Package: "pkg", NsPerOp: ns, BytesPerOp: b, AllocsPerOp: allocs}
}

func TestDiffImprovementPasses(t *testing.T) {
	report, regressions := Diff(
		snap(res("BenchmarkA", 1000, 500, 100)),
		snap(res("BenchmarkA", 900, 400, 20)),
		0.20,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none", regressions)
	}
	if !strings.Contains(report, "BenchmarkA") || !strings.Contains(report, "-80.0%") {
		t.Fatalf("report missing delta:\n%s", report)
	}
}

func TestDiffFlagsAllocRegression(t *testing.T) {
	_, regressions := Diff(
		snap(res("BenchmarkA", 1000, 500, 100)),
		snap(res("BenchmarkA", 1000, 500, 121)), // +21% > 20% threshold
		0.20,
	)
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want 1", regressions)
	}
	if !strings.Contains(regressions[0], "100 -> 121") {
		t.Fatalf("regression detail = %q", regressions[0])
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	_, regressions := Diff(
		snap(res("BenchmarkA", 1000, 500, 100)),
		snap(res("BenchmarkA", 5000, 500, 119)), // ns/op noise ignored; +19% allocs OK
		0.20,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none", regressions)
	}
}

func TestDiffHandlesAddedAndRemoved(t *testing.T) {
	report, regressions := Diff(
		snap(res("BenchmarkOld", 1000, 0, 10)),
		snap(res("BenchmarkNew", 1000, 0, 999)),
		0.20,
	)
	if len(regressions) != 0 {
		t.Fatalf("added/removed benchmarks must not regress: %v", regressions)
	}
	if !strings.Contains(report, "new") || !strings.Contains(report, "gone") {
		t.Fatalf("report should mark added/removed:\n%s", report)
	}
}

// wres builds a Result carrying the steady-state warm-allocs/run metric.
func wres(name string, allocs int64, warm float64) benchfmt.Result {
	r := res(name, 1000, 500, allocs)
	r.Metrics = map[string]float64{steadyMetric: warm}
	return r
}

func TestDiffFlagsSteadyStateRegression(t *testing.T) {
	_, regressions := Diff(
		snap(wres("BenchmarkSteadyStateRun", 100, 1.0)),
		snap(wres("BenchmarkSteadyStateRun", 100, 3.0)), // +200% and +2 objects
		0.20,
	)
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want 1", regressions)
	}
	if !strings.Contains(regressions[0], steadyMetric) || !strings.Contains(regressions[0], "1.00 -> 3.00") {
		t.Fatalf("regression detail = %q", regressions[0])
	}
}

func TestDiffSteadyStateNoiseFloorNearZero(t *testing.T) {
	// 0.00 -> 0.30 is a huge relative jump but under half an object per
	// run: measurement jitter, not a regression.
	_, regressions := Diff(
		snap(wres("BenchmarkSteadyStateRun", 100, 0.0)),
		snap(wres("BenchmarkSteadyStateRun", 100, 0.3)),
		0.20,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none (under the %.1f-object noise floor)", regressions, steadySlack)
	}
	// A whole new object per run from zero must fail even though the
	// cold allocs/op column is unchanged.
	_, regressions = Diff(
		snap(wres("BenchmarkSteadyStateRun", 100, 0.0)),
		snap(wres("BenchmarkSteadyStateRun", 100, 1.0)),
		0.20,
	)
	if len(regressions) != 1 {
		t.Fatalf("regressions = %v, want 1", regressions)
	}
}

func TestDiffSteadyStateMetricInReport(t *testing.T) {
	report, _ := Diff(
		snap(wres("BenchmarkSteadyStateRun", 100, 2.0)),
		snap(wres("BenchmarkSteadyStateRun", 100, 1.0)),
		0.20,
	)
	if !strings.Contains(report, steadyMetric) || !strings.Contains(report, "-50.0%") {
		t.Fatalf("report missing steady-state row:\n%s", report)
	}
}

func TestDiffSteadyStateMissingInOneSnapshotIgnored(t *testing.T) {
	// A baseline without the metric (pre-gate snapshots) never trips the
	// gate; only allocs/op is compared.
	_, regressions := Diff(
		snap(res("BenchmarkSteadyStateRun", 1000, 500, 100)),
		snap(wres("BenchmarkSteadyStateRun", 100, 50.0)),
		0.20,
	)
	if len(regressions) != 0 {
		t.Fatalf("regressions = %v, want none", regressions)
	}
}
