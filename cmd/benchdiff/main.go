// Command benchdiff compares two perf-trajectory snapshots (written by
// cmd/benchjson) and prints the ns/op, B/op and allocs/op delta for every
// benchmark present in both. It exits non-zero when any benchmark's
// allocs/op regressed by more than -threshold (default 20%) or any
// benchmark's ns/op regressed by more than -ns-threshold (default 25%,
// gated only above the -ns-floor noise floor so sub-microsecond
// benchmarks don't flap on shared CI hardware). Snapshots that share no
// benchmarks fail the diff outright — a gate that matches nothing is a
// misconfiguration, not a pass.
//
// When -summary is set (it defaults to $GITHUB_STEP_SUMMARY), a Markdown
// delta table is appended to that file for the CI job summary page.
//
// Usage:
//
//	benchdiff -old BENCH_3.json -new BENCH_4.json
//	benchdiff -old BENCH_4.json -new BENCH_ci.json -threshold 0.2 -ns-threshold 0.25
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/browsermetric/browsermetric/internal/benchfmt"
)

func main() {
	var (
		oldPath     = flag.String("old", "", "baseline snapshot (default: highest committed BENCH_<n>.json; errors if none exists)")
		newPath     = flag.String("new", "", "candidate snapshot (required)")
		threshold   = flag.Float64("threshold", 0.20, "allocs/op regression fraction that fails the diff")
		nsThreshold = flag.Float64("ns-threshold", 0.25, "ns/op regression fraction that fails the diff (0 disables the time gate)")
		nsFloor     = flag.Float64("ns-floor", 1000, "ns/op noise floor: benchmarks whose baseline is faster than this are never time-gated")
		summaryPath = flag.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"), "append a Markdown delta table to this file (defaults to $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	if *oldPath == "" {
		// Auto-discover the latest committed BENCH_<n>.json baseline.
		p, err := LatestBaseline(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: baseline %s\n", p)
		*oldPath = p
	}
	oldFile, err := benchfmt.ReadFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newFile, err := benchfmt.ReadFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(oldFile.Benchmarks) == 0 || len(newFile.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: empty snapshot (%s has %d benchmarks, %s has %d) — nothing to gate\n",
			*oldPath, len(oldFile.Benchmarks), *newPath, len(newFile.Benchmarks))
		os.Exit(2)
	}
	th := Thresholds{Allocs: *threshold, Ns: *nsThreshold, NsFloor: *nsFloor}
	report, regressions, matched := Diff(oldFile, newFile, th)
	fmt.Print(report)
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %s and %s share no benchmarks — the gate matched nothing (renamed benchmarks? wrong baseline?)\n",
			*oldPath, *newPath)
		os.Exit(2)
	}
	if *summaryPath != "" {
		if err := appendSummary(*summaryPath, MarkdownTable(oldFile, newFile, regressions)); err != nil {
			// The summary is advisory output; report but never let it
			// mask the gate result.
			fmt.Fprintln(os.Stderr, "benchdiff: summary:", err)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) past the gates (allocs/op >%.0f%%, ns/op >%.0f%% above %.0fns):\n",
			len(regressions), *threshold*100, *nsThreshold*100, *nsFloor)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}

// appendSummary appends markdown to the step-summary file (created if
// missing: GitHub runners pre-create it, local runs may not).
func appendSummary(path, markdown string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(markdown + "\n"); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
