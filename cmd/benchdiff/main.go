// Command benchdiff compares two perf-trajectory snapshots (written by
// cmd/benchjson) and prints the ns/op, B/op and allocs/op delta for every
// benchmark present in both. It exits non-zero when any benchmark's
// allocs/op regressed by more than the threshold (default 20%), so CI can
// gate on allocation regressions — the one metric of the three that is
// deterministic across machines.
//
// Usage:
//
//	benchdiff -old BENCH_3.json -new BENCH_4.json
//	benchdiff -old BENCH_4.json -new BENCH_ci.json -threshold 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/browsermetric/browsermetric/internal/benchfmt"
)

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline snapshot (required)")
		newPath   = flag.String("new", "", "candidate snapshot (required)")
		threshold = flag.Float64("threshold", 0.20, "allocs/op regression fraction that fails the diff")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldFile, err := benchfmt.ReadFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newFile, err := benchfmt.ReadFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	report, regressions := Diff(oldFile, newFile, *threshold)
	fmt.Print(report)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d allocs/op regression(s) above %.0f%%:\n", len(regressions), *threshold*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}
