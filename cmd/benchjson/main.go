// Command benchjson converts `go test -bench` text output into the
// repository's perf-trajectory JSON format. `make bench-json` pipes the
// committed benchmarks through it and writes BENCH_<pr>.json, so every
// PR leaves a machine-readable ns/op, B/op and allocs/op snapshot that
// CI archives as an artifact.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... > bench.out
//	benchjson -in bench.out -out BENCH_3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the trajectory snapshot: environment header plus every
// benchmark, sorted by package then name for stable diffs.
type File struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		in  = flag.String("in", "", "benchmark output to read (empty = stdin)")
		out = flag.String("out", "", "JSON file to write (empty = stdout)")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	file, err := Parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(file.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(file.Benchmarks), *out)
	}
}

// Parse reads `go test -bench -benchmem` output. Benchmark lines look
// like:
//
//	BenchmarkRunStudy-8  38  30802498 ns/op  5272947 B/op  33772 allocs/op
//
// goos/goarch/cpu/pkg header lines annotate the results; everything else
// (PASS, ok, test logs) is skipped.
func Parse(r io.Reader) (*File, error) {
	file := &File{}
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			file.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			file.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			file.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		res := Result{Package: pkg}
		// Strip the -GOMAXPROCS suffix from the name.
		res.Name = fields[0]
		if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
			if _, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				res.Name = res.Name[:i]
			}
		}
		var err error
		if res.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		if res.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue // non-integer custom metric; skip
			}
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		file.Benchmarks = append(file.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(file.Benchmarks, func(i, j int) bool {
		a, b := file.Benchmarks[i], file.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	return file, nil
}
