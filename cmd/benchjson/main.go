// Command benchjson converts `go test -bench` text output into the
// repository's perf-trajectory JSON format (internal/benchfmt).
// `make bench-json` pipes the committed benchmarks through it and writes
// BENCH_<pr>.json, so every PR leaves a machine-readable ns/op, B/op and
// allocs/op snapshot that CI archives as an artifact.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime 3x ./... > bench.out
//	benchjson -in bench.out -benchtime 3x -out BENCH_4.json
//
// -benchtime does not rerun anything; it records the setting the `go
// test` invocation used in the snapshot header, so a reader can tell an
// iterations-starved 1x snapshot from a stable multi-iteration one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/browsermetric/browsermetric/internal/benchfmt"
)

func main() {
	var (
		in        = flag.String("in", "", "benchmark output to read (empty = stdin)")
		out       = flag.String("out", "", "JSON file to write (empty = stdout)")
		benchtime = flag.String("benchtime", "", "-benchtime the run used, recorded in the snapshot header")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	file, err := benchfmt.Parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(file.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	file.Benchtime = *benchtime

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(file.Benchmarks), *out)
	}
}
