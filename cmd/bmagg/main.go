// Command bmagg runs the root aggregator of the multi-node fleet plane:
// collectors (bmserver -live -uplink, or loadgen -uplink) POST their
// per-tick delta-sketch frames to /ingest, and bmagg merges them into
// cluster-wide cumulative aggregates keyed by (node, method, browser,
// region).
//
// Usage:
//
//	bmagg                          # listen on 127.0.0.1:9310
//	bmagg -addr 0.0.0.0:9310       # expose on all interfaces
//	bmagg -interval 1s             # cluster snapshot publish period
//	bmagg -stale-after 5s          # node silence before it reports stale
//	bmagg -history-depth 128       # dashboard history ring size
//	bmagg -duration 30s            # exit after a fixed time (0 = run forever)
//
// The one listener serves everything: /ingest (frame intake), /live
// (the streaming dashboard over the cluster view), /live/history
// (snapshot ring), /metrics, /healthz (liveness), /readyz (ready once
// the first frame is merged) and /debug/pprof/*.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/browsermetric/browsermetric/internal/fleet"
	"github.com/browsermetric/browsermetric/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9310", "listen address")
		interval     = flag.Duration("interval", time.Second, "cluster snapshot publish period")
		staleAfter   = flag.Duration("stale-after", 0, "node silence before it reports stale (default 3x -interval)")
		historyDepth = flag.Int("history-depth", 64, "snapshots retained for /live/history and reconnect replay")
		historyEvery = flag.Int("history-every", 1, "record every Nth changed snapshot into history")
		duration     = flag.Duration("duration", 0, "exit after this long (0 = until interrupted)")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bmagg: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	reg := obs.NewMetrics()
	obs.RegisterBuildInfo(reg)
	agg := fleet.NewAggregator(fleet.AggConfig{
		Interval:     *interval,
		StaleAfter:   *staleAfter,
		Metrics:      reg,
		HistoryDepth: *historyDepth,
		HistoryEvery: *historyEvery,
	})
	agg.Start()

	ops, err := obs.StartOps(*addr, reg,
		obs.Route{Pattern: "/ingest", Handler: agg.IngestHandler()},
		obs.Route{Pattern: "/live", Handler: agg.LiveHandler()},
		obs.Route{Pattern: "/live/history", Handler: agg.HistoryHandler()},
		obs.ReadyzRoute(agg.Ready),
	)
	if err != nil {
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	}
	fmt.Printf("bmagg up\n")
	fmt.Printf("  ingest      : http://%s/ingest\n", ops.Addr())
	fmt.Printf("  dashboard   : http://%s/live\n", ops.Addr())
	fmt.Printf("  history     : http://%s/live/history\n", ops.Addr())
	fmt.Printf("  metrics     : http://%s/metrics\n", ops.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case sig := <-stop:
			logger.Info("signal received", "signal", fmt.Sprint(sig))
		case <-time.After(*duration):
			logger.Info("duration elapsed", "duration", duration.String())
		}
	} else {
		sig := <-stop
		logger.Info("signal received", "signal", fmt.Sprint(sig))
	}

	agg.Stop()
	snap := agg.Snapshot()
	fmt.Printf("cluster: %d nodes, %d series, %d sessions at seq %d\n",
		len(snap.Nodes), len(snap.Keys), snap.Sessions, snap.Seq)
	_ = ops.Close()
}
