// Command bmserver runs the real-network measurement server: HTTP probe
// endpoints, a WebSocket echo service and TCP/UDP echo services that the
// live client drivers (and, with a suitable page, real browsers) can
// measure against.
//
// Usage:
//
//	bmserver                        # bind loopback, no artificial delay
//	bmserver -host 0.0.0.0          # expose on all interfaces
//	bmserver -delay 50ms            # emulate the paper's testbed delay
//	bmserver -duration 10s          # exit after a fixed time (0 = run forever)
//	bmserver -metrics-addr :9091    # serve /metrics, /healthz, /debug/pprof/*
//	bmserver -metrics-addr :9091 -live  # + fleet plane and /live dashboard
//	bmserver -metrics-addr :9091 -live -uplink http://root:9310/ingest -node c1
//	                                # + ship fan-in deltas to a bmagg root
//	bmserver -log-level debug       # JSON request logs on stderr
//
// With -metrics-addr set, /metrics exposes the Prometheus text format:
// per-endpoint request counters, service-latency quantile sketches
// (p50/p95/p99 from a bounded-memory streaming sketch) and the
// artificial-delay knob as its own series. SIGINT/SIGTERM trigger a
// graceful drain: listeners close first, in-flight exchanges finish (up
// to -drain-timeout), and only then are final stats printed — so every
// exchange is counted exactly once.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	bm "github.com/browsermetric/browsermetric"
	"github.com/browsermetric/browsermetric/internal/fleet"
	"github.com/browsermetric/browsermetric/internal/obs"
)

func main() {
	var (
		host        = flag.String("host", "127.0.0.1", "bind address")
		delay       = flag.Duration("delay", 0, "artificial response delay")
		duration    = flag.Duration("duration", 0, "exit after this long (0 = until interrupted)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof/* on this address (empty = disabled)")
		live        = flag.Bool("live", false, "with -metrics-addr: run the fleet aggregation plane and serve the /live streaming dashboard")
		fanin       = flag.Duration("fanin", time.Second, "fleet fan-in period (with -live)")
		uplink      = flag.String("uplink", "", "with -live: ship fan-in deltas to this bmagg ingest URL (e.g. http://root:9310/ingest)")
		node        = flag.String("node", "", "collector name on the wire (required with -uplink)")
		drainWait   = flag.Duration("drain-timeout", 5*time.Second, "how long a graceful drain waits for in-flight exchanges")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bmserver: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// The wall-clock registry only exists when something can scrape it;
	// with metrics disabled the instrumented paths cost nothing (nil
	// registry no-ops).
	var reg *obs.Metrics
	if *metricsAddr != "" {
		reg = obs.NewMetrics()
		obs.RegisterBuildInfo(reg)
	}

	// The fleet plane aggregates self-identified probe sessions and
	// streams per-(method, browser, region) delay aggregates on /live.
	// With -uplink it is a collector in a multi-node fleet: each fan-in
	// tick's deltas also ship to the root aggregator.
	var fl *fleet.Registry
	var up *fleet.Uplink
	if *live && *metricsAddr != "" {
		cfg := fleet.Config{Metrics: reg, Interval: *fanin}
		if *uplink != "" {
			var err error
			up, err = fleet.NewUplink(fleet.UplinkConfig{Node: *node, URL: *uplink, Metrics: reg})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bmserver:", err)
				os.Exit(2)
			}
			cfg.DeltaSink = up.Sink
		}
		fl = fleet.New(cfg)
		fl.Start()
	}

	srv, err := bm.StartServer(bm.ServerConfig{Host: *host, Delay: *delay, Metrics: reg, Logger: logger, Fleet: fl})
	if err != nil {
		logger.Error("start failed", "err", err)
		os.Exit(1)
	}

	var ops *obs.OpsServer
	if *metricsAddr != "" {
		var extra []obs.Route
		if fl != nil {
			extra = append(extra,
				obs.Route{Pattern: "/live", Handler: fl.LiveHandler()},
				obs.Route{Pattern: "/live/history", Handler: fl.HistoryHandler()})
		}
		// Readiness: a collector is ready once the root has acked a
		// frame; a standalone live server once the first fan-in ran;
		// without the fleet plane the server is ready at bind.
		switch {
		case up != nil:
			extra = append(extra, obs.ReadyzRoute(up.Ready))
		case fl != nil:
			extra = append(extra, obs.ReadyzRoute(func() bool { return fl.Snapshot().Seq > 0 }))
		default:
			extra = append(extra, obs.ReadyzRoute(nil))
		}
		ops, err = obs.StartOps(*metricsAddr, reg, extra...)
		if err != nil {
			logger.Error("metrics endpoint failed", "err", err)
			srv.Close()
			os.Exit(1)
		}
		logger.Info("metrics endpoint up", "addr", ops.Addr(), "live", fl != nil)
	}

	a := srv.Addrs()
	fmt.Printf("bmserver up (delay=%v)\n", *delay)
	fmt.Printf("  HTTP probes : http://%s/probe   (container at /)\n", a.HTTP)
	fmt.Printf("  WebSocket   : ws://%s/ws\n", a.WS)
	fmt.Printf("  TCP echo    : %s\n", a.TCPEcho)
	fmt.Printf("  UDP echo    : %s\n", a.UDPEcho)
	if ops != nil {
		fmt.Printf("  metrics     : http://%s/metrics\n", ops.Addr())
		if fl != nil {
			fmt.Printf("  dashboard   : http://%s/live\n", ops.Addr())
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case sig := <-stop:
			logger.Info("signal received", "signal", fmt.Sprint(sig))
		case <-time.After(*duration):
			logger.Info("duration elapsed", "duration", duration.String())
		}
	} else {
		sig := <-stop
		logger.Info("signal received", "signal", fmt.Sprint(sig))
	}

	// Drain before reading stats: listeners close first and in-flight
	// exchanges complete, so each one is counted exactly once.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	if err := srv.Drain(ctx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	cancel()
	h, w, t, u := srv.Stats()
	fmt.Printf("served: %d http, %d ws, %d tcp, %d udp exchanges\n", h, w, t, u)
	if fl != nil {
		fl.Stop()
	}
	if up != nil {
		up.Stop() // final best-effort flush to the root
	}
	if ops != nil {
		_ = ops.Close()
	}
}
