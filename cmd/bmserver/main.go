// Command bmserver runs the real-network measurement server: HTTP probe
// endpoints, a WebSocket echo service and TCP/UDP echo services that the
// live client drivers (and, with a suitable page, real browsers) can
// measure against.
//
// Usage:
//
//	bmserver                 # bind loopback, no artificial delay
//	bmserver -host 0.0.0.0   # expose on all interfaces
//	bmserver -delay 50ms     # emulate the paper's testbed delay
//	bmserver -duration 10s   # exit after a fixed time (0 = run forever)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	bm "github.com/browsermetric/browsermetric"
)

func main() {
	var (
		host     = flag.String("host", "127.0.0.1", "bind address")
		delay    = flag.Duration("delay", 0, "artificial response delay")
		duration = flag.Duration("duration", 0, "exit after this long (0 = until interrupted)")
	)
	flag.Parse()

	srv, err := bm.StartServer(bm.ServerConfig{Host: *host, Delay: *delay})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmserver:", err)
		os.Exit(1)
	}
	defer srv.Close()

	a := srv.Addrs()
	fmt.Printf("bmserver up (delay=%v)\n", *delay)
	fmt.Printf("  HTTP probes : http://%s/probe   (container at /)\n", a.HTTP)
	fmt.Printf("  WebSocket   : ws://%s/ws\n", a.WS)
	fmt.Printf("  TCP echo    : %s\n", a.TCPEcho)
	fmt.Printf("  UDP echo    : %s\n", a.UDPEcho)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	if *duration > 0 {
		select {
		case <-stop:
		case <-time.After(*duration):
		}
	} else {
		<-stop
	}
	h, w, t, u := srv.Stats()
	fmt.Printf("served: %d http, %d ws, %d tcp, %d udp exchanges\n", h, w, t, u)
}
