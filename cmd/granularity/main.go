// Command granularity reproduces the paper's Figure 5 probe: spin on a
// timing API until its value changes and report the step. It runs both
// against the simulated Windows Date.getTime() model (showing the
// 1 ms / ~15.6 ms regime switching) and against this host's real clocks.
//
// Usage:
//
//	granularity             # simulated probe across the regime cycle
//	granularity -host       # probe the real host clock too
//	granularity -points 20  # number of simulated probe points
package main

import (
	"flag"
	"fmt"
	"time"

	bm "github.com/browsermetric/browsermetric"
)

func main() {
	var (
		points = flag.Int("points", 12, "simulated probe points across the regime cycle")
		host   = flag.Bool("host", false, "also probe this machine's real clock")
	)
	flag.Parse()

	report, distinct := bm.Fig5(*points)
	fmt.Print(report)
	fmt.Printf("(the paper observed exactly these two levels: 1ms and ~15.6ms)\n\n")
	_ = distinct

	if *host {
		fmt.Println("host clock probe (time.Now's wall reading, Figure 5 loop):")
		for i := 0; i < 5; i++ {
			g := probeHost()
			fmt.Printf("  observed granularity: %v\n", g)
		}
	}
}

// probeHost is the Figure 5 loop against the real clock: query until the
// millisecond-truncated value changes.
func probeHost() time.Duration {
	trunc := func() time.Duration {
		return time.Duration(time.Now().UnixNano()) / time.Millisecond * time.Millisecond
	}
	start := trunc()
	for {
		if cur := trunc(); cur != start {
			return cur - start
		}
	}
}
