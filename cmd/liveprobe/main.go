// Command liveprobe appraises the live client stacks against a running
// bmserver (or a private one it starts itself), printing per-stack delay
// overheads — the real-socket analogue of cmd/appraise.
//
// Usage:
//
//	liveprobe                      # self-contained: starts its own server
//	liveprobe -delay 20ms          # with an artificial path delay
//	liveprobe -http H -ws W -tcp T -udp U   # probe an external bmserver
//	liveprobe -probes 50
//	liveprobe -metrics client.prom # write the client-side scrape file
//
// -metrics writes the client-side registry (per-method probe RTT, wire
// RTT and Δd attribution sketches, mirroring the simulator's stage_*
// series names) as a Prometheus text-format scrape file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	bm "github.com/browsermetric/browsermetric"
	"github.com/browsermetric/browsermetric/internal/liveclient"
	"github.com/browsermetric/browsermetric/internal/obs"
)

func main() {
	var (
		httpAddr    = flag.String("http", "", "HTTP probe address (host:port); empty = start a private server")
		wsAddr      = flag.String("ws", "", "WebSocket address")
		tcpAddr     = flag.String("tcp", "", "TCP echo address")
		udpAddr     = flag.String("udp", "", "UDP echo address")
		probes      = flag.Int("probes", 25, "probes per client stack")
		delay       = flag.Duration("delay", 10*time.Millisecond, "artificial delay for the private server")
		metricsFile = flag.String("metrics", "", "write the client-side Prometheus scrape to this file (empty = disabled)")
	)
	flag.Parse()

	addrs := liveclient.Addrs{HTTP: *httpAddr, WS: *wsAddr, TCPEcho: *tcpAddr, UDPEcho: *udpAddr}
	if addrs.HTTP == "" {
		srv, err := bm.StartServer(bm.ServerConfig{Delay: *delay})
		if err != nil {
			fmt.Fprintln(os.Stderr, "liveprobe:", err)
			os.Exit(1)
		}
		defer srv.Close()
		a := srv.Addrs()
		addrs = liveclient.Addrs{HTTP: a.HTTP, WS: a.WS, TCPEcho: a.TCPEcho, UDPEcho: a.UDPEcho}
		fmt.Printf("private server up (delay=%v)\n", *delay)
	}

	var reg *obs.Metrics
	if *metricsFile != "" {
		reg = obs.NewMetrics()
		obs.RegisterBuildInfo(reg)
	}
	rows, err := liveclient.RunStudyWithOptions(addrs, liveclient.StudyOptions{Probes: *probes, Metrics: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "liveprobe:", err)
		os.Exit(1)
	}
	if reg != nil {
		f, err := os.Create(*metricsFile)
		if err == nil {
			err = reg.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "liveprobe: metrics:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "client metrics written to %s\n", *metricsFile)
	}
	fmt.Printf("\n%-22s %12s %14s %16s %14s\n", "client stack", "probes", "median Δd", "mean ± 95% CI", "wire RTT")
	for _, r := range rows {
		fmt.Printf("%-22s %12d %11.3f ms %8.3f±%.3f ms %11.2f ms\n",
			r.Name, r.Box.N, r.Box.Median, r.Mean, r.CIHalf, r.WireRTTMedian)
	}
}
