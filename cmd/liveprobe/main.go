// Command liveprobe appraises the live client stacks against a running
// bmserver (or a private one it starts itself), printing per-stack delay
// overheads — the real-socket analogue of cmd/appraise.
//
// Usage:
//
//	liveprobe                      # self-contained: starts its own server
//	liveprobe -delay 20ms          # with an artificial path delay
//	liveprobe -http H -ws W -tcp T -udp U   # probe an external bmserver
//	liveprobe -probes 50
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	bm "github.com/browsermetric/browsermetric"
	"github.com/browsermetric/browsermetric/internal/liveclient"
)

func main() {
	var (
		httpAddr = flag.String("http", "", "HTTP probe address (host:port); empty = start a private server")
		wsAddr   = flag.String("ws", "", "WebSocket address")
		tcpAddr  = flag.String("tcp", "", "TCP echo address")
		udpAddr  = flag.String("udp", "", "UDP echo address")
		probes   = flag.Int("probes", 25, "probes per client stack")
		delay    = flag.Duration("delay", 10*time.Millisecond, "artificial delay for the private server")
	)
	flag.Parse()

	addrs := liveclient.Addrs{HTTP: *httpAddr, WS: *wsAddr, TCPEcho: *tcpAddr, UDPEcho: *udpAddr}
	if addrs.HTTP == "" {
		srv, err := bm.StartServer(bm.ServerConfig{Delay: *delay})
		if err != nil {
			fmt.Fprintln(os.Stderr, "liveprobe:", err)
			os.Exit(1)
		}
		defer srv.Close()
		a := srv.Addrs()
		addrs = liveclient.Addrs{HTTP: a.HTTP, WS: a.WS, TCPEcho: a.TCPEcho, UDPEcho: a.UDPEcho}
		fmt.Printf("private server up (delay=%v)\n", *delay)
	}

	rows, err := liveclient.RunStudy(addrs, *probes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "liveprobe:", err)
		os.Exit(1)
	}
	fmt.Printf("\n%-22s %12s %14s %16s %14s\n", "client stack", "probes", "median Δd", "mean ± 95% CI", "wire RTT")
	for _, r := range rows {
		fmt.Printf("%-22s %12d %11.3f ms %8.3f±%.3f ms %11.2f ms\n",
			r.Name, r.Box.N, r.Box.Median, r.Mean, r.CIHalf, r.WireRTTMedian)
	}
}
