// Command loadgen is the fleet-scale load proof: it drives the fleet
// aggregation plane with very many concurrent synthetic probe sessions
// and verifies the observability pipeline holds up — bounded heap,
// live fan-in, a streaming dashboard that keeps delivering, and a
// byte-stable /metrics exposition.
//
// Each synthetic session is one (method, browser, region) client whose
// delay samples come from the calibrated internal/browser timestamp
// models: a per-region base RTT plus the profile's send- and
// receive-path cost draws, so the aggregate distributions have the
// paper's browser-dependent shapes rather than white noise.
//
// Usage:
//
//	loadgen                        # 100k sessions, 5 samples each
//	loadgen -sessions 10000        # scaled-down CI shape
//	loadgen -assert-heap-mb 256    # fail if live heap exceeds the ceiling
//	loadgen -metrics-addr :9091    # scrape /metrics, watch /live while it runs
//	loadgen -uplink http://root:9310/ingest -node c1 -round-delay 300ms
//	                               # act as one collector of a bmagg cluster
//
// Exit status is non-zero when an assertion fails: the heap ceiling,
// the concurrent-session floor, sample conservation, or /metrics
// byte-stability.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/fleet"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// region is one synthetic client population: a base RTT and a loss
// probability, the network-side half of each sample.
type region struct {
	name string
	base float64 // ms
	loss float64
}

var regions = []region{
	{name: "us", base: 20, loss: 0.002},
	{name: "eu", base: 35, loss: 0.003},
	{name: "ap", base: 70, loss: 0.008},
	{name: "sa", base: 95, loss: 0.012},
}

// method maps a fleet method label to the browser API whose cost model
// shapes the client-side overhead.
type method struct {
	label string
	api   browser.API
	post  bool
}

var methods = []method{
	{label: "http-get", api: browser.APIXHR},
	{label: "http-post", api: browser.APIXHR, post: true},
	{label: "websocket", api: browser.APIWebSocket},
	{label: "tcp", api: browser.APIJavaSocket},
	{label: "udp", api: browser.APIJavaUDP},
}

// client is one synthetic session's fixed identity. Per-session state
// beyond this (the jitter anchor) lives inside the fleet registry — that
// is the memory the load proof bounds.
type client struct {
	id      uint64
	key     fleet.Key
	profile *browser.Profile
	api     browser.API
	post    bool
	lossP   float64
	baseMs  float64
}

// buildClients deals sessions across the method × profile × region
// populations. Profiles that lack an API (IE/Safari WebSocket) fall back
// to XHR, mirroring how real tools degrade.
func buildClients(n int) []client {
	profiles := browser.Profiles()
	clients := make([]client, n)
	for i := range clients {
		m := methods[i%len(methods)]
		p := profiles[(i/len(methods))%len(profiles)]
		reg := regions[(i/(len(methods)*len(profiles)))%len(regions)]
		api := m.api
		if !p.Supports(api) {
			api = browser.APIXHR
		}
		clients[i] = client{
			id:      uint64(i + 1),
			key:     fleet.Key{Method: m.label, Browser: p.Label(), Region: reg.name},
			profile: p,
			api:     api,
			post:    m.post,
			lossP:   reg.loss,
			baseMs:  reg.base,
		}
	}
	return clients
}

// sample draws one probe for a client: base RTT plus the browser
// model's send and receive path costs. round is 1-based, so first-use
// penalties land on each session's first probe exactly as in the paper.
func (c *client) sample(round int, rng *rand.Rand) (delayMs float64, lost bool) {
	if rng.Float64() < c.lossP {
		return 0, true
	}
	send := c.profile.SendCost(c.api, round, c.post, rng)
	recv := c.profile.RecvCost(c.api, rng)
	return c.baseMs + float64(send+recv)/float64(time.Millisecond), false
}

func main() {
	var (
		sessions    = flag.Int("sessions", 100000, "concurrent synthetic probe sessions")
		rounds      = flag.Int("rounds", 5, "probe samples per session")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "ingest worker goroutines")
		shards      = flag.Int("shards", 64, "fleet registry shards")
		fanin       = flag.Duration("fanin", 250*time.Millisecond, "fan-in period while loading")
		subscribers = flag.Int("subscribers", 2, "live SSE dashboard subscribers during the run")
		metricsAddr = flag.String("metrics-addr", "127.0.0.1:0", "ops endpoint address (/metrics, /live)")
		heapCeil    = flag.Int("assert-heap-mb", 0, "fail when live heap exceeds this many MiB (0 = report only)")
		seed        = flag.Int64("seed", 1, "deterministic workload seed")
		uplinkURL   = flag.String("uplink", "", "ship fan-in deltas to this bmagg ingest URL (multi-node mode)")
		node        = flag.String("node", "", "collector name on the wire (required with -uplink)")
		roundDelay  = flag.Duration("round-delay", 0, "pause between probe rounds (spreads the load over fan-in ticks)")
	)
	flag.Parse()
	if err := run(runConfig{
		sessions: *sessions, rounds: *rounds, workers: *workers, shards: *shards,
		fanin: *fanin, subscribers: *subscribers, metricsAddr: *metricsAddr,
		heapCeil: *heapCeil, seed: *seed,
		uplinkURL: *uplinkURL, node: *node, roundDelay: *roundDelay,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

// runConfig carries the flag set into run.
type runConfig struct {
	sessions, rounds, workers, shards int
	fanin                             time.Duration
	subscribers                       int
	metricsAddr                       string
	heapCeil                          int
	seed                              int64
	uplinkURL, node                   string
	roundDelay                        time.Duration
}

// streamStats is what one SSE subscriber saw.
type streamStats struct {
	events int
	bytes  int64
}

// subscribe attaches one SSE reader to /live and consumes frames until
// the connection closes.
func subscribe(url string, stats *streamStats, ready, done *sync.WaitGroup) {
	defer done.Done()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		ready.Done()
		return
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	ready.Done()
	if err != nil {
		return
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		stats.bytes += int64(len(line))
		if strings.HasPrefix(line, "event: ") {
			stats.events++
		}
		if err != nil {
			return
		}
	}
}

func run(rc runConfig) error {
	sessions, rounds, workers, shards := rc.sessions, rc.rounds, rc.workers, rc.shards
	fanin, subscribers, metricsAddr := rc.fanin, rc.subscribers, rc.metricsAddr
	heapCeil, seed := rc.heapCeil, rc.seed

	reg := obs.NewMetrics()
	obs.RegisterBuildInfo(reg)
	fcfg := fleet.Config{
		Shards:      shards,
		MaxSessions: sessions + 1,
		Interval:    fanin,
		Metrics:     reg,
	}
	var up *fleet.Uplink
	if rc.uplinkURL != "" {
		var err error
		up, err = fleet.NewUplink(fleet.UplinkConfig{Node: rc.node, URL: rc.uplinkURL, Metrics: reg})
		if err != nil {
			return err
		}
		fcfg.DeltaSink = up.Sink
	}
	fl := fleet.New(fcfg)
	ready := func() bool { return fl.Snapshot().Seq > 0 }
	if up != nil {
		ready = up.Ready
	}
	ops, err := obs.StartOps(metricsAddr, reg,
		obs.Route{Pattern: "/live", Handler: fl.LiveHandler()},
		obs.Route{Pattern: "/live/history", Handler: fl.HistoryHandler()},
		obs.ReadyzRoute(ready))
	if err != nil {
		return err
	}
	defer ops.Close()
	fmt.Printf("loadgen: %d sessions x %d rounds, %d workers, %d shards, fan-in %v\n",
		sessions, rounds, workers, shards, fanin)
	fmt.Printf("  metrics   : http://%s/metrics\n", ops.Addr())
	fmt.Printf("  dashboard : http://%s/live\n", ops.Addr())

	clients := buildClients(sessions)
	fl.Start()

	subStats := make([]streamStats, subscribers)
	var subReady, subDone sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		subReady.Add(1)
		subDone.Add(1)
		go subscribe("http://"+ops.Addr()+"/live?stream=1", &subStats[i], &subReady, &subDone)
	}
	subReady.Wait()

	// Ingest: workers own contiguous session ranges, so no two goroutines
	// share a session; shard locks are the only coordination.
	start := time.Now()
	var wg sync.WaitGroup
	per := (sessions + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > sessions {
			hi = sessions
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for round := 1; round <= rounds; round++ {
				for i := lo; i < hi; i++ {
					c := &clients[i]
					delay, lost := c.sample(round, rng)
					fl.Observe(c.id, c.key, delay, lost)
				}
				if rc.roundDelay > 0 && round < rounds {
					time.Sleep(rc.roundDelay)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	ingestTook := time.Since(start)

	// The concurrency claim: every session is live in the registry at
	// once, with the ingest plane still serving fan-ins and streams.
	live := fl.Sessions()
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapMB := float64(ms.HeapAlloc) / (1 << 20)

	fl.Stop() // final fan-in: every sample reaches the snapshot
	if up != nil {
		up.Stop() // flush the final tick to the root before reading stats
		fmt.Printf("uplink    : %d frames shipped, %d dropped, %d retries\n",
			reg.Counter("fleet_uplink_shipped_total"),
			reg.Counter("fleet_uplink_dropped_total"),
			reg.Counter("fleet_uplink_retries_total"))
	}

	snap := fl.Snapshot()
	var total, lost uint64
	for _, k := range snap.Keys {
		total += k.Count
		lost += k.Lost
	}

	samples := uint64(sessions) * uint64(rounds)
	rate := float64(samples) / ingestTook.Seconds()
	fmt.Printf("ingest    : %d samples in %v (%.0f samples/s)\n", samples, ingestTook.Round(time.Millisecond), rate)
	fmt.Printf("sessions  : %d live at peak (cap %d)\n", live, sessions+1)
	fmt.Printf("heap      : %.1f MiB live after GC\n", heapMB)
	fmt.Printf("keys      : %d aggregate series\n", len(snap.Keys))
	fmt.Printf("fan-in    : %d passes, p50 %.2f ms, p99 %.2f ms\n",
		reg.Counter("fleet_fanin_total"),
		reg.SketchQuantile("fleet_fanin_ms", 0.5),
		reg.SketchQuantile("fleet_fanin_ms", 0.99))
	fmt.Printf("stream    : %d events, %d bytes delivered, %d dropped\n",
		reg.Counter("fleet_stream_events_total"),
		reg.Counter("fleet_stream_bytes_total"),
		reg.Counter("fleet_stream_dropped_total"))

	// Read-off for EXPERIMENTS.md: the slowest and fastest aggregate keys.
	if len(snap.Keys) > 0 {
		lo, hi := snap.Keys[0], snap.Keys[0]
		for _, k := range snap.Keys {
			if k.P50 < lo.P50 {
				lo = k
			}
			if k.P50 > hi.P50 {
				hi = k
			}
		}
		fmt.Printf("fastest   : %s/%s/%s p50 %.2f ms p99 %.2f ms jitter %.2f ms\n",
			lo.Method, lo.Browser, lo.Region, lo.P50, lo.P99, lo.JitterMs)
		fmt.Printf("slowest   : %s/%s/%s p50 %.2f ms p99 %.2f ms jitter %.2f ms\n",
			hi.Method, hi.Browser, hi.Region, hi.P50, hi.P99, hi.JitterMs)
	}

	// Assertions.
	if live != sessions {
		return fmt.Errorf("concurrent sessions = %d, want %d", live, sessions)
	}
	if total != samples || uint64(reg.Counter("fleet_samples_total")) != samples {
		return fmt.Errorf("sample conservation: snapshot %d, counter %d, want %d",
			total, reg.Counter("fleet_samples_total"), samples)
	}
	if lost == 0 {
		return fmt.Errorf("loss model produced no lost probes across %d samples", samples)
	}
	if heapCeil > 0 && heapMB > float64(heapCeil) {
		return fmt.Errorf("heap %.1f MiB exceeds ceiling %d MiB", heapMB, heapCeil)
	}

	// The exposition must be byte-stable: two scrapes of the now-quiet
	// registry must be identical, or dashboards see phantom motion.
	scrape := func() ([]byte, error) {
		resp, err := http.Get("http://" + ops.Addr() + "/metrics")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		return io.ReadAll(resp.Body)
	}
	first, err := scrape()
	if err != nil {
		return err
	}
	second, err := scrape()
	if err != nil {
		return err
	}
	if string(first) != string(second) {
		return fmt.Errorf("/metrics not byte-stable across scrapes (%d vs %d bytes)", len(first), len(second))
	}
	fmt.Printf("scrape    : /metrics byte-stable (%d bytes)\n", len(first))

	ops.Close()
	subDone.Wait()
	for i := range subStats {
		fmt.Printf("subscriber %d: %d events, %d bytes\n", i, subStats[i].events, subStats[i].bytes)
	}
	fmt.Println("loadgen: PASS")
	return nil
}
