// Command pcaptool works with the libpcap files the simulated capture
// produces: generate one from a testbed run, dump it tcpdump-style, or
// compute the wire-level RTT pairs the appraisal uses as ground truth.
//
// Usage:
//
//	pcaptool -gen trace.pcap [-method 3] [-browser C] [-os W]
//	pcaptool -dump trace.pcap
//	pcaptool -rtt trace.pcap -port 8080
//
// Generated files are standard nanosecond pcap (Ethernet link type) and
// open in Wireshark/tcpdump.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/capture"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/netsim"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

func main() {
	var (
		gen    = flag.String("gen", "", "run one measurement and write its capture to this pcap file")
		method = flag.Int("method", int(methods.WebSocket), "method kind for -gen (0-10, see Table 1 order)")
		bName  = flag.String("browser", "C", "browser initial for -gen (C,F,IE,O,S)")
		osName = flag.String("os", "W", "system initial for -gen (W,U)")
		dump   = flag.String("dump", "", "print packets of this pcap file")
		rtt    = flag.String("rtt", "", "compute request/response RTTs of this pcap file")
		port   = flag.Uint("port", uint(testbed.WSPort), "server port for -rtt matching")
		filter = flag.String("filter", "", "tcpdump-like filter for -dump (e.g. 'tcp and port 80')")
	)
	flag.Parse()

	switch {
	case *gen != "":
		if err := generate(*gen, methods.Kind(*method), *bName, *osName); err != nil {
			fail(err)
		}
	case *dump != "":
		if err := dumpFile(*dump, *filter); err != nil {
			fail(err)
		}
	case *rtt != "":
		if err := rttFile(*rtt, uint16(*port)); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pcaptool:", err)
	os.Exit(1)
}

func parseBrowser(initial string) (browser.Name, error) {
	for _, n := range []browser.Name{browser.Chrome, browser.Firefox, browser.IE, browser.Opera, browser.Safari} {
		if n.Initial() == initial {
			return n, nil
		}
	}
	return 0, fmt.Errorf("unknown browser initial %q", initial)
}

func generate(path string, kind methods.Kind, bInitial, osInitial string) error {
	b, err := parseBrowser(bInitial)
	if err != nil {
		return err
	}
	osv := browser.Windows
	if osInitial == "U" {
		osv = browser.Ubuntu
	}
	prof := browser.Lookup(b, osv)
	if prof == nil {
		return fmt.Errorf("%s (%s) is not a Table 2 configuration", bInitial, osInitial)
	}
	tb := testbed.New(testbed.Config{Seed: 1})
	runner := &methods.Runner{TB: tb, Profile: prof}
	res, err := runner.Run(kind)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := tb.Cap.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d frames (%s on %s, probes on port %d) to %s\n",
		len(tb.Cap.Records()), kind, prof.Label(), res.ServerPort, path)
	return nil
}

func dumpFile(path, filterExpr string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := capture.ReadPcap(f)
	if err != nil {
		return err
	}
	var filt capture.Filter
	if filterExpr != "" {
		if filt, err = capture.ParseFilter(filterExpr); err != nil {
			return err
		}
	}
	for _, r := range recs {
		p, err := netsim.Decode(r.Data, r.Time)
		if err != nil {
			fmt.Printf("%v [undecodable: %v]\n", r.Time, err)
			continue
		}
		if filt != nil && !filt(p) {
			continue
		}
		fmt.Println(p)
	}
	return nil
}

func rttFile(path string, port uint16) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := capture.ReadPcap(f)
	if err != nil {
		return err
	}
	cap := capture.FromRecords(recs)
	pairs := cap.MatchRTT(port)
	if len(pairs) == 0 {
		fmt.Printf("no request/response pairs on port %d\n", port)
		return nil
	}
	for i, p := range pairs {
		hs := ""
		if p.Handshake {
			hs = "  (preceded by TCP handshake)"
		}
		fmt.Printf("pair %d: send=%v recv=%v rtt=%v%s\n", i+1, p.SendAt, p.RecvAt, p.RTT(), hs)
	}
	return nil
}
