package browsermetric_test

import (
	"fmt"
	"time"

	bm "github.com/browsermetric/browsermetric"
)

// The simulation is deterministic, so these examples have stable output.

// ExampleAppraise measures the delay overhead of one method in one
// browser environment.
func ExampleAppraise() {
	exp, err := bm.Appraise(bm.MethodJavaTCP, bm.Chrome, bm.Windows, bm.Options{
		Timing: bm.NanoTime,
		Runs:   20,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	mean, _ := exp.MeanCI(1)
	fmt.Printf("Java socket Δd1 mean below 0.1 ms: %v\n", mean < 0.1)
	fmt.Printf("samples per run: %d rounds\n", len(exp.Samples)/20)
	// Output:
	// Java socket Δd1 mean below 0.1 ms: true
	// samples per run: 2 rounds
}

// ExampleAppraise_handshake shows the Table 3 mechanism: Opera's Flash
// plugin opens a fresh TCP connection for the first request, absorbing a
// full handshake into Δd1.
func ExampleAppraise_handshake() {
	exp, err := bm.Appraise(bm.MethodFlashGet, bm.Opera, bm.Windows, bm.Options{
		Timing: bm.NanoTime,
		Runs:   20,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	d1, d2 := exp.MedianOverhead(1), exp.MedianOverhead(2)
	fmt.Printf("Δd1 exceeds Δd2 by at least 40 ms: %v\n", d1-d2 > 40)
	hs := exp.HandshakeRounds()
	fmt.Printf("fresh connections: round1=%d round2=%d\n", hs[0], hs[1])
	// Output:
	// Δd1 exceeds Δd2 by at least 40 ms: true
	// fresh connections: round1=20 round2=0
}

// ExampleCalibration corrects a browser-level reading using the
// calibrated median overhead.
func ExampleCalibration() {
	exp, err := bm.Appraise(bm.MethodWebSocket, bm.Firefox, bm.Ubuntu, bm.Options{
		Timing: bm.NanoTime,
		Runs:   25,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cal := exp.Calibrate()
	reading := 50*time.Millisecond + time.Duration(cal.MedianOverhead[1]*float64(time.Millisecond))
	corrected := cal.Correct(reading, 2)
	fmt.Printf("corrected reading within 1 ms of the true 50 ms path: %v\n",
		corrected > 49*time.Millisecond && corrected < 51*time.Millisecond)
	fmt.Printf("calibratable: %v\n", cal.Calibratable(2))
	// Output:
	// corrected reading within 1 ms of the true 50 ms path: true
	// calibratable: true
}

// ExampleMethods lists the Table 1 taxonomy.
func ExampleMethods() {
	for _, s := range bm.ComparedMethods()[:4] {
		fmt.Printf("%s (%s, %s)\n", s.Name, s.Technology, s.Transport)
	}
	// Output:
	// XHR GET (XHR, HTTP-based)
	// XHR POST (XHR, HTTP-based)
	// DOM (DOM, HTTP-based)
	// WebSocket (WebSocket, socket-based)
}
