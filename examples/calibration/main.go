// Calibration: derive per-method overhead-correction tables from a study
// and use them to recover true network RTTs from browser-level readings —
// then show which methods the paper deems calibratable at all and why the
// Java timing API must be switched to System.nanoTime() first.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	bm "github.com/browsermetric/browsermetric"
)

func main() {
	// 1. Calibrate three representative methods in Firefox on Windows
	//    (the paper's preferred Windows browser). The three cells run as
	//    one parallel study: every cell gets an isolated testbed and a
	//    position-derived seed, so the tables match a sequential run
	//    byte for byte.
	fmt.Println("calibration tables — Firefox on Windows")
	kinds := []bm.Method{bm.MethodWebSocket, bm.MethodXHRGet, bm.MethodFlashGet}
	st, err := bm.RunStudy(bm.StudyOptions{
		Methods:  kinds,
		Profiles: []*bm.Profile{bm.LookupProfile(bm.Firefox, bm.Windows)},
		Runs:     40,
		OnCellDone: func(cs bm.CellStatus) {
			fmt.Fprintf(os.Stderr, "  calibrated %d/%d cells\n", cs.Done, cs.Total)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	cals := map[bm.Method]bm.Calibration{}
	for _, k := range kinds {
		cell := st.Cell(k, "F (W)")
		cal := cell.Exp.Calibrate()
		cals[k] = cal
		ok := "calibratable"
		if !cal.Calibratable(2) {
			ok = "NOT calibratable (overhead too unstable)"
		}
		fmt.Printf("  %-12v median Δd2=%6.2f ms  IQR=%5.2f ms  -> %s\n",
			k, cal.MedianOverhead[1], cal.IQR[1], ok)
	}

	// 2. Apply the WebSocket calibration to a fresh reading.
	fmt.Println("\ncorrecting a fresh browser-level reading with the WebSocket table:")
	exp, err := bm.Appraise(bm.MethodWebSocket, bm.Firefox, bm.Windows, bm.Options{Runs: 5})
	if err != nil {
		log.Fatal(err)
	}
	cal := cals[bm.MethodWebSocket]
	for _, s := range exp.Samples {
		if s.Round != 2 {
			continue
		}
		corrected := cal.Correct(s.BrowserRTT, 2)
		errBefore := s.BrowserRTT - s.WireRTT
		errAfter := corrected - s.WireRTT
		fmt.Printf("  reported %8v  corrected %8v  true %8v  (error %6v -> %6v)\n",
			s.BrowserRTT.Round(10*time.Microsecond), corrected.Round(10*time.Microsecond),
			s.WireRTT.Round(10*time.Microsecond), errBefore.Round(10*time.Microsecond),
			errAfter.Round(10*time.Microsecond))
	}

	// 3. The timing-API trap: calibration cannot fix a quantized clock.
	fmt.Println("\nwhy Java tools must switch timing APIs before calibrating:")
	for _, timing := range []bm.TimingFunc{bm.GetTime, bm.NanoTime} {
		exp, err := bm.Appraise(bm.MethodJavaTCP, bm.Firefox, bm.Windows, bm.Options{
			Timing: timing, Runs: 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		box := exp.Box(1)
		bimodal := ""
		if exp.Bimodal(1) {
			bimodal = "  <- bimodal: the ~15.6 ms Windows granularity regime"
		}
		fmt.Printf("  %-16v Δd1 range [%7.2f, %6.2f] ms, median %6.2f%s\n",
			timing, box.Min, box.Max, box.Median, bimodal)
	}
}
