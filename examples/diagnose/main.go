// Diagnose: a Netalyzr-style end-user network diagnosis built on the
// appraisal library. Given the user's browser environment it (1) picks
// the most accurate measurement method that environment supports,
// (2) calibrates its overhead on a reference testbed, then (3) measures
// unknown paths and reports corrected RTT estimates with error bars —
// the workflow Section 5's recommendations exist to enable.
package main

import (
	"fmt"
	"log"
	"time"

	bm "github.com/browsermetric/browsermetric"
)

func main() {
	// The user's environment: IE 9 on Windows — no WebSocket, so the
	// recommended fallback order matters.
	userBrowser, userOS := bm.IE, bm.Windows
	fmt.Printf("diagnosing with %v on %v\n\n", userBrowser, userOS)

	// 1. Pick the most accurate supported method: socket methods first
	//    (with the nanoTime caveat), then DOM, then XHR.
	preference := []bm.Method{bm.MethodJavaTCP, bm.MethodWebSocket, bm.MethodDOM, bm.MethodXHRGet}
	prof := bm.LookupProfile(userBrowser, userOS)
	specs := map[bm.Method]bm.Spec{}
	for _, s := range bm.Methods() {
		specs[s.Kind] = s
	}
	var chosen bm.Method
	found := false
	for _, m := range preference {
		if prof.Supports(specs[m].API) {
			chosen = m
			found = true
			break
		}
	}
	if !found {
		log.Fatal("no supported method")
	}
	fmt.Printf("selected method: %v (System.nanoTime timing)\n", chosen)

	// 2. Calibrate on the reference testbed (known 50 ms path).
	ref, err := bm.Appraise(chosen, userBrowser, userOS, bm.Options{Timing: bm.NanoTime, Runs: 30})
	if err != nil {
		log.Fatal(err)
	}
	cal := ref.Calibrate()
	fmt.Printf("calibrated overhead: Δd2 median %.3f ms (IQR %.3f ms, calibratable=%v)\n\n",
		cal.MedianOverhead[1], cal.IQR[1], cal.Calibratable(2))

	// 3. Measure three "unknown" paths (testbeds with different true
	//    delays) and report corrected estimates.
	fmt.Printf("%-12s %14s %14s %12s\n", "true RTT", "tool reading", "corrected", "error")
	for _, trueRTT := range []time.Duration{20, 80, 140} {
		d := trueRTT * time.Millisecond
		exp, err := bm.Appraise(chosen, userBrowser, userOS, bm.Options{
			Timing:  bm.NanoTime,
			Runs:    10,
			Testbed: bm.TestbedConfig{ServerDelay: d, Seed: int64(trueRTT)},
		})
		if err != nil {
			log.Fatal(err)
		}
		// The tool's reading: median browser-level RTT of warm rounds.
		var readings []time.Duration
		for _, s := range exp.Samples {
			if s.Round == 2 {
				readings = append(readings, s.BrowserRTT)
			}
		}
		reading := medianDuration(readings)
		corrected := cal.Correct(reading, 2)
		errMs := float64(corrected-d) / float64(time.Millisecond)
		fmt.Printf("%-12v %14v %14v %9.3f ms\n",
			d, reading.Round(10*time.Microsecond), corrected.Round(10*time.Microsecond), errMs)
	}
	fmt.Println("\n(corrected estimates land within a fraction of a millisecond of the true")
	fmt.Println(" path RTT — the accuracy the paper shows socket methods can reach)")
}

func medianDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
