// Liveserver: the real-network mode end to end. Starts the deployable
// measurement server on loopback, then appraises the live client stacks
// (net/http, WebSocket framing, raw TCP, UDP) against it exactly as the
// paper appraises browser stacks — tool-level timestamps vs tap-level
// ground truth.
package main

import (
	"fmt"
	"log"
	"time"

	bm "github.com/browsermetric/browsermetric"
)

func main() {
	// A small artificial delay plays the paper's +50 ms role: it makes
	// the true RTT visible against loopback's microseconds.
	srv, err := bm.StartServer(bm.ServerConfig{Delay: 20 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	addrs := srv.Addrs()
	fmt.Printf("measurement server: http=%s ws=%s tcp=%s udp=%s\n\n",
		addrs.HTTP, addrs.WS, addrs.TCPEcho, addrs.UDPEcho)

	drivers := []struct {
		name string
		make func() (bm.LiveMethod, error)
	}{
		{"HTTP GET (net/http)", func() (bm.LiveMethod, error) { return bm.NewLiveHTTPGet(addrs.HTTP) }},
		{"HTTP POST (net/http)", func() (bm.LiveMethod, error) { return bm.NewLiveHTTPPost(addrs.HTTP) }},
		{"WebSocket", func() (bm.LiveMethod, error) { return bm.NewLiveWebSocket(addrs.WS) }},
		{"raw TCP socket", func() (bm.LiveMethod, error) { return bm.NewLiveTCP(addrs.TCPEcho) }},
		{"UDP socket", func() (bm.LiveMethod, error) { return bm.NewLiveUDP(addrs.UDPEcho) }},
	}

	fmt.Printf("%-22s %10s %14s %16s\n", "client stack", "probes", "median Δd", "mean ± 95% CI")
	for _, d := range drivers {
		m, err := d.make()
		if err != nil {
			log.Fatalf("%s: %v", d.name, err)
		}
		box, mean, half, err := bm.AppraiseLive(m, 25)
		m.Close()
		if err != nil {
			log.Fatalf("%s: %v", d.name, err)
		}
		fmt.Printf("%-22s %10d %11.3f ms %9.3f±%.3f ms\n", d.name, box.N, box.Median, mean, half)
	}

	h, w, tc, u := srv.Stats()
	fmt.Printf("\nserver handled %d http / %d ws / %d tcp / %d udp exchanges\n", h, w, tc, u)
	fmt.Println("(same ordering as the paper: the richer the client stack, the larger Δd)")
}
