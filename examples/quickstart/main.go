// Quickstart: appraise one measurement method in one browser environment
// and print the delay-overhead summary — the library's minimal use case.
package main

import (
	"fmt"
	"log"

	bm "github.com/browsermetric/browsermetric"
)

func main() {
	// Measure the WebSocket method in Chrome on Ubuntu, 50 repetitions,
	// with the timing API real tools use (Date.getTime).
	exp, err := bm.Appraise(bm.MethodWebSocket, bm.Chrome, bm.Ubuntu, bm.Options{
		Timing: bm.GetTime,
		Runs:   50,
	})
	if err != nil {
		log.Fatal(err)
	}

	for round := 1; round <= 2; round++ {
		box := exp.Box(round)
		fmt.Printf("Δd%d (ms): median=%.2f  IQR=[%.2f, %.2f]  range=[%.2f, %.2f]  outliers=%d\n",
			round, box.Median, box.Q1, box.Q3, box.Min, box.Max, len(box.Outliers))
	}

	// Every sample carries the browser-level RTT, the wire-level RTT from
	// the capture, and their difference (Eq. 1).
	s := exp.Samples[0]
	fmt.Printf("\nfirst sample: browser RTT=%v  wire RTT=%v  overhead=%v\n",
		s.BrowserRTT, s.WireRTT, s.Overhead)

	// Compare with a plugin-based HTTP method to see the paper's headline
	// result: HTTP-based methods inflate delays far more than sockets.
	flash, err := bm.Appraise(bm.MethodFlashGet, bm.Chrome, bm.Ubuntu, bm.Options{Runs: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWebSocket Δd2 median: %6.2f ms\n", exp.Box(2).Median)
	fmt.Printf("Flash GET Δd2 median: %6.2f ms  <- why socket methods are preferred\n",
		flash.Box(2).Median)
}
