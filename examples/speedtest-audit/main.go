// Speedtest audit: the workload the paper's introduction motivates — a
// speedtest operator must pick a measurement method and wants to know how
// each candidate would distort the latency (and latency-derived
// throughput) their users see.
//
// For every method a typical deployment could use, this example reports
// the reported-vs-true RTT on a 50 ms path, the jitter the method itself
// injects, and the resulting bias on a round-trip throughput estimate.
package main

import (
	"fmt"
	"log"

	bm "github.com/browsermetric/browsermetric"
)

func main() {
	// The audience: Chrome users on Windows (the most common combo), with
	// the timing API real tools ship (Date.getTime).
	fmt.Println("speedtest method audit — Chrome on Windows, true path RTT = 50 ms")
	fmt.Printf("%-26s %12s %12s %10s %12s\n",
		"method", "reported RTT", "inflation", "jitter", "tput bias")

	for _, spec := range bm.ComparedMethods() {
		exp, err := bm.Appraise(spec.Kind, bm.Chrome, bm.Windows, bm.Options{Runs: 40})
		if err != nil {
			log.Fatalf("%s: %v", spec.Name, err)
		}
		// Steady-state (warm object) numbers: what a tool doing repeated
		// probes would converge to.
		box := exp.Box(2)
		reported := 50 + box.Median
		fmt.Printf("%-26s %9.1f ms %9.1f ms %7.2f ms %11.1f%%\n",
			spec.Name, reported, box.Median, exp.JitterInflation(2),
			100*exp.ThroughputBias(2))
	}

	fmt.Println("\ncold-start penalty (Δd1 − Δd2 medians) where a fresh TCP connection bites:")
	for _, kind := range []bm.Method{bm.MethodFlashGet, bm.MethodFlashPost} {
		for _, b := range []bm.Browser{bm.Chrome, bm.Opera} {
			exp, err := bm.Appraise(kind, b, bm.Windows, bm.Options{Runs: 40})
			if err != nil {
				log.Fatal(err)
			}
			d1, d2 := exp.MedianOverhead(1), exp.MedianOverhead(2)
			fmt.Printf("  %-12s in %-7v: Δd1=%6.1f ms  Δd2=%6.1f ms  penalty=%6.1f ms\n",
				kind, b, d1, d2, d1-d2)
		}
	}
	fmt.Println("\n(Opera's Flash plugin opens a new connection for the first request and")
	fmt.Println(" for every POST — the handshake lands inside the reported RTT.)")
}
