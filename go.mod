module github.com/browsermetric/browsermetric

go 1.22
