package browsermetric

import (
	"strings"
	"testing"
	"time"
)

func TestPublicAttribution(t *testing.T) {
	exp, attributed, err := AppraiseAttributed(MethodFlashGet, Opera, Ubuntu, Options{
		Timing: NanoTime, Runs: 5, Gap: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attributed) != len(exp.Samples) {
		t.Fatal("attribution count mismatch")
	}
	foundHandshake := false
	for _, a := range attributed {
		if a.Round == 1 && a.Attribution.Handshake == 50*time.Millisecond {
			foundHandshake = true
		}
	}
	if !foundHandshake {
		t.Fatal("no handshake attribution on Opera Flash round 1")
	}
}

func TestPublicJitter(t *testing.T) {
	ji, err := MeasureJitter(MethodWebSocket, Chrome, Ubuntu, Options{Timing: NanoTime}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ji.Probes != 10 || ji.Inflation() < 0 && ji.Inflation() < -1 {
		t.Fatalf("jitter impact = %+v", ji)
	}
}

func TestPublicThroughput(t *testing.T) {
	ti, err := MeasureThroughput(MethodWebSocket, Chrome, Ubuntu, Options{Timing: NanoTime}, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Bias() <= 0.8 || ti.Bias() > 1.0 {
		t.Fatalf("WebSocket bias = %.3f", ti.Bias())
	}
}

func TestPublicLoss(t *testing.T) {
	li, err := MeasureLoss(Chrome, Ubuntu, Options{
		Timing:  NanoTime,
		Testbed: TestbedConfig{Seed: 5, LossRate: 0.15},
	}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if li.BrowserLoss == 0 {
		t.Fatal("no loss observed at 15% link loss")
	}
	if diff := li.BrowserLoss - li.WireLoss; diff < -0.05 || diff > 0.05 {
		t.Fatalf("loss disagreement: %.3f vs %.3f", li.BrowserLoss, li.WireLoss)
	}
}

func TestPublicServerOverhead(t *testing.T) {
	rows, err := MeasureServerOverhead(MethodXHRGet, Chrome, Ubuntu, Options{Timing: NanoTime, Runs: 5},
		[]time.Duration{0, 8 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	gain := rows[1].ServerShare() - rows[0].ServerShare()
	if gain < 7*time.Millisecond || gain > 9*time.Millisecond {
		t.Fatalf("server share gained %v for +8ms parse cost", gain)
	}
}

func TestPublicReports(t *testing.T) {
	rep, err := AttributionReport(MethodFlashGet, Opera, Windows, Options{Timing: NanoTime, Runs: 4})
	if err != nil || !strings.Contains(rep, "handshake") {
		t.Fatalf("attribution report: %v\n%s", err, rep)
	}
	imp, err := ImpactReport(Chrome, Ubuntu, NanoTime)
	if err != nil || !strings.Contains(imp, "Loss agreement") {
		t.Fatalf("impact report: %v", err)
	}
	sov, err := ServerOverheadReport(Chrome, Ubuntu, NanoTime, 4)
	if err != nil || !strings.Contains(sov, "server share") {
		t.Fatalf("server overhead report: %v", err)
	}
}

func TestPublicFig3ASCII(t *testing.T) {
	st, err := RunStudy(StudyOptions{Methods: []Method{MethodDOM}, Runs: 4, Gap: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	art := Fig3ASCII(st, 60)
	if !strings.Contains(art, "╂") || !strings.Contains(art, "DOM") {
		t.Fatalf("ASCII art missing glyphs:\n%s", art)
	}
}

func TestPublicModernProfile(t *testing.T) {
	modern := ModernProfile(Windows)
	exp, err := AppraiseProfile(MethodXHRGet, modern, Options{Timing: NanoTime, Runs: 10, Gap: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	old, err := Appraise(MethodXHRGet, Chrome, Windows, Options{Timing: NanoTime, Runs: 10, Gap: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if exp.MedianOverhead(2) >= old.MedianOverhead(2)/2 {
		t.Fatalf("modern XHR %.2f ms should be far below 2013's %.2f ms",
			exp.MedianOverhead(2), old.MedianOverhead(2))
	}
	if _, err := AppraiseProfile(MethodFlashGet, modern, Options{Runs: 2}); err == nil {
		t.Fatal("modern profile must reject plugin methods")
	}
	if _, err := AppraiseProfile(MethodXHRGet, nil, Options{}); err == nil {
		t.Fatal("nil profile must error")
	}
}
