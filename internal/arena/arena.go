// Package arena provides a slab/epoch allocator for the simulator hot
// path. One Arena owns every per-run buffer of a testbed: frame bytes,
// parse scratch, capture backing. Allocation is a bump-pointer carve from
// a current slab; Reset() makes every previously carved byte available
// again without returning memory to the Go heap, so a steady-state run
// allocates nothing.
//
// Aliasing contract: a slice returned by Bytes or Make is valid until the
// next Reset of the arena it came from. Holding it across a Reset is a
// use-after-free in spirit — the bytes will be recycled into unrelated
// buffers (and, under SetPoison(true), scribbled first so the bug is loud
// instead of a silent wrong answer). Anything that must outlive a run —
// experiment samples, stats caches, exported rows — must be copied to the
// ordinary heap before the run ends.
//
// A nil *Arena is valid everywhere and falls back to plain make(), so
// every arena-aware call site works unchanged when no arena is attached.
package arena

const (
	// DefaultSlabSize is the slab granularity when New is given a
	// non-positive size. 64 KiB holds hundreds of typical probe frames,
	// so a full measurement run touches only a handful of slabs.
	DefaultSlabSize = 64 << 10

	// oversizeThreshold: requests larger than this fraction of the slab
	// size get a dedicated one-off allocation instead of burning most of
	// a fresh slab. One-offs are dropped at Reset (retaining them would
	// let a single pathological request pin memory forever).
	oversizeDivisor = 4
)

// Arena is a slab allocator with epoch-style reuse. Not safe for
// concurrent use: one arena belongs to one worker goroutine.
type Arena struct {
	slabs    [][]byte // grow-only; all retained across Reset
	cur      int      // index into slabs of the slab being carved
	off      int      // carve offset within slabs[cur]
	slabSize int
	poison   bool

	// Stats (monotonic except where noted).
	allocs    uint64 // total Bytes/Make calls served
	bytes     uint64 // total bytes carved (including oversize)
	resets    uint64
	oversizes uint64 // one-off allocations this epoch (reset each Reset)
	oversizeB uint64 // bytes in one-offs this epoch
}

// New returns an arena carving from slabs of the given size (bytes).
// Non-positive sizes mean DefaultSlabSize.
func New(slabSize int) *Arena {
	if slabSize <= 0 {
		slabSize = DefaultSlabSize
	}
	return &Arena{slabSize: slabSize}
}

// Bytes returns a slice of length n with capacity exactly n, carved from
// the arena. The exact capacity is deliberate: appending to the returned
// slice spills to the ordinary heap instead of silently overwriting the
// neighboring carve. A nil arena returns make([]byte, n).
func (a *Arena) Bytes(n int) []byte {
	if a == nil {
		return make([]byte, n)
	}
	b := a.Make(n, n)
	return b
}

// Make returns a slice of length n and capacity c (c is raised to n if
// smaller), carved from the arena with exact capacity so appends past c
// spill to the heap rather than into a neighbor. A nil arena returns
// make([]byte, n, c).
func (a *Arena) Make(n, c int) []byte {
	if c < n {
		c = n
	}
	if a == nil {
		return make([]byte, n, c)
	}
	a.allocs++
	a.bytes += uint64(c)
	if c > a.slabSize/oversizeDivisor {
		// Oversize one-off: dedicated allocation, dropped at Reset.
		a.oversizes++
		a.oversizeB += uint64(c)
		return make([]byte, n, c)
	}
	for {
		if a.cur < len(a.slabs) {
			slab := a.slabs[a.cur]
			if a.off+c <= len(slab) {
				b := slab[a.off : a.off+n : a.off+c]
				a.off += c
				return b
			}
			// Current slab exhausted for this request; advance.
			a.cur++
			a.off = 0
			continue
		}
		// a.cur already indexes the slot the new slab lands in.
		a.slabs = append(a.slabs, make([]byte, a.slabSize))
	}
}

// Reset starts a new epoch: every slab becomes available for carving
// again. No zeroing happens (frame builders and parsers write every byte
// they use); under SetPoison(true) the carved region of every slab is
// scribbled with 0xA5 so any buffer held across the Reset reads garbage
// loudly. Oversize one-offs from the previous epoch are dropped.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	if a.poison {
		for i := 0; i <= a.cur && i < len(a.slabs); i++ {
			end := len(a.slabs[i])
			if i == a.cur {
				end = a.off
			}
			s := a.slabs[i][:end]
			for j := range s {
				s[j] = 0xA5
			}
		}
	}
	a.cur = 0
	a.off = 0
	a.resets++
	a.oversizes = 0
	a.oversizeB = 0
}

// SetPoison toggles scribbling of recycled bytes at Reset. Meant for
// tests: it turns "stale alias across a reset" from a silent wrong
// answer into visibly corrupted data.
func (a *Arena) SetPoison(on bool) {
	if a != nil {
		a.poison = on
	}
}

// Stats is a point-in-time snapshot of arena accounting.
type Stats struct {
	Slabs     int    // slabs retained
	SlabBytes uint64 // total capacity of retained slabs
	Allocs    uint64 // lifetime Bytes/Make calls
	Carved    uint64 // lifetime bytes carved
	Resets    uint64
	Oversizes uint64 // one-off allocations in the current epoch
}

// Stats reports the arena's accounting. Valid on a nil arena (zeros).
func (a *Arena) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return Stats{
		Slabs:     len(a.slabs),
		SlabBytes: uint64(len(a.slabs)) * uint64(a.slabSize),
		Allocs:    a.allocs,
		Carved:    a.bytes,
		Resets:    a.resets,
		Oversizes: a.oversizes,
	}
}
