package arena

import (
	"bytes"
	"testing"
)

func TestBytesExactCapacity(t *testing.T) {
	a := New(1 << 12)
	b := a.Bytes(10)
	if len(b) != 10 || cap(b) != 10 {
		t.Fatalf("Bytes(10): len=%d cap=%d, want 10/10", len(b), cap(b))
	}
	c := a.Bytes(5)
	// Appending to b must spill to the heap, never into c's carve.
	c[0] = 7
	b = append(b, 0xFF)
	if c[0] != 7 {
		t.Fatalf("append to neighbor overwrote a later carve")
	}
}

func TestMakeCapacityFloor(t *testing.T) {
	a := New(1 << 12)
	b := a.Make(4, 64)
	if len(b) != 4 || cap(b) != 64 {
		t.Fatalf("Make(4,64): len=%d cap=%d", len(b), cap(b))
	}
	if b2 := a.Make(8, 2); len(b2) != 8 || cap(b2) != 8 {
		t.Fatalf("Make(8,2): len=%d cap=%d, want capacity raised to n", len(b2), cap(b2))
	}
}

func TestNilArenaFallsBackToHeap(t *testing.T) {
	var a *Arena
	b := a.Bytes(16)
	if len(b) != 16 {
		t.Fatalf("nil arena Bytes(16) len=%d", len(b))
	}
	m := a.Make(3, 9)
	if len(m) != 3 || cap(m) != 9 {
		t.Fatalf("nil arena Make(3,9): len=%d cap=%d", len(m), cap(m))
	}
	a.Reset()         // must not panic
	a.SetPoison(true) // must not panic
	if s := a.Stats(); s.Slabs != 0 {
		t.Fatalf("nil arena stats: %+v", s)
	}
}

func TestResetReusesSlabsWithoutAllocating(t *testing.T) {
	a := New(1 << 12)
	for i := 0; i < 100; i++ {
		a.Bytes(100)
	}
	warmSlabs := a.Stats().Slabs
	allocs := testing.AllocsPerRun(50, func() {
		a.Reset()
		for i := 0; i < 100; i++ {
			a.Bytes(100)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm reset+carve cycle allocates %.1f/op, want 0", allocs)
	}
	if got := a.Stats().Slabs; got != warmSlabs {
		t.Fatalf("slab count grew across resets: %d -> %d", warmSlabs, got)
	}
}

func TestOversizeGoesToHeapAndIsDropped(t *testing.T) {
	a := New(1 << 10) // threshold = 256
	b := a.Bytes(512)
	if len(b) != 512 {
		t.Fatalf("oversize len=%d", len(b))
	}
	if s := a.Stats(); s.Oversizes != 1 {
		t.Fatalf("oversize not counted: %+v", s)
	}
	a.Reset()
	if s := a.Stats(); s.Oversizes != 0 {
		t.Fatalf("oversize count survived reset: %+v", s)
	}
}

func TestPoisonScribblesOnReset(t *testing.T) {
	a := New(1 << 12)
	a.SetPoison(true)
	b := a.Bytes(32)
	for i := range b {
		b[i] = 0x11
	}
	a.Reset()
	// b aliases recycled slab memory; the poison pass must have
	// scribbled it.
	if !bytes.Equal(b, bytes.Repeat([]byte{0xA5}, 32)) {
		t.Fatalf("stale alias not poisoned: % x", b[:8])
	}
}

func TestCarvesAcrossSlabBoundaries(t *testing.T) {
	a := New(256) // oversize threshold 64
	var got []byte
	for i := 0; i < 50; i++ {
		b := a.Bytes(60)
		for j := range b {
			b[j] = byte(i)
		}
		got = append(got, b[0])
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("carve %d corrupted: got %d", i, v)
		}
	}
	if s := a.Stats(); s.Slabs < 10 {
		t.Fatalf("expected many slabs, got %d", s.Slabs)
	}
}

func TestDefaultSlabSize(t *testing.T) {
	a := New(0)
	a.Bytes(1)
	if s := a.Stats(); s.SlabBytes != DefaultSlabSize {
		t.Fatalf("default slab size: %d", s.SlabBytes)
	}
}
