// Package benchfmt defines the repository's perf-trajectory snapshot
// format (BENCH_<pr>.json) and parses `go test -bench -benchmem` text
// output into it. cmd/benchjson writes snapshots, cmd/benchdiff compares
// them, and CI archives both so every PR leaves a machine-readable ns/op,
// B/op and allocs/op record.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics carries the benchmark's custom b.ReportMetric values by
	// unit (paper medians like "flash_d2_ms", and the steady-state
	// allocation gate "warm-allocs/run" cmd/benchdiff enforces).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Key identifies a benchmark across snapshots.
func (r Result) Key() string { return r.Package + "." + r.Name }

// File is the trajectory snapshot: environment header plus every
// benchmark, sorted by package then name for stable diffs.
type File struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchtime records the -benchtime the run used, so a snapshot with
	// iterations-starved numbers (e.g. 1x) is recognizable when compared.
	Benchtime  string   `json:"benchtime,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// ReadFile loads a snapshot written by cmd/benchjson.
func ReadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Parse reads `go test -bench -benchmem` output. Benchmark lines look
// like:
//
//	BenchmarkRunStudy-8  38  30802498 ns/op  5272947 B/op  33772 allocs/op
//
// goos/goarch/cpu/pkg header lines annotate the results; everything else
// (PASS, ok, test logs) is skipped.
func Parse(r io.Reader) (*File, error) {
	file := &File{}
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			file.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			file.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			file.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		res := Result{Package: pkg}
		// Strip the -GOMAXPROCS suffix from the name.
		res.Name = fields[0]
		if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
			if _, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				res.Name = res.Name[:i]
			}
		}
		var err error
		if res.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		if res.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		for i := 4; i+1 < len(fields); i += 2 {
			switch unit := fields[i+1]; unit {
			case "B/op":
				if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
					res.BytesPerOp = v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(fields[i], 10, 64); err == nil {
					res.AllocsPerOp = v
				}
			default:
				// Custom b.ReportMetric pair.
				if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
					if res.Metrics == nil {
						res.Metrics = make(map[string]float64)
					}
					res.Metrics[unit] = v
				}
			}
		}
		file.Benchmarks = append(file.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(file.Benchmarks, func(i, j int) bool {
		a, b := file.Benchmarks[i], file.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	return file, nil
}
