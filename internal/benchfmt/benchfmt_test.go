package benchfmt

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/browsermetric/browsermetric
cpu: AMD EPYC 7B13
BenchmarkRunStudy-8          	      38	  30802498 ns/op	 5272947 B/op	   33772 allocs/op
BenchmarkRunStudyParallel-8  	     100	  11111111 ns/op	  123456 B/op	    1234 allocs/op
BenchmarkRun-8               	    2000	    500000 ns/op
BenchmarkSteadyStateRun-8    	     120	     24802 ns/op	         1.000 warm-allocs/run	    1184 B/op	       1 allocs/op
--- BENCH: BenchmarkNoise-8
    some_test.go:10: log line that mentions Benchmark but is indented
PASS
ok  	github.com/browsermetric/browsermetric	4.2s
pkg: github.com/browsermetric/browsermetric/internal/obs
BenchmarkSketch-8            	 1000000	      1050 ns/op	      16 B/op	       1 allocs/op
PASS
ok  	github.com/browsermetric/browsermetric/internal/obs	1.1s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || f.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header = %q/%q/%q", f.Goos, f.Goarch, f.CPU)
	}
	if len(f.Benchmarks) != 5 {
		t.Fatalf("benchmarks = %d, want 5", len(f.Benchmarks))
	}
	// Sorted by package then name; -8 suffixes stripped.
	wantOrder := []string{"BenchmarkRun", "BenchmarkRunStudy", "BenchmarkRunStudyParallel", "BenchmarkSteadyStateRun", "BenchmarkSketch"}
	for i, want := range wantOrder {
		if f.Benchmarks[i].Name != want {
			t.Fatalf("order[%d] = %s, want %s", i, f.Benchmarks[i].Name, want)
		}
	}
	rs := f.Benchmarks[1] // BenchmarkRunStudy
	if rs.Iterations != 38 || rs.NsPerOp != 30802498 || rs.BytesPerOp != 5272947 || rs.AllocsPerOp != 33772 {
		t.Fatalf("RunStudy = %+v", rs)
	}
	if rs.Package != "github.com/browsermetric/browsermetric" {
		t.Fatalf("package = %q", rs.Package)
	}
	// A line without -benchmem metrics still parses.
	run := f.Benchmarks[0]
	if run.NsPerOp != 500000 || run.BytesPerOp != 0 {
		t.Fatalf("Run = %+v", run)
	}
	// Custom b.ReportMetric pairs land in Metrics keyed by unit; the
	// standard -benchmem pairs on the same line still parse.
	ss := f.Benchmarks[3]
	if got := ss.Metrics["warm-allocs/run"]; got != 1.0 {
		t.Fatalf("SteadyStateRun warm-allocs/run = %v, want 1.0 (metrics: %v)", got, ss.Metrics)
	}
	if ss.BytesPerOp != 1184 || ss.AllocsPerOp != 1 {
		t.Fatalf("SteadyStateRun = %+v", ss)
	}
	sk := f.Benchmarks[4]
	if sk.Package != "github.com/browsermetric/browsermetric/internal/obs" {
		t.Fatalf("sketch package = %q", sk.Package)
	}
}

func TestParseEmptyInput(t *testing.T) {
	f, err := Parse(strings.NewReader("PASS\nok x 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %d", len(f.Benchmarks))
	}
}
