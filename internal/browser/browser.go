// Package browser models the browsers, plugins and runtimes of the
// paper's Table 2 as parameterized cost profiles.
//
// The paper measures real Chrome/Firefox/IE/Opera/Safari builds on
// Windows 7 and Ubuntu 12.04; those binaries (and the Flash/Java plugins)
// are the one component of the study we cannot run, so — per the
// substitution rule — this package reproduces the *mechanisms* that
// generate browser-side delay overhead:
//
//   - per-API send/receive path costs (JS engine work, DOM insertion,
//     event-listener dispatch, plugin bridge crossings), drawn from
//     shifted-lognormal distributions calibrated per browser×OS to the
//     medians and spreads of Figure 3;
//   - first-use penalties that differentiate Δd1 from Δd2;
//   - connection policies (notably Opera's Flash plugin opening a new TCP
//     connection for the first request and for every POST — Table 3);
//   - the timing API each technology exposes, including the quantized
//     Date.getTime() clock whose Windows granularity regime produces
//     Figure 4 and Table 4.
//
// Each distribution's parameters are data, not logic: recalibrating the
// model against a different browser generation only means editing the
// tables in profiles.go.
package browser

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/browsermetric/browsermetric/internal/clock"
)

// OS identifies the operating system of a testbed client.
type OS int

// The two systems of Table 2.
const (
	Windows OS = iota
	Ubuntu
)

func (o OS) String() string {
	switch o {
	case Windows:
		return "Windows"
	case Ubuntu:
		return "Ubuntu"
	default:
		return fmt.Sprintf("OS(%d)", int(o))
	}
}

// Initial returns the single-letter tag used in the paper's figure labels
// ("(W)" / "(U)").
func (o OS) Initial() string {
	if o == Windows {
		return "W"
	}
	return "U"
}

// Name identifies a browser.
type Name int

// The five browsers of Table 2, plus the JDK appletviewer used in the
// Figure 4(b) control experiment.
const (
	Chrome Name = iota
	Firefox
	IE
	Opera
	Safari
	Appletviewer
)

func (n Name) String() string {
	switch n {
	case Chrome:
		return "Chrome"
	case Firefox:
		return "Firefox"
	case IE:
		return "IE"
	case Opera:
		return "Opera"
	case Safari:
		return "Safari"
	case Appletviewer:
		return "appletviewer"
	default:
		return fmt.Sprintf("Name(%d)", int(n))
	}
}

// Initial returns the figure-label initial ("C", "F", "IE", "O", "S").
func (n Name) Initial() string {
	switch n {
	case Chrome:
		return "C"
	case Firefox:
		return "F"
	case IE:
		return "IE"
	case Opera:
		return "O"
	case Safari:
		return "S"
	case Appletviewer:
		return "AV"
	default:
		return "?"
	}
}

// API is a measurement-facing browser interface, i.e. the mechanism a
// method uses to move bytes (Table 1 rows, modulo HTTP verb).
type API int

// The APIs the ten methods are built on.
const (
	APIXHR API = iota
	APIDOM
	APIWebSocket
	APIFlashHTTP
	APIFlashSocket
	APIJavaHTTP
	APIJavaSocket
	APIJavaUDP
)

func (a API) String() string {
	switch a {
	case APIXHR:
		return "XHR"
	case APIDOM:
		return "DOM"
	case APIWebSocket:
		return "WebSocket"
	case APIFlashHTTP:
		return "Flash HTTP"
	case APIFlashSocket:
		return "Flash socket"
	case APIJavaHTTP:
		return "Java HTTP"
	case APIJavaSocket:
		return "Java socket"
	case APIJavaUDP:
		return "Java UDP"
	default:
		return fmt.Sprintf("API(%d)", int(a))
	}
}

// Runtime returns which runtime hosts the API: the browser's native
// JavaScript engine, the Flash plugin, or the Java plugin (JRE).
func (a API) Runtime() string {
	switch a {
	case APIXHR, APIDOM, APIWebSocket:
		return "native"
	case APIFlashHTTP, APIFlashSocket:
		return "flash"
	default:
		return "java"
	}
}

// ConnPolicy describes how an API obtains the TCP connection for an HTTP
// request.
type ConnPolicy int

const (
	// PolicyReuse reuses the container page's connection even for the
	// first measurement (the common browser behaviour per Section 4.1).
	PolicyReuse ConnPolicy = iota
	// PolicyNewOnFirst opens a fresh connection for the first measurement
	// and reuses it afterwards (Opera + Flash GET).
	PolicyNewOnFirst
	// PolicyNewAlways opens a fresh connection for every request
	// (Opera + Flash POST).
	PolicyNewAlways
)

func (p ConnPolicy) String() string {
	switch p {
	case PolicyReuse:
		return "reuse"
	case PolicyNewOnFirst:
		return "new-on-first"
	case PolicyNewAlways:
		return "new-always"
	default:
		return fmt.Sprintf("ConnPolicy(%d)", int(p))
	}
}

// TimingFunc selects the timestamping API the measurement code calls.
type TimingFunc int

const (
	// GetTime is Date.getTime()/System.currentTimeMillis(): millisecond
	// resolution, OS-dependent granularity (the paper's default).
	GetTime TimingFunc = iota
	// NanoTime is System.nanoTime()/performance.now(): effectively
	// continuous (the paper's fix in Section 4.2).
	NanoTime
)

func (t TimingFunc) String() string {
	if t == NanoTime {
		return "System.nanoTime"
	}
	return "Date.getTime"
}

// Dist is a shifted-lognormal delay distribution: Base + Scale·exp(σZ)
// with Z standard normal. Its median is Base + Scale; Sigma controls the
// spread (and the outlier tail the paper's box plots show).
type Dist struct {
	Base  time.Duration
	Scale time.Duration
	Sigma float64
}

// Sample draws one delay. Deterministic given the rng state.
func (d Dist) Sample(rng *rand.Rand) time.Duration {
	if d.Scale == 0 {
		return d.Base
	}
	z := rng.NormFloat64()
	return d.Base + time.Duration(float64(d.Scale)*math.Exp(d.Sigma*z))
}

// Median returns the distribution median.
func (d Dist) Median() time.Duration { return d.Base + d.Scale }

// apiCosts bundles the per-API delay components.
type apiCosts struct {
	send     Dist // measurement code "send" call -> request on the stack
	recv     Dist // response at the stack -> receive timestamp taken
	firstUse Dist // extra cost added to the first measurement's send path
	// repeatExtra is added to the *second* GET measurement instead; some
	// runtimes (Java URL reuse revalidation) do more work on reuse, which
	// is how Table 4 shows GET Δd2 > Δd1.
	repeatExtra Dist
	// postRepeatExtra plays the same role for the second POST measurement
	// (Table 4 shows POST Δd2 < Δd1, so this is typically negative).
	postRepeatExtra Dist
	postExtra       Dist // extra send cost for POST vs GET
}

// Profile is a calibrated browser×OS model.
type Profile struct {
	Browser Name
	OS      OS

	// Table 2 metadata.
	Version      string
	FlashVersion string
	JavaVersion  string
	// WebSocket reports whether the browser build supports WebSocket
	// (IE 9 and Safari 5 do not).
	WebSocket bool

	costs map[API]apiCosts

	// load is the background system-load factor (0 = idle testbed, the
	// paper's setup; 1 = heavily loaded host). Section 3 notes overheads
	// "may still vary, depending on how sensitive the measurement methods
	// are to these system loads" — plugin bridges are hit hardest because
	// each crossing contends for CPU.
	load float64

	// flashGetPolicy / flashPostPolicy capture the plugin connection
	// behaviour of Section 4.1. All other HTTP APIs use PolicyReuse.
	flashGetPolicy  ConnPolicy
	flashPostPolicy ConnPolicy
}

// Load returns the background system-load factor the profile models
// (0 = the paper's idle testbed). It is part of a cell's measurement
// identity: cache keys must include it so a WithLoad variant never
// collides with its idle base profile.
func (p *Profile) Load() float64 { return p.load }

// WithLoad returns a copy of the profile running under the given
// background load factor (clamped to [0, 1]).
func (p *Profile) WithLoad(load float64) *Profile {
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	q := *p
	q.load = load
	return &q
}

// loadSensitivity is the per-runtime multiplier on costs at full load:
// native JS degrades least, the plugin bridges most.
func loadSensitivity(api API) float64 {
	switch api.Runtime() {
	case "flash":
		return 2.0
	case "java":
		return 1.5
	default:
		return 0.8
	}
}

// applyLoad scales a drawn cost by the load factor, with extra noise
// modeling scheduler contention.
func (p *Profile) applyLoad(api API, d time.Duration, rng *rand.Rand) time.Duration {
	if p.load == 0 || d <= 0 {
		return d
	}
	scale := 1 + p.load*loadSensitivity(api)
	noise := 1 + p.load*0.5*rng.Float64()
	return time.Duration(float64(d) * scale * noise)
}

// Label returns the figure label, e.g. "C (U)".
func (p *Profile) Label() string {
	return fmt.Sprintf("%s (%s)", p.Browser.Initial(), p.OS.Initial())
}

// Supports reports whether the profile can run the API at all.
func (p *Profile) Supports(api API) bool {
	if p.Browser == Appletviewer {
		return api == APIJavaHTTP || api == APIJavaSocket || api == APIJavaUDP
	}
	if api == APIWebSocket {
		return p.WebSocket
	}
	_, ok := p.costs[api]
	return ok
}

// SendCost draws the send-path delay for one measurement.
// round is 1 for Δd1 and 2 for Δd2; post marks POST requests.
func (p *Profile) SendCost(api API, round int, post bool, rng *rand.Rand) time.Duration {
	c := p.mustCosts(api)
	d := c.send.Sample(rng)
	switch {
	case round <= 1:
		d += c.firstUse.Sample(rng)
	case post:
		d += c.postRepeatExtra.Sample(rng)
	default:
		d += c.repeatExtra.Sample(rng)
	}
	if post {
		d += c.postExtra.Sample(rng)
	}
	if d < 0 {
		d = 0
	}
	return p.applyLoad(api, d, rng)
}

// RecvCost draws the receive-path delay (event dispatch, parse, bridge).
func (p *Profile) RecvCost(api API, rng *rand.Rand) time.Duration {
	d := p.mustCosts(api).recv.Sample(rng)
	if d < 0 {
		d = 0
	}
	return p.applyLoad(api, d, rng)
}

// MedianOverhead returns the calibrated steady-state (round 2, GET) median
// of send+recv for an API — useful for calibration reports.
func (p *Profile) MedianOverhead(api API) time.Duration {
	c := p.mustCosts(api)
	return c.send.Median() + c.recv.Median() + c.repeatExtra.Median()
}

func (p *Profile) mustCosts(api API) apiCosts {
	c, ok := p.costs[api]
	if !ok {
		panic(fmt.Sprintf("browser: %s does not support %v", p.Label(), api))
	}
	return c
}

// HTTPConnPolicy returns the connection policy for an HTTP request through
// the API.
func (p *Profile) HTTPConnPolicy(api API, post bool) ConnPolicy {
	if api == APIFlashHTTP {
		if post {
			return p.flashPostPolicy
		}
		return p.flashGetPolicy
	}
	return PolicyReuse
}

// Clock returns the timing API the measurement code sees for an API and
// timing-function choice, over the given time source.
//
// Granularity model: the native JS Date.getTime() and Flash's timer carry
// a steady 1 ms granularity on both systems; Java's Date.getTime() follows
// the OS-dependent schedule (regime-switching on Windows, steady 1 ms on
// Ubuntu); NanoTime is exact everywhere.
func (p *Profile) Clock(api API, timing TimingFunc, src clock.Source) clock.Clock {
	if timing == NanoTime {
		return &clock.Perfect{Src: src}
	}
	var sched *clock.Schedule
	switch api.Runtime() {
	case "java":
		if p.OS == Windows {
			sched = clock.WindowsGetTimeSchedule()
		} else {
			sched = clock.LinuxGetTimeSchedule()
		}
	default:
		sched = clock.LinuxGetTimeSchedule() // steady 1 ms
	}
	return &clock.Quantized{Src: src, Schedule: sched}
}
