package browser

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"github.com/browsermetric/browsermetric/internal/clock"
	"github.com/browsermetric/browsermetric/internal/stats"
)

func TestProfilesMatchTable2(t *testing.T) {
	ps := Profiles()
	if len(ps) != 8 {
		t.Fatalf("profiles = %d, want 8 (3 Ubuntu + 5 Windows)", len(ps))
	}
	byLabel := map[string]*Profile{}
	for _, p := range ps {
		byLabel[p.Label()] = p
	}
	for _, label := range []string{"C (U)", "F (U)", "O (U)", "C (W)", "F (W)", "IE (W)", "O (W)", "S (W)"} {
		if byLabel[label] == nil {
			t.Fatalf("missing profile %q", label)
		}
	}
	// WebSocket support per Table 2: IE 9 and Safari 5 lack it.
	if byLabel["IE (W)"].WebSocket || byLabel["S (W)"].WebSocket {
		t.Fatal("IE/Safari must not support WebSocket")
	}
	for _, l := range []string{"C (U)", "F (U)", "O (U)", "C (W)", "F (W)", "O (W)"} {
		if !byLabel[l].WebSocket {
			t.Fatalf("%s should support WebSocket", l)
		}
	}
	// Every profile carries plugin versions.
	for _, p := range ps {
		if p.FlashVersion == "" || p.JavaVersion == "" || p.Version == "" {
			t.Fatalf("%s missing versions: %+v", p.Label(), p)
		}
	}
}

func TestLookup(t *testing.T) {
	if Lookup(IE, Ubuntu) != nil {
		t.Fatal("IE on Ubuntu is not in Table 2")
	}
	if p := Lookup(Safari, Windows); p == nil || p.Browser != Safari {
		t.Fatal("Safari on Windows missing")
	}
	if p := Lookup(Appletviewer, Windows); p == nil {
		t.Fatal("appletviewer profile missing")
	}
	if Lookup(Appletviewer, Ubuntu) != nil {
		t.Fatal("appletviewer control ran on Windows only")
	}
}

func TestSupports(t *testing.T) {
	ie := Lookup(IE, Windows)
	if ie.Supports(APIWebSocket) {
		t.Fatal("IE9 must not support WebSocket")
	}
	if !ie.Supports(APIXHR) || !ie.Supports(APIFlashHTTP) || !ie.Supports(APIJavaSocket) {
		t.Fatal("IE should support XHR/Flash/Java")
	}
	av := AppletviewerProfile()
	if av.Supports(APIXHR) || av.Supports(APIFlashSocket) {
		t.Fatal("appletviewer only hosts Java")
	}
	if !av.Supports(APIJavaSocket) || !av.Supports(APIJavaHTTP) {
		t.Fatal("appletviewer must host Java APIs")
	}
}

func TestOperaFlashPolicies(t *testing.T) {
	for _, os := range []OS{Windows, Ubuntu} {
		o := Lookup(Opera, os)
		if got := o.HTTPConnPolicy(APIFlashHTTP, false); got != PolicyNewOnFirst {
			t.Fatalf("Opera(%v) Flash GET policy = %v", os, got)
		}
		if got := o.HTTPConnPolicy(APIFlashHTTP, true); got != PolicyNewAlways {
			t.Fatalf("Opera(%v) Flash POST policy = %v", os, got)
		}
	}
	c := Lookup(Chrome, Windows)
	if c.HTTPConnPolicy(APIFlashHTTP, false) != PolicyReuse || c.HTTPConnPolicy(APIXHR, true) != PolicyReuse {
		t.Fatal("non-Opera methods must reuse the container connection")
	}
}

// medians samples a cost function and returns the median in ms.
func medianCost(t *testing.T, f func(rng *rand.Rand) time.Duration) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var s []float64
	for i := 0; i < 2000; i++ {
		s = append(s, stats.Ms(f(rng)))
	}
	return stats.Median(s)
}

func TestCalibratedOrdering(t *testing.T) {
	// The paper's central comparative result, per profile: socket APIs
	// incur far less overhead than HTTP APIs, DOM < XHR < Flash HTTP.
	for _, p := range Profiles() {
		p := p
		total := func(api API) float64 {
			return medianCost(t, func(rng *rand.Rand) time.Duration {
				return p.SendCost(api, 2, false, rng) + p.RecvCost(api, rng)
			})
		}
		dom, xhr, flash := total(APIDOM), total(APIXHR), total(APIFlashHTTP)
		if !(dom <= xhr && xhr < flash) {
			t.Errorf("%s: DOM %.2f <= XHR %.2f < Flash %.2f violated", p.Label(), dom, xhr, flash)
		}
		sock := total(APIJavaSocket)
		if sock >= dom && p.Browser != Safari {
			t.Errorf("%s: Java socket %.2f should be below DOM %.2f", p.Label(), sock, dom)
		}
		if p.WebSocket {
			ws := total(APIWebSocket)
			if ws >= dom {
				t.Errorf("%s: WebSocket %.2f should be below DOM %.2f", p.Label(), ws, dom)
			}
		}
	}
}

func TestFlashMediansInPaperRange(t *testing.T) {
	// Figure 3(e): Flash HTTP median overheads fall between 20 and 100 ms.
	for _, p := range Profiles() {
		p := p
		m := medianCost(t, func(rng *rand.Rand) time.Duration {
			return p.SendCost(APIFlashHTTP, 2, false, rng) + p.RecvCost(APIFlashHTTP, rng)
		})
		if m < 15 || m > 100 {
			t.Errorf("%s: Flash HTTP median %.1f ms outside [15,100]", p.Label(), m)
		}
	}
}

func TestJavaTable4Asymmetry(t *testing.T) {
	// Table 4: GET Δd2 > Δd1, POST Δd2 < Δd1, socket Δd2 slightly > Δd1.
	p := Lookup(Chrome, Windows)
	get1 := medianCost(t, func(rng *rand.Rand) time.Duration {
		return p.SendCost(APIJavaHTTP, 1, false, rng) + p.RecvCost(APIJavaHTTP, rng)
	})
	get2 := medianCost(t, func(rng *rand.Rand) time.Duration {
		return p.SendCost(APIJavaHTTP, 2, false, rng) + p.RecvCost(APIJavaHTTP, rng)
	})
	post1 := medianCost(t, func(rng *rand.Rand) time.Duration {
		return p.SendCost(APIJavaHTTP, 1, true, rng) + p.RecvCost(APIJavaHTTP, rng)
	})
	post2 := medianCost(t, func(rng *rand.Rand) time.Duration {
		return p.SendCost(APIJavaHTTP, 2, true, rng) + p.RecvCost(APIJavaHTTP, rng)
	})
	if !(get2 > get1) {
		t.Errorf("GET d2 %.2f should exceed d1 %.2f", get2, get1)
	}
	if !(post2 < post1) {
		t.Errorf("POST d2 %.2f should be below d1 %.2f", post2, post1)
	}
	if get1 < 2 || get1 > 4.5 {
		t.Errorf("GET d1 median %.2f outside Table 4 ballpark", get1)
	}
	sock1 := medianCost(t, func(rng *rand.Rand) time.Duration {
		return p.SendCost(APIJavaSocket, 1, false, rng) + p.RecvCost(APIJavaSocket, rng)
	})
	if sock1 > 0.2 {
		t.Errorf("Java socket d1 median %.3f ms should be ~0.01", sock1)
	}
}

func TestSafariOracleJREFix(t *testing.T) {
	s := Lookup(Safari, Windows)
	fixed := s.WithOracleJRE()
	broken := medianCost(t, func(rng *rand.Rand) time.Duration {
		return s.SendCost(APIJavaSocket, 2, false, rng) + s.RecvCost(APIJavaSocket, rng)
	})
	ok := medianCost(t, func(rng *rand.Rand) time.Duration {
		return fixed.SendCost(APIJavaSocket, 2, false, rng) + fixed.RecvCost(APIJavaSocket, rng)
	})
	if ok >= broken/5 {
		t.Fatalf("Oracle JRE socket %.3f ms should be far below plugin %.3f ms", ok, broken)
	}
	// Non-Java APIs untouched.
	if s.MedianOverhead(APIXHR) != fixed.MedianOverhead(APIXHR) {
		t.Fatal("WithOracleJRE must not change XHR costs")
	}
}

func TestClockSelection(t *testing.T) {
	src := func() time.Duration { return 90*time.Second + 1234*time.Microsecond }
	w := Lookup(Chrome, Windows)
	u := Lookup(Chrome, Ubuntu)

	// NanoTime is exact.
	if got := w.Clock(APIJavaSocket, NanoTime, src).Now(); got != src() {
		t.Fatalf("nanoTime = %v", got)
	}
	// JS getTime quantizes to 1 ms on both systems.
	if got := w.Clock(APIXHR, GetTime, src).Now(); got != 90*time.Second+time.Millisecond {
		t.Fatalf("JS getTime = %v", got)
	}
	// Java getTime on Ubuntu: steady 1 ms.
	if got := u.Clock(APIJavaSocket, GetTime, src).Now(); got != 90*time.Second+time.Millisecond {
		t.Fatalf("Java getTime (U) = %v", got)
	}
	// Java getTime on Windows follows the regime schedule: at t=90s we are
	// in the 1 ms regime; deep into the cycle (t=5min) we are in the
	// coarse regime.
	late := func() time.Duration { return 5 * time.Minute }
	q := w.Clock(APIJavaSocket, GetTime, late).(*clock.Quantized)
	if q.Granularity() != clock.WindowsTimerPeriod {
		t.Fatalf("Java getTime (W) granularity at 5min = %v", q.Granularity())
	}
}

func TestSendCostNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Lookup(Chrome, Windows)
	for i := 0; i < 5000; i++ {
		if d := p.SendCost(APIJavaHTTP, 2, true, rng); d < 0 {
			t.Fatalf("negative send cost %v", d)
		}
	}
}

func TestUnsupportedAPIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for WebSocket cost on IE")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	Lookup(IE, Windows).SendCost(APIWebSocket, 1, false, rng)
}

func TestStringers(t *testing.T) {
	for _, s := range []string{
		Windows.String(), Ubuntu.String(), Chrome.String(), Appletviewer.String(),
		APIXHR.String(), APIJavaUDP.String(), PolicyReuse.String(), PolicyNewAlways.String(),
		GetTime.String(), NanoTime.String(), OS(9).String(), Name(9).String(), API(99).String(),
	} {
		if s == "" {
			t.Fatal("empty stringer output")
		}
	}
	if Chrome.Initial() != "C" || IE.Initial() != "IE" || Windows.Initial() != "W" {
		t.Fatal("initials wrong")
	}
}

func TestAPIRuntime(t *testing.T) {
	if APIXHR.Runtime() != "native" || APIFlashSocket.Runtime() != "flash" || APIJavaUDP.Runtime() != "java" {
		t.Fatal("runtime mapping wrong")
	}
}

func TestDistMedianAccuracy(t *testing.T) {
	d := Dist{Scale: 10 * time.Millisecond, Sigma: 0.5}
	rng := rand.New(rand.NewSource(3))
	var s []float64
	for i := 0; i < 20000; i++ {
		s = append(s, stats.Ms(d.Sample(rng)))
	}
	sort.Float64s(s)
	med := stats.Median(s)
	if med < 9.5 || med > 10.5 {
		t.Fatalf("empirical median %.2f, want ~10 (lognormal median = Scale)", med)
	}
	if d.Median() != 10*time.Millisecond {
		t.Fatalf("Median() = %v", d.Median())
	}
}

// Property: samples from a non-negative Dist are always >= Base, and a
// zero-scale Dist is deterministic.
func TestQuickDistBounds(t *testing.T) {
	f := func(baseMs uint16, scaleMs uint16, seed int64) bool {
		d := Dist{Base: time.Duration(baseMs) * time.Millisecond, Scale: time.Duration(scaleMs) * time.Millisecond, Sigma: 0.7}
		rng := rand.New(rand.NewSource(seed))
		v := d.Sample(rng)
		if scaleMs == 0 {
			return v == d.Base
		}
		return v >= d.Base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: every profile returned by Profiles supports the paper's eight
// non-WebSocket APIs minus DOM-only gaps; i.e. XHR, DOM, FlashHTTP,
// FlashSocket, JavaHTTP, JavaSocket are universal.
func TestQuickUniversalAPIs(t *testing.T) {
	for _, p := range Profiles() {
		for _, api := range []API{APIXHR, APIDOM, APIFlashHTTP, APIFlashSocket, APIJavaHTTP, APIJavaSocket, APIJavaUDP} {
			if !p.Supports(api) {
				t.Fatalf("%s lacks %v", p.Label(), api)
			}
		}
	}
}

func TestModernProfile(t *testing.T) {
	m := ModernProfile(Windows)
	if !m.WebSocket || !m.Supports(APIWebSocket) {
		t.Fatal("modern profile must support WebSocket")
	}
	if m.Supports(APIFlashHTTP) || m.Supports(APIJavaSocket) {
		t.Fatal("modern profile must not host plugins")
	}
	// Modern XHR is far cheaper than the 2013 generation's.
	old := Lookup(Chrome, Windows)
	mm := medianCost(t, func(rng *rand.Rand) time.Duration {
		return m.SendCost(APIXHR, 2, false, rng) + m.RecvCost(APIXHR, rng)
	})
	om := medianCost(t, func(rng *rand.Rand) time.Duration {
		return old.SendCost(APIXHR, 2, false, rng) + old.RecvCost(APIXHR, rng)
	})
	if mm >= om/2 {
		t.Fatalf("modern XHR %.2f ms should be well below 2013's %.2f ms", mm, om)
	}
	// And it is absent from the Table 2 matrix.
	for _, p := range Profiles() {
		if p.Version == "evergreen" {
			t.Fatal("modern profile leaked into Profiles()")
		}
	}
}
