package browser

import (
	"math/rand"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/stats"
)

func medianLoaded(t *testing.T, p *Profile, api API) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var s []float64
	for i := 0; i < 2000; i++ {
		s = append(s, stats.Ms(p.SendCost(api, 2, false, rng)+p.RecvCost(api, rng)))
	}
	return stats.Median(s)
}

func TestLoadInflatesOverheads(t *testing.T) {
	idle := Lookup(Chrome, Windows)
	busy := idle.WithLoad(1.0)
	for _, api := range []API{APIXHR, APIFlashHTTP, APIJavaHTTP} {
		mi, mb := medianLoaded(t, idle, api), medianLoaded(t, busy, api)
		if mb <= mi {
			t.Errorf("%v: loaded median %.2f should exceed idle %.2f", api, mb, mi)
		}
	}
}

func TestLoadHitsPluginsHardest(t *testing.T) {
	idle := Lookup(Chrome, Windows)
	busy := idle.WithLoad(1.0)
	ratio := func(api API) float64 {
		return medianLoaded(t, busy, api) / medianLoaded(t, idle, api)
	}
	js, flash := ratio(APIXHR), ratio(APIFlashHTTP)
	if flash <= js {
		t.Fatalf("flash degradation %.2fx should exceed native %.2fx", flash, js)
	}
}

func TestLoadZeroIsIdentity(t *testing.T) {
	p := Lookup(Firefox, Ubuntu)
	q := p.WithLoad(0)
	if medianLoaded(t, p, APIXHR) != medianLoaded(t, q, APIXHR) {
		t.Fatal("zero load changed the distribution")
	}
}

func TestLoadClamped(t *testing.T) {
	p := Lookup(Firefox, Ubuntu)
	over := p.WithLoad(5)
	max := p.WithLoad(1)
	// Same seed sequence, same clamp: identical medians.
	if medianLoaded(t, over, APIXHR) != medianLoaded(t, max, APIXHR) {
		t.Fatal("load not clamped to 1")
	}
	if p.WithLoad(-3).load != 0 {
		t.Fatal("negative load not clamped to 0")
	}
}

func TestLoadDoesNotAffectZeroCosts(t *testing.T) {
	p := Lookup(Chrome, Windows).WithLoad(1)
	rng := rand.New(rand.NewSource(1))
	// Distributions with zero scale stay deterministic zero.
	d := Dist{}
	if d.Sample(rng) != 0 {
		t.Fatal("zero dist sampled nonzero")
	}
	if p.applyLoad(APIXHR, 0, rng) != 0 {
		t.Fatal("applyLoad inflated a zero cost")
	}
	if p.applyLoad(APIXHR, -time.Millisecond, rng) != -time.Millisecond {
		t.Fatal("applyLoad touched a negative adjustment")
	}
}
