package browser

import "time"

// ms builds a duration from fractional milliseconds.
func ms(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }

// split divides a total-median cost into send (30%) and receive (70%)
// components: event-listener dispatch on the receive path dominates in
// every runtime the paper instruments.
func split(totalMs, sigma float64) (send, recv Dist) {
	send = Dist{Scale: ms(totalMs * 0.3), Sigma: sigma}
	recv = Dist{Scale: ms(totalMs * 0.7), Sigma: sigma}
	return send, recv
}

// one builds a single-component distribution with median m (ms).
func one(m, sigma float64) Dist {
	if m == 0 {
		return Dist{}
	}
	if m < 0 {
		return Dist{Base: ms(m)} // deterministic negative adjustment
	}
	return Dist{Scale: ms(m), Sigma: sigma}
}

// httpAPIRow calibrates one HTTP-ish API for one browser×OS: steady-state
// (Δd2) median, first-use penalty, and spread.
type httpAPIRow struct {
	d2    float64 // steady-state median overhead, ms
	first float64 // extra on the first measurement, ms
	sigma float64
}

// profileSpec is the full calibration record for a browser×OS combo.
type profileSpec struct {
	browser Name
	os      OS
	version string
	flash   string
	java    string
	ws      bool

	xhr       httpAPIRow
	dom       httpAPIRow
	wsAPI     httpAPIRow // zero row => no WebSocket
	flashHTTP httpAPIRow
	flashSock httpAPIRow
	// Java rows are calibrated to Table 4 (true overheads observed with
	// System.nanoTime); the getTime artifacts come from the clock model.
	javaGetD1, javaGetD2   float64
	javaPostD1, javaPostD2 float64
	javaSockD1, javaSockD2 float64
	javaSigma              float64
}

// specs is the calibration table: one row per Table 2 browser×OS combo.
// Medians follow the shapes of Figure 3 and Tables 3–4:
//   - XHR: a few ms (Chrome/Firefox) to tens of ms (IE, Opera);
//   - DOM: below ~5 ms and very consistent, especially on Ubuntu;
//   - Flash HTTP: 20–100 ms medians with the largest cross-browser spread;
//   - WebSocket: sub-millisecond, most stable (Opera (W) Δd1 excepted);
//   - sockets: sub-millisecond;
//   - Java rows per Table 4, with GET Δd2 > Δd1 (URL reuse revalidation)
//     and POST Δd2 < Δd1.
var specs = []profileSpec{
	{
		browser: Chrome, os: Ubuntu, version: "23.0", flash: "11.5.31", java: "1.6.0", ws: true,
		xhr:       httpAPIRow{d2: 4, first: 4, sigma: 0.45},
		dom:       httpAPIRow{d2: 1.6, first: 1.0, sigma: 0.15},
		wsAPI:     httpAPIRow{d2: 0.30, first: 0.15, sigma: 0.30},
		flashHTTP: httpAPIRow{d2: 28, first: 24, sigma: 0.55},
		flashSock: httpAPIRow{d2: 1.2, first: 0.8, sigma: 0.60},
		javaGetD1: 3.4, javaGetD2: 5.1, javaPostD1: 3.0, javaPostD2: 2.1,
		javaSockD1: 0.02, javaSockD2: 0.09, javaSigma: 0.35,
	},
	{
		browser: Firefox, os: Ubuntu, version: "17.0", flash: "11.2.202", java: "1.6.0", ws: true,
		xhr:       httpAPIRow{d2: 5, first: 5, sigma: 0.45},
		dom:       httpAPIRow{d2: 2.0, first: 1.0, sigma: 0.15},
		wsAPI:     httpAPIRow{d2: 0.40, first: 0.20, sigma: 0.30},
		flashHTTP: httpAPIRow{d2: 45, first: 28, sigma: 0.65},
		flashSock: httpAPIRow{d2: 1.5, first: 1.0, sigma: 0.60},
		javaGetD1: 3.1, javaGetD2: 4.9, javaPostD1: 2.8, javaPostD2: 1.9,
		javaSockD1: 0.02, javaSockD2: 0.08, javaSigma: 0.35,
	},
	{
		browser: Opera, os: Ubuntu, version: "12.11", flash: "11.2.202", java: "1.6.0", ws: true,
		xhr:       httpAPIRow{d2: 12, first: 6, sigma: 0.50},
		dom:       httpAPIRow{d2: 2.4, first: 1.2, sigma: 0.18},
		wsAPI:     httpAPIRow{d2: 0.50, first: 0.25, sigma: 0.35},
		flashHTTP: httpAPIRow{d2: 20, first: 33, sigma: 0.30}, // Table 3: Δd2≈19.8, Δd1≈105 incl. 50 ms handshake
		flashSock: httpAPIRow{d2: 1.8, first: 1.2, sigma: 0.60},
		javaGetD1: 3.2, javaGetD2: 4.8, javaPostD1: 2.9, javaPostD2: 2.0,
		javaSockD1: 0.02, javaSockD2: 0.08, javaSigma: 0.40,
	},
	{
		// Section 5 prefers Firefox on Windows: Chrome's native paths are
		// calibrated slightly above Firefox's there (the reverse of
		// Ubuntu, where Chrome is the recommended browser).
		browser: Chrome, os: Windows, version: "23.0", flash: "11.7.700", java: "1.7.0", ws: true,
		xhr:       httpAPIRow{d2: 5, first: 4, sigma: 0.50},
		dom:       httpAPIRow{d2: 2.5, first: 1.2, sigma: 0.30},
		wsAPI:     httpAPIRow{d2: 0.40, first: 0.20, sigma: 0.35},
		flashHTTP: httpAPIRow{d2: 25, first: 25, sigma: 0.70},
		flashSock: httpAPIRow{d2: 1.3, first: 0.9, sigma: 0.70},
		javaGetD1: 2.96, javaGetD2: 4.80, javaPostD1: 2.71, javaPostD2: 1.84,
		javaSockD1: 0.01, javaSockD2: 0.07, javaSigma: 0.30,
	},
	{
		browser: Firefox, os: Windows, version: "17.0", flash: "11.5.502", java: "1.7.0", ws: true,
		xhr:       httpAPIRow{d2: 3.5, first: 3, sigma: 0.45},
		dom:       httpAPIRow{d2: 2.0, first: 1.0, sigma: 0.28},
		wsAPI:     httpAPIRow{d2: 0.30, first: 0.15, sigma: 0.30},
		flashHTTP: httpAPIRow{d2: 60, first: 35, sigma: 0.75},
		flashSock: httpAPIRow{d2: 1.0, first: 0.8, sigma: 0.65},
		javaGetD1: 2.73, javaGetD2: 4.38, javaPostD1: 2.41, javaPostD2: 1.49,
		javaSockD1: 0.00, javaSockD2: 0.07, javaSigma: 0.30,
	},
	{
		browser: IE, os: Windows, version: "9.0.8", flash: "11.5.502", java: "1.7.0", ws: false,
		xhr:       httpAPIRow{d2: 18, first: 7, sigma: 0.55},
		dom:       httpAPIRow{d2: 4.0, first: 1.5, sigma: 0.35},
		flashHTTP: httpAPIRow{d2: 35, first: 30, sigma: 0.70},
		flashSock: httpAPIRow{d2: 1.2, first: 1.0, sigma: 0.70},
		javaGetD1: 2.73, javaGetD2: 4.56, javaPostD1: 2.57, javaPostD2: 1.49,
		javaSockD1: 0.02, javaSockD2: 0.06, javaSigma: 0.30,
	},
	{
		browser: Opera, os: Windows, version: "12.11", flash: "11.5.502", java: "1.7.0", ws: true,
		xhr:       httpAPIRow{d2: 14, first: 6, sigma: 0.50},
		dom:       httpAPIRow{d2: 3.0, first: 1.2, sigma: 0.32},
		wsAPI:     httpAPIRow{d2: 0.60, first: 3.5, sigma: 0.95}, // Fig 3d: Opera (W) Δd1 is the unstable exception
		flashHTTP: httpAPIRow{d2: 20, first: 30, sigma: 0.30},    // Table 3: Δd2≈19.8, Δd1≈101 incl. handshake
		flashSock: httpAPIRow{d2: 1.5, first: 1.0, sigma: 0.70},
		javaGetD1: 2.83, javaGetD2: 4.46, javaPostD1: 2.51, javaPostD2: 1.57,
		javaSockD1: 0.01, javaSockD2: 0.06, javaSigma: 0.30,
	},
	{
		browser: Safari, os: Windows, version: "5.1.7", flash: "11.5.502", java: "1.7.0", ws: false,
		xhr:       httpAPIRow{d2: 9, first: 4, sigma: 0.50},
		dom:       httpAPIRow{d2: 3.5, first: 1.5, sigma: 0.35},
		flashHTTP: httpAPIRow{d2: 45, first: 40, sigma: 0.70},
		flashSock: httpAPIRow{d2: 2.0, first: 1.5, sigma: 0.80},
		// Safari's bundled Java plugin misbehaves (Section 5): its Java
		// overheads are larger and Δd2 spreads continuously over several
		// ms (Figure 4a). Table 4's small values required forcing the
		// Oracle JRE — see WithOracleJRE.
		javaGetD1: 5.5, javaGetD2: 6.5, javaPostD1: 5.0, javaPostD2: 4.5,
		javaSockD1: 2.5, javaSockD2: 3.0, javaSigma: 1.10,
	},
	{
		// The appletviewer control of Figure 4(b): no browser, no Java
		// plugin — just the JRE. Only Java APIs exist.
		browser: Appletviewer, os: Windows, version: "JDK 1.7.0", java: "1.7.0",
		javaGetD1: 2.2, javaGetD2: 3.5, javaPostD1: 2.0, javaPostD2: 1.3,
		javaSockD1: 0.01, javaSockD2: 0.05, javaSigma: 0.25,
	},
}

// build converts a spec into a Profile.
func (s profileSpec) build() *Profile {
	p := &Profile{
		Browser:      s.browser,
		OS:           s.os,
		Version:      s.version,
		FlashVersion: s.flash,
		JavaVersion:  s.java,
		WebSocket:    s.ws,
		costs:        make(map[API]apiCosts),
		// Section 4.1: only Opera's Flash plugin opens fresh connections.
		flashGetPolicy:  PolicyReuse,
		flashPostPolicy: PolicyReuse,
	}
	if s.browser == Opera {
		p.flashGetPolicy = PolicyNewOnFirst
		p.flashPostPolicy = PolicyNewAlways
	}

	addHTTPish := func(api API, r httpAPIRow, postExtraMs float64) {
		if r == (httpAPIRow{}) {
			return
		}
		send, recv := split(r.d2, r.sigma)
		p.costs[api] = apiCosts{
			send:      send,
			recv:      recv,
			firstUse:  one(r.first, r.sigma*0.8),
			postExtra: one(postExtraMs, 0.3),
		}
	}
	if s.browser != Appletviewer {
		addHTTPish(APIXHR, s.xhr, 1.0)
		addHTTPish(APIDOM, s.dom, 0) // DOM GET only; POST unsupported
		if s.ws {
			addHTTPish(APIWebSocket, s.wsAPI, 0)
		}
		addHTTPish(APIFlashHTTP, s.flashHTTP, 2.0)
		addHTTPish(APIFlashSocket, s.flashSock, 0)
	}

	// Java APIs, calibrated to the Δd1/Δd2 asymmetry of Table 4.
	if s.javaGetD1 != 0 {
		sendG, recvG := split(s.javaGetD1, s.javaSigma)
		p.costs[APIJavaHTTP] = apiCosts{
			send:            sendG,
			recv:            recvG,
			repeatExtra:     one(s.javaGetD2-s.javaGetD1, s.javaSigma*0.5),
			postExtra:       one(s.javaPostD1-s.javaGetD1, 0.2),
			postRepeatExtra: one(s.javaPostD2-s.javaPostD1, s.javaSigma*0.5),
		}
	}
	if s.javaSockD1 != 0 || s.javaSockD2 != 0 {
		sendS, recvS := split(maxF(s.javaSockD1, 0.005), s.javaSigma)
		p.costs[APIJavaSocket] = apiCosts{
			send:        sendS,
			recv:        recvS,
			repeatExtra: one(s.javaSockD2-s.javaSockD1, s.javaSigma*0.5),
		}
		// The UDP variant (Table 1; excluded from the paper's comparison)
		// costs marginally more per datagram than the TCP socket path.
		p.costs[APIJavaUDP] = apiCosts{
			send:        Dist{Scale: sendS.Scale * 2, Sigma: s.javaSigma},
			recv:        Dist{Scale: recvS.Scale * 2, Sigma: s.javaSigma},
			repeatExtra: one((s.javaSockD2-s.javaSockD1)*0.5, s.javaSigma*0.5),
		}
	}
	return p
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Profiles returns the Table 2 matrix: Chrome/Firefox/Opera on Ubuntu and
// all five browsers on Windows, in the paper's figure order (Ubuntu combos
// first).
func Profiles() []*Profile {
	var out []*Profile
	for _, s := range specs {
		if s.browser == Appletviewer {
			continue
		}
		out = append(out, s.build())
	}
	return out
}

// AppletviewerProfile returns the JDK appletviewer control environment of
// Figure 4(b).
func AppletviewerProfile() *Profile {
	for _, s := range specs {
		if s.browser == Appletviewer {
			return s.build()
		}
	}
	panic("browser: appletviewer spec missing")
}

// Lookup returns the profile for a browser×OS, or nil when that combo is
// not part of Table 2 (e.g. IE on Ubuntu).
func Lookup(b Name, os OS) *Profile {
	if b == Appletviewer {
		p := AppletviewerProfile()
		if p.OS == os {
			return p
		}
		return nil
	}
	for _, s := range specs {
		if s.browser == b && s.os == os {
			return s.build()
		}
	}
	return nil
}

// ModernProfile returns a forward-looking environment the paper's
// conclusions point to: an evergreen browser with no plugins, WebSocket
// and fetch()/XHR only, and performance.now()-class timing. It is not
// part of the Table 2 matrix (Profiles) — it exists to contrast the 2013
// landscape with where the recommendations led.
func ModernProfile(os OS) *Profile {
	p := &Profile{
		Browser:   Chrome,
		OS:        os,
		Version:   "evergreen",
		WebSocket: true,
		costs:     make(map[API]apiCosts),
		// No plugins: Flash/Java rows intentionally absent.
		flashGetPolicy:  PolicyReuse,
		flashPostPolicy: PolicyReuse,
	}
	sendX, recvX := split(1.2, 0.30) // fetch/XHR got an order of magnitude cheaper
	p.costs[APIXHR] = apiCosts{send: sendX, recv: recvX, firstUse: one(0.8, 0.3), postExtra: one(0.2, 0.2)}
	sendD, recvD := split(0.9, 0.20)
	p.costs[APIDOM] = apiCosts{send: sendD, recv: recvD, firstUse: one(0.5, 0.2)}
	sendW, recvW := split(0.15, 0.25)
	p.costs[APIWebSocket] = apiCosts{send: sendW, recv: recvW, firstUse: one(0.1, 0.2)}
	return p
}

// WithOracleJRE returns a copy of the profile with the Java plugin
// replaced by the stock Oracle JRE. The paper's Section 5 does exactly
// this for Safari (deleting JavaPlugin.jar/npJavaPlugin.dll) to remove its
// outsized Java overheads; Table 4's Safari row was measured this way.
func (p *Profile) WithOracleJRE() *Profile {
	q := *p
	q.costs = make(map[API]apiCosts, len(p.costs))
	for k, v := range p.costs {
		q.costs[k] = v
	}
	fixed := profileSpec{
		javaGetD1: 1.88, javaGetD2: 1.52, javaPostD1: 1.62, javaPostD2: 1.42,
		javaSockD1: 0.07, javaSockD2: 0.13, javaSigma: 0.25,
	}
	sendG, recvG := split(fixed.javaGetD1, fixed.javaSigma)
	q.costs[APIJavaHTTP] = apiCosts{
		send:            sendG,
		recv:            recvG,
		repeatExtra:     one(fixed.javaGetD2-fixed.javaGetD1, 0.1),
		postExtra:       one(fixed.javaPostD1-fixed.javaGetD1, 0.1),
		postRepeatExtra: one(fixed.javaPostD2-fixed.javaPostD1, 0.1),
	}
	sendS, recvS := split(fixed.javaSockD1, fixed.javaSigma)
	q.costs[APIJavaSocket] = apiCosts{
		send:        sendS,
		recv:        recvS,
		repeatExtra: one(fixed.javaSockD2-fixed.javaSockD1, 0.1),
	}
	q.costs[APIJavaUDP] = q.costs[APIJavaSocket]
	return &q
}
