// Package capture is the testbed's tcpdump/WinDump equivalent: it taps a
// simulated NIC, records every frame with its virtual timestamp, computes
// the ground-truth network RTT (tNr − tNs of Eq. 1) by pairing request and
// response packets, and reads/writes the libpcap file format so captures
// can be inspected with real tools.
package capture

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/browsermetric/browsermetric/internal/netsim"
)

// Record is one captured frame. Data references the frame exactly as it
// crossed the wire and must be treated as read-only.
type Record struct {
	Time time.Duration
	Dir  netsim.Direction
	Data []byte
}

// Filter decides whether a frame is recorded. A nil filter records all.
type Filter func(p *netsim.Packet) bool

// PortFilter keeps TCP/UDP packets with src or dst equal to port, mirroring
// "tcpdump port N".
func PortFilter(port uint16) Filter {
	return func(p *netsim.Packet) bool {
		switch {
		case p.TCP != nil:
			return p.TCP.SrcPort == port || p.TCP.DstPort == port
		case p.UDP != nil:
			return p.UDP.SrcPort == port || p.UDP.DstPort == port
		default:
			return false
		}
	}
}

// Capture accumulates frames from a NIC tap.
type Capture struct {
	filter  Filter
	records []Record
	// Dropped counts frames that failed to decode (never expected on the
	// simulated wire, but kept for parity with real capture stats).
	Dropped int
	// pkt is scratch decode storage for the tap filter; the *Packet a
	// Filter sees is only valid for the duration of the call.
	pkt netsim.Packet
	// eachPkt is the matching paths' decode scratch (each); separate from
	// pkt so matching can run while the tap stays installed.
	eachPkt netsim.Packet
	// pairScratch backs MatchRTT's result between calls; pending tracks
	// open requests during one match pass.
	pairScratch []WirePair
	pending     []pendingReq
}

// pendingReq is an open request awaiting its response in MatchRTT. The
// handful of concurrently open exchanges makes a linear scan cheaper than
// a map, and the slice recycles across calls.
type pendingReq struct {
	local, remote uint16
	idx           int
}

// Attach installs the capture on nic and returns it.
func Attach(nic *netsim.NIC, filter Filter) *Capture {
	c := &Capture{filter: filter}
	nic.AddTap(func(frame []byte, at time.Duration, dir netsim.Direction) {
		if c.filter != nil {
			if err := c.pkt.Parse(frame, at); err != nil {
				c.Dropped++
				return
			}
			if !c.filter(&c.pkt) {
				return
			}
		}
		// Frames are immutable once handed to NIC.Send (each transmit
		// builds a fresh buffer and nothing writes to it afterwards), so
		// the record can retain the frame without a defensive copy.
		c.records = append(c.records, Record{Time: at, Dir: dir, Data: frame})
	})
	return c
}

// FromRecords wraps an existing record list (e.g. read back from a pcap
// file) so the matching and export methods can run over it.
func FromRecords(recs []Record) *Capture { return &Capture{records: recs} }

// Records returns the captured frames in order.
func (c *Capture) Records() []Record { return c.records }

// Reset clears the capture buffer (like restarting tcpdump between runs).
func (c *Capture) Reset() { c.records = c.records[:0] }

// Packets decodes all records, skipping undecodable ones.
func (c *Capture) Packets() []*netsim.Packet {
	out := make([]*netsim.Packet, 0, len(c.records))
	for _, r := range c.records {
		p, err := netsim.Decode(r.Data, r.Time)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

// each decodes records into one reused Packet, calling fn per decodable
// frame. The matching paths use it to avoid materializing []*Packet.
func (c *Capture) each(fn func(p *netsim.Packet)) {
	pkt := &c.eachPkt
	for _, r := range c.records {
		if pkt.Parse(r.Data, r.Time) != nil {
			continue
		}
		fn(pkt)
	}
}

// WirePair is one request/response exchange observed on the wire.
type WirePair struct {
	SendAt time.Duration // tNs: first byte of the request left the host
	RecvAt time.Duration // tNr: the response arrived
	// Handshake reports whether a TCP SYN to the same server port was
	// observed between the previous pair and this one, i.e. the exchange
	// was preceded by a fresh connection establishment.
	Handshake bool
}

// RTT returns the network round-trip time of the exchange.
func (w WirePair) RTT() time.Duration { return w.RecvAt - w.SendAt }

// MatchRTT pairs outbound payload-carrying packets to serverPort with the
// next inbound payload packet from serverPort on the same connection,
// yielding the ground-truth RTT samples in capture order. This mirrors how
// the paper derives tN from WinDump/tcpdump traces: handshake and pure-ACK
// packets carry no payload and are excluded from pairing (but SYNs are
// noted so handshake-inflated browser measurements can be explained).
//
// The returned slice is scratch storage owned by the Capture: it is valid
// until the next MatchRTT call on the same Capture. Callers that need the
// pairs past that point must copy them out.
func (c *Capture) MatchRTT(serverPort uint16) []WirePair {
	out := c.pairScratch[:0]
	pending := c.pending[:0]
	sawSyn := false
	pkt := &c.eachPkt
	for _, r := range c.records {
		if pkt.Parse(r.Data, r.Time) != nil {
			continue
		}
		p := pkt
		var (
			srcPort, dstPort uint16
			payload          int
			syn              bool
		)
		switch {
		case p.TCP != nil:
			srcPort, dstPort, payload = p.TCP.SrcPort, p.TCP.DstPort, len(p.Payload)
			syn = p.TCP.Flags&netsim.FlagSYN != 0 && p.TCP.Flags&netsim.FlagACK == 0
		case p.UDP != nil:
			srcPort, dstPort, payload = p.UDP.SrcPort, p.UDP.DstPort, len(p.Payload)
		default:
			continue
		}
		if syn && dstPort == serverPort {
			sawSyn = true
			continue
		}
		if payload == 0 {
			continue
		}
		switch {
		case dstPort == serverPort: // outbound request
			open := false
			for _, pr := range pending {
				if pr.local == srcPort && pr.remote == dstPort {
					open = true // multi-packet request: keep the first packet's time
					break
				}
			}
			if open {
				continue
			}
			out = append(out, WirePair{SendAt: p.Time, Handshake: sawSyn})
			sawSyn = false
			pending = append(pending, pendingReq{local: srcPort, remote: dstPort, idx: len(out) - 1})
		case srcPort == serverPort: // inbound response
			for i, pr := range pending {
				if pr.local == dstPort && pr.remote == srcPort {
					out[pr.idx].RecvAt = p.Time
					pending = append(pending[:i], pending[i+1:]...)
					break
				}
			}
		}
	}
	c.pending = pending[:0]
	// Drop unanswered requests.
	complete := out[:0]
	for _, w := range out {
		if w.RecvAt != 0 {
			complete = append(complete, w)
		}
	}
	c.pairScratch = out[:0]
	return complete
}

// Transfer summarizes a bulk exchange with a server port: the request
// departure and the span and volume of the response (or echo) stream.
// It is the wire-level ground truth for throughput appraisal.
type Transfer struct {
	SendAt  time.Duration // first request byte left the host
	FirstAt time.Duration // first response byte arrived
	LastAt  time.Duration // last response byte arrived
	Bytes   int           // total response payload bytes
}

// Duration is the wire-level transfer time (request out to last byte in).
func (t Transfer) Duration() time.Duration { return t.LastAt - t.SendAt }

// BitsPerSecond is the wire-level round-trip throughput.
func (t Transfer) BitsPerSecond() float64 {
	d := t.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(t.Bytes) * 8 / d
}

// MatchTransfer aggregates all payload traffic with serverPort into one
// Transfer: the first outbound payload packet starts the clock, and every
// inbound payload packet extends it. Use Reset between measurements.
func (c *Capture) MatchTransfer(serverPort uint16) (Transfer, bool) {
	var tr Transfer
	started := false
	c.each(func(p *netsim.Packet) {
		var srcPort, dstPort uint16
		switch {
		case p.TCP != nil:
			srcPort, dstPort = p.TCP.SrcPort, p.TCP.DstPort
		case p.UDP != nil:
			srcPort, dstPort = p.UDP.SrcPort, p.UDP.DstPort
		default:
			return
		}
		if len(p.Payload) == 0 {
			return
		}
		switch {
		case dstPort == serverPort:
			if !started {
				tr.SendAt = p.Time
				started = true
			}
		case srcPort == serverPort && started:
			if tr.Bytes == 0 {
				tr.FirstAt = p.Time
			}
			tr.LastAt = p.Time
			tr.Bytes += len(p.Payload)
		}
	})
	return tr, started && tr.Bytes > 0
}

// CountUnanswered returns, for UDP probe traffic to serverPort, how many
// outbound datagrams never saw a subsequent inbound datagram before the
// next probe went out — the wire-level loss count a capture-side observer
// would report.
func (c *Capture) CountUnanswered(serverPort uint16) (sent, lost int) {
	awaiting := false
	c.each(func(p *netsim.Packet) {
		if p.UDP == nil || len(p.Payload) == 0 {
			return
		}
		switch {
		case p.UDP.DstPort == serverPort:
			if awaiting {
				lost++
			}
			sent++
			awaiting = true
		case p.UDP.SrcPort == serverPort:
			awaiting = false
		}
	})
	if awaiting {
		lost++
	}
	return sent, lost
}

// --- libpcap file format ---

const (
	pcapMagicNano    = 0xa1b23c4d // nanosecond-resolution pcap
	pcapMagicMicro   = 0xa1b2c3d4
	linkTypeEthernet = 1
)

// ErrBadPcap reports an unreadable pcap stream.
var ErrBadPcap = errors.New("capture: bad pcap data")

// WriteTo emits the capture as a nanosecond-resolution pcap file.
func (c *Capture) WriteTo(w io.Writer) (int64, error) {
	var total int64
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagicNano)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version 2.4
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], 65535) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:24], linkTypeEthernet)
	n, err := w.Write(hdr)
	total += int64(n)
	if err != nil {
		return total, err
	}
	rec := make([]byte, 16)
	for _, r := range c.records {
		sec := uint32(r.Time / time.Second)
		nsec := uint32(r.Time % time.Second)
		binary.LittleEndian.PutUint32(rec[0:4], sec)
		binary.LittleEndian.PutUint32(rec[4:8], nsec)
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(r.Data)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(r.Data)))
		if n, err = w.Write(rec); err != nil {
			return total + int64(n), err
		}
		total += int64(n)
		if n, err = w.Write(r.Data); err != nil {
			return total + int64(n), err
		}
		total += int64(n)
	}
	return total, nil
}

// ReadPcap parses a pcap stream written by WriteTo (or by libpcap with
// Ethernet link type, in either timestamp resolution).
func ReadPcap(r io.Reader) ([]Record, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: global header: %v", ErrBadPcap, err)
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	var tsUnit time.Duration
	switch magic {
	case pcapMagicNano:
		tsUnit = time.Nanosecond
	case pcapMagicMicro:
		tsUnit = time.Microsecond
	default:
		return nil, fmt.Errorf("%w: magic %#08x", ErrBadPcap, magic)
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != linkTypeEthernet {
		return nil, fmt.Errorf("%w: unsupported link type %d", ErrBadPcap, lt)
	}
	var out []Record
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("%w: record header: %v", ErrBadPcap, err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:4])
		sub := binary.LittleEndian.Uint32(rec[4:8])
		caplen := binary.LittleEndian.Uint32(rec[8:12])
		if caplen > 1<<20 {
			return nil, fmt.Errorf("%w: caplen %d", ErrBadPcap, caplen)
		}
		data := make([]byte, caplen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("%w: truncated packet body: %v", ErrBadPcap, err)
		}
		ts := time.Duration(sec)*time.Second + time.Duration(sub)*tsUnit
		out = append(out, Record{Time: ts, Data: data})
	}
}
