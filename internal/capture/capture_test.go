package capture

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/netsim"
)

var (
	macA = netsim.MAC{2, 0, 0, 0, 0, 1}
	macB = netsim.MAC{2, 0, 0, 0, 0, 2}
	ipA  = netip.MustParseAddr("10.0.0.1")
	ipB  = netip.MustParseAddr("10.0.0.2")
)

func tcpFrame(srcPort, dstPort uint16, flags byte, payload []byte) []byte {
	src, dst, sm, dm := ipA, ipB, macA, macB
	if srcPort == 80 { // crude direction flip for tests
		src, dst, sm, dm = ipB, ipA, macB, macA
	}
	return netsim.BuildTCP(sm, dm, src, dst, 1, &netsim.TCP{SrcPort: srcPort, DstPort: dstPort, Flags: flags}, payload)
}

func newNIC(sim *eventsim.Simulator) *netsim.NIC {
	return netsim.NewNIC(sim, "eth0", macA, ipA)
}

func TestAttachRecordsBothDirections(t *testing.T) {
	sim := eventsim.New(1)
	nic := newNIC(sim)
	other := netsim.NewNIC(sim, "eth1", macB, ipB)
	link := netsim.NewLink(sim, 0, time.Millisecond)
	nic.Connect(link)
	other.Connect(link)
	other.SetHandler(func([]byte) {
		other.Send(tcpFrame(80, 49152, netsim.FlagACK|netsim.FlagPSH, []byte("resp")))
	})

	cap := Attach(nic, nil)
	nic.Send(tcpFrame(49152, 80, netsim.FlagACK|netsim.FlagPSH, []byte("req")))
	sim.Run()

	recs := cap.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Dir != netsim.DirOut || recs[1].Dir != netsim.DirIn {
		t.Fatalf("directions = %v %v", recs[0].Dir, recs[1].Dir)
	}
	if recs[0].Time != 0 || recs[1].Time != 2*time.Millisecond {
		t.Fatalf("times = %v %v", recs[0].Time, recs[1].Time)
	}
}

func TestFilterByPort(t *testing.T) {
	sim := eventsim.New(2)
	nic := newNIC(sim)
	other := netsim.NewNIC(sim, "eth1", macB, ipB)
	link := netsim.NewLink(sim, 0, 0)
	nic.Connect(link)
	other.Connect(link)

	cap := Attach(nic, PortFilter(80))
	nic.Send(tcpFrame(49152, 80, netsim.FlagPSH|netsim.FlagACK, []byte("keep")))
	nic.Send(tcpFrame(49152, 443, netsim.FlagPSH|netsim.FlagACK, []byte("drop")))
	sim.Run()

	if len(cap.Records()) != 1 {
		t.Fatalf("records = %d, want 1 (port filter)", len(cap.Records()))
	}
}

func TestReset(t *testing.T) {
	sim := eventsim.New(3)
	nic := newNIC(sim)
	other := netsim.NewNIC(sim, "eth1", macB, ipB)
	link := netsim.NewLink(sim, 0, 0)
	nic.Connect(link)
	other.Connect(link)
	cap := Attach(nic, nil)
	nic.Send(tcpFrame(1, 2, netsim.FlagACK, nil))
	sim.Run()
	cap.Reset()
	if len(cap.Records()) != 0 {
		t.Fatal("Reset did not clear records")
	}
}

// directCapture builds a Capture and stuffs records without a network.
func directCapture(recs ...Record) *Capture {
	return &Capture{records: recs}
}

func TestMatchRTTSimpleExchange(t *testing.T) {
	cap := directCapture(
		Record{Time: 10 * time.Millisecond, Data: tcpFrame(49152, 80, netsim.FlagPSH|netsim.FlagACK, []byte("GET"))},
		Record{Time: 60 * time.Millisecond, Data: tcpFrame(80, 49152, netsim.FlagPSH|netsim.FlagACK, []byte("200"))},
	)
	pairs := cap.MatchRTT(80)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	if pairs[0].RTT() != 50*time.Millisecond {
		t.Fatalf("RTT = %v, want 50ms", pairs[0].RTT())
	}
	if pairs[0].Handshake {
		t.Fatal("no SYN was captured, Handshake should be false")
	}
}

func TestMatchRTTIgnoresAcksAndHandshake(t *testing.T) {
	cap := directCapture(
		Record{Time: 0, Data: tcpFrame(49152, 80, netsim.FlagSYN, nil)},
		Record{Time: 25 * time.Millisecond, Data: tcpFrame(80, 49152, netsim.FlagSYN|netsim.FlagACK, nil)},
		Record{Time: 50 * time.Millisecond, Data: tcpFrame(49152, 80, netsim.FlagACK, nil)},
		Record{Time: 51 * time.Millisecond, Data: tcpFrame(49152, 80, netsim.FlagPSH|netsim.FlagACK, []byte("req"))},
		Record{Time: 52 * time.Millisecond, Data: tcpFrame(80, 49152, netsim.FlagACK, nil)},
		Record{Time: 101 * time.Millisecond, Data: tcpFrame(80, 49152, netsim.FlagPSH|netsim.FlagACK, []byte("resp"))},
	)
	pairs := cap.MatchRTT(80)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	if pairs[0].RTT() != 50*time.Millisecond {
		t.Fatalf("RTT = %v, want 50ms (payload packets only)", pairs[0].RTT())
	}
	if !pairs[0].Handshake {
		t.Fatal("Handshake flag should be set: a SYN preceded the exchange")
	}
}

func TestMatchRTTTwoSequentialExchanges(t *testing.T) {
	cap := directCapture(
		Record{Time: 0, Data: tcpFrame(49152, 80, netsim.FlagSYN, nil)},
		Record{Time: 10 * time.Millisecond, Data: tcpFrame(49152, 80, netsim.FlagPSH|netsim.FlagACK, []byte("r1"))},
		Record{Time: 60 * time.Millisecond, Data: tcpFrame(80, 49152, netsim.FlagPSH|netsim.FlagACK, []byte("a1"))},
		Record{Time: 70 * time.Millisecond, Data: tcpFrame(49152, 80, netsim.FlagPSH|netsim.FlagACK, []byte("r2"))},
		Record{Time: 121 * time.Millisecond, Data: tcpFrame(80, 49152, netsim.FlagPSH|netsim.FlagACK, []byte("a2"))},
	)
	pairs := cap.MatchRTT(80)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
	if pairs[0].RTT() != 50*time.Millisecond || pairs[1].RTT() != 51*time.Millisecond {
		t.Fatalf("RTTs = %v %v", pairs[0].RTT(), pairs[1].RTT())
	}
	if !pairs[0].Handshake || pairs[1].Handshake {
		t.Fatalf("handshake flags = %v %v, want true false", pairs[0].Handshake, pairs[1].Handshake)
	}
}

func TestMatchRTTUnansweredRequestDropped(t *testing.T) {
	cap := directCapture(
		Record{Time: 0, Data: tcpFrame(49152, 80, netsim.FlagPSH|netsim.FlagACK, []byte("lost"))},
	)
	if pairs := cap.MatchRTT(80); len(pairs) != 0 {
		t.Fatalf("pairs = %d, want 0", len(pairs))
	}
}

func TestMatchRTTMultiPacketRequestUsesFirst(t *testing.T) {
	cap := directCapture(
		Record{Time: 5 * time.Millisecond, Data: tcpFrame(49152, 80, netsim.FlagACK, []byte("part1"))},
		Record{Time: 6 * time.Millisecond, Data: tcpFrame(49152, 80, netsim.FlagPSH|netsim.FlagACK, []byte("part2"))},
		Record{Time: 55 * time.Millisecond, Data: tcpFrame(80, 49152, netsim.FlagPSH|netsim.FlagACK, []byte("resp"))},
	)
	pairs := cap.MatchRTT(80)
	if len(pairs) != 1 || pairs[0].SendAt != 5*time.Millisecond {
		t.Fatalf("pairs = %+v, want one pair anchored at first request packet", pairs)
	}
}

func TestMatchRTTUDP(t *testing.T) {
	req := netsim.BuildUDP(macA, macB, ipA, ipB, 1, &netsim.UDP{SrcPort: 5000, DstPort: 7}, []byte("ping"))
	resp := netsim.BuildUDP(macB, macA, ipB, ipA, 2, &netsim.UDP{SrcPort: 7, DstPort: 5000}, []byte("pong"))
	cap := directCapture(
		Record{Time: time.Millisecond, Data: req},
		Record{Time: 51 * time.Millisecond, Data: resp},
	)
	pairs := cap.MatchRTT(7)
	if len(pairs) != 1 || pairs[0].RTT() != 50*time.Millisecond {
		t.Fatalf("pairs = %+v", pairs)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	cap := directCapture(
		Record{Time: 1500 * time.Millisecond, Data: tcpFrame(49152, 80, netsim.FlagSYN, nil)},
		Record{Time: 1550*time.Millisecond + 123*time.Nanosecond, Data: tcpFrame(80, 49152, netsim.FlagSYN|netsim.FlagACK, nil)},
	)
	var buf bytes.Buffer
	if _, err := cap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	for i := range recs {
		if recs[i].Time != cap.records[i].Time {
			t.Fatalf("record %d time = %v, want %v", i, recs[i].Time, cap.records[i].Time)
		}
		if !bytes.Equal(recs[i].Data, cap.records[i].Data) {
			t.Fatalf("record %d data mismatch", i)
		}
	}
	// Decoded packets must survive the round trip too.
	p, err := netsim.Decode(recs[0].Data, recs[0].Time)
	if err != nil || p.TCP == nil || p.TCP.Flags != netsim.FlagSYN {
		t.Fatalf("decoded packet = %+v, err %v", p, err)
	}
}

func TestPcapHeaderFields(t *testing.T) {
	cap := directCapture()
	var buf bytes.Buffer
	cap.WriteTo(&buf)
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("empty capture file length = %d, want 24", len(b))
	}
	if b[0] != 0x4d || b[1] != 0x3c || b[2] != 0xb2 || b[3] != 0xa1 {
		t.Fatalf("magic bytes = % x", b[:4])
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ReadPcap(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty stream")
	}
}

func TestReadPcapTruncatedBody(t *testing.T) {
	cap := directCapture(Record{Time: 0, Data: tcpFrame(1, 2, netsim.FlagACK, nil)})
	var buf bytes.Buffer
	cap.WriteTo(&buf)
	b := buf.Bytes()
	if _, err := ReadPcap(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Fatal("expected error for truncated packet body")
	}
}

// Property: pcap write/read round-trips arbitrary record sets.
func TestQuickPcapRoundTrip(t *testing.T) {
	f := func(times []uint32, payload []byte) bool {
		c := &Capture{}
		for _, ti := range times {
			c.records = append(c.records, Record{
				Time: time.Duration(ti) * time.Microsecond,
				Data: tcpFrame(49152, 80, netsim.FlagACK, payload),
			})
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			return false
		}
		recs, err := ReadPcap(&buf)
		if err != nil || len(recs) != len(c.records) {
			return false
		}
		for i := range recs {
			if recs[i].Time != c.records[i].Time || !bytes.Equal(recs[i].Data, c.records[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatchRTT never produces negative RTTs and never more pairs
// than request packets.
func TestQuickMatchRTTSanity(t *testing.T) {
	f := func(gaps []uint16) bool {
		c := &Capture{}
		var now time.Duration
		requests := 0
		for i, g := range gaps {
			now += time.Duration(g) * time.Microsecond
			if i%2 == 0 {
				c.records = append(c.records, Record{Time: now, Data: tcpFrame(49152, 80, netsim.FlagPSH|netsim.FlagACK, []byte("q"))})
				requests++
			} else {
				c.records = append(c.records, Record{Time: now, Data: tcpFrame(80, 49152, netsim.FlagPSH|netsim.FlagACK, []byte("a"))})
			}
		}
		pairs := c.MatchRTT(80)
		if len(pairs) > requests {
			return false
		}
		for _, p := range pairs {
			if p.RTT() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
