package capture

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/browsermetric/browsermetric/internal/netsim"
)

// ParseFilter compiles a tcpdump-like filter expression into a Filter.
// The supported grammar is the subset the paper's methodology needs:
//
//	expr   := term (("and"|"or") term)*
//	term   := "not" term | "(" expr ")" | primitive
//	prim   := "tcp" | "udp" | "ip"
//	        | ["src"|"dst"] "port" NUM
//	        | ["src"|"dst"] "host" IPv4
//
// "and" binds tighter than "or", as in libpcap. Examples:
//
//	tcp port 80
//	udp and dst port 9001
//	not (port 80 or port 8080)
//	src host 192.168.1.10 and tcp
func ParseFilter(expr string) (Filter, error) {
	toks, err := tokenize(expr)
	if err != nil {
		return nil, err
	}
	p := &filterParser{toks: toks}
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("capture: unexpected token %q", p.toks[p.pos])
	}
	return f, nil
}

func tokenize(expr string) ([]string, error) {
	expr = strings.ReplaceAll(expr, "(", " ( ")
	expr = strings.ReplaceAll(expr, ")", " ) ")
	fields := strings.Fields(strings.ToLower(expr))
	if len(fields) == 0 {
		return nil, fmt.Errorf("capture: empty filter expression")
	}
	return fields, nil
}

type filterParser struct {
	toks []string
	pos  int
}

func (p *filterParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *filterParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *filterParser) parseOr() (Filter, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "or" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(pk *netsim.Packet) bool { return l(pk) || r(pk) }
	}
	return left, nil
}

func (p *filterParser) parseAnd() (Filter, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek() == "and" {
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l, r := left, right
		left = func(pk *netsim.Packet) bool { return l(pk) && r(pk) }
	}
	return left, nil
}

func (p *filterParser) parseTerm() (Filter, error) {
	switch tok := p.next(); tok {
	case "":
		return nil, fmt.Errorf("capture: unexpected end of filter")
	case "not":
		inner, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return func(pk *netsim.Packet) bool { return !inner(pk) }, nil
	case "(":
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("capture: missing closing parenthesis")
		}
		return inner, nil
	case "tcp":
		return func(pk *netsim.Packet) bool { return pk.TCP != nil }, nil
	case "udp":
		return func(pk *netsim.Packet) bool { return pk.UDP != nil }, nil
	case "ip":
		return func(pk *netsim.Packet) bool { return pk.IP != nil }, nil
	case "port":
		return p.parsePort("")
	case "host":
		return p.parseHost("")
	case "src", "dst":
		switch kw := p.next(); kw {
		case "port":
			return p.parsePort(tok)
		case "host":
			return p.parseHost(tok)
		default:
			return nil, fmt.Errorf("capture: expected 'port' or 'host' after %q, got %q", tok, kw)
		}
	default:
		return nil, fmt.Errorf("capture: unknown primitive %q", tok)
	}
}

func (p *filterParser) parsePort(dir string) (Filter, error) {
	tok := p.next()
	n, err := strconv.ParseUint(tok, 10, 16)
	if err != nil {
		return nil, fmt.Errorf("capture: bad port %q", tok)
	}
	port := uint16(n)
	return func(pk *netsim.Packet) bool {
		var src, dst uint16
		switch {
		case pk.TCP != nil:
			src, dst = pk.TCP.SrcPort, pk.TCP.DstPort
		case pk.UDP != nil:
			src, dst = pk.UDP.SrcPort, pk.UDP.DstPort
		default:
			return false
		}
		switch dir {
		case "src":
			return src == port
		case "dst":
			return dst == port
		default:
			return src == port || dst == port
		}
	}, nil
}

func (p *filterParser) parseHost(dir string) (Filter, error) {
	tok := p.next()
	if tok == "" {
		return nil, fmt.Errorf("capture: missing host address")
	}
	// Lazy validation: compare the textual form so the parser stays free
	// of net dependencies; netip formats canonically.
	return func(pk *netsim.Packet) bool {
		if pk.IP == nil {
			return false
		}
		src, dst := pk.IP.Src.String(), pk.IP.Dst.String()
		switch dir {
		case "src":
			return src == tok
		case "dst":
			return dst == tok
		default:
			return src == tok || dst == tok
		}
	}, nil
}
