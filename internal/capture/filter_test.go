package capture

import (
	"testing"
	"testing/quick"

	"github.com/browsermetric/browsermetric/internal/netsim"
)

func mustFilter(t *testing.T, expr string) Filter {
	t.Helper()
	f, err := ParseFilter(expr)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", expr, err)
	}
	return f
}

func tcpPkt(t *testing.T, src, dst uint16) *netsim.Packet {
	t.Helper()
	frame := tcpFrame(src, dst, netsim.FlagACK, []byte("x"))
	p, err := netsim.Decode(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func udpPkt(t *testing.T, src, dst uint16) *netsim.Packet {
	t.Helper()
	frame := netsim.BuildUDP(macA, macB, ipA, ipB, 1, &netsim.UDP{SrcPort: src, DstPort: dst}, []byte("y"))
	p, err := netsim.Decode(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFilterProto(t *testing.T) {
	tcp := mustFilter(t, "tcp")
	udp := mustFilter(t, "udp")
	ip := mustFilter(t, "ip")
	pt := tcpPkt(t, 1, 2)
	pu := udpPkt(t, 3, 4)
	if !tcp(pt) || tcp(pu) {
		t.Fatal("tcp primitive wrong")
	}
	if !udp(pu) || udp(pt) {
		t.Fatal("udp primitive wrong")
	}
	if !ip(pt) || !ip(pu) {
		t.Fatal("ip primitive wrong")
	}
}

func TestFilterPort(t *testing.T) {
	f := mustFilter(t, "port 80")
	if !f(tcpPkt(t, 49152, 80)) || !f(tcpPkt(t, 80, 49152)) {
		t.Fatal("port should match either direction")
	}
	if f(tcpPkt(t, 1, 2)) {
		t.Fatal("port matched wrong packet")
	}
	src := mustFilter(t, "src port 80")
	if src(tcpPkt(t, 49152, 80)) || !src(tcpPkt(t, 80, 49152)) {
		t.Fatal("src port direction wrong")
	}
	dst := mustFilter(t, "dst port 80")
	if !dst(tcpPkt(t, 49152, 80)) || dst(tcpPkt(t, 80, 49152)) {
		t.Fatal("dst port direction wrong")
	}
}

func TestFilterPortAppliesToUDP(t *testing.T) {
	f := mustFilter(t, "port 9001")
	if !f(udpPkt(t, 40000, 9001)) {
		t.Fatal("udp port match failed")
	}
}

func TestFilterHost(t *testing.T) {
	f := mustFilter(t, "host 10.0.0.1")
	if !f(tcpPkt(t, 1, 2)) { // ipA = 10.0.0.1 in this test file
		t.Fatal("host match failed")
	}
	if mustFilter(t, "host 9.9.9.9")(tcpPkt(t, 1, 2)) {
		t.Fatal("host matched wrong address")
	}
	if !mustFilter(t, "src host 10.0.0.1")(tcpPkt(t, 1, 2)) {
		t.Fatal("src host failed")
	}
	if mustFilter(t, "dst host 10.0.0.1")(tcpPkt(t, 1, 2)) {
		t.Fatal("dst host matched the source")
	}
}

func TestFilterBoolean(t *testing.T) {
	f := mustFilter(t, "tcp and port 80")
	if !f(tcpPkt(t, 5, 80)) || f(udpPkt(t, 5, 80)) {
		t.Fatal("and broken")
	}
	g := mustFilter(t, "port 80 or port 8080")
	if !g(tcpPkt(t, 1, 8080)) || g(tcpPkt(t, 1, 443)) {
		t.Fatal("or broken")
	}
	n := mustFilter(t, "not port 80")
	if n(tcpPkt(t, 1, 80)) || !n(tcpPkt(t, 1, 443)) {
		t.Fatal("not broken")
	}
}

func TestFilterPrecedenceAndParens(t *testing.T) {
	// "a or b and c" parses as "a or (b and c)" per libpcap.
	f := mustFilter(t, "port 53 or udp and port 9001")
	if !f(tcpPkt(t, 1, 53)) {
		t.Fatal("left or-arm failed")
	}
	if f(tcpPkt(t, 1, 9001)) {
		t.Fatal("tcp 9001 should not match (udp and port 9001)")
	}
	if !f(udpPkt(t, 1, 9001)) {
		t.Fatal("udp 9001 should match")
	}
	g := mustFilter(t, "(port 53 or udp) and port 9001")
	if g(tcpPkt(t, 1, 53)) {
		t.Fatal("parenthesized group ignored")
	}
}

func TestFilterErrors(t *testing.T) {
	for _, expr := range []string{
		"", "bogus", "port", "port abc", "port 99999",
		"src", "src bogus 1", "(tcp", "tcp )", "not", "tcp and",
	} {
		if _, err := ParseFilter(expr); err == nil {
			t.Errorf("ParseFilter(%q) succeeded, want error", expr)
		}
	}
}

func TestFilterCaseInsensitive(t *testing.T) {
	f := mustFilter(t, "TCP AND Port 80")
	if !f(tcpPkt(t, 1, 80)) {
		t.Fatal("case-insensitive parse failed")
	}
}

func TestFilterWithCapture(t *testing.T) {
	cap := directCapture(
		Record{Time: 1, Data: tcpFrame(49152, 80, netsim.FlagPSH|netsim.FlagACK, []byte("a"))},
		Record{Time: 2, Data: tcpFrame(49152, 443, netsim.FlagPSH|netsim.FlagACK, []byte("b"))},
	)
	// Post-hoc filtering through FromRecords + manual evaluation.
	f := mustFilter(t, "dst port 80")
	kept := 0
	for _, p := range cap.Packets() {
		if f(p) {
			kept++
		}
	}
	if kept != 1 {
		t.Fatalf("kept = %d, want 1", kept)
	}
}

// Property: "not not X" is equivalent to X for arbitrary port pairs.
func TestQuickFilterDoubleNegation(t *testing.T) {
	f := mustFilter(t, "port 80")
	nn := mustFilter(t, "not not port 80")
	fn := func(src, dst uint16) bool {
		p := tcpPkt(t, src, dst)
		return f(p) == nn(p)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — not (A or B) == (not A) and (not B).
func TestQuickFilterDeMorgan(t *testing.T) {
	lhs := mustFilter(t, "not (tcp or port 80)")
	rhs := mustFilter(t, "not tcp and not port 80")
	fn := func(src, dst uint16, useUDP bool) bool {
		var p *netsim.Packet
		if useUDP {
			p = udpPkt(t, src, dst)
		} else {
			p = tcpPkt(t, src, dst)
		}
		return lhs(p) == rhs(p)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
