package capture

import (
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/netsim"
)

func udpFrame(srcPort, dstPort uint16, payload []byte) []byte {
	src, dst, sm, dm := ipA, ipB, macA, macB
	if srcPort == 9001 { // server -> client direction in these tests
		src, dst, sm, dm = ipB, ipA, macB, macA
	}
	return netsim.BuildUDP(sm, dm, src, dst, 1, &netsim.UDP{SrcPort: srcPort, DstPort: dstPort}, payload)
}

func TestMatchTransferAggregates(t *testing.T) {
	big := make([]byte, 1000)
	cap := FromRecords([]Record{
		{Time: 10 * time.Millisecond, Data: tcpFrame(49152, 80, netsim.FlagPSH|netsim.FlagACK, []byte("GET /download"))},
		{Time: 60 * time.Millisecond, Data: tcpFrame(80, 49152, netsim.FlagACK, big)},
		{Time: 61 * time.Millisecond, Data: tcpFrame(80, 49152, netsim.FlagACK, big)},
		{Time: 70 * time.Millisecond, Data: tcpFrame(80, 49152, netsim.FlagPSH|netsim.FlagACK, big[:500])},
	})
	tr, ok := cap.MatchTransfer(80)
	if !ok {
		t.Fatal("no transfer matched")
	}
	if tr.Bytes != 2500 {
		t.Fatalf("bytes = %d, want 2500", tr.Bytes)
	}
	if tr.SendAt != 10*time.Millisecond || tr.FirstAt != 60*time.Millisecond || tr.LastAt != 70*time.Millisecond {
		t.Fatalf("times = %v %v %v", tr.SendAt, tr.FirstAt, tr.LastAt)
	}
	if tr.Duration() != 60*time.Millisecond {
		t.Fatalf("duration = %v", tr.Duration())
	}
	wantBps := float64(2500*8) / 0.060
	if got := tr.BitsPerSecond(); got < wantBps*0.99 || got > wantBps*1.01 {
		t.Fatalf("throughput = %.0f, want ~%.0f", got, wantBps)
	}
}

func TestMatchTransferNoTraffic(t *testing.T) {
	cap := FromRecords(nil)
	if _, ok := cap.MatchTransfer(80); ok {
		t.Fatal("empty capture matched a transfer")
	}
	// Response without a request: not a transfer.
	cap2 := FromRecords([]Record{
		{Time: 1, Data: tcpFrame(80, 49152, netsim.FlagACK, []byte("orphan"))},
	})
	if _, ok := cap2.MatchTransfer(80); ok {
		t.Fatal("orphan response matched")
	}
}

func TestMatchTransferZeroDuration(t *testing.T) {
	tr := Transfer{}
	if tr.BitsPerSecond() != 0 {
		t.Fatal("zero transfer should report 0 bps")
	}
}

func TestCountUnanswered(t *testing.T) {
	cap := FromRecords([]Record{
		{Time: 1, Data: udpFrame(40000, 9001, []byte("p0"))},
		{Time: 2, Data: udpFrame(9001, 40000, []byte("p0"))}, // answered
		{Time: 3, Data: udpFrame(40000, 9001, []byte("p1"))}, // lost (next probe follows)
		{Time: 4, Data: udpFrame(40000, 9001, []byte("p2"))},
		{Time: 5, Data: udpFrame(9001, 40000, []byte("p2"))}, // answered
		{Time: 6, Data: udpFrame(40000, 9001, []byte("p3"))}, // lost (trailing)
	})
	sent, lost := cap.CountUnanswered(9001)
	if sent != 4 || lost != 2 {
		t.Fatalf("sent=%d lost=%d, want 4/2", sent, lost)
	}
}

func TestCountUnansweredIgnoresTCP(t *testing.T) {
	cap := FromRecords([]Record{
		{Time: 1, Data: tcpFrame(49152, 9001, netsim.FlagPSH|netsim.FlagACK, []byte("tcp"))},
	})
	sent, lost := cap.CountUnanswered(9001)
	if sent != 0 || lost != 0 {
		t.Fatalf("TCP counted as UDP probes: %d/%d", sent, lost)
	}
}

func TestPortFilterNonIP(t *testing.T) {
	eth := &netsim.Ethernet{Dst: macB, Src: macA, EtherType: 0x0806}
	p, err := netsim.Decode(eth.Serialize([]byte{0}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if PortFilter(80)(p) {
		t.Fatal("non-IP frame matched a port filter")
	}
	// UDP branch of PortFilter.
	pu, _ := netsim.Decode(udpFrame(40000, 9001, []byte("x")), 0)
	if !PortFilter(9001)(pu) {
		t.Fatal("udp port filter failed")
	}
}
