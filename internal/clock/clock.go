// Package clock models the timing APIs available to browser-based
// measurement code.
//
// The paper's central timing finding (Section 4.2) is that Java's
// Date.getTime() / System.currentTimeMillis() on Windows does not deliver
// the 1 ms resolution measurement tools assume: its *granularity* switches
// between 1 ms and ~15.6 ms (the Windows timer interrupt period), each
// regime lasting several minutes. Timestamps are floor-quantized to the
// current granularity, which is what produces negative delay overheads and
// bimodal overhead CDFs. System.nanoTime(), by contrast, is effectively
// continuous.
//
// This package provides both clock families over an arbitrary time source
// (the discrete-event simulator's virtual clock in the testbed, the real
// monotonic clock in live mode), plus the Figure 5 granularity probe.
package clock

import (
	"time"
)

// Source yields the current time. In simulation it reads the virtual
// clock; in live mode it reads the OS monotonic clock.
type Source func() time.Duration

// Clock is a timing API as seen by measurement code: it returns
// timestamps, possibly coarsened relative to the underlying source.
type Clock interface {
	// Now returns the current timestamp as reported by this API.
	Now() time.Duration
	// Name identifies the API (e.g. "Date.getTime", "System.nanoTime").
	Name() string
}

// Perfect is a clock that reports the source time unmodified, modeling
// System.nanoTime() or performance.now(): nanosecond-class resolution.
type Perfect struct {
	Src   Source
	Label string
}

// Now implements Clock.
func (p *Perfect) Now() time.Duration { return p.Src() }

// Name implements Clock.
func (p *Perfect) Name() string {
	if p.Label == "" {
		return "System.nanoTime"
	}
	return p.Label
}

// Regime is one granularity period in a schedule.
type Regime struct {
	// Granularity is the quantization step while this regime is active.
	Granularity time.Duration
	// Length is how long the regime lasts before the schedule moves on.
	Length time.Duration
}

// Schedule cycles through a list of regimes, mirroring the paper's
// observation that each granularity value "lasts for a period of time
// (several minutes) before changing to other values".
type Schedule struct {
	Regimes []Regime
	cycle   time.Duration
}

// NewSchedule builds a cyclic schedule. It panics on an empty regime list
// or non-positive lengths/granularities, which would make lookup diverge.
func NewSchedule(regimes ...Regime) *Schedule {
	if len(regimes) == 0 {
		panic("clock: empty schedule")
	}
	var cycle time.Duration
	for _, r := range regimes {
		if r.Length <= 0 || r.Granularity <= 0 {
			panic("clock: regime lengths and granularities must be positive")
		}
		cycle += r.Length
	}
	return &Schedule{Regimes: regimes, cycle: cycle}
}

// At returns the granularity in force at time t.
func (s *Schedule) At(t time.Duration) time.Duration {
	if t < 0 {
		t = 0
	}
	t %= s.cycle
	for _, r := range s.Regimes {
		if t < r.Length {
			return r.Granularity
		}
		t -= r.Length
	}
	return s.Regimes[len(s.Regimes)-1].Granularity
}

// WindowsTimerPeriod is the classic Windows timer interrupt period that
// produces the ~15 ms granularity regime (64 Hz -> 15.625 ms).
const WindowsTimerPeriod = 15625 * time.Microsecond

// The canonical schedules are process-wide singletons: they are immutable
// by convention (callers must not modify Regimes), so per-run construction
// would only churn the allocator.
var (
	windowsGetTime = NewSchedule(
		Regime{Granularity: time.Millisecond, Length: 4 * time.Minute},
		Regime{Granularity: WindowsTimerPeriod, Length: 5 * time.Minute},
	)
	linuxGetTime = NewSchedule(Regime{Granularity: time.Millisecond, Length: time.Hour})
)

// WindowsGetTimeSchedule reproduces the paper's observed behaviour of
// Date.getTime() on Windows 7: multi-minute alternation between 1 ms and
// ~15.6 ms granularity. phase offsets where in the cycle time zero falls.
func WindowsGetTimeSchedule() *Schedule { return windowsGetTime }

// LinuxGetTimeSchedule models Date.getTime() on Ubuntu: a steady 1 ms
// granularity (the paper observed the artifact only on Windows).
func LinuxGetTimeSchedule() *Schedule { return linuxGetTime }

// Quantized models Date.getTime()/System.currentTimeMillis(): timestamps
// are floor-quantized to the granularity the schedule prescribes at the
// moment of the call.
type Quantized struct {
	Src      Source
	Schedule *Schedule
	Label    string
}

// Now implements Clock: floor(t/g)*g with g the active granularity.
func (q *Quantized) Now() time.Duration {
	t := q.Src()
	g := q.Schedule.At(t)
	return t / g * g
}

// Name implements Clock.
func (q *Quantized) Name() string {
	if q.Label == "" {
		return "Date.getTime"
	}
	return q.Label
}

// Granularity returns the quantization step active right now.
func (q *Quantized) Granularity() time.Duration { return q.Schedule.At(q.Src()) }

// Probe reproduces the Figure 5 granularity test: query the clock in a
// tight loop until the returned value changes, and report the difference
// between the two distinct values. advance is invoked once per query to
// model the cost of the loop iteration (in simulation it steps the virtual
// clock; in live mode it is a no-op because real time advances by itself).
// maxIters bounds the spin; 0 means a generous default.
func Probe(c Clock, advance func(), maxIters int) (time.Duration, bool) {
	if maxIters <= 0 {
		maxIters = 10_000_000
	}
	start := c.Now()
	for i := 0; i < maxIters; i++ {
		if advance != nil {
			advance()
		}
		cur := c.Now()
		if cur != start {
			return cur - start, true
		}
	}
	return 0, false
}

// ProbeSeries runs Probe n times spaced by gap (advanced via the same
// advance hook granularity) and returns the observed granularities. It is
// used to show the regime switching over a long window.
func ProbeSeries(c Clock, advance func(), skip func(time.Duration), n int, gap time.Duration) []time.Duration {
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		if g, ok := Probe(c, advance, 0); ok {
			out = append(out, g)
		}
		if skip != nil && gap > 0 {
			skip(gap)
		}
	}
	return out
}
