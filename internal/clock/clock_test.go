package clock

import (
	"testing"
	"testing/quick"
	"time"
)

// fakeSource is a manually advanced time source.
type fakeSource struct{ t time.Duration }

func (f *fakeSource) now() time.Duration   { return f.t }
func (f *fakeSource) step(d time.Duration) { f.t += d }

func TestPerfectPassesThrough(t *testing.T) {
	src := &fakeSource{t: 1234567 * time.Nanosecond}
	c := &Perfect{Src: src.now}
	if c.Now() != src.t {
		t.Fatalf("Now = %v, want %v", c.Now(), src.t)
	}
	if c.Name() != "System.nanoTime" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestPerfectCustomLabel(t *testing.T) {
	c := &Perfect{Src: (&fakeSource{}).now, Label: "performance.now"}
	if c.Name() != "performance.now" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestQuantizedFloors(t *testing.T) {
	src := &fakeSource{}
	sched := NewSchedule(Regime{Granularity: time.Millisecond, Length: time.Hour})
	c := &Quantized{Src: src.now, Schedule: sched}

	src.t = 1700 * time.Microsecond
	if got := c.Now(); got != time.Millisecond {
		t.Fatalf("Now(1.7ms) = %v, want 1ms", got)
	}
	src.t = 2*time.Millisecond - time.Nanosecond
	if got := c.Now(); got != time.Millisecond {
		t.Fatalf("Now(2ms-1ns) = %v, want 1ms", got)
	}
	src.t = 2 * time.Millisecond
	if got := c.Now(); got != 2*time.Millisecond {
		t.Fatalf("Now(2ms) = %v, want 2ms", got)
	}
}

func TestQuantizedName(t *testing.T) {
	c := &Quantized{Src: (&fakeSource{}).now, Schedule: LinuxGetTimeSchedule()}
	if c.Name() != "Date.getTime" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestScheduleCycles(t *testing.T) {
	s := NewSchedule(
		Regime{Granularity: time.Millisecond, Length: time.Minute},
		Regime{Granularity: 15 * time.Millisecond, Length: 2 * time.Minute},
	)
	cases := []struct {
		at   time.Duration
		want time.Duration
	}{
		{0, time.Millisecond},
		{59 * time.Second, time.Millisecond},
		{time.Minute, 15 * time.Millisecond},
		{2 * time.Minute, 15 * time.Millisecond},
		{3 * time.Minute, time.Millisecond},                     // wrapped
		{3*time.Minute + 61*time.Second, 15 * time.Millisecond}, // wrapped into second regime
		{-5 * time.Second, time.Millisecond},                    // negative clamps to 0
	}
	for _, c := range cases {
		if got := s.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestNewSchedulePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":        func() { NewSchedule() },
		"zero length":  func() { NewSchedule(Regime{Granularity: 1, Length: 0}) },
		"zero granule": func() { NewSchedule(Regime{Granularity: 0, Length: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestWindowsScheduleHasTwoLevels(t *testing.T) {
	s := WindowsGetTimeSchedule()
	seen := map[time.Duration]bool{}
	for at := time.Duration(0); at < time.Hour; at += 30 * time.Second {
		seen[s.At(at)] = true
	}
	if !seen[time.Millisecond] || !seen[WindowsTimerPeriod] {
		t.Fatalf("levels seen: %v, want both 1ms and %v", seen, WindowsTimerPeriod)
	}
	if len(seen) != 2 {
		t.Fatalf("want exactly two granularity levels, got %v", seen)
	}
}

func TestLinuxScheduleConstant(t *testing.T) {
	s := LinuxGetTimeSchedule()
	for at := time.Duration(0); at < 3*time.Hour; at += 13 * time.Minute {
		if s.At(at) != time.Millisecond {
			t.Fatalf("At(%v) = %v, want constant 1ms", at, s.At(at))
		}
	}
}

func TestProbeMeasuresGranularity(t *testing.T) {
	src := &fakeSource{}
	c := &Quantized{Src: src.now, Schedule: NewSchedule(Regime{Granularity: 15 * time.Millisecond, Length: time.Hour})}
	g, ok := Probe(c, func() { src.step(50 * time.Microsecond) }, 0)
	if !ok {
		t.Fatal("probe did not converge")
	}
	if g != 15*time.Millisecond {
		t.Fatalf("granularity = %v, want 15ms", g)
	}
}

func TestProbePerfectClockSeesSpinStep(t *testing.T) {
	src := &fakeSource{}
	c := &Perfect{Src: src.now}
	g, ok := Probe(c, func() { src.step(100 * time.Nanosecond) }, 0)
	if !ok || g != 100*time.Nanosecond {
		t.Fatalf("g=%v ok=%v, want 100ns true", g, ok)
	}
}

func TestProbeGivesUp(t *testing.T) {
	src := &fakeSource{} // never advances
	c := &Perfect{Src: src.now}
	if _, ok := Probe(c, nil, 10); ok {
		t.Fatal("expected probe to give up on a frozen clock")
	}
}

func TestProbeSeriesObservesRegimeSwitch(t *testing.T) {
	src := &fakeSource{}
	c := &Quantized{Src: src.now, Schedule: WindowsGetTimeSchedule()}
	gs := ProbeSeries(c,
		func() { src.step(20 * time.Microsecond) },
		func(d time.Duration) { src.step(d) },
		20, time.Minute)
	seen := map[time.Duration]bool{}
	for _, g := range gs {
		seen[g] = true
	}
	if !seen[time.Millisecond] || !seen[WindowsTimerPeriod] {
		t.Fatalf("probe series saw %v, want both regimes", seen)
	}
}

func TestGranularityAccessor(t *testing.T) {
	src := &fakeSource{}
	c := &Quantized{Src: src.now, Schedule: WindowsGetTimeSchedule()}
	if c.Granularity() != time.Millisecond {
		t.Fatalf("Granularity at t=0 = %v, want 1ms", c.Granularity())
	}
	src.t = 4*time.Minute + time.Second
	if c.Granularity() != WindowsTimerPeriod {
		t.Fatalf("Granularity in second regime = %v, want %v", c.Granularity(), WindowsTimerPeriod)
	}
}

// Property: quantized timestamps never exceed the source time and lag it by
// less than one granule.
func TestQuickQuantizedBounds(t *testing.T) {
	sched := WindowsGetTimeSchedule()
	f := func(us uint32) bool {
		src := &fakeSource{t: time.Duration(us) * time.Microsecond}
		c := &Quantized{Src: src.now, Schedule: sched}
		got := c.Now()
		g := sched.At(src.t)
		return got <= src.t && src.t-got < g && got%g == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantized clocks are monotone non-decreasing as the source
// advances, even across regime boundaries.
func TestQuickQuantizedMonotone(t *testing.T) {
	sched := WindowsGetTimeSchedule()
	f := func(steps []uint16) bool {
		src := &fakeSource{}
		c := &Quantized{Src: src.now, Schedule: sched}
		prev := c.Now()
		for _, s := range steps {
			src.step(time.Duration(s) * time.Microsecond)
			cur := c.Now()
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
