// Package core implements the paper's primary contribution: the appraisal
// of browser-side delay accuracy. It runs repeated two-round measurements
// (Figure 1) on the testbed, computes the delay overhead of Eq. 1,
//
//	Δd = (tBr − tBs) − (tNr − tNs),
//
// by joining browser-level timestamps with capture-level ground truth, and
// derives the statistics every table and figure of the evaluation reports
// — plus calibration data and the Section 5 recommendations.
package core

import (
	"context"
	"fmt"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/stats"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

// Config describes one experiment: a (method, browser×OS, timing function)
// cell measured Runs times.
type Config struct {
	Method  methods.Kind
	Profile *browser.Profile
	// Timing selects the timestamp API; the paper's default is GetTime.
	Timing browser.TimingFunc
	// Runs is the repetition count (default 50, as in the paper).
	Runs int
	// Gap is the idle time between repetitions (default 10 s). Spreading
	// the runs over virtual minutes is what lets the Windows getTime
	// granularity regimes show up within one experiment.
	Gap time.Duration
	// Warp advances the testbed clock before the first run (e.g. to park
	// inside a particular granularity regime).
	Warp time.Duration
	// Testbed overrides testbed parameters; zero values use the paper's.
	Testbed testbed.Config
	// Tracer and Metrics, when non-nil, are installed on the testbed and
	// receive the full observability stream (spans, counters, stage
	// histograms). Purely observational: results are byte-identical with
	// or without them.
	Tracer  *obs.Tracer
	Metrics *obs.Metrics
}

func (c *Config) fillDefaults() {
	if c.Runs == 0 {
		c.Runs = 50
	}
	if c.Gap == 0 {
		c.Gap = 10 * time.Second
	}
}

// Normalize applies the same defaults RunContext applies before executing
// (Runs, Gap). Cache implementations key and reconstruct configs from the
// normalized form so a zero field and its explicit paper-default value
// name the same cell.
func (c *Config) Normalize() { c.fillDefaults() }

// Sample is one round of one run: the browser-reported RTT, the wire RTT
// from the capture, and their difference (the delay overhead).
type Sample struct {
	Run   int // 0-based repetition index
	Round int // 1 (Δd1) or 2 (Δd2)

	BrowserRTT time.Duration
	WireRTT    time.Duration
	Overhead   time.Duration
	// Handshake reports that a fresh TCP connection was opened for this
	// round's request (Section 4.1's inflation mechanism).
	Handshake bool
}

// Experiment is a completed measurement cell.
//
// The derived statistics (Box, CDF, MeanCI, ...) lazily cache per-round
// sample views on first use; Samples must not be modified after the
// first derived-statistic call.
type Experiment struct {
	Config  Config
	Samples []Sample

	// ovRun caches each round's Δd samples in run order (ms); ovSorted
	// caches the sealed sorted view the order-invariant statistics share.
	ovRun    [methods.Rounds][]float64
	ovSorted [methods.Rounds]*stats.Samples
}

// roundMs returns the cached run-order Δd samples (ms) for round.
// The slice is shared; callers must not mutate it.
func (e *Experiment) roundMs(round int) []float64 {
	cached := round >= 1 && round <= methods.Rounds
	if cached && e.ovRun[round-1] != nil {
		return e.ovRun[round-1]
	}
	out := make([]float64, 0, len(e.Samples)/methods.Rounds+1)
	for _, s := range e.Samples {
		if s.Round == round {
			out = append(out, stats.Ms(s.Overhead))
		}
	}
	if cached {
		e.ovRun[round-1] = out
	}
	return out
}

// roundSamples returns the cached sealed (sorted) Δd set for round.
func (e *Experiment) roundSamples(round int) *stats.Samples {
	cached := round >= 1 && round <= methods.Rounds
	if cached && e.ovSorted[round-1] != nil {
		return e.ovSorted[round-1]
	}
	s := stats.NewSamples(e.roundMs(round))
	if cached {
		e.ovSorted[round-1] = s
	}
	return s
}

// Run executes the experiment on a fresh deterministic testbed.
func Run(cfg Config) (*Experiment, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the context is checked between
// repetitions, so an abort takes effect within one run's simulation time.
// A canceled context returns ctx.Err() unwrapped.
func RunContext(ctx context.Context, cfg Config) (*Experiment, error) {
	cfg.fillDefaults()
	if cfg.Profile == nil {
		return nil, fmt.Errorf("core: Config.Profile is nil")
	}
	tbCfg := cfg.Testbed
	tbCfg.Tracer = cfg.Tracer
	tbCfg.Metrics = cfg.Metrics
	tb := testbed.New(tbCfg)
	// The arena is observational-tier plumbing (a worker-owned buffer
	// pool); the experiment's stored config must not retain it.
	cfg.Testbed.Arena = nil
	if cfg.Warp > 0 {
		tb.Advance(cfg.Warp)
	}
	exp := &Experiment{Config: cfg}
	exp.Samples = make([]Sample, 0, cfg.Runs*methods.Rounds)
	// One Runner serves every repetition: its result storage, client
	// connections and callbacks recycle run over run, and BeginRun
	// recycles the arena-backed buffers below them.
	r := &methods.Runner{TB: tb, Profile: cfg.Profile, Timing: cfg.Timing}
	for run := 0; run < cfg.Runs; run++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.RunIndex = run
		tb.BeginRun()
		res, err := r.Run(cfg.Method)
		if err != nil {
			return nil, fmt.Errorf("core: run %d: %w", run, err)
		}
		pairs := tb.Cap.MatchRTT(res.ServerPort)
		if len(pairs) < methods.Rounds {
			return nil, fmt.Errorf("core: run %d captured %d wire pairs, want >= %d", run, len(pairs), methods.Rounds)
		}
		// The last Rounds pairs are the probes (earlier ones belong to
		// preparation: container fetch or WebSocket upgrade).
		pairs = pairs[len(pairs)-methods.Rounds:]
		for round := 1; round <= methods.Rounds; round++ {
			wp := pairs[round-1]
			browserRTT := res.BrowserRTT(round)
			exp.Samples = append(exp.Samples, Sample{
				Run:        run,
				Round:      round,
				BrowserRTT: browserRTT,
				WireRTT:    wp.RTT(),
				Overhead:   browserRTT - wp.RTT(),
				// NewConnRounds is authoritative: the capture also sees
				// preparation-phase SYNs (socket methods dial their echo
				// connection just before probe 1), but those handshakes
				// happen outside the timed window.
				Handshake: res.NewConnRounds[round-1],
			})
			cfg.Metrics.ObserveDur("delta_d_ms", browserRTT-wp.RTT())
		}
		tb.Advance(cfg.Gap)
	}
	return exp, nil
}

// Overheads returns the Δd samples of one round in milliseconds, in run
// order. The returned slice is the caller's to keep.
func (e *Experiment) Overheads(round int) []float64 {
	ms := e.roundMs(round)
	if len(ms) == 0 {
		return nil
	}
	out := make([]float64, len(ms))
	copy(out, ms)
	return out
}

// Box returns the Figure 3 box summary of one round's overheads.
func (e *Experiment) Box(round int) stats.Box { return e.roundSamples(round).Box() }

// CDF returns the Figure 4 CDF of one round's overheads.
func (e *Experiment) CDF(round int) *stats.CDF { return e.roundSamples(round).CDF() }

// MeanCI returns the Table 4 mean ± 95% CI of one round's overheads (ms).
// Summation runs over the run-order samples, so results are bit-identical
// with the pre-caching implementation.
func (e *Experiment) MeanCI(round int) (mean, half float64) {
	return stats.MeanCI95(e.roundMs(round))
}

// MedianOverhead returns the median Δd of a round (ms), the Table 3 unit.
func (e *Experiment) MedianOverhead(round int) float64 {
	return e.roundSamples(round).Median()
}

// HandshakeRounds counts per round how many runs opened a fresh TCP
// connection for the probe.
func (e *Experiment) HandshakeRounds() [methods.Rounds]int {
	var out [methods.Rounds]int
	for _, s := range e.Samples {
		if s.Handshake {
			out[s.Round-1]++
		}
	}
	return out
}

// JitterInflation estimates how much the method inflates jitter
// measurements: the standard deviation of the overhead (ms) per round.
// A perfectly stable overhead cancels in jitter computations; a noisy one
// is indistinguishable from network jitter (Section 2.2).
func (e *Experiment) JitterInflation(round int) float64 {
	return stats.StdDev(e.roundMs(round))
}

// ThroughputBias returns the median multiplicative error a round-trip
// throughput estimate suffers when computed from browser RTTs instead of
// wire RTTs: wireRTT/browserRTT (1.0 = unbiased, 0.5 = halved estimate).
func (e *Experiment) ThroughputBias(round int) float64 {
	var ratios []float64
	for _, s := range e.Samples {
		if s.Round == round && s.BrowserRTT > 0 {
			ratios = append(ratios, float64(s.WireRTT)/float64(s.BrowserRTT))
		}
	}
	if len(ratios) == 0 {
		return 1
	}
	return stats.Median(ratios)
}

// Bimodal reports whether a round's overheads split into two levels at
// least 10 ms apart (the Figure 4 granularity signature).
func (e *Experiment) Bimodal(round int) bool {
	s := e.roundSamples(round)
	if s.N() == 0 {
		return false
	}
	return s.Bimodal(3, 10, 0.08)
}
