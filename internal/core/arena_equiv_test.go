package core

import (
	"reflect"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/arena"
	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/methods"
)

// arenaEquivCases spans the method families with distinct buffer
// lifetimes (HTTP parse buffers, WebSocket frames, raw-socket echo
// payloads, the Flash policy-file dance) and the fault profiles that
// leave retransmission state alive across the 1 s inter-run gap — the
// exact regime where a premature arena reset would corrupt retransmitted
// bytes.
var arenaEquivCases = []struct {
	kind methods.Kind
	fp   faults.Profile
}{
	{methods.XHRGet, faults.Clean},
	{methods.XHRGet, faults.Congested},
	{methods.WebSocket, faults.Clean},
	{methods.WebSocket, faults.Lossy1pct},
	{methods.FlashGet, faults.BurstyWiFi},
	{methods.JavaTCP, faults.Lossy1pct},
}

// runArenaCell executes one small cell with the given arena installed.
// Gap is pinned to 1 s — the shortest gap any caller uses — so in-flight
// retransmissions have the least time to drain before the next BeginRun.
func runArenaCell(t *testing.T, kind methods.Kind, fp faults.Profile, a *arena.Arena) []Sample {
	t.Helper()
	cfg := Config{
		Method:  kind,
		Profile: browser.Lookup(browser.Chrome, browser.Windows),
		Timing:  browser.NanoTime,
		Runs:    6,
		Gap:     time.Second,
	}
	cfg.Testbed.Seed = 42
	cfg.Testbed.Faults = fp
	cfg.Testbed.Arena = a
	exp, err := Run(cfg)
	if err != nil {
		t.Fatalf("%v/%v: %v", kind, fp, err)
	}
	return exp.Samples
}

// TestArenaRunEquivalence is the determinism contract of the arena tier:
// the same cell must produce identical samples with no arena (every
// buffer heap-allocated), with a fresh arena, and with one arena reused
// across consecutive cells the way a study worker reuses it. Any
// divergence means a buffer outlived its epoch.
func TestArenaRunEquivalence(t *testing.T) {
	for _, tc := range arenaEquivCases {
		heap := runArenaCell(t, tc.kind, tc.fp, nil)

		fresh := runArenaCell(t, tc.kind, tc.fp, arena.New(0))
		if !reflect.DeepEqual(heap, fresh) {
			t.Errorf("%v/%v: fresh-arena samples diverge from heap samples", tc.kind, tc.fp)
		}

		// Worker-style reuse: one arena, two cells back to back. The
		// second cell starts on recycled slabs whose bytes are the first
		// cell's garbage.
		shared := arena.New(0)
		runArenaCell(t, tc.kind, tc.fp, shared)
		reused := runArenaCell(t, tc.kind, tc.fp, shared)
		if !reflect.DeepEqual(heap, reused) {
			t.Errorf("%v/%v: reused-arena samples diverge from heap samples", tc.kind, tc.fp)
		}
	}
}

// TestArenaPoisonedRunEquivalence re-runs the matrix on a poisoning
// arena, which scribbles 0xA5 over every recycled byte at Reset. A
// use-after-reset read — a parse buffer, a retransmitted payload, a
// frame header held across runs — surfaces as a sample divergence (or a
// hard failure) instead of silently reading stale-but-plausible bytes.
func TestArenaPoisonedRunEquivalence(t *testing.T) {
	for _, tc := range arenaEquivCases {
		heap := runArenaCell(t, tc.kind, tc.fp, nil)

		poisoned := arena.New(0)
		poisoned.SetPoison(true)
		runArenaCell(t, tc.kind, tc.fp, poisoned) // dirty the slabs first
		got := runArenaCell(t, tc.kind, tc.fp, poisoned)
		if !reflect.DeepEqual(heap, got) {
			t.Errorf("%v/%v: poisoned-arena samples diverge — some buffer is read after its epoch ended", tc.kind, tc.fp)
		}
	}
}
