package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// memCache is an in-memory CellCache for exercising the scheduler's cache
// wiring without the disk implementation (which lives in internal/sweep
// and has its own tests).
type memCache struct {
	mu       sync.Mutex
	m        map[string]*Experiment
	loads    int
	stores   int
	storeErr error
}

func newMemCache() *memCache { return &memCache{m: map[string]*Experiment{}} }

func (c *memCache) key(cfg Config) string {
	return fmt.Sprintf("%v|%s|%v|%d|%d", cfg.Method, cfg.Profile.Label(), cfg.Timing, cfg.Runs, cfg.Testbed.Seed)
}

func (c *memCache) Load(cfg Config) (*Experiment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.loads++
	exp, ok := c.m[c.key(cfg)]
	return exp, ok
}

func (c *memCache) Store(cfg Config, exp *Experiment) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.storeErr != nil {
		return c.storeErr
	}
	c.stores++
	c.m[c.key(cfg)] = exp
	return nil
}

// TestStudyCacheWiring: with a cache installed, the first study populates
// it, the second study short-circuits every non-skipped cell through it,
// both export byte-identically, and the Cached flags/counters line up.
func TestStudyCacheWiring(t *testing.T) {
	checkNoGoroutineLeak(t)
	mc := newMemCache()
	opts := StudyOptions{Runs: 2, Gap: time.Second, BaseSeed: 7, Workers: 4, Cache: mc}

	st1, err := RunStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	executed := st1.Stats.CellsFinished - st1.Stats.CellsSkipped
	if st1.Stats.CellsCached != 0 {
		t.Errorf("first run CellsCached = %d, want 0", st1.Stats.CellsCached)
	}
	if mc.stores != executed {
		t.Errorf("first run stored %d cells, want %d", mc.stores, executed)
	}
	want := exportBytes(t, st1)

	var cachedSeen int
	opts.OnCellDone = func(cs CellStatus) {
		if cs.Cached {
			cachedSeen++
		}
	}
	st2, err := RunStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats.CellsCached != executed {
		t.Errorf("second run CellsCached = %d, want %d", st2.Stats.CellsCached, executed)
	}
	if cachedSeen != executed {
		t.Errorf("OnCellDone saw %d cached cells, want %d", cachedSeen, executed)
	}
	for i := range st2.Cells {
		c := &st2.Cells[i]
		if c.Skipped {
			if c.Cached {
				t.Errorf("cell %d: skipped cell marked cached", i)
			}
			continue
		}
		if !c.Cached {
			t.Errorf("cell %d: executed on a warm cache, want cached", i)
		}
	}
	if got := exportBytes(t, st2); !bytes.Equal(got, want) {
		t.Errorf("cached study exports differ from computed study (%d vs %d bytes)", len(got), len(want))
	}
}

// TestStudyCacheStoreErrorAborts: a failing Store must abort the study —
// a resumable sweep that silently dropped cells would resume incomplete.
func TestStudyCacheStoreErrorAborts(t *testing.T) {
	checkNoGoroutineLeak(t)
	sentinel := errors.New("disk full")
	mc := newMemCache()
	mc.storeErr = sentinel
	_, err := RunStudy(StudyOptions{Runs: 1, Gap: time.Second, Workers: 2, Cache: mc})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the store failure", err)
	}
	if !strings.Contains(err.Error(), "cache store") {
		t.Errorf("err = %q, want it to name the cache store path", err)
	}
}

// TestStudyCacheConfigStripped: the config handed to Store must not carry
// the per-cell Tracer/Metrics — cached entries are keyed and reconstructed
// from the measurement-relevant config alone.
func TestStudyCacheConfigStripped(t *testing.T) {
	checkNoGoroutineLeak(t)
	var mu sync.Mutex
	var seen []Config
	mc := newMemCache()
	stored := &storeSpy{inner: mc, onStore: func(cfg Config) {
		mu.Lock()
		seen = append(seen, cfg)
		mu.Unlock()
	}}
	opts := StudyOptions{Runs: 1, Gap: time.Second, Workers: 2, Cache: stored, Tracing: true, Metrics: nil}
	if _, err := RunStudy(opts); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("Store never called")
	}
	for _, cfg := range seen {
		if cfg.Tracer != nil || cfg.Metrics != nil {
			t.Fatalf("Store received a config with observability attached")
		}
	}
}

type storeSpy struct {
	inner   CellCache
	onStore func(Config)
}

func (s *storeSpy) Load(cfg Config) (*Experiment, bool) { return s.inner.Load(cfg) }
func (s *storeSpy) Store(cfg Config, exp *Experiment) error {
	s.onStore(cfg)
	return s.inner.Store(cfg, exp)
}
