package core

import (
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/stats"
)

// quickExp runs a small experiment for tests.
func quickExp(t *testing.T, kind methods.Kind, b browser.Name, os browser.OS, timing browser.TimingFunc, runs int) *Experiment {
	t.Helper()
	prof := browser.Lookup(b, os)
	if prof == nil {
		t.Fatalf("no profile for %v/%v", b, os)
	}
	exp, err := Run(Config{Method: kind, Profile: prof, Timing: timing, Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestRunProducesTwoRoundsPerRun(t *testing.T) {
	exp := quickExp(t, methods.XHRGet, browser.Chrome, browser.Ubuntu, browser.NanoTime, 10)
	if len(exp.Samples) != 20 {
		t.Fatalf("samples = %d, want 20", len(exp.Samples))
	}
	if len(exp.Overheads(1)) != 10 || len(exp.Overheads(2)) != 10 {
		t.Fatal("per-round sample counts wrong")
	}
	for _, s := range exp.Samples {
		if s.WireRTT < 50*time.Millisecond || s.WireRTT > 55*time.Millisecond {
			t.Fatalf("wire RTT %v outside testbed expectation", s.WireRTT)
		}
		if s.Overhead != s.BrowserRTT-s.WireRTT {
			t.Fatal("Eq. 1 violated")
		}
	}
}

func TestRunRejectsNilProfile(t *testing.T) {
	if _, err := Run(Config{Method: methods.XHRGet}); err == nil {
		t.Fatal("expected error")
	}
}

func TestDeterministicAcrossInvocations(t *testing.T) {
	a := quickExp(t, methods.WebSocket, browser.Firefox, browser.Ubuntu, browser.NanoTime, 8)
	b := quickExp(t, methods.WebSocket, browser.Firefox, browser.Ubuntu, browser.NanoTime, 8)
	for i := range a.Samples {
		if a.Samples[i].Overhead != b.Samples[i].Overhead {
			t.Fatalf("sample %d differs: %v vs %v", i, a.Samples[i].Overhead, b.Samples[i].Overhead)
		}
	}
}

func TestSocketBeatsHTTPOrdering(t *testing.T) {
	// The paper's central result on one combo: Δd2 medians order as
	// socket < DOM < XHR < Flash HTTP.
	runs := 25
	ws := quickExp(t, methods.WebSocket, browser.Chrome, browser.Ubuntu, browser.NanoTime, runs).MedianOverhead(2)
	dom := quickExp(t, methods.DOM, browser.Chrome, browser.Ubuntu, browser.NanoTime, runs).MedianOverhead(2)
	xhr := quickExp(t, methods.XHRGet, browser.Chrome, browser.Ubuntu, browser.NanoTime, runs).MedianOverhead(2)
	flash := quickExp(t, methods.FlashGet, browser.Chrome, browser.Ubuntu, browser.NanoTime, runs).MedianOverhead(2)
	if !(ws < dom && dom < xhr && xhr < flash) {
		t.Fatalf("ordering violated: ws=%.2f dom=%.2f xhr=%.2f flash=%.2f", ws, dom, xhr, flash)
	}
	if ws > 1 {
		t.Fatalf("WebSocket median %.2f ms, want sub-millisecond", ws)
	}
}

func TestTable3OperaFlashShape(t *testing.T) {
	get := quickExp(t, methods.FlashGet, browser.Opera, browser.Windows, browser.GetTime, 20)
	post := quickExp(t, methods.FlashPost, browser.Opera, browser.Windows, browser.GetTime, 20)

	g1, g2 := get.MedianOverhead(1), get.MedianOverhead(2)
	p1, p2 := post.MedianOverhead(1), post.MedianOverhead(2)

	// Table 3 shape: Δd1 > 100 ms for both; GET Δd2 ≈ 20 ms; POST Δd2 ≈
	// GET Δd2 + 50 ms (the handshake).
	if g1 < 80 || p1 < 80 {
		t.Fatalf("Δd1 medians %.1f / %.1f, want > 80 ms", g1, p1)
	}
	if g2 > 45 {
		t.Fatalf("GET Δd2 = %.1f, want well below Δd1", g2)
	}
	if diff := p2 - 50 - g2; diff < -15 || diff > 15 {
		t.Fatalf("POST Δd2 − 50ms = %.1f should approximate GET Δd2 = %.1f", p2-50, g2)
	}
	// Handshake accounting matches the mechanism.
	hs := get.HandshakeRounds()
	if hs[0] != 20 || hs[1] != 0 {
		t.Fatalf("GET handshake rounds = %v, want [20 0]", hs)
	}
	hsPost := post.HandshakeRounds()
	if hsPost[0] != 20 || hsPost[1] != 20 {
		t.Fatalf("POST handshake rounds = %v, want [20 20]", hsPost)
	}
}

func TestFig4JavaSocketBimodalOnWindows(t *testing.T) {
	// Runs spread over ~8 virtual minutes cross both granularity regimes,
	// producing the two discrete Δd levels ~16 ms apart.
	exp := quickExp(t, methods.JavaTCP, browser.Firefox, browser.Windows, browser.GetTime, 50)
	if !exp.Bimodal(1) && !exp.Bimodal(2) {
		t.Fatalf("Java socket overheads not bimodal: d1=%v", exp.Overheads(1))
	}
	// And negative overheads exist (RTT under-estimation).
	neg := 0
	for _, v := range exp.Overheads(1) {
		if v < -1 {
			neg++
		}
	}
	if neg == 0 {
		t.Fatal("no negative overheads with getTime on Windows")
	}
}

func TestTable4NanoTimeFixes(t *testing.T) {
	// With System.nanoTime the under-estimation disappears and the socket
	// overhead is comparable to the capturer's own accuracy (~0.3 ms).
	exp := quickExp(t, methods.JavaTCP, browser.Chrome, browser.Windows, browser.NanoTime, 30)
	for round := 1; round <= 2; round++ {
		mean, half := exp.MeanCI(round)
		if mean < 0 {
			t.Fatalf("round %d mean %.3f negative with nanoTime", round, mean)
		}
		if mean > 0.5 {
			t.Fatalf("round %d mean %.3f ms, want ~0.01-0.1", round, mean)
		}
		if half > 0.2 {
			t.Fatalf("round %d CI half-width %.3f too wide", round, half)
		}
	}
	if exp.Bimodal(1) || exp.Bimodal(2) {
		t.Fatal("nanoTime samples must not be bimodal")
	}
	// GET shape: Δd2 > Δd1 per Table 4.
	get := quickExp(t, methods.JavaGet, browser.Chrome, browser.Windows, browser.NanoTime, 30)
	m1, _ := get.MeanCI(1)
	m2, _ := get.MeanCI(2)
	if !(m2 > m1) {
		t.Fatalf("Java GET means d1=%.2f d2=%.2f, want d2 > d1", m1, m2)
	}
}

func TestJitterAndThroughputImpact(t *testing.T) {
	flash := quickExp(t, methods.FlashGet, browser.Firefox, browser.Windows, browser.NanoTime, 20)
	sock := quickExp(t, methods.JavaTCP, browser.Firefox, browser.Windows, browser.NanoTime, 20)
	if flash.JitterInflation(2) <= sock.JitterInflation(2) {
		t.Fatalf("flash jitter %.2f should exceed socket jitter %.4f",
			flash.JitterInflation(2), sock.JitterInflation(2))
	}
	fb, sb := flash.ThroughputBias(2), sock.ThroughputBias(2)
	if fb >= sb {
		t.Fatalf("flash throughput bias %.3f should be below socket %.3f", fb, sb)
	}
	if sb < 0.98 || sb > 1.0 {
		t.Fatalf("socket throughput bias = %.4f, want ~1", sb)
	}
}

func TestCalibration(t *testing.T) {
	exp := quickExp(t, methods.XHRGet, browser.Chrome, browser.Ubuntu, browser.NanoTime, 25)
	cal := exp.Calibrate()
	if cal.Method != methods.XHRGet || cal.Label != "C (U)" {
		t.Fatalf("calibration identity wrong: %+v", cal)
	}
	// Correcting a browser RTT by the median overhead should land near
	// the true wire RTT for the median sample.
	med := time.Duration(cal.MedianOverhead[1] * float64(time.Millisecond))
	browserRTT := 50*time.Millisecond + med
	corrected := cal.Correct(browserRTT, 2)
	if corrected < 49*time.Millisecond || corrected > 51*time.Millisecond {
		t.Fatalf("corrected RTT = %v, want ~50ms", corrected)
	}
}

func TestCalibratability(t *testing.T) {
	sock := quickExp(t, methods.JavaTCP, browser.Chrome, browser.Windows, browser.NanoTime, 20).Calibrate()
	if !sock.Calibratable(2) {
		t.Fatalf("Java socket should be calibratable: IQR=%v", sock.IQR)
	}
	flash := quickExp(t, methods.FlashGet, browser.Firefox, browser.Windows, browser.NanoTime, 20).Calibrate()
	if flash.Calibratable(2) {
		t.Fatalf("Flash HTTP should not be calibratable: IQR=%v", flash.IQR)
	}
}

func TestStudySmall(t *testing.T) {
	st, err := RunStudy(StudyOptions{
		Methods:  []methods.Kind{methods.WebSocket, methods.FlashGet, methods.JavaTCP},
		Profiles: browser.Profiles(),
		Timing:   browser.NanoTime,
		Runs:     6,
		Gap:      2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cells) != 3*8 {
		t.Fatalf("cells = %d, want 24", len(st.Cells))
	}
	// WebSocket cells for IE/Safari must be skipped (Table 2).
	for _, label := range []string{"IE (W)", "S (W)"} {
		c := st.Cell(methods.WebSocket, label)
		if c == nil || !c.Skipped {
			t.Fatalf("WebSocket on %s should be skipped", label)
		}
	}
	if got := len(st.MethodCells(methods.WebSocket)); got != 6 {
		t.Fatalf("WebSocket ran on %d combos, want 6", got)
	}
	if got := len(st.MethodCells(methods.JavaTCP)); got != 8 {
		t.Fatalf("Java TCP ran on %d combos, want 8", got)
	}
}

func TestRecommendReflectsSection5(t *testing.T) {
	st, err := RunStudy(StudyOptions{
		Methods: []methods.Kind{
			methods.XHRGet, methods.DOM, methods.WebSocket,
			methods.FlashGet, methods.FlashPost, methods.JavaTCP,
		},
		Timing: browser.NanoTime,
		Runs:   8,
		Gap:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := Recommend(st)
	// Socket methods win overall; the native pick is WebSocket or DOM.
	if rec.BestMethod != methods.JavaTCP && rec.BestMethod != methods.WebSocket {
		t.Fatalf("best method = %v, want a socket method", rec.BestMethod)
	}
	if rec.BestNative != methods.WebSocket && rec.BestNative != methods.DOM {
		t.Fatalf("best native = %v", rec.BestNative)
	}
	// Flash HTTP methods must be flagged as uncalibratable.
	flagged := map[methods.Kind]bool{}
	for _, k := range rec.AvoidMethods {
		flagged[k] = true
	}
	if !flagged[methods.FlashGet] || !flagged[methods.FlashPost] {
		t.Fatalf("avoid list %v must include Flash GET/POST", rec.AvoidMethods)
	}
	if flagged[methods.WebSocket] || flagged[methods.JavaTCP] {
		t.Fatalf("avoid list %v must not include socket methods", rec.AvoidMethods)
	}
	if len(rec.BestBrowser) != 2 {
		t.Fatalf("best browser per OS = %v", rec.BestBrowser)
	}
	if len(rec.Notes) == 0 {
		t.Fatal("no notes")
	}
}

func TestScoreLowerIsBetter(t *testing.T) {
	ws := Cell{Exp: quickExp(t, methods.WebSocket, browser.Chrome, browser.Ubuntu, browser.NanoTime, 10)}
	fl := Cell{Exp: quickExp(t, methods.FlashGet, browser.Chrome, browser.Ubuntu, browser.NanoTime, 10)}
	if ws.Score() >= fl.Score() {
		t.Fatalf("WebSocket score %.2f should be below Flash %.2f", ws.Score(), fl.Score())
	}
}

func TestOverheadStatsHelpers(t *testing.T) {
	exp := quickExp(t, methods.DOM, browser.Chrome, browser.Ubuntu, browser.NanoTime, 12)
	b := exp.Box(2)
	if b.N != 12 {
		t.Fatalf("box N = %d", b.N)
	}
	c := exp.CDF(2)
	if c.At(b.Max) != 1 {
		t.Fatal("CDF at max != 1")
	}
	if got := exp.MedianOverhead(2); got != b.Median {
		t.Fatalf("median mismatch %v vs %v", got, b.Median)
	}
	_ = stats.Ms(time.Millisecond)
}
