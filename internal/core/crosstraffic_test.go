package core

import (
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/stats"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

// TestCrossTrafficCreatesWireJitter verifies the control the paper
// applied: without cross traffic the wire RTT is essentially constant;
// with heavy cross traffic the capture sees real network jitter that a
// browser tool cannot tell apart from its own overhead variation.
func TestCrossTrafficCreatesWireJitter(t *testing.T) {
	run := func(withTraffic bool) (wireJitter float64) {
		tb := testbed.New(testbed.Config{Seed: 61})
		if withTraffic {
			// 1500-byte datagrams at 4000/s ≈ 48 Mbit/s on a 100 Mbit/s
			// link: substantial queueing.
			tb.StartCrossTraffic(4000, 1500)
		}
		r := &methods.Runner{TB: tb, Profile: browser.Lookup(browser.Chrome, browser.Ubuntu), Timing: browser.NanoTime}
		tb.Cap.Reset()
		train, err := r.RunTrain(methods.JavaTCP, 20)
		if err != nil {
			t.Fatal(err)
		}
		pairs := tb.Cap.MatchRTT(train.ServerPort)
		var rtts []float64
		for _, p := range pairs {
			rtts = append(rtts, stats.Ms(p.RTT()))
		}
		if len(rtts) < 2 {
			t.Fatalf("only %d wire pairs", len(rtts))
		}
		var sum float64
		for i := 1; i < len(rtts); i++ {
			d := rtts[i] - rtts[i-1]
			if d < 0 {
				d = -d
			}
			sum += d
		}
		return sum / float64(len(rtts)-1)
	}

	clean := run(false)
	loaded := run(true)
	if clean > 0.05 {
		t.Fatalf("clean testbed wire jitter = %.4f ms, want ~0", clean)
	}
	if loaded < 5*clean+0.05 {
		t.Fatalf("cross traffic wire jitter = %.4f ms, want clearly above clean %.4f", loaded, clean)
	}
}

func TestCrossTrafficDoesNotBreakMeasurement(t *testing.T) {
	// Probes still complete and Eq. 1 still holds under contention.
	tb := testbed.New(testbed.Config{Seed: 62})
	tb.StartCrossTraffic(2000, 1500)
	r := &methods.Runner{TB: tb, Profile: browser.Lookup(browser.Firefox, browser.Ubuntu), Timing: browser.NanoTime}
	tb.Cap.Reset()
	res, err := r.Run(methods.WebSocket)
	if err != nil {
		t.Fatal(err)
	}
	pairs := tb.Cap.MatchRTT(res.ServerPort)
	if len(pairs) < methods.Rounds {
		t.Fatalf("pairs = %d", len(pairs))
	}
	pairs = pairs[len(pairs)-methods.Rounds:]
	for round := 1; round <= methods.Rounds; round++ {
		ov := res.BrowserRTT(round) - pairs[round-1].RTT()
		if ov < 0 {
			t.Fatalf("round %d overhead %v negative with exact clock", round, ov)
		}
		if ov > 20*time.Millisecond {
			t.Fatalf("round %d overhead %v implausible", round, ov)
		}
	}
}

func TestCrossTrafficGeneratorsStop(t *testing.T) {
	tb := testbed.New(testbed.Config{Seed: 63})
	c2s, s2c := tb.StartCrossTraffic(1000, 500)
	tb.Advance(100 * time.Millisecond)
	c2s.Stop()
	s2c.Stop()
	sentAfterStop := c2s.Sent
	tb.Advance(100 * time.Millisecond)
	if c2s.Sent > sentAfterStop+1 { // one in-flight event may still fire
		t.Fatalf("generator kept sending after Stop: %d -> %d", sentAfterStop, c2s.Sent)
	}
	if c2s.Sent < 50 {
		t.Fatalf("generator sent only %d datagrams in 100ms at 1000/s", c2s.Sent)
	}
}
