package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/stats"
)

// WriteCSV exports every sample of the study as CSV for external plotting
// (the paper's figures are box plots/CDFs over exactly these rows).
// Columns: method, browser, os, run, round, browser_rtt_ms, wire_rtt_ms,
// overhead_ms, handshake.
func (s *Study) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"method", "browser", "os", "run", "round",
		"browser_rtt_ms", "wire_rtt_ms", "overhead_ms", "handshake",
	}); err != nil {
		return err
	}
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Skipped {
			continue
		}
		for _, smp := range c.Exp.Samples {
			rec := []string{
				c.Spec.Name,
				c.Profile.Browser.String(),
				c.Profile.OS.String(),
				strconv.Itoa(smp.Run),
				strconv.Itoa(smp.Round),
				fmtMs(stats.Ms(smp.BrowserRTT)),
				fmtMs(stats.Ms(smp.WireRTT)),
				fmtMs(stats.Ms(smp.Overhead)),
				strconv.FormatBool(smp.Handshake),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports one experiment's samples with the same columns.
func (e *Experiment) WriteCSV(w io.Writer) error {
	st := &Study{Cells: []Cell{{
		Spec:    methods.Get(e.Config.Method),
		Profile: e.Config.Profile,
		Exp:     e,
	}}}
	return st.WriteCSV(w)
}

func fmtMs(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// SummaryCSV writes one row per (method, combo, round) with the box
// statistics — the exact numbers behind each Figure 3 glyph.
func (s *Study) SummaryCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"method", "combo", "round", "n",
		"min_ms", "whisker_lo_ms", "q1_ms", "median_ms", "q3_ms", "whisker_hi_ms", "max_ms", "outliers",
	}); err != nil {
		return err
	}
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Skipped {
			continue
		}
		for round := 1; round <= 2; round++ {
			b := c.Exp.Box(round)
			rec := []string{
				c.Spec.Name,
				c.Profile.Label(),
				strconv.Itoa(round),
				strconv.Itoa(b.N),
				fmtMs(b.Min), fmtMs(b.WhiskerLo), fmtMs(b.Q1), fmtMs(b.Median),
				fmtMs(b.Q3), fmtMs(b.WhiskerHi), fmtMs(b.Max),
				strconv.Itoa(len(b.Outliers)),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("core: summary csv: %w", err)
	}
	return nil
}
