package core

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
)

func smallStudy(t *testing.T) *Study {
	t.Helper()
	st, err := RunStudy(StudyOptions{
		Methods: []methods.Kind{methods.WebSocket, methods.JavaTCP},
		Runs:    4,
		Gap:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWriteCSV(t *testing.T) {
	st := smallStudy(t)
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + (WS on 6 combos + JavaTCP on 8 combos) × 4 runs × 2 rounds.
	want := 1 + (6+8)*4*2
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	if rows[0][0] != "method" || rows[0][8] != "handshake" {
		t.Fatalf("header = %v", rows[0])
	}
	// Every data row parses and satisfies Eq. 1.
	for _, r := range rows[1:] {
		browserMs, err1 := strconv.ParseFloat(r[5], 64)
		wireMs, err2 := strconv.ParseFloat(r[6], 64)
		ovMs, err3 := strconv.ParseFloat(r[7], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparseable row %v", r)
		}
		if d := browserMs - wireMs - ovMs; d > 0.001 || d < -0.001 {
			t.Fatalf("Eq.1 violated in CSV row %v", r)
		}
	}
}

func TestSummaryCSV(t *testing.T) {
	st := smallStudy(t)
	var buf bytes.Buffer
	if err := st.SummaryCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + (6+8)*2 // header + cells × rounds
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	// Box ordering invariant inside each row: q1 <= median <= q3.
	for _, r := range rows[1:] {
		q1, _ := strconv.ParseFloat(r[6], 64)
		med, _ := strconv.ParseFloat(r[7], 64)
		q3, _ := strconv.ParseFloat(r[8], 64)
		if !(q1 <= med && med <= q3) {
			t.Fatalf("quartiles out of order in %v", r)
		}
	}
}

func TestExperimentWriteCSV(t *testing.T) {
	exp := quickExp(t, methods.DOM, browser.Chrome, browser.Ubuntu, browser.NanoTime, 5)
	var buf bytes.Buffer
	if err := exp.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DOM") {
		t.Fatal("method name missing from experiment CSV")
	}
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n")
	if lines != 10 { // 5 runs × 2 rounds (header adds the 11th line - 1)
		t.Fatalf("data lines = %d, want 10", lines)
	}
}
