package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/methods"
)

// FaultImpactOptions configures the impairment study: one fixed browser
// appraised with every method under a sweep of fault profiles, quantifying
// how each measurement method's Δd distribution degrades when the path
// stops being the paper's pristine LAN.
type FaultImpactOptions struct {
	// Profiles is the fault-profile sweep (default: all built-ins, Clean
	// first so every row has an unimpaired reference column).
	Profiles []faults.Profile
	// Methods defaults to the paper's ten compared methods.
	Methods []methods.Kind
	// Browser defaults to Opera/Windows — the one profile that supports
	// all ten methods and whose Flash methods open fresh connections, the
	// paper's handshake-sensitivity showcase.
	Browser *browser.Profile
	// Runs per (method, fault profile) cell (default 50), Gap between runs.
	Runs int
	Gap  time.Duration
	// BaseSeed is shared by every fault profile: profile f's study runs
	// the exact seed schedule of the Clean study, so distribution shifts
	// are attributable to the impairment alone, not to reseeding.
	BaseSeed int64
	// Workers caps per-study concurrency (see StudyOptions.Workers).
	Workers int
	// Timing selects the timestamping API (default Date.getTime).
	Timing browser.TimingFunc
}

func (o *FaultImpactOptions) fillDefaults() {
	if len(o.Profiles) == 0 {
		o.Profiles = faults.Profiles()
	}
	if len(o.Methods) == 0 {
		for _, s := range methods.Compared() {
			o.Methods = append(o.Methods, s.Kind)
		}
	}
	if o.Browser == nil {
		o.Browser = browser.Lookup(browser.Opera, browser.Windows)
	}
	if o.Runs == 0 {
		o.Runs = 50
	}
}

// MethodFaultImpact is one row of the impact matrix: a method's Δd2
// quantiles under each fault profile, aligned index-for-index with
// FaultImpact.Profiles.
type MethodFaultImpact struct {
	Method    methods.Kind
	Name      string
	Transport methods.Transport
	// P50 and P95 are Δd (round 2, ms) quantiles per fault profile.
	P50 []float64
	P95 []float64
}

// Degradation returns how much the method's p95 Δd grew under profile i
// relative to the first (reference, normally Clean) profile, in ms.
func (m *MethodFaultImpact) Degradation(i int) float64 { return m.P95[i] - m.P95[0] }

// FaultImpact is a completed impairment study.
type FaultImpact struct {
	Options  FaultImpactOptions
	Profiles []faults.Profile
	Browser  *browser.Profile
	Rows     []MethodFaultImpact
	// Studies holds the per-profile studies backing the rows (aligned with
	// Profiles), so callers can export full CSVs or inspect CDFs.
	Studies []*Study
}

// RunFaultImpact executes one study per fault profile — identical matrix,
// identical seeds, only the impairment differs — and tabulates per-method
// Δd quantiles. Deterministic: same options ⇒ byte-identical Report.
func RunFaultImpact(ctx context.Context, opts FaultImpactOptions) (*FaultImpact, error) {
	opts.fillDefaults()
	fi := &FaultImpact{Options: opts, Profiles: opts.Profiles, Browser: opts.Browser}

	for _, fp := range opts.Profiles {
		so := StudyOptions{
			Methods:  opts.Methods,
			Profiles: []*browser.Profile{opts.Browser},
			Timing:   opts.Timing,
			Runs:     opts.Runs,
			Gap:      opts.Gap,
			BaseSeed: opts.BaseSeed,
			Workers:  opts.Workers,
		}
		so.Testbed.Faults = fp
		st, err := RunStudyContext(ctx, so)
		if err != nil {
			return nil, fmt.Errorf("fault profile %s: %w", fp, err)
		}
		fi.Studies = append(fi.Studies, st)
	}

	for _, k := range opts.Methods {
		spec := methods.Get(k)
		row := MethodFaultImpact{Method: k, Name: spec.Name, Transport: spec.Transport}
		usable := true
		for _, st := range fi.Studies {
			c := st.Cell(k, opts.Browser.Label())
			if c == nil || c.Skipped || c.Exp == nil {
				usable = false
				break
			}
			s := c.Exp.roundSamples(2)
			row.P50 = append(row.P50, s.Quantile(0.5))
			row.P95 = append(row.P95, s.Quantile(0.95))
		}
		if usable {
			fi.Rows = append(fi.Rows, row)
		}
	}
	return fi, nil
}

// WorstDegradation returns the largest p95 degradation (vs the reference
// profile) under fault profile i among methods of the given transport,
// plus the method it belongs to. ok is false when no method matched.
func (fi *FaultImpact) WorstDegradation(i int, tr methods.Transport) (worst float64, of methods.Kind, ok bool) {
	for _, r := range fi.Rows {
		if r.Transport != tr {
			continue
		}
		if d := r.Degradation(i); !ok || d > worst {
			worst, of, ok = d, r.Method, true
		}
	}
	return worst, of, ok
}

// Report renders the impact matrix as a text table: one row per method,
// p95 Δd per fault profile with the degradation vs the reference profile
// in parentheses, and a per-profile summary contrasting the worst HTTP
// method with the worst socket method.
func (fi *FaultImpact) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault-impact study — Δd2 p95 (ms) on %s, %d runs/cell, seed %d\n\n",
		fi.Browser.Label(), fi.Options.Runs, fi.Options.BaseSeed)

	fmt.Fprintf(&b, "%-14s %-6s", "method", "trans")
	for _, fp := range fi.Profiles {
		fmt.Fprintf(&b, " %16s", fp)
	}
	b.WriteString("\n")
	for _, r := range fi.Rows {
		fmt.Fprintf(&b, "%-14s %-6s", r.Name, r.Transport)
		for i := range fi.Profiles {
			if i == 0 {
				fmt.Fprintf(&b, " %16.2f", r.P95[i])
			} else {
				fmt.Fprintf(&b, " %8.2f (%+5.1f)", r.P95[i], r.Degradation(i))
			}
		}
		b.WriteString("\n")
	}

	for i, fp := range fi.Profiles {
		if i == 0 {
			continue
		}
		wh, hm, okH := fi.WorstDegradation(i, methods.TransportHTTP)
		ws, sm, okS := fi.WorstDegradation(i, methods.TransportSocket)
		if !okH || !okS {
			continue
		}
		fmt.Fprintf(&b, "\n%s: worst HTTP %s %+.1f ms vs worst socket %s %+.1f ms (p95 vs %s)",
			fp, methods.Get(hm).Name, wh, methods.Get(sm).Name, ws, fi.Profiles[0])
	}
	b.WriteString("\n")
	return b.String()
}
