package core

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// TestFaultDeterminismAcrossWorkers extends the headline equivalence
// guarantee to every fault profile: impairment is seeded per cell from the
// same pure CellSeed schedule, so worker count must not change a byte of
// the exports.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	checkNoGoroutineLeak(t)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, fp := range faults.Profiles() {
		fp := fp
		t.Run(string(fp), func(t *testing.T) {
			base := StudyOptions{Runs: 3, Gap: time.Second, BaseSeed: 42}
			base.Testbed.Faults = fp
			var want []byte
			for _, w := range workerCounts {
				opts := base
				opts.Workers = w
				st, err := RunStudy(opts)
				if err != nil {
					t.Fatalf("Workers=%d: %v", w, err)
				}
				got := exportBytes(t, st)
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("Workers=%d exports differ from Workers=%d (%d vs %d bytes)",
						w, workerCounts[0], len(got), len(want))
				}
			}
		})
	}
}

// TestCleanProfileBitIdentical is the zero-overhead-when-disabled guard:
// selecting faults.Clean (or leaving Faults zero) must be indistinguishable
// from the pre-faults code path — no impairment layer is installed, no
// extra random draw happens, and the exports match byte for byte.
func TestCleanProfileBitIdentical(t *testing.T) {
	checkNoGoroutineLeak(t)
	run := func(fp faults.Profile) []byte {
		opts := StudyOptions{Runs: 3, Gap: time.Second, BaseSeed: 42, Workers: 2}
		opts.Testbed.Faults = fp
		st, err := RunStudy(opts)
		if err != nil {
			t.Fatalf("Faults=%q: %v", fp, err)
		}
		return exportBytes(t, st)
	}
	zero := run("")
	clean := run(faults.Clean)
	if !bytes.Equal(zero, clean) {
		t.Error("faults.Clean exports differ from zero-value Faults")
	}
}

// TestFaultProfilesActuallyImpair guards against the impairment layer
// silently not being wired: every enabled profile must record judged
// frames, and the lossy profiles must drop some.
func TestFaultProfilesActuallyImpair(t *testing.T) {
	for _, fp := range []faults.Profile{faults.Lossy1pct, faults.BurstyWiFi, faults.Congested} {
		cfg := Config{
			Method:  methods.XHRGet,
			Profile: browser.Lookup(browser.Opera, browser.Windows),
			Runs:    10,
			Gap:     time.Second,
		}
		cfg.Testbed.Faults = fp
		cfg.Testbed.Seed = 7
		cfg.Metrics = obs.NewMetrics()
		exp, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", fp, err)
		}
		if len(exp.Samples) == 0 {
			t.Fatalf("%s: no samples", fp)
		}
		if cfg.Metrics.Counter("fault_frames") == 0 {
			t.Errorf("%s: impairment layer judged no frames — not wired", fp)
		}
		drops := cfg.Metrics.Counter("fault_drops_loss") + cfg.Metrics.Counter("fault_drops_queue")
		if fp != faults.Congested && drops == 0 {
			t.Errorf("%s: lossy profile dropped no frames", fp)
		}
	}
}

// TestFaultImpactHTTPHeavierThanSocket is the acceptance property: under
// the bursty-loss profile, at least one HTTP method's p95 Δd must degrade
// by more than any socket method's p95 does. The mechanism is structural —
// a lost probe or echo is retransmitted below both clocks, so the recovery
// time cancels out of Δd; only the HTTP methods that open a fresh TCP
// connection inside the timed window (Opera's Flash GET/POST) expose
// handshake-window losses to the browser clock alone.
func TestFaultImpactHTTPHeavierThanSocket(t *testing.T) {
	fi, err := RunFaultImpact(context.Background(), FaultImpactOptions{
		Profiles: []faults.Profile{faults.Clean, faults.BurstyWiFi},
		Runs:     40,
		BaseSeed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fi.Rows) == 0 {
		t.Fatal("no usable rows")
	}
	wh, hm, okH := fi.WorstDegradation(1, methods.TransportHTTP)
	ws, sm, okS := fi.WorstDegradation(1, methods.TransportSocket)
	if !okH || !okS {
		t.Fatalf("missing transports in rows (http=%v socket=%v)", okH, okS)
	}
	t.Logf("worst HTTP: %s %+.2f ms; worst socket: %s %+.2f ms", hm, wh, sm, ws)
	if wh <= ws {
		t.Errorf("expected an HTTP method's p95 Δd to degrade more than every socket method's: "+
			"worst HTTP %s %+.2f ms <= worst socket %s %+.2f ms", hm, wh, sm, ws)
	}

	// The report must mention the per-profile contrast and stay stable.
	rep := fi.Report()
	if rep == "" || fi.Report() != rep {
		t.Error("Report must be non-empty and deterministic")
	}
}

// TestRunFaultImpactDeterministic: two identical invocations must agree on
// every tabulated quantile (and hence on the rendered report).
func TestRunFaultImpactDeterministic(t *testing.T) {
	opts := FaultImpactOptions{
		Profiles: []faults.Profile{faults.Clean, faults.Lossy1pct},
		Methods:  []methods.Kind{methods.XHRGet, methods.FlashGet, methods.JavaTCP},
		Runs:     8,
		BaseSeed: 11,
		Workers:  2,
	}
	a, err := RunFaultImpact(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaultImpact(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Errorf("reports differ:\n%s\nvs\n%s", a.Report(), b.Report())
	}
}
