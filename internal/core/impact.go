package core

import (
	"fmt"
	"time"

	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/stats"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

// Attribution decomposes one overhead sample into its mechanisms: the
// send path (engine/plugin work before the request hits the stack), the
// receive path (event dispatch before tBr), the connection handshake when
// a fresh TCP connection was opened, and a residual dominated by the
// timing API's quantization error (plus sub-ms stack/wire effects).
type Attribution struct {
	SendPath  time.Duration
	RecvPath  time.Duration
	Handshake time.Duration
	Residual  time.Duration
}

// Attribute decomposes a sample. handshakeRTT is the path RTT a fresh
// connection's SYN/SYN-ACK costs (the testbed's RTTBase); it is counted
// only for samples flagged Handshake.
func Attribute(s Sample, sendCost, recvCost, handshakeRTT time.Duration) Attribution {
	a := Attribution{SendPath: sendCost, RecvPath: recvCost}
	if s.Handshake {
		a.Handshake = handshakeRTT
	}
	a.Residual = s.Overhead - a.SendPath - a.RecvPath - a.Handshake
	return a
}

// AttributedSample pairs a sample with its decomposition.
type AttributedSample struct {
	Sample
	Attribution
}

// RunAttributed is Run plus per-sample attribution: it returns the
// experiment and the decomposed samples in the same order.
func RunAttributed(cfg Config) (*Experiment, []AttributedSample, error) {
	cfg.fillDefaults()
	if cfg.Profile == nil {
		return nil, nil, fmt.Errorf("core: Config.Profile is nil")
	}
	tb := testbed.New(cfg.Testbed)
	if cfg.Warp > 0 {
		tb.Advance(cfg.Warp)
	}
	exp := &Experiment{Config: cfg}
	var attributed []AttributedSample
	for run := 0; run < cfg.Runs; run++ {
		r := &methods.Runner{TB: tb, Profile: cfg.Profile, Timing: cfg.Timing}
		tb.Cap.Reset()
		res, err := r.Run(cfg.Method)
		if err != nil {
			return nil, nil, fmt.Errorf("core: run %d: %w", run, err)
		}
		pairs := tb.Cap.MatchRTT(res.ServerPort)
		if len(pairs) < methods.Rounds {
			return nil, nil, fmt.Errorf("core: run %d captured %d wire pairs", run, len(pairs))
		}
		pairs = pairs[len(pairs)-methods.Rounds:]
		for round := 1; round <= methods.Rounds; round++ {
			wp := pairs[round-1]
			s := Sample{
				Run:        run,
				Round:      round,
				BrowserRTT: res.BrowserRTT(round),
				WireRTT:    wp.RTT(),
				Handshake:  res.NewConnRounds[round-1],
			}
			s.Overhead = s.BrowserRTT - s.WireRTT
			exp.Samples = append(exp.Samples, s)
			attributed = append(attributed, AttributedSample{
				Sample:      s,
				Attribution: Attribute(s, res.SendCosts[round-1], res.RecvCosts[round-1], tb.RTTBase()),
			})
		}
		tb.Advance(cfg.Gap)
	}
	return exp, attributed, nil
}

// JitterImpact compares the jitter a tool would report against the true
// wire jitter, over a K-probe train. Jitter is the mean absolute
// difference of consecutive RTTs (RFC 3393-style IPDV magnitude).
type JitterImpact struct {
	Probes        int
	BrowserJitter float64 // ms
	WireJitter    float64 // ms
}

// Inflation is the jitter the browser side added (ms).
func (j JitterImpact) Inflation() float64 { return j.BrowserJitter - j.WireJitter }

// MeasureJitter runs a probe train and computes both jitters.
func MeasureJitter(cfg Config, probes int) (JitterImpact, error) {
	cfg.fillDefaults()
	if cfg.Profile == nil {
		return JitterImpact{}, fmt.Errorf("core: Config.Profile is nil")
	}
	tb := testbed.New(cfg.Testbed)
	if cfg.Warp > 0 {
		tb.Advance(cfg.Warp)
	}
	r := &methods.Runner{TB: tb, Profile: cfg.Profile, Timing: cfg.Timing}
	tb.Cap.Reset()
	train, err := r.RunTrain(cfg.Method, probes)
	if err != nil {
		return JitterImpact{}, err
	}
	browserRTTs := stats.DurationsToMs(train.BrowserRTTs())
	pairs := tb.Cap.MatchRTT(train.ServerPort)
	wireRTTs := make([]float64, 0, len(pairs))
	for _, p := range pairs {
		wireRTTs = append(wireRTTs, stats.Ms(p.RTT()))
	}
	// Drop the preparation exchange if present (HTTP/WS trains have none
	// on the probe port beyond the upgrade; align from the tail).
	if len(wireRTTs) > len(browserRTTs) {
		wireRTTs = wireRTTs[len(wireRTTs)-len(browserRTTs):]
	}
	return JitterImpact{
		Probes:        probes,
		BrowserJitter: ipdv(browserRTTs),
		WireJitter:    ipdv(wireRTTs),
	}, nil
}

// ipdv returns the mean absolute consecutive difference.
func ipdv(rtts []float64) float64 {
	if len(rtts) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(rtts); i++ {
		d := rtts[i] - rtts[i-1]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(rtts)-1)
}

// ThroughputImpact compares tool-computed and wire-level round-trip
// throughput for a bulk transfer.
type ThroughputImpact struct {
	Bytes        int
	BrowserMbps  float64
	WireMbps     float64
	BrowserRTTms float64
	WireRTTms    float64
}

// Bias is browser/wire throughput (1.0 = unbiased).
func (t ThroughputImpact) Bias() float64 {
	if t.WireMbps == 0 {
		return 0
	}
	return t.BrowserMbps / t.WireMbps
}

// MeasureThroughput runs one bulk transfer and compares both estimates.
func MeasureThroughput(cfg Config, size int) (ThroughputImpact, error) {
	cfg.fillDefaults()
	if cfg.Profile == nil {
		return ThroughputImpact{}, fmt.Errorf("core: Config.Profile is nil")
	}
	tb := testbed.New(cfg.Testbed)
	if cfg.Warp > 0 {
		tb.Advance(cfg.Warp)
	}
	r := &methods.Runner{TB: tb, Profile: cfg.Profile, Timing: cfg.Timing}
	tb.Cap.Reset()
	res, err := r.RunThroughput(cfg.Method, size)
	if err != nil {
		return ThroughputImpact{}, err
	}
	tr, ok := tb.Cap.MatchTransfer(res.ServerPort)
	if !ok {
		return ThroughputImpact{}, fmt.Errorf("core: capture saw no transfer")
	}
	return ThroughputImpact{
		Bytes:        res.Bytes,
		BrowserMbps:  res.BrowserThroughput() / 1e6,
		WireMbps:     tr.BitsPerSecond() / 1e6,
		BrowserRTTms: stats.Ms(res.TBr - res.TBs),
		WireRTTms:    stats.Ms(tr.Duration()),
	}, nil
}

// LossImpact compares tool-reported and capture-observed loss over a UDP
// probe train (Section 2's claim: overheads inflate delay, not loss).
type LossImpact struct {
	Probes      int
	BrowserLoss float64 // fraction the tool reports
	WireLoss    float64 // fraction the capture observes
	LinkDropped int     // frames the lossy link actually discarded
}

// MeasureLoss runs a UDP train under the configured link loss rate.
func MeasureLoss(cfg Config, probes int) (LossImpact, error) {
	cfg.fillDefaults()
	if cfg.Profile == nil {
		return LossImpact{}, fmt.Errorf("core: Config.Profile is nil")
	}
	if cfg.Method != methods.JavaUDP {
		return LossImpact{}, fmt.Errorf("core: loss measurement needs the Java UDP method")
	}
	tb := testbed.New(cfg.Testbed)
	if cfg.Warp > 0 {
		tb.Advance(cfg.Warp)
	}
	r := &methods.Runner{TB: tb, Profile: cfg.Profile, Timing: cfg.Timing}
	tb.Cap.Reset()
	train, err := r.RunTrain(methods.JavaUDP, probes)
	if err != nil {
		return LossImpact{}, err
	}
	sent, lost := tb.Cap.CountUnanswered(train.ServerPort)
	li := LossImpact{
		Probes:      probes,
		BrowserLoss: train.LossRate(),
		LinkDropped: tb.ServerLink.Dropped,
	}
	if sent > 0 {
		li.WireLoss = float64(lost) / float64(sent)
	}
	return li, nil
}

// AttributionReport renders mean attribution per round for an experiment
// configuration — the Section 4 "detailed investigation" view.
func AttributionReport(cfg Config) (string, error) {
	_, attributed, err := RunAttributed(cfg)
	if err != nil {
		return "", err
	}
	spec := methods.Get(cfg.Method)
	out := fmt.Sprintf("Overhead attribution: %s on %s (%v, %d runs)\n",
		spec.Name, cfg.Profile.Label(), cfg.Timing, cfg.Runs)
	out += fmt.Sprintf("  %-4s %10s %10s %10s %10s %10s\n",
		"Δd", "total", "sendPath", "recvPath", "handshake", "residual")
	for round := 1; round <= methods.Rounds; round++ {
		var tot, snd, rcv, hs, resid []float64
		for _, a := range attributed {
			if a.Round != round {
				continue
			}
			tot = append(tot, stats.Ms(a.Overhead))
			snd = append(snd, stats.Ms(a.SendPath))
			rcv = append(rcv, stats.Ms(a.RecvPath))
			hs = append(hs, stats.Ms(a.Attribution.Handshake))
			resid = append(resid, stats.Ms(a.Residual))
		}
		out += fmt.Sprintf("  Δd%-3d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			round, stats.Mean(tot), stats.Mean(snd), stats.Mean(rcv), stats.Mean(hs), stats.Mean(resid))
	}
	return out, nil
}
