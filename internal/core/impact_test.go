package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/stats"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

func TestAttributionSumsToOverhead(t *testing.T) {
	cfg := Config{
		Method:  methods.XHRGet,
		Profile: browser.Lookup(browser.Chrome, browser.Ubuntu),
		Timing:  browser.NanoTime,
		Runs:    10,
	}
	exp, attributed, err := RunAttributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(attributed) != len(exp.Samples) {
		t.Fatalf("attributed %d samples, experiment has %d", len(attributed), len(exp.Samples))
	}
	for i, a := range attributed {
		sum := a.SendPath + a.RecvPath + a.Attribution.Handshake + a.Residual
		if sum != a.Overhead {
			t.Fatalf("sample %d: attribution sums to %v, overhead %v", i, sum, a.Overhead)
		}
	}
}

func TestAttributionResidualSmallWithNanoTimeReuse(t *testing.T) {
	// With an exact clock and a reused connection, the send/recv costs
	// explain nearly everything: residual is sub-millisecond (stack and
	// wire serialization only).
	cfg := Config{
		Method:  methods.XHRGet,
		Profile: browser.Lookup(browser.Firefox, browser.Windows),
		Timing:  browser.NanoTime,
		Runs:    10,
	}
	_, attributed, err := RunAttributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range attributed {
		if a.Residual < 0 || a.Residual > time.Millisecond {
			t.Fatalf("residual %v outside [0, 1ms] for reuse+nanoTime", a.Residual)
		}
	}
}

func TestAttributionHandshakeExplainsOperaFlash(t *testing.T) {
	cfg := Config{
		Method:  methods.FlashGet,
		Profile: browser.Lookup(browser.Opera, browser.Windows),
		Timing:  browser.NanoTime,
		Runs:    8,
	}
	_, attributed, err := RunAttributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range attributed {
		if a.Round == 1 {
			if a.Attribution.Handshake != 50*time.Millisecond {
				t.Fatalf("round 1 handshake attribution = %v, want 50ms", a.Attribution.Handshake)
			}
			if a.Residual < 0 || a.Residual > 3*time.Millisecond {
				t.Fatalf("round 1 residual %v should be small once handshake is attributed", a.Residual)
			}
		} else if a.Attribution.Handshake != 0 {
			t.Fatalf("round 2 handshake attribution = %v, want 0 (GET reuses)", a.Attribution.Handshake)
		}
	}
}

func TestAttributionResidualIsQuantizationError(t *testing.T) {
	// With getTime in the coarse Windows regime, the residual is the
	// clock error: bounded by ± one granule (15.625 ms).
	cfg := Config{
		Method:  methods.JavaTCP,
		Profile: browser.Lookup(browser.Chrome, browser.Windows),
		Timing:  browser.GetTime,
		Runs:    20,
		Warp:    5 * time.Minute,
		Gap:     700 * time.Millisecond,
	}
	_, attributed, err := RunAttributed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawNegative := false
	for _, a := range attributed {
		if a.Residual < -16*time.Millisecond || a.Residual > 16*time.Millisecond {
			t.Fatalf("residual %v exceeds one granule", a.Residual)
		}
		if a.Residual < -time.Millisecond {
			sawNegative = true
		}
	}
	if !sawNegative {
		t.Fatal("expected some negative residuals (clock under-estimation)")
	}
}

func TestAttributionReportRenders(t *testing.T) {
	report, err := AttributionReport(Config{
		Method:  methods.FlashGet,
		Profile: browser.Lookup(browser.Opera, browser.Ubuntu),
		Timing:  browser.NanoTime,
		Runs:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "handshake") || !strings.Contains(report, "Δd1") {
		t.Fatalf("report missing columns:\n%s", report)
	}
}

func TestMeasureJitterSocketVsFlash(t *testing.T) {
	base := Config{
		Profile: browser.Lookup(browser.Firefox, browser.Windows),
		Timing:  browser.NanoTime,
	}
	sockCfg := base
	sockCfg.Method = methods.JavaTCP
	sock, err := MeasureJitter(sockCfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	flashCfg := base
	flashCfg.Method = methods.FlashGet
	flash, err := MeasureJitter(flashCfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sock.WireJitter > 0.5 || flash.WireJitter > 0.5 {
		t.Fatalf("wire jitter should be ~0 on the clean testbed: %v / %v", sock.WireJitter, flash.WireJitter)
	}
	if flash.Inflation() <= sock.Inflation() {
		t.Fatalf("flash jitter inflation %.2f should exceed socket %.4f", flash.Inflation(), sock.Inflation())
	}
	if sock.Inflation() > 0.2 {
		t.Fatalf("socket jitter inflation %.3f ms, want near zero", sock.Inflation())
	}
}

func TestMeasureThroughputBias(t *testing.T) {
	cfg := Config{
		Method:  methods.XHRGet,
		Profile: browser.Lookup(browser.IE, browser.Windows), // large XHR overhead
		Timing:  browser.NanoTime,
	}
	ti, err := MeasureThroughput(cfg, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Bytes != 256<<10 {
		t.Fatalf("bytes = %d", ti.Bytes)
	}
	if ti.WireMbps <= 0 || ti.BrowserMbps <= 0 {
		t.Fatalf("throughputs = %v / %v", ti.BrowserMbps, ti.WireMbps)
	}
	if ti.Bias() >= 1 {
		t.Fatalf("bias = %.3f, browser estimate must under-report", ti.Bias())
	}
	if ti.Bias() < 0.3 {
		t.Fatalf("bias = %.3f implausibly low for a 256KiB transfer", ti.Bias())
	}
	// The socket path should be much less biased.
	cfg.Method = methods.JavaTCP
	sock, err := MeasureThroughput(cfg, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if sock.Bias() <= ti.Bias() {
		t.Fatalf("socket bias %.3f should beat XHR bias %.3f", sock.Bias(), ti.Bias())
	}
}

func TestMeasureThroughputWebSocket(t *testing.T) {
	cfg := Config{
		Method:  methods.WebSocket,
		Profile: browser.Lookup(browser.Chrome, browser.Ubuntu),
		Timing:  browser.NanoTime,
	}
	ti, err := MeasureThroughput(cfg, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Bias() < 0.9 || ti.Bias() > 1.0 {
		t.Fatalf("WebSocket throughput bias = %.3f, want ~1", ti.Bias())
	}
}

func TestMeasureLossAgreement(t *testing.T) {
	// Inject 10% frame loss on the server link; the tool-reported and
	// capture-observed loss rates must agree (the paper's point: browser
	// overheads distort delay, not loss).
	cfg := Config{
		Method:  methods.JavaUDP,
		Profile: browser.Lookup(browser.Chrome, browser.Ubuntu),
		Timing:  browser.NanoTime,
		Testbed: testbed.Config{Seed: 77, LossRate: 0.10},
	}
	li, err := MeasureLoss(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if li.LinkDropped == 0 {
		t.Fatal("lossy link dropped nothing over 100 probes")
	}
	if li.BrowserLoss == 0 {
		t.Fatal("tool observed no loss despite link drops")
	}
	if math.Abs(li.BrowserLoss-li.WireLoss) > 0.02 {
		t.Fatalf("tool loss %.3f vs wire loss %.3f disagree", li.BrowserLoss, li.WireLoss)
	}
	// Rough calibration: expected end-to-end loss ≈ 1-(0.9)^2 ≈ 0.19
	// (each probe crosses the lossy link twice).
	if li.BrowserLoss < 0.05 || li.BrowserLoss > 0.40 {
		t.Fatalf("loss rate %.3f outside plausible band", li.BrowserLoss)
	}
}

func TestMeasureLossZeroOnCleanLink(t *testing.T) {
	cfg := Config{
		Method:  methods.JavaUDP,
		Profile: browser.Lookup(browser.Chrome, browser.Ubuntu),
		Timing:  browser.NanoTime,
	}
	li, err := MeasureLoss(cfg, 30)
	if err != nil {
		t.Fatal(err)
	}
	if li.BrowserLoss != 0 || li.WireLoss != 0 || li.LinkDropped != 0 {
		t.Fatalf("clean link reported loss: %+v", li)
	}
}

func TestMeasureLossRejectsNonUDP(t *testing.T) {
	cfg := Config{
		Method:  methods.JavaTCP,
		Profile: browser.Lookup(browser.Chrome, browser.Ubuntu),
	}
	if _, err := MeasureLoss(cfg, 10); err == nil {
		t.Fatal("expected error for TCP loss measurement")
	}
}

func TestTrainRTTsReasonable(t *testing.T) {
	tb := testbed.New(testbed.Config{Seed: 9})
	r := &methods.Runner{TB: tb, Profile: browser.Lookup(browser.Chrome, browser.Ubuntu), Timing: browser.NanoTime}
	train, err := r.RunTrain(methods.WebSocket, 15)
	if err != nil {
		t.Fatal(err)
	}
	rtts := train.BrowserRTTs()
	if len(rtts) != 15 {
		t.Fatalf("answered probes = %d, want 15", len(rtts))
	}
	for i, rtt := range rtts {
		if rtt < 50*time.Millisecond || rtt > 60*time.Millisecond {
			t.Fatalf("probe %d RTT = %v", i, rtt)
		}
	}
	if train.LossRate() != 0 {
		t.Fatalf("loss rate = %v on clean link", train.LossRate())
	}
}

func TestTrainHTTPSequential(t *testing.T) {
	tb := testbed.New(testbed.Config{Seed: 10})
	r := &methods.Runner{TB: tb, Profile: browser.Lookup(browser.Firefox, browser.Ubuntu), Timing: browser.NanoTime}
	train, err := r.RunTrain(methods.XHRGet, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.BrowserRTTs()) != 8 {
		t.Fatalf("probes = %d", len(train.BrowserRTTs()))
	}
	// Probes are sequential: timestamps strictly increase.
	for i := 1; i < len(train.TBs); i++ {
		if train.TBs[i] <= train.TBs[i-1] {
			t.Fatalf("train timestamps not increasing at %d", i)
		}
	}
}

func TestKSDistinguishesTimingAPIs(t *testing.T) {
	// Quantitative version of the Figure 4 claim: on Windows, the Δd
	// distributions under getTime and nanoTime differ significantly;
	// on Ubuntu (steady 1 ms granularity on a multi-ms overhead) the two
	// XHR distributions are statistically indistinguishable.
	winGet := quickExp(t, methods.JavaTCP, browser.Chrome, browser.Windows, browser.GetTime, 40)
	winNano := quickExp(t, methods.JavaTCP, browser.Chrome, browser.Windows, browser.NanoTime, 40)
	if !stats.KSDifferent(winGet.Overheads(1), winNano.Overheads(1)) {
		t.Error("Windows getTime vs nanoTime distributions should differ")
	}

	// Control: split one experiment's Δd2 samples into even and odd runs —
	// the same distribution by construction — and expect no KS flag.
	exp, err := Run(Config{Method: methods.XHRGet, Profile: browser.Lookup(browser.Chrome, browser.Ubuntu),
		Timing: browser.NanoTime, Runs: 80, Testbed: testbed.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var even, odd []float64
	for _, s := range exp.Samples {
		if s.Round != 2 {
			continue
		}
		v := float64(s.Overhead) / 1e6
		if s.Run%2 == 0 {
			even = append(even, v)
		} else {
			odd = append(odd, v)
		}
	}
	if stats.KSDifferent(even, odd) {
		t.Error("two halves of the same cell flagged as different distributions")
	}
}
