package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/browsermetric/browsermetric/internal/methods"
)

// MarkdownReport renders a complete study as a self-contained Markdown
// document: the configuration matrix, a median-overhead matrix (the
// compact form of Figure 3), per-method calibration verdicts and the
// derived Section 5 recommendations.
func MarkdownReport(st *Study) string {
	var b strings.Builder
	b.WriteString("# Browser-based RTT measurement: delay-overhead appraisal\n\n")
	fmt.Fprintf(&b, "Methods: %d · Browser×OS combos: %d · Runs per cell: %d · Timing API: %v\n\n",
		len(st.Options.Methods), len(st.Options.Profiles), orDefault(st.Options.Runs, 50), st.Options.Timing)

	// Configuration matrix (Table 2).
	b.WriteString("## Environments (Table 2)\n\n")
	b.WriteString("| OS | Browser | Version | Flash | Java | WebSocket |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, p := range st.Options.Profiles {
		ws := "yes"
		if !p.WebSocket {
			ws = "no"
		}
		fmt.Fprintf(&b, "| %v | %v | %s | %s | %s | %s |\n",
			p.OS, p.Browser, p.Version, p.FlashVersion, p.JavaVersion, ws)
	}

	// Median overhead matrix (compact Figure 3).
	b.WriteString("\n## Median delay overhead Δd2 (Δd1) in ms — compact Figure 3\n\n")
	b.WriteString("| Method |")
	for _, p := range st.Options.Profiles {
		fmt.Fprintf(&b, " %s |", p.Label())
	}
	b.WriteString("\n|---|")
	b.WriteString(strings.Repeat("---|", len(st.Options.Profiles)))
	b.WriteString("\n")
	for _, kind := range st.Options.Methods {
		spec := methods.Get(kind)
		fmt.Fprintf(&b, "| %s |", spec.Name)
		for _, p := range st.Options.Profiles {
			c := st.Cell(kind, p.Label())
			if c == nil || c.Skipped {
				b.WriteString(" — |")
				continue
			}
			fmt.Fprintf(&b, " %.1f (%.1f) |", c.Exp.MedianOverhead(2), c.Exp.MedianOverhead(1))
		}
		b.WriteString("\n")
	}

	// Calibration verdicts.
	b.WriteString("\n## Calibration verdicts (Δd2 stability)\n\n")
	b.WriteString("| Method | Combos calibratable | Worst IQR (ms) |\n|---|---|---|\n")
	for _, kind := range st.Options.Methods {
		cells := st.MethodCells(kind)
		if len(cells) == 0 {
			continue
		}
		ok := 0
		worst := 0.0
		for _, c := range cells {
			cal := c.Exp.Calibrate()
			if cal.Calibratable(2) {
				ok++
			}
			if iqr := cal.IQR[1]; iqr > worst {
				worst = iqr
			}
		}
		fmt.Fprintf(&b, "| %s | %d/%d | %.2f |\n", methods.Get(kind).Name, ok, len(cells), worst)
	}

	// Recommendations.
	rec := Recommend(st)
	b.WriteString("\n## Recommendations (derived Section 5)\n\n")
	fmt.Fprintf(&b, "- **Best method overall:** %v\n", rec.BestMethod)
	fmt.Fprintf(&b, "- **Best plugin-free method:** %v\n", rec.BestNative)
	oses := make([]string, 0, len(rec.BestBrowser))
	for os := range rec.BestBrowser {
		oses = append(oses, os)
	}
	sort.Strings(oses)
	for _, os := range oses {
		fmt.Fprintf(&b, "- **Preferred browser on %s:** %v\n", os, rec.BestBrowser[os])
	}
	if len(rec.AvoidMethods) > 0 {
		names := make([]string, len(rec.AvoidMethods))
		for i, k := range rec.AvoidMethods {
			names[i] = methods.Get(k).Name
		}
		fmt.Fprintf(&b, "- **Avoid (uncalibratable):** %s\n", strings.Join(names, ", "))
	}
	for _, n := range rec.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	return b.String()
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
