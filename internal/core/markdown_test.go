package core

import (
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/methods"
)

func TestMarkdownReport(t *testing.T) {
	st, err := RunStudy(StudyOptions{
		Methods: []methods.Kind{methods.WebSocket, methods.FlashGet, methods.JavaTCP},
		Runs:    6,
		Gap:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	md := MarkdownReport(st)
	for _, want := range []string{
		"# Browser-based RTT measurement",
		"## Environments (Table 2)",
		"| OS | Browser |",
		"## Median delay overhead",
		"| WebSocket |",
		"| Flash GET |",
		"## Calibration verdicts",
		"## Recommendations",
		"**Best method overall:**",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Skipped WebSocket cells (IE/Safari) render as em dashes.
	if !strings.Contains(md, "—") {
		t.Error("skipped cells not marked")
	}
	// Every table row is well-formed (equal pipe counts in the matrix).
	var header string
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "| Method |") {
			header = line
		}
		if header != "" && strings.HasPrefix(line, "| WebSocket |") {
			if strings.Count(line, "|") != strings.Count(header, "|") {
				t.Errorf("row column count mismatch:\n%s\n%s", header, line)
			}
		}
	}
}

func TestMarkdownReportOrDefault(t *testing.T) {
	if orDefault(0, 50) != 50 || orDefault(7, 50) != 7 {
		t.Fatal("orDefault broken")
	}
}
