package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/clock"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/stats"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

// Table1 renders the method taxonomy (paper Table 1).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: browser-based network measurement methods\n")
	fmt.Fprintf(&b, "%-24s %-12s %-10s %-12s %-11s %-16s %s\n",
		"Method", "Technology", "Approach", "Availability", "SameOrigin", "Metrics", "Tools/Services")
	for _, s := range methods.All() {
		fmt.Fprintf(&b, "%-24s %-12s %-10s %-12s %-11s %-16s %s\n",
			s.Name, s.Technology, s.Transport, s.Availability, s.SameOrigin, s.Metrics, s.Tools)
	}
	return b.String()
}

// Table2 renders the browser/system matrix (paper Table 2).
func Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: browser and system configurations\n")
	fmt.Fprintf(&b, "%-8s %-9s %-9s %-10s %-6s %s\n", "OS", "Browser", "Version", "Flash", "Java", "WebSocket")
	for _, p := range browser.Profiles() {
		ws := "yes"
		if !p.WebSocket {
			ws = "no"
		}
		fmt.Fprintf(&b, "%-8s %-9s %-9s %-10s %-6s %s\n",
			p.OS, p.Browser, p.Version, p.FlashVersion, p.JavaVersion, ws)
	}
	return b.String()
}

// Fig3 renders the Figure 3 box summaries: for each method, one row per
// browser×OS×round with the five-number summary of Δd (ms).
func Fig3(st *Study) string {
	var b strings.Builder
	sub := 'a'
	for _, spec := range methods.Compared() {
		cells := st.MethodCells(spec.Kind)
		if len(cells) == 0 {
			continue
		}
		fmt.Fprintf(&b, "Figure 3(%c): %s — delay overhead (ms)\n", sub, spec.Name)
		sub++
		fmt.Fprintf(&b, "  %-10s %-4s %8s %8s %8s %8s %8s %9s\n",
			"combo", "Δd", "whisLo", "q1", "median", "q3", "whisHi", "outliers")
		for _, c := range cells {
			for round := 1; round <= methods.Rounds; round++ {
				box := c.Exp.Box(round)
				fmt.Fprintf(&b, "  %-10s Δd%-2d %8.2f %8.2f %8.2f %8.2f %8.2f %9d\n",
					c.Profile.Label(), round,
					box.WhiskerLo, box.Q1, box.Median, box.Q3, box.WhiskerHi, len(box.Outliers))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig3ASCII renders Figure 3 as terminal box-plot art: one panel per
// method, one row per combo and round, on a shared millisecond scale.
func Fig3ASCII(st *Study, width int) string {
	var b strings.Builder
	sub := 'a'
	for _, spec := range methods.Compared() {
		cells := st.MethodCells(spec.Kind)
		if len(cells) == 0 {
			continue
		}
		fmt.Fprintf(&b, "Figure 3(%c): %s — Δd (ms)\n", sub, spec.Name)
		sub++
		var labels []string
		var boxes []stats.Box
		for _, c := range cells {
			for round := 1; round <= methods.Rounds; round++ {
				labels = append(labels, fmt.Sprintf("%s Δd%d", c.Profile.Label(), round))
				boxes = append(boxes, c.Exp.Box(round))
			}
		}
		b.WriteString(stats.RenderBoxes(labels, boxes, width))
		b.WriteByte('\n')
	}
	return b.String()
}

// ImpactReport runs the jitter/throughput/loss impact experiments for a
// representative method set on one profile and renders the comparison —
// the Section 2.2 claims made measurable.
func ImpactReport(prof *browser.Profile, timing browser.TimingFunc) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Derived-metric impact on %s (%v)\n", prof.Label(), timing)

	fmt.Fprintf(&b, "\nJitter inflation (20-probe trains; wire jitter ~0 on the clean testbed):\n")
	for _, kind := range []methods.Kind{methods.XHRGet, methods.FlashGet, methods.WebSocket, methods.JavaTCP} {
		if !prof.Supports(methods.Get(kind).API) {
			continue
		}
		ji, err := MeasureJitter(Config{Method: kind, Profile: prof, Timing: timing}, 20)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-26s browser %6.2f ms  wire %5.2f ms  inflation %6.2f ms\n",
			methods.Get(kind).Name, ji.BrowserJitter, ji.WireJitter, ji.Inflation())
	}

	fmt.Fprintf(&b, "\nRound-trip throughput bias (256 KiB transfer):\n")
	for _, kind := range []methods.Kind{methods.XHRGet, methods.WebSocket, methods.JavaTCP} {
		if !prof.Supports(methods.Get(kind).API) {
			continue
		}
		ti, err := MeasureThroughput(Config{Method: kind, Profile: prof, Timing: timing}, 256<<10)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-26s browser %7.2f Mbit/s  wire %7.2f Mbit/s  bias %5.1f%%\n",
			methods.Get(kind).Name, ti.BrowserMbps, ti.WireMbps, 100*ti.Bias())
	}

	fmt.Fprintf(&b, "\nLoss agreement (Java UDP, 100 probes, 10%% injected frame loss):\n")
	li, err := MeasureLoss(Config{
		Method: methods.JavaUDP, Profile: prof, Timing: timing,
		Testbed: testbed.Config{Seed: 4242, LossRate: 0.10},
	}, 100)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  tool-reported %.1f%%  capture-observed %.1f%%  (link dropped %d frames)\n",
		100*li.BrowserLoss, 100*li.WireLoss, li.LinkDropped)
	fmt.Fprintf(&b, "  -> delay overheads do not distort loss measurement (Section 2)\n")
	return b.String(), nil
}

// Fig4Row summarizes one CDF line of Figure 4.
type Fig4Row struct {
	Label  string
	Round  int
	P10    float64
	Median float64
	P90    float64
	Levels []float64 // discrete levels (ms), the granularity signature
}

// Fig4 runs the Figure 4 experiment — Java applet TCP socket on Windows
// with Date.getTime() — across the five browsers (a) and the appletviewer
// control (b), returning the rendered report and the rows.
func Fig4(runs int) (string, []Fig4Row, error) {
	if runs <= 0 {
		runs = 50
	}
	profiles := []*browser.Profile{
		browser.Lookup(browser.Chrome, browser.Windows),
		browser.Lookup(browser.Firefox, browser.Windows),
		browser.Lookup(browser.IE, browser.Windows),
		browser.Lookup(browser.Opera, browser.Windows),
		browser.Lookup(browser.Safari, browser.Windows),
		browser.AppletviewerProfile(),
	}
	var rows []Fig4Row
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: CDF of Δd, Java applet TCP socket on Windows (Date.getTime)\n")
	for i, p := range profiles {
		exp, err := Run(Config{
			Method:  methods.JavaTCP,
			Profile: p,
			Timing:  browser.GetTime,
			Runs:    runs,
			Testbed: testbed.Config{Seed: int64(100 + i)},
		})
		if err != nil {
			return "", nil, err
		}
		part := "(a) in browsers"
		if p.Browser == browser.Appletviewer {
			part = "(b) appletviewer control"
		}
		for round := 1; round <= methods.Rounds; round++ {
			sm := exp.roundSamples(round)
			cdf := sm.CDF()
			centers, counts := sm.Levels(3)
			var levels []float64
			for j, ctr := range centers {
				if counts[j] >= runs/20 {
					levels = append(levels, ctr)
				}
			}
			row := Fig4Row{
				Label:  p.Label(),
				Round:  round,
				P10:    cdf.Quantile(0.10),
				Median: cdf.Quantile(0.50),
				P90:    cdf.Quantile(0.90),
				Levels: levels,
			}
			rows = append(rows, row)
			fmt.Fprintf(&b, "  %-26s %-7s Δd%d  p10=%7.2f  median=%7.2f  p90=%7.2f  levels=%s\n",
				part, p.Label(), round, row.P10, row.Median, row.P90, fmtLevels(levels))
		}
	}
	return b.String(), rows, nil
}

// Fig4ASCII renders the Figure 4 CDFs as terminal decile bars for the
// headline environments (one browser plus the appletviewer control).
func Fig4ASCII(runs int, width int) (string, error) {
	if runs <= 0 {
		runs = 50
	}
	var b strings.Builder
	b.WriteString("Figure 4 (ASCII): Δd CDFs, Java TCP socket on Windows, Date.getTime\n\n")
	for i, p := range []*browser.Profile{
		browser.Lookup(browser.Firefox, browser.Windows),
		browser.AppletviewerProfile(),
	} {
		exp, err := Run(Config{
			Method:  methods.JavaTCP,
			Profile: p,
			Timing:  browser.GetTime,
			Runs:    runs,
			Testbed: testbed.Config{Seed: int64(150 + i)},
		})
		if err != nil {
			return "", err
		}
		for round := 1; round <= methods.Rounds; round++ {
			label := fmt.Sprintf("%s Δd%d", p.Label(), round)
			b.WriteString(stats.RenderCDF(label, exp.CDF(round), width))
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

func fmtLevels(ls []float64) string {
	if len(ls) == 0 {
		return "-"
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = fmt.Sprintf("%.1f", l)
	}
	return "{" + strings.Join(parts, ", ") + "}ms"
}

// Fig5 runs the timestamp-granularity probe of Figure 5 against the
// simulated Windows Date.getTime() clock at several points in the regime
// cycle, returning the report and the distinct granularities observed.
func Fig5(points int) (string, []time.Duration) {
	if points <= 0 {
		points = 12
	}
	tb := testbed.New(testbed.Config{Seed: 5})
	prof := browser.Lookup(browser.Chrome, browser.Windows)
	clk := prof.Clock(browser.APIJavaSocket, browser.GetTime, tb.Sim.Now)

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: Date.getTime() granularity probe (Windows)\n")
	seen := map[time.Duration]bool{}
	var distinct []time.Duration
	step := 45 * time.Second
	for i := 0; i < points; i++ {
		g, ok := clock.Probe(clk, func() { tb.Advance(20 * time.Microsecond) }, 0)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  t=%8s  granularity = %v\n", tb.Sim.Now().Round(time.Second), g)
		if !seen[g] {
			seen[g] = true
			distinct = append(distinct, g)
		}
		tb.Advance(step)
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
	fmt.Fprintf(&b, "  distinct granularities: %v\n", distinct)
	return b.String(), distinct
}

// Table3 runs the Flash GET/POST experiment on Opera for both systems and
// renders the median Δd1/Δd2 table (paper Table 3).
func Table3(runs int) (string, map[string][4]float64, error) {
	if runs <= 0 {
		runs = 50
	}
	out := map[string][4]float64{} // label -> [GET d1, GET d2, POST d1, POST d2]
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: median Δd1/Δd2 for the Flash HTTP methods in Opera (ms)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s\n", "combo", "GET Δd1", "GET Δd2", "POST Δd1", "POST Δd2")
	for i, os := range []browser.OS{browser.Windows, browser.Ubuntu} {
		prof := browser.Lookup(browser.Opera, os)
		get, err := Run(Config{Method: methods.FlashGet, Profile: prof, Timing: browser.GetTime,
			Runs: runs, Testbed: testbed.Config{Seed: int64(300 + i)}})
		if err != nil {
			return "", nil, err
		}
		post, err := Run(Config{Method: methods.FlashPost, Profile: prof, Timing: browser.GetTime,
			Runs: runs, Testbed: testbed.Config{Seed: int64(310 + i)}})
		if err != nil {
			return "", nil, err
		}
		vals := [4]float64{
			get.MedianOverhead(1), get.MedianOverhead(2),
			post.MedianOverhead(1), post.MedianOverhead(2),
		}
		out[prof.Label()] = vals
		fmt.Fprintf(&b, "%-8s %10.1f %10.1f %10.1f %10.1f\n", prof.Label(), vals[0], vals[1], vals[2], vals[3])
	}
	return b.String(), out, nil
}

// Table4Cell is one mean ± CI entry of Table 4.
type Table4Cell struct {
	Mean, Half float64
}

// Table4 reruns the Java applet methods on Windows with System.nanoTime()
// and renders mean ± 95% CI per browser and method (paper Table 4).
// Safari runs with the Oracle JRE, as the paper did for this table.
func Table4(runs int) (string, map[string]map[string][2]Table4Cell, error) {
	if runs <= 0 {
		runs = 50
	}
	kinds := []methods.Kind{methods.JavaGet, methods.JavaPost, methods.JavaTCP}
	names := []string{"GET", "POST", "Socket"}
	browsers := []browser.Name{browser.Chrome, browser.Firefox, browser.IE, browser.Opera, browser.Safari}

	out := map[string]map[string][2]Table4Cell{}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: Java applet overheads on Windows with System.nanoTime() (mean ± 95%% CI, ms)\n")
	fmt.Fprintf(&b, "%-9s", "Browser")
	for _, n := range names {
		fmt.Fprintf(&b, " %11s Δd1 %11s Δd2", n, n)
	}
	b.WriteByte('\n')
	for bi, name := range browsers {
		prof := browser.Lookup(name, browser.Windows)
		if name == browser.Safari {
			prof = prof.WithOracleJRE()
		}
		row := map[string][2]Table4Cell{}
		fmt.Fprintf(&b, "%-9s", name)
		for ki, kind := range kinds {
			exp, err := Run(Config{Method: kind, Profile: prof, Timing: browser.NanoTime,
				Runs: runs, Testbed: testbed.Config{Seed: int64(400 + 10*bi + ki)}})
			if err != nil {
				return "", nil, err
			}
			var cells [2]Table4Cell
			for round := 1; round <= 2; round++ {
				m, h := exp.MeanCI(round)
				cells[round-1] = Table4Cell{Mean: m, Half: h}
				fmt.Fprintf(&b, "  %6.2f±%-7.2f", m, h)
			}
			row[names[ki]] = cells
		}
		out[name.String()] = row
		b.WriteByte('\n')
	}
	return b.String(), out, nil
}
