package core

import (
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/clock"
	"github.com/browsermetric/browsermetric/internal/methods"
)

func TestTable1Render(t *testing.T) {
	s := Table1()
	for _, want := range []string{"XHR GET", "WebSocket", "Java applet UDP socket", "Netalyzr", "Speedtest"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	if n := len(strings.Split(strings.TrimSpace(s), "\n")); n != 13 { // title + header + 11 rows
		t.Fatalf("Table 1 has %d lines", n)
	}
}

func TestTable2Render(t *testing.T) {
	s := Table2()
	for _, want := range []string{"Windows", "Ubuntu", "Chrome", "Safari", "11.7.700", "1.6.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	// IE and Safari rows say "no" for WebSocket.
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "IE") || strings.Contains(line, "Safari") {
			if !strings.HasSuffix(strings.TrimSpace(line), "no") {
				t.Errorf("row %q should end with 'no'", line)
			}
		}
	}
}

func TestFig3Render(t *testing.T) {
	st, err := RunStudy(StudyOptions{
		Methods: []methods.Kind{methods.XHRGet, methods.WebSocket},
		Runs:    5,
		Gap:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := Fig3(st)
	if !strings.Contains(s, "Figure 3(a): XHR GET") {
		t.Fatalf("missing subfigure header:\n%s", s)
	}
	if !strings.Contains(s, "C (U)") || !strings.Contains(s, "S (W)") {
		t.Fatal("missing combo rows")
	}
	// WebSocket section must not include IE/Safari.
	wsPart := s[strings.Index(s, "WebSocket"):]
	if strings.Contains(wsPart, "IE (W)") || strings.Contains(wsPart, "S (W)") {
		t.Fatal("WebSocket section lists unsupported browsers")
	}
}

func TestFig4RowsBimodalInBrowsersAndAppletviewer(t *testing.T) {
	report, rows, err := Fig4(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 6 environments × 2 rounds
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	if !strings.Contains(report, "appletviewer control") {
		t.Fatal("missing appletviewer part")
	}
	// The discrete-level signature appears both in browsers and in the
	// appletviewer control (that is the paper's point: the JRE, not the
	// browser, causes it). Check a couple of environments show >= 2 levels.
	multi := 0
	for _, r := range rows {
		if len(r.Levels) >= 2 {
			multi++
		}
	}
	if multi < 4 {
		t.Fatalf("only %d rows show multiple discrete levels:\n%s", multi, report)
	}
	// Appletviewer specifically.
	avMulti := false
	for _, r := range rows {
		if r.Label == "AV (W)" && len(r.Levels) >= 2 {
			avMulti = true
		}
	}
	if !avMulti {
		t.Fatalf("appletviewer rows lack the bimodal signature:\n%s", report)
	}
}

func TestFig5FindsBothGranularities(t *testing.T) {
	report, distinct := Fig5(14)
	if len(distinct) != 2 {
		t.Fatalf("distinct granularities = %v, want two:\n%s", distinct, report)
	}
	if distinct[0] != time.Millisecond || distinct[1] != clock.WindowsTimerPeriod {
		t.Fatalf("granularities = %v, want [1ms %v]", distinct, clock.WindowsTimerPeriod)
	}
}

func TestTable3Shape(t *testing.T) {
	report, vals, err := Table3(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"O (W)", "O (U)"} {
		v, ok := vals[label]
		if !ok {
			t.Fatalf("missing %s in %v", label, vals)
		}
		getD1, getD2, postD1, postD2 := v[0], v[1], v[2], v[3]
		if getD1 < 80 || postD1 < 80 {
			t.Errorf("%s Δd1 = %.1f/%.1f, want > 80 (handshake + overheads)", label, getD1, postD1)
		}
		if getD2 > getD1/2 {
			t.Errorf("%s GET Δd2 = %.1f should be far below Δd1 %.1f", label, getD2, getD1)
		}
		if d := postD2 - 50 - getD2; d < -15 || d > 15 {
			t.Errorf("%s POST Δd2-50 = %.1f should approximate GET Δd2 %.1f", label, postD2-50, getD2)
		}
	}
	if !strings.Contains(report, "GET Δd1") {
		t.Fatal("report missing header")
	}
}

func TestTable4Shape(t *testing.T) {
	report, vals, err := Table4(25)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5 {
		t.Fatalf("browsers = %d, want 5", len(vals))
	}
	for b, row := range vals {
		get, post, sock := row["GET"], row["POST"], row["Socket"]
		// All means positive and small; socket ≈ 0.
		for _, c := range []Table4Cell{get[0], get[1], post[0], post[1], sock[0], sock[1]} {
			if c.Mean < 0 {
				t.Errorf("%s: negative mean %v with nanoTime", b, c.Mean)
			}
			if c.Mean > 10 {
				t.Errorf("%s: mean %.2f too large", b, c.Mean)
			}
		}
		if sock[0].Mean > 0.5 || sock[1].Mean > 0.5 {
			t.Errorf("%s: socket means %.3f/%.3f, want ~0", b, sock[0].Mean, sock[1].Mean)
		}
		// Table 4: GET Δd2 > Δd1 for every browser except Safari, whose
		// Oracle-JRE row has Δd2 (1.52) below Δd1 (1.88).
		if b != "Safari" && !(get[1].Mean > get[0].Mean) {
			t.Errorf("%s: GET Δd2 %.2f should exceed Δd1 %.2f", b, get[1].Mean, get[0].Mean)
		}
		if !(post[1].Mean < post[0].Mean) {
			t.Errorf("%s: POST Δd2 %.2f should be below Δd1 %.2f", b, post[1].Mean, post[0].Mean)
		}
	}
	if !strings.Contains(report, "Safari") {
		t.Fatal("report missing Safari row")
	}
}

func TestFig4ASCII(t *testing.T) {
	art, err := Fig4ASCII(20, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"F (W) Δd1", "AV (W) Δd2", "p100", "#"} {
		if !strings.Contains(art, want) {
			t.Fatalf("ASCII Fig4 missing %q", want)
		}
	}
}
