package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/browsermetric/browsermetric/internal/arena"
	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// CellSeed derives the testbed seed of the (methodIndex, profileIndex)
// cell. It is a pure function of the matrix position so the execution
// schedule — sequential, parallel, or anything in between — cannot
// influence a cell's random stream, which is what makes parallel and
// sequential studies byte-identical.
func CellSeed(base int64, methodIndex, profileIndex int) int64 {
	return base + int64(methodIndex)*97 + int64(profileIndex)*13 + 1
}

// runExperiment indirects the per-cell experiment execution; tests swap it
// to inject failures and stalls without building a broken testbed.
var runExperiment = RunContext

// RunStudy executes the matrix. Unsupported combinations are marked
// Skipped; any other failure aborts the study and is returned.
func RunStudy(opts StudyOptions) (*Study, error) {
	return RunStudyContext(context.Background(), opts)
}

// RunStudyContext executes the matrix on a pool of opts.Workers
// goroutines. Every cell runs on its own freshly built testbed (simulator,
// clock, capture) with a seed derived from its matrix position via
// CellSeed, so no simulation state is shared between workers and results
// are independent of scheduling order; Cells keeps the stable
// method-major ordering regardless of completion order.
//
// Canceling ctx aborts the study and returns ctx.Err(). The first cell
// failure cancels the remaining work and is returned after in-flight
// cells drain ("first" = lowest cell index among the failures observed,
// so the returned error is deterministic too).
func RunStudyContext(ctx context.Context, opts StudyOptions) (*Study, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(opts.Methods) == 0 {
		for _, s := range methods.Compared() {
			opts.Methods = append(opts.Methods, s.Kind)
		}
	}
	if len(opts.Profiles) == 0 {
		opts.Profiles = browser.Profiles()
	}

	total := len(opts.Methods) * len(opts.Profiles)
	st := &Study{Options: opts}
	st.Cells = make([]Cell, total)
	st.Stats.CellWall = make([]time.Duration, total)
	// Prefill every cell's identity so an aborted study still has
	// well-formed (if experiment-less) rows.
	for i := range st.Cells {
		st.Cells[i] = Cell{
			Spec:    methods.Get(opts.Methods[i/len(opts.Profiles)]),
			Profile: opts.Profiles[i%len(opts.Profiles)],
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	st.Stats.Workers = workers
	if total == 0 {
		return st, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan int, total)
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)

	var (
		mu          sync.Mutex // guards st.Stats, firstErr*, and callback order
		firstErr    error
		firstErrIdx = total
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One arena per worker: each cell's testbed draws its hot-path
			// buffers from it, and the slabs recycle cell after cell. The
			// arena is single-goroutine by design, which is exactly the
			// worker's execution model.
			a := arena.New(0)
			for idx := range jobs {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				st.Stats.CellsStarted++
				mu.Unlock()

				mi, pi := idx/len(opts.Profiles), idx%len(opts.Profiles)
				cellStart := time.Now()
				cell, err := runCell(ctx, &opts, mi, pi, a)
				wall := time.Since(cellStart)

				canceled := err != nil && errors.Is(err, context.Canceled) ||
					err != nil && errors.Is(err, context.DeadlineExceeded)
				if canceled {
					// The cell was cut short by cancellation (ours after a
					// failure elsewhere, or the caller's): not a result, not
					// a failure of this cell.
					return
				}

				mu.Lock()
				st.Cells[idx] = cell
				st.Stats.CellWall[idx] = wall
				st.Stats.CellsFinished++
				if cell.Skipped {
					st.Stats.CellsSkipped++
				}
				if cell.Cached {
					st.Stats.CellsCached++
				}
				if err != nil {
					st.Stats.CellsFailed++
					if idx < firstErrIdx {
						firstErr, firstErrIdx = err, idx
					}
				}
				if cb := opts.OnCellDone; cb != nil {
					cb(CellStatus{
						Index:   idx,
						Method:  opts.Methods[mi],
						Profile: opts.Profiles[pi],
						Skipped: cell.Skipped,
						Cached:  cell.Cached,
						Err:     err,
						Wall:    wall,
						Done:    st.Stats.CellsFinished,
						Total:   total,
					})
				}
				mu.Unlock()

				if err != nil {
					cancel() // first-error abort: stop scheduling new cells
				}
			}
		}()
	}
	wg.Wait()
	st.Stats.Wall = time.Since(start)
	mergeStudyMetrics(st, opts.Metrics)

	if firstErr != nil {
		return nil, firstErr
	}
	// cancel() is only invoked above when firstErr was recorded, so a
	// non-nil ctx.Err() here is the caller's cancellation or deadline.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return st, nil
}

// mergeStudyMetrics folds the per-cell registries into the study-level
// registry in matrix order (so the merged floats don't depend on cell
// completion order) and adds the scheduler's own counters. Wall times
// are host time and therefore the one part of a metrics snapshot that
// varies between identical runs.
func mergeStudyMetrics(st *Study, m *obs.Metrics) {
	if m == nil {
		return
	}
	for i := range st.Cells {
		m.Merge(st.Cells[i].Metrics)
		if w := st.Stats.CellWall[i]; w > 0 {
			m.ObserveDur("study_cell_wall_ms", w)
		}
	}
	m.Add("study_cells_started", int64(st.Stats.CellsStarted))
	m.Add("study_cells_finished", int64(st.Stats.CellsFinished))
	m.Add("study_cells_skipped", int64(st.Stats.CellsSkipped))
	m.Add("study_cells_failed", int64(st.Stats.CellsFailed))
	m.Add("study_cells_cached", int64(st.Stats.CellsCached))
	m.Set("study_workers", float64(st.Stats.Workers))
	m.Set("study_wall_ms", float64(st.Stats.Wall)/float64(time.Millisecond))
}

// CellConfig builds the exact configuration cell (mi, pi) of a study
// runs under: the method/profile identity plus every knob that can
// influence the measurement, with the testbed seed derived from the
// matrix position via CellSeed. ok is false when the profile cannot run
// the method (the cell is skipped). It is the single construction site
// for cell configs — the scheduler's runCell and any out-of-process
// executor (the shard runner) both go through it, so a cell is
// content-addressed identically no matter which process computes it.
// opts.Methods and opts.Profiles must already be populated.
func CellConfig(opts *StudyOptions, mi, pi int) (Config, bool) {
	kind := opts.Methods[mi]
	spec := methods.Get(kind)
	prof := opts.Profiles[pi]
	if !prof.Supports(spec.API) {
		return Config{}, false
	}
	cfg := Config{
		Method:  kind,
		Profile: prof,
		Timing:  opts.Timing,
		Runs:    opts.Runs,
		Gap:     opts.Gap,
		Testbed: opts.Testbed,
	}
	cfg.Testbed.Seed = CellSeed(opts.BaseSeed, mi, pi)
	return cfg, true
}

// runCell executes one (method, profile) cell on an isolated testbed.
// a is the calling worker's arena; it backs the cell's hot-path buffers
// and recycles between cells.
func runCell(ctx context.Context, opts *StudyOptions, mi, pi int, a *arena.Arena) (Cell, error) {
	spec := methods.Get(opts.Methods[mi])
	prof := opts.Profiles[pi]
	cell := Cell{Spec: spec, Profile: prof}
	cfg, ok := CellConfig(opts, mi, pi)
	if !ok {
		cell.Skipped = true
		return cell, nil
	}
	// The cache is consulted before the tracer/registry are attached:
	// a hit replays the experiment without observability (the key does
	// not — and must not — depend on Tracer/Metrics, which cannot change
	// any simulated outcome).
	if opts.Cache != nil {
		if exp, ok := opts.Cache.Load(cfg); ok {
			cell.Exp = exp
			cell.Cached = true
			return cell, nil
		}
	}
	cfg.Testbed.Arena = a
	// Each cell gets its own tracer/registry (a Tracer is single-
	// goroutine); the scheduler merges registries in matrix order after
	// the workers drain.
	if opts.Tracing {
		cfg.Tracer = obs.NewTracer()
		cell.Trace = cfg.Tracer
	}
	if opts.Metrics != nil {
		cfg.Metrics = obs.NewMetrics()
		cell.Metrics = cfg.Metrics
	}
	exp, err := runExperiment(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return cell, err
		}
		return cell, fmt.Errorf("core: cell %s / %s: %w", spec.Name, prof.Label(), err)
	}
	cell.Exp = exp
	if opts.Cache != nil {
		// Persist with the observability fields stripped so the stored
		// entry is keyed and reconstructed from the measurement-relevant
		// config alone.
		stored := cfg
		stored.Tracer, stored.Metrics = nil, nil
		stored.Testbed.Arena = nil
		if serr := opts.Cache.Store(stored, exp); serr != nil {
			return cell, fmt.Errorf("core: cell %s / %s: cache store: %w", spec.Name, prof.Label(), serr)
		}
	}
	return cell, nil
}
