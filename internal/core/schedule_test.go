package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
)

// checkNoGoroutineLeak fails the test if goroutines outlive it.
func checkNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// exportBytes renders every study export whose bytes the determinism
// guarantee covers: the full sample CSV, the summary CSV, and the
// Markdown report.
func exportBytes(t *testing.T, st *Study) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := st.SummaryCSV(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(MarkdownReport(st))
	return buf.Bytes()
}

// TestRunStudyDeterminismAcrossWorkers is the headline equivalence test:
// the same StudyOptions executed sequentially, on a small pool, and on a
// GOMAXPROCS-wide pool must export byte-identical CSVs and reports,
// proving the parallel scheduler does not perturb the measurements.
func TestRunStudyDeterminismAcrossWorkers(t *testing.T) {
	checkNoGoroutineLeak(t)
	base := StudyOptions{Runs: 3, Gap: time.Second, BaseSeed: 42}

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var want []byte
	for _, w := range workerCounts {
		opts := base
		opts.Workers = w
		st, err := RunStudy(opts)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		got := exportBytes(t, st)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Workers=%d exports differ from Workers=%d (%d vs %d bytes)",
				w, workerCounts[0], len(got), len(want))
		}
	}
}

// TestRunStudyStatsAndCallback checks the scheduler's observability
// surface: counters add up and OnCellDone fires exactly once per cell
// with monotonically complete Done/Total counters.
func TestRunStudyStatsAndCallback(t *testing.T) {
	checkNoGoroutineLeak(t)
	seen := map[int]int{}
	var violations []string
	maxDone := 0
	opts := StudyOptions{
		Runs: 1, Gap: time.Second, Workers: 3,
		OnCellDone: func(cs CellStatus) {
			seen[cs.Index]++
			// Serialized callbacks must report Done = 1..Total in order.
			if cs.Done != maxDone+1 || cs.Done > cs.Total {
				violations = append(violations,
					fmt.Sprintf("Done=%d after %d (Total=%d)", cs.Done, maxDone, cs.Total))
			}
			maxDone = cs.Done
			if cs.Err != nil {
				violations = append(violations, fmt.Sprintf("cell %d: unexpected Err %v", cs.Index, cs.Err))
			}
		},
	}
	st, err := RunStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	total := len(st.Options.Methods) * len(st.Options.Profiles)
	if got := len(st.Cells); got != total {
		t.Fatalf("got %d cells, want %d", got, total)
	}
	for _, v := range violations {
		t.Errorf("OnCellDone: %s", v)
	}
	if len(seen) != total {
		t.Errorf("OnCellDone fired for %d distinct cells, want %d", len(seen), total)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("cell %d: OnCellDone fired %d times", idx, n)
		}
	}
	if maxDone != total {
		t.Errorf("last Done = %d, want %d", maxDone, total)
	}

	s := st.Stats
	if s.Workers != 3 {
		t.Errorf("Stats.Workers = %d, want 3", s.Workers)
	}
	if s.CellsStarted != total || s.CellsFinished != total {
		t.Errorf("started/finished = %d/%d, want %d/%d", s.CellsStarted, s.CellsFinished, total, total)
	}
	if s.CellsFailed != 0 {
		t.Errorf("CellsFailed = %d, want 0", s.CellsFailed)
	}
	// The default matrix skips WebSocket on the two non-WebSocket
	// browsers (IE 9 and Safari 5 on Windows).
	if s.CellsSkipped != 2 {
		t.Errorf("CellsSkipped = %d, want 2", s.CellsSkipped)
	}
	if len(s.CellWall) != total {
		t.Fatalf("len(CellWall) = %d, want %d", len(s.CellWall), total)
	}
	for i, c := range st.Cells {
		if !c.Skipped && s.CellWall[i] <= 0 {
			t.Errorf("cell %d: executed but CellWall = %v", i, s.CellWall[i])
		}
	}
	if s.Wall <= 0 {
		t.Errorf("Stats.Wall = %v, want > 0", s.Wall)
	}
}

// stubExperiments swaps the per-cell experiment runner for fn and restores
// it when the test ends.
func stubExperiments(t *testing.T, fn func(context.Context, Config) (*Experiment, error)) {
	t.Helper()
	old := runExperiment
	runExperiment = fn
	t.Cleanup(func() { runExperiment = old })
}

// TestRunStudyFirstErrorAbort: a failing cell cancels the rest of the
// study promptly, the first (lowest-index) error is returned, and no
// goroutines leak.
func TestRunStudyFirstErrorAbort(t *testing.T) {
	checkNoGoroutineLeak(t)
	sentinel := errors.New("cell exploded")
	var started atomic.Int32
	stubExperiments(t, func(ctx context.Context, cfg Config) (*Experiment, error) {
		started.Add(1)
		if cfg.Method == methods.XHRGet {
			return nil, sentinel
		}
		select { // later cells are slow, so the abort has someone to beat
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
		return &Experiment{Config: cfg}, nil
	})

	prof := browser.Lookup(browser.Chrome, browser.Ubuntu)
	opts := StudyOptions{
		// XHRGet is cell 0 — the failure the scheduler must report.
		Methods:  []methods.Kind{methods.XHRGet, methods.DOM, methods.WebSocket, methods.JavaTCP},
		Profiles: []*browser.Profile{prof, prof, prof, prof, prof},
		Workers:  2,
	}
	st, err := RunStudyContext(context.Background(), opts)
	if st != nil {
		t.Fatalf("got study %v, want nil on failure", st)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if want := "core: cell XHR GET / C (U)"; !strings.Contains(err.Error(), want) {
		t.Errorf("err = %q, want it to name %q", err, want)
	}
	if n := int(started.Load()); n >= 20 {
		t.Errorf("abort was not prompt: %d of 20 cells started", n)
	}
}

// TestRunStudyFirstErrorDeterministic: when several cells fail, the
// lowest-indexed failure is returned regardless of completion order.
func TestRunStudyFirstErrorDeterministic(t *testing.T) {
	checkNoGoroutineLeak(t)
	errA := errors.New("error A")
	errB := errors.New("error B")
	stubExperiments(t, func(ctx context.Context, cfg Config) (*Experiment, error) {
		switch cfg.Method {
		case methods.XHRGet: // cell 0: slow failure
			time.Sleep(10 * time.Millisecond)
			return nil, errA
		case methods.DOM: // cell 1: fast failure
			return nil, errB
		}
		return &Experiment{Config: cfg}, nil
	})
	prof := browser.Lookup(browser.Chrome, browser.Ubuntu)
	opts := StudyOptions{
		Methods:  []methods.Kind{methods.XHRGet, methods.DOM},
		Profiles: []*browser.Profile{prof},
		Workers:  2,
	}
	_, err := RunStudyContext(context.Background(), opts)
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the lowest-indexed failure (error A)", err)
	}
}

// TestRunStudyContextCanceled: a canceled context aborts the study,
// returns context.Canceled, and leaks no goroutines.
func TestRunStudyContextCanceled(t *testing.T) {
	checkNoGoroutineLeak(t)

	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		st, err := RunStudyContext(ctx, StudyOptions{Runs: 1, Workers: 2})
		if st != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("got (%v, %v), want (nil, context.Canceled)", st, err)
		}
	})

	t.Run("mid-study", func(t *testing.T) {
		release := make(chan struct{})
		var once atomic.Bool
		stubExperiments(t, func(ctx context.Context, cfg Config) (*Experiment, error) {
			if once.CompareAndSwap(false, true) {
				close(release) // first cell is in flight: cancel now
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return &Experiment{Config: cfg}, nil
			}
		})
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-release
			cancel()
		}()
		start := time.Now()
		st, err := RunStudyContext(ctx, StudyOptions{Runs: 1, Workers: 4})
		if st != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("got (%v, %v), want (nil, context.Canceled)", st, err)
		}
		if wall := time.Since(start); wall > 2*time.Second {
			t.Errorf("cancellation took %v, want prompt abort", wall)
		}
	})
}

// TestRunContextCancelBetweenRuns: the single-cell runner also honours
// cancellation, so even a one-cell study aborts within a repetition.
func TestRunContextCancelBetweenRuns(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{
		Method:  methods.WebSocket,
		Profile: browser.Lookup(browser.Chrome, browser.Ubuntu),
		Runs:    3,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCellSeedPure: the seed depends only on (base, mi, pi) — the
// invariant the determinism guarantee rests on — and matches the
// historical sequential derivation.
func TestCellSeedPure(t *testing.T) {
	if got, want := CellSeed(0, 0, 0), int64(1); got != want {
		t.Errorf("CellSeed(0,0,0) = %d, want %d", got, want)
	}
	if got, want := CellSeed(1000, 3, 5), int64(1000+3*97+5*13+1); got != want {
		t.Errorf("CellSeed(1000,3,5) = %d, want %d", got, want)
	}
	// Distinct cells of the default matrix get distinct seeds.
	seen := map[int64]string{}
	for mi := 0; mi < 10; mi++ {
		for pi := 0; pi < 8; pi++ {
			s := CellSeed(7, mi, pi)
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: (%d,%d) and %s both map to %d", mi, pi, prev, s)
			}
			seen[s] = fmt.Sprintf("(%d,%d)", mi, pi)
		}
	}
}
