package core

import (
	"fmt"
	"strings"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/stats"
)

// ServerOverhead is the paper's named extension (Section 7): the delay
// the *server side* adds to a measured RTT. In the Eq. 1 framing the
// server's processing time is invisible to the client-side Δd — it sits
// inside the wire RTT — so a browser tool over-reports the *network* RTT
// by exactly the server's processing time even when its own overhead is
// calibrated away.
type ServerOverhead struct {
	ParseCost time.Duration
	// WireRTT is the median wire RTT observed at the client capture.
	WireRTT time.Duration
	// PathRTT is the pure path RTT (testbed delay, no processing).
	PathRTT time.Duration
	// ClientOverhead is the client-side Δd2 median for reference.
	ClientOverhead float64 // ms
}

// ServerShare is the portion of the wire RTT the server processing
// contributes.
func (s ServerOverhead) ServerShare() time.Duration { return s.WireRTT - s.PathRTT }

// MeasureServerOverhead sweeps server processing cost and shows where it
// lands: the wire RTT absorbs it one-for-one while the client-side Δd
// stays put. cfg.Method must be an HTTP method (the server cost applies
// to HTTP request handling).
func MeasureServerOverhead(cfg Config, parseCosts []time.Duration) ([]ServerOverhead, error) {
	cfg.fillDefaults()
	if cfg.Profile == nil {
		return nil, fmt.Errorf("core: Config.Profile is nil")
	}
	if methods.Get(cfg.Method).Transport != methods.TransportHTTP {
		return nil, fmt.Errorf("core: server overhead sweep needs an HTTP method")
	}
	if len(parseCosts) == 0 {
		parseCosts = []time.Duration{0, 2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond}
	}
	out := make([]ServerOverhead, 0, len(parseCosts))
	for i, pc := range parseCosts {
		c := cfg
		c.Testbed.ServerParseCost = pc
		c.Testbed.Seed = cfg.Testbed.Seed + int64(i) + 1
		exp, err := Run(c)
		if err != nil {
			return nil, err
		}
		var wires []float64
		for _, s := range exp.Samples {
			if s.Round == 2 {
				wires = append(wires, stats.Ms(s.WireRTT))
			}
		}
		out = append(out, ServerOverhead{
			ParseCost:      pc,
			WireRTT:        time.Duration(stats.Median(wires) * float64(time.Millisecond)),
			PathRTT:        50 * time.Millisecond,
			ClientOverhead: exp.MedianOverhead(2),
		})
	}
	return out, nil
}

// ServerOverheadReport renders the sweep.
func ServerOverheadReport(prof *browser.Profile, timing browser.TimingFunc, runs int) (string, error) {
	cfg := Config{Method: methods.XHRGet, Profile: prof, Timing: timing, Runs: runs}
	rows, err := MeasureServerOverhead(cfg, nil)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Server-side overhead sweep (XHR GET on %s, %d runs/point)\n", prof.Label(), runs)
	fmt.Fprintf(&b, "  %-12s %12s %14s %16s\n", "parse cost", "wire RTT", "server share", "client Δd2 (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12v %12v %14v %16.2f\n", r.ParseCost, r.WireRTT.Round(10*time.Microsecond),
			r.ServerShare().Round(10*time.Microsecond), r.ClientOverhead)
	}
	b.WriteString("  -> server processing inflates the wire RTT one-for-one; the client-side Δd is unchanged.\n")
	b.WriteString("     Client-side calibration cannot remove it: measuring it needs a server-side tap.\n")
	return b.String(), nil
}
