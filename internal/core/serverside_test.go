package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
)

func TestServerOverheadSweep(t *testing.T) {
	cfg := Config{
		Method:  methods.XHRGet,
		Profile: browser.Lookup(browser.Chrome, browser.Ubuntu),
		Timing:  browser.NanoTime,
		Runs:    8,
	}
	costs := []time.Duration{0, 5 * time.Millisecond, 10 * time.Millisecond}
	rows, err := MeasureServerOverhead(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Wire RTT absorbs the parse cost one-for-one (±1 ms).
		want := 50*time.Millisecond + costs[i]
		if d := r.WireRTT - want; d < -time.Millisecond || d > time.Millisecond {
			t.Errorf("parse=%v: wire RTT %v, want ~%v", costs[i], r.WireRTT, want)
		}
		// ServerShare tracks the injected cost.
		if d := r.ServerShare() - costs[i]; d < -time.Millisecond || d > time.Millisecond {
			t.Errorf("parse=%v: server share %v", costs[i], r.ServerShare())
		}
	}
	// Client overhead stays flat across the sweep.
	spread := math.Abs(rows[2].ClientOverhead - rows[0].ClientOverhead)
	if spread > 4 {
		t.Errorf("client Δd2 moved by %.2f ms across server sweep", spread)
	}
}

func TestServerOverheadRejectsSocketMethods(t *testing.T) {
	cfg := Config{
		Method:  methods.JavaTCP,
		Profile: browser.Lookup(browser.Chrome, browser.Ubuntu),
	}
	if _, err := MeasureServerOverhead(cfg, nil); err == nil {
		t.Fatal("expected error for socket method")
	}
}

func TestServerOverheadReport(t *testing.T) {
	report, err := ServerOverheadReport(browser.Lookup(browser.Firefox, browser.Windows), browser.NanoTime, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"parse cost", "server share", "one-for-one"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}
