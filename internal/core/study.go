package core

import (
	"sort"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/stats"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

// StudyOptions configures a full measurement matrix (Figure 3: every
// method crossed with every browser×OS combo).
type StudyOptions struct {
	// Methods defaults to the paper's ten compared methods.
	Methods []methods.Kind
	// Profiles defaults to the Table 2 matrix.
	Profiles []*browser.Profile
	// Timing defaults to Date.getTime (the paper's tool default).
	Timing browser.TimingFunc
	// Runs per cell (default 50) and Gap between runs (default 10 s).
	Runs int
	Gap  time.Duration
	// BaseSeed decorrelates cells deterministically: each cell's testbed
	// seed is CellSeed(BaseSeed, methodIndex, profileIndex), a pure
	// function of the cell's matrix position, never of execution order.
	BaseSeed int64
	// Testbed overrides testbed parameters for every cell (e.g. a
	// ServerDelay sweep across the whole matrix). The per-cell Seed is
	// always derived from BaseSeed and overrides Testbed.Seed.
	Testbed testbed.Config
	// Workers caps how many cells execute concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 reproduces the historical strictly
	// sequential runner. Results are byte-identical for any value —
	// every cell runs on its own isolated testbed with a position-derived
	// seed — so Workers trades wall-clock time only.
	Workers int
	// OnCellDone, if non-nil, is invoked once per cell (including skipped
	// and failed cells) as it completes. Calls are serialized and arrive
	// in completion order, which under concurrency is not matrix order;
	// use CellStatus.Index for the stable position. Keep it fast: the
	// scheduler holds its bookkeeping lock during the call.
	OnCellDone func(CellStatus)
	// Tracing gives every executed cell its own virtual-time span tracer
	// (Cell.Trace), exportable via Study.WriteChromeTrace. Observational
	// only: results are byte-identical with tracing on or off.
	Tracing bool
	// Metrics, when non-nil, receives the merged per-cell metrics plus
	// the scheduler's own counters (study_cells_*, study_cell_wall_ms).
	// Cells are merged in matrix order regardless of completion order.
	Metrics *obs.Metrics
	// Cache, when non-nil, short-circuits cells whose full configuration
	// (method, profile, timing, runs, seed, testbed knobs, fault profile)
	// has a cached result, and persists freshly computed cells. The
	// determinism contract extends through it: a cached replay exports
	// byte-identically to recomputation. Cached cells carry no Trace or
	// Metrics — caching trades the observability stream for wall time.
	Cache CellCache
}

// CellCache caches completed cell experiments, keyed by the cell's full
// configuration. The content-addressed disk implementation lives in
// internal/sweep. Load and Store are called concurrently from study
// workers and must be safe for that.
type CellCache interface {
	// Load returns the cached experiment for cfg, or ok=false. Unreadable
	// or corrupt entries must be reported as misses (never errors): the
	// scheduler recomputes on a miss, which is always sound.
	Load(cfg Config) (exp *Experiment, ok bool)
	// Store persists a completed cell. A Store error aborts the study —
	// silently dropping a cell from a resumable sweep would be worse.
	Store(cfg Config, exp *Experiment) error
}

// CellStatus describes one completed cell for progress reporting.
type CellStatus struct {
	// Index is the cell's position in the stable Study.Cells ordering.
	Index   int
	Method  methods.Kind
	Profile *browser.Profile
	Skipped bool
	// Cached reports the cell was served from StudyOptions.Cache.
	Cached bool
	// Err is the cell's failure, nil for completed and skipped cells.
	Err error
	// Wall is host (not virtual) time spent executing the cell.
	Wall time.Duration
	// Done of Total cells have completed when the callback fires.
	Done, Total int
}

// StudyStats are the scheduler's observability counters.
type StudyStats struct {
	// Workers is the resolved concurrency the study ran with.
	Workers int
	// CellsStarted counts cells handed to a worker; CellsFinished counts
	// cells that ran to completion (including skips). They differ only
	// when the study aborted early.
	CellsStarted  int
	CellsFinished int
	CellsSkipped  int
	CellsFailed   int
	// CellsCached counts cells served from StudyOptions.Cache instead of
	// being recomputed (a subset of CellsFinished).
	CellsCached int
	// Wall is total host wall time; CellWall is per-cell host wall time
	// indexed like Study.Cells (zero for cells never started).
	Wall     time.Duration
	CellWall []time.Duration
}

// Cell is one (method, profile) experiment of a study.
type Cell struct {
	Spec    methods.Spec
	Profile *browser.Profile
	Exp     *Experiment
	// Skipped is set when the profile cannot run the method (e.g.
	// WebSocket on IE 9) — such cells are absent from the paper's figures
	// rather than failures.
	Skipped bool
	// Cached is set when the cell was replayed from StudyOptions.Cache;
	// its Exp is then byte-equivalent to a recomputation but carries no
	// Trace or Metrics.
	Cached bool
	// Trace holds the cell's span tracer when StudyOptions.Tracing was
	// set (nil otherwise, and for skipped cells).
	Trace *obs.Tracer
	// Metrics holds the cell's own registry when StudyOptions.Metrics
	// was set; the same data is already merged into the study registry.
	Metrics *obs.Metrics
}

// Study is a completed matrix.
type Study struct {
	Options StudyOptions
	Cells   []Cell
	// Stats reports what the scheduler did (concurrency, counters,
	// per-cell wall time).
	Stats StudyStats
}

// Cell returns the cell for (method, profile label), or nil.
func (s *Study) Cell(kind methods.Kind, label string) *Cell {
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Spec.Kind == kind && c.Profile.Label() == label {
			return c
		}
	}
	return nil
}

// MethodCells returns the non-skipped cells of one method in profile order.
func (s *Study) MethodCells(kind methods.Kind) []*Cell {
	var out []*Cell
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Spec.Kind == kind && !c.Skipped {
			out = append(out, c)
		}
	}
	return out
}

// Calibration summarizes an experiment for overhead correction.
type Calibration struct {
	Method methods.Kind
	Label  string // browser×OS label
	// MedianOverhead and IQR are indexed by round-1, in ms.
	MedianOverhead [methods.Rounds]float64
	IQR            [methods.Rounds]float64
}

// Calibrate derives calibration data from an experiment.
func (e *Experiment) Calibrate() Calibration {
	cal := Calibration{Method: e.Config.Method, Label: e.Config.Profile.Label()}
	for round := 1; round <= methods.Rounds; round++ {
		b := e.Box(round)
		cal.MedianOverhead[round-1] = b.Median
		cal.IQR[round-1] = b.IQR()
	}
	return cal
}

// Correct subtracts the calibrated median overhead from a browser-level
// RTT measurement, yielding an estimate of the true network RTT.
func (c Calibration) Correct(browserRTT time.Duration, round int) time.Duration {
	return browserRTT - time.Duration(c.MedianOverhead[round-1]*float64(time.Millisecond))
}

// Calibratable reports whether correction is trustworthy: the paper's
// criterion is a stable overhead, i.e. a small IQR relative to the median
// (Flash's cross-browser variability makes it "very difficult to
// calibrate").
func (c Calibration) Calibratable(round int) bool {
	iqr := c.IQR[round-1]
	return iqr < 5 // ms of spread around the median
}

// Score ranks a cell's steady-state accuracy: |median Δd2| + IQR(Δd2).
// Lower is better — the paper's trueness + precision framing (ISO 5725).
func (c *Cell) Score() float64 {
	if c.Exp == nil {
		return 0
	}
	b := c.Exp.Box(2)
	m := b.Median
	if m < 0 {
		m = -m
	}
	return m + b.IQR()
}

// Recommendation is the Section 5 guidance, derived from study data
// rather than hard-coded.
type Recommendation struct {
	// BestMethod is the lowest-scoring method averaged across profiles.
	BestMethod methods.Kind
	// BestNative is the best method that needs no plug-in.
	BestNative methods.Kind
	// BestBrowser maps OS name to the browser with the lowest mean score.
	BestBrowser map[string]browser.Name
	// AvoidMethods lists methods whose cross-browser variability makes
	// calibration impractical (median spread or per-cell IQR too large).
	AvoidMethods []methods.Kind
	// Notes carries the timing-function guidance.
	Notes []string
}

// Recommend distills Section 5 from a study.
func Recommend(s *Study) Recommendation {
	rec := Recommendation{BestBrowser: map[string]browser.Name{}}

	type agg struct {
		sum float64
		n   int
	}
	methodScore := map[methods.Kind]*agg{}
	methodMedians := map[methods.Kind][]float64{}

	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Skipped {
			continue
		}
		sc := c.Score()
		a := methodScore[c.Spec.Kind]
		if a == nil {
			a = &agg{}
			methodScore[c.Spec.Kind] = a
		}
		a.sum += sc
		a.n++
		methodMedians[c.Spec.Kind] = append(methodMedians[c.Spec.Kind], c.Exp.Box(2).Median)
	}

	// A method is flagged when its median overhead varies widely across
	// browsers (calibration would need per-browser tables nobody has) or
	// its medians are simply huge.
	avoided := map[methods.Kind]bool{}
	for k, meds := range methodMedians {
		if len(meds) < 2 {
			continue
		}
		spread := stats.NewBox(meds)
		if spread.Max-spread.Min > 25 || stats.Median(meds) > 20 {
			avoided[k] = true
			rec.AvoidMethods = append(rec.AvoidMethods, k)
		}
	}
	sort.Slice(rec.AvoidMethods, func(i, j int) bool { return rec.AvoidMethods[i] < rec.AvoidMethods[j] })

	// Browser preference is judged over the methods one would actually
	// deploy, i.e. excluding the uncalibratable ones.
	browserScore := map[browser.OS]map[browser.Name]*agg{}
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Skipped || avoided[c.Spec.Kind] {
			continue
		}
		if browserScore[c.Profile.OS] == nil {
			browserScore[c.Profile.OS] = map[browser.Name]*agg{}
		}
		ba := browserScore[c.Profile.OS][c.Profile.Browser]
		if ba == nil {
			ba = &agg{}
			browserScore[c.Profile.OS][c.Profile.Browser] = ba
		}
		ba.sum += c.Score()
		ba.n++
	}

	best := func(filter func(methods.Kind) bool) (methods.Kind, bool) {
		type kv struct {
			k methods.Kind
			v float64
		}
		var list []kv
		for k, a := range methodScore {
			if filter != nil && !filter(k) {
				continue
			}
			list = append(list, kv{k, a.sum / float64(a.n)})
		}
		if len(list) == 0 {
			return 0, false
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].v != list[j].v {
				return list[i].v < list[j].v
			}
			return list[i].k < list[j].k
		})
		return list[0].k, true
	}
	if k, ok := best(nil); ok {
		rec.BestMethod = k
	}
	if k, ok := best(func(k methods.Kind) bool { return methods.Get(k).Availability == "native" }); ok {
		rec.BestNative = k
	}

	for os, perBrowser := range browserScore {
		type kv struct {
			b browser.Name
			v float64
		}
		var list []kv
		for b, a := range perBrowser {
			list = append(list, kv{b, a.sum / float64(a.n)})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].v != list[j].v {
				return list[i].v < list[j].v
			}
			return list[i].b < list[j].b
		})
		if len(list) > 0 {
			rec.BestBrowser[os.String()] = list[0].b
		}
	}

	rec.Notes = append(rec.Notes,
		"Java applet tools must use System.nanoTime(): Date.getTime() granularity on Windows reaches ~15.6 ms and under-estimates RTTs.",
		"Methods that open fresh TCP connections include the handshake in the measured delay; reuse the measurement object and prefer Δd2-style warm measurements.",
	)
	return rec
}
