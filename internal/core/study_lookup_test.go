package core

import (
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/methods"
)

// lookupStudy builds one small study for the lookup tests: WebSocket is
// in the matrix but unsupported on IE 9 and Safari 5 (Windows), so the
// study contains both completed and Skipped cells.
func lookupStudy(t *testing.T) *Study {
	t.Helper()
	st, err := RunStudy(StudyOptions{
		Methods: []methods.Kind{methods.WebSocket, methods.XHRGet},
		Runs:    1,
		Gap:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStudyCellLookup(t *testing.T) {
	st := lookupStudy(t)
	tests := []struct {
		name    string
		kind    methods.Kind
		label   string
		found   bool
		skipped bool
	}{
		{"completed cell", methods.WebSocket, "C (U)", true, false},
		{"completed cell, second method", methods.XHRGet, "F (W)", true, false},
		{"skipped cell IE", methods.WebSocket, "IE (W)", true, true},
		{"skipped cell Safari", methods.WebSocket, "S (W)", true, true},
		{"method not in study", methods.FlashGet, "C (U)", false, false},
		{"label not in matrix", methods.XHRGet, "IE (U)", false, false},
		{"garbage label", methods.WebSocket, "nope", false, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := st.Cell(tc.kind, tc.label)
			if (c != nil) != tc.found {
				t.Fatalf("Cell(%v, %q) = %v, want found=%v", tc.kind, tc.label, c, tc.found)
			}
			if c == nil {
				return
			}
			if c.Skipped != tc.skipped {
				t.Errorf("Cell(%v, %q).Skipped = %v, want %v", tc.kind, tc.label, c.Skipped, tc.skipped)
			}
			if tc.skipped && c.Exp != nil {
				t.Errorf("skipped cell has an experiment")
			}
			if !tc.skipped && c.Exp == nil {
				t.Errorf("completed cell has no experiment")
			}
			if c.Spec.Kind != tc.kind || c.Profile.Label() != tc.label {
				t.Errorf("cell identity = (%v, %q), want (%v, %q)",
					c.Spec.Kind, c.Profile.Label(), tc.kind, tc.label)
			}
		})
	}
}

func TestStudyMethodCells(t *testing.T) {
	st := lookupStudy(t)
	profiles := len(st.Options.Profiles)
	tests := []struct {
		name string
		kind methods.Kind
		want int
	}{
		// WebSocket: the two non-supporting Windows browsers are skipped.
		{"method with skips", methods.WebSocket, profiles - 2},
		{"method without skips", methods.XHRGet, profiles},
		{"method not in study", methods.JavaTCP, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cells := st.MethodCells(tc.kind)
			if len(cells) != tc.want {
				t.Fatalf("MethodCells(%v) returned %d cells, want %d", tc.kind, len(cells), tc.want)
			}
			for _, c := range cells {
				if c.Skipped {
					t.Errorf("MethodCells(%v) returned a skipped cell (%s)", tc.kind, c.Profile.Label())
				}
				if c.Spec.Kind != tc.kind {
					t.Errorf("MethodCells(%v) returned a %v cell", tc.kind, c.Spec.Kind)
				}
			}
		})
	}

	// Score of a skipped (experiment-less) cell is defined as zero.
	if c := st.Cell(methods.WebSocket, "IE (W)"); c == nil || c.Score() != 0 {
		t.Errorf("skipped cell Score = %v, want 0", c.Score())
	}
}
