package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/browsermetric/browsermetric/internal/obs"
)

// WriteChromeTrace exports every traced cell of the study as Chrome
// trace_event JSON (load in chrome://tracing or Perfetto). Each cell
// renders as its own thread named "method / browser×OS", so the whole
// matrix reads as stacked per-cell waterfalls: run → round → send-path /
// handshake / request / server-delay / event-dispatch, with clock-read
// instants carrying the quantization error. Cells run without tracing
// (StudyOptions.Tracing unset, or skipped cells) are omitted.
func (s *Study) WriteChromeTrace(w io.Writer) error {
	var threads []obs.Thread
	for i := range s.Cells {
		c := &s.Cells[i]
		if c.Trace == nil {
			continue
		}
		threads = append(threads, obs.Thread{
			ID:    i + 1,
			Name:  c.Spec.Name + " / " + c.Profile.Label(),
			Spans: c.Trace.Spans(),
		})
	}
	return obs.WriteChromeTrace(w, threads)
}

// CellStatsTable renders the n slowest cells by host wall time from the
// scheduler's CellWall stats — the data behind the -cellstats flag.
// Cells that never started (zero wall time) are excluded.
func CellStatsTable(s *Study, n int) string {
	type row struct {
		idx  int
		wall time.Duration
	}
	var rows []row
	for i, w := range s.Stats.CellWall {
		if w > 0 {
			rows = append(rows, row{i, w})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].wall != rows[j].wall {
			return rows[i].wall > rows[j].wall
		}
		return rows[i].idx < rows[j].idx
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Slowest cells (%d of %d run, %d workers, total wall %v):\n",
		len(rows), s.Stats.CellsFinished, s.Stats.Workers, s.Stats.Wall.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-6s %-14s %-22s %10s\n", "cell", "method", "browser", "wall")
	for _, r := range rows {
		c := &s.Cells[r.idx]
		fmt.Fprintf(&b, "  %-6d %-14s %-22s %10v\n",
			r.idx, c.Spec.Name, c.Profile.Label(), r.wall.Round(10*time.Microsecond))
	}
	return b.String()
}
