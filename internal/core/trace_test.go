package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// TestTracedSpanAttributionSumsToOverhead is the accounting identity the
// tracer exists to expose: for every compared method, each sample's Δd
// must equal the sum of its traced browser-side stages,
//
//	Δd = send-path + handshake (new-conn rounds) + event-dispatch
//	     + (err(tBr) − err(tBs)),
//
// within one clock granule. The server-delay span is deliberately absent
// from the sum: server time is seen by both the browser and the capture,
// so it cancels in Eq. 1. If an instrumentation change double-counts a
// stage or drops one, this test pins down which method and round.
func TestTracedSpanAttributionSumsToOverhead(t *testing.T) {
	prof := browser.Lookup(browser.Opera, browser.Windows) // supports all ten methods
	for _, spec := range methods.Compared() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr := obs.NewTracer()
			exp, err := Run(Config{
				Method:  spec.Kind,
				Profile: prof,
				Timing:  browser.GetTime,
				Runs:    3,
				Gap:     time.Second,
				Tracer:  tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range exp.Samples {
				run, round := int64(s.Run), int64(s.Round)
				at := func(name string) []obs.Attr {
					return []obs.Attr{
						{Key: "run", Value: run},
						{Key: "round", Value: round},
					}
				}
				tbs := tr.FindOne("clock-read", append(at(""), obs.Attr{Key: "at", Value: "tBs"})...)
				tbr := tr.FindOne("clock-read", append(at(""), obs.Attr{Key: "at", Value: "tBr"})...)
				send := tr.FindOne("send-path", at("")...)
				dispatch := tr.FindOne("event-dispatch", at("")...)
				if tbs == nil || tbr == nil || send == nil || dispatch == nil {
					t.Fatalf("run %d round %d: missing spans (tBs=%v tBr=%v send=%v dispatch=%v)",
						s.Run, s.Round, tbs != nil, tbr != nil, send != nil, dispatch != nil)
				}

				sum := send.Duration() + dispatch.Duration() +
					tbr.GetDur("err") - tbs.GetDur("err")
				hs := tr.FindOne("handshake", at("")...)
				if s.Handshake {
					if hs == nil {
						t.Fatalf("run %d round %d: Handshake sample without handshake span", s.Run, s.Round)
					}
					sum += hs.Duration()
				} else if hs != nil {
					t.Fatalf("run %d round %d: handshake span on a warm round", s.Run, s.Round)
				}

				// One granule of tolerance, as the clock reads themselves
				// carry their exact error the identity should be exact; the
				// granule bounds any residual stamping asymmetry.
				tol := tbs.GetDur("granularity")
				if g := tbr.GetDur("granularity"); g > tol {
					tol = g
				}
				diff := s.Overhead - sum
				if diff < 0 {
					diff = -diff
				}
				if diff > tol {
					t.Errorf("run %d round %d: Δd = %v but spans sum to %v (diff %v > granule %v)",
						s.Run, s.Round, s.Overhead, sum, diff, tol)
				}
			}
		})
	}
}

// TestRunStudyDeterminismWithTracing extends the headline equivalence
// guarantee to the observability layer: a traced, metered, parallel study
// must export byte-identical CSVs and reports to an untraced sequential
// one. Tracing only observes — it never schedules events or draws random
// numbers — and this is the test that keeps it that way.
func TestRunStudyDeterminismWithTracing(t *testing.T) {
	checkNoGoroutineLeak(t)
	base := StudyOptions{Runs: 3, Gap: time.Second, BaseSeed: 42}

	plain := base
	plain.Workers = 1
	st, err := RunStudy(plain)
	if err != nil {
		t.Fatal(err)
	}
	want := exportBytes(t, st)

	traced := base
	traced.Workers = 4
	traced.Tracing = true
	traced.Metrics = obs.NewMetrics()
	tst, err := RunStudy(traced)
	if err != nil {
		t.Fatal(err)
	}
	if got := exportBytes(t, tst); !bytes.Equal(got, want) {
		t.Errorf("traced parallel study exports differ from plain sequential (%d vs %d bytes)",
			len(got), len(want))
	}

	for i := range tst.Cells {
		c := &tst.Cells[i]
		if c.Skipped {
			continue
		}
		if c.Trace == nil || len(c.Trace.Spans()) == 0 {
			t.Errorf("cell %d (%s / %s): no spans recorded", i, c.Spec.Name, c.Profile.Label())
		}
		if c.Metrics == nil {
			t.Errorf("cell %d: nil Metrics registry", i)
		}
	}
	if n := traced.Metrics.Counter("study_cells_finished"); n == 0 {
		t.Error("study metrics missing study_cells_finished")
	}
}

// TestWriteChromeTraceOperaFlashHandshake is the acceptance check for the
// trace exporter: a small Opera × Flash GET study must produce valid
// Chrome trace_event JSON containing a handshake span for the Δd1 round —
// the Table 3 mechanism (Opera's Flash plugin opens a fresh TCP connection
// for the first GET, absorbing a handshake into the measured delay).
func TestWriteChromeTraceOperaFlashHandshake(t *testing.T) {
	st, err := RunStudy(StudyOptions{
		Methods:  []methods.Kind{methods.FlashGet},
		Profiles: []*browser.Profile{browser.Lookup(browser.Opera, browser.Windows)},
		Runs:     2,
		Gap:      time.Second,
		Tracing:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cell := &st.Cells[0]
	if cell.Exp == nil || !cell.Exp.Samples[0].Handshake {
		t.Fatal("Opera Flash GET Δd1 should open a fresh connection")
	}

	var buf bytes.Buffer
	if err := st.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	var handshakes, threadNames int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "handshake" && ev.Ph == "X":
			handshakes++
			if ev.Dur <= 0 {
				t.Errorf("handshake event with dur %v µs, want > 0", ev.Dur)
			}
			if round, ok := ev.Args["round"].(float64); !ok || round != 1 {
				t.Errorf("handshake args[round] = %v, want 1 (Δd1)", ev.Args["round"])
			}
		case ev.Ph == "M" && ev.Name == "thread_name":
			threadNames++
			if name, _ := ev.Args["name"].(string); !strings.Contains(name, "Flash GET") {
				t.Errorf("thread name %q should identify the cell", name)
			}
		}
	}
	// Opera Flash GET is PolicyNewOnFirst: one fresh connection per run,
	// always on round 1.
	if handshakes != 2 {
		t.Errorf("got %d handshake events, want 2 (one per run)", handshakes)
	}
	if threadNames != 1 {
		t.Errorf("got %d thread_name metadata events, want 1", threadNames)
	}
}

// TestCellStatsTable checks ordering, truncation, and the exclusion of
// never-started cells from the -cellstats table.
func TestCellStatsTable(t *testing.T) {
	prof := browser.Lookup(browser.Chrome, browser.Ubuntu)
	st := &Study{
		Cells: []Cell{
			{Spec: methods.Get(methods.XHRGet), Profile: prof},
			{Spec: methods.Get(methods.DOM), Profile: prof},
			{Spec: methods.Get(methods.WebSocket), Profile: prof},
		},
		Stats: StudyStats{
			Workers:       2,
			CellsFinished: 2,
			Wall:          20 * time.Millisecond,
			CellWall:      []time.Duration{5 * time.Millisecond, 0, 9 * time.Millisecond},
		},
	}
	out := CellStatsTable(st, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + column row + two cells (cell 1 never ran)
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "2 of 2 run, 2 workers") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "WebSocket") || !strings.HasPrefix(strings.Fields(lines[2])[0], "2") {
		t.Errorf("slowest cell should lead: %q", lines[2])
	}
	if !strings.Contains(lines[3], "XHR GET") {
		t.Errorf("second row should be the 5ms cell: %q", lines[3])
	}
	if strings.Contains(out, "DOM") {
		t.Errorf("never-started cell listed:\n%s", out)
	}

	if top := CellStatsTable(st, 1); strings.Contains(top, "XHR GET") {
		t.Errorf("n=1 should truncate to the slowest cell:\n%s", top)
	}
}
