// Package eventsim implements a deterministic discrete-event simulator.
//
// The simulator maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which
// keeps runs fully deterministic for a given seed. All simulated subsystems
// (links, TCP stacks, browser engines) advance time exclusively through a
// Simulator, so a whole testbed run is reproducible bit-for-bit.
package eventsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	// At is the virtual time at which the event fires.
	At time.Duration
	// Fn is invoked when the event fires.
	Fn func()

	seq      uint64 // tie-breaker: FIFO among same-time events
	index    int    // heap index; -1 when not queued
	canceled bool
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator is a discrete-event simulator with a virtual clock.
// The zero value is not usable; call New.
type Simulator struct {
	now     time.Duration
	queue   eventQueue
	nextSeq uint64
	rng     *rand.Rand
	fired   uint64
	// Limit bounds the number of events processed by Run as a runaway
	// guard. Zero means the default of 100 million events.
	Limit uint64
}

// New returns a Simulator whose clock starts at zero and whose random
// source is seeded deterministically with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events processed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued (including
// canceled events not yet dequeued).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues fn to run after delay. A negative delay is treated as
// zero (the event fires at the current instant, after already-queued
// same-instant events). It returns the Event so callers may cancel it.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if fn == nil {
		panic("eventsim: Schedule with nil fn")
	}
	if delay < 0 {
		delay = 0
	}
	e := &Event{At: s.now + delay, Fn: fn, seq: s.nextSeq}
	s.nextSeq++
	heap.Push(&s.queue, e)
	return e
}

// ScheduleAt queues fn at an absolute virtual time. Times in the past are
// clamped to the current instant.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Event {
	return s.Schedule(at-s.now, fn)
}

// Step fires the single earliest pending event, advancing the clock to it.
// It reports whether an event was fired (false when the queue is empty).
// Canceled events are discarded without firing and without counting.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		if e.At < s.now {
			panic(fmt.Sprintf("eventsim: time went backwards: %v < %v", e.At, s.now))
		}
		s.now = e.At
		s.fired++
		e.Fn()
		return true
	}
	return false
}

// Run processes events until the queue is empty or the event limit is hit.
// It returns the number of events fired during this call.
func (s *Simulator) Run() uint64 {
	return s.RunUntil(1<<62 - 1)
}

// RunUntil processes events whose time is <= deadline. The clock is left at
// the last fired event (or untouched if none fired); it does not jump to
// the deadline. It returns the number of events fired during this call.
func (s *Simulator) RunUntil(deadline time.Duration) uint64 {
	limit := s.Limit
	if limit == 0 {
		limit = 100_000_000
	}
	var fired uint64
	for len(s.queue) > 0 && fired < limit {
		if s.peekTime() > deadline {
			break
		}
		if s.Step() {
			fired++
		}
	}
	if fired >= limit {
		panic(fmt.Sprintf("eventsim: event limit %d exceeded (runaway simulation?)", limit))
	}
	return fired
}

// peekTime returns the fire time of the earliest non-canceled event.
// The queue must be drained of leading canceled events first.
func (s *Simulator) peekTime() time.Duration {
	for len(s.queue) > 0 && s.queue[0].canceled {
		heap.Pop(&s.queue)
	}
	if len(s.queue) == 0 {
		return 1<<62 - 1
	}
	return s.queue[0].At
}

// Advance moves the clock forward by d, firing any events that fall within
// the window, and leaves the clock exactly at now+d.
func (s *Simulator) Advance(d time.Duration) {
	if d < 0 {
		panic("eventsim: Advance with negative duration")
	}
	target := s.now + d
	s.RunUntil(target)
	if s.now < target {
		s.now = target
	}
}
