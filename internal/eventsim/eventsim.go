// Package eventsim implements a deterministic discrete-event simulator.
//
// The simulator maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which
// keeps runs fully deterministic for a given seed. All simulated subsystems
// (links, TCP stacks, browser engines) advance time exclusively through a
// Simulator, so a whole testbed run is reproducible bit-for-bit.
//
// The queue is a concrete 4-ary min-heap over pooled event records: no
// interface boxing on push/pop, and fired or canceled events return to a
// per-simulator freelist, so schedule/fire/cancel in steady state allocates
// nothing. Handles returned by Schedule carry a generation counter, which
// makes canceling an event that already fired (and whose record has been
// recycled) a safe no-op.
package eventsim

import (
	"fmt"
	"math/rand"
	"time"
)

// event is the pooled record behind an Event handle.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among same-time events

	// gen distinguishes successive uses of a recycled record; an Event
	// handle only acts when its generation matches.
	gen uint32

	canceled bool
	// canceledGen remembers the most recently canceled generation (+1, so
	// zero means "none"), letting a stale handle still answer Canceled.
	canceledGen uint32

	fn   func()
	bfn  func([]byte) // byte-argument variant; avoids a closure per frame
	arg  []byte
	afn  func(any) // any-argument variant; avoids a closure per receiver
	aarg any
}

// Event is a cancelable handle to a scheduled callback. The zero value is
// inert: Cancel is a no-op and Canceled reports false.
type Event struct {
	e   *event
	gen uint32
}

// At returns the virtual time at which the event fires (zero for the zero
// handle or after the record has been recycled).
func (h Event) At() time.Duration {
	if h.e == nil || h.e.gen != h.gen {
		return 0
	}
	return h.e.at
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired (or was already canceled) is a no-op.
func (h Event) Cancel() {
	e := h.e
	if e == nil || e.gen != h.gen || e.canceled {
		return
	}
	e.canceled = true
	e.canceledGen = h.gen + 1
}

// Canceled reports whether Cancel was called before the event fired.
func (h Event) Canceled() bool {
	e := h.e
	if e == nil {
		return false
	}
	if e.gen == h.gen {
		return e.canceled
	}
	return e.canceledGen == h.gen+1
}

// Simulator is a discrete-event simulator with a virtual clock.
// The zero value is not usable; call New.
type Simulator struct {
	now     time.Duration
	queue   []*event
	free    []*event
	nextSeq uint64
	rng     *rand.Rand
	fired   uint64
	// Limit bounds the number of events processed by Run as a runaway
	// guard. Zero means the default of 100 million events.
	Limit uint64
}

// New returns a Simulator whose clock starts at zero and whose random
// source is seeded deterministically with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events processed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued (including
// canceled events not yet dequeued).
func (s *Simulator) Pending() int { return len(s.queue) }

// Reserve pre-sizes the queue and the freelist for at least n concurrently
// pending events, so a testbed sized from its topology never grows either
// on the hot path.
func (s *Simulator) Reserve(n int) {
	if cap(s.queue) < n {
		q := make([]*event, len(s.queue), n)
		copy(q, s.queue)
		s.queue = q
	}
	if cap(s.free) < n {
		f := make([]*event, len(s.free), n)
		copy(f, s.free)
		s.free = f
	}
	if need := n - (len(s.free) + len(s.queue)); need > 0 {
		// One slab for all the records instead of a heap object each:
		// the records live as long as the simulator anyway.
		recs := make([]event, need)
		for i := range recs {
			s.free = append(s.free, &recs[i])
		}
	}
}

// alloc takes an event record from the freelist, or heap-allocates one.
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &event{}
}

// recycle returns a dequeued record to the freelist, invalidating all
// outstanding handles by bumping the generation.
func (s *Simulator) recycle(e *event) {
	e.gen++
	e.canceled = false
	e.fn = nil
	e.bfn = nil
	e.arg = nil
	e.afn = nil
	e.aarg = nil
	s.free = append(s.free, e)
}

// schedule queues a freshly filled record.
func (s *Simulator) schedule(delay time.Duration) *event {
	if delay < 0 {
		delay = 0
	}
	e := s.alloc()
	e.at = s.now + delay
	e.seq = s.nextSeq
	s.nextSeq++
	s.push(e)
	return e
}

// Schedule queues fn to run after delay. A negative delay is treated as
// zero (the event fires at the current instant, after already-queued
// same-instant events). It returns a handle so callers may cancel it.
func (s *Simulator) Schedule(delay time.Duration, fn func()) Event {
	if fn == nil {
		panic("eventsim: Schedule with nil fn")
	}
	e := s.schedule(delay)
	e.fn = fn
	return Event{e: e, gen: e.gen}
}

// ScheduleBytes queues fn(arg) to run after delay. It exists for the frame
// delivery paths: binding the argument in the event record instead of a
// closure keeps per-frame scheduling allocation-free.
func (s *Simulator) ScheduleBytes(delay time.Duration, fn func([]byte), arg []byte) Event {
	if fn == nil {
		panic("eventsim: ScheduleBytes with nil fn")
	}
	e := s.schedule(delay)
	e.bfn = fn
	e.arg = arg
	return Event{e: e, gen: e.gen}
}

// ScheduleAny queues fn(arg) to run after delay. Like ScheduleBytes it
// binds the argument in the event record; with a pointer-typed arg (stored
// directly in the interface word) scheduling a bound callback stays
// allocation-free, where a per-receiver method value would allocate.
func (s *Simulator) ScheduleAny(delay time.Duration, fn func(any), arg any) Event {
	if fn == nil {
		panic("eventsim: ScheduleAny with nil fn")
	}
	e := s.schedule(delay)
	e.afn = fn
	e.aarg = arg
	return Event{e: e, gen: e.gen}
}

// ScheduleAt queues fn at an absolute virtual time. Times in the past are
// clamped to the current instant.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) Event {
	return s.Schedule(at-s.now, fn)
}

// less orders events by (at, seq): earliest first, FIFO among ties.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends e and sifts it up the 4-ary heap.
func (s *Simulator) push(e *event) {
	s.queue = append(s.queue, e)
	q := s.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(e, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
}

// popMin removes and returns the earliest event.
func (s *Simulator) popMin() *event {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	s.queue = q[:n]
	if n > 0 {
		q = s.queue
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if less(q[j], q[m]) {
					m = j
				}
			}
			if !less(q[m], last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	return top
}

// Step fires the single earliest pending event, advancing the clock to it.
// It reports whether an event was fired (false when the queue is empty).
// Canceled events are discarded without firing and without counting.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := s.popMin()
		if e.canceled {
			s.recycle(e)
			continue
		}
		if e.at < s.now {
			panic(fmt.Sprintf("eventsim: time went backwards: %v < %v", e.at, s.now))
		}
		s.now = e.at
		s.fired++
		// Recycle before invoking, so the callback can reuse the record
		// for whatever it schedules; outstanding handles are stale now.
		fn, bfn, arg, afn, aarg := e.fn, e.bfn, e.arg, e.afn, e.aarg
		s.recycle(e)
		switch {
		case bfn != nil:
			bfn(arg)
		case afn != nil:
			afn(aarg)
		default:
			fn()
		}
		return true
	}
	return false
}

// Run processes events until the queue is empty or the event limit is hit.
// It returns the number of events fired during this call.
func (s *Simulator) Run() uint64 {
	return s.RunUntil(1<<62 - 1)
}

// RunUntil processes events whose time is <= deadline. The clock is left at
// the last fired event (or untouched if none fired); it does not jump to
// the deadline. It returns the number of events fired during this call.
func (s *Simulator) RunUntil(deadline time.Duration) uint64 {
	limit := s.Limit
	if limit == 0 {
		limit = 100_000_000
	}
	var fired uint64
	for len(s.queue) > 0 && fired < limit {
		if s.peekTime() > deadline {
			break
		}
		if s.Step() {
			fired++
		}
	}
	if fired >= limit {
		panic(fmt.Sprintf("eventsim: event limit %d exceeded (runaway simulation?)", limit))
	}
	return fired
}

// peekTime returns the fire time of the earliest non-canceled event.
// The queue must be drained of leading canceled events first.
func (s *Simulator) peekTime() time.Duration {
	for len(s.queue) > 0 && s.queue[0].canceled {
		s.recycle(s.popMin())
	}
	if len(s.queue) == 0 {
		return 1<<62 - 1
	}
	return s.queue[0].at
}

// Advance moves the clock forward by d, firing any events that fall within
// the window, and leaves the clock exactly at now+d.
func (s *Simulator) Advance(d time.Duration) {
	if d < 0 {
		panic("eventsim: Advance with negative duration")
	}
	target := s.now + d
	s.RunUntil(target)
	if s.now < target {
		s.now = target
	}
}
