package eventsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	s.Advance(time.Second)
	fired := false
	s.Schedule(-time.Hour, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if s.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(time.Millisecond, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	s := New(1)
	var got []int
	e1 := s.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e1.Cancel()
	s.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want [2]", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var times []time.Duration
	s.Schedule(time.Millisecond, func() {
		times = append(times, s.Now())
		s.Schedule(time.Millisecond, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(5 * time.Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", s.Now())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("count after Run = %d, want 10", count)
	}
}

func TestAdvanceMovesClockPastEvents(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(3*time.Second, func() { fired = true })
	s.Advance(10 * time.Second)
	if !fired {
		t.Fatal("event within Advance window did not fire")
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s", s.Now())
	}
}

func TestAdvanceZero(t *testing.T) {
	s := New(1)
	s.Advance(0)
	if s.Now() != 0 {
		t.Fatalf("Now = %v, want 0", s.Now())
	}
}

func TestScheduleAt(t *testing.T) {
	s := New(1)
	var at time.Duration
	s.Advance(time.Second)
	s.ScheduleAt(1500*time.Millisecond, func() { at = s.Now() })
	s.Run()
	if at != 1500*time.Millisecond {
		t.Fatalf("fired at %v, want 1.5s", at)
	}
}

func TestStepEmpty(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestFiredAndPending(t *testing.T) {
	s := New(1)
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", s.Fired())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after Run = %d, want 0", s.Pending())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []time.Duration {
		s := New(42)
		var out []time.Duration
		var tick func()
		tick = func() {
			out = append(out, s.Now())
			if len(out) < 50 {
				jitter := time.Duration(s.Rand().Int63n(int64(time.Millisecond)))
				s.Schedule(jitter, tick)
			}
		}
		s.Schedule(0, tick)
		s.Run()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunawayLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected runaway panic")
		}
	}()
	s := New(1)
	s.Limit = 100
	var tick func()
	tick = func() { s.Schedule(time.Microsecond, tick) } // never terminates
	s.Schedule(0, tick)
	s.Run()
}

func TestCancelDuringFire(t *testing.T) {
	// An event canceled by an earlier same-instant event must not fire.
	s := New(1)
	fired := false
	var e2 Event
	s.Schedule(time.Millisecond, func() { e2.Cancel() })
	e2 = s.Schedule(time.Millisecond, func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("canceled-in-flight event fired")
	}
}

func TestSchedulePanicsOnNilFn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil fn")
		}
	}()
	New(1).Schedule(0, nil)
}

// Property: events always fire in non-decreasing time order regardless of
// the scheduling pattern.
func TestQuickMonotoneFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var fireTimes []time.Duration
		for _, d := range delays {
			s.Schedule(time.Duration(d)*time.Microsecond, func() {
				fireTimes = append(fireTimes, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(fireTimes) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCancelThenFireOrdering(t *testing.T) {
	// Canceling one of several same-instant events must not disturb the
	// FIFO order of the survivors, including events scheduled after the
	// cancellation that reuse the recycled record.
	s := New(1)
	var got []int
	s.Schedule(time.Millisecond, func() { got = append(got, 1) })
	e2 := s.Schedule(time.Millisecond, func() { got = append(got, 2) })
	s.Schedule(time.Millisecond, func() { got = append(got, 3) })
	e2.Cancel()
	s.Schedule(time.Millisecond, func() { got = append(got, 4) })
	s.Run()
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if !e2.Canceled() {
		t.Fatal("Canceled() = false for a canceled, discarded event")
	}
}

func TestStaleHandleCancelIsNoop(t *testing.T) {
	// After an event fires, its pooled record may back a later event; the
	// stale handle must neither cancel it nor report it canceled.
	s := New(1)
	first := s.Schedule(time.Millisecond, func() {})
	s.Run()
	fired := false
	s.Schedule(time.Millisecond, func() { fired = true })
	first.Cancel() // stale: generation moved on
	if first.Canceled() {
		t.Fatal("stale handle reports Canceled after the event fired")
	}
	s.Run()
	if !fired {
		t.Fatal("stale Cancel leaked onto a recycled event")
	}
}

func TestZeroEventHandle(t *testing.T) {
	var e Event
	e.Cancel() // must not panic
	if e.Canceled() {
		t.Fatal("zero handle reports Canceled")
	}
	if e.At() != 0 {
		t.Fatalf("zero handle At = %v, want 0", e.At())
	}
}

func TestSameInstantFIFOAcrossHeapRebuilds(t *testing.T) {
	// Interleave same-instant events with earlier ones and partial Steps so
	// the 4-ary heap repeatedly rebuilds; the same-instant cohort must
	// still fire in scheduling order.
	s := New(1)
	var got []int
	for i := 0; i < 64; i++ {
		i := i
		s.Schedule(10*time.Millisecond, func() { got = append(got, i) })
		if i%3 == 0 {
			s.Schedule(time.Duration(i)*time.Microsecond, func() {})
		}
		if i%5 == 0 {
			s.Step() // pop an early event mid-build, forcing sift-downs
		}
	}
	s.Run()
	if len(got) != 64 {
		t.Fatalf("fired %d same-instant events, want 64", len(got))
	}
	for i := 0; i < 64; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestStepOnDrainedQueue(t *testing.T) {
	s := New(1)
	s.Schedule(time.Millisecond, func() {})
	s.Run()
	if s.Step() {
		t.Fatal("Step on drained queue returned true")
	}
	// A queue holding only canceled events must also report no fire.
	e := s.Schedule(time.Millisecond, func() { t.Fatal("canceled event fired") })
	e.Cancel()
	if s.Step() {
		t.Fatal("Step over canceled-only queue returned true")
	}
}

func TestRunawayLimitDefault(t *testing.T) {
	// The zero Limit means the 100M default; a custom limit must not leak
	// across calls that stay under it.
	s := New(1)
	s.Limit = 1000
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 500 {
			s.Schedule(time.Microsecond, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run() // 500 < 1000: must not panic
	if count != 500 {
		t.Fatalf("count = %d, want 500", count)
	}
}

func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	// The tentpole guarantee: schedule/fire/cancel in steady state (after
	// the pool has warmed) allocates nothing.
	s := New(1)
	s.Reserve(64)
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		e := s.Schedule(time.Microsecond, fn)
		s.Schedule(2*time.Microsecond, fn)
		e.Cancel()
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/fire/cancel allocs = %g, want 0", allocs)
	}
}

func TestScheduleBytesZeroAlloc(t *testing.T) {
	s := New(1)
	s.Reserve(16)
	var delivered int
	fn := func(b []byte) { delivered += len(b) }
	frame := make([]byte, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		s.ScheduleBytes(time.Microsecond, fn, frame)
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("ScheduleBytes steady-state allocs = %g, want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("byte events never delivered")
	}
}

func TestReservePresizes(t *testing.T) {
	s := New(1)
	s.Reserve(128)
	fn := func() {}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 128; i++ {
			s.Schedule(time.Duration(i)*time.Microsecond, fn)
		}
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("scheduling within Reserve(128) allocs = %g, want 0", allocs)
	}
}

// Property: Advance always lands the clock exactly on target.
func TestQuickAdvanceExact(t *testing.T) {
	f := func(steps []uint16) bool {
		s := New(3)
		var want time.Duration
		for _, st := range steps {
			d := time.Duration(st) * time.Microsecond
			want += d
			s.Advance(d)
		}
		return s.Now() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
