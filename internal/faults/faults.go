// Package faults injects deterministic, seeded network impairments into the
// simulated testbed: random and bursty loss, duplication, reordering,
// bounded jitter and a finite rate-limited queue with tail drop.
//
// An Impairment implements netsim.Impairer and is installed on a Link; the
// link consults it for every frame after the serialization point. All
// randomness comes from the Impairment's own seeded generator, never from
// the simulator's, so enabling a fault profile cannot perturb any other
// random draw in the run (browser costs, ISNs, ...) — and the Clean profile
// installs nothing at all, leaving the pre-impairment code path untouched.
// Same seed ⇒ same verdict sequence ⇒ byte-identical study exports.
package faults

import (
	"math/rand"
	"time"

	"github.com/browsermetric/browsermetric/internal/netsim"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// GilbertElliott parameterizes the classic two-state bursty-loss channel:
// a Good state with rare loss and a Bad state with heavy loss, with
// per-frame transition probabilities between them. The stationary fraction
// of frames judged in the Bad state is GoodToBad/(GoodToBad+BadToGood) and
// the mean burst length is 1/BadToGood frames, so consecutive losses
// cluster — which is exactly what forces back-to-back retransmissions and
// RTO backoff in the TCP substrate.
type GilbertElliott struct {
	GoodToBad float64 // P(Good→Bad) evaluated per judged frame
	BadToGood float64 // P(Bad→Good) evaluated per judged frame
	LossGood  float64 // loss probability while Good
	LossBad   float64 // loss probability while Bad
}

// Params describes one direction-independent impairment configuration.
// The zero value impairs nothing (every frame passes untouched).
type Params struct {
	// Loss drops each frame independently with this probability. Ignored
	// when GE is set (the Gilbert–Elliott chain subsumes it).
	Loss float64
	// GE, when non-nil, selects bursty Gilbert–Elliott loss instead of
	// i.i.d. loss. Each link direction runs its own chain.
	GE *GilbertElliott
	// DupProb delivers an extra copy of the frame with this probability,
	// DupDelay after the original (default 200 µs when zero).
	DupProb  float64
	DupDelay time.Duration
	// ReorderProb holds a frame back by ReorderDelay with this
	// probability, letting later frames overtake it on the wire.
	ReorderProb  float64
	ReorderDelay time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) to every frame.
	Jitter time.Duration
	// Rate, when positive, drains frames through a bottleneck at this
	// many bits per second: frames queue behind earlier arrivals and pick
	// up the residual sojourn time as extra delay.
	Rate int64
	// QueueBytes bounds the bottleneck queue; a frame that would push the
	// occupancy past the bound is tail-dropped. Zero means unbounded.
	QueueBytes int
}

const defaultDupDelay = 200 * time.Microsecond

// Counters tallies every verdict the Impairment has issued.
type Counters struct {
	Judged     int64 // frames judged
	DropsLoss  int64 // frames dropped by random/bursty loss
	DropsQueue int64 // frames tail-dropped by the bottleneck queue
	Dups       int64 // frames duplicated
	Reorders   int64 // frames held back past a later frame
}

// sideState is the per-direction mutable state of the impairment: the
// Gilbert–Elliott chain position, the bottleneck drain horizon, and the
// recent delivery times used to measure realized reorder depth.
type sideState struct {
	bad       bool          // Gilbert–Elliott chain is in the Bad state
	busyUntil time.Duration // bottleneck queue drains at this virtual time
	pending   []time.Duration
}

// maxPending bounds the per-side delivery-time window kept for reorder-depth
// accounting; entries at or before "now" are pruned on every judgment first.
const maxPending = 128

// Impairment judges frames for one link. It is not safe for concurrent use;
// like everything else in the simulator it runs single-threaded per testbed.
type Impairment struct {
	p    Params
	rng  *rand.Rand
	met  *obs.Metrics
	side [2]sideState

	// Stats accumulates verdict counts; exported for tests and reports.
	Stats Counters
}

// New builds an Impairment with its own deterministic generator. met may be
// nil (counters still accumulate in Stats; only the obs export is skipped).
func New(p Params, seed int64, met *obs.Metrics) *Impairment {
	if p.DupProb > 0 && p.DupDelay == 0 {
		p.DupDelay = defaultDupDelay
	}
	im := &Impairment{p: p, rng: rand.New(rand.NewSource(seed)), met: met}
	met.SetHelp("fault_frames", "Frames judged by the impairment layer.")
	met.SetHelp("fault_drops_loss", "Frames dropped by random or bursty loss.")
	met.SetHelp("fault_drops_queue", "Frames tail-dropped by the bottleneck queue.")
	met.SetHelp("fault_dups", "Frames delivered twice by duplication.")
	met.SetHelp("fault_reorders", "Frames held back past at least one later frame.")
	met.SetHelp("fault_queue_bytes", "Bottleneck queue occupancy at frame arrival (bytes).")
	met.SetHelp("fault_reorder_depth", "Frames already in flight that will overtake a held frame.")
	met.SetHelp("fault_extra_delay_ms", "Extra delay added per delivered frame (queue + jitter + holds).")
	return im
}

// Judge implements netsim.Impairer. The draw order is fixed — queue
// admission, loss, duplication, reorder, jitter — so the consumed random
// sequence is a pure function of the judged frame sequence, which the
// simulator already delivers in a deterministic order.
func (im *Impairment) Judge(side, size int, now, deliverAt time.Duration) netsim.Verdict {
	st := &im.side[side]
	im.Stats.Judged++
	im.met.Add("fault_frames", 1)

	// Bottleneck queue: the frame joins a FIFO drained at p.Rate. Its
	// extra delay is the residual backlog plus its own bottleneck
	// serialization; a full queue tail-drops it.
	var extra time.Duration
	if im.p.Rate > 0 {
		backlog := st.busyUntil - now
		if backlog < 0 {
			backlog = 0
		}
		occBytes := int(backlog.Seconds() * float64(im.p.Rate) / 8)
		im.met.Observe("fault_queue_bytes", float64(occBytes))
		if im.p.QueueBytes > 0 && occBytes+size > im.p.QueueBytes {
			im.Stats.DropsQueue++
			im.met.Add("fault_drops_queue", 1)
			return netsim.Verdict{Drop: true}
		}
		drain := time.Duration(int64(size) * 8 * int64(time.Second) / im.p.Rate)
		st.busyUntil = now + backlog + drain
		extra = backlog + drain
	}

	// Loss: bursty Gilbert–Elliott chain when configured, i.i.d. otherwise.
	if ge := im.p.GE; ge != nil {
		if st.bad {
			if im.rng.Float64() < ge.BadToGood {
				st.bad = false
			}
		} else if im.rng.Float64() < ge.GoodToBad {
			st.bad = true
		}
		pLoss := ge.LossGood
		if st.bad {
			pLoss = ge.LossBad
		}
		if pLoss > 0 && im.rng.Float64() < pLoss {
			im.Stats.DropsLoss++
			im.met.Add("fault_drops_loss", 1)
			return netsim.Verdict{Drop: true}
		}
	} else if im.p.Loss > 0 && im.rng.Float64() < im.p.Loss {
		im.Stats.DropsLoss++
		im.met.Add("fault_drops_loss", 1)
		return netsim.Verdict{Drop: true}
	}

	v := netsim.Verdict{}
	if im.p.DupProb > 0 && im.rng.Float64() < im.p.DupProb {
		v.Dup = true
		v.DupDelay = im.p.DupDelay
		im.Stats.Dups++
		im.met.Add("fault_dups", 1)
	}
	if im.p.ReorderProb > 0 && im.rng.Float64() < im.p.ReorderProb {
		extra += im.p.ReorderDelay
	}
	if im.p.Jitter > 0 {
		extra += time.Duration(im.rng.Int63n(int64(im.p.Jitter)))
	}
	v.Delay = extra
	im.met.Observe("fault_extra_delay_ms", float64(extra)/float64(time.Millisecond))

	// Reorder-depth accounting: against the frames still in flight on this
	// direction, count how many sent earlier will now arrive after us —
	// equivalently, after scheduling, how many frames this held frame let
	// overtake it. Depth is measured at judgment time, mirroring what a
	// capture at the receiver would replay.
	final := deliverAt + extra
	depth := 0
	keep := st.pending[:0]
	for _, t := range st.pending {
		if t <= now {
			continue // already delivered
		}
		keep = append(keep, t)
		if t > final {
			depth++
		}
	}
	st.pending = keep
	if len(st.pending) < maxPending {
		st.pending = append(st.pending, final)
	}
	if depth > 0 {
		im.Stats.Reorders++
		im.met.Add("fault_reorders", 1)
		im.met.Observe("fault_reorder_depth", float64(depth))
	}
	return v
}
