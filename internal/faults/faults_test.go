package faults

import (
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/netsim"
	"github.com/browsermetric/browsermetric/internal/obs"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Profile
		err  bool
	}{
		{"", Clean, false},
		{"none", Clean, false},
		{"clean", Clean, false},
		{"Clean", Clean, false},
		{" lossy1pct ", Lossy1pct, false},
		{"BurstyWiFi", BurstyWiFi, false},
		{"CONGESTED", Congested, false},
		{"wifi", Clean, true},
		{"lossy", Clean, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if (err != nil) != c.err {
			t.Errorf("Parse(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestProfilesHaveParams(t *testing.T) {
	for _, p := range Profiles() {
		params, err := p.Params()
		if err != nil {
			t.Fatalf("%s.Params: %v", p, err)
		}
		if p == Clean {
			if params != (Params{}) {
				t.Fatalf("Clean must have zero Params, got %+v", params)
			}
			if p.Enabled() {
				t.Fatal("Clean must not be Enabled")
			}
			continue
		}
		if !p.Enabled() {
			t.Fatalf("%s must be Enabled", p)
		}
	}
	if Profile("").Enabled() {
		t.Fatal("zero-value profile must not be Enabled")
	}
	if Profile("").String() != "clean" {
		t.Fatalf("zero-value String = %q", Profile("").String())
	}
	if _, err := Profile("bogus").Params(); err == nil {
		t.Fatal("unknown profile Params must error")
	}
}

// judgeN judges n same-size frames back to back and returns the verdicts.
func judgeN(im *Impairment, n int, step time.Duration) []netsim.Verdict {
	out := make([]netsim.Verdict, n)
	for i := range out {
		now := time.Duration(i) * step
		out[i] = im.Judge(0, 1000, now, now+100*time.Microsecond)
	}
	return out
}

func TestIIDLossDeterministicAndCalibrated(t *testing.T) {
	const n = 20000
	a := New(Params{Loss: 0.01}, 7, nil)
	b := New(Params{Loss: 0.01}, 7, nil)
	va := judgeN(a, n, time.Millisecond)
	vb := judgeN(b, n, time.Millisecond)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("verdict %d differs across same-seed impairments", i)
		}
	}
	if a.Stats.Judged != n {
		t.Fatalf("Judged = %d, want %d", a.Stats.Judged, n)
	}
	loss := float64(a.Stats.DropsLoss) / n
	if loss < 0.005 || loss > 0.02 {
		t.Fatalf("i.i.d. loss rate = %.4f, want ≈0.01", loss)
	}
	c := New(Params{Loss: 0.01}, 8, nil)
	vc := judgeN(c, n, time.Millisecond)
	same := 0
	for i := range va {
		if va[i].Drop == vc[i].Drop {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical drop sequences")
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	const n = 50000
	ge := &GilbertElliott{GoodToBad: 0.05, BadToGood: 0.30, LossGood: 0, LossBad: 0.5}
	im := New(Params{GE: ge}, 3, nil)
	v := judgeN(im, n, time.Millisecond)

	// Effective loss should be near stationaryBad × LossBad ≈ 0.143×0.5.
	loss := float64(im.Stats.DropsLoss) / n
	if loss < 0.03 || loss > 0.15 {
		t.Fatalf("GE loss rate = %.4f, want ≈0.07", loss)
	}

	// Burstiness: P(drop | previous dropped) must be far above the marginal
	// rate — the whole point of the two-state chain.
	condDrops, condTotal := 0, 0
	for i := 1; i < n; i++ {
		if v[i-1].Drop {
			condTotal++
			if v[i].Drop {
				condDrops++
			}
		}
	}
	cond := float64(condDrops) / float64(condTotal)
	if cond < 2*loss {
		t.Fatalf("P(drop|drop) = %.3f not bursty vs marginal %.3f", cond, loss)
	}
}

func TestQueueDelayAndTailDrop(t *testing.T) {
	// 1 Mbps bottleneck, 4000-byte queue: each 1000-byte frame drains in
	// 8 ms; five frames arriving at t=0 mean the queue holds 4×1000 bytes
	// after the first is in service.
	im := New(Params{Rate: 1_000_000, QueueBytes: 4000}, 1, nil)
	var delays []time.Duration
	drops := 0
	for i := 0; i < 6; i++ {
		v := im.Judge(0, 1000, 0, 100*time.Microsecond)
		if v.Drop {
			drops++
			continue
		}
		delays = append(delays, v.Delay)
	}
	if drops == 0 {
		t.Fatal("burst past QueueBytes must tail-drop")
	}
	for i := 1; i < len(delays); i++ {
		if delays[i] <= delays[i-1] {
			t.Fatalf("queue delay must grow with backlog: %v", delays)
		}
	}
	if im.Stats.DropsQueue != int64(drops) {
		t.Fatalf("DropsQueue = %d, want %d", im.Stats.DropsQueue, drops)
	}

	// After the queue drains, delay falls back to just the frame's own
	// bottleneck serialization (8 ms).
	v := im.Judge(0, 1000, time.Minute, time.Minute+100*time.Microsecond)
	if v.Drop || v.Delay != 8*time.Millisecond {
		t.Fatalf("drained-queue verdict = %+v, want 8ms delay", v)
	}
}

func TestDuplicationAndDefaultDupDelay(t *testing.T) {
	im := New(Params{DupProb: 1}, 1, nil)
	v := im.Judge(0, 100, 0, time.Millisecond)
	if !v.Dup || v.DupDelay != defaultDupDelay {
		t.Fatalf("verdict = %+v, want Dup with default delay", v)
	}
	if im.Stats.Dups != 1 {
		t.Fatalf("Dups = %d", im.Stats.Dups)
	}
	im2 := New(Params{DupProb: 1, DupDelay: time.Millisecond}, 1, nil)
	if v := im2.Judge(0, 100, 0, time.Millisecond); v.DupDelay != time.Millisecond {
		t.Fatalf("explicit DupDelay not honored: %+v", v)
	}
}

func TestReorderHoldAndDepth(t *testing.T) {
	im := New(Params{ReorderProb: 1, ReorderDelay: 10 * time.Millisecond}, 1, nil)
	// First frame held 10 ms; second frame sent 1 ms later, also held, but
	// still lands after the first — then a third frame whose final delivery
	// beats neither. Use a second impairment with ReorderProb on only the
	// first judgment via a crafted sequence instead: simplest observable is
	// that a held frame followed by a fast frame counts a reorder.
	v0 := im.Judge(0, 100, 0, 100*time.Microsecond)
	if v0.Delay != 10*time.Millisecond {
		t.Fatalf("hold delay = %v", v0.Delay)
	}
	// Second frame: sent at 1 ms, held too (prob 1), lands at 11.1 ms —
	// after frame 0's 10.1 ms, so no overtake yet.
	im.Judge(0, 100, time.Millisecond, time.Millisecond+100*time.Microsecond)

	// Now a frame judged by an impairment with no hold: overtakes both.
	im2 := New(Params{ReorderProb: 0.5, ReorderDelay: 20 * time.Millisecond}, 9, nil)
	reorders := 0
	for i := 0; i < 2000; i++ {
		now := time.Duration(i) * 100 * time.Microsecond
		im2.Judge(0, 100, now, now+50*time.Microsecond)
	}
	reorders = int(im2.Stats.Reorders)
	if reorders == 0 {
		t.Fatal("mixed held/unheld frames must record reorders")
	}
	if im2.Stats.Judged != 2000 {
		t.Fatalf("Judged = %d", im2.Stats.Judged)
	}
}

func TestJitterBounded(t *testing.T) {
	im := New(Params{Jitter: 2 * time.Millisecond}, 5, nil)
	for i := 0; i < 1000; i++ {
		now := time.Duration(i) * time.Millisecond
		v := im.Judge(0, 100, now, now+time.Microsecond)
		if v.Drop || v.Dup {
			t.Fatalf("jitter-only params produced %+v", v)
		}
		if v.Delay < 0 || v.Delay >= 2*time.Millisecond {
			t.Fatalf("jitter %v out of [0, 2ms)", v.Delay)
		}
	}
}

func TestZeroParamsPassEverything(t *testing.T) {
	im := New(Params{}, 1, nil)
	for i := 0; i < 100; i++ {
		now := time.Duration(i) * time.Millisecond
		if v := im.Judge(0, 1500, now, now+time.Microsecond); v != (netsim.Verdict{}) {
			t.Fatalf("zero Params issued %+v", v)
		}
	}
	if im.Stats != (Counters{Judged: 100}) {
		t.Fatalf("Stats = %+v", im.Stats)
	}
}

func TestSidesIndependent(t *testing.T) {
	// A bottleneck on side 0 must not delay side 1: the two directions of
	// a full-duplex link have independent queues and chains.
	im := New(Params{Rate: 1_000_000}, 1, nil)
	im.Judge(0, 1000, 0, time.Microsecond)
	im.Judge(0, 1000, 0, time.Microsecond)
	v := im.Judge(1, 1000, 0, time.Microsecond)
	if v.Delay != 8*time.Millisecond {
		t.Fatalf("side 1 first frame delay = %v, want its own 8ms serialization only", v.Delay)
	}
}

func TestMetricsExported(t *testing.T) {
	met := obs.NewMetrics()
	im := New(Params{Loss: 1}, 1, met)
	im.Judge(0, 100, 0, time.Microsecond)
	if met.Counter("fault_frames") != 1 || met.Counter("fault_drops_loss") != 1 {
		t.Fatalf("fault counters not exported: frames=%d drops=%d",
			met.Counter("fault_frames"), met.Counter("fault_drops_loss"))
	}
}

// linkSink records frames delivered through a netsim link.
type linkSink struct {
	times []time.Duration
	sim   interface{ Now() time.Duration }
}

func (s *linkSink) Receive(_ *netsim.Port, _ []byte) { s.times = append(s.times, s.sim.Now()) }

func TestNetsimIntegration(t *testing.T) {
	// Loss=1 drops every frame; DupProb=1 delivers every frame twice.
	run := func(p Params) (delivered int, dropped int) {
		sim := newSim(t)
		link := netsim.NewLink(sim, 100_000_000, time.Microsecond)
		sink := &linkSink{sim: sim}
		src := link.Attach(&nullDevice{})
		link.Attach(sink)
		link.Impair = New(p, 11, nil)
		for i := 0; i < 10; i++ {
			src.Send(make([]byte, 100))
		}
		sim.Advance(time.Second)
		return len(sink.times), link.Dropped
	}
	if d, drop := run(Params{Loss: 1}); d != 0 || drop != 10 {
		t.Fatalf("Loss=1: delivered %d dropped %d", d, drop)
	}
	if d, drop := run(Params{DupProb: 1}); d != 20 || drop != 0 {
		t.Fatalf("DupProb=1: delivered %d dropped %d, want 20/0", d, drop)
	}
	if d, drop := run(Params{}); d != 10 || drop != 0 {
		t.Fatalf("zero params: delivered %d dropped %d", d, drop)
	}
}

type nullDevice struct{}

func (nullDevice) Receive(_ *netsim.Port, _ []byte) {}

func newSim(t *testing.T) *eventsim.Simulator {
	t.Helper()
	return eventsim.New(1)
}
