package faults

import (
	"fmt"
	"strings"
	"time"
)

// Profile names a canned impairment scenario. The zero value (and "clean")
// selects the paper's pristine testbed: no impairment layer is installed
// at all, so the simulation takes exactly the pre-faults code path.
type Profile string

// The built-in profiles.
const (
	// Clean is the paper's loss-free 100 Mbps LAN.
	Clean Profile = "clean"
	// Lossy1pct drops 1% of frames i.i.d. — the canonical "slightly lossy
	// path" every delay-measurement robustness study starts from.
	Lossy1pct Profile = "lossy1pct"
	// BurstyWiFi is a Gilbert–Elliott bursty-loss channel with jitter and
	// occasional reordering/duplication, shaped like an interfered 802.11
	// link: long clean stretches punctuated by loss bursts that force
	// back-to-back retransmissions.
	BurstyWiFi Profile = "burstywifi"
	// Congested is a rate-limited bottleneck with a finite queue: frames
	// pick up queueing delay and tail drops, plus mild random loss and
	// jitter — a loaded access link.
	Congested Profile = "congested"
)

// Profiles lists the built-in profiles in canonical (severity) order.
func Profiles() []Profile {
	return []Profile{Clean, Lossy1pct, BurstyWiFi, Congested}
}

// Parse resolves a user-supplied profile name, case-insensitively. The
// empty string and "none" mean Clean.
func Parse(s string) (Profile, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none", string(Clean):
		return Clean, nil
	case string(Lossy1pct):
		return Lossy1pct, nil
	case string(BurstyWiFi):
		return BurstyWiFi, nil
	case string(Congested):
		return Congested, nil
	}
	return Clean, fmt.Errorf("faults: unknown profile %q (have %v)", s, Profiles())
}

// Enabled reports whether the profile installs an impairment layer.
// Clean (and the zero value) run the unimpaired code path.
func (p Profile) Enabled() bool { return p != "" && p != Clean }

// String returns the canonical profile name ("clean" for the zero value).
func (p Profile) String() string {
	if p == "" {
		return string(Clean)
	}
	return string(p)
}

// Params returns the impairment parameters of a built-in profile. Unknown
// profiles return an error so a typo cannot silently mean "clean".
func (p Profile) Params() (Params, error) {
	switch p {
	case "", Clean:
		return Params{}, nil
	case Lossy1pct:
		return Params{Loss: 0.01}, nil
	case BurstyWiFi:
		return Params{
			GE: &GilbertElliott{
				GoodToBad: 0.05, // ~14% of frames see the bad state
				BadToGood: 0.30, // mean burst length ~3.3 frames
				LossGood:  0.001,
				LossBad:   0.35,
			},
			Jitter:       2 * time.Millisecond,
			ReorderProb:  0.02,
			ReorderDelay: 3 * time.Millisecond,
			DupProb:      0.005,
		}, nil
	case Congested:
		return Params{
			Rate:       10_000_000, // 10 Mbps bottleneck on the 100 Mbps wire
			QueueBytes: 32 << 10,   // ~26 ms of buffer at the drain rate
			Jitter:     3 * time.Millisecond,
			Loss:       0.003,
		}, nil
	}
	return Params{}, fmt.Errorf("faults: unknown profile %q (have %v)", string(p), Profiles())
}
