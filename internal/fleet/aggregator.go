package fleet

import (
	"errors"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/browsermetric/browsermetric/internal/fleetwire"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// AggConfig tunes an Aggregator.
type AggConfig struct {
	// Interval is the snapshot publish period for Start (default 1s).
	Interval time.Duration
	// StaleAfter is how long a node may stay silent before it is
	// reported stale and its sessions leave the cluster total
	// (default 3×Interval). Its cumulative aggregates remain.
	StaleAfter time.Duration
	// Targets are the sketch quantile targets (default
	// obs.DefaultSketchTargets); they must match the collectors'.
	Targets []obs.SketchTarget
	// Metrics receives the fleet_agg_* and fleet_stream_* series.
	Metrics *obs.Metrics
	// HistoryDepth/HistoryEvery/KeepAlive tune the shared live view
	// exactly as in Config.
	HistoryDepth int
	HistoryEvery int
	KeepAlive    time.Duration
	// MaxBody bounds one ingest POST (default 256 MiB).
	MaxBody int64
}

// nodeKey is the cluster aggregate key: which node reported the series.
type nodeKey struct {
	node string
	key  Key
}

func nodeKeyLess(a, b nodeKey) bool {
	if a.node != b.node {
		return a.node < b.node
	}
	return keyLess(a.key, b.key)
}

// nodeState is per-collector liveness bookkeeping. Sequence numbers
// are tracked per epoch (the collector's boot id): a frame from a newer
// epoch resets the high-water mark so a restarted collector's frames
// merge again instead of reading as duplicates of its previous life.
type nodeState struct {
	epoch    uint64
	lastSeq  uint64
	lastAt   time.Time
	sessions uint64
}

// NodeStatus is one collector's liveness row in a cluster snapshot.
type NodeStatus struct {
	Node     string  `json:"node"`
	Sessions uint64  `json:"sessions"`
	LastSeq  uint64  `json:"last_seq"`
	AgeMs    float64 `json:"age_ms"`
	Stale    bool    `json:"stale"`
}

// Aggregator is the root of the multi-node fleet plane: it accepts
// fleetwire frames POSTed by collector uplinks, merges each node's tick
// deltas into cluster-wide cumulative sketches keyed by (node, method,
// browser, region), and publishes periodic snapshots to the same live
// view (SSE dashboard, /live/history) a single-node Registry serves.
//
// Duplicate frames (a retry that raced its ack) are detected by the
// per-node sequence number and acknowledged without merging; sequence
// gaps (frames lost to an uplink overflow) are counted. A node that
// stops reporting goes stale — surfaced in the snapshot — without ever
// wedging the merge loop.
type Aggregator struct {
	*liveView
	cfg   AggConfig
	ready obs.Readiness

	mu      sync.Mutex
	nodes   map[string]*nodeState
	globals map[nodeKey]*global
	// Tick-local ingest counters, drained into obs.Metrics at publish.
	frames, dups, gaps uint64
	restarts           uint64
	rejCorrupt, rejVer uint64

	pubMu      sync.Mutex
	seq        uint64
	prevCounts map[nodeKey]uint64

	tickMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// NewAggregator builds an Aggregator and registers its metric help.
func NewAggregator(cfg AggConfig) *Aggregator {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.Interval
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 256 << 20
	}
	a := &Aggregator{
		liveView:   newLiveView(cfg.HistoryDepth, cfg.HistoryEvery, cfg.KeepAlive),
		cfg:        cfg,
		nodes:      make(map[string]*nodeState),
		globals:    make(map[nodeKey]*global),
		prevCounts: make(map[nodeKey]uint64),
	}
	registerFleetHelp(cfg.Metrics)
	registerAggHelp(cfg.Metrics)
	return a
}

func registerAggHelp(m *obs.Metrics) {
	if !m.Enabled() {
		return
	}
	m.SetHelp("fleet_agg_nodes", "Collector nodes the aggregator has heard from.")
	m.SetHelp("fleet_agg_nodes_stale", "Nodes past the staleness threshold.")
	m.SetHelp("fleet_agg_keys", "Distinct (node, method, browser, region) cluster series.")
	m.SetHelp("fleet_agg_frames_total", "Frames merged into cluster aggregates.")
	m.SetHelp("fleet_agg_frames_duplicate_total", "Frames acknowledged but skipped as duplicates (retry races).")
	m.SetHelp("fleet_agg_frames_gap_total", "Sequence numbers skipped by arriving frames (uplink drops).")
	m.SetHelp("fleet_agg_node_restarts_total", "Collector restarts observed (a frame arrived with a newer epoch).")
	m.SetHelp("fleet_agg_frames_rejected_total", "Frames rejected at ingest, by reason.")
	m.SetHelp("fleet_agg_publish_ms", "Wall-clock duration of one cluster publish pass in milliseconds.")
	m.SetHelp("fleet_agg_sessions", "Live sessions summed over fresh (non-stale) nodes.")
}

// Ready reports whether at least one frame has been accepted — the
// root's /readyz condition.
func (a *Aggregator) Ready() bool { return a.ready.Ready() }

// IngestHandler accepts POSTed fleetwire frames (one or more,
// back-to-back, in one body). The whole body is parsed; merged and
// duplicate frames are acknowledged. Any rejected frame (corrupt bytes
// or a version mismatch) fails the request with 400 so a well-behaved
// uplink drops rather than endlessly retries it — frames already merged
// from the same body stay merged, and their retry would dedupe anyway.
func (a *Aggregator) IngestHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST frames", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(req.Body, a.cfg.MaxBody+1))
		if err != nil || int64(len(body)) > a.cfg.MaxBody {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		rejected := false
		for len(body) > 0 {
			f, n, err := fleetwire.DecodeFrame(body)
			switch {
			case err == nil:
				a.apply(f)
				body = body[n:]
			case errors.Is(err, fleetwire.ErrVersion) && n > 0:
				// Well-formed frame of another version: skippable, so
				// later frames in the body still merge.
				a.countReject("version")
				rejected = true
				body = body[n:]
			default:
				// Corrupt or torn: the rest of the body is unparseable.
				a.countReject("corrupt")
				rejected = true
				body = nil
			}
		}
		if rejected {
			http.Error(w, "rejected frames", http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
}

func (a *Aggregator) countReject(reason string) {
	a.mu.Lock()
	if reason == "version" {
		a.rejVer++
	} else {
		a.rejCorrupt++
	}
	a.mu.Unlock()
}

// apply merges one decoded frame into the cluster state. Duplicates
// (same epoch, seq at or below the node's high-water mark) are counted
// and skipped; a frame from a newer epoch is a collector restart, so
// the sequence high-water mark resets and its frames merge again. A
// frame from an older epoch is a straggler from the previous life (an
// in-flight retry that landed after the restart): it is acknowledged
// as a duplicate rather than merged, since the new epoch has already
// taken over the node's row.
func (a *Aggregator) apply(f *fleetwire.Frame) {
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	ns := a.nodes[f.Node]
	if ns == nil {
		ns = &nodeState{epoch: f.Epoch}
		a.nodes[f.Node] = ns
	}
	switch {
	case f.Epoch < ns.epoch:
		a.dups++
		ns.lastAt = now // stale-epoch straggler; the node itself is alive
		return
	case f.Epoch > ns.epoch:
		ns.epoch = f.Epoch
		ns.lastSeq = 0
		a.restarts++
	}
	if f.Seq <= ns.lastSeq {
		a.dups++
		ns.lastAt = now // the node is alive, just retrying
		return
	}
	if ns.lastSeq != 0 && f.Seq > ns.lastSeq+1 {
		a.gaps += f.Seq - ns.lastSeq - 1
	}
	ns.lastSeq = f.Seq
	ns.lastAt = now
	ns.sessions = f.Sessions
	for i := range f.Keys {
		kd := &f.Keys[i]
		nk := nodeKey{node: f.Node, key: Key{Method: kd.Method, Browser: kd.Browser, Region: kd.Region}}
		g := a.globals[nk]
		if g == nil {
			g = &global{sketch: obs.NewSketch(a.cfg.Targets...)}
			a.globals[nk] = g
		}
		g.sketch.Merge(kd.Sketch)
		g.count += kd.Count
		g.lost += kd.Lost
		g.jitterSum += kd.JitterSum
		g.jitterN += kd.JitterN
	}
	a.frames++
	a.ready.MarkReady()
}

// Publish builds and publishes one cluster snapshot: every (node, key)
// series' cumulative stats plus per-node liveness, with stale nodes'
// sessions excluded from the cluster total. It is the aggregator's
// analog of Registry.FanIn and serializes against itself.
func (a *Aggregator) Publish() Snapshot {
	a.pubMu.Lock()
	defer a.pubMu.Unlock()
	start := time.Now()

	type row struct {
		nk nodeKey
		ks KeyStats
	}
	a.mu.Lock()
	rows := make([]row, 0, len(a.globals))
	for nk, g := range a.globals {
		ks := g.stats(nk.key)
		ks.Node = nk.node
		rows = append(rows, row{nk: nk, ks: ks})
	}
	var sessions uint64
	nodes := make([]NodeStatus, 0, len(a.nodes))
	var stale int
	for name, ns := range a.nodes {
		age := time.Since(ns.lastAt)
		st := NodeStatus{
			Node: name, Sessions: ns.sessions, LastSeq: ns.lastSeq,
			AgeMs: float64(age) / float64(time.Millisecond),
			Stale: age > a.cfg.StaleAfter,
		}
		if st.Stale {
			stale++
		} else {
			sessions += ns.sessions
		}
		nodes = append(nodes, st)
	}
	frames, dups, gaps, restarts := a.frames, a.dups, a.gaps, a.restarts
	rejC, rejV := a.rejCorrupt, a.rejVer
	a.frames, a.dups, a.gaps, a.restarts, a.rejCorrupt, a.rejVer = 0, 0, 0, 0, 0, 0
	nNodes, nKeys := len(a.nodes), len(a.globals)
	a.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool { return nodeKeyLess(rows[i].nk, rows[j].nk) })
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Node < nodes[j].Node })

	a.seq++
	snap := Snapshot{Seq: a.seq, Sessions: int(sessions), Nodes: nodes}
	snap.Keys = make([]KeyStats, 0, len(rows))
	for _, r := range rows {
		snap.Keys = append(snap.Keys, r.ks)
	}
	delta := Snapshot{Seq: snap.Seq, Sessions: snap.Sessions, Nodes: nodes}
	for i, r := range rows {
		if a.prevCounts[r.nk] != r.ks.Count {
			delta.Keys = append(delta.Keys, snap.Keys[i])
			a.prevCounts[r.nk] = r.ks.Count
		}
	}
	a.liveView.publish(snap, delta)

	took := time.Since(start)
	if m := a.cfg.Metrics; m.Enabled() {
		m.Set("fleet_agg_nodes", float64(nNodes))
		m.Set("fleet_agg_nodes_stale", float64(stale))
		m.Set("fleet_agg_keys", float64(nKeys))
		m.Set("fleet_agg_sessions", float64(sessions))
		m.Add("fleet_agg_frames_total", int64(frames))
		m.Add("fleet_agg_frames_duplicate_total", int64(dups))
		m.Add("fleet_agg_frames_gap_total", int64(gaps))
		m.Add("fleet_agg_node_restarts_total", int64(restarts))
		m.Add(obs.L("fleet_agg_frames_rejected_total", "reason", "corrupt"), int64(rejC))
		m.Add(obs.L("fleet_agg_frames_rejected_total", "reason", "version"), int64(rejV))
		m.SketchDur("fleet_agg_publish_ms", took)
		meterStream(m, a.liveView)
	}
	return snap
}

// Start launches the periodic publish ticker.
func (a *Aggregator) Start() {
	a.tickMu.Lock()
	defer a.tickMu.Unlock()
	if a.stop != nil {
		return
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				a.Publish()
			}
		}
	}(a.stop, a.done)
}

// Stop halts the ticker, then publishes once more so every merged frame
// reaches the snapshot.
func (a *Aggregator) Stop() {
	a.tickMu.Lock()
	defer a.tickMu.Unlock()
	if a.stop == nil {
		return
	}
	close(a.stop)
	<-a.done
	a.stop, a.done = nil, nil
	a.Publish()
}
