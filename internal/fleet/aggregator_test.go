package fleet

import (
	"bytes"
	"encoding/binary"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/fleetwire"
	"github.com/browsermetric/browsermetric/internal/obs"
)

func postFrames(t *testing.T, srv *httptest.Server, body []byte) int {
	t.Helper()
	resp, err := http.Post(srv.URL, "application/x-bmwf", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func encodeTick(t *testing.T, node string, seq uint64, sessions uint64, k Key, vals ...float64) []byte {
	t.Helper()
	return encodeTickEpoch(t, node, 0, seq, sessions, k, vals...)
}

func encodeTickEpoch(t *testing.T, node string, epoch, seq, sessions uint64, k Key, vals ...float64) []byte {
	t.Helper()
	s := obs.NewSketch()
	for _, v := range vals {
		s.Observe(v)
	}
	b, err := fleetwire.AppendFrame(nil, &fleetwire.Frame{
		Node: node, Epoch: epoch, Seq: seq, Sessions: sessions,
		Keys: []fleetwire.KeyDelta{{
			Method: k.Method, Browser: k.Browser, Region: k.Region,
			Count: uint64(len(vals)), Sketch: s,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAggregatorMergesNodesIntoClusterSnapshot(t *testing.T) {
	a := NewAggregator(AggConfig{})
	srv := httptest.NewServer(a.IngestHandler())
	defer srv.Close()
	k := Key{Method: "http-get", Browser: "chrome", Region: "us"}

	if a.Ready() {
		t.Fatal("ready before any frame")
	}
	if code := postFrames(t, srv, encodeTick(t, "c1", 1, 10, k, 1, 2, 3)); code != 200 {
		t.Fatalf("ingest status = %d", code)
	}
	postFrames(t, srv, encodeTick(t, "c2", 1, 5, k, 100, 200))
	if !a.Ready() {
		t.Fatal("not ready after accepted frames")
	}

	snap := a.Publish()
	if snap.Seq != 1 || snap.Sessions != 15 {
		t.Fatalf("snapshot = seq %d sessions %d", snap.Seq, snap.Sessions)
	}
	if len(snap.Keys) != 2 {
		t.Fatalf("cluster keys = %d, want 2 (one per node)", len(snap.Keys))
	}
	if snap.Keys[0].Node != "c1" || snap.Keys[0].Count != 3 ||
		snap.Keys[1].Node != "c2" || snap.Keys[1].Count != 2 {
		t.Fatalf("rows = %+v", snap.Keys)
	}
	if len(snap.Nodes) != 2 || snap.Nodes[0].Node != "c1" || snap.Nodes[0].Stale {
		t.Fatalf("nodes = %+v", snap.Nodes)
	}
	// Second tick from c1 accumulates.
	postFrames(t, srv, encodeTick(t, "c1", 2, 10, k, 4, 5))
	snap = a.Publish()
	if snap.Keys[0].Count != 5 {
		t.Fatalf("c1 cumulative count = %d, want 5", snap.Keys[0].Count)
	}
}

func TestAggregatorDuplicateFrameAckedNotDoubleCounted(t *testing.T) {
	m := obs.NewMetrics()
	a := NewAggregator(AggConfig{Metrics: m})
	srv := httptest.NewServer(a.IngestHandler())
	defer srv.Close()
	k := Key{Method: "udp", Browser: "firefox", Region: "eu"}

	frame := encodeTick(t, "c1", 1, 3, k, 10, 20, 30)
	if code := postFrames(t, srv, frame); code != 200 {
		t.Fatalf("first delivery status = %d", code)
	}
	// A retry that raced its ack delivers the identical frame again: it
	// must be acknowledged (200, so the uplink stops retrying) but not
	// merged again.
	if code := postFrames(t, srv, frame); code != 200 {
		t.Fatalf("duplicate delivery status = %d, want 200 ack", code)
	}
	snap := a.Publish()
	if snap.Keys[0].Count != 3 {
		t.Fatalf("count = %d after duplicate, want 3", snap.Keys[0].Count)
	}
	if got := m.Counter("fleet_agg_frames_duplicate_total"); got != 1 {
		t.Fatalf("duplicate counter = %d", got)
	}
	if got := m.Counter("fleet_agg_frames_total"); got != 1 {
		t.Fatalf("merged counter = %d", got)
	}
}

// TestAggregatorRestartedCollectorMergesAgain: a collector that crashes
// and comes back resumes at seq 1 under a new epoch; the root must
// merge its frames rather than discard them as duplicates of the
// previous life, while a straggler frame from the old epoch (an
// in-flight retry that landed after the restart) still dedupes.
func TestAggregatorRestartedCollectorMergesAgain(t *testing.T) {
	m := obs.NewMetrics()
	a := NewAggregator(AggConfig{Metrics: m})
	srv := httptest.NewServer(a.IngestHandler())
	defer srv.Close()
	k := Key{Method: "http-get", Browser: "chrome", Region: "us"}

	postFrames(t, srv, encodeTickEpoch(t, "c1", 100, 5, 2, k, 1, 2))
	if code := postFrames(t, srv, encodeTickEpoch(t, "c1", 200, 1, 1, k, 3)); code != 200 {
		t.Fatalf("post-restart frame status = %d", code)
	}
	postFrames(t, srv, encodeTickEpoch(t, "c1", 100, 6, 2, k, 9, 9, 9))

	snap := a.Publish()
	if snap.Keys[0].Count != 3 {
		t.Fatalf("count = %d, want 3 (2 pre-restart + 1 post-restart, straggler skipped)", snap.Keys[0].Count)
	}
	if got := m.Counter("fleet_agg_node_restarts_total"); got != 1 {
		t.Fatalf("restart counter = %d, want 1", got)
	}
	if got := m.Counter("fleet_agg_frames_duplicate_total"); got != 1 {
		t.Fatalf("duplicate counter = %d, want 1 (the old-epoch straggler)", got)
	}
	if got := m.Counter("fleet_agg_frames_gap_total"); got != 0 {
		t.Fatalf("gap counter = %d, want 0 (a restart is not an uplink drop)", got)
	}
}

func TestAggregatorSequenceGapCounted(t *testing.T) {
	m := obs.NewMetrics()
	a := NewAggregator(AggConfig{Metrics: m})
	srv := httptest.NewServer(a.IngestHandler())
	defer srv.Close()
	k := Key{Method: "udp", Browser: "chrome", Region: "us"}
	postFrames(t, srv, encodeTick(t, "c1", 1, 1, k, 1))
	postFrames(t, srv, encodeTick(t, "c1", 4, 1, k, 2)) // 2 and 3 lost
	a.Publish()
	if got := m.Counter("fleet_agg_frames_gap_total"); got != 2 {
		t.Fatalf("gap counter = %d, want 2", got)
	}
}

func TestAggregatorRejectsVersionMismatchAndCorrupt(t *testing.T) {
	m := obs.NewMetrics()
	a := NewAggregator(AggConfig{Metrics: m})
	srv := httptest.NewServer(a.IngestHandler())
	defer srv.Close()
	k := Key{Method: "http-get", Browser: "opera", Region: "sa"}

	// Version bump: CRC covers only the payload, so the frame stays
	// well-formed — just of a version this root does not speak.
	future := encodeTick(t, "c1", 1, 1, k, 5)
	binary.LittleEndian.PutUint16(future[4:], fleetwire.Version+1)
	if code := postFrames(t, srv, future); code != 400 {
		t.Fatalf("version mismatch status = %d, want 400", code)
	}

	corrupt := encodeTick(t, "c1", 1, 1, k, 5)
	corrupt[len(corrupt)/2] ^= 0x01
	if code := postFrames(t, srv, corrupt); code != 400 {
		t.Fatalf("corrupt status = %d, want 400", code)
	}

	// A version-skipped frame must not block a good frame behind it in
	// the same body.
	mixed := append(append([]byte(nil), future...), encodeTick(t, "c1", 1, 1, k, 7)...)
	if code := postFrames(t, srv, mixed); code != 400 {
		t.Fatalf("mixed body status = %d (reject reported)", code)
	}

	snap := a.Publish()
	if len(snap.Keys) != 1 || snap.Keys[0].Count != 1 {
		t.Fatalf("cluster state = %+v, want only the good frame merged", snap.Keys)
	}
	if got := m.Counter(obs.L("fleet_agg_frames_rejected_total", "reason", "version")); got != 2 {
		t.Fatalf("version rejects = %d, want 2", got)
	}
	if got := m.Counter(obs.L("fleet_agg_frames_rejected_total", "reason", "corrupt")); got != 1 {
		t.Fatalf("corrupt rejects = %d, want 1", got)
	}
	if missing := m.FamiliesMissingHelp(); len(missing) != 0 {
		t.Fatalf("families missing help: %v", missing)
	}
}

// TestAggregatorStaleNodeDoesNotWedgeMerges: a collector that vanishes
// mid-stream goes stale (and its sessions leave the total) while other
// nodes keep merging normally.
func TestAggregatorStaleNodeDoesNotWedgeMerges(t *testing.T) {
	a := NewAggregator(AggConfig{StaleAfter: 30 * time.Millisecond})
	srv := httptest.NewServer(a.IngestHandler())
	defer srv.Close()
	k := Key{Method: "websocket", Browser: "chrome", Region: "ap"}

	postFrames(t, srv, encodeTick(t, "gone", 1, 7, k, 1, 2))
	postFrames(t, srv, encodeTick(t, "alive", 1, 3, k, 10))
	snap := a.Publish()
	if snap.Sessions != 10 || len(snap.Nodes) != 2 {
		t.Fatalf("fresh snapshot = %+v", snap)
	}

	time.Sleep(50 * time.Millisecond)
	// "gone" is silent past the threshold; "alive" keeps reporting.
	postFrames(t, srv, encodeTick(t, "alive", 2, 3, k, 11))
	snap = a.Publish()
	var goneStale, aliveStale bool
	for _, n := range snap.Nodes {
		if n.Node == "gone" {
			goneStale = n.Stale
		}
		if n.Node == "alive" {
			aliveStale = n.Stale
		}
	}
	if !goneStale || aliveStale {
		t.Fatalf("staleness = gone:%v alive:%v", goneStale, aliveStale)
	}
	if snap.Sessions != 3 {
		t.Fatalf("sessions = %d, want stale node excluded", snap.Sessions)
	}
	// The stale node's cumulative aggregates remain visible.
	if len(snap.Keys) != 2 || snap.Keys[1].Count != 2 {
		t.Fatalf("cluster keys after staleness = %+v", snap.Keys)
	}
	// And it can come back: a late frame revives it.
	postFrames(t, srv, encodeTick(t, "gone", 2, 7, k, 3))
	if snap = a.Publish(); snap.Sessions != 10 {
		t.Fatalf("revived sessions = %d", snap.Sessions)
	}
}

// TestClusterEquivalence is the multi-node acceptance property: three
// real collectors (Registry + Uplink) feeding a root over HTTP produce
// per-node cluster rows identical to each collector's own single-node
// snapshot — same counts and the very same quantile answers, because
// the wire ships exact sketch state.
func TestClusterEquivalence(t *testing.T) {
	aggM := obs.NewMetrics()
	a := NewAggregator(AggConfig{Metrics: aggM})
	ingest := httptest.NewServer(a.IngestHandler())
	defer ingest.Close()

	k1 := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	k2 := Key{Method: "udp", Browser: "firefox", Region: "eu"}
	nodes := []string{"c1", "c2", "c3"}
	regs := make([]*Registry, len(nodes))
	for i, name := range nodes {
		m := obs.NewMetrics()
		u, err := NewUplink(UplinkConfig{Node: name, URL: ingest.URL, Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		defer u.Stop()
		r := New(Config{DeltaSink: u.Sink, Metrics: m})
		regs[i] = r
		// Distinct per-node sample streams across several ticks.
		for tick := 0; tick < 4; tick++ {
			for s := 0; s < 50; s++ {
				id := uint64(s + 1)
				regs[i].Observe(id, k1, float64((i+1)*100+tick*10+s%7), false)
				if s%5 == 0 {
					regs[i].Observe(id, k2, float64(i*3+s), s%10 == 0)
				}
			}
			r.FanIn()
		}
		waitFor(t, name+" uplink drain", func() bool { return u.pending() == 0 && u.Ready() })
	}

	snap := a.Publish()
	if got := len(snap.Keys); got != len(nodes)*2 {
		t.Fatalf("cluster rows = %d, want %d", got, len(nodes)*2)
	}
	for i, name := range nodes {
		local := regs[i].Snapshot()
		var clusterRows []KeyStats
		for _, ks := range snap.Keys {
			if ks.Node == name {
				clusterRows = append(clusterRows, ks)
			}
		}
		if len(clusterRows) != len(local.Keys) {
			t.Fatalf("%s: cluster rows = %d, local = %d", name, len(clusterRows), len(local.Keys))
		}
		for j, ks := range clusterRows {
			lk := local.Keys[j]
			ks.Node = ""
			if ks != lk {
				t.Fatalf("%s key %d diverged:\ncluster %+v\nlocal   %+v", name, j, ks, lk)
			}
		}
	}
}

// TestAggregatorMetricsByteStable: two consecutive scrapes of an idle
// aggregator produce identical bytes.
func TestAggregatorMetricsByteStable(t *testing.T) {
	m := obs.NewMetrics()
	a := NewAggregator(AggConfig{Metrics: m})
	srv := httptest.NewServer(a.IngestHandler())
	defer srv.Close()
	k := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	postFrames(t, srv, encodeTick(t, "c1", 1, 2, k, 1, 2, 3))
	a.Publish()

	var one, two strings.Builder
	if err := m.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("consecutive scrapes differ")
	}
	if !strings.Contains(one.String(), "fleet_agg_frames_total 1") {
		t.Fatalf("exposition missing merged frame count:\n%s", one.String())
	}
}
