package fleet

import "testing"

// TestObserveSteadyStateZeroAlloc pins the ingest hot path at zero
// allocations per sample once a session and its aggregate exist: the
// shard maps, the aggregate's sketch buckets, and the sketch's buffered
// batch all reach capacity during warm-up, after which folding a sample
// is pure arithmetic under the shard lock. A regression here multiplies
// directly by fleet sample volume (100k sessions × rounds), so the guard
// is exact — not a ceiling.
func TestObserveSteadyStateZeroAlloc(t *testing.T) {
	r := New(Config{Shards: 64})
	k := Key{Method: "websocket", Browser: "chrome", Region: "eu"}
	// Warm-up: register the session, materialize the aggregate, and cycle
	// the sketch's internal buffer through several flushes so bucket
	// storage and buffer capacity stop growing.
	for i := 0; i < 4096; i++ {
		if !r.Observe(7, k, 12.5, false) {
			t.Fatal("warm-up Observe rejected")
		}
	}

	if allocs := testing.AllocsPerRun(2000, func() {
		r.Observe(7, k, 12.5, false)
	}); allocs != 0 {
		t.Errorf("steady-state Observe allocated %.2f objects/op, want 0", allocs)
	}
	// The loss path skips the sketch entirely, so it must be
	// allocation-free too.
	if allocs := testing.AllocsPerRun(2000, func() {
		r.Observe(7, k, 0, true)
	}); allocs != 0 {
		t.Errorf("steady-state lost-sample Observe allocated %.2f objects/op, want 0", allocs)
	}
}
