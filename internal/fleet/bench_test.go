package fleet

import (
	"math/rand"
	"testing"
)

// benchKeys is a realistic key population: 5 methods × 6 browsers × 4
// regions.
func benchKeys() []Key {
	methods := []string{"http-get", "http-post", "websocket", "tcp", "udp"}
	browsers := []string{"chrome", "firefox", "ie", "opera", "safari", "modern"}
	regions := []string{"us", "eu", "ap", "sa"}
	var keys []Key
	for _, m := range methods {
		for _, b := range browsers {
			for _, r := range regions {
				keys = append(keys, Key{Method: m, Browser: b, Region: r})
			}
		}
	}
	return keys
}

// BenchmarkObserve measures the ingest hot path: one sample folded into
// a shard aggregate under the shard lock.
func BenchmarkObserve(b *testing.B) {
	r := New(Config{Shards: 64})
	keys := benchKeys()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		r.Observe(uint64(i%10000), k, 10+rng.Float64()*5, false)
	}
}

// BenchmarkFanIn measures one collector pass over 64 shards carrying one
// tick's worth of samples across the full key population.
func BenchmarkFanIn(b *testing.B) {
	r := New(Config{Shards: 64})
	keys := benchKeys()
	rng := rand.New(rand.NewSource(2))
	fill := func() {
		for i := 0; i < 20000; i++ {
			r.Observe(uint64(i%10000), keys[i%len(keys)], 10+rng.Float64()*5, false)
		}
	}
	fill()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.FanIn()
		b.StopTimer()
		fill()
		b.StartTimer()
	}
}
