// Package fleet is the fleet-scale aggregation plane: it folds delay
// samples from very many concurrent client sessions into bounded
// per-(method, browser, region) state and periodically fans the shards
// into a global snapshot that the streaming dashboard and the Prometheus
// exposition read.
//
// The design follows the scaling constraints the ROADMAP's live-platform
// item imposes:
//
//   - ingest is sharded: sessions hash to one of a power-of-two number of
//     shards, each with its own lock, so 100k concurrent writers contend
//     only within a shard;
//   - per-session state is bounded (16 bytes: the previous delay, for
//     jitter) and the session population is capped — over-cap sessions
//     are rejected and counted, never queued;
//   - per-shard aggregates are *delta* sketches: the fan-in pass swaps
//     each one for a reset spare and merges the taken sketch into the
//     collector-owned cumulative summary, so shard sketches never grow
//     past one tick's worth of compressed tuples;
//   - self-metering follows Mizrahi et al.'s observer-effect rule: the
//     per-sample hot path touches no metrics registry at all. Shard-local
//     counters are folded into obs.Metrics only at fan-in ticks, and the
//     fan-in pass times itself (fleet_fanin_ms).
package fleet

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/browsermetric/browsermetric/internal/obs"
)

// Key identifies one aggregate series: the measurement method, the
// client browser model, and the client region.
type Key struct {
	Method  string
	Browser string
	Region  string
}

func keyLess(a, b Key) bool {
	if a.Method != b.Method {
		return a.Method < b.Method
	}
	if a.Browser != b.Browser {
		return a.Browser < b.Browser
	}
	return a.Region < b.Region
}

// Config tunes a Registry.
type Config struct {
	// Shards is the shard count, rounded up to a power of two
	// (default 16). More shards mean less ingest contention and a
	// slightly longer fan-in pass.
	Shards int
	// MaxSessions caps the live session population (default 262144).
	// Observe calls for new sessions beyond the cap are rejected and
	// counted in fleet_sessions_rejected_total.
	MaxSessions int
	// Interval is the fan-in period for Start (default 1s). FanIn can
	// always be called manually, ticker or not.
	Interval time.Duration
	// Targets are the sketch quantile targets for the per-key delay
	// summaries (default obs.DefaultSketchTargets).
	Targets []obs.SketchTarget
	// Metrics receives the fleet_* self-metering series at each fan-in
	// tick. nil disables metering at zero cost.
	Metrics *obs.Metrics
	// HistoryDepth bounds the dashboard history ring: how many past
	// snapshots /live/history retains and Last-Event-ID reconnects can
	// replay (default 64).
	HistoryDepth int
	// HistoryEvery subsamples history recording: every Nth changed
	// snapshot enters the ring (default 1, i.e. all of them). Raising it
	// trades scrub resolution for a longer covered window at the same
	// memory bound.
	HistoryEvery int
	// KeepAlive is the idle SSE heartbeat period (default 15s).
	KeepAlive time.Duration
	// DeltaSink, when set, receives every fan-in tick's coalesced
	// per-key deltas synchronously at the end of the pass — the hook
	// the uplink ships multi-node frames from. Idle ticks arrive with
	// Keys empty (a heartbeat carrying just the sequence number and
	// session count). The sketches in the TickDelta are pooled: they
	// are valid only for the duration of the call and must not be
	// retained (encode them, don't keep them).
	DeltaSink func(TickDelta)
}

// DeltaKey is one key's aggregate delta for a single fan-in tick.
type DeltaKey struct {
	Key       Key
	Count     uint64
	Lost      uint64
	JitterSum float64
	JitterN   uint64
	Sketch    *obs.Sketch // tick-delta sketch; valid only during the sink call
}

// TickDelta is everything one fan-in tick added: the tick's sequence
// number, the live session count, and the per-key deltas.
type TickDelta struct {
	Seq      uint64
	Sessions int
	Keys     []DeltaKey
}

// session is the bounded per-client state: just enough to turn the next
// delay sample into a jitter increment.
type session struct {
	last    float64
	hasLast bool
}

// agg is one shard's delta aggregate for one key since the last fan-in.
type agg struct {
	sketch    *obs.Sketch
	count     uint64
	lost      uint64
	jitterSum float64
	jitterN   uint64
}

// shard holds one lock's worth of sessions and delta aggregates.
type shard struct {
	mu       sync.Mutex
	sessions map[uint64]session
	aggs     map[Key]*agg

	// Tick-local event counters, drained at fan-in.
	started  uint64
	ended    uint64
	rejected uint64
	samples  uint64
	lost     uint64
}

// global is the collector-owned cumulative aggregate for one key.
type global struct {
	sketch    *obs.Sketch
	count     uint64
	lost      uint64
	jitterSum float64
	jitterN   uint64
}

// Registry is the fleet aggregation plane. Observe/End are safe for
// arbitrary concurrent use; FanIn may run concurrently with ingest but
// serializes against itself. The embedded liveView provides Snapshot,
// LiveHandler, HistoryHandler and History.
type Registry struct {
	*liveView

	cfg    Config
	mask   uint64
	shards []*shard
	active atomic.Int64

	fanMu   sync.Mutex
	globals map[Key]*global
	spare   []*obs.Sketch // reset delta sketches, reused across ticks
	seq     uint64
	// prevCounts lets FanIn compute which keys changed since the last
	// snapshot — the delta the stream pushes.
	prevCounts map[Key]uint64

	tickMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// New builds a Registry and registers the fleet_* metric help text.
func New(cfg Config) *Registry {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 262144
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	r := &Registry{
		liveView:   newLiveView(cfg.HistoryDepth, cfg.HistoryEvery, cfg.KeepAlive),
		cfg:        cfg,
		mask:       uint64(n - 1),
		shards:     make([]*shard, n),
		globals:    make(map[Key]*global),
		prevCounts: make(map[Key]uint64),
	}
	for i := range r.shards {
		r.shards[i] = &shard{
			sessions: make(map[uint64]session),
			aggs:     make(map[Key]*agg),
		}
	}
	registerFleetHelp(cfg.Metrics)
	return r
}

func registerFleetHelp(m *obs.Metrics) {
	if !m.Enabled() {
		return
	}
	m.SetHelp("fleet_sessions_active", "Live probe sessions currently tracked by the fleet registry.")
	m.SetHelp("fleet_sessions_started_total", "Probe sessions admitted since start.")
	m.SetHelp("fleet_sessions_ended_total", "Probe sessions ended since start.")
	m.SetHelp("fleet_sessions_rejected_total", "Probe sessions rejected because the session cap was reached.")
	m.SetHelp("fleet_samples_total", "Delay samples folded into shard aggregates.")
	m.SetHelp("fleet_samples_lost_total", "Samples reported as lost probes.")
	m.SetHelp("fleet_keys", "Distinct (method, browser, region) aggregate keys.")
	m.SetHelp("fleet_fanin_total", "Fan-in passes completed.")
	m.SetHelp("fleet_fanin_ms", "Wall-clock duration of one fan-in pass in milliseconds (streaming quantile sketch).")
	m.SetHelp("fleet_stream_subscribers", "Live SSE dashboard subscribers.")
	m.SetHelp("fleet_stream_events_total", "SSE events delivered to subscribers.")
	m.SetHelp("fleet_stream_dropped_total", "SSE events dropped because a subscriber buffer was full.")
	m.SetHelp("fleet_stream_bytes_total", "Bytes of SSE event payload delivered to subscribers.")
	m.SetHelp("fleet_stream_reconnects_total", "SSE subscribers that resumed with Last-Event-ID.")
	m.SetHelp("fleet_history_snapshots", "Snapshots retained in the dashboard history ring.")
}

func (r *Registry) shardFor(id uint64) *shard {
	// Fibonacci hash spreads sequential session ids across shards.
	return r.shards[(id*0x9e3779b97f4a7c15)>>32&r.mask]
}

// Observe folds one sample from a session into its shard: the delay (ms)
// into the key's delta sketch, the |Δdelay| jitter increment against the
// session's previous delay, and the loss flag. Unknown sessions are
// admitted on first sight; it reports false (and counts a rejection)
// when the session cap is reached. Lost probes carry no delay: only the
// loss counter moves.
func (r *Registry) Observe(id uint64, key Key, delayMs float64, lost bool) bool {
	sh := r.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if !ok {
		if r.active.Load() >= int64(r.cfg.MaxSessions) {
			sh.rejected++
			sh.mu.Unlock()
			return false
		}
		r.active.Add(1)
		sh.started++
	}
	a := sh.aggs[key]
	if a == nil {
		a = &agg{sketch: obs.NewSketch(r.cfg.Targets...)}
		sh.aggs[key] = a
	}
	sh.samples++
	a.count++
	if lost {
		sh.lost++
		a.lost++
	} else {
		a.sketch.Observe(delayMs)
		if s.hasLast {
			d := delayMs - s.last
			if d < 0 {
				d = -d
			}
			a.jitterSum += d
			a.jitterN++
		}
		s.last = delayMs
		s.hasLast = true
	}
	sh.sessions[id] = s
	sh.mu.Unlock()
	return true
}

// End removes a session, freeing its slot under the cap. Ending an
// unknown session is a no-op.
func (r *Registry) End(id uint64) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.sessions[id]; ok {
		delete(sh.sessions, id)
		sh.ended++
		r.active.Add(-1)
	}
	sh.mu.Unlock()
}

// Sessions returns the live session count.
func (r *Registry) Sessions() int { return int(r.active.Load()) }

// KeyStats is one key's cumulative aggregate in a snapshot. Node is set
// only in cluster (Aggregator) snapshots; single-node registries leave
// it empty.
type KeyStats struct {
	Node     string  `json:"node,omitempty"`
	Method   string  `json:"method"`
	Browser  string  `json:"browser"`
	Region   string  `json:"region"`
	Count    uint64  `json:"count"`
	Lost     uint64  `json:"lost"`
	P50      float64 `json:"p50_ms"`
	P95      float64 `json:"p95_ms"`
	P99      float64 `json:"p99_ms"`
	JitterMs float64 `json:"jitter_ms"`
	LossRate float64 `json:"loss_rate"`
}

// Snapshot is the global state after a fan-in pass. Keys are sorted by
// (method, browser, region) — (node, method, browser, region) in
// cluster snapshots — so equal states render identically. Nodes is set
// only by the Aggregator.
type Snapshot struct {
	Seq      uint64       `json:"seq"`
	Sessions int          `json:"sessions"`
	Keys     []KeyStats   `json:"keys"`
	Nodes    []NodeStatus `json:"nodes,omitempty"`
}

// takeSpare hands the fan-in pass a reset sketch without allocating when
// one from a previous tick can be reused.
func (r *Registry) takeSpare() *obs.Sketch {
	if n := len(r.spare); n > 0 {
		s := r.spare[n-1]
		r.spare = r.spare[:n-1]
		return s
	}
	return obs.NewSketch(r.cfg.Targets...)
}

// FanIn runs one collector pass: every shard's delta aggregates are
// swapped out under the shard lock (ingest blocks only for the swap, not
// the merge), merged into the cumulative per-key summaries, and
// published as a new snapshot plus a changed-keys delta on the live
// stream. Shard event counters and the pass's own duration are folded
// into the metrics registry here — the only place the fleet plane
// touches obs.Metrics.
func (r *Registry) FanIn() Snapshot {
	r.fanMu.Lock()
	defer r.fanMu.Unlock()
	start := time.Now()

	var started, ended, rejected, samples, lost uint64
	type taken struct {
		key Key
		agg agg
	}
	var takenAggs []taken
	for _, sh := range r.shards {
		sh.mu.Lock()
		for k, a := range sh.aggs {
			if a.count == 0 {
				continue
			}
			takenAggs = append(takenAggs, taken{key: k, agg: *a})
			a.sketch = r.takeSpare()
			a.count, a.lost, a.jitterSum, a.jitterN = 0, 0, 0, 0
		}
		started += sh.started
		ended += sh.ended
		rejected += sh.rejected
		samples += sh.samples
		lost += sh.lost
		sh.started, sh.ended, sh.rejected, sh.samples, sh.lost = 0, 0, 0, 0, 0
		sh.mu.Unlock()
	}

	// Merge outside every shard lock. Shard deltas first coalesce into
	// one tick delta per key (the unit the uplink ships), then the tick
	// deltas fold into the cumulative summaries. The fold order is fixed
	// (sorted keys, shard order within a key) so equal ingest histories
	// produce identical cumulative sketches.
	sort.SliceStable(takenAggs, func(i, j int) bool { return keyLess(takenAggs[i].key, takenAggs[j].key) })
	var deltas []DeltaKey
	for i := 0; i < len(takenAggs); {
		t := takenAggs[i]
		d := DeltaKey{
			Key: t.key, Count: t.agg.count, Lost: t.agg.lost,
			JitterSum: t.agg.jitterSum, JitterN: t.agg.jitterN,
			Sketch: t.agg.sketch,
		}
		for i++; i < len(takenAggs) && takenAggs[i].key == t.key; i++ {
			n := takenAggs[i]
			d.Sketch.Merge(n.agg.sketch)
			d.Count += n.agg.count
			d.Lost += n.agg.lost
			d.JitterSum += n.agg.jitterSum
			d.JitterN += n.agg.jitterN
			n.agg.sketch.Reset()
			r.spare = append(r.spare, n.agg.sketch)
		}
		deltas = append(deltas, d)
	}
	for _, d := range deltas {
		g := r.globals[d.Key]
		if g == nil {
			g = &global{sketch: obs.NewSketch(r.cfg.Targets...)}
			r.globals[d.Key] = g
		}
		g.sketch.Merge(d.Sketch)
		g.count += d.Count
		g.lost += d.Lost
		g.jitterSum += d.JitterSum
		g.jitterN += d.JitterN
	}

	r.seq++
	snap := Snapshot{Seq: r.seq, Sessions: r.Sessions()}
	snap.Keys = make([]KeyStats, 0, len(r.globals))
	for k, g := range r.globals {
		snap.Keys = append(snap.Keys, g.stats(k))
	}
	sort.Slice(snap.Keys, func(i, j int) bool {
		a, b := snap.Keys[i], snap.Keys[j]
		return keyLess(Key{a.Method, a.Browser, a.Region}, Key{b.Method, b.Browser, b.Region})
	})

	delta := Snapshot{Seq: snap.Seq, Sessions: snap.Sessions}
	for _, ks := range snap.Keys {
		k := Key{ks.Method, ks.Browser, ks.Region}
		if r.prevCounts[k] != ks.Count {
			delta.Keys = append(delta.Keys, ks)
			r.prevCounts[k] = ks.Count
		}
	}

	r.liveView.publish(snap, delta)

	// Hand the tick deltas to the uplink sink (synchronously: the sink
	// encodes and returns, it must not block on the network), then pool
	// the delta sketches for the next tick. Idle ticks ship too — a
	// keys-empty frame is a few dozen bytes and keeps the uplink
	// sequence dense (so root-side gap counting means real drops) and
	// the node's session count fresh while nothing is sampling.
	if r.cfg.DeltaSink != nil {
		r.cfg.DeltaSink(TickDelta{Seq: snap.Seq, Sessions: snap.Sessions, Keys: deltas})
	}
	for _, d := range deltas {
		d.Sketch.Reset()
		r.spare = append(r.spare, d.Sketch)
	}

	took := time.Since(start)
	if m := r.cfg.Metrics; m.Enabled() {
		m.Set("fleet_sessions_active", float64(snap.Sessions))
		m.Set("fleet_keys", float64(len(r.globals)))
		m.Add("fleet_sessions_started_total", int64(started))
		m.Add("fleet_sessions_ended_total", int64(ended))
		m.Add("fleet_sessions_rejected_total", int64(rejected))
		m.Add("fleet_samples_total", int64(samples))
		m.Add("fleet_samples_lost_total", int64(lost))
		m.Add("fleet_fanin_total", 1)
		m.SketchDur("fleet_fanin_ms", took)
		meterStream(m, r.liveView)
	}
	return snap
}

// meterStream folds a liveView's stream and history counters into the
// metrics registry — shared between Registry and Aggregator fan-in.
func meterStream(m *obs.Metrics, v *liveView) {
	m.Set("fleet_stream_subscribers", float64(v.hub.count()))
	m.Add("fleet_stream_events_total", v.hub.events.Swap(0))
	m.Add("fleet_stream_dropped_total", v.hub.dropped.Swap(0))
	m.Add("fleet_stream_bytes_total", v.hub.bytes.Swap(0))
	m.Add("fleet_stream_reconnects_total", v.reconnects.Swap(0))
	m.Set("fleet_history_snapshots", float64(v.historyLen()))
}

func (g *global) stats(k Key) KeyStats {
	ks := KeyStats{
		Method:  k.Method,
		Browser: k.Browser,
		Region:  k.Region,
		Count:   g.count,
		Lost:    g.lost,
	}
	if g.sketch.Count() > 0 {
		ks.P50 = g.sketch.Quantile(0.5)
		ks.P95 = g.sketch.Quantile(0.95)
		ks.P99 = g.sketch.Quantile(0.99)
	}
	if g.jitterN > 0 {
		ks.JitterMs = g.jitterSum / float64(g.jitterN)
	}
	if g.count > 0 {
		ks.LossRate = float64(g.lost) / float64(g.count)
	}
	return ks
}

// Start launches the periodic fan-in ticker. Stop (or a second Start)
// must not be called concurrently with it.
func (r *Registry) Start() {
	r.tickMu.Lock()
	defer r.tickMu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.FanIn()
			}
		}
	}(r.stop, r.done)
}

// Stop halts the ticker and waits for the in-flight pass, then runs one
// final fan-in so every ingested sample reaches the snapshot.
func (r *Registry) Stop() {
	r.tickMu.Lock()
	defer r.tickMu.Unlock()
	if r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop, r.done = nil, nil
	r.FanIn()
}
