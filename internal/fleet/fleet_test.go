package fleet

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/obs"
)

func TestObserveAggregatesPerKey(t *testing.T) {
	r := New(Config{Shards: 4})
	kA := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	kB := Key{Method: "websocket", Browser: "firefox", Region: "eu"}
	rng := rand.New(rand.NewSource(1))
	var aVals []float64
	for id := uint64(0); id < 100; id++ {
		for i := 0; i < 50; i++ {
			v := 20 + rng.Float64()*10
			aVals = append(aVals, v)
			if !r.Observe(id, kA, v, false) {
				t.Fatal("observe rejected below cap")
			}
		}
		r.Observe(1000+id, kB, 40, false)
	}
	snap := r.FanIn()
	if len(snap.Keys) != 2 {
		t.Fatalf("keys = %d, want 2", len(snap.Keys))
	}
	if snap.Sessions != 200 {
		t.Fatalf("sessions = %d, want 200", snap.Sessions)
	}
	// Keys sort by (method, browser, region): http-get before websocket.
	a, b := snap.Keys[0], snap.Keys[1]
	if a.Method != "http-get" || b.Method != "websocket" {
		t.Fatalf("key order: %q then %q", a.Method, b.Method)
	}
	if a.Count != 5000 || b.Count != 100 {
		t.Fatalf("counts = %d, %d", a.Count, b.Count)
	}
	sort.Float64s(aVals)
	exactP50 := aVals[len(aVals)/2]
	if math.Abs(a.P50-exactP50) > 1 {
		t.Fatalf("p50 = %g, exact %g", a.P50, exactP50)
	}
	if b.P50 != 40 || b.JitterMs != 0 {
		t.Fatalf("constant stream: p50=%g jitter=%g", b.P50, b.JitterMs)
	}
}

func TestJitterIsMeanAbsDeltaPerSession(t *testing.T) {
	r := New(Config{Shards: 2})
	k := Key{Method: "udp", Browser: "chrome", Region: "us"}
	// Session 1 alternates 10/20 → every |Δ| is 10.
	vals := []float64{10, 20, 10, 20, 10}
	for _, v := range vals {
		r.Observe(1, k, v, false)
	}
	snap := r.FanIn()
	if got := snap.Keys[0].JitterMs; got != 10 {
		t.Fatalf("jitter = %g, want 10", got)
	}
	// A second session's first sample contributes no jitter increment.
	r.Observe(2, k, 1000, false)
	snap = r.FanIn()
	if got := snap.Keys[0].JitterMs; got != 10 {
		t.Fatalf("jitter after new session = %g, want 10", got)
	}
}

func TestLossCountsWithoutDelay(t *testing.T) {
	r := New(Config{})
	k := Key{Method: "udp", Browser: "opera", Region: "ap"}
	for i := 0; i < 90; i++ {
		r.Observe(1, k, 5, false)
	}
	for i := 0; i < 10; i++ {
		r.Observe(1, k, 0, true)
	}
	ks := r.FanIn().Keys[0]
	if ks.Count != 100 || ks.Lost != 10 {
		t.Fatalf("count=%d lost=%d", ks.Count, ks.Lost)
	}
	if ks.LossRate != 0.1 {
		t.Fatalf("loss rate = %g", ks.LossRate)
	}
	if ks.P50 != 5 {
		t.Fatalf("lost probes leaked into the delay sketch: p50=%g", ks.P50)
	}
}

func TestSessionCapRejectsAndEndFrees(t *testing.T) {
	m := obs.NewMetrics()
	r := New(Config{Shards: 2, MaxSessions: 3, Metrics: m})
	k := Key{Method: "tcp", Browser: "ie", Region: "us"}
	for id := uint64(1); id <= 3; id++ {
		if !r.Observe(id, k, 1, false) {
			t.Fatalf("session %d rejected below cap", id)
		}
	}
	if r.Observe(4, k, 1, false) {
		t.Fatal("session 4 admitted over cap")
	}
	// Existing sessions keep working at the cap.
	if !r.Observe(2, k, 2, false) {
		t.Fatal("existing session rejected at cap")
	}
	r.End(2)
	r.End(2) // double-End is a no-op
	if !r.Observe(5, k, 1, false) {
		t.Fatal("freed slot not reusable")
	}
	r.FanIn()
	if got := m.Counter("fleet_sessions_rejected_total"); got != 1 {
		t.Fatalf("rejected counter = %d", got)
	}
	if got := m.Counter("fleet_sessions_started_total"); got != 4 {
		t.Fatalf("started counter = %d", got)
	}
	if got := m.Counter("fleet_sessions_ended_total"); got != 1 {
		t.Fatalf("ended counter = %d", got)
	}
	if got := m.Gauge("fleet_sessions_active"); got != 3 {
		t.Fatalf("active gauge = %g", got)
	}
}

func TestFanInDeltaOnlyChangedKeys(t *testing.T) {
	r := New(Config{})
	kA := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	kB := Key{Method: "udp", Browser: "chrome", Region: "us"}
	r.Observe(1, kA, 10, false)
	r.Observe(2, kB, 20, false)
	r.FanIn()

	// Subscribe, then move only kB.
	ch := r.hub.subscribe()
	defer r.hub.unsubscribe(ch)
	r.Observe(2, kB, 21, false)
	snap := r.FanIn()
	if len(snap.Keys) != 2 {
		t.Fatalf("snapshot keys = %d", len(snap.Keys))
	}
	select {
	case frame := <-ch:
		s := string(frame)
		if !strings.Contains(s, "event: delta") || !strings.Contains(s, `"method":"udp"`) {
			t.Fatalf("delta frame = %q", s)
		}
		if strings.Contains(s, `"method":"http-get"`) {
			t.Fatalf("unchanged key in delta: %q", s)
		}
	default:
		t.Fatal("no delta published")
	}

	// A fan-in with no ingest publishes nothing.
	r.FanIn()
	select {
	case frame := <-ch:
		t.Fatalf("idle fan-in published %q", frame)
	default:
	}
}

func TestConcurrentIngestMatchesSerialTotals(t *testing.T) {
	r := New(Config{Shards: 8})
	k := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				r.Observe(uint64(w), k, 10+rng.Float64(), i%100 == 99)
			}
		}(w)
	}
	// Fan in concurrently with ingest: totals must still balance.
	stop := make(chan struct{})
	var fanWG sync.WaitGroup
	fanWG.Add(1)
	go func() {
		defer fanWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.FanIn()
			}
		}
	}()
	wg.Wait()
	close(stop)
	fanWG.Wait()
	snap := r.FanIn()
	ks := snap.Keys[0]
	if want := uint64(workers * perWorker); ks.Count != want {
		t.Fatalf("count = %d, want %d", ks.Count, want)
	}
	if want := uint64(workers * (perWorker / 100)); ks.Lost != want {
		t.Fatalf("lost = %d, want %d", ks.Lost, want)
	}
	if snap.Sessions != workers {
		t.Fatalf("sessions = %d, want %d", snap.Sessions, workers)
	}
}

func TestStartStopTicker(t *testing.T) {
	r := New(Config{Interval: time.Millisecond})
	k := Key{Method: "udp", Browser: "chrome", Region: "us"}
	r.Start()
	r.Start() // idempotent
	r.Observe(1, k, 3, false)
	deadline := time.After(2 * time.Second)
	for r.Snapshot().Seq == 0 {
		select {
		case <-deadline:
			t.Fatal("ticker never fanned in")
		case <-time.After(time.Millisecond):
		}
	}
	r.Observe(1, k, 4, false)
	r.Stop()
	r.Stop() // idempotent
	// Stop's final fan-in flushed the straggler sample.
	if got := r.Snapshot().Keys[0].Count; got != 2 {
		t.Fatalf("count after Stop = %d, want 2", got)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	mk := func(seed int64) Snapshot {
		r := New(Config{Shards: 4})
		rng := rand.New(rand.NewSource(seed))
		keys := []Key{
			{Method: "udp", Browser: "safari", Region: "eu"},
			{Method: "http-get", Browser: "chrome", Region: "us"},
			{Method: "http-get", Browser: "chrome", Region: "eu"},
			{Method: "http-get", Browser: "firefox", Region: "us"},
		}
		// Random interleave; snapshot order must come out sorted anyway.
		for i := 0; i < 1000; i++ {
			k := keys[rng.Intn(len(keys))]
			r.Observe(uint64(rng.Intn(50)), k, 10, false)
		}
		return r.FanIn()
	}
	snap := mk(42)
	for i := 1; i < len(snap.Keys); i++ {
		a, b := snap.Keys[i-1], snap.Keys[i]
		if !keyLess(Key{a.Method, a.Browser, a.Region}, Key{b.Method, b.Browser, b.Region}) {
			t.Fatalf("keys not sorted at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestFleetMetricsAllHaveHelp is the registry-wide HELP guard for the
// fleet plane: every series the registry writes must carry SetHelp text,
// so WritePrometheus never ships a HELP-less family.
func TestFleetMetricsAllHaveHelp(t *testing.T) {
	m := obs.NewMetrics()
	r := New(Config{Metrics: m, MaxSessions: 1})
	k := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	r.Observe(1, k, 10, false)
	r.Observe(2, k, 10, false) // rejected — moves the rejection counter
	r.End(1)
	r.FanIn()
	if missing := m.FamiliesMissingHelp(); len(missing) != 0 {
		t.Fatalf("fleet metric families missing HELP text: %v", missing)
	}
}
