package fleet

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/obs"
)

func tickWithSample(r *Registry, k Key, id uint64, v float64) Snapshot {
	r.Observe(id, k, v, false)
	return r.FanIn()
}

func TestHistoryRingBounded(t *testing.T) {
	r := New(Config{HistoryDepth: 4})
	k := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	for i := 0; i < 7; i++ {
		tickWithSample(r, k, 1, float64(10+i))
	}
	h := r.History(0)
	if len(h) != 4 {
		t.Fatalf("history length = %d, want ring cap 4", len(h))
	}
	for i, s := range h {
		if want := uint64(4 + i); s.Seq != want {
			t.Fatalf("history[%d].Seq = %d, want %d (oldest evicted)", i, s.Seq, want)
		}
	}
	if got := r.History(5); len(got) != 2 || got[0].Seq != 6 {
		t.Fatalf("History(5) = %+v, want seqs 6,7", got)
	}
	// Unchanged fan-ins (no new samples) must not enter the ring.
	r.FanIn()
	r.FanIn()
	if got := r.historyLen(); got != 4 {
		t.Fatalf("idle fan-ins grew history to %d", got)
	}
}

func TestHistoryEverySubsamples(t *testing.T) {
	r := New(Config{HistoryDepth: 16, HistoryEvery: 3})
	k := Key{Method: "udp", Browser: "opera", Region: "eu"}
	for i := 0; i < 9; i++ {
		tickWithSample(r, k, 1, float64(i+1))
	}
	h := r.History(0)
	if len(h) != 3 {
		t.Fatalf("history length = %d, want 3 (every 3rd of 9 changed)", len(h))
	}
	for i, want := range []uint64{1, 4, 7} {
		if h[i].Seq != want {
			t.Fatalf("history[%d].Seq = %d, want %d", i, h[i].Seq, want)
		}
	}
}

func TestHistoryHandler(t *testing.T) {
	r := New(Config{HistoryDepth: 8})
	k := Key{Method: "websocket", Browser: "firefox", Region: "ap"}
	for i := 0; i < 3; i++ {
		tickWithSample(r, k, 1, float64(20+i))
	}
	srv := httptest.NewServer(r.HistoryHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?since=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var body struct {
		Since     uint64     `json:"since"`
		Snapshots []Snapshot `json:"snapshots"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Since != 1 || len(body.Snapshots) != 2 {
		t.Fatalf("since=%d snapshots=%d, want 1 and 2", body.Since, len(body.Snapshots))
	}
	if body.Snapshots[0].Seq != 2 || body.Snapshots[1].Seq != 3 {
		t.Fatalf("snapshot seqs = %d,%d", body.Snapshots[0].Seq, body.Snapshots[1].Seq)
	}
	if len(body.Snapshots[1].Keys) != 1 || body.Snapshots[1].Keys[0].Count != 3 {
		t.Fatalf("latest snapshot keys = %+v", body.Snapshots[1].Keys)
	}

	bad, err := http.Get(srv.URL + "?since=zap")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: status = %d", bad.StatusCode)
	}
}

func TestSSEEventIDsAndReconnectReplay(t *testing.T) {
	m := obs.NewMetrics()
	r := New(Config{HistoryDepth: 8, Metrics: m})
	k := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	for i := 0; i < 5; i++ {
		tickWithSample(r, k, 1, float64(30+i))
	}
	srv := httptest.NewServer(r.LiveHandler())
	defer srv.Close()

	// A reconnect that saw seq 2 replays ring snapshots 3..5; the current
	// snapshot is seq 5 and is covered by the replay, so nothing doubles.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	for _, want := range []string{`"seq":3`, `"seq":4`, `"seq":5`} {
		name, data := readEvent(t, br)
		if name != "snapshot" || !strings.Contains(data, want) {
			t.Fatalf("replay event = %q %q, want snapshot with %s", name, data, want)
		}
	}
	// The id: line precedes each event so the browser's Last-Event-ID
	// tracks the snapshot sequence. Trigger one more delta and check it.
	deadline := time.Now().Add(2 * time.Second)
	for r.hub.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tickWithSample(r, k, 1, 99)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(line) != "id: 6" {
		t.Fatalf("delta frame first line = %q, want id: 6", line)
	}

	tickWithSample(r, k, 1, 100) // fold stream counters
	if got := m.Counter("fleet_stream_reconnects_total"); got != 1 {
		t.Fatalf("reconnects counter = %d, want 1", got)
	}
}

func TestSSEFreshConnectStillGetsSnapshotFirst(t *testing.T) {
	r := New(Config{})
	k := Key{Method: "udp", Browser: "chrome", Region: "us"}
	tickWithSample(r, k, 1, 5)
	srv := httptest.NewServer(r.LiveHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	name, data := readEvent(t, bufio.NewReader(resp.Body))
	if name != "snapshot" || !strings.Contains(data, `"seq":1`) {
		t.Fatalf("first event = %q %q", name, data)
	}
}

func TestSSEKeepAliveHeartbeat(t *testing.T) {
	r := New(Config{KeepAlive: 25 * time.Millisecond})
	r.FanIn()
	srv := httptest.NewServer(r.LiveHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	deadline := time.Now().Add(3 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no :ka heartbeat on an idle stream")
		}
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		if strings.TrimSpace(line) == ":ka" {
			return
		}
	}
}

func TestDeltaSinkReceivesCoalescedTicks(t *testing.T) {
	var got []TickDelta
	r := New(Config{
		Shards: 8,
		DeltaSink: func(d TickDelta) {
			// Sketches are pooled after the call: capture what we need.
			cp := TickDelta{Seq: d.Seq, Sessions: d.Sessions}
			for _, dk := range d.Keys {
				dk.Sketch = obs.MergeSketches(dk.Sketch) // deep copy via fold
				cp.Keys = append(cp.Keys, dk)
			}
			got = append(got, cp)
		},
	})
	ka := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	kb := Key{Method: "udp", Browser: "firefox", Region: "eu"}
	// Spread sessions across shards so coalescing has work to do.
	for id := uint64(1); id <= 40; id++ {
		r.Observe(id, ka, float64(id), false)
	}
	r.Observe(50, kb, 7, false)
	r.Observe(50, kb, 0, true) // lost
	r.FanIn()
	r.FanIn() // no new samples: ships a keys-empty heartbeat tick

	if len(got) != 2 {
		t.Fatalf("sink called %d times, want 2 (idle ticks ship heartbeats)", len(got))
	}
	if hb := got[1]; hb.Seq != 2 || len(hb.Keys) != 0 {
		t.Fatalf("idle tick = seq %d with %d keys, want seq 2 and no keys", hb.Seq, len(hb.Keys))
	}
	d := got[0]
	if d.Seq != 1 || d.Sessions != 41 {
		t.Fatalf("tick = seq %d sessions %d", d.Seq, d.Sessions)
	}
	if len(d.Keys) != 2 {
		t.Fatalf("keys = %d, want 2 (shards coalesced per key)", len(d.Keys))
	}
	if d.Keys[0].Key != ka || d.Keys[1].Key != kb {
		t.Fatalf("keys not sorted: %+v", d.Keys)
	}
	if d.Keys[0].Count != 40 || d.Keys[0].Lost != 0 || d.Keys[0].Sketch.Count() != 40 {
		t.Fatalf("key a delta = %+v (sketch %d)", d.Keys[0], d.Keys[0].Sketch.Count())
	}
	if d.Keys[1].Count != 2 || d.Keys[1].Lost != 1 || d.Keys[1].Sketch.Count() != 1 {
		t.Fatalf("key b delta = %+v", d.Keys[1])
	}

	// The tick delta must equal what reached the cumulative snapshot.
	snap := r.Snapshot()
	if snap.Keys[0].Count != 40 || snap.Keys[1].Count != 2 {
		t.Fatalf("snapshot diverged from sunk delta: %+v", snap.Keys)
	}
}
