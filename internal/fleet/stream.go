package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// hub fans rendered SSE frames out to subscribers. Delivery is
// non-blocking: a subscriber that cannot keep up loses frames (counted,
// never buffered unboundedly) and resyncs from the next full snapshot —
// the dashboard is a monitor, not a durable feed.
type hub struct {
	mu   sync.Mutex
	subs map[chan []byte]struct{}

	// Tick-local stream counters, drained into obs.Metrics at fan-in.
	events  atomic.Int64
	dropped atomic.Int64
	bytes   atomic.Int64
}

// subBuffer is each subscriber's frame buffer: enough to ride out a slow
// write without letting a dead client pin memory.
const subBuffer = 16

func newHub() *hub {
	return &hub{subs: make(map[chan []byte]struct{})}
}

func (h *hub) subscribe() chan []byte {
	ch := make(chan []byte, subBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

func (h *hub) publish(frame []byte) {
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- frame:
			h.events.Add(1)
			h.bytes.Add(int64(len(frame)))
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// defaultKeepAlive is the idle heartbeat period for SSE streams: long
// enough to cost nothing, short enough to beat common 30–60s proxy idle
// timeouts.
const defaultKeepAlive = 15 * time.Second

// liveView is the read side of an aggregation plane — the current
// snapshot, a bounded history ring of past snapshots, and the SSE hub —
// shared by the single-node Registry and the multi-node Aggregator so
// both serve the same /live dashboard, the same stream protocol and the
// same /live/history endpoint.
type liveView struct {
	hub       *hub
	keepAlive time.Duration

	snapMu   sync.RWMutex
	snap     Snapshot
	ring     []Snapshot // ascending by Seq, bounded by ringCap
	ringCap  int
	every    int // record every Nth changed snapshot
	changedN int

	// reconnects counts SSE subscribers arriving with a Last-Event-ID
	// header — i.e. dashboard reconnections resuming from the ring.
	reconnects atomic.Int64
}

func newLiveView(depth, every int, keepAlive time.Duration) *liveView {
	if depth <= 0 {
		depth = 64
	}
	if every <= 0 {
		every = 1
	}
	if keepAlive <= 0 {
		keepAlive = defaultKeepAlive
	}
	return &liveView{
		hub:       newHub(),
		keepAlive: keepAlive,
		ring:      make([]Snapshot, 0, depth),
		ringCap:   depth,
		every:     every,
	}
}

// publish installs a new snapshot, records it into the history ring when
// it changed anything (subsampled by the configured cadence), and pushes
// the changed-keys delta to the stream.
func (v *liveView) publish(snap, delta Snapshot) {
	changed := len(delta.Keys) > 0
	v.snapMu.Lock()
	v.snap = snap
	if changed {
		if v.changedN%v.every == 0 {
			if len(v.ring) == v.ringCap {
				copy(v.ring, v.ring[1:])
				v.ring = v.ring[:v.ringCap-1]
			}
			v.ring = append(v.ring, snap)
		}
		v.changedN++
	}
	v.snapMu.Unlock()
	if changed {
		v.hub.publish(renderEventID(snap.Seq, "delta", delta))
	}
}

// Snapshot returns the most recently published snapshot (zero before the
// first publish).
func (v *liveView) Snapshot() Snapshot {
	v.snapMu.RLock()
	defer v.snapMu.RUnlock()
	return v.snap
}

// History returns the retained snapshots with Seq > since, oldest first.
// The ring is bounded, so a scrape that fell far behind gets the oldest
// retained state, not an unbounded replay.
func (v *liveView) History(since uint64) []Snapshot {
	v.snapMu.RLock()
	defer v.snapMu.RUnlock()
	i := 0
	for i < len(v.ring) && v.ring[i].Seq <= since {
		i++
	}
	out := make([]Snapshot, len(v.ring)-i)
	copy(out, v.ring[i:])
	return out
}

func (v *liveView) historyLen() int {
	v.snapMu.RLock()
	defer v.snapMu.RUnlock()
	return len(v.ring)
}

// HistoryHandler serves the snapshot history ring as JSON:
// GET /live/history?since=N returns every retained snapshot with
// seq > N (all of them when since is absent), oldest first.
func (v *liveView) HistoryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			n, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since", http.StatusBadRequest)
				return
			}
			since = n
		}
		snaps := v.History(since)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Since     uint64     `json:"since"`
			Snapshots []Snapshot `json:"snapshots"`
		}{Since: since, Snapshots: snaps})
	})
}

// renderEvent renders one SSE frame: "event: <name>\ndata: <json>\n\n".
// Struct marshalling has a fixed field order, so equal values render to
// identical bytes.
func renderEvent(name string, v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		// Snapshots are plain numbers and strings; this cannot fail.
		data = []byte("{}")
	}
	frame := make([]byte, 0, len(name)+len(data)+16)
	frame = append(frame, "event: "...)
	frame = append(frame, name...)
	frame = append(frame, "\ndata: "...)
	frame = append(frame, data...)
	frame = append(frame, "\n\n"...)
	return frame
}

// renderEventID is renderEvent with a leading SSE id line, so browsers
// resume with Last-Event-ID after a dropped connection.
func renderEventID(id uint64, name string, v any) []byte {
	frame := make([]byte, 0, 16)
	frame = append(frame, "id: "...)
	frame = strconv.AppendUint(frame, id, 10)
	frame = append(frame, '\n')
	return append(frame, renderEvent(name, v)...)
}

// LiveHandler serves the streaming dashboard. A request that accepts
// text/event-stream (or sets ?stream=1) gets the SSE feed: one full
// "snapshot" event immediately (preceded by ring replay when the client
// reconnects with Last-Event-ID), then a "delta" event with the changed
// keys after every publish, and a ":ka" comment heartbeat while idle.
// Anything else gets the embedded HTML view, which opens the SSE feed
// itself.
func (v *liveView) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "text/event-stream") ||
			req.URL.Query().Get("stream") != "" {
			v.serveSSE(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
}

func (v *liveView) serveSSE(w http.ResponseWriter, req *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch := v.hub.subscribe()
	defer v.hub.unsubscribe(ch)

	// A reconnecting client replays the ring from where it left off,
	// then gets the current snapshot if it is newer than the replay.
	var lastSent uint64
	hasLastID := false
	if lid := req.Header.Get("Last-Event-ID"); lid != "" {
		if since, err := strconv.ParseUint(lid, 10, 64); err == nil {
			hasLastID = true
			v.reconnects.Add(1)
			for _, s := range v.History(since) {
				if !v.writeFrame(w, renderEventID(s.Seq, "snapshot", s)) {
					return
				}
				lastSent = s.Seq
			}
		}
	}
	if cur := v.Snapshot(); !hasLastID || cur.Seq > lastSent {
		if !v.writeFrame(w, renderEventID(cur.Seq, "snapshot", cur)) {
			return
		}
	}
	fl.Flush()

	ka := time.NewTimer(v.keepAlive)
	defer ka.Stop()
	for {
		select {
		case <-req.Context().Done():
			return
		case frame := <-ch:
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
			if !ka.Stop() {
				<-ka.C
			}
			ka.Reset(v.keepAlive)
		case <-ka.C:
			// SSE comment: keeps proxies from reaping idle streams
			// without waking the client-side event handlers.
			if _, err := fmt.Fprint(w, ":ka\n\n"); err != nil {
				return
			}
			fl.Flush()
			ka.Reset(v.keepAlive)
		}
	}
}

// writeFrame writes one already-rendered frame and meters it like a hub
// delivery. Reports false when the client is gone.
func (v *liveView) writeFrame(w http.ResponseWriter, frame []byte) bool {
	if _, err := w.Write(frame); err != nil {
		return false
	}
	v.hub.events.Add(1)
	v.hub.bytes.Add(int64(len(frame)))
	return true
}

// dashboardHTML is the minimal embedded view: a table of per-key
// aggregates kept current by the SSE feed, with a history scrubber
// backed by /live/history. No external assets.
const dashboardHTML = `<!doctype html>
<html><head><meta charset="utf-8"><title>fleet live</title>
<style>
body{font:14px/1.4 system-ui,sans-serif;margin:2em;background:#111;color:#ddd}
h1{font-size:1.2em}
table{border-collapse:collapse;margin-top:1em}
th,td{padding:.3em .8em;border-bottom:1px solid #333;text-align:right}
th{color:#9cf}
td:nth-child(-n+4),th:nth-child(-n+4){text-align:left}
#meta{color:#888}
#scrub{margin-top:1em;color:#888}
#seek{width:20em;vertical-align:middle}
#golive{margin-left:.6em}
.paused #meta{color:#fc6}
</style></head><body>
<h1>fleet live delay aggregates</h1>
<div id="meta">connecting&hellip;</div>
<div id="scrub"><input type="range" id="seek" min="0" max="0" value="0" disabled>
<button id="golive" disabled>live</button> <span id="seekinfo"></span></div>
<table><thead><tr>
<th>node</th><th>method</th><th>browser</th><th>region</th><th>count</th><th>lost</th>
<th>p50 ms</th><th>p95 ms</th><th>p99 ms</th><th>jitter ms</th><th>loss</th>
</tr></thead><tbody id="rows"></tbody></table>
<script>
var lrows = {}, lmeta = null, hist = [], paused = false;
function keyOf(k){ return (k.node||"")+"|"+k.method+"|"+k.browser+"|"+k.region; }
function fmt(x){ return (Math.round(x*1000)/1000).toString(); }
function esc(x){
  return String(x).replace(/&/g,"&amp;").replace(/</g,"&lt;")
    .replace(/>/g,"&gt;").replace(/"/g,"&quot;");
}
function render(rows){
  var ks = Object.keys(rows).sort();
  var html = "";
  for (var i = 0; i < ks.length; i++) {
    var k = rows[ks[i]];
    html += "<tr><td>"+esc(k.node||"")+"</td><td>"+esc(k.method)+"</td><td>"+esc(k.browser)+"</td><td>"+esc(k.region)+
      "</td><td>"+k.count+"</td><td>"+k.lost+"</td><td>"+fmt(k.p50_ms)+
      "</td><td>"+fmt(k.p95_ms)+"</td><td>"+fmt(k.p99_ms)+
      "</td><td>"+fmt(k.jitter_ms)+"</td><td>"+fmt(k.loss_rate)+"</td></tr>";
  }
  document.getElementById("rows").innerHTML = html;
}
function meta(s, suffix){
  document.getElementById("meta").textContent =
    "seq "+s.seq+" · "+s.sessions+" live sessions"+suffix;
}
function showLive(){
  if (lmeta) meta(lmeta, "");
  render(lrows);
}
function showHist(s){
  var rows = {};
  for (var i = 0; i < (s.keys||[]).length; i++) rows[keyOf(s.keys[i])] = s.keys[i];
  meta(s, " · history");
  render(rows);
}
function apply(ev, reset){
  var s = JSON.parse(ev.data);
  if (reset) lrows = {};
  for (var i = 0; i < (s.keys||[]).length; i++) lrows[keyOf(s.keys[i])] = s.keys[i];
  lmeta = s;
  if (!paused) showLive();
}
function refreshHistory(cb){
  fetch("live/history").then(function(r){ return r.json(); }).then(function(h){
    hist = h.snapshots || [];
    var seek = document.getElementById("seek");
    seek.max = Math.max(hist.length-1, 0);
    seek.disabled = hist.length === 0;
    document.getElementById("golive").disabled = false;
    if (cb) cb();
  });
}
document.getElementById("seek").addEventListener("input", function(){
  paused = true;
  document.body.className = "paused";
  var s = hist[+this.value];
  if (s) {
    document.getElementById("seekinfo").textContent = "seq "+s.seq;
    showHist(s);
  }
});
document.getElementById("golive").addEventListener("click", function(){
  paused = false;
  document.body.className = "";
  document.getElementById("seekinfo").textContent = "";
  showLive();
});
setInterval(refreshHistory, 5000);
refreshHistory();
var es = new EventSource("live?stream=1");
es.addEventListener("snapshot", function(ev){ apply(ev, true); });
es.addEventListener("delta", function(ev){ apply(ev, false); });
</script>
</body></html>
`
