package fleet

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
)

// hub fans rendered SSE frames out to subscribers. Delivery is
// non-blocking: a subscriber that cannot keep up loses frames (counted,
// never buffered unboundedly) and resyncs from the next full snapshot —
// the dashboard is a monitor, not a durable feed.
type hub struct {
	mu   sync.Mutex
	subs map[chan []byte]struct{}

	// Tick-local stream counters, drained into obs.Metrics at fan-in.
	events  atomic.Int64
	dropped atomic.Int64
	bytes   atomic.Int64
}

// subBuffer is each subscriber's frame buffer: enough to ride out a slow
// write without letting a dead client pin memory.
const subBuffer = 16

func newHub() *hub {
	return &hub{subs: make(map[chan []byte]struct{})}
}

func (h *hub) subscribe() chan []byte {
	ch := make(chan []byte, subBuffer)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

func (h *hub) publish(frame []byte) {
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- frame:
			h.events.Add(1)
			h.bytes.Add(int64(len(frame)))
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// renderEvent renders one SSE frame: "event: <name>\ndata: <json>\n\n".
// Struct marshalling has a fixed field order, so equal values render to
// identical bytes.
func renderEvent(name string, v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		// Snapshots are plain numbers and strings; this cannot fail.
		data = []byte("{}")
	}
	frame := make([]byte, 0, len(name)+len(data)+16)
	frame = append(frame, "event: "...)
	frame = append(frame, name...)
	frame = append(frame, "\ndata: "...)
	frame = append(frame, data...)
	frame = append(frame, "\n\n"...)
	return frame
}

// LiveHandler serves the streaming dashboard. A request that accepts
// text/event-stream (or sets ?stream=1) gets the SSE feed: one full
// "snapshot" event immediately, then a "delta" event with the changed
// keys after every fan-in pass. Anything else gets the embedded HTML
// view, which opens the SSE feed itself.
func (r *Registry) LiveHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "text/event-stream") ||
			req.URL.Query().Get("stream") != "" {
			r.serveSSE(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
}

func (r *Registry) serveSSE(w http.ResponseWriter, req *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch := r.hub.subscribe()
	defer r.hub.unsubscribe(ch)

	frame := renderEvent("snapshot", r.Snapshot())
	if _, err := w.Write(frame); err != nil {
		return
	}
	r.hub.events.Add(1)
	r.hub.bytes.Add(int64(len(frame)))
	fl.Flush()

	for {
		select {
		case <-req.Context().Done():
			return
		case frame := <-ch:
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// dashboardHTML is the minimal embedded view: a table of per-key
// aggregates kept current by the SSE feed. No external assets.
const dashboardHTML = `<!doctype html>
<html><head><meta charset="utf-8"><title>fleet live</title>
<style>
body{font:14px/1.4 system-ui,sans-serif;margin:2em;background:#111;color:#ddd}
h1{font-size:1.2em}
table{border-collapse:collapse;margin-top:1em}
th,td{padding:.3em .8em;border-bottom:1px solid #333;text-align:right}
th{color:#9cf}
td:first-child,td:nth-child(2),td:nth-child(3),th:first-child,th:nth-child(2),th:nth-child(3){text-align:left}
#meta{color:#888}
</style></head><body>
<h1>fleet live delay aggregates</h1>
<div id="meta">connecting&hellip;</div>
<table><thead><tr>
<th>method</th><th>browser</th><th>region</th><th>count</th><th>lost</th>
<th>p50 ms</th><th>p95 ms</th><th>p99 ms</th><th>jitter ms</th><th>loss</th>
</tr></thead><tbody id="rows"></tbody></table>
<script>
var rows = {};
function keyOf(k){ return k.method+"|"+k.browser+"|"+k.region; }
function fmt(x){ return (Math.round(x*1000)/1000).toString(); }
function render(){
  var ks = Object.keys(rows).sort();
  var html = "";
  for (var i = 0; i < ks.length; i++) {
    var k = rows[ks[i]];
    html += "<tr><td>"+k.method+"</td><td>"+k.browser+"</td><td>"+k.region+
      "</td><td>"+k.count+"</td><td>"+k.lost+"</td><td>"+fmt(k.p50_ms)+
      "</td><td>"+fmt(k.p95_ms)+"</td><td>"+fmt(k.p99_ms)+
      "</td><td>"+fmt(k.jitter_ms)+"</td><td>"+fmt(k.loss_rate)+"</td></tr>";
  }
  document.getElementById("rows").innerHTML = html;
}
function apply(ev, reset){
  var s = JSON.parse(ev.data);
  if (reset) rows = {};
  for (var i = 0; i < (s.keys||[]).length; i++) rows[keyOf(s.keys[i])] = s.keys[i];
  document.getElementById("meta").textContent =
    "seq "+s.seq+" · "+s.sessions+" live sessions";
  render();
}
var es = new EventSource("live?stream=1");
es.addEventListener("snapshot", function(ev){ apply(ev, true); });
es.addEventListener("delta", function(ev){ apply(ev, false); });
</script>
</body></html>
`
