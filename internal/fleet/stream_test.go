package fleet

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/obs"
)

func TestLiveHandlerServesHTMLByDefault(t *testing.T) {
	r := New(Config{})
	srv := httptest.NewServer(r.LiveHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{"EventSource", "snapshot", "delta", "p99"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard HTML missing %q", want)
		}
	}
}

// readEvent reads one SSE frame (up to the blank line) and returns its
// event name and data payload.
func readEvent(t *testing.T, br *bufio.Reader) (name, data string) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if name != "" || data != "" {
				return name, data
			}
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
}

func TestSSESnapshotThenDelta(t *testing.T) {
	m := obs.NewMetrics()
	r := New(Config{Metrics: m})
	k := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	r.Observe(1, k, 12, false)
	r.FanIn()

	srv := httptest.NewServer(r.LiveHandler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	name, data := readEvent(t, br)
	if name != "snapshot" {
		t.Fatalf("first event = %q", name)
	}
	if !strings.Contains(data, `"method":"http-get"`) || !strings.Contains(data, `"seq":1`) {
		t.Fatalf("snapshot payload = %q", data)
	}

	// Wait for the subscriber to register before producing the delta.
	deadline := time.Now().Add(2 * time.Second)
	for r.hub.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Observe(1, k, 14, false)
	r.FanIn()

	name, data = readEvent(t, br)
	if name != "delta" {
		t.Fatalf("second event = %q", name)
	}
	if !strings.Contains(data, `"count":2`) {
		t.Fatalf("delta payload = %q", data)
	}

	// The next fan-in folds the stream counters into the registry.
	r.Observe(1, k, 15, false)
	r.FanIn()
	if got := m.Counter("fleet_stream_events_total"); got < 2 {
		t.Fatalf("stream events counter = %d", got)
	}
	if got := m.Counter("fleet_stream_bytes_total"); got <= 0 {
		t.Fatalf("stream bytes counter = %d", got)
	}
}

func TestQueryParamSelectsStream(t *testing.T) {
	r := New(Config{})
	r.FanIn()
	srv := httptest.NewServer(r.LiveHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	if name, _ := readEvent(t, bufio.NewReader(resp.Body)); name != "snapshot" {
		t.Fatalf("first event = %q", name)
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	r := New(Config{Metrics: obs.NewMetrics()})
	ch := r.hub.subscribe()
	defer r.hub.unsubscribe(ch)
	// Never drain ch: publishes beyond the buffer must drop, not block.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < subBuffer+50; i++ {
			r.hub.publish([]byte("event: delta\ndata: {}\n\n"))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}
	if got := r.hub.dropped.Load(); got != 50 {
		t.Fatalf("dropped = %d, want 50", got)
	}
	if got := r.hub.events.Load(); got != subBuffer {
		t.Fatalf("delivered = %d, want %d", got, subBuffer)
	}
}

func TestRenderEventDeterministic(t *testing.T) {
	snap := Snapshot{Seq: 3, Sessions: 2, Keys: []KeyStats{{
		Method: "udp", Browser: "chrome", Region: "us", Count: 5, P50: 1.5,
	}}}
	a := string(renderEvent("snapshot", snap))
	b := string(renderEvent("snapshot", snap))
	if a != b {
		t.Fatalf("render not deterministic:\n%q\n%q", a, b)
	}
	if !strings.HasPrefix(a, "event: snapshot\ndata: {") || !strings.HasSuffix(a, "\n\n") {
		t.Fatalf("frame shape: %q", a)
	}
}
