package fleet

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/browsermetric/browsermetric/internal/fleetwire"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// UplinkConfig tunes a collector's uplink to the root aggregator.
type UplinkConfig struct {
	// Node is this collector's name on the wire (required).
	Node string
	// URL is the root's ingest endpoint, e.g. http://root:9310/ingest.
	URL string
	// QueueDepth bounds the frames buffered while the root is
	// unreachable (default 64). Overflow drops the oldest frame —
	// counted, never blocking the fan-in tick that produced it.
	QueueDepth int
	// Timeout bounds one POST attempt (default 5s).
	Timeout time.Duration
	// Backoff is the initial retry delay after a failed ship (default
	// 250ms), doubling up to MaxBackoff (default 10s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Client overrides the HTTP client (tests). Timeout still applies
	// per request via context when unset on the client.
	Client *http.Client
	// Metrics receives the fleet_uplink_* series. nil disables metering.
	Metrics *obs.Metrics
}

// Uplink ships fan-in tick deltas to the root aggregator as fleetwire
// frames. Sink never blocks: frames queue in a bounded buffer and a
// background shipper POSTs them with retry/backoff, dropping the oldest
// (counted) when the root stays unreachable. The collector's sample
// path and shard locks are never touched — the uplink only sees the
// already-coalesced tick deltas the fan-in pass hands it.
type Uplink struct {
	cfg UplinkConfig
	// epoch is this process's boot id, stamped into every frame so the
	// root can tell a restart (new epoch, seq back at 1) from duplicate
	// delivery (same epoch, repeated seq).
	epoch uint64
	ready obs.Readiness

	mu    sync.Mutex
	queue [][]byte
	wake  chan struct{}

	stop chan struct{}
	done chan struct{}
}

// NewUplink builds an uplink and starts its shipper goroutine. Close it
// with Stop.
func NewUplink(cfg UplinkConfig) (*Uplink, error) {
	if cfg.Node == "" {
		return nil, fmt.Errorf("fleet: uplink requires a node name")
	}
	if cfg.URL == "" {
		return nil, fmt.Errorf("fleet: uplink requires a root URL")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 10 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.Timeout}
	}
	registerUplinkHelp(cfg.Metrics)
	u := &Uplink{
		cfg:   cfg,
		epoch: uint64(time.Now().UnixNano()),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go u.run()
	return u, nil
}

func registerUplinkHelp(m *obs.Metrics) {
	if !m.Enabled() {
		return
	}
	m.SetHelp("fleet_uplink_frames_total", "Tick-delta frames handed to the uplink.")
	m.SetHelp("fleet_uplink_shipped_total", "Frames acknowledged by the root aggregator.")
	m.SetHelp("fleet_uplink_bytes_total", "Frame bytes acknowledged by the root aggregator.")
	m.SetHelp("fleet_uplink_dropped_total", "Frames dropped: queue overflow while the root was unreachable, or a permanent root rejection.")
	m.SetHelp("fleet_uplink_retries_total", "Failed ship attempts that were retried with backoff.")
	m.SetHelp("fleet_uplink_queue", "Frames currently buffered awaiting shipment.")
}

// Sink is the Registry DeltaSink: it encodes the tick's deltas into one
// wire frame and enqueues it. It never blocks and never errors — a full
// queue drops the oldest frame and counts it.
func (u *Uplink) Sink(d TickDelta) {
	f := &fleetwire.Frame{Node: u.cfg.Node, Epoch: u.epoch, Seq: d.Seq, Sessions: uint64(d.Sessions)}
	f.Keys = make([]fleetwire.KeyDelta, 0, len(d.Keys))
	for _, k := range d.Keys {
		f.Keys = append(f.Keys, fleetwire.KeyDelta{
			Method: k.Key.Method, Browser: k.Key.Browser, Region: k.Key.Region,
			Count: k.Count, Lost: k.Lost,
			JitterSum: k.JitterSum, JitterN: k.JitterN,
			Sketch: k.Sketch,
		})
	}
	enc, err := fleetwire.AppendFrame(nil, f)
	if err != nil {
		// Only possible with malformed labels; count it as a drop rather
		// than wedging the fan-in pass.
		u.meterAdd("fleet_uplink_dropped_total", 1)
		return
	}
	u.mu.Lock()
	u.queue = append(u.queue, enc)
	var over int
	if over = len(u.queue) - u.cfg.QueueDepth; over > 0 {
		u.queue = append(u.queue[:0:0], u.queue[over:]...)
	}
	depth := len(u.queue)
	u.mu.Unlock()
	if over > 0 {
		u.meterAdd("fleet_uplink_dropped_total", int64(over))
	}
	u.meterAdd("fleet_uplink_frames_total", 1)
	u.meterSet("fleet_uplink_queue", float64(depth))
	select {
	case u.wake <- struct{}{}:
	default:
	}
}

// Ready reports whether the root has acknowledged at least one frame —
// the collector's /readyz condition in multi-node mode.
func (u *Uplink) Ready() bool { return u.ready.Ready() }

// Stop shuts the shipper down after one final best-effort flush.
func (u *Uplink) Stop() {
	close(u.stop)
	<-u.done
}

func (u *Uplink) takeAll() [][]byte {
	u.mu.Lock()
	q := u.queue
	u.queue = nil
	u.mu.Unlock()
	return q
}

// putBack restores unshipped frames to the queue head, keeping the
// depth bound by dropping the oldest.
func (u *Uplink) putBack(frames [][]byte) {
	u.mu.Lock()
	u.queue = append(frames, u.queue...)
	var over int
	if over = len(u.queue) - u.cfg.QueueDepth; over > 0 {
		u.queue = append(u.queue[:0:0], u.queue[over:]...)
	}
	depth := len(u.queue)
	u.mu.Unlock()
	if over > 0 {
		u.meterAdd("fleet_uplink_dropped_total", int64(over))
	}
	u.meterSet("fleet_uplink_queue", float64(depth))
}

func (u *Uplink) run() {
	defer close(u.done)
	backoff := u.cfg.Backoff
	for {
		select {
		case <-u.stop:
			u.ship(u.takeAll()) // final best-effort flush, no retry
			return
		case <-u.wake:
		}
		for {
			frames := u.takeAll()
			if len(frames) == 0 {
				break
			}
			err, permanent := u.ship(frames)
			if err == nil {
				backoff = u.cfg.Backoff
				continue
			}
			if permanent {
				// The root understood us and said no (corrupt or
				// version-mismatched by its lights): retrying the same
				// bytes cannot succeed.
				u.meterAdd("fleet_uplink_dropped_total", int64(len(frames)))
				backoff = u.cfg.Backoff
				continue
			}
			u.putBack(frames)
			u.meterAdd("fleet_uplink_retries_total", 1)
			select {
			case <-u.stop:
				u.ship(u.takeAll())
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > u.cfg.MaxBackoff {
				backoff = u.cfg.MaxBackoff
			}
		}
	}
}

// ship POSTs the frames as one concatenated body. It reports the error
// and whether it is permanent (a 4xx rejection) as opposed to retryable
// (network failure or 5xx).
func (u *Uplink) ship(frames [][]byte) (err error, permanent bool) {
	if len(frames) == 0 {
		return nil, false
	}
	var body bytes.Buffer
	for _, f := range frames {
		body.Write(f)
	}
	n := body.Len()
	req, err := http.NewRequest(http.MethodPost, u.cfg.URL, &body)
	if err != nil {
		return err, true
	}
	req.Header.Set("Content-Type", "application/x-bmwf")
	resp, err := u.cfg.Client.Do(req)
	if err != nil {
		return err, false
	}
	resp.Body.Close()
	switch {
	case resp.StatusCode < 300:
		u.ready.MarkReady()
		u.meterAdd("fleet_uplink_shipped_total", int64(len(frames)))
		u.meterAdd("fleet_uplink_bytes_total", int64(n))
		u.meterSet("fleet_uplink_queue", float64(u.pending()))
		return nil, false
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return fmt.Errorf("fleet: root rejected frames: %s", resp.Status), true
	default:
		return fmt.Errorf("fleet: root unavailable: %s", resp.Status), false
	}
}

func (u *Uplink) pending() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.queue)
}

func (u *Uplink) meterAdd(name string, v int64) {
	if m := u.cfg.Metrics; m.Enabled() {
		m.Add(name, v)
	}
}

func (u *Uplink) meterSet(name string, v float64) {
	if m := u.cfg.Metrics; m.Enabled() {
		m.Set(name, v)
	}
}
