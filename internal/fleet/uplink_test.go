package fleet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/fleetwire"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// frameSink is a test root: it decodes every POSTed frame and records it.
type frameSink struct {
	mu     sync.Mutex
	frames []*fleetwire.Frame
	fail   atomic.Int64 // requests to 503 before accepting
	code   atomic.Int64 // forced status code (0 = accept)
}

func (fs *frameSink) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(req.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	if c := fs.code.Load(); c != 0 {
		w.WriteHeader(int(c))
		return
	}
	if fs.fail.Load() > 0 {
		fs.fail.Add(-1)
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	for len(body) > 0 {
		f, n, err := fleetwire.DecodeFrame(body)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		fs.mu.Lock()
		fs.frames = append(fs.frames, f)
		fs.mu.Unlock()
		body = body[n:]
	}
	w.WriteHeader(http.StatusOK)
}

func (fs *frameSink) count() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.frames)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestUplinkShipsTickDeltas(t *testing.T) {
	fs := &frameSink{}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	m := obs.NewMetrics()
	u, err := NewUplink(UplinkConfig{Node: "c1", URL: srv.URL, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	r := New(Config{DeltaSink: u.Sink})
	k := Key{Method: "http-get", Browser: "chrome", Region: "us"}
	r.Observe(1, k, 12, false)
	r.Observe(1, k, 14, false)
	r.FanIn()
	r.Observe(1, k, 16, false)
	r.FanIn()

	waitFor(t, "2 acked frames at the root", func() bool {
		return fs.count() == 2 && m.Counter("fleet_uplink_shipped_total") == 2
	})
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f1, f2 := fs.frames[0], fs.frames[1]
	if f1.Node != "c1" || f1.Seq != 1 || f2.Seq != 2 {
		t.Fatalf("frames = %+v / %+v", f1, f2)
	}
	if f1.Sessions != 1 || len(f1.Keys) != 1 {
		t.Fatalf("frame 1 = %+v", f1)
	}
	kd := f1.Keys[0]
	if kd.Method != "http-get" || kd.Count != 2 || kd.Sketch.Count() != 2 {
		t.Fatalf("frame 1 key = %+v", kd)
	}
	if f2.Keys[0].Count != 1 {
		t.Fatalf("frame 2 carries a cumulative count %d, want tick delta 1", f2.Keys[0].Count)
	}
	if !u.Ready() {
		t.Fatal("uplink not ready after acks")
	}
	if got := m.Counter("fleet_uplink_shipped_total"); got != 2 {
		t.Fatalf("shipped = %d", got)
	}
	if got := m.Counter("fleet_uplink_dropped_total"); got != 0 {
		t.Fatalf("dropped = %d", got)
	}
	if missing := m.FamiliesMissingHelp(); len(missing) != 0 {
		t.Fatalf("uplink families missing help: %v", missing)
	}
}

func TestUplinkRetriesWithBackoffThenDelivers(t *testing.T) {
	fs := &frameSink{}
	fs.fail.Store(2)
	srv := httptest.NewServer(fs)
	defer srv.Close()

	m := obs.NewMetrics()
	u, err := NewUplink(UplinkConfig{
		Node: "c1", URL: srv.URL, Backoff: 2 * time.Millisecond, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	u.Sink(TickDelta{Seq: 1, Sessions: 1, Keys: []DeltaKey{{
		Key: Key{Method: "udp", Browser: "chrome", Region: "us"}, Count: 1,
	}}})
	waitFor(t, "delivery after retries", func() bool { return fs.count() == 1 && u.Ready() })
	if u.pending() != 0 {
		t.Fatalf("queue not drained: %d", u.pending())
	}
	if got := m.Counter("fleet_uplink_retries_total"); got < 2 {
		t.Fatalf("retries = %d, want >= 2", got)
	}
	if !u.Ready() {
		t.Fatal("not ready after eventual ack")
	}
}

func TestUplinkPermanentRejectionDropsWithoutRetry(t *testing.T) {
	fs := &frameSink{}
	fs.code.Store(http.StatusBadRequest)
	srv := httptest.NewServer(fs)
	defer srv.Close()

	m := obs.NewMetrics()
	u, err := NewUplink(UplinkConfig{Node: "c1", URL: srv.URL, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	u.Sink(TickDelta{Seq: 1, Keys: []DeltaKey{{
		Key: Key{Method: "udp", Browser: "chrome", Region: "us"}, Count: 1,
	}}})
	waitFor(t, "permanent drop", func() bool {
		return m.Counter("fleet_uplink_dropped_total") == 1 && u.pending() == 0
	})
	if got := m.Counter("fleet_uplink_retries_total"); got != 0 {
		t.Fatalf("permanent rejection was retried %d times", got)
	}
	if u.Ready() {
		t.Fatal("ready without any ack")
	}
}

// TestUplinkUnreachableRootNeverBlocksFanIn is the observer-effect
// acceptance bound: with the root down, every fan-in tick (which runs
// the Sink synchronously) still completes fast — the uplink queues,
// drops the oldest, and never pushes backpressure into the collector.
func TestUplinkUnreachableRootNeverBlocksFanIn(t *testing.T) {
	// A server that is immediately closed yields a port that refuses.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()

	m := obs.NewMetrics()
	u, err := NewUplink(UplinkConfig{
		Node: "c1", URL: url, QueueDepth: 4,
		Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Stop()
	r := New(Config{DeltaSink: u.Sink})
	k := Key{Method: "http-get", Browser: "chrome", Region: "us"}

	const ticks = 40
	for i := 0; i < ticks; i++ {
		r.Observe(1, k, float64(i), false)
		start := time.Now()
		r.FanIn()
		if took := time.Since(start); took > 200*time.Millisecond {
			t.Fatalf("fan-in tick %d took %v with root down", i, took)
		}
	}
	if got := m.Counter("fleet_uplink_frames_total"); got != ticks {
		t.Fatalf("frames = %d, want %d", got, ticks)
	}
	waitFor(t, "overflow drops", func() bool {
		return m.Counter("fleet_uplink_dropped_total") >= ticks-int64(4)-1
	})
	if u.Ready() {
		t.Fatal("ready with the root down")
	}
	if u.pending() > 4 {
		t.Fatalf("queue exceeded depth: %d", u.pending())
	}
}
