package fleetwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/browsermetric/browsermetric/internal/obs"
)

// Fuzz target for the frame decoder — the one parser in the repo that
// eats bytes straight off the network from other nodes. The corpus is
// checked in as code (the repo's sweep/netsim convention) so `go test`
// replays it on every CI run even without -fuzz.

// wireSeedCorpus covers the decoder's interesting shapes: a valid
// frame, an empty frame, torn tails, a flipped payload byte, a future
// version, a lying length prefix, CRC-valid frames with hostile
// payloads (an overflowing sketch tuple count, a lying key count), and
// plain garbage.
func wireSeedCorpus(t testing.TB) [][]byte {
	s := obs.NewSketch()
	for i := 0; i < 300; i++ {
		s.Observe(float64(i%37) + 5)
	}
	valid, err := AppendFrame(nil, &Frame{
		Node: "seed-node", Seq: 9, Sessions: 42,
		Keys: []KeyDelta{
			{Method: "http-get", Browser: "chrome", Region: "us",
				Count: 305, Lost: 5, JitterSum: 12.5, JitterN: 299, Sketch: s},
			{Method: "websocket", Browser: "firefox", Region: "eu",
				Count: 0, Sketch: obs.NewSketch()},
		},
	})
	if err != nil {
		t.Fatalf("seed encode: %v", err)
	}
	empty, err := AppendFrame(nil, &Frame{Node: "n", Seq: 1})
	if err != nil {
		t.Fatalf("seed encode: %v", err)
	}
	torn := append([]byte(nil), valid[:len(valid)-7]...)
	flipped := append([]byte(nil), valid...)
	flipped[headerLen+3] ^= 0x10
	futureVer := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(futureVer[4:], Version+3)
	lyingLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(lyingLen[8:], uint32(len(valid)))
	double := append(append([]byte(nil), valid...), empty...)

	// CRC-valid frame whose sketch blob claims a tuple count chosen so
	// count*24 wraps uint64 (768614336404564651*24 == 2^64+8): the CRC
	// passes, so the decoder must reject the count arithmetic itself
	// rather than panic allocating the tuple slice.
	blob := obs.NewSketch().AppendBinary(nil)
	blob = binary.AppendUvarint(blob[:len(blob)-1], 768614336404564651)
	blob = append(blob, make([]byte, 8)...)
	var p []byte
	p = appendString(p, "n")
	p = binary.LittleEndian.AppendUint64(p, 1) // epoch
	p = binary.LittleEndian.AppendUint64(p, 1) // seq
	p = binary.LittleEndian.AppendUint64(p, 0) // sessions
	p = binary.AppendUvarint(p, 1)
	p = appendString(p, "m")
	p = appendString(p, "b")
	p = appendString(p, "r")
	p = append(p, make([]byte, 32)...) // count, lost, jitterSum, jitterN
	p = binary.AppendUvarint(p, uint64(len(blob)))
	overflowTuples := rawFrame(append(p, blob...))

	// CRC-valid frame claiming far more keys than its bytes can hold:
	// the count must be rejected before the per-key pre-allocation.
	var q []byte
	q = appendString(q, "n")
	q = append(q, make([]byte, 24)...) // epoch, seq, sessions
	q = binary.AppendUvarint(q, 4096)
	lyingKeys := rawFrame(append(q, make([]byte, 4200)...))

	return [][]byte{
		valid,
		empty,
		double,
		torn,
		flipped,
		futureVer,
		lyingLen,
		overflowTuples,
		lyingKeys,
		nil,
		magic[:],
		[]byte("not a frame"),
		bytes.Repeat([]byte{0xff}, headerLen+crcLen),
	}
}

// checkWireDecode holds DecodeFrame's fuzz invariants: it never panics,
// errors are one of the three sentinels, consumed stays in range, and
// any accepted frame re-encodes canonically to the exact input bytes.
func checkWireDecode(t *testing.T, data []byte) {
	t.Helper()
	f, n, err := DecodeFrame(data)
	if err != nil {
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("non-sentinel error: %v", err)
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d on error", n, len(data))
		}
		return
	}
	if n <= 0 || n > len(data) {
		t.Fatalf("accepted frame consumed %d of %d", n, len(data))
	}
	again, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("accepted frame does not re-encode: %v", err)
	}
	if !bytes.Equal(again, data[:n]) {
		t.Fatal("accepted frame is not canonical: re-encoding differs")
	}
}

func FuzzWireDecode(f *testing.F) {
	for _, seed := range wireSeedCorpus(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) { checkWireDecode(t, data) })
}

// TestWireFuzzSeedCorpus replays the seed corpus as a plain test so the
// invariants run under `go test` (and CI) without -fuzz.
func TestWireFuzzSeedCorpus(t *testing.T) {
	for _, seed := range wireSeedCorpus(t) {
		seed := seed
		t.Run("seed", func(t *testing.T) { checkWireDecode(t, seed) })
	}
}

// TestWireSeedCorpusValidSeedDecodes sanity-checks that the valid seeds
// exercise the accept path.
func TestWireSeedCorpusValidSeedDecodes(t *testing.T) {
	seeds := wireSeedCorpus(t)
	if _, _, err := DecodeFrame(seeds[0]); err != nil {
		t.Fatalf("canonical seed rejected: %v", err)
	}
	if _, _, err := DecodeFrame(seeds[1]); err != nil {
		t.Fatalf("empty-frame seed rejected: %v", err)
	}
}
