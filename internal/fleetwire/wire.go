// Package fleetwire is the multi-node wire format of the fleet plane:
// the versioned, length-prefixed binary frames collectors ship their
// per-tick delta sketches upstream in. One frame carries one collector
// fan-in tick — the node's name, a per-node monotone sequence number,
// and the (method, browser, region)-keyed CKMS delta sketches with
// their count/loss/jitter side-state.
//
// Design rules:
//
//   - the encoding is canonical: keys are sorted, floats travel as raw
//     IEEE 754 bits, and equal tick deltas encode to identical bytes —
//     so encode→decode→Merge is bit-equivalent to an in-process Merge
//     and cross-node fan-in correctness reduces to this codec plus the
//     already-property-tested order-invariant COMBINE machinery;
//   - every frame is independently checksummed (CRC-32C over the
//     payload) and length-prefixed, so a torn TCP stream, a truncated
//     POST body or a bit flip is rejected at the frame boundary rather
//     than skewing cluster aggregates;
//   - the version field is checked before anything else is parsed, so a
//     rolling upgrade's mixed-version fleet degrades to counted frame
//     rejections, never to misparsed tuples.
//
// Frame layout (integers little-endian):
//
//	[4]byte  magic "bmwf"
//	u16      wire version (Version)
//	u16      reserved (must be zero)
//	u32      payload length
//	payload:
//	    uvarint+bytes  node name
//	    u64            epoch (collector boot id; sequence numbers are
//	                   monotone within one epoch and restart with it)
//	    u64            frame sequence number (per node+epoch, monotone)
//	    u64            live sessions at the node
//	    uvarint        key count
//	    per key (strictly ascending by method, browser, region):
//	        uvarint+bytes ×3  method, browser, region
//	        u64 ×2            count, lost
//	        f64               jitterSum
//	        u64               jitterN
//	        uvarint+bytes     sketch (obs binary sketch encoding)
//	u32      CRC-32 (Castagnoli) of the payload
package fleetwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"github.com/browsermetric/browsermetric/internal/obs"
)

// Version is the wire format version this package encodes and accepts.
const Version = 1

// magic opens every frame; it doubles as a cheap stream-desync detector.
var magic = [4]byte{'b', 'm', 'w', 'f'}

const (
	headerLen = 12 // magic + version + reserved + payload length
	crcLen    = 4

	// MaxPayload bounds a single frame (64 MiB). Real frames are a few
	// KiB per key; the cap keeps a corrupt length prefix from turning
	// into an allocation bomb.
	MaxPayload = 64 << 20

	// maxLabel bounds one method/browser/region/node string.
	maxLabel = 4096
	// maxKeys bounds the key count in one frame.
	maxKeys = 1 << 20
	// minKeyEnc is the fewest payload bytes one encoded key can occupy:
	// three empty-label length bytes, four fixed u64s, and a one-byte
	// sketch-blob length prefix.
	minKeyEnc = 3 + 4*8 + 1
)

// Sentinel errors; Decode wraps them with positional detail.
var (
	// ErrTruncated marks an input that ends mid-frame: the caller may
	// have read a partial stream and can retry with more bytes.
	ErrTruncated = errors.New("fleetwire: truncated frame")
	// ErrCorrupt marks a structurally invalid or checksum-failing frame.
	ErrCorrupt = errors.New("fleetwire: corrupt frame")
	// ErrVersion marks a well-formed frame of an unsupported version.
	ErrVersion = errors.New("fleetwire: unsupported wire version")
)

// KeyDelta is one (method, browser, region) series' delta for a tick:
// the sample/loss counters, the jitter accumulator and the CKMS delta
// sketch of the delays.
type KeyDelta struct {
	Method, Browser, Region string
	Count, Lost             uint64
	JitterSum               float64
	JitterN                 uint64
	Sketch                  *obs.Sketch
}

// Frame is one collector tick on the wire. Epoch is the collector's
// boot id (any value that changes across process restarts, e.g. the
// start time in nanoseconds): Seq is monotone only within one epoch,
// so a root can tell a restarted collector (new epoch, seq back at 1)
// from a duplicated frame (same epoch, seq at or below the high-water
// mark).
type Frame struct {
	Node     string
	Epoch    uint64
	Seq      uint64
	Sessions uint64
	Keys     []KeyDelta
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func keyLess(a, b *KeyDelta) bool {
	if a.Method != b.Method {
		return a.Method < b.Method
	}
	if a.Browser != b.Browser {
		return a.Browser < b.Browser
	}
	return a.Region < b.Region
}

// AppendFrame appends the canonical encoding of f to b and returns the
// extended slice. Keys are encoded in sorted (method, browser, region)
// order regardless of input order (the input slice is not mutated);
// sketches are flushed by the sketch encoder but otherwise unchanged.
func AppendFrame(b []byte, f *Frame) ([]byte, error) {
	if f.Node == "" || len(f.Node) > maxLabel {
		return nil, fmt.Errorf("fleetwire: node name %q out of range", f.Node)
	}
	if len(f.Keys) > maxKeys {
		return nil, fmt.Errorf("fleetwire: %d keys exceeds frame cap", len(f.Keys))
	}
	order := make([]*KeyDelta, len(f.Keys))
	for i := range f.Keys {
		kd := &f.Keys[i]
		if len(kd.Method) > maxLabel || len(kd.Browser) > maxLabel || len(kd.Region) > maxLabel {
			return nil, fmt.Errorf("fleetwire: key label too long")
		}
		order[i] = kd
	}
	sort.SliceStable(order, func(i, j int) bool { return keyLess(order[i], order[j]) })
	for i := 1; i < len(order); i++ {
		if !keyLess(order[i-1], order[i]) {
			return nil, fmt.Errorf("fleetwire: duplicate key %s/%s/%s",
				order[i].Method, order[i].Browser, order[i].Region)
		}
	}

	start := len(b)
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.LittleEndian.AppendUint16(b, 0) // reserved
	b = binary.LittleEndian.AppendUint32(b, 0) // payload length, patched below
	payloadStart := len(b)

	b = appendString(b, f.Node)
	b = binary.LittleEndian.AppendUint64(b, f.Epoch)
	b = binary.LittleEndian.AppendUint64(b, f.Seq)
	b = binary.LittleEndian.AppendUint64(b, f.Sessions)
	b = binary.AppendUvarint(b, uint64(len(order)))
	for _, kd := range order {
		b = appendString(b, kd.Method)
		b = appendString(b, kd.Browser)
		b = appendString(b, kd.Region)
		b = binary.LittleEndian.AppendUint64(b, kd.Count)
		b = binary.LittleEndian.AppendUint64(b, kd.Lost)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(kd.JitterSum))
		b = binary.LittleEndian.AppendUint64(b, kd.JitterN)
		sk := kd.Sketch
		if sk == nil {
			sk = obs.NewSketch()
		}
		enc := sk.AppendBinary(nil)
		b = binary.AppendUvarint(b, uint64(len(enc)))
		b = append(b, enc...)
	}

	payload := b[payloadStart:]
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("fleetwire: payload %d exceeds cap", len(payload))
	}
	binary.LittleEndian.PutUint32(b[start+8:], uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return b, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// DecodeFrame parses the first frame in b and returns it with the
// number of bytes consumed, so a POST body carrying several
// back-to-back frames decodes with repeated calls. Errors wrap
// ErrTruncated (incomplete input — more bytes may complete the frame),
// ErrVersion (recognizable frame of another version; consumed reports
// the full frame length so the caller can skip it) or ErrCorrupt.
func DecodeFrame(b []byte) (*Frame, int, error) {
	if len(b) < headerLen {
		return nil, 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	if [4]byte(b[:4]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := binary.LittleEndian.Uint16(b[4:])
	reserved := binary.LittleEndian.Uint16(b[6:])
	payloadLen := int(binary.LittleEndian.Uint32(b[8:]))
	if payloadLen > MaxPayload {
		return nil, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, payloadLen)
	}
	total := headerLen + payloadLen + crcLen
	if len(b) < total {
		return nil, 0, fmt.Errorf("%w: have %d of %d bytes", ErrTruncated, len(b), total)
	}
	if version != Version {
		return nil, total, fmt.Errorf("%w: got %d, want %d", ErrVersion, version, Version)
	}
	if reserved != 0 {
		return nil, 0, fmt.Errorf("%w: nonzero reserved field", ErrCorrupt)
	}
	payload := b[headerLen : headerLen+payloadLen]
	wantCRC := binary.LittleEndian.Uint32(b[headerLen+payloadLen:])
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	f, err := decodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return f, total, nil
}

func decodePayload(p []byte) (*Frame, error) {
	d := wireReader{buf: p}
	node, ok := d.str()
	if !ok || node == "" {
		return nil, fmt.Errorf("%w: node name", ErrCorrupt)
	}
	f := &Frame{Node: node}
	if f.Epoch, ok = d.u64(); !ok {
		return nil, fmt.Errorf("%w: epoch", ErrCorrupt)
	}
	if f.Seq, ok = d.u64(); !ok {
		return nil, fmt.Errorf("%w: sequence", ErrCorrupt)
	}
	if f.Sessions, ok = d.u64(); !ok {
		return nil, fmt.Errorf("%w: sessions", ErrCorrupt)
	}
	nk, ok := d.uvarint()
	// Bound the claimed count by the fewest bytes one encoded key can
	// occupy in the remaining payload, so a lying count cannot force a
	// large pre-allocation that the first failed key parse discards.
	if !ok || nk > maxKeys || nk > uint64(len(p)-d.off)/minKeyEnc {
		return nil, fmt.Errorf("%w: key count", ErrCorrupt)
	}
	f.Keys = make([]KeyDelta, 0, nk)
	for i := uint64(0); i < nk; i++ {
		var kd KeyDelta
		var jb uint64
		ok1 := true
		if kd.Method, ok = d.str(); !ok {
			ok1 = false
		}
		if kd.Browser, ok = d.str(); !ok {
			ok1 = false
		}
		if kd.Region, ok = d.str(); !ok {
			ok1 = false
		}
		if kd.Count, ok = d.u64(); !ok {
			ok1 = false
		}
		if kd.Lost, ok = d.u64(); !ok {
			ok1 = false
		}
		if jb, ok = d.u64(); !ok {
			ok1 = false
		}
		if kd.JitterN, ok = d.u64(); !ok {
			ok1 = false
		}
		if !ok1 {
			return nil, fmt.Errorf("%w: key %d truncated", ErrCorrupt, i)
		}
		kd.JitterSum = math.Float64frombits(jb)
		if math.IsNaN(kd.JitterSum) || kd.Lost > kd.Count {
			return nil, fmt.Errorf("%w: key %d counters out of range", ErrCorrupt, i)
		}
		skBytes, ok := d.blob()
		if !ok {
			return nil, fmt.Errorf("%w: key %d sketch truncated", ErrCorrupt, i)
		}
		sk, err := obs.DecodeSketch(skBytes)
		if err != nil {
			return nil, fmt.Errorf("%w: key %d sketch: %v", ErrCorrupt, i, err)
		}
		kd.Sketch = sk
		if len(f.Keys) > 0 && !keyLess(&f.Keys[len(f.Keys)-1], &kd) {
			return nil, fmt.Errorf("%w: keys not in canonical order", ErrCorrupt)
		}
		f.Keys = append(f.Keys, kd)
	}
	if d.off != len(p) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p)-d.off)
	}
	return f, nil
}

// wireReader is a bounds-checked cursor over one payload.
type wireReader struct {
	buf []byte
	off int
}

func (d *wireReader) u64() (uint64, bool) {
	if d.off+8 > len(d.buf) {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, true
}

func (d *wireReader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, false
	}
	d.off += n
	return v, true
}

func (d *wireReader) str() (string, bool) {
	n, ok := d.uvarint()
	if !ok || n > maxLabel || d.off+int(n) > len(d.buf) {
		return "", false
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, true
}

func (d *wireReader) blob() ([]byte, bool) {
	n, ok := d.uvarint()
	if !ok || n > uint64(len(d.buf)-d.off) {
		return nil, false
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, true
}
