package fleetwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/browsermetric/browsermetric/internal/obs"
)

func sketchOf(vals ...float64) *obs.Sketch {
	s := obs.NewSketch()
	for _, v := range vals {
		s.Observe(v)
	}
	return s
}

func testFrame(t *testing.T, seed int64) *Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := &Frame{Node: "collector-7", Epoch: 777000 + uint64(seed), Seq: uint64(seed + 1), Sessions: 4321}
	for _, k := range [][3]string{
		{"http-get", "chrome", "us"},
		{"http-get", "chrome", "eu"},
		{"websocket", "firefox", "ap"},
		{"udp", "opera", "sa"},
	} {
		s := obs.NewSketch()
		n := 50 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			s.Observe(20 + rng.ExpFloat64()*30)
		}
		f.Keys = append(f.Keys, KeyDelta{
			Method: k[0], Browser: k[1], Region: k[2],
			Count: uint64(n) + 3, Lost: 3,
			JitterSum: rng.Float64() * 100, JitterN: uint64(n) - 1,
			Sketch: s,
		})
	}
	return f
}

func encode(t *testing.T, f *Frame) []byte {
	t.Helper()
	b, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	f := testFrame(t, 1)
	enc := encode(t, f)
	got, n, err := DecodeFrame(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if got.Node != f.Node || got.Epoch != f.Epoch || got.Seq != f.Seq || got.Sessions != f.Sessions {
		t.Fatalf("header diverged: %+v", got)
	}
	if len(got.Keys) != len(f.Keys) {
		t.Fatalf("keys = %d, want %d", len(got.Keys), len(f.Keys))
	}
	// Decoded keys come out canonically sorted; compare against a sorted
	// copy of the input.
	want := append([]KeyDelta(nil), f.Keys...)
	sort.Slice(want, func(i, j int) bool { return keyLess(&want[i], &want[j]) })
	for i := range want {
		w, g := want[i], got.Keys[i]
		if g.Method != w.Method || g.Browser != w.Browser || g.Region != w.Region ||
			g.Count != w.Count || g.Lost != w.Lost || g.JitterSum != w.JitterSum || g.JitterN != w.JitterN {
			t.Fatalf("key %d diverged: got %+v want %+v", i, g, w)
		}
		if !bytes.Equal(g.Sketch.AppendBinary(nil), w.Sketch.AppendBinary(nil)) {
			t.Fatalf("key %d sketch state diverged", i)
		}
	}
}

func TestFramesConcatenateAndStreamDecode(t *testing.T) {
	a, b := testFrame(t, 1), testFrame(t, 2)
	buf := encode(t, a)
	buf = append(buf, encode(t, b)...)
	got1, n1, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	got2, n2, err := DecodeFrame(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(buf) {
		t.Fatalf("consumed %d+%d of %d", n1, n2, len(buf))
	}
	if got1.Seq != a.Seq || got2.Seq != b.Seq {
		t.Fatalf("seq order: %d then %d", got1.Seq, got2.Seq)
	}
}

func TestEncodeCanonical(t *testing.T) {
	f := testFrame(t, 3)
	first := encode(t, f)
	// Shuffle the key order: the canonical encoder must not care.
	shuffled := &Frame{Node: f.Node, Epoch: f.Epoch, Seq: f.Seq, Sessions: f.Sessions}
	shuffled.Keys = append([]KeyDelta(nil), f.Keys...)
	rand.New(rand.NewSource(9)).Shuffle(len(shuffled.Keys), func(i, j int) {
		shuffled.Keys[i], shuffled.Keys[j] = shuffled.Keys[j], shuffled.Keys[i]
	})
	if !bytes.Equal(encode(t, shuffled), first) {
		t.Fatal("encoding depends on input key order")
	}
	if !bytes.Equal(encode(t, f), first) {
		t.Fatal("encoding not deterministic")
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, err := AppendFrame(nil, &Frame{Node: ""}); err == nil {
		t.Fatal("empty node accepted")
	}
	dup := &Frame{Node: "n", Keys: []KeyDelta{
		{Method: "m", Browser: "b", Region: "r", Sketch: sketchOf(1)},
		{Method: "m", Browser: "b", Region: "r", Sketch: sketchOf(2)},
	}}
	if _, err := AppendFrame(nil, dup); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestDecodeRejectsTornFrame(t *testing.T) {
	enc := encode(t, testFrame(t, 4))
	for cut := 0; cut < len(enc); cut++ {
		_, _, err := DecodeFrame(enc[:cut])
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		// A prefix cut must look truncated (retryable with more bytes),
		// except where the cut lands inside the length-delimited region
		// after the header is complete — those are still ErrTruncated.
		if cut < len(enc) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncation at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := encode(t, testFrame(t, 5))
	flips := 0
	for i := 0; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		f, _, err := DecodeFrame(bad)
		if err == nil {
			t.Fatalf("bit flip at %d accepted (frame %+v)", i, f)
		}
		flips++
	}
	if flips != len(enc) {
		t.Fatalf("covered %d of %d bytes", flips, len(enc))
	}
}

func TestDecodeRejectsBadMagicAndVersion(t *testing.T) {
	enc := encode(t, testFrame(t, 6))
	badMagic := append([]byte(nil), enc...)
	badMagic[0] = 'X'
	if _, _, err := DecodeFrame(badMagic); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v", err)
	}
	badVer := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint16(badVer[4:], Version+1)
	_, n, err := DecodeFrame(badVer)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: err = %v", err)
	}
	if n != len(enc) {
		t.Fatalf("version mismatch consumed %d, want %d (skippable)", n, len(enc))
	}
	// Oversized length prefix must be rejected before any allocation.
	huge := append([]byte(nil), enc[:headerLen]...)
	binary.LittleEndian.PutUint32(huge[8:], MaxPayload+1)
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: err = %v", err)
	}
}

// TestDecodeRejectsLyingKeyCount: a frame whose payload claims far more
// keys than its remaining bytes could possibly hold must be rejected at
// the count check — before the ~88-byte-per-key slice pre-allocation —
// even when the frame is large enough that the count passes maxKeys and
// the CRC is valid.
func TestDecodeRejectsLyingKeyCount(t *testing.T) {
	var p []byte
	p = appendString(p, "n")
	p = binary.LittleEndian.AppendUint64(p, 1) // epoch
	p = binary.LittleEndian.AppendUint64(p, 1) // seq
	p = binary.LittleEndian.AppendUint64(p, 0) // sessions
	p = binary.AppendUvarint(p, maxKeys)       // claims 2^20 keys...
	p = append(p, make([]byte, 1<<20)...)      // ...in ~1 MiB of zeros
	frame := rawFrame(p)
	if _, _, err := DecodeFrame(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lying key count: err = %v, want ErrCorrupt", err)
	}
}

// rawFrame wraps an arbitrary payload in a valid header and CRC, for
// crafting frames the canonical encoder refuses to produce.
func rawFrame(payload []byte) []byte {
	b := append([]byte(nil), magic[:]...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.LittleEndian.AppendUint16(b, 0)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
}

// TestWireMergeBitEquivalent is the tentpole property: shipping a delta
// sketch through encode→decode and merging it is bit-equivalent to
// merging the original in process.
func TestWireMergeBitEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		base := obs.NewSketch()
		delta := obs.NewSketch()
		for i := 0; i < 500+rng.Intn(3000); i++ {
			base.Observe(rng.Float64() * 100)
		}
		for i := 0; i < 100+rng.Intn(2000); i++ {
			delta.Observe(50 + rng.NormFloat64()*20)
		}
		f := &Frame{Node: "n1", Seq: 1, Keys: []KeyDelta{{
			Method: "m", Browser: "b", Region: "r", Count: delta.Count(), Sketch: delta,
		}}}
		enc := encode(t, f)
		dec, _, err := DecodeFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		inProcess := obs.MergeSketches(base, delta)
		shipped := obs.MergeSketches(base, dec.Keys[0].Sketch)
		if !bytes.Equal(inProcess.AppendBinary(nil), shipped.AppendBinary(nil)) {
			t.Fatalf("trial %d: shipped merge state diverged from in-process merge", trial)
		}
	}
}

// TestFourNodeFanInAnyOrder simulates 4 nodes' deltas shipped as frames
// and folded at a root in arbitrary arrival orders: every order must
// answer every quantile identically to the canonical single-process
// MergeSketches fold of the same deltas, and the answers must respect
// the configured rank-error bound against the exact quantiles.
func TestFourNodeFanInAnyOrder(t *testing.T) {
	const nodes = 4
	rng := rand.New(rand.NewSource(21))
	var frames [][]byte
	var deltas []*obs.Sketch
	var all []float64
	for n := 0; n < nodes; n++ {
		s := obs.NewSketch()
		for i := 0; i < 2000+rng.Intn(3000); i++ {
			v := 10 + rng.ExpFloat64()*40
			if n%2 == 1 {
				v = 100 + rng.NormFloat64()*10 // node-skewed distributions
			}
			s.Observe(v)
			all = append(all, v)
		}
		deltas = append(deltas, s)
		f := &Frame{Node: "node", Seq: uint64(n + 1), Keys: []KeyDelta{{
			Method: "m", Browser: "b", Region: "r", Count: s.Count(), Sketch: s,
		}}}
		frames = append(frames, encode(t, f))
	}
	reference := obs.MergeSketches(deltas...)

	sort.Float64s(all)
	exact := func(q float64) float64 { return all[int(q*float64(len(all)-1))] }
	rank := func(v float64) float64 { return float64(sort.SearchFloat64s(all, v)) / float64(len(all)) }

	for trial := 0; trial < 8; trial++ {
		order := rng.Perm(nodes)
		shipped := make([]*obs.Sketch, 0, nodes)
		for _, idx := range order {
			dec, _, err := DecodeFrame(frames[idx])
			if err != nil {
				t.Fatal(err)
			}
			shipped = append(shipped, dec.Keys[0].Sketch)
		}
		merged := obs.MergeSketches(shipped...)
		for _, tg := range obs.DefaultSketchTargets {
			want := reference.Quantile(tg.Quantile)
			got := merged.Quantile(tg.Quantile)
			if got != want {
				t.Fatalf("trial %d order %v: q%g = %g, canonical fold %g",
					trial, order, tg.Quantile, got, want)
			}
			if math.Abs(rank(got)-tg.Quantile) > tg.Epsilon+1.0/float64(len(all)) {
				t.Fatalf("q%g answer %g violates rank bound (exact %g)",
					tg.Quantile, got, exact(tg.Quantile))
			}
		}
	}
}
