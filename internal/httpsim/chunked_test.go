package httpsim

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestChunkedRoundTrip(t *testing.T) {
	in := &Response{Status: 200, Headers: Headers{{"Server", "sim"}}, Body: []byte("hello chunked world")}
	b := in.MarshalChunked(5)
	out, n, err := ParseResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d", n, len(b))
	}
	if string(out.Body) != "hello chunked world" {
		t.Fatalf("body = %q", out.Body)
	}
	if out.Headers.Get("Transfer-Encoding") != "chunked" {
		t.Fatal("transfer-encoding header lost")
	}
}

func TestChunkedEmptyBody(t *testing.T) {
	in := &Response{Status: 204}
	out, _, err := ParseResponse(in.MarshalChunked(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Body) != 0 {
		t.Fatalf("body = %q", out.Body)
	}
}

func TestChunkedIncrementalParse(t *testing.T) {
	full := (&Response{Status: 200, Body: bytes.Repeat([]byte("x"), 100)}).MarshalChunked(7)
	for cut := 0; cut < len(full); cut++ {
		_, _, err := ParseResponse(full[:cut])
		if err == nil {
			t.Fatalf("cut=%d: parse succeeded early", cut)
		}
		if !errors.Is(err, ErrIncomplete) {
			t.Fatalf("cut=%d: err = %v, want ErrIncomplete", cut, err)
		}
	}
}

func TestChunkedMalformed(t *testing.T) {
	cases := []string{
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nhello\r\n0\r\n\r\n", // bad hex
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhelloXX0\r\n\r\n",    // missing CRLF after data
		"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\nXY",    // bad final CRLF
	}
	for _, c := range cases {
		if _, _, err := ParseResponse([]byte(c)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%q: err = %v, want ErrMalformed", c, err)
		}
	}
}

func TestChunkedRequestBody(t *testing.T) {
	// Chunked also applies to requests.
	raw := "POST /up HTTP/1.1\r\nHost: s\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"3\r\nabc\r\n4\r\ndefg\r\n0\r\n\r\n"
	req, n, err := ParseRequest([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) || string(req.Body) != "abcdefg" {
		t.Fatalf("body = %q consumed %d/%d", req.Body, n, len(raw))
	}
}

// Property: chunked marshal/parse round-trips for arbitrary bodies and
// chunk sizes.
func TestQuickChunkedRoundTrip(t *testing.T) {
	f := func(body []byte, size uint8) bool {
		in := &Response{Status: 200, Body: body}
		b := in.MarshalChunked(int(size%64) + 1)
		out, n, err := ParseResponse(b)
		if err != nil || n != len(b) {
			return false
		}
		return bytes.Equal(out.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
