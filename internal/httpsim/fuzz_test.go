package httpsim

import (
	"bytes"
	"testing"
)

// requestSeeds is the checked-in seed corpus for FuzzParseRequest: complete
// and partial messages, content-length and chunked bodies, and malformed
// variants of each.
func requestSeeds() [][]byte {
	return [][]byte{
		nil,
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		[]byte("GET /probe HTTP/1.1\r\nHost: server\r\n\r\n"),
		[]byte("POST /probe HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"),
		[]byte("POST /probe HTTP/1.1\r\nContent-Length: 3\r\n\r\nab"),    // short body
		[]byte("POST / HTTP/1.1\r\nContent-Length: 9999999999\r\n\r\nx"), // huge length
		[]byte("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),          // negative
		[]byte("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\n\r\n"),
		[]byte("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n"), // bad chunk size
		[]byte("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffffffff\r\n"),
		[]byte("GET /\r\n\r\n"),         // missing proto
		[]byte("GET / FTP/1.0\r\n\r\n"), // wrong proto
		[]byte("GET / HTTP/1.1\r\nNoColon\r\n\r\n"),
		[]byte("\r\n\r\n"),
		[]byte("GET / HTTP/1.1\r\nHost: a\r\nHost: b\r\n\r\nGET /2 HTTP/1.1\r\n\r\n"), // pipelined
	}
}

// responseSeeds mirrors requestSeeds for the response parser.
func responseSeeds() [][]byte {
	return [][]byte{
		nil,
		[]byte("HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\npong"),
		[]byte("HTTP/1.1 204 No Content\r\n\r\n"),
		[]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\npong\r\n0\r\n\r\n"),
		[]byte("HTTP/1.1 abc Bad\r\n\r\n"), // non-numeric status
		[]byte("HTTP/1.1\r\n\r\n"),         // missing status
		[]byte("ICY 200 OK\r\n\r\n"),       // wrong proto
		[]byte("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort"),
		[]byte("HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\n\r\n"),
	}
}

// checkRequestParse runs the parser invariants on one input.
func checkRequestParse(t *testing.T, data []byte) {
	t.Helper()
	req, n, err := ParseRequest(data)
	if err != nil {
		if req != nil || n != 0 {
			t.Fatalf("error return must be (nil, 0): got (%v, %d, %v)", req, n, err)
		}
		return
	}
	if n < 0 || n > len(data) {
		t.Fatalf("consumed %d of %d bytes", n, len(data))
	}
	// A parsed message re-marshals into something the parser accepts again
	// with an equivalent shape (not necessarily byte-identical: header
	// whitespace and implied Content-Length normalize). Chunked messages
	// are exempt: Marshal writes the decoded body raw while keeping the
	// Transfer-Encoding header, so the re-parse would look for chunk
	// framing that is intentionally gone.
	if req.Headers.Get("Transfer-Encoding") != "" {
		return
	}
	re, n2, err := ParseRequest(req.Marshal())
	if err != nil {
		t.Fatalf("re-parse of Marshal failed: %v", err)
	}
	if re.Method != req.Method || re.Target != req.Target || !bytes.Equal(re.Body, req.Body) {
		t.Fatalf("round-trip changed message: %+v vs %+v", re, req)
	}
	if n2 <= 0 {
		t.Fatalf("re-parse consumed %d", n2)
	}
}

func checkResponseParse(t *testing.T, data []byte) {
	t.Helper()
	resp, n, err := ParseResponse(data)
	if err != nil {
		if resp != nil || n != 0 {
			t.Fatalf("error return must be (nil, 0): got (%v, %d, %v)", resp, n, err)
		}
		return
	}
	if n < 0 || n > len(data) {
		t.Fatalf("consumed %d of %d bytes", n, len(data))
	}
	if resp.Headers.Get("Transfer-Encoding") != "" {
		return
	}
	re, n2, err := ParseResponse(resp.Marshal())
	if err != nil {
		t.Fatalf("re-parse of Marshal failed: %v", err)
	}
	if re.Status != resp.Status || !bytes.Equal(re.Body, resp.Body) {
		t.Fatalf("round-trip changed message: %+v vs %+v", re, resp)
	}
	if n2 <= 0 {
		t.Fatalf("re-parse consumed %d", n2)
	}
}

func FuzzParseRequest(f *testing.F) {
	for _, s := range requestSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkRequestParse(t, data)
	})
}

func FuzzParseResponse(f *testing.F) {
	for _, s := range responseSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkResponseParse(t, data)
	})
}

// TestParseSeedCorpus replays both seed corpora as plain tests so the
// regression coverage runs on every `go test`, without -fuzz.
func TestParseSeedCorpus(t *testing.T) {
	for _, s := range requestSeeds() {
		checkRequestParse(t, s)
	}
	for _, s := range responseSeeds() {
		checkResponseParse(t, s)
	}
}
