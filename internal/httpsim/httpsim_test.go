package httpsim

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/netsim"
	"github.com/browsermetric/browsermetric/internal/tcpsim"
)

func TestRequestRoundTrip(t *testing.T) {
	in := &Request{
		Method:  "POST",
		Target:  "/probe?x=1",
		Headers: Headers{{"Host", "server"}, {"X-Probe", "abc"}},
		Body:    []byte("payload-bytes"),
	}
	b := in.Marshal()
	out, n, err := ParseRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d", n, len(b))
	}
	if out.Method != "POST" || out.Target != "/probe?x=1" || out.Proto != "HTTP/1.1" {
		t.Fatalf("request line = %s %s %s", out.Method, out.Target, out.Proto)
	}
	if out.Headers.Get("host") != "server" || out.Headers.Get("X-PROBE") != "abc" {
		t.Fatalf("headers = %+v", out.Headers)
	}
	if string(out.Body) != "payload-bytes" {
		t.Fatalf("body = %q", out.Body)
	}
	if out.Headers.Get("Content-Length") != "13" {
		t.Fatalf("Content-Length = %q", out.Headers.Get("Content-Length"))
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := &Response{Status: 200, Headers: Headers{{"Server", "simapache/2.2"}}, Body: []byte("pong")}
	b := in.Marshal()
	out, n, err := ParseResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d", n, len(b))
	}
	if out.Status != 200 || out.Reason != "OK" {
		t.Fatalf("status = %d %q", out.Status, out.Reason)
	}
	if string(out.Body) != "pong" {
		t.Fatalf("body = %q", out.Body)
	}
}

func TestParseIncomplete(t *testing.T) {
	full := (&Request{Method: "GET", Target: "/", Headers: Headers{{"Host", "h"}}}).Marshal()
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ParseRequest(full[:cut]); !errors.Is(err, ErrIncomplete) {
			t.Fatalf("cut=%d: err = %v, want ErrIncomplete", cut, err)
		}
	}
}

func TestParseIncompleteBody(t *testing.T) {
	full := (&Request{Method: "POST", Target: "/", Body: []byte("0123456789")}).Marshal()
	if _, _, err := ParseRequest(full[:len(full)-3]); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
}

func TestParsePipelined(t *testing.T) {
	a := (&Request{Method: "GET", Target: "/a"}).Marshal()
	b := (&Request{Method: "GET", Target: "/b"}).Marshal()
	buf := append(append([]byte{}, a...), b...)
	r1, n1, err := ParseRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	r2, n2, err := ParseRequest(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if r1.Target != "/a" || r2.Target != "/b" || n1+n2 != len(buf) {
		t.Fatalf("pipelined parse wrong: %q %q", r1.Target, r2.Target)
	}
}

func TestParseMalformed(t *testing.T) {
	cases := []string{
		"BROKEN\r\n\r\n",
		"GET /\r\n\r\n",                                    // missing proto
		"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",            // bad header
		"HTTP/1.1 abc Bad\r\n\r\n",                         // bad status
		"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\nbody", // negative length
	}
	for _, c := range cases {
		var err error
		if strings.HasPrefix(c, "HTTP/") {
			_, _, err = ParseResponse([]byte(c))
		} else {
			_, _, err = ParseRequest([]byte(c))
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%q: err = %v, want ErrMalformed", c, err)
		}
	}
}

func TestHeaderSetReplaces(t *testing.T) {
	hs := Headers{{"Connection", "keep-alive"}}
	hs.Set("connection", "close")
	if len(hs) != 1 || hs.Get("Connection") != "close" {
		t.Fatalf("headers = %+v", hs)
	}
	hs.Set("New", "v")
	if len(hs) != 2 {
		t.Fatalf("Set did not append: %+v", hs)
	}
}

func TestWantsClose(t *testing.T) {
	if WantsClose(Headers{{"Connection", "keep-alive"}}) {
		t.Fatal("keep-alive treated as close")
	}
	if !WantsClose(Headers{{"Connection", "Close"}}) {
		t.Fatal("Close not detected (case-insensitive)")
	}
}

func TestStatusText(t *testing.T) {
	for code, want := range map[int]string{200: "OK", 101: "Switching Protocols", 404: "Not Found", 999: "Unknown"} {
		if got := StatusText(code); got != want {
			t.Errorf("StatusText(%d) = %q, want %q", code, got, want)
		}
	}
}

// netPair assembles client/server stacks over a switch for server tests.
func netPair(t testing.TB, sim *eventsim.Simulator, prop time.Duration) (*tcpsim.Stack, *tcpsim.Stack, netip.Addr) {
	t.Helper()
	macA := netsim.MAC{2, 0, 0, 0, 0, 1}
	macB := netsim.MAC{2, 0, 0, 0, 0, 2}
	ipA := netip.MustParseAddr("10.0.0.1")
	ipB := netip.MustParseAddr("10.0.0.2")
	nicA := netsim.NewNIC(sim, "a", macA, ipA)
	nicB := netsim.NewNIC(sim, "b", macB, ipB)
	sw := netsim.NewSwitch(sim, time.Microsecond)
	la := netsim.NewLink(sim, 100_000_000, prop)
	lb := netsim.NewLink(sim, 100_000_000, prop)
	nicA.Connect(la)
	sw.Connect(la)
	nicB.Connect(lb)
	sw.Connect(lb)
	table := map[netip.Addr]netsim.MAC{ipA: macA, ipB: macB}
	resolve := func(a netip.Addr) (netsim.MAC, bool) { m, ok := table[a]; return m, ok }
	sa, sb := tcpsim.NewStack(sim, nicA), tcpsim.NewStack(sim, nicB)
	sa.Resolve, sb.Resolve = resolve, resolve
	return sa, sb, ipB
}

func TestServerEndToEnd(t *testing.T) {
	sim := eventsim.New(1)
	client, serverStack, serverIP := netPair(t, sim, 100*time.Microsecond)

	srv := &Server{Sim: sim, Stack: serverStack, Handler: func(r *Request) *Response {
		return &Response{Status: 200, Body: []byte("echo:" + r.Target)}
	}}
	if err := srv.Serve(80); err != nil {
		t.Fatal(err)
	}

	var got *Response
	c, _ := client.Dial(serverIP, 80)
	cc := NewClientConn(c)
	c.OnEstablished = func() {
		cc.RoundTrip(&Request{Method: "GET", Target: "/x", Headers: Headers{{"Host", "s"}}}, func(r *Response) { got = r })
	}
	sim.RunUntil(10 * time.Second)

	if got == nil || got.Status != 200 || string(got.Body) != "echo:/x" {
		t.Fatalf("response = %+v", got)
	}
	if srv.Requests != 1 {
		t.Fatalf("server requests = %d", srv.Requests)
	}
}

func TestServerProcessingDelay(t *testing.T) {
	sim := eventsim.New(2)
	client, serverStack, serverIP := netPair(t, sim, 0)
	srv := &Server{Sim: sim, Stack: serverStack, ProcessingDelay: 50 * time.Millisecond,
		Handler: func(*Request) *Response { return &Response{Status: 200} }}
	srv.Serve(80)

	var sentAt, gotAt time.Duration
	c, _ := client.Dial(serverIP, 80)
	cc := NewClientConn(c)
	c.OnEstablished = func() {
		sentAt = sim.Now()
		cc.RoundTrip(&Request{Method: "GET", Target: "/"}, func(*Response) { gotAt = sim.Now() })
	}
	sim.RunUntil(10 * time.Second)

	rtt := gotAt - sentAt
	if rtt < 50*time.Millisecond || rtt > 51*time.Millisecond {
		t.Fatalf("request RTT = %v, want ~50ms (processing delay dominates)", rtt)
	}
}

func TestServerKeepAliveTwoRequests(t *testing.T) {
	sim := eventsim.New(3)
	client, serverStack, serverIP := netPair(t, sim, 10*time.Microsecond)
	srv := &Server{Sim: sim, Stack: serverStack, Handler: func(r *Request) *Response {
		return &Response{Status: 200, Body: []byte(r.Target)}
	}}
	srv.Serve(80)

	var bodies []string
	c, _ := client.Dial(serverIP, 80)
	cc := NewClientConn(c)
	c.OnEstablished = func() {
		cc.RoundTrip(&Request{Method: "GET", Target: "/1"}, func(r *Response) {
			bodies = append(bodies, string(r.Body))
			cc.RoundTrip(&Request{Method: "GET", Target: "/2"}, func(r2 *Response) {
				bodies = append(bodies, string(r2.Body))
			})
		})
	}
	sim.RunUntil(10 * time.Second)

	if len(bodies) != 2 || bodies[0] != "/1" || bodies[1] != "/2" {
		t.Fatalf("bodies = %v", bodies)
	}
	if c.State() != tcpsim.StateEstablished {
		t.Fatalf("keep-alive connection state = %v", c.State())
	}
}

func TestServerConnectionClose(t *testing.T) {
	sim := eventsim.New(4)
	client, serverStack, serverIP := netPair(t, sim, 10*time.Microsecond)
	srv := &Server{Sim: sim, Stack: serverStack, Handler: func(*Request) *Response {
		return &Response{Status: 200}
	}}
	srv.Serve(80)

	closed := false
	c, _ := client.Dial(serverIP, 80)
	cc := NewClientConn(c)
	c.OnClose = func() { closed = true }
	c.OnEstablished = func() {
		cc.RoundTrip(&Request{Method: "GET", Target: "/", Headers: Headers{{"Connection", "close"}}}, func(r *Response) {
			c.Close()
		})
	}
	sim.RunUntil(10 * time.Second)
	if !closed {
		t.Fatal("connection not torn down after Connection: close")
	}
}

func TestServerMalformedRequestGets400(t *testing.T) {
	sim := eventsim.New(5)
	client, serverStack, serverIP := netPair(t, sim, 10*time.Microsecond)
	srv := &Server{Sim: sim, Stack: serverStack, Handler: func(*Request) *Response {
		return &Response{Status: 200}
	}}
	srv.Serve(80)

	var status int
	c, _ := client.Dial(serverIP, 80)
	cc := NewClientConn(c)
	c.OnEstablished = func() {
		cc.pend = append(cc.pend, func(r *Response) { status = r.Status })
		c.Send([]byte("GARBAGE REQUEST LINE\r\n\r\n"))
	}
	sim.RunUntil(10 * time.Second)
	if status != 400 {
		t.Fatalf("status = %d, want 400", status)
	}
}

func TestServerNilHandler404(t *testing.T) {
	sim := eventsim.New(6)
	client, serverStack, serverIP := netPair(t, sim, 0)
	srv := &Server{Sim: sim, Stack: serverStack}
	srv.Serve(80)
	var status int
	c, _ := client.Dial(serverIP, 80)
	cc := NewClientConn(c)
	c.OnEstablished = func() {
		cc.RoundTrip(&Request{Method: "GET", Target: "/"}, func(r *Response) { status = r.Status })
	}
	sim.RunUntil(10 * time.Second)
	if status != 404 {
		t.Fatalf("status = %d, want 404", status)
	}
}

// Property: request marshal/parse round-trips for arbitrary bodies and
// token-ish targets.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(body []byte, seg uint16) bool {
		in := &Request{Method: "POST", Target: "/p/" + itoa(seg), Body: body}
		out, n, err := ParseRequest(in.Marshal())
		if err != nil || n != len(in.Marshal()) {
			return false
		}
		return out.Target == in.Target && bytes.Equal(out.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: response marshal/parse round-trips for valid status codes.
func TestQuickResponseRoundTrip(t *testing.T) {
	f := func(body []byte, code uint8) bool {
		status := 100 + int(code)%500
		in := &Response{Status: status, Body: body}
		out, _, err := ParseResponse(in.Marshal())
		if err != nil {
			return false
		}
		return out.Status == status && bytes.Equal(out.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v uint16) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{digits[v%10]}, b...)
		v /= 10
	}
	return string(b)
}

func TestServerPipelinedRequestsInOneSegment(t *testing.T) {
	// Two requests arriving in a single TCP segment: the server must
	// answer both in order.
	sim := eventsim.New(7)
	client, serverStack, serverIP := netPair(t, sim, 10*time.Microsecond)
	srv := &Server{Sim: sim, Stack: serverStack, Handler: func(r *Request) *Response {
		return &Response{Status: 200, Body: []byte(r.Target)}
	}}
	srv.Serve(80)

	var bodies []string
	c, _ := client.Dial(serverIP, 80)
	cc := NewClientConn(c)
	c.OnEstablished = func() {
		// Send both requests back-to-back without waiting.
		cc.RoundTrip(&Request{Method: "GET", Target: "/a"}, func(r *Response) {
			bodies = append(bodies, string(r.Body))
		})
		cc.RoundTrip(&Request{Method: "GET", Target: "/b"}, func(r *Response) {
			bodies = append(bodies, string(r.Body))
		})
	}
	sim.RunUntil(10 * time.Second)
	if len(bodies) != 2 || bodies[0] != "/a" || bodies[1] != "/b" {
		t.Fatalf("bodies = %v", bodies)
	}
	if srv.Requests != 2 {
		t.Fatalf("requests = %d", srv.Requests)
	}
}

func TestClientConnHandlesGarbageResponse(t *testing.T) {
	sim := eventsim.New(8)
	client, serverStack, serverIP := netPair(t, sim, 0)
	// A "server" that answers with garbage.
	serverStack.Listen(80, func(c *tcpsim.Conn) {
		c.OnData = func([]byte) { c.Send([]byte("NOT HTTP AT ALL\r\n\r\n")) }
	})
	var status int = -1
	c, _ := client.Dial(serverIP, 80)
	cc := NewClientConn(c)
	c.OnEstablished = func() {
		cc.RoundTrip(&Request{Method: "GET", Target: "/"}, func(r *Response) { status = r.Status })
	}
	sim.RunUntil(10 * time.Second)
	if status != 0 {
		t.Fatalf("status = %d, want synthetic 0 for parse failure", status)
	}
}
