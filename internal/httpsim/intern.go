package httpsim

// Interner deduplicates the small, highly repetitive string vocabulary of
// HTTP traffic (methods, header keys, common values). Interning a byte
// slice whose string is already known costs zero allocations — the
// map lookup on string(b) is optimized by the compiler to not materialize
// the string — so a steady-state parse of recurring messages allocates
// nothing for strings.
//
// The map is unbounded, so an interner should only be fed values drawn
// from a bounded vocabulary (one interner per server or per measurement
// runner, where the traffic shape is fixed). A nil *Interner simply
// copies, so every call site works without one attached.
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 32)}
}

// Intern returns a string equal to b, reusing a previously returned
// string when one exists. A nil interner returns a fresh copy.
func (in *Interner) Intern(b []byte) string {
	if in == nil {
		return string(b)
	}
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s := string(b)
	in.m[s] = s
	return s
}

// Len reports how many distinct strings the interner holds.
func (in *Interner) Len() int {
	if in == nil {
		return 0
	}
	return len(in.m)
}
