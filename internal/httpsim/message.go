// Package httpsim implements an HTTP/1.1 message codec and a small
// server/client pair running over the tcpsim substrate.
//
// HTTP is what separates the paper's HTTP-based measurement methods (XHR,
// DOM, Flash/Java GET and POST) from the socket-based ones: every request
// pays header serialization, parsing and — depending on the browser's
// connection policy — possibly a fresh TCP handshake.
package httpsim

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/browsermetric/browsermetric/internal/arena"
)

// ErrIncomplete reports that more bytes are needed to finish parsing a
// message. Callers accumulate stream data and retry.
var ErrIncomplete = errors.New("httpsim: incomplete message")

// ErrMalformed reports an unparseable message.
var ErrMalformed = errors.New("httpsim: malformed message")

// Header is a single ordered header field.
type Header struct {
	Key, Value string
}

// Headers is an ordered header list (order matters on the wire).
type Headers []Header

// Get returns the first value for key (case-insensitive), or "".
func (hs Headers) Get(key string) string {
	for _, h := range hs {
		if strings.EqualFold(h.Key, key) {
			return h.Value
		}
	}
	return ""
}

// Set replaces the first occurrence of key or appends.
func (hs *Headers) Set(key, value string) {
	for i, h := range *hs {
		if strings.EqualFold(h.Key, key) {
			(*hs)[i].Value = value
			return
		}
	}
	*hs = append(*hs, Header{key, value})
}

// Request is an HTTP/1.1 request.
type Request struct {
	Method  string
	Target  string
	Proto   string // "HTTP/1.1" if empty
	Headers Headers
	Body    []byte
}

// Response is an HTTP/1.1 response.
type Response struct {
	Proto   string // "HTTP/1.1" if empty
	Status  int
	Reason  string
	Headers Headers
	Body    []byte
}

// appendHeaders emits each header as "Key: Value\r\n".
func appendHeaders(b []byte, hs Headers) []byte {
	for _, h := range hs {
		b = append(b, h.Key...)
		b = append(b, ':', ' ')
		b = append(b, h.Value...)
		b = append(b, '\r', '\n')
	}
	return b
}

// headersLen is the serialized size of a header block.
func headersLen(hs Headers) int {
	n := 0
	for _, h := range hs {
		n += len(h.Key) + 2 + len(h.Value) + 2
	}
	return n
}

// Marshal serializes the request, adding Content-Length when a body is
// present and none is set. The output is built in a single allocation.
func (r *Request) Marshal() []byte { return r.MarshalArena(nil) }

// MarshalArena is Marshal drawing the output buffer from an arena (nil
// falls back to the heap). The bytes are valid until the arena's next
// Reset.
func (r *Request) MarshalArena(a *arena.Arena) []byte {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	var clBuf [20]byte
	var cl []byte
	if len(r.Body) > 0 && r.Headers.Get("Content-Length") == "" {
		cl = strconv.AppendInt(clBuf[:0], int64(len(r.Body)), 10)
	}
	n := len(r.Method) + 1 + len(r.Target) + 1 + len(proto) + 2 +
		headersLen(r.Headers) + 2 + len(r.Body)
	if cl != nil {
		n += len("Content-Length: ") + len(cl) + 2
	}
	b := a.Make(0, n)
	b = append(b, r.Method...)
	b = append(b, ' ')
	b = append(b, r.Target...)
	b = append(b, ' ')
	b = append(b, proto...)
	b = append(b, '\r', '\n')
	b = appendHeaders(b, r.Headers)
	if cl != nil {
		b = append(b, "Content-Length: "...)
		b = append(b, cl...)
		b = append(b, '\r', '\n')
	}
	b = append(b, '\r', '\n')
	b = append(b, r.Body...)
	return b
}

// Marshal serializes the response, always emitting Content-Length. The
// output is built in a single allocation.
func (r *Response) Marshal() []byte { return r.MarshalArena(nil) }

// MarshalArena is Marshal drawing the output buffer from an arena (nil
// falls back to the heap). The bytes are valid until the arena's next
// Reset.
func (r *Response) MarshalArena(a *arena.Arena) []byte {
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	reason := r.Reason
	if reason == "" {
		reason = StatusText(r.Status)
	}
	var statusBuf, clBuf [20]byte
	status := strconv.AppendInt(statusBuf[:0], int64(r.Status), 10)
	var cl []byte
	if r.Headers.Get("Content-Length") == "" {
		cl = strconv.AppendInt(clBuf[:0], int64(len(r.Body)), 10)
	}
	n := len(proto) + 1 + len(status) + 1 + len(reason) + 2 +
		headersLen(r.Headers) + 2 + len(r.Body)
	if cl != nil {
		n += len("Content-Length: ") + len(cl) + 2
	}
	b := a.Make(0, n)
	b = append(b, proto...)
	b = append(b, ' ')
	b = append(b, status...)
	b = append(b, ' ')
	b = append(b, reason...)
	b = append(b, '\r', '\n')
	b = appendHeaders(b, r.Headers)
	if cl != nil {
		b = append(b, "Content-Length: "...)
		b = append(b, cl...)
		b = append(b, '\r', '\n')
	}
	b = append(b, '\r', '\n')
	b = append(b, r.Body...)
	return b
}

// StatusText returns the reason phrase for common status codes.
func StatusText(code int) string {
	switch code {
	case 101:
		return "Switching Protocols"
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Unknown"
	}
}

// ParseRequest parses one request from the front of b. It returns the
// request and the number of bytes consumed, or ErrIncomplete if b does not
// yet hold a full message.
func ParseRequest(b []byte) (*Request, int, error) {
	req := &Request{}
	n, err := ParseRequestInto(req, b, nil, nil)
	if err != nil {
		return nil, 0, err
	}
	return req, n, nil
}

// ParseRequestInto parses one request from the front of b into req,
// reusing req's header backing, interning strings through in, and drawing
// the body copy from a (both optional — nil means plain allocation). On
// success the request's fields are valid until the next parse into the
// same req or the arena's next Reset, whichever comes first. Returns the
// number of bytes consumed, or ErrIncomplete when b does not yet hold a
// full message (req is then partially overwritten and must not be read).
func ParseRequestInto(req *Request, b []byte, in *Interner, a *arena.Arena) (int, error) {
	head, bodyStart, err := splitHead(b)
	if err != nil {
		return 0, err
	}
	line, rest := cutCRLF(head)
	method, r1, ok1 := cutSpace(line)
	target, proto, ok2 := cutSpace(r1)
	if !ok1 || !ok2 || !bytes.HasPrefix(proto, httpSlash) {
		return 0, fmt.Errorf("%w: bad request line %q", ErrMalformed, line)
	}
	req.Method = in.Intern(method)
	req.Target = in.Intern(target)
	req.Proto = in.Intern(proto)
	req.Body = nil
	if err := parseHeaders(rest, &req.Headers, in); err != nil {
		return 0, err
	}
	body, consumed, err := readBody(b, bodyStart, req.Headers, a)
	if err != nil {
		return 0, err
	}
	req.Body = body
	return consumed, nil
}

// ParseResponse parses one response from the front of b, analogous to
// ParseRequest.
func ParseResponse(b []byte) (*Response, int, error) {
	resp := &Response{}
	n, err := ParseResponseInto(resp, b, nil, nil)
	if err != nil {
		return nil, 0, err
	}
	return resp, n, nil
}

// ParseResponseInto parses one response from the front of b into resp,
// with the same reuse semantics as ParseRequestInto.
func ParseResponseInto(resp *Response, b []byte, in *Interner, a *arena.Arena) (int, error) {
	head, bodyStart, err := splitHead(b)
	if err != nil {
		return 0, err
	}
	line, rest := cutCRLF(head)
	proto, r1, ok := cutSpace(line)
	if !ok || !bytes.HasPrefix(proto, httpSlash) {
		return 0, fmt.Errorf("%w: bad status line %q", ErrMalformed, line)
	}
	code, reason, _ := cutSpace(r1)
	status, err := atoiBytes(code)
	if err != nil {
		// Rare shapes (signed, spaced) take the allocating strconv path so
		// acceptance matches the original parser exactly.
		status, err = strconv.Atoi(string(code))
		if err != nil {
			return 0, fmt.Errorf("%w: bad status code %q", ErrMalformed, code)
		}
	}
	resp.Proto = in.Intern(proto)
	resp.Status = status
	resp.Reason = in.Intern(reason)
	resp.Body = nil
	if err := parseHeaders(rest, &resp.Headers, in); err != nil {
		return 0, err
	}
	body, consumed, err := readBody(b, bodyStart, resp.Headers, a)
	if err != nil {
		return 0, err
	}
	resp.Body = body
	return consumed, nil
}

var (
	crlfSep   = []byte("\r\n")
	headSep   = []byte("\r\n\r\n")
	httpSlash = []byte("HTTP/")
)

// cutCRLF splits b at the first CRLF; without one, the whole input is the
// first part (mirroring strings.Cut semantics for the parsers above).
func cutCRLF(b []byte) (line, rest []byte) {
	if i := bytes.Index(b, crlfSep); i >= 0 {
		return b[:i], b[i+2:]
	}
	return b, nil
}

// cutSpace splits b at the first space.
func cutSpace(b []byte) (tok, rest []byte, ok bool) {
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		return b[:i], b[i+1:], true
	}
	return b, nil, false
}

// atoiBytes parses an unsigned decimal integer without allocating.
func atoiBytes(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, ErrMalformed
	}
	n := 0
	for _, ch := range b {
		if ch < '0' || ch > '9' {
			return 0, ErrMalformed
		}
		n = n*10 + int(ch-'0')
	}
	return n, nil
}

// splitHead finds the end of the header block. It returns the head (without
// the terminating CRLFCRLF) and the body start offset.
func splitHead(b []byte) ([]byte, int, error) {
	idx := bytes.Index(b, headSep)
	if idx < 0 {
		if len(b) > 64<<10 {
			return nil, 0, fmt.Errorf("%w: header block exceeds 64KiB", ErrMalformed)
		}
		return nil, 0, ErrIncomplete
	}
	return b[:idx], idx + 4, nil
}

// parseHeaders scans the CRLF-separated header block (everything after
// the start line), reusing out's backing array and interning the field
// strings through in.
func parseHeaders(block []byte, out *Headers, in *Interner) error {
	*out = (*out)[:0]
	for len(block) > 0 {
		ln, rest := cutCRLF(block)
		block = rest
		if len(ln) == 0 {
			continue
		}
		ci := bytes.IndexByte(ln, ':')
		if ci < 0 {
			return fmt.Errorf("%w: bad header line %q", ErrMalformed, ln)
		}
		k := bytes.TrimSpace(ln[:ci])
		v := bytes.TrimSpace(ln[ci+1:])
		*out = append(*out, Header{in.Intern(k), in.Intern(v)})
	}
	return nil
}

func readBody(b []byte, bodyStart int, hs Headers, a *arena.Arena) ([]byte, int, error) {
	if strings.EqualFold(hs.Get("Transfer-Encoding"), "chunked") {
		return readChunked(b, bodyStart)
	}
	cl := hs.Get("Content-Length")
	if cl == "" {
		return nil, bodyStart, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, 0, fmt.Errorf("%w: bad Content-Length %q", ErrMalformed, cl)
	}
	if len(b) < bodyStart+n {
		return nil, 0, ErrIncomplete
	}
	body := a.Bytes(n)
	copy(body, b[bodyStart:bodyStart+n])
	return body, bodyStart + n, nil
}

// readChunked parses an RFC 7230 chunked body: hex-size CRLF data CRLF,
// terminated by a zero-size chunk. Trailers are not supported (the final
// CRLF must follow the last chunk immediately).
func readChunked(b []byte, off int) ([]byte, int, error) {
	var body []byte
	for {
		nl := bytes.Index(b[off:], []byte("\r\n"))
		if nl < 0 {
			if len(b)-off > 16 {
				return nil, 0, fmt.Errorf("%w: oversized chunk header", ErrMalformed)
			}
			return nil, 0, ErrIncomplete
		}
		sizeHex := string(b[off : off+nl])
		size, err := strconv.ParseInt(strings.TrimSpace(sizeHex), 16, 32)
		if err != nil || size < 0 {
			return nil, 0, fmt.Errorf("%w: bad chunk size %q", ErrMalformed, sizeHex)
		}
		off += nl + 2
		if size == 0 {
			// Final chunk: expect the closing CRLF.
			if len(b) < off+2 {
				return nil, 0, ErrIncomplete
			}
			if b[off] != '\r' || b[off+1] != '\n' {
				return nil, 0, fmt.Errorf("%w: missing final CRLF", ErrMalformed)
			}
			return body, off + 2, nil
		}
		if len(b) < off+int(size)+2 {
			return nil, 0, ErrIncomplete
		}
		body = append(body, b[off:off+int(size)]...)
		off += int(size)
		if b[off] != '\r' || b[off+1] != '\n' {
			return nil, 0, fmt.Errorf("%w: chunk data not CRLF-terminated", ErrMalformed)
		}
		off += 2
	}
}

// MarshalChunked serializes a response with chunked transfer encoding,
// splitting the body into chunkSize-byte chunks.
func (r *Response) MarshalChunked(chunkSize int) []byte {
	if chunkSize <= 0 {
		chunkSize = 4096
	}
	var b bytes.Buffer
	proto := r.Proto
	if proto == "" {
		proto = "HTTP/1.1"
	}
	reason := r.Reason
	if reason == "" {
		reason = StatusText(r.Status)
	}
	fmt.Fprintf(&b, "%s %d %s\r\n", proto, r.Status, reason)
	for _, h := range r.Headers {
		if strings.EqualFold(h.Key, "Content-Length") {
			continue
		}
		fmt.Fprintf(&b, "%s: %s\r\n", h.Key, h.Value)
	}
	b.WriteString("Transfer-Encoding: chunked\r\n\r\n")
	body := r.Body
	for len(body) > 0 {
		n := len(body)
		if n > chunkSize {
			n = chunkSize
		}
		fmt.Fprintf(&b, "%x\r\n", n)
		b.Write(body[:n])
		b.WriteString("\r\n")
		body = body[n:]
	}
	b.WriteString("0\r\n\r\n")
	return b.Bytes()
}

// WantsClose reports whether the message asked for the connection to be
// closed after this exchange.
func WantsClose(hs Headers) bool {
	return strings.EqualFold(hs.Get("Connection"), "close")
}
