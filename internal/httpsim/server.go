package httpsim

import (
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/tcpsim"
)

// HandlerFunc produces a response for a request. It runs inside the
// simulated server host. The request — headers, body, everything — is
// only valid for the duration of the call; a handler that needs any of
// it later must copy. The returned response may be a long-lived cached
// object: the server never mutates it.
type HandlerFunc func(*Request) *Response

// Server is an HTTP/1.1 server over tcpsim, playing the role of the
// paper's Apache instance. ProcessingDelay models the artificial +50 ms
// the testbed adds before every response to make the path RTT measurable.
//
// The server is a tcpsim.DataSink: all per-connection state lives in
// slab-chunked srvConn records keyed off Conn.Upper, so accepting and
// serving connections is allocation-free in steady state. Parsed request
// strings are interned per server (the vocabulary of a testbed's traffic
// is bounded), and message/body bytes draw from the stack's arena.
type Server struct {
	Sim     *eventsim.Simulator
	Stack   *tcpsim.Stack
	Handler HandlerFunc
	// ProcessingDelay is applied between receiving a complete request and
	// emitting the response (the paper's simulated Internet delay).
	ProcessingDelay time.Duration
	// ParseCost models per-request server-side CPU cost.
	ParseCost time.Duration

	// Requests counts completed exchanges.
	Requests int

	in *Interner

	// srvConn slab, chunked like tcpsim's conn slab: exhausted chunks are
	// abandoned, never grown in place.
	scSlab []srvConn
	scOff  int

	// exFree is a freelist of exchange records; it stabilizes at the peak
	// number of concurrently delayed responses.
	exFree *exchange
}

// srvConn is the server's per-connection receive state.
type srvConn struct {
	srv *Server
	c   *tcpsim.Conn
	buf []byte
	off int // parse offset into buf; buf resets to [:0] once fully consumed
}

// exchange is one in-flight request/response: parsed request storage plus
// the span covering the server's artificial delay. Pipelined requests each
// get their own exchange, so a delayed response never reads a request that
// a later parse overwrote. Records recycle through Server.exFree.
type exchange struct {
	sc   *srvConn
	req  Request
	span *obs.Span
	// respScratch materializes header edits (Connection: close) without
	// mutating the handler's possibly-cached response.
	respScratch Response
	next        *exchange
}

// Serve starts listening on port.
func (s *Server) Serve(port uint16) error {
	_, err := s.Stack.Listen(port, s.accept)
	return err
}

func (s *Server) accept(c *tcpsim.Conn) {
	if s.in == nil {
		s.in = NewInterner()
	}
	if s.scOff >= len(s.scSlab) {
		s.scSlab = make([]srvConn, 16)
		s.scOff = 0
	}
	sc := &s.scSlab[s.scOff]
	s.scOff++
	sc.srv = s
	sc.c = c
	c.Upper = sc
	c.Sink = s
}

// ConnData implements tcpsim.DataSink: accumulate, parse, respond.
func (s *Server) ConnData(c *tcpsim.Conn, b []byte) {
	sc := c.Upper.(*srvConn)
	sc.buf = append(sc.buf, b...)
	for {
		ex := s.newExchange(sc)
		n, err := ParseRequestInto(&ex.req, sc.buf[sc.off:], s.in, s.Stack.Arena)
		if err == ErrIncomplete {
			s.freeExchange(ex)
			return
		}
		if err != nil {
			s.freeExchange(ex)
			c.Send((&Response{Status: 400, Body: []byte(err.Error())}).Marshal())
			c.Close()
			return
		}
		sc.off += n
		if sc.off == len(sc.buf) {
			// Fully consumed: reclaim the whole buffer. Appends past len
			// never touch the consumed region, so this is only safe here.
			sc.buf = sc.buf[:0]
			sc.off = 0
		}
		s.respond(ex)
	}
}

func (s *Server) newExchange(sc *srvConn) *exchange {
	ex := s.exFree
	if ex == nil {
		ex = &exchange{}
	} else {
		s.exFree = ex.next
		ex.next = nil
	}
	ex.sc = sc
	return ex
}

func (s *Server) freeExchange(ex *exchange) {
	ex.sc = nil
	ex.span = nil
	ex.req.Body = nil
	ex.next = s.exFree
	s.exFree = ex
}

func (s *Server) respond(ex *exchange) {
	delay := s.ProcessingDelay + s.ParseCost
	ex.span = ex.sc.c.Tracer().Begin("server-delay").
		Str("http_method", ex.req.Method).
		Str("target", ex.req.Target).
		Dur("processing", s.ProcessingDelay).
		Dur("parse_cost", s.ParseCost)
	s.Sim.ScheduleAny(delay, respondNowAny, ex)
}

// respondNowAny adapts respondNow for eventsim.ScheduleAny: one shared
// func(any) instead of a per-request closure.
func respondNowAny(v any) { v.(*exchange).respondNow() }

func (ex *exchange) respondNow() {
	sc := ex.sc
	s, c := sc.srv, sc.c
	defer ex.span.Done()
	defer s.freeExchange(ex)
	if c.State() != tcpsim.StateEstablished && c.State() != tcpsim.StateCloseWait {
		return
	}
	resp := s.handlerFor(&ex.req)
	close := WantsClose(ex.req.Headers) || WantsClose(resp.Headers)
	if close {
		// Copy-on-write: the handler's response may be cached and shared,
		// so the close header lands on a per-exchange scratch copy.
		ex.respScratch = Response{Proto: resp.Proto, Status: resp.Status, Reason: resp.Reason, Body: resp.Body}
		ex.respScratch.Headers = append(ex.respScratch.Headers[:0], resp.Headers...)
		ex.respScratch.Headers.Set("Connection", "close")
		resp = &ex.respScratch
	}
	c.Send(resp.MarshalArena(s.Stack.Arena))
	s.Requests++
	c.Metrics().Add("http_requests", 1)
	if close {
		c.Close()
	}
}

func (s *Server) handlerFor(req *Request) *Response {
	if s.Handler == nil {
		return &Response{Status: 404, Body: []byte("no handler")}
	}
	resp := s.Handler(req)
	if resp == nil {
		resp = &Response{Status: 500, Body: []byte("nil response")}
	}
	return resp
}

// ClientConn wraps an established tcpsim connection for pipelined
// request/response exchanges. The zero value is usable via Attach, which
// is also how one ClientConn is reused across successive connections of
// a measurement runner without reallocating its buffers.
type ClientConn struct {
	Conn *tcpsim.Conn
	// In, when non-nil, interns parsed response strings. Set it before
	// traffic flows; share one interner across the conns of a runner.
	In *Interner

	buf  []byte
	off  int
	pend []func(*Response)
	ph   int // index of the first pending callback in pend
	resp Response
}

// NewClientConn installs response parsing on c. It takes over c's data
// delivery (Conn.Sink).
func NewClientConn(c *tcpsim.Conn) *ClientConn {
	cc := &ClientConn{}
	cc.Attach(c)
	return cc
}

// Attach (re)binds cc to a connection, resetting all parse state while
// keeping buffer capacity. It lets one ClientConn serve a sequence of
// connections allocation-free.
func (cc *ClientConn) Attach(c *tcpsim.Conn) {
	cc.Conn = c
	cc.buf = cc.buf[:0]
	cc.off = 0
	cc.pend = cc.pend[:0]
	cc.ph = 0
	c.Sink = cc
}

// RoundTrip writes req and calls done with the parsed response. Multiple
// in-flight requests are matched to responses in FIFO order. The response
// passed to done is reused storage: it is valid until the next response
// arrives on this ClientConn.
func (cc *ClientConn) RoundTrip(req *Request, done func(*Response)) error {
	cc.pend = append(cc.pend, done)
	return cc.Conn.Send(req.MarshalArena(cc.Conn.Arena()))
}

// ConnData implements tcpsim.DataSink for response parsing.
func (cc *ClientConn) ConnData(_ *tcpsim.Conn, b []byte) {
	cc.buf = append(cc.buf, b...)
	for cc.ph < len(cc.pend) {
		n, err := ParseResponseInto(&cc.resp, cc.buf[cc.off:], cc.In, cc.Conn.Arena())
		if err == ErrIncomplete {
			return
		}
		done := cc.pend[cc.ph]
		cc.pend[cc.ph] = nil
		cc.ph++
		if cc.ph == len(cc.pend) {
			cc.pend = cc.pend[:0]
			cc.ph = 0
		}
		if err != nil {
			// Surface the error as a synthetic 0-status response so the
			// caller can observe failure without a separate channel.
			cc.buf = cc.buf[:0]
			cc.off = 0
			done(&Response{Status: 0, Reason: err.Error()})
			return
		}
		cc.off += n
		if cc.off == len(cc.buf) {
			cc.buf = cc.buf[:0]
			cc.off = 0
		}
		done(&cc.resp)
	}
}
