package httpsim

import (
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/tcpsim"
)

// HandlerFunc produces a response for a request. It runs inside the
// simulated server host.
type HandlerFunc func(*Request) *Response

// Server is an HTTP/1.1 server over tcpsim, playing the role of the
// paper's Apache instance. ProcessingDelay models the artificial +50 ms
// the testbed adds before every response to make the path RTT measurable.
type Server struct {
	Sim     *eventsim.Simulator
	Stack   *tcpsim.Stack
	Handler HandlerFunc
	// ProcessingDelay is applied between receiving a complete request and
	// emitting the response (the paper's simulated Internet delay).
	ProcessingDelay time.Duration
	// ParseCost models per-request server-side CPU cost.
	ParseCost time.Duration

	// Requests counts completed exchanges.
	Requests int
}

// Serve starts listening on port.
func (s *Server) Serve(port uint16) error {
	_, err := s.Stack.Listen(port, s.accept)
	return err
}

func (s *Server) accept(c *tcpsim.Conn) {
	var buf []byte
	c.OnData = func(b []byte) {
		buf = append(buf, b...)
		for {
			req, n, err := ParseRequest(buf)
			if err == ErrIncomplete {
				return
			}
			if err != nil {
				c.Send((&Response{Status: 400, Body: []byte(err.Error())}).Marshal())
				c.Close()
				return
			}
			buf = buf[n:]
			s.respond(c, req)
		}
	}
}

func (s *Server) respond(c *tcpsim.Conn, req *Request) {
	delay := s.ProcessingDelay + s.ParseCost
	span := c.Tracer().Begin("server-delay").
		Str("http_method", req.Method).
		Str("target", req.Target).
		Dur("processing", s.ProcessingDelay).
		Dur("parse_cost", s.ParseCost)
	s.Sim.Schedule(delay, func() {
		defer span.Done()
		if c.State() != tcpsim.StateEstablished && c.State() != tcpsim.StateCloseWait {
			return
		}
		resp := s.handlerFor(req)
		close := WantsClose(req.Headers) || WantsClose(resp.Headers)
		if close {
			resp.Headers.Set("Connection", "close")
		}
		c.Send(resp.Marshal())
		s.Requests++
		c.Metrics().Add("http_requests", 1)
		if close {
			c.Close()
		}
	})
}

func (s *Server) handlerFor(req *Request) *Response {
	if s.Handler == nil {
		return &Response{Status: 404, Body: []byte("no handler")}
	}
	resp := s.Handler(req)
	if resp == nil {
		resp = &Response{Status: 500, Body: []byte("nil response")}
	}
	return resp
}

// ClientConn wraps an established tcpsim connection for pipelined
// request/response exchanges.
type ClientConn struct {
	Conn *tcpsim.Conn
	buf  []byte
	pend []func(*Response)
}

// NewClientConn installs response parsing on c. It takes over c.OnData.
func NewClientConn(c *tcpsim.Conn) *ClientConn {
	cc := &ClientConn{Conn: c}
	c.OnData = cc.onData
	return cc
}

// RoundTrip writes req and calls done with the parsed response. Multiple
// in-flight requests are matched to responses in FIFO order.
func (cc *ClientConn) RoundTrip(req *Request, done func(*Response)) error {
	cc.pend = append(cc.pend, done)
	return cc.Conn.Send(req.Marshal())
}

func (cc *ClientConn) onData(b []byte) {
	cc.buf = append(cc.buf, b...)
	for len(cc.pend) > 0 {
		resp, n, err := ParseResponse(cc.buf)
		if err == ErrIncomplete {
			return
		}
		if err != nil {
			// Surface the error as a synthetic 0-status response so the
			// caller can observe failure without a separate channel.
			done := cc.pend[0]
			cc.pend = cc.pend[1:]
			done(&Response{Status: 0, Reason: err.Error()})
			cc.buf = nil
			return
		}
		cc.buf = cc.buf[n:]
		done := cc.pend[0]
		cc.pend = cc.pend[1:]
		done(resp)
	}
}
