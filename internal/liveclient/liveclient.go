// Package liveclient drives the paper's measurement-method taxonomy over
// real sockets against the live measurement server, and appraises the
// overhead of each client-side stack exactly as Eq. 1 does in the
// simulated testbed.
//
// Without root we cannot run a packet capture, so the wire-level
// timestamps (tNs, tNr) come from a connection-level tap: the instant the
// probe bytes enter the socket write and the instant the response bytes
// come out of the socket read. That tap sits below everything a
// measurement tool adds (HTTP client machinery, WebSocket framing,
// buffering), so the difference between tool-level and tap-level RTTs is
// the same delay-overhead quantity — measured against the deepest point
// reachable in user space. Software capture accuracy is itself ~0.3 ms
// (paper Section 4.2), so this substitution stays within the noise the
// paper already tolerates.
package liveclient

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/browsermetric/browsermetric/internal/fleet"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/stats"
	"github.com/browsermetric/browsermetric/internal/wssim"
)

// Measurement is one probe: tool-level and tap-level timestamps.
type Measurement struct {
	TBs, TBr time.Time // tool-level ("browser") timestamps
	TNs, TNr time.Time // tap-level ("network") timestamps
}

// BrowserRTT is the RTT the tool would report.
func (m Measurement) BrowserRTT() time.Duration { return m.TBr.Sub(m.TBs) }

// WireRTT is the tap-level ground truth.
func (m Measurement) WireRTT() time.Duration { return m.TNr.Sub(m.TNs) }

// Overhead is Eq. 1.
func (m Measurement) Overhead() time.Duration { return m.BrowserRTT() - m.WireRTT() }

// tappedConn wraps a net.Conn and records the first write after Arm() and
// the first successful read after it.
type tappedConn struct {
	net.Conn
	mu      sync.Mutex
	armed   bool
	sentAt  time.Time
	recvAt  time.Time
	gotSend bool
	gotRecv bool
}

// Arm prepares the tap for the next exchange.
func (c *tappedConn) Arm() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed = true
	c.gotSend, c.gotRecv = false, false
}

// Times returns the captured timestamps of the last armed exchange.
func (c *tappedConn) Times() (sent, recv time.Time, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sentAt, c.recvAt, c.gotSend && c.gotRecv
}

func (c *tappedConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.armed && !c.gotSend {
		c.sentAt = time.Now()
		c.gotSend = true
	}
	c.mu.Unlock()
	return c.Conn.Write(b)
}

func (c *tappedConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 {
		c.mu.Lock()
		if c.armed && c.gotSend && !c.gotRecv {
			c.recvAt = time.Now()
			c.gotRecv = true
		}
		c.mu.Unlock()
	}
	return n, err
}

// Method is a live measurement driver. Probe performs one exchange and
// returns the measurement; Close releases the underlying connection.
type Method interface {
	Name() string
	Probe() (Measurement, error)
	Close() error
}

// --- HTTP method (net/http as the "browser" stack under appraisal) ---

type httpMethod struct {
	name   string
	post   bool
	url    string
	client *http.Client
	tap    *tappedConn
	mu     sync.Mutex
}

// NewHTTPGet builds a GET driver against the live server's HTTP address.
func NewHTTPGet(addr string) (Method, error) { return newHTTP(addr, false) }

// NewHTTPPost builds a POST driver.
func NewHTTPPost(addr string) (Method, error) { return newHTTP(addr, true) }

func newHTTP(addr string, post bool) (Method, error) {
	m := &httpMethod{post: post, url: "http://" + addr + "/probe"}
	m.name = "live HTTP GET"
	if post {
		m.name = "live HTTP POST"
	}
	tr := &http.Transport{
		// Exactly one connection so every probe shares the tapped conn
		// (the reuse behaviour the paper's Δd2 captures).
		MaxConnsPerHost:     1,
		MaxIdleConnsPerHost: 1,
		DialContext: func(ctx context.Context, network, address string) (net.Conn, error) {
			d := net.Dialer{}
			c, err := d.DialContext(ctx, network, address)
			if err != nil {
				return nil, err
			}
			m.mu.Lock()
			m.tap = &tappedConn{Conn: c}
			m.mu.Unlock()
			return m.tap, nil
		},
	}
	m.client = &http.Client{Transport: tr, Timeout: 10 * time.Second}
	// Preparation phase: fetch the container page so the connection
	// exists before the first timed probe.
	resp, err := m.client.Get("http://" + addr + "/")
	if err != nil {
		return nil, fmt.Errorf("liveclient: preparation fetch: %w", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return m, nil
}

func (m *httpMethod) Name() string { return m.name }

func (m *httpMethod) Probe() (Measurement, error) {
	m.mu.Lock()
	tap := m.tap
	m.mu.Unlock()
	if tap == nil {
		return Measurement{}, fmt.Errorf("liveclient: no connection established")
	}
	tap.Arm()
	var meas Measurement
	meas.TBs = time.Now()
	var resp *http.Response
	var err error
	if m.post {
		resp, err = m.client.Post(m.url, "application/octet-stream", newProbeBody())
	} else {
		resp, err = m.client.Get(m.url)
	}
	if err != nil {
		return Measurement{}, err
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		resp.Body.Close()
		return Measurement{}, err
	}
	resp.Body.Close()
	meas.TBr = time.Now()
	sent, recv, ok := tap.Times()
	if !ok {
		return Measurement{}, fmt.Errorf("liveclient: tap saw no exchange (connection changed?)")
	}
	meas.TNs, meas.TNr = sent, recv
	return meas, nil
}

func (m *httpMethod) Close() error {
	m.client.CloseIdleConnections()
	return nil
}

func newProbeBody() io.Reader { return &fixedBody{data: []byte("probe-body")} }

type fixedBody struct {
	data []byte
	off  int
}

func (b *fixedBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

// --- WebSocket method ---

type wsMethod struct {
	tap *tappedConn
	br  *bufio.Reader
}

// NewWebSocket dials the live server's WebSocket address and performs the
// upgrade handshake (preparation phase).
func NewWebSocket(addr string) (Method, error) {
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	tap := &tappedConn{Conn: raw}
	req := "GET /ws HTTP/1.1\r\n" +
		"Host: " + addr + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := io.WriteString(tap, req); err != nil {
		raw.Close()
		return nil, err
	}
	br := bufio.NewReader(tap)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		raw.Close()
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != 101 {
		raw.Close()
		return nil, fmt.Errorf("liveclient: upgrade status %d", resp.StatusCode)
	}
	return &wsMethod{tap: tap, br: br}, nil
}

func (m *wsMethod) Name() string { return "live WebSocket" }

func (m *wsMethod) Probe() (Measurement, error) {
	m.tap.Arm()
	_ = m.tap.SetReadDeadline(time.Now().Add(10 * time.Second))
	var meas Measurement
	frame := &wssim.Frame{Fin: true, Opcode: wssim.OpBinary, Masked: true,
		MaskKey: [4]byte{1, 2, 3, 4}, Payload: []byte("ws-probe")}
	meas.TBs = time.Now()
	if _, err := m.tap.Write(frame.Marshal()); err != nil {
		return Measurement{}, err
	}
	var buf []byte
	chunk := make([]byte, 1024)
	for {
		n, err := m.br.Read(chunk)
		if n > 0 {
			buf = append(buf, chunk[:n]...)
			if f, _, ferr := wssim.ParseFrame(buf); ferr == nil {
				if f.Opcode != wssim.OpBinary {
					return Measurement{}, fmt.Errorf("liveclient: unexpected opcode %v", f.Opcode)
				}
				break
			} else if ferr != wssim.ErrIncomplete {
				return Measurement{}, ferr
			}
		}
		if err != nil {
			return Measurement{}, err
		}
	}
	meas.TBr = time.Now()
	sent, recv, ok := m.tap.Times()
	if !ok {
		return Measurement{}, fmt.Errorf("liveclient: ws tap incomplete")
	}
	meas.TNs, meas.TNr = sent, recv
	return meas, nil
}

func (m *wsMethod) Close() error { return m.tap.Close() }

// --- raw TCP socket method ---

type tcpMethod struct {
	tap *tappedConn
}

// NewTCP dials the TCP echo service (preparation = connect).
func NewTCP(addr string) (Method, error) {
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &tcpMethod{tap: &tappedConn{Conn: raw}}, nil
}

func (m *tcpMethod) Name() string { return "live TCP socket" }

func (m *tcpMethod) Probe() (Measurement, error) {
	m.tap.Arm()
	_ = m.tap.SetReadDeadline(time.Now().Add(10 * time.Second))
	var meas Measurement
	meas.TBs = time.Now()
	if _, err := m.tap.Write([]byte("tcp-probe")); err != nil {
		return Measurement{}, err
	}
	buf := make([]byte, 1024)
	if _, err := m.tap.Read(buf); err != nil {
		return Measurement{}, err
	}
	meas.TBr = time.Now()
	sent, recv, ok := m.tap.Times()
	if !ok {
		return Measurement{}, fmt.Errorf("liveclient: tcp tap incomplete")
	}
	meas.TNs, meas.TNr = sent, recv
	return meas, nil
}

func (m *tcpMethod) Close() error { return m.tap.Close() }

// --- UDP socket method ---

type udpMethod struct {
	conn net.Conn
}

// NewUDP opens a connected UDP socket to the echo service.
func NewUDP(addr string) (Method, error) {
	c, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &udpMethod{conn: c}, nil
}

func (m *udpMethod) Name() string { return "live UDP socket" }

func (m *udpMethod) Probe() (Measurement, error) {
	var meas Measurement
	meas.TBs = time.Now()
	meas.TNs = meas.TBs // the write below IS the stack boundary
	if _, err := m.conn.Write([]byte("udp-probe")); err != nil {
		return Measurement{}, err
	}
	buf := make([]byte, 1024)
	_ = m.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := m.conn.Read(buf); err != nil {
		return Measurement{}, err
	}
	meas.TNr = time.Now()
	meas.TBr = meas.TNr
	return meas, nil
}

func (m *udpMethod) Close() error { return m.conn.Close() }

// Appraise runs n probes through a method and summarizes the overheads in
// milliseconds (box summary plus mean ± 95% CI).
func Appraise(m Method, n int) (stats.Box, float64, float64, error) {
	var overheads []float64
	for i := 0; i < n; i++ {
		meas, err := m.Probe()
		if err != nil {
			return stats.Box{}, 0, 0, fmt.Errorf("liveclient: probe %d: %w", i, err)
		}
		overheads = append(overheads, stats.Ms(meas.Overhead()))
	}
	box := stats.NewBox(overheads)
	mean, half := stats.MeanCI95(overheads)
	return box, mean, half, nil
}

// StudyRow is one method's appraisal in a live study.
type StudyRow struct {
	Name   string
	Box    stats.Box
	Mean   float64 // ms
	CIHalf float64 // ms
	// WireRTTMedian is the tap-level RTT median (ms) — the live analogue
	// of the capture ground truth.
	WireRTTMedian float64
}

// Addrs names the live services a study probes.
type Addrs struct {
	HTTP    string
	WS      string
	TCPEcho string
	UDPEcho string
}

// StudyOptions tunes a live study beyond the probe count.
type StudyOptions struct {
	// Probes per client stack (default 25), after two warm-up probes.
	Probes int
	// Metrics, when non-nil, receives wall-clock series for every probe:
	// per-method RTT and overhead-attribution sketches whose family
	// names mirror the simulator's stage metrics (stage_send_path_ms,
	// stage_event_dispatch_ms, delta_d_ms), so a sim metrics export and
	// a live scrape read identically, plus live_probe_rtt_ms /
	// live_wire_rtt_ms and a live_probes_total counter. nil disables
	// instrumentation at zero cost.
	Metrics *obs.Metrics
	// Fleet, when non-nil, folds each probe's tool-level RTT into the
	// fleet aggregation plane: every client stack runs as its own fleet
	// session under the (method, FleetBrowser, FleetRegion) key, so a
	// study shows up on the live dashboard next to synthetic load.
	Fleet *fleet.Registry
	// FleetBrowser and FleetRegion label the fleet samples (defaults
	// "go-live" and "local").
	FleetBrowser string
	FleetRegion  string
}

// fleetSessions allocates study-wide unique fleet session ids; the high
// bit keeps them clear of loadgen's dense id space.
var fleetSessions atomic.Uint64

func nextFleetSession() uint64 { return fleetSessions.Add(1) | 1<<63 }

// methodSeries holds the precomputed registry keys for one client
// stack, so the probe loop does no label formatting.
type methodSeries struct {
	probes   string // counter
	rtt      string // tool-level ("browser") RTT sketch, ms
	wire     string // tap-level RTT sketch, ms
	send     string // send-path attribution (tNs − tBs), ms
	dispatch string // event-dispatch attribution (tBr − tNr), ms
	delta    string // Eq. 1 overhead, ms
}

func newMethodSeries(method string) methodSeries {
	return methodSeries{
		probes:   obs.L("live_probes_total", "method", method),
		rtt:      obs.L("live_probe_rtt_ms", "method", method),
		wire:     obs.L("live_wire_rtt_ms", "method", method),
		send:     obs.L("stage_send_path_ms", "method", method),
		dispatch: obs.L("stage_event_dispatch_ms", "method", method),
		delta:    obs.L("delta_d_ms", "method", method),
	}
}

// registerStudyHelp documents the live series for Prometheus exposition.
func registerStudyHelp(m *obs.Metrics) {
	if !m.Enabled() {
		return
	}
	m.SetHelp("live_probes_total", "Probes completed per client stack.")
	m.SetHelp("live_probe_rtt_ms", "Tool-level probe RTT (tBr - tBs) in milliseconds.")
	m.SetHelp("live_wire_rtt_ms", "Tap-level probe RTT (tNr - tNs) in milliseconds.")
	m.SetHelp("stage_send_path_ms", "Send-path cost above the tap (tNs - tBs) in milliseconds; mirrors the simulator's series.")
	m.SetHelp("stage_event_dispatch_ms", "Receive/dispatch cost above the tap (tBr - tNr) in milliseconds; mirrors the simulator's series.")
	m.SetHelp("delta_d_ms", "Eq. 1 delay overhead (browser RTT minus wire RTT) in milliseconds; mirrors the simulator's series.")
}

// observeProbe records one measured probe into the wall-clock registry.
func observeProbe(m *obs.Metrics, ser methodSeries, meas Measurement) {
	if !m.Enabled() {
		return
	}
	m.Add(ser.probes, 1)
	m.SketchDur(ser.rtt, meas.BrowserRTT())
	m.SketchDur(ser.wire, meas.WireRTT())
	m.SketchDur(ser.send, meas.TNs.Sub(meas.TBs))
	m.SketchDur(ser.dispatch, meas.TBr.Sub(meas.TNr))
	m.SketchDur(ser.delta, meas.Overhead())
}

// RunStudy appraises every live client stack against the given services
// with n probes each, warming each stack with two discarded probes first
// (the Δd1/Δd2 split matters less here: real schedulers dominate).
func RunStudy(addrs Addrs, n int) ([]StudyRow, error) {
	return RunStudyWithOptions(addrs, StudyOptions{Probes: n})
}

// RunStudyWithOptions is RunStudy with wall-clock observability wired.
func RunStudyWithOptions(addrs Addrs, opt StudyOptions) ([]StudyRow, error) {
	n := opt.Probes
	if n <= 0 {
		n = 25
	}
	registerStudyHelp(opt.Metrics)
	drivers := []struct {
		name   string
		method string // label value on the live series
		mk     func() (Method, error)
	}{
		{"HTTP GET (net/http)", "http-get", func() (Method, error) { return NewHTTPGet(addrs.HTTP) }},
		{"HTTP POST (net/http)", "http-post", func() (Method, error) { return NewHTTPPost(addrs.HTTP) }},
		{"WebSocket", "websocket", func() (Method, error) { return NewWebSocket(addrs.WS) }},
		{"raw TCP socket", "tcp", func() (Method, error) { return NewTCP(addrs.TCPEcho) }},
		{"UDP socket", "udp", func() (Method, error) { return NewUDP(addrs.UDPEcho) }},
	}
	browserLabel, region := opt.FleetBrowser, opt.FleetRegion
	if browserLabel == "" {
		browserLabel = "go-live"
	}
	if region == "" {
		region = "local"
	}
	var rows []StudyRow
	for _, d := range drivers {
		m, err := d.mk()
		if err != nil {
			return rows, fmt.Errorf("liveclient: %s: %w", d.name, err)
		}
		ser := newMethodSeries(d.method)
		var sid uint64
		if opt.Fleet != nil {
			sid = nextFleetSession()
		}
		var overheads, wires []float64
		probeErr := func() error {
			for i := 0; i < n+2; i++ {
				meas, err := m.Probe()
				if err != nil {
					return fmt.Errorf("probe %d: %w", i, err)
				}
				if i < 2 {
					continue // warm-up
				}
				observeProbe(opt.Metrics, ser, meas)
				if opt.Fleet != nil {
					opt.Fleet.Observe(sid,
						fleet.Key{Method: d.method, Browser: browserLabel, Region: region},
						stats.Ms(meas.BrowserRTT()), false)
				}
				overheads = append(overheads, stats.Ms(meas.Overhead()))
				wires = append(wires, stats.Ms(meas.WireRTT()))
			}
			return nil
		}()
		m.Close()
		if opt.Fleet != nil {
			opt.Fleet.End(sid)
		}
		if probeErr != nil {
			return rows, fmt.Errorf("liveclient: %s: %w", d.name, probeErr)
		}
		mean, half := stats.MeanCI95(overheads)
		rows = append(rows, StudyRow{
			Name:          d.name,
			Box:           stats.NewBox(overheads),
			Mean:          mean,
			CIHalf:        half,
			WireRTTMedian: stats.Median(wires),
		})
	}
	return rows, nil
}
