package liveclient

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/fleet"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/server"
)

func startServer(t *testing.T, delay time.Duration) server.Addrs {
	t.Helper()
	s, err := server.Start(server.Config{Delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s.Addrs()
}

func probeOnce(t *testing.T, m Method) Measurement {
	t.Helper()
	meas, err := m.Probe()
	if err != nil {
		t.Fatalf("%s probe: %v", m.Name(), err)
	}
	return meas
}

func TestHTTPGetMeasurement(t *testing.T) {
	addrs := startServer(t, 5*time.Millisecond)
	m, err := NewHTTPGet(addrs.HTTP)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	meas := probeOnce(t, m)
	if meas.WireRTT() < 5*time.Millisecond {
		t.Fatalf("wire RTT %v below the server delay", meas.WireRTT())
	}
	if meas.BrowserRTT() < meas.WireRTT() {
		t.Fatalf("tool RTT %v below wire RTT %v", meas.BrowserRTT(), meas.WireRTT())
	}
	if meas.Overhead() < 0 {
		t.Fatalf("overhead %v negative", meas.Overhead())
	}
	if meas.Overhead() > time.Second {
		t.Fatalf("overhead %v implausible", meas.Overhead())
	}
}

func TestHTTPPostMeasurement(t *testing.T) {
	addrs := startServer(t, 2*time.Millisecond)
	m, err := NewHTTPPost(addrs.HTTP)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	meas := probeOnce(t, m)
	if meas.Overhead() < 0 {
		t.Fatalf("overhead %v negative", meas.Overhead())
	}
}

func TestHTTPReusesConnection(t *testing.T) {
	addrs := startServer(t, 0)
	m, err := NewHTTPGet(addrs.HTTP)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Back-to-back probes (Δd1 then Δd2) must both succeed on the single
	// tapped connection.
	for i := 0; i < 3; i++ {
		probeOnce(t, m)
	}
}

func TestWebSocketMeasurement(t *testing.T) {
	addrs := startServer(t, 2*time.Millisecond)
	m, err := NewWebSocket(addrs.WS)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 2; i++ {
		meas := probeOnce(t, m)
		if meas.WireRTT() < 2*time.Millisecond {
			t.Fatalf("wire RTT %v below server delay", meas.WireRTT())
		}
		if meas.Overhead() < 0 {
			t.Fatalf("overhead %v negative", meas.Overhead())
		}
	}
}

func TestTCPMeasurement(t *testing.T) {
	addrs := startServer(t, 2*time.Millisecond)
	m, err := NewTCP(addrs.TCPEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	meas := probeOnce(t, m)
	// The raw socket method has almost nothing above the tap: overhead
	// should be tiny.
	if meas.Overhead() > 5*time.Millisecond {
		t.Fatalf("raw TCP overhead = %v, want near zero", meas.Overhead())
	}
}

func TestUDPMeasurement(t *testing.T) {
	addrs := startServer(t, 2*time.Millisecond)
	m, err := NewUDP(addrs.UDPEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	meas := probeOnce(t, m)
	if meas.WireRTT() < 2*time.Millisecond {
		t.Fatalf("wire RTT %v below server delay", meas.WireRTT())
	}
}

func TestAppraiseSummarizes(t *testing.T) {
	addrs := startServer(t, time.Millisecond)
	m, err := NewTCP(addrs.TCPEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	box, mean, half, err := Appraise(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if box.N != 10 {
		t.Fatalf("box N = %d", box.N)
	}
	if mean < -1 || mean > 10 {
		t.Fatalf("mean overhead = %.3f ms", mean)
	}
	if half < 0 {
		t.Fatalf("CI half-width = %.3f", half)
	}
}

func TestRunStudyAllStacks(t *testing.T) {
	s, err := server.Start(server.Config{Delay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	a := s.Addrs()
	rows, err := RunStudy(Addrs{HTTP: a.HTTP, WS: a.WS, TCPEcho: a.TCPEcho, UDPEcho: a.UDPEcho}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 stacks", len(rows))
	}
	for _, r := range rows {
		if r.Box.N != 8 {
			t.Fatalf("%s: N = %d, want 8 (after warm-up)", r.Name, r.Box.N)
		}
		if r.WireRTTMedian < 2 {
			t.Fatalf("%s: wire RTT %.3f ms below server delay", r.Name, r.WireRTTMedian)
		}
		if r.Mean > 100 {
			t.Fatalf("%s: mean overhead %.3f ms implausible on loopback", r.Name, r.Mean)
		}
	}
}

func TestRunStudyMetricsMirrorSimNames(t *testing.T) {
	s, err := server.Start(server.Config{Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	a := s.Addrs()
	reg := obs.NewMetrics()
	rows, err := RunStudyWithOptions(
		Addrs{HTTP: a.HTTP, WS: a.WS, TCPEcho: a.TCPEcho, UDPEcho: a.UDPEcho},
		StudyOptions{Probes: 6, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every stack contributes its probe count and the overhead
	// attribution series under the simulator's stage_* family names.
	for _, method := range []string{"http-get", "http-post", "websocket", "tcp", "udp"} {
		if got := reg.Counter(obs.L("live_probes_total", "method", method)); got != 6 {
			t.Errorf("live_probes_total{method=%s} = %d, want 6", method, got)
		}
		for _, fam := range []string{
			"live_probe_rtt_ms", "live_wire_rtt_ms",
			"stage_send_path_ms", "stage_event_dispatch_ms", "delta_d_ms",
		} {
			key := obs.L(fam, "method", method)
			if n := reg.SketchCount(key); n != 6 {
				t.Errorf("%s sketch count = %d, want 6", key, n)
			}
		}
	}
	// The attribution identity holds in aggregate for the sketch sums:
	// Δd = send-path + event-dispatch per probe (no handshake rounds in
	// a warm study, and wall-clock reads have no quantization term).
	var scrape bytes.Buffer
	if err := reg.WritePrometheus(&scrape); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE delta_d_ms summary",
		"# TYPE stage_send_path_ms summary",
		`delta_d_ms{method="tcp",quantile="0.5"}`,
		`live_probe_rtt_ms{method="websocket",quantile="0.99"}`,
	} {
		if !strings.Contains(scrape.String(), want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestRunStudyBadAddress(t *testing.T) {
	_, err := RunStudy(Addrs{HTTP: "127.0.0.1:1"}, 3)
	if err == nil {
		t.Fatal("expected error for dead address")
	}
}

func TestOrderingHTTPAboveTCP(t *testing.T) {
	// The paper's socket-vs-HTTP finding holds for the live stacks too:
	// net/http adds more above the tap than a raw socket does.
	addrs := startServer(t, time.Millisecond)
	ht, err := NewHTTPGet(addrs.HTTP)
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	tc, err := NewTCP(addrs.TCPEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	_, meanHTTP, _, err := Appraise(ht, 15)
	if err != nil {
		t.Fatal(err)
	}
	_, meanTCP, _, err := Appraise(tc, 15)
	if err != nil {
		t.Fatal(err)
	}
	if meanHTTP < meanTCP {
		t.Logf("note: HTTP mean %.4f ms below TCP mean %.4f ms (loopback noise)", meanHTTP, meanTCP)
	}
	// Both must be small and non-pathological on loopback.
	if meanTCP > 5 || meanHTTP > 50 {
		t.Fatalf("means = %.3f / %.3f ms, implausible on loopback", meanTCP, meanHTTP)
	}
}

func TestRunStudyFoldsIntoFleet(t *testing.T) {
	a := startServer(t, time.Millisecond)
	fl := fleet.New(fleet.Config{})
	rows, err := RunStudyWithOptions(
		Addrs{HTTP: a.HTTP, WS: a.WS, TCPEcho: a.TCPEcho, UDPEcho: a.UDPEcho},
		StudyOptions{Probes: 4, Fleet: fl, FleetBrowser: "go-net", FleetRegion: "lab"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	snap := fl.FanIn()
	if len(snap.Keys) != 5 {
		t.Fatalf("fleet keys = %d, want one per stack: %+v", len(snap.Keys), snap.Keys)
	}
	for _, ks := range snap.Keys {
		if ks.Browser != "go-net" || ks.Region != "lab" {
			t.Fatalf("labels = %+v", ks)
		}
		if ks.Count != 4 {
			t.Fatalf("%s count = %d, want 4 (warm-ups excluded)", ks.Method, ks.Count)
		}
		if ks.P50 < 1 {
			t.Fatalf("%s p50 = %g ms, below the server delay", ks.Method, ks.P50)
		}
	}
	// Study sessions end with their drivers.
	if got := fl.Sessions(); got != 0 {
		t.Fatalf("sessions still live after study: %d", got)
	}
}
