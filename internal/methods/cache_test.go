package methods

import (
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

func TestDOMCacheBustPreventsPitfall(t *testing.T) {
	// Default behaviour (cache-busted URLs): both rounds hit the network
	// and report ~50 ms RTTs.
	tb := testbed.New(testbed.Config{Seed: 41})
	r := &Runner{TB: tb, Profile: browser.Lookup(browser.Chrome, browser.Ubuntu), Timing: browser.NanoTime}
	tb.Cap.Reset()
	res, err := r.Run(DOM)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= Rounds; round++ {
		if rtt := res.BrowserRTT(round); rtt < 50*time.Millisecond {
			t.Fatalf("round %d RTT = %v, want >= 50ms (network hit)", round, rtt)
		}
	}
	if pairs := tb.Cap.MatchRTT(res.ServerPort); len(pairs) < 3 { // container + 2 probes
		t.Fatalf("wire pairs = %d, want container + 2 probes", len(pairs))
	}
}

func TestDOMCachePitfall(t *testing.T) {
	// With cache busting disabled, the second load is served from the
	// browser cache: the tool reports a sub-millisecond "RTT" for a 50 ms
	// path — the Section 5 object-reuse pitfall.
	tb := testbed.New(testbed.Config{Seed: 42})
	r := &Runner{
		TB:               tb,
		Profile:          browser.Lookup(browser.Chrome, browser.Ubuntu),
		Timing:           browser.NanoTime,
		DisableCacheBust: true,
	}
	tb.Cap.Reset()
	res, err := r.Run(DOM)
	if err != nil {
		t.Fatal(err)
	}
	if rtt := res.BrowserRTT(1); rtt < 50*time.Millisecond {
		t.Fatalf("round 1 RTT = %v, want network RTT", rtt)
	}
	if rtt := res.BrowserRTT(2); rtt > 5*time.Millisecond {
		t.Fatalf("round 2 RTT = %v, want cache-hit time (huge under-estimate)", rtt)
	}
	// The wire agrees: only one probe exchange happened.
	pairs := tb.Cap.MatchRTT(res.ServerPort)
	if len(pairs) != 2 { // container + 1 probe
		t.Fatalf("wire pairs = %d, want 2 (round 2 never touched the network)", len(pairs))
	}
}

func TestCachePitfallOnlyAffectsDOM(t *testing.T) {
	// XHR with DisableCacheBust set still goes to the network (the flag
	// models DOM-element reuse specifically).
	tb := testbed.New(testbed.Config{Seed: 43})
	r := &Runner{
		TB:               tb,
		Profile:          browser.Lookup(browser.Chrome, browser.Ubuntu),
		Timing:           browser.NanoTime,
		DisableCacheBust: true,
	}
	res, err := r.Run(XHRGet)
	if err != nil {
		t.Fatal(err)
	}
	if rtt := res.BrowserRTT(2); rtt < 50*time.Millisecond {
		t.Fatalf("XHR round 2 RTT = %v, should not be cached", rtt)
	}
}

func TestFlashSocketFetchesPolicyFile(t *testing.T) {
	// The Flash TCP method must perform the port-843 policy exchange in
	// its preparation phase; Java TCP must not.
	for _, tc := range []struct {
		kind       Kind
		wantPolicy bool
	}{
		{FlashTCP, true},
		{JavaTCP, false},
	} {
		tb := testbed.New(testbed.Config{Seed: 44})
		r := &Runner{TB: tb, Profile: browser.Lookup(browser.Chrome, browser.Windows), Timing: browser.NanoTime}
		tb.Cap.Reset()
		res, err := r.Run(tc.kind)
		if err != nil {
			t.Fatalf("%v: %v", tc.kind, err)
		}
		sawPolicy := false
		for _, p := range tb.Cap.Packets() {
			if p.TCP != nil && (p.TCP.DstPort == testbed.FlashPolicyPort || p.TCP.SrcPort == testbed.FlashPolicyPort) {
				sawPolicy = true
			}
		}
		if sawPolicy != tc.wantPolicy {
			t.Fatalf("%v: policy traffic = %v, want %v", tc.kind, sawPolicy, tc.wantPolicy)
		}
		// The policy exchange must not pollute the probe RTT matching.
		pairs := tb.Cap.MatchRTT(res.ServerPort)
		if len(pairs) < Rounds {
			t.Fatalf("%v: pairs = %d", tc.kind, len(pairs))
		}
		for _, wp := range pairs[len(pairs)-Rounds:] {
			if wp.RTT() < 50*time.Millisecond || wp.RTT() > 52*time.Millisecond {
				t.Fatalf("%v: probe wire RTT %v off", tc.kind, wp.RTT())
			}
		}
	}
}
