// Package methods implements the ten browser-based RTT measurement
// methods of the paper's Table 1 (plus the Java UDP variant the paper
// lists but excludes from its comparison), runnable against the simulated
// testbed under any browser profile.
//
// Each method follows the Figure 1 two-phase model: a preparation phase
// that downloads the container page (and, for socket methods, establishes
// the measurement connection), then a measurement phase that performs two
// back-to-back probes reusing the same object — yielding the Δd1 (cold)
// and Δd2 (warm) samples of the evaluation.
package methods

import (
	"errors"
	"fmt"

	"github.com/browsermetric/browsermetric/internal/browser"
)

// Kind enumerates the measurement methods.
type Kind int

// The ten compared methods (Figure 3 order) plus the Java UDP extension.
const (
	XHRGet Kind = iota
	XHRPost
	DOM
	WebSocket
	FlashGet
	FlashPost
	FlashTCP
	JavaGet
	JavaPost
	JavaTCP
	JavaUDP
)

// Transport distinguishes Table 1's two approach families.
type Transport int

// Transport values.
const (
	TransportHTTP Transport = iota
	TransportSocket
)

func (t Transport) String() string {
	if t == TransportHTTP {
		return "HTTP-based"
	}
	return "socket-based"
}

// Spec is the Table 1 row for a method.
type Spec struct {
	Kind Kind
	// Name is the figure caption name, e.g. "XHR GET".
	Name string
	// API is the browser interface the method is built on.
	API browser.API
	// Post marks HTTP POST methods.
	Post bool
	// Transport is HTTP-based or socket-based.
	Transport Transport
	// Technology is Table 1's technology column (XHR, DOM, Flash, ...).
	Technology string
	// Availability is "native" or "plug-in".
	Availability string
	// SameOrigin reports whether the method is subject to the same-origin
	// policy by default ("*" in Table 1 means bypassable).
	SameOrigin string
	// Metrics lists the path-quality metrics the method can measure.
	Metrics string
	// Tools lists example tools/services using the method.
	Tools string
}

var specs = []Spec{
	{XHRGet, "XHR GET", browser.APIXHR, false, TransportHTTP, "XHR", "native", "yes",
		"RTT, Tput", "Speedof.me, BandwidthPlace, Janc"},
	{XHRPost, "XHR POST", browser.APIXHR, true, TransportHTTP, "XHR", "native", "yes",
		"RTT, Tput", "Janc"},
	{DOM, "DOM", browser.APIDOM, false, TransportHTTP, "DOM", "native", "no",
		"RTT, Tput", "Janc, BandwidthPlace, Wang"},
	{WebSocket, "WebSocket", browser.APIWebSocket, false, TransportSocket, "WebSocket", "native", "no",
		"RTT, Tput", ""},
	{FlashGet, "Flash GET", browser.APIFlashHTTP, false, TransportHTTP, "Flash", "plug-in", "yes*",
		"RTT, Tput", "Speedtest, AuditMyPC, Speedchecker, Bandwidth Meter, InternetFrog"},
	{FlashPost, "Flash POST", browser.APIFlashHTTP, true, TransportHTTP, "Flash", "plug-in", "yes",
		"RTT, Tput", "Speedtest"},
	{FlashTCP, "Flash TCP socket", browser.APIFlashSocket, false, TransportSocket, "Flash", "plug-in", "yes*",
		"RTT, Tput", "Speedtest"},
	{JavaGet, "Java applet GET", browser.APIJavaHTTP, false, TransportHTTP, "Java applet", "plug-in", "yes*",
		"RTT, Tput", ""},
	{JavaPost, "Java applet POST", browser.APIJavaHTTP, true, TransportHTTP, "Java applet", "plug-in", "yes*",
		"RTT, Tput", ""},
	{JavaTCP, "Java applet TCP socket", browser.APIJavaSocket, false, TransportSocket, "Java applet", "plug-in", "no",
		"RTT, Tput", "Netalyzr, HMN, JavaNws, Pingtest, NDT, AuditMyPC"},
	{JavaUDP, "Java applet UDP socket", browser.APIJavaUDP, false, TransportSocket, "Java applet", "plug-in", "no",
		"RTT, Tput, Loss", "Netalyzr, HMN, NDT"},
}

// Get returns the spec for a kind.
func Get(k Kind) Spec {
	for _, s := range specs {
		if s.Kind == k {
			return s
		}
	}
	panic(fmt.Sprintf("methods: unknown kind %d", int(k)))
}

// All returns every spec including the Java UDP extension.
func All() []Spec { return append([]Spec(nil), specs...) }

// Compared returns the ten methods the paper's evaluation compares
// (excluding Java UDP), in Figure 3 subfigure order.
func Compared() []Spec {
	order := []Kind{XHRGet, XHRPost, DOM, WebSocket, FlashGet, FlashPost, FlashTCP, JavaGet, JavaPost, JavaTCP}
	out := make([]Spec, 0, len(order))
	for _, k := range order {
		out = append(out, Get(k))
	}
	return out
}

// String returns the method's display name.
func (k Kind) String() string { return Get(k).Name }

// ErrUnsupported reports that the browser profile cannot run the method
// (e.g. WebSocket on IE 9).
var ErrUnsupported = errors.New("methods: method not supported by this browser")
