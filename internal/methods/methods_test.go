package methods

import (
	"errors"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/stats"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

func TestTable1Taxonomy(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("specs = %d, want 11 (10 compared + Java UDP)", len(all))
	}
	if len(Compared()) != 10 {
		t.Fatalf("compared = %d, want 10", len(Compared()))
	}
	httpBased, socketBased := 0, 0
	for _, s := range Compared() {
		switch s.Transport {
		case TransportHTTP:
			httpBased++
		default:
			socketBased++
		}
	}
	if httpBased != 7 || socketBased != 3 {
		t.Fatalf("split = %d HTTP / %d socket, want 7/3", httpBased, socketBased)
	}
	// Native vs plug-in per Table 1.
	for _, s := range All() {
		want := "plug-in"
		switch s.API {
		case browser.APIXHR, browser.APIDOM, browser.APIWebSocket:
			want = "native"
		}
		if s.Availability != want {
			t.Errorf("%s availability = %q, want %q", s.Name, s.Availability, want)
		}
	}
	// Only the UDP method measures loss.
	if Get(JavaUDP).Metrics != "RTT, Tput, Loss" {
		t.Errorf("Java UDP metrics = %q", Get(JavaUDP).Metrics)
	}
}

func TestKindString(t *testing.T) {
	if XHRGet.String() != "XHR GET" || JavaTCP.String() != "Java applet TCP socket" {
		t.Fatal("Kind.String wrong")
	}
}

func TestGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Get(Kind(99))
}

// runOnce builds a fresh testbed and executes one measurement run,
// returning the result and the matched wire pairs.
func runOnce(t *testing.T, kind Kind, prof *browser.Profile, timing browser.TimingFunc, seed int64) (*Result, []time.Duration) {
	t.Helper()
	tb := testbed.New(testbed.Config{Seed: seed})
	r := &Runner{TB: tb, Profile: prof, Timing: timing}
	tb.Cap.Reset()
	res, err := r.Run(kind)
	if err != nil {
		t.Fatalf("%v on %s: %v", kind, prof.Label(), err)
	}
	pairs := tb.Cap.MatchRTT(res.ServerPort)
	if len(pairs) < Rounds {
		t.Fatalf("%v: only %d wire pairs captured", kind, len(pairs))
	}
	pairs = pairs[len(pairs)-Rounds:]
	rtts := make([]time.Duration, Rounds)
	for i, p := range pairs {
		rtts[i] = p.RTT()
	}
	return res, rtts
}

func TestEveryMethodRunsOnChromeWindows(t *testing.T) {
	prof := browser.Lookup(browser.Chrome, browser.Windows)
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, wire := runOnce(t, spec.Kind, prof, browser.NanoTime, 7)
			for round := 1; round <= Rounds; round++ {
				browserRTT := res.BrowserRTT(round)
				if browserRTT <= 0 {
					t.Fatalf("round %d browser RTT = %v", round, browserRTT)
				}
				overhead := browserRTT - wire[round-1]
				if overhead < 0 {
					t.Fatalf("round %d overhead = %v with exact clock (must be >= 0)", round, overhead)
				}
				if overhead > 300*time.Millisecond {
					t.Fatalf("round %d overhead = %v implausibly large", round, overhead)
				}
			}
		})
	}
}

func TestWebSocketUnsupportedOnIE(t *testing.T) {
	tb := testbed.New(testbed.Config{Seed: 1})
	r := &Runner{TB: tb, Profile: browser.Lookup(browser.IE, browser.Windows)}
	if _, err := r.Run(WebSocket); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestWireRTTMatchesTestbedDelay(t *testing.T) {
	prof := browser.Lookup(browser.Chrome, browser.Ubuntu)
	_, wire := runOnce(t, JavaTCP, prof, browser.NanoTime, 3)
	for i, rtt := range wire {
		if rtt < 50*time.Millisecond || rtt > 52*time.Millisecond {
			t.Fatalf("wire RTT[%d] = %v, want ~50ms (server delay)", i, rtt)
		}
	}
}

func TestSocketOverheadTiny(t *testing.T) {
	// Table 4 socket row: with nanoTime the Java socket overhead is ~0.
	prof := browser.Lookup(browser.Firefox, browser.Windows)
	res, wire := runOnce(t, JavaTCP, prof, browser.NanoTime, 11)
	d1 := res.BrowserRTT(1) - wire[0]
	if d1 > time.Millisecond {
		t.Fatalf("Java socket Δd1 = %v, want < 1ms", d1)
	}
}

func TestFlashHTTPOverheadLarge(t *testing.T) {
	prof := browser.Lookup(browser.Firefox, browser.Windows)
	res, wire := runOnce(t, FlashGet, prof, browser.NanoTime, 13)
	d2 := res.BrowserRTT(2) - wire[1]
	if d2 < 10*time.Millisecond {
		t.Fatalf("Flash GET Δd2 = %v, want tens of ms", d2)
	}
}

func TestOperaFlashOpensNewConnections(t *testing.T) {
	prof := browser.Lookup(browser.Opera, browser.Windows)

	// GET: new connection on round 1 only.
	resGet, _ := runOnce(t, FlashGet, prof, browser.NanoTime, 17)
	if !resGet.NewConnRounds[0] || resGet.NewConnRounds[1] {
		t.Fatalf("Flash GET new-conn rounds = %v, want [true false]", resGet.NewConnRounds)
	}
	// POST: new connection on both rounds.
	resPost, _ := runOnce(t, FlashPost, prof, browser.NanoTime, 17)
	if !resPost.NewConnRounds[0] || !resPost.NewConnRounds[1] {
		t.Fatalf("Flash POST new-conn rounds = %v, want [true true]", resPost.NewConnRounds)
	}
	// Other browsers reuse for everything.
	resChrome, _ := runOnce(t, FlashPost, browser.Lookup(browser.Chrome, browser.Windows), browser.NanoTime, 17)
	if resChrome.NewConnRounds[0] || resChrome.NewConnRounds[1] {
		t.Fatalf("Chrome Flash POST new-conn rounds = %v, want [false false]", resChrome.NewConnRounds)
	}
}

func TestOperaFlashHandshakeInflatesD1(t *testing.T) {
	// Table 3: Δd1 absorbs a full TCP handshake (~50 ms with the server
	// delay) while Δd2 does not (GET reuses the fresh connection).
	prof := browser.Lookup(browser.Opera, browser.Ubuntu)
	res, wire := runOnce(t, FlashGet, prof, browser.NanoTime, 19)
	d1 := res.BrowserRTT(1) - wire[0]
	d2 := res.BrowserRTT(2) - wire[1]
	if d1 < 60*time.Millisecond {
		t.Fatalf("Δd1 = %v, want > 60ms (handshake + overheads)", d1)
	}
	if d2 > 60*time.Millisecond {
		t.Fatalf("Δd2 = %v, want well below Δd1", d2)
	}
	if d1-d2 < 40*time.Millisecond {
		t.Fatalf("Δd1−Δd2 = %v, want ≈ 50ms handshake", d1-d2)
	}
}

func TestGetTimeQuantizationCanGoNegative(t *testing.T) {
	// On Windows with Date.getTime, the coarse regime makes Δd bimodal
	// and frequently negative for the Java socket method (Fig. 3j / 4a).
	prof := browser.Lookup(browser.Firefox, browser.Windows)
	var ds []float64
	tb := testbed.New(testbed.Config{Seed: 23})
	// Park the clock inside the coarse-granularity regime (4–9 min).
	tb.Advance(5 * time.Minute)
	for i := 0; i < 30; i++ {
		r := &Runner{TB: tb, Profile: prof, Timing: browser.GetTime}
		tb.Cap.Reset()
		res, err := r.Run(JavaTCP)
		if err != nil {
			t.Fatal(err)
		}
		pairs := tb.Cap.MatchRTT(res.ServerPort)
		pairs = pairs[len(pairs)-Rounds:]
		ds = append(ds, stats.Ms(res.BrowserRTT(1)-pairs[0].RTT()))
		tb.Advance(700 * time.Millisecond) // shift quantization phase
	}
	neg := 0
	for _, d := range ds {
		if d < -time.Millisecond.Seconds()*1000 { // below -1 ms
			neg++
		}
	}
	if neg == 0 {
		t.Fatalf("no negative overheads in coarse regime: %v", ds)
	}
}

func TestNanoTimeRemovesNegativeOverheads(t *testing.T) {
	prof := browser.Lookup(browser.Firefox, browser.Windows)
	tb := testbed.New(testbed.Config{Seed: 29})
	tb.Advance(5 * time.Minute) // coarse regime would bite with getTime
	for i := 0; i < 10; i++ {
		r := &Runner{TB: tb, Profile: prof, Timing: browser.NanoTime}
		tb.Cap.Reset()
		res, err := r.Run(JavaTCP)
		if err != nil {
			t.Fatal(err)
		}
		pairs := tb.Cap.MatchRTT(res.ServerPort)
		pairs = pairs[len(pairs)-Rounds:]
		d1 := res.BrowserRTT(1) - pairs[0].RTT()
		if d1 < 0 {
			t.Fatalf("run %d: Δd1 = %v negative with nanoTime", i, d1)
		}
		tb.Advance(700 * time.Millisecond)
	}
}

func TestRepeatedRunsOnSharedTestbed(t *testing.T) {
	// Many sequential runs (incl. UDP rebinding) must not exhaust
	// resources or interfere.
	tb := testbed.New(testbed.Config{Seed: 31})
	prof := browser.Lookup(browser.Chrome, browser.Ubuntu)
	for i := 0; i < 20; i++ {
		for _, k := range []Kind{XHRGet, JavaUDP, WebSocket} {
			r := &Runner{TB: tb, Profile: prof, Timing: browser.NanoTime}
			tb.Cap.Reset()
			if _, err := r.Run(k); err != nil {
				t.Fatalf("iteration %d method %v: %v", i, k, err)
			}
		}
		tb.Advance(time.Second)
	}
}

func TestTransportString(t *testing.T) {
	if TransportHTTP.String() == "" || TransportSocket.String() == "" {
		t.Fatal("empty transport strings")
	}
}
