package methods

import (
	"fmt"
	"net/netip"
	"strconv"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/clock"
	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/httpsim"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/tcpsim"
	"github.com/browsermetric/browsermetric/internal/testbed"
	"github.com/browsermetric/browsermetric/internal/wssim"
)

// Rounds is the number of back-to-back measurements per run (Δd1, Δd2).
const Rounds = 2

// udpRetryTimeout is the SO_TIMEOUT-style resend interval of the Java UDP
// probe: with no transport recovery underneath, a lost datagram (or lost
// echo) is re-sent after this long so an impaired link degrades the round
// instead of hanging it. Far above any clean-path RTT, so it never fires
// on the paper's pristine testbed.
const udpRetryTimeout = 500 * time.Millisecond

// cacheHitCost models serving an <img>/<script> from the browser cache:
// sub-millisecond, no network involvement.
const cacheHitCost = 300 * time.Microsecond

var (
	probeBody     = []byte("probe-body")
	policyRequest = []byte("<policy-file-request/>\x00")

	errEchoReset     = fmt.Errorf("methods: echo connection reset")
	errPolicyRefused = fmt.Errorf("methods: flash policy fetch refused")
)

// Result holds the browser-level observations of one run.
type Result struct {
	Kind Kind
	// ServerPort is the service port the probes used; the capture-side
	// RTT matcher needs it.
	ServerPort uint16
	// TBs and TBr are the browser timestamps (taken through the selected
	// timing API) for each round.
	TBs, TBr [Rounds]time.Duration
	// NewConnRounds marks rounds whose request required opening a fresh
	// TCP connection (the Table 3 mechanism).
	NewConnRounds [Rounds]bool
	// SendCosts and RecvCosts record the browser-path delays actually
	// drawn for each round, enabling overhead attribution (how much of Δd
	// is send path, receive path, handshake, or clock error).
	SendCosts, RecvCosts [Rounds]time.Duration
}

// BrowserRTT returns tBr − tBs for round (1-based), the RTT the
// measurement tool would report.
func (r *Result) BrowserRTT(round int) time.Duration {
	return r.TBr[round-1] - r.TBs[round-1]
}

// Runner executes measurement methods in a browser profile on a testbed.
//
// A Runner is reusable: successive Run calls recycle all per-run state
// (result storage, client connections, event callbacks), so the steady-state
// cost of a run is dominated by the simulation itself rather than by setup
// allocations. Config fields (Profile, Timing, …) must not change between
// runs on the same Runner.
type Runner struct {
	TB      *testbed.Testbed
	Profile *browser.Profile
	// Timing selects the timestamping API (the paper's default is
	// Date.getTime; Section 4.2 switches Java methods to System.nanoTime).
	Timing browser.TimingFunc
	// Timeout bounds one run in virtual time (default 30 s).
	Timeout time.Duration
	// DisableCacheBust removes the cache-busting query parameter from the
	// DOM method's probe URL, reproducing the Section 5 pitfall: the
	// second load of an identical <img>/<script> URL is served from the
	// browser cache, so the "measured RTT" collapses to the cache-hit
	// time and wildly under-estimates the network RTT.
	DisableCacheBust bool
	// RunIndex labels spans with the repetition number when the testbed
	// carries a tracer (core.RunContext sets it; purely observational).
	RunIndex int

	domCached map[string]bool

	// clk caches the Profile.Clock construction per timing API; clocks are
	// stateless (pure functions of the simulator time), so reuse across
	// runs cannot change any reading.
	clk    clock.Clock
	clkAPI browser.API

	// res is the reused result storage handed out by Run; it is valid
	// until the next Run call on this Runner.
	res  Result
	done bool
	fail error

	hs httpState
	ss sockState
	fp policyState
}

func (r *Runner) finish(err error) { r.done, r.fail = true, err }

// readClock takes a browser timestamp through clk and, when tracing,
// records a "clock-read" point carrying the quantization error
// (quantized − raw, in (−g, 0]) and the active granularity — the err
// term of the paper's Figures 4–5.
func (r *Runner) readClock(clk clock.Clock, at string, round int) time.Duration {
	t := clk.Now()
	if tr := r.TB.Trace; tr.Enabled() {
		p := tr.Point("clock-read").
			Str("at", at).
			Int("run", int64(r.RunIndex)).
			Int("round", int64(round)).
			Dur("err", t-r.TB.Sim.Now())
		if q, ok := clk.(*clock.Quantized); ok {
			p.Dur("granularity", q.Granularity())
		}
	}
	return t
}

// Run executes one full two-phase, two-round measurement and returns the
// browser-level result. Wire-level ground truth accumulates in the
// testbed's capture; callers typically Reset the capture before Run and
// MatchRTT afterwards.
//
// The returned Result is reused storage owned by the Runner: it is valid
// until the next Run call. Callers that need it longer must copy it.
func (r *Runner) Run(kind Kind) (*Result, error) {
	spec := Get(kind)
	if !r.Profile.Supports(spec.API) {
		return nil, fmt.Errorf("%w: %s cannot run %s", ErrUnsupported, r.Profile.Label(), spec.Name)
	}
	timeout := r.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	if r.clk == nil || r.clkAPI != spec.API {
		r.clk = r.Profile.Clock(spec.API, r.Timing, r.TB.Sim.Now)
		r.clkAPI = spec.API
	}
	r.res = Result{Kind: kind}
	res := &r.res

	var runSpan *obs.Span
	if tr := r.TB.Trace; tr.Enabled() {
		runSpan = tr.Begin("run").
			Str("method", spec.Name).
			Str("browser", r.Profile.Label()).
			Str("clock", r.clk.Name()).
			Int("run", int64(r.RunIndex))
	}

	r.done, r.fail = false, nil

	switch spec.Transport {
	case TransportHTTP:
		res.ServerPort = testbed.HTTPPort
		r.hs.begin(r, spec)
	default:
		r.ss.begin(r, spec)
	}

	deadline := r.TB.Sim.Now() + timeout
	for !r.done && r.TB.Sim.Now() < deadline && r.TB.Sim.Pending() > 0 {
		r.TB.Sim.Step()
	}
	runSpan.Done()
	if r.ss.hasCleanup {
		r.ss.cleanup()
	}
	if r.fail != nil {
		return nil, r.fail
	}
	if !r.done {
		return nil, fmt.Errorf("methods: %s timed out after %v (virtual)", spec.Name, timeout)
	}
	return res, nil
}

// httpState is the Runner's persistent state for the HTTP-based methods:
// XHR GET/POST, DOM, Flash GET/POST, Java GET/POST. Its callbacks are
// allocated once per Runner and capture only the state pointer; everything
// per-run is a plain field reset by begin.
type httpState struct {
	r    *Runner
	spec Spec

	policy  browser.ConnPolicy
	k       int // current round, 1-based
	needNew bool
	dialAt  time.Duration

	// container carries the preparation-phase page load and is what
	// PolicyReuse methods measure on; fresh is re-attached to each newly
	// dialed measurement connection (the one Opera Flash GET keeps under
	// PolicyNewOnFirst).
	container httpsim.ClientConn
	fresh     httpsim.ClientConn
	freshSet  bool
	cur       *httpsim.ClientConn
	in        *httpsim.Interner

	req httpsim.Request

	// targets caches probeTarget renderings per round; the probe URL
	// depends only on (kind, round).
	targets [Rounds]string
	tKind   Kind

	roundSpan, reqSpan, spSpan, edSpan, hsSpan *obs.Span

	onContainerEst  func()
	onContainerResp func(*httpsim.Response)
	startRound1     func()
	afterSend       func()
	onNewEst        func()
	onProbeResp     func(*httpsim.Response)
	afterRecv       func()
	afterCacheHit   func()
}

func (s *httpState) begin(r *Runner, spec Spec) {
	s.r = r
	s.spec = spec
	s.policy = r.Profile.HTTPConnPolicy(spec.API, spec.Post)
	s.k = 0
	s.freshSet = false
	s.cur = nil
	if s.targets[0] == "" || s.tKind != spec.Kind {
		s.tKind = spec.Kind
		for i := 0; i < Rounds; i++ {
			s.targets[i] = probeTarget(spec.Kind, i+1)
		}
	}
	if s.in == nil {
		s.in = httpsim.NewInterner()
	}
	if s.req.Headers == nil {
		s.req.Headers = httpsim.Headers{{Key: "Host", Value: "server"}}
	}
	s.initCallbacks()

	// Preparation phase: download the container page on a keep-alive
	// connection. This connection is what PolicyReuse methods measure on.
	tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.HTTPPort)
	if err != nil {
		r.finish(err)
		return
	}
	s.container.Attach(tcp)
	s.container.In = s.in
	tcp.OnEstablished = s.onContainerEst
}

func (s *httpState) initCallbacks() {
	if s.afterSend != nil {
		return
	}
	s.onContainerEst = func() {
		s.req.Method, s.req.Target, s.req.Body = "GET", "/container.html", nil
		if err := s.container.RoundTrip(&s.req, s.onContainerResp); err != nil {
			s.r.finish(err)
		}
	}
	s.onContainerResp = func(resp *httpsim.Response) {
		if resp.Status != 200 {
			s.r.finish(fmt.Errorf("methods: container status %d", resp.Status))
			return
		}
		// Render the page, then start measuring. The capture is reset
		// at the measurement boundary by the caller; a small render
		// pause keeps preparation traffic clearly separated.
		s.r.TB.Sim.Schedule(time.Millisecond, s.startRound1)
	}
	s.startRound1 = func() { s.round(1) }
	s.afterSend = func() {
		r := s.r
		s.spSpan.Done()
		switch {
		case !s.needNew && s.freshSet:
			s.cur = &s.fresh
			s.probe()
		case !s.needNew:
			s.cur = &s.container
			s.probe()
		default:
			r.res.NewConnRounds[s.k-1] = true
			s.dialAt = r.TB.Sim.Now()
			s.hsSpan = r.TB.Trace.Begin("handshake").Int("run", int64(r.RunIndex)).Int("round", int64(s.k))
			tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.HTTPPort)
			if err != nil {
				r.finish(err)
				return
			}
			s.fresh.Attach(tcp)
			s.fresh.In = s.in
			if s.policy == browser.PolicyNewOnFirst {
				s.freshSet = true
			}
			s.cur = &s.fresh
			tcp.OnEstablished = s.onNewEst
		}
	}
	s.onNewEst = func() {
		r := s.r
		s.hsSpan.Done()
		r.TB.Metrics.ObserveDur("stage_handshake_ms", r.TB.Sim.Now()-s.dialAt)
		s.probe()
	}
	s.onProbeResp = func(resp *httpsim.Response) {
		r := s.r
		s.reqSpan.Done()
		if resp.Status != 200 {
			r.finish(fmt.Errorf("methods: probe status %d", resp.Status))
			return
		}
		// Response has reached the stack; the browser still has to
		// dispatch the event / cross the plugin bridge before the
		// measurement code can take tBr.
		recvCost := r.Profile.RecvCost(s.spec.API, r.TB.Sim.Rand())
		r.res.RecvCosts[s.k-1] = recvCost
		r.TB.Metrics.ObserveDur("stage_event_dispatch_ms", recvCost)
		s.edSpan = r.TB.Trace.Begin("event-dispatch").Int("run", int64(r.RunIndex)).Int("round", int64(s.k))
		r.TB.Sim.Schedule(recvCost, s.afterRecv)
	}
	s.afterRecv = func() {
		s.edSpan.Done()
		s.endRound()
	}
	s.afterCacheHit = func() {
		s.edSpan.Done()
		s.endRound()
	}
}

// round starts round k: the measurement code records tBs, then the request
// descends through the engine/plugin layers (SendCost) before any packet
// can leave.
func (s *httpState) round(k int) {
	r := s.r
	s.k = k
	s.needNew = s.policy == browser.PolicyNewAlways ||
		(s.policy == browser.PolicyNewOnFirst && !s.freshSet)
	tr := r.TB.Trace
	s.roundSpan = tr.Begin("round").
		Int("run", int64(r.RunIndex)).
		Int("round", int64(k)).
		Bool("new_conn", s.needNew)
	r.res.TBs[k-1] = r.readClock(r.clk, "tBs", k)
	sendCost := r.Profile.SendCost(s.spec.API, k, s.spec.Post, r.TB.Sim.Rand())
	r.res.SendCosts[k-1] = sendCost
	r.TB.Metrics.ObserveDur("stage_send_path_ms", sendCost)
	s.spSpan = tr.Begin("send-path").Int("run", int64(r.RunIndex)).Int("round", int64(k))
	r.TB.Sim.Schedule(sendCost, s.afterSend)
}

func (s *httpState) probe() {
	r, k := s.r, s.k
	target := s.targets[k-1]
	if s.spec.Kind == DOM && r.DisableCacheBust {
		target = "/probe.img" // identical URL every round
		if r.domCached == nil {
			r.domCached = make(map[string]bool)
		}
		if r.domCached[target] {
			// Cache hit: the onload event fires without any packet
			// leaving the host.
			recvCost := r.Profile.RecvCost(s.spec.API, r.TB.Sim.Rand())
			s.edSpan = r.TB.Trace.Begin("event-dispatch").Int("run", int64(r.RunIndex)).Int("round", int64(k)).Bool("cache_hit", true)
			r.TB.Sim.Schedule(cacheHitCost+recvCost, s.afterCacheHit)
			return
		}
		r.domCached[target] = true
	}
	s.req.Method, s.req.Target, s.req.Body = "GET", target, nil
	if s.spec.Post {
		s.req.Method = "POST"
		s.req.Body = probeBody
	}
	s.reqSpan = r.TB.Trace.Begin("request").Int("run", int64(r.RunIndex)).Int("round", int64(k)).Str("target", target)
	if err := s.cur.RoundTrip(&s.req, s.onProbeResp); err != nil {
		r.finish(err)
	}
}

// endRound stamps tBr and advances to the next round (or finishes).
func (s *httpState) endRound() {
	r, k := s.r, s.k
	r.res.TBr[k-1] = r.readClock(r.clk, "tBr", k)
	s.roundSpan.Done()
	if k < Rounds {
		s.round(k + 1)
	} else {
		r.finish(nil)
	}
}

// policyState is the Runner's persistent state for the Flash plugin's
// crossdomain policy exchange on port 843 (preparation phase, outside the
// timed window). Success invokes next; failure aborts the run.
type policyState struct {
	r    *Runner
	pc   *tcpsim.Conn
	next func()
	got  bool

	onEst   func()
	onData  func([]byte)
	onReset func()
}

func (r *Runner) fetchFlashPolicy(next func()) {
	s := &r.fp
	s.r = r
	s.next = next
	s.got = false
	if s.onEst == nil {
		s.onEst = func() {
			if err := s.pc.Send(policyRequest); err != nil {
				s.r.finish(err)
			}
		}
		s.onData = func([]byte) {
			if s.got {
				return
			}
			s.got = true
			s.next()
		}
		s.onReset = func() { s.r.finish(errPolicyRefused) }
	}
	pc, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.FlashPolicyPort)
	if err != nil {
		r.finish(err)
		return
	}
	s.pc = pc
	pc.OnEstablished = s.onEst
	pc.OnData = s.onData
	pc.OnReset = s.onReset
}

// probeTarget renders "/probe?m=<kind>&r=<round>" with one allocation
// (the string conversion), replacing fmt.Sprintf on the per-round path.
func probeTarget(k Kind, round int) string {
	var buf [48]byte
	b := append(buf[:0], "/probe?m="...)
	b = strconv.AppendInt(b, int64(k), 10)
	b = append(b, "&r="...)
	b = strconv.AppendInt(b, int64(round), 10)
	return string(b)
}

// payloadFor builds a small single-packet probe payload.
func payloadFor(k Kind, round int) []byte {
	b := make([]byte, 0, 24)
	b = append(b, "probe-"...)
	b = strconv.AppendInt(b, int64(k), 10)
	b = append(b, '-')
	b = strconv.AppendInt(b, int64(round), 10)
	return b
}

// sockState is the Runner's persistent state for the socket-based methods:
// WebSocket, Flash TCP, Java TCP and Java UDP. Socket methods connect
// during preparation, so no round ever opens a fresh connection.
type sockState struct {
	r    *Runner
	spec Spec

	k       int // current round, 1-based
	pending int // round awaiting its echo; 0 when none

	ws       *wssim.Conn
	tcp      *tcpsim.Conn
	udpLocal uint16

	// payloads caches payloadFor renderings per round; the probe payload
	// depends only on (kind, round).
	payloads [Rounds][]byte
	pKind    Kind

	// UDP retry timer state (see begin's JavaUDP arm).
	retry  eventsim.Event
	retryK int

	hasCleanup bool

	roundSpan, reqSpan, spSpan, edSpan *obs.Span

	afterSend  func()
	afterRecv  func()
	connectFn  func()
	retryFn    func()
	onWSEst    func()
	onWSMsg    func(wssim.Opcode, []byte)
	onWSOpen   func()
	onTCPData  func([]byte)
	onTCPEst   func()
	onTCPReset func()
	onUDP      func(netip.Addr, uint16, []byte)
}

func (s *sockState) begin(r *Runner, spec Spec) {
	s.r = r
	s.spec = spec
	s.k = 0
	s.pending = 0
	s.ws, s.tcp = nil, nil
	s.retry = eventsim.Event{}
	if s.payloads[0] == nil || s.pKind != spec.Kind {
		s.pKind = spec.Kind
		for i := 0; i < Rounds; i++ {
			s.payloads[i] = payloadFor(spec.Kind, i+1)
		}
	}
	s.initCallbacks()

	switch spec.Kind {
	case WebSocket:
		r.res.ServerPort = testbed.WSPort
		tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.WSPort)
		if err != nil {
			r.finish(err)
			return
		}
		s.tcp = tcp
		tcp.OnEstablished = s.onWSEst

	case FlashTCP, JavaTCP:
		r.res.ServerPort = testbed.TCPEchoPort
		if spec.Kind == FlashTCP {
			// The Flash plugin fetches the socket policy file before it
			// allows any Socket connection; this happens in the
			// preparation phase, outside the timed window.
			r.fetchFlashPolicy(s.connectFn)
		} else {
			s.connect()
		}

	case JavaUDP:
		r.res.ServerPort = testbed.UDPEchoPort
		s.udpLocal = r.TB.NextUDPPort()
		if err := r.TB.Client.ListenUDP(s.udpLocal, s.onUDP); err != nil {
			r.finish(err)
			return
		}
		s.hasCleanup = true
		s.round(1)

	default:
		r.finish(fmt.Errorf("methods: %s is not socket-based", spec.Name))
	}
}

func (s *sockState) initCallbacks() {
	if s.afterSend != nil {
		return
	}
	s.afterSend = func() {
		s.spSpan.Done()
		s.reqSpan = s.r.TB.Trace.Begin("request").Int("run", int64(s.r.RunIndex)).Int("round", int64(s.k))
		s.sendProbe()
	}
	s.afterRecv = func() {
		r, k := s.r, s.k
		s.edSpan.Done()
		r.res.TBr[k-1] = r.readClock(r.clk, "tBr", k)
		s.roundSpan.Done()
		if k < Rounds {
			s.round(k + 1)
		} else {
			r.finish(nil)
		}
	}
	s.connectFn = func() { s.connect() }
	// UDP has no transport-layer recovery, so a single lost datagram
	// would hang the round until the 30 s run timeout. Real Java probes
	// guard against this with SO_TIMEOUT and a resend; mirror that with
	// a retry timer that re-sends while the round is still open. On a
	// clean link the timer never fires usefully (the echo lands ~RTT
	// after the send) and consumes no randomness, so clean-path results
	// are unchanged; the duplicate-echo guard in onEcho absorbs the
	// case where both the original and a retry are answered.
	s.retryFn = func() {
		if s.pending != s.retryK {
			return // round already completed
		}
		r := s.r
		r.TB.Client.SendUDP(r.TB.ServerAddr, s.udpLocal, testbed.UDPEchoPort, s.payloads[s.retryK-1])
		s.arm(s.retryK)
	}
	s.onWSEst = func() {
		ws, err := wssim.Dial(s.tcp, "server", "/ws")
		if err != nil {
			s.r.finish(err)
			return
		}
		s.ws = ws
		ws.OnMessage = s.onWSMsg
		ws.OnOpen = s.onWSOpen
	}
	s.onWSMsg = func(_ wssim.Opcode, _ []byte) { s.onEcho() }
	s.onWSOpen = func() { s.round(1) }
	s.onTCPData = func([]byte) { s.onEcho() }
	s.onTCPEst = func() { s.round(1) }
	s.onTCPReset = func() { s.r.finish(errEchoReset) }
	s.onUDP = func(_ netip.Addr, _ uint16, _ []byte) { s.onEcho() }
}

func (s *sockState) connect() {
	r := s.r
	tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.TCPEchoPort)
	if err != nil {
		r.finish(err)
		return
	}
	s.tcp = tcp
	tcp.OnData = s.onTCPData
	tcp.OnEstablished = s.onTCPEst
	tcp.OnReset = s.onTCPReset
}

// round runs the shared round logic: stamp tBs, descend the send path,
// transmit; the echo path ascends RecvCost before tBr.
func (s *sockState) round(k int) {
	r := s.r
	s.k = k
	tr := r.TB.Trace
	s.roundSpan = tr.Begin("round").
		Int("run", int64(r.RunIndex)).
		Int("round", int64(k)).
		Bool("new_conn", false)
	r.res.TBs[k-1] = r.readClock(r.clk, "tBs", k)
	sendCost := r.Profile.SendCost(s.spec.API, k, false, r.TB.Sim.Rand())
	r.res.SendCosts[k-1] = sendCost
	r.TB.Metrics.ObserveDur("stage_send_path_ms", sendCost)
	s.spSpan = tr.Begin("send-path").Int("run", int64(r.RunIndex)).Int("round", int64(k))
	r.TB.Sim.Schedule(sendCost, s.afterSend)
}

func (s *sockState) sendProbe() {
	r, k := s.r, s.k
	payload := s.payloads[k-1]
	switch s.spec.Kind {
	case WebSocket:
		s.pending = k
		if err := s.ws.Send(wssim.OpBinary, payload); err != nil {
			r.finish(err)
		}
	case FlashTCP, JavaTCP:
		s.pending = k
		if err := s.tcp.Send(payload); err != nil {
			r.finish(err)
		}
	case JavaUDP:
		s.pending = k
		r.TB.Client.SendUDP(r.TB.ServerAddr, s.udpLocal, testbed.UDPEchoPort, payload)
		s.arm(k)
	}
}

func (s *sockState) arm(k int) {
	s.retryK = k
	s.retry = s.r.TB.Sim.Schedule(udpRetryTimeout, s.retryFn)
}

func (s *sockState) onEcho() {
	r := s.r
	k := s.pending
	if k == 0 {
		// A duplicate echo for a round that already completed (frame
		// duplication on an impaired link, or a datagram answered both
		// late and via retry). The first copy closed the round; any
		// further copy must not restart the dispatch path.
		return
	}
	s.pending = 0
	s.reqSpan.Done()
	recvCost := r.Profile.RecvCost(s.spec.API, r.TB.Sim.Rand())
	r.res.RecvCosts[k-1] = recvCost
	r.TB.Metrics.ObserveDur("stage_event_dispatch_ms", recvCost)
	s.edSpan = r.TB.Trace.Begin("event-dispatch").Int("run", int64(r.RunIndex)).Int("round", int64(k))
	r.TB.Sim.Schedule(recvCost, s.afterRecv)
}

func (s *sockState) cleanup() {
	s.retry.Cancel()
	s.r.TB.Client.CloseUDP(s.udpLocal)
	s.hasCleanup = false
}
