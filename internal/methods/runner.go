package methods

import (
	"fmt"
	"net/netip"
	"strconv"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/clock"
	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/httpsim"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/testbed"
	"github.com/browsermetric/browsermetric/internal/wssim"
)

// Rounds is the number of back-to-back measurements per run (Δd1, Δd2).
const Rounds = 2

// udpRetryTimeout is the SO_TIMEOUT-style resend interval of the Java UDP
// probe: with no transport recovery underneath, a lost datagram (or lost
// echo) is re-sent after this long so an impaired link degrades the round
// instead of hanging it. Far above any clean-path RTT, so it never fires
// on the paper's pristine testbed.
const udpRetryTimeout = 500 * time.Millisecond

// Result holds the browser-level observations of one run.
type Result struct {
	Kind Kind
	// ServerPort is the service port the probes used; the capture-side
	// RTT matcher needs it.
	ServerPort uint16
	// TBs and TBr are the browser timestamps (taken through the selected
	// timing API) for each round.
	TBs, TBr [Rounds]time.Duration
	// NewConnRounds marks rounds whose request required opening a fresh
	// TCP connection (the Table 3 mechanism).
	NewConnRounds [Rounds]bool
	// SendCosts and RecvCosts record the browser-path delays actually
	// drawn for each round, enabling overhead attribution (how much of Δd
	// is send path, receive path, handshake, or clock error).
	SendCosts, RecvCosts [Rounds]time.Duration
}

// BrowserRTT returns tBr − tBs for round (1-based), the RTT the
// measurement tool would report.
func (r *Result) BrowserRTT(round int) time.Duration {
	return r.TBr[round-1] - r.TBs[round-1]
}

// Runner executes measurement methods in a browser profile on a testbed.
type Runner struct {
	TB      *testbed.Testbed
	Profile *browser.Profile
	// Timing selects the timestamping API (the paper's default is
	// Date.getTime; Section 4.2 switches Java methods to System.nanoTime).
	Timing browser.TimingFunc
	// Timeout bounds one run in virtual time (default 30 s).
	Timeout time.Duration
	// DisableCacheBust removes the cache-busting query parameter from the
	// DOM method's probe URL, reproducing the Section 5 pitfall: the
	// second load of an identical <img>/<script> URL is served from the
	// browser cache, so the "measured RTT" collapses to the cache-hit
	// time and wildly under-estimates the network RTT.
	DisableCacheBust bool
	// RunIndex labels spans with the repetition number when the testbed
	// carries a tracer (core.RunContext sets it; purely observational).
	RunIndex int

	domCached map[string]bool
}

// readClock takes a browser timestamp through clk and, when tracing,
// records a "clock-read" point carrying the quantization error
// (quantized − raw, in (−g, 0]) and the active granularity — the err
// term of the paper's Figures 4–5.
func (r *Runner) readClock(clk clock.Clock, at string, round int) time.Duration {
	t := clk.Now()
	if tr := r.TB.Trace; tr.Enabled() {
		p := tr.Point("clock-read").
			Str("at", at).
			Int("run", int64(r.RunIndex)).
			Int("round", int64(round)).
			Dur("err", t-r.TB.Sim.Now())
		if q, ok := clk.(*clock.Quantized); ok {
			p.Dur("granularity", q.Granularity())
		}
	}
	return t
}

// Run executes one full two-phase, two-round measurement and returns the
// browser-level result. Wire-level ground truth accumulates in the
// testbed's capture; callers typically Reset the capture before Run and
// MatchRTT afterwards.
func (r *Runner) Run(kind Kind) (*Result, error) {
	spec := Get(kind)
	if !r.Profile.Supports(spec.API) {
		return nil, fmt.Errorf("%w: %s cannot run %s", ErrUnsupported, r.Profile.Label(), spec.Name)
	}
	timeout := r.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	clk := r.Profile.Clock(spec.API, r.Timing, r.TB.Sim.Now)
	res := &Result{Kind: kind}

	var runSpan *obs.Span
	if tr := r.TB.Trace; tr.Enabled() {
		runSpan = tr.Begin("run").
			Str("method", spec.Name).
			Str("browser", r.Profile.Label()).
			Str("clock", clk.Name()).
			Int("run", int64(r.RunIndex))
	}

	done := false
	fail := error(nil)
	finish := func(err error) { done, fail = true, err }

	var cleanup func()
	switch spec.Transport {
	case TransportHTTP:
		res.ServerPort = testbed.HTTPPort
		r.runHTTP(spec, clk, res, finish)
	default:
		cleanup = r.runSocket(spec, clk, res, finish)
	}

	deadline := r.TB.Sim.Now() + timeout
	for !done && r.TB.Sim.Now() < deadline && r.TB.Sim.Pending() > 0 {
		r.TB.Sim.Step()
	}
	runSpan.Done()
	if cleanup != nil {
		cleanup()
	}
	if fail != nil {
		return nil, fail
	}
	if !done {
		return nil, fmt.Errorf("methods: %s timed out after %v (virtual)", spec.Name, timeout)
	}
	return res, nil
}

// runHTTP implements the HTTP-based methods: XHR GET/POST, DOM,
// Flash GET/POST, Java GET/POST.
func (r *Runner) runHTTP(spec Spec, clk clock.Clock, res *Result, finish func(error)) {
	sim := r.TB.Sim
	rng := sim.Rand()
	tr := r.TB.Trace
	met := r.TB.Metrics

	// Preparation phase: download the container page on a keep-alive
	// connection. This connection is what PolicyReuse methods measure on.
	containerTCP, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.HTTPPort)
	if err != nil {
		finish(err)
		return
	}
	container := httpsim.NewClientConn(containerTCP)
	policy := r.Profile.HTTPConnPolicy(spec.API, spec.Post)

	var flashConn *httpsim.ClientConn // the fresh connection Opera Flash GET keeps
	var round func(k int)
	var roundSpan *obs.Span

	// endRound stamps tBr and advances to the next round (or finishes).
	endRound := func(k int) {
		res.TBr[k-1] = r.readClock(clk, "tBr", k)
		roundSpan.Done()
		if k < Rounds {
			round(k + 1)
		} else {
			finish(nil)
		}
	}

	// cacheHitCost models serving an <img>/<script> from the browser
	// cache: sub-millisecond, no network involvement.
	const cacheHitCost = 300 * time.Microsecond

	probe := func(k int, cc *httpsim.ClientConn) {
		target := probeTarget(spec.Kind, k)
		if spec.Kind == DOM && r.DisableCacheBust {
			target = "/probe.img" // identical URL every round
			if r.domCached == nil {
				r.domCached = make(map[string]bool)
			}
			if r.domCached[target] {
				// Cache hit: the onload event fires without any packet
				// leaving the host.
				recvCost := r.Profile.RecvCost(spec.API, rng)
				ed := tr.Begin("event-dispatch").Int("run", int64(r.RunIndex)).Int("round", int64(k)).Bool("cache_hit", true)
				sim.Schedule(cacheHitCost+recvCost, func() {
					ed.Done()
					endRound(k)
				})
				return
			}
			r.domCached[target] = true
		}
		req := &httpsim.Request{
			Method:  "GET",
			Target:  target,
			Headers: httpsim.Headers{{Key: "Host", Value: "server"}},
		}
		if spec.Post {
			req.Method = "POST"
			req.Body = []byte("probe-body")
		}
		reqSpan := tr.Begin("request").Int("run", int64(r.RunIndex)).Int("round", int64(k)).Str("target", target)
		if err := cc.RoundTrip(req, func(resp *httpsim.Response) {
			reqSpan.Done()
			if resp.Status != 200 {
				finish(fmt.Errorf("methods: probe status %d", resp.Status))
				return
			}
			// Response has reached the stack; the browser still has to
			// dispatch the event / cross the plugin bridge before the
			// measurement code can take tBr.
			recvCost := r.Profile.RecvCost(spec.API, rng)
			res.RecvCosts[k-1] = recvCost
			met.ObserveDur("stage_event_dispatch_ms", recvCost)
			ed := tr.Begin("event-dispatch").Int("run", int64(r.RunIndex)).Int("round", int64(k))
			sim.Schedule(recvCost, func() {
				ed.Done()
				endRound(k)
			})
		}); err != nil {
			finish(err)
		}
	}

	round = func(k int) {
		// The measurement code records tBs, then the request descends
		// through the engine/plugin layers (SendCost) before any packet
		// can leave.
		needNew := policy == browser.PolicyNewAlways ||
			(policy == browser.PolicyNewOnFirst && flashConn == nil)
		roundSpan = tr.Begin("round").
			Int("run", int64(r.RunIndex)).
			Int("round", int64(k)).
			Bool("new_conn", needNew)
		res.TBs[k-1] = r.readClock(clk, "tBs", k)
		sendCost := r.Profile.SendCost(spec.API, k, spec.Post, rng)
		res.SendCosts[k-1] = sendCost
		met.ObserveDur("stage_send_path_ms", sendCost)
		sp := tr.Begin("send-path").Int("run", int64(r.RunIndex)).Int("round", int64(k))
		sim.Schedule(sendCost, func() {
			sp.Done()
			switch {
			case !needNew && flashConn != nil:
				probe(k, flashConn)
			case !needNew:
				probe(k, container)
			default:
				res.NewConnRounds[k-1] = true
				dialAt := sim.Now()
				hs := tr.Begin("handshake").Int("run", int64(r.RunIndex)).Int("round", int64(k))
				tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.HTTPPort)
				if err != nil {
					finish(err)
					return
				}
				cc := httpsim.NewClientConn(tcp)
				if policy == browser.PolicyNewOnFirst {
					flashConn = cc
				}
				tcp.OnEstablished = func() {
					hs.Done()
					met.ObserveDur("stage_handshake_ms", sim.Now()-dialAt)
					probe(k, cc)
				}
			}
		})
	}

	containerTCP.OnEstablished = func() {
		containerReq := &httpsim.Request{
			Method:  "GET",
			Target:  "/container.html",
			Headers: httpsim.Headers{{Key: "Host", Value: "server"}},
		}
		if err := container.RoundTrip(containerReq, func(resp *httpsim.Response) {
			if resp.Status != 200 {
				finish(fmt.Errorf("methods: container status %d", resp.Status))
				return
			}
			// Render the page, then start measuring. The capture is reset
			// at the measurement boundary by the caller; a small render
			// pause keeps preparation traffic clearly separated.
			sim.Schedule(time.Millisecond, func() { round(1) })
		}); err != nil {
			finish(err)
		}
	}
}

// fetchFlashPolicy performs the Flash plugin's crossdomain policy
// exchange on port 843, then invokes next. Failure aborts via finish.
func (r *Runner) fetchFlashPolicy(next func(), finish func(error)) {
	pc, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.FlashPolicyPort)
	if err != nil {
		finish(err)
		return
	}
	got := false
	pc.OnEstablished = func() {
		if err := pc.Send([]byte("<policy-file-request/>\x00")); err != nil {
			finish(err)
		}
	}
	pc.OnData = func(p []byte) {
		if got {
			return
		}
		got = true
		next()
	}
	pc.OnReset = func() { finish(fmt.Errorf("methods: flash policy fetch refused")) }
}

// probeTarget renders "/probe?m=<kind>&r=<round>" with one allocation
// (the string conversion), replacing fmt.Sprintf on the per-round path.
func probeTarget(k Kind, round int) string {
	var buf [48]byte
	b := append(buf[:0], "/probe?m="...)
	b = strconv.AppendInt(b, int64(k), 10)
	b = append(b, "&r="...)
	b = strconv.AppendInt(b, int64(round), 10)
	return string(b)
}

// payloadFor builds a small single-packet probe payload.
func payloadFor(k Kind, round int) []byte {
	b := make([]byte, 0, 24)
	b = append(b, "probe-"...)
	b = strconv.AppendInt(b, int64(k), 10)
	b = append(b, '-')
	b = strconv.AppendInt(b, int64(round), 10)
	return b
}

// runSocket implements the socket-based methods: WebSocket, Flash TCP,
// Java TCP and Java UDP. It returns an optional cleanup function to run
// when the measurement finishes.
func (r *Runner) runSocket(spec Spec, clk clock.Clock, res *Result, finish func(error)) (cleanup func()) {
	sim := r.TB.Sim
	rng := sim.Rand()
	tr := r.TB.Trace
	met := r.TB.Metrics

	var round func(k int)
	var sendProbe func(k int, payload []byte)
	var onEcho func(payload []byte)
	var roundSpan, reqSpan *obs.Span

	// Shared round logic: stamp tBs, descend the send path, transmit;
	// the echo path ascends RecvCost before tBr. Socket methods connect
	// during preparation, so no round ever opens a fresh connection.
	round = func(k int) {
		roundSpan = tr.Begin("round").
			Int("run", int64(r.RunIndex)).
			Int("round", int64(k)).
			Bool("new_conn", false)
		res.TBs[k-1] = r.readClock(clk, "tBs", k)
		sendCost := r.Profile.SendCost(spec.API, k, false, rng)
		res.SendCosts[k-1] = sendCost
		met.ObserveDur("stage_send_path_ms", sendCost)
		sp := tr.Begin("send-path").Int("run", int64(r.RunIndex)).Int("round", int64(k))
		sim.Schedule(sendCost, func() {
			sp.Done()
			reqSpan = tr.Begin("request").Int("run", int64(r.RunIndex)).Int("round", int64(k))
			sendProbe(k, payloadFor(spec.Kind, k))
		})
	}
	pending := 0
	onEcho = func([]byte) {
		k := pending
		if k == 0 {
			// A duplicate echo for a round that already completed (frame
			// duplication on an impaired link, or a datagram answered both
			// late and via retry). The first copy closed the round; any
			// further copy must not restart the dispatch path.
			return
		}
		pending = 0
		reqSpan.Done()
		recvCost := r.Profile.RecvCost(spec.API, rng)
		res.RecvCosts[k-1] = recvCost
		met.ObserveDur("stage_event_dispatch_ms", recvCost)
		ed := tr.Begin("event-dispatch").Int("run", int64(r.RunIndex)).Int("round", int64(k))
		sim.Schedule(recvCost, func() {
			ed.Done()
			res.TBr[k-1] = r.readClock(clk, "tBr", k)
			roundSpan.Done()
			if k < Rounds {
				round(k + 1)
			} else {
				finish(nil)
			}
		})
	}

	switch spec.Kind {
	case WebSocket:
		res.ServerPort = testbed.WSPort
		tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.WSPort)
		if err != nil {
			finish(err)
			return
		}
		tcp.OnEstablished = func() {
			ws, err := wssim.Dial(tcp, "server", "/ws")
			if err != nil {
				finish(err)
				return
			}
			sendProbe = func(k int, payload []byte) {
				pending = k
				if err := ws.Send(wssim.OpBinary, payload); err != nil {
					finish(err)
				}
			}
			ws.OnMessage = func(_ wssim.Opcode, p []byte) { onEcho(p) }
			ws.OnOpen = func() { round(1) }
		}

	case FlashTCP, JavaTCP:
		res.ServerPort = testbed.TCPEchoPort
		connect := func() {
			tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.TCPEchoPort)
			if err != nil {
				finish(err)
				return
			}
			sendProbe = func(k int, payload []byte) {
				pending = k
				if err := tcp.Send(payload); err != nil {
					finish(err)
				}
			}
			tcp.OnData = func(p []byte) { onEcho(p) }
			tcp.OnEstablished = func() { round(1) }
			tcp.OnReset = func() { finish(fmt.Errorf("methods: echo connection reset")) }
		}
		if spec.Kind == FlashTCP {
			// The Flash plugin fetches the socket policy file before it
			// allows any Socket connection; this happens in the
			// preparation phase, outside the timed window.
			r.fetchFlashPolicy(connect, finish)
		} else {
			connect()
		}

	case JavaUDP:
		res.ServerPort = testbed.UDPEchoPort
		localPort := r.TB.NextUDPPort()
		if err := r.TB.Client.ListenUDP(localPort, func(_ netip.Addr, _ uint16, p []byte) {
			onEcho(p)
		}); err != nil {
			finish(err)
			return nil
		}
		// UDP has no transport-layer recovery, so a single lost datagram
		// would hang the round until the 30 s run timeout. Real Java probes
		// guard against this with SO_TIMEOUT and a resend; mirror that with
		// a retry timer that re-sends while the round is still open. On a
		// clean link the timer never fires usefully (the echo lands ~RTT
		// after the send) and consumes no randomness, so clean-path results
		// are unchanged; the duplicate-echo guard in onEcho absorbs the
		// case where both the original and a retry are answered.
		var retry eventsim.Event
		var arm func(k int, payload []byte)
		arm = func(k int, payload []byte) {
			retry = sim.Schedule(udpRetryTimeout, func() {
				if pending != k {
					return // round already completed
				}
				r.TB.Client.SendUDP(r.TB.ServerAddr, localPort, testbed.UDPEchoPort, payload)
				arm(k, payload)
			})
		}
		cleanup = func() {
			retry.Cancel()
			r.TB.Client.CloseUDP(localPort)
		}
		sendProbe = func(k int, payload []byte) {
			pending = k
			r.TB.Client.SendUDP(r.TB.ServerAddr, localPort, testbed.UDPEchoPort, payload)
			arm(k, payload)
		}
		round(1)

	default:
		finish(fmt.Errorf("methods: %s is not socket-based", spec.Name))
	}
	return cleanup
}
