package methods

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/httpsim"
	"github.com/browsermetric/browsermetric/internal/testbed"
	"github.com/browsermetric/browsermetric/internal/wssim"
)

// TrainResult holds the browser-level observations of a probe train: K
// sequential probes over one measurement object. Trains drive the
// jitter-impact and loss-measurement experiments (Table 1 lists RTT, Tput
// and — for UDP — Loss as the metrics these methods compute).
type TrainResult struct {
	Kind       Kind
	ServerPort uint16
	// TBs and TBr per probe; a zero TBr marks a probe the tool gave up on
	// (UDP timeout → counted as lost).
	TBs, TBr []time.Duration
	// Lost is the number of probes the tool classified as lost.
	Lost int
}

// BrowserRTTs returns the browser-level RTTs of the answered probes.
func (t *TrainResult) BrowserRTTs() []time.Duration {
	var out []time.Duration
	for i := range t.TBs {
		if t.TBr[i] != 0 {
			out = append(out, t.TBr[i]-t.TBs[i])
		}
	}
	return out
}

// LossRate returns the tool-reported loss fraction.
func (t *TrainResult) LossRate() float64 {
	if len(t.TBs) == 0 {
		return 0
	}
	return float64(t.Lost) / float64(len(t.TBs))
}

// udpProbeTimeout is how long the tool waits before declaring a UDP probe
// lost (Netalyzr-style tools use a few seconds; 2 s keeps trains fast).
const udpProbeTimeout = 2 * time.Second

// RunTrain performs a K-probe train with the given method. HTTP methods
// issue K sequential requests on the reused connection; socket methods
// send K sequential messages on the established socket; the UDP method
// additionally applies a per-probe timeout and counts losses.
func (r *Runner) RunTrain(kind Kind, probes int) (*TrainResult, error) {
	if probes <= 0 {
		probes = 10
	}
	spec := Get(kind)
	if !r.Profile.Supports(spec.API) {
		return nil, fmt.Errorf("%w: %s cannot run %s", ErrUnsupported, r.Profile.Label(), spec.Name)
	}
	timeout := r.Timeout
	if timeout == 0 {
		timeout = time.Duration(probes)*5*time.Second + 30*time.Second
	}
	clk := r.Profile.Clock(spec.API, r.Timing, r.TB.Sim.Now)
	res := &TrainResult{
		Kind: kind,
		TBs:  make([]time.Duration, probes),
		TBr:  make([]time.Duration, probes),
	}

	done := false
	fail := error(nil)
	finish := func(err error) { done, fail = true, err }

	var cleanup func()
	if spec.Transport == TransportHTTP {
		res.ServerPort = testbed.HTTPPort
		r.trainHTTP(spec, clk.Now, res, probes, finish)
	} else {
		cleanup = r.trainSocket(spec, clk.Now, res, probes, finish)
	}

	deadline := r.TB.Sim.Now() + timeout
	for !done && r.TB.Sim.Now() < deadline && r.TB.Sim.Pending() > 0 {
		r.TB.Sim.Step()
	}
	if cleanup != nil {
		cleanup()
	}
	if fail != nil {
		return nil, fail
	}
	if !done {
		return nil, fmt.Errorf("methods: %s train timed out after %v (virtual)", spec.Name, timeout)
	}
	return res, nil
}

func (r *Runner) trainHTTP(spec Spec, now func() time.Duration, res *TrainResult, probes int, finish func(error)) {
	sim := r.TB.Sim
	rng := sim.Rand()
	tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.HTTPPort)
	if err != nil {
		finish(err)
		return
	}
	cc := httpsim.NewClientConn(tcp)

	var probe func(i int)
	probe = func(i int) {
		res.TBs[i] = now()
		round := 2 // trains reuse the object: every probe is warm
		if i == 0 {
			round = 1
		}
		sim.Schedule(r.Profile.SendCost(spec.API, round, spec.Post, rng), func() {
			req := &httpsim.Request{
				Method: "GET",
				Target: fmt.Sprintf("/probe?train=%d", i),
			}
			if spec.Post {
				req.Method = "POST"
				req.Body = []byte("probe-body")
			}
			if err := cc.RoundTrip(req, func(resp *httpsim.Response) {
				if resp.Status != 200 {
					finish(fmt.Errorf("methods: train probe status %d", resp.Status))
					return
				}
				sim.Schedule(r.Profile.RecvCost(spec.API, rng), func() {
					res.TBr[i] = now()
					if i+1 < probes {
						probe(i + 1)
					} else {
						finish(nil)
					}
				})
			}); err != nil {
				finish(err)
			}
		})
	}
	tcp.OnEstablished = func() { probe(0) }
}

func (r *Runner) trainSocket(spec Spec, now func() time.Duration, res *TrainResult, probes int, finish func(error)) (cleanup func()) {
	sim := r.TB.Sim
	rng := sim.Rand()

	var probe func(i int)
	var sendProbe func(i int, payload []byte)
	current := -1
	var timeoutEv eventsim.Event

	// onEcho attributes an echo to probe i. Callers that can identify the
	// probe from the payload pass its index; -1 means "the current one".
	onEcho := func(idx int) {
		i := idx
		if i < 0 {
			i = current
		}
		if i != current || i < 0 || res.TBr[i] != 0 {
			return // stale echo: a reply to an already-timed-out probe
		}
		timeoutEv.Cancel() // no-op on the zero handle
		sim.Schedule(r.Profile.RecvCost(spec.API, rng), func() {
			res.TBr[i] = now()
			if i+1 < probes {
				probe(i + 1)
			} else {
				finish(nil)
			}
		})
	}

	probe = func(i int) {
		current = i
		res.TBs[i] = now()
		round := 2
		if i == 0 {
			round = 1
		}
		sim.Schedule(r.Profile.SendCost(spec.API, round, false, rng), func() {
			sendProbe(i, payloadFor(spec.Kind, i))
			if spec.Kind == JavaUDP {
				timeoutEv = sim.Schedule(udpProbeTimeout, func() {
					if res.TBr[i] != 0 {
						return
					}
					res.Lost++
					if i+1 < probes {
						probe(i + 1)
					} else {
						finish(nil)
					}
				})
			}
		})
	}

	switch spec.Kind {
	case WebSocket:
		res.ServerPort = testbed.WSPort
		tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.WSPort)
		if err != nil {
			finish(err)
			return nil
		}
		tcp.OnEstablished = func() {
			ws, err := wssim.Dial(tcp, "server", "/ws")
			if err != nil {
				finish(err)
				return
			}
			sendProbe = func(_ int, payload []byte) { _ = ws.Send(wssim.OpBinary, payload) }
			ws.OnMessage = func(_ wssim.Opcode, _ []byte) { onEcho(-1) }
			ws.OnOpen = func() { probe(0) }
		}

	case FlashTCP, JavaTCP:
		res.ServerPort = testbed.TCPEchoPort
		tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.TCPEchoPort)
		if err != nil {
			finish(err)
			return nil
		}
		sendProbe = func(_ int, payload []byte) { _ = tcp.Send(payload) }
		tcp.OnData = func([]byte) { onEcho(-1) }
		tcp.OnEstablished = func() { probe(0) }

	case JavaUDP:
		res.ServerPort = testbed.UDPEchoPort
		localPort := r.TB.NextUDPPort()
		if err := r.TB.Client.ListenUDP(localPort, func(_ netip.Addr, _ uint16, payload []byte) {
			// Datagrams carry the probe index; a late echo for an
			// already-timed-out probe must not be credited to the
			// current one.
			onEcho(parseProbeIndex(payload))
		}); err != nil {
			finish(err)
			return nil
		}
		cleanup = func() { r.TB.Client.CloseUDP(localPort) }
		sendProbe = func(_ int, payload []byte) {
			r.TB.Client.SendUDP(r.TB.ServerAddr, localPort, testbed.UDPEchoPort, payload)
		}
		probe(0)

	default:
		finish(fmt.Errorf("methods: %s is not socket-based", spec.Name))
	}
	return cleanup
}

// parseProbeIndex recovers the probe index from a payloadFor-style
// payload ("probe-<kind>-<idx>"); -1 when unparseable.
func parseProbeIndex(payload []byte) int {
	parts := strings.Split(string(payload), "-")
	if len(parts) != 3 || parts[0] != "probe" {
		return -1
	}
	idx, err := strconv.Atoi(parts[2])
	if err != nil {
		return -1
	}
	return idx
}

// ThroughputResult holds one bulk-transfer measurement.
type ThroughputResult struct {
	Kind       Kind
	ServerPort uint16
	Bytes      int
	// TBs is taken before issuing the transfer, TBr after the last byte
	// is delivered to the measurement code.
	TBs, TBr time.Duration
}

// BrowserThroughput is the tool-computed round-trip throughput (bit/s).
func (t *ThroughputResult) BrowserThroughput() float64 {
	d := (t.TBr - t.TBs).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(t.Bytes) * 8 / d
}

// RunThroughput measures round-trip throughput with the given method:
// HTTP methods download a size-byte body from /download; socket methods
// echo a size-byte message through the server. The testbed capture's
// MatchTransfer provides the wire-level ground truth.
func (r *Runner) RunThroughput(kind Kind, size int) (*ThroughputResult, error) {
	if size <= 0 {
		size = 64 << 10
	}
	spec := Get(kind)
	if !r.Profile.Supports(spec.API) {
		return nil, fmt.Errorf("%w: %s cannot run %s", ErrUnsupported, r.Profile.Label(), spec.Name)
	}
	timeout := r.Timeout
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	clk := r.Profile.Clock(spec.API, r.Timing, r.TB.Sim.Now)
	res := &ThroughputResult{Kind: kind, Bytes: size}

	done := false
	fail := error(nil)
	finish := func(err error) { done, fail = true, err }
	sim := r.TB.Sim
	rng := sim.Rand()

	complete := func() {
		sim.Schedule(r.Profile.RecvCost(spec.API, rng), func() {
			res.TBr = clk.Now()
			finish(nil)
		})
	}

	switch spec.Transport {
	case TransportHTTP:
		res.ServerPort = testbed.HTTPPort
		tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.HTTPPort)
		if err != nil {
			return nil, err
		}
		cc := httpsim.NewClientConn(tcp)
		tcp.OnEstablished = func() {
			r.TB.Cap.Reset() // exclude handshake from the transfer window
			res.TBs = clk.Now()
			sim.Schedule(r.Profile.SendCost(spec.API, 1, false, rng), func() {
				req := &httpsim.Request{Method: "GET", Target: fmt.Sprintf("/download?bytes=%d", size)}
				if err := cc.RoundTrip(req, func(resp *httpsim.Response) {
					if resp.Status != 200 || len(resp.Body) != size {
						finish(fmt.Errorf("methods: download got %d bytes status %d", len(resp.Body), resp.Status))
						return
					}
					complete()
				}); err != nil {
					finish(err)
				}
			})
		}

	default:
		switch spec.Kind {
		case WebSocket:
			res.ServerPort = testbed.WSPort
			tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.WSPort)
			if err != nil {
				return nil, err
			}
			tcp.OnEstablished = func() {
				ws, err := wssim.Dial(tcp, "server", "/ws")
				if err != nil {
					finish(err)
					return
				}
				got := 0
				ws.OnMessage = func(_ wssim.Opcode, p []byte) {
					got += len(p)
					if got >= size {
						complete()
					}
				}
				ws.OnOpen = func() {
					r.TB.Cap.Reset() // exclude dial+upgrade from the window
					res.TBs = clk.Now()
					sim.Schedule(r.Profile.SendCost(spec.API, 1, false, rng), func() {
						_ = ws.Send(wssim.OpBinary, make([]byte, size))
					})
				}
			}
		case FlashTCP, JavaTCP:
			res.ServerPort = testbed.TCPEchoPort
			tcp, err := r.TB.Client.Dial(r.TB.ServerAddr, testbed.TCPEchoPort)
			if err != nil {
				return nil, err
			}
			got := 0
			tcp.OnData = func(p []byte) {
				got += len(p)
				if got >= size {
					complete()
				}
			}
			tcp.OnEstablished = func() {
				r.TB.Cap.Reset() // exclude handshake from the window
				res.TBs = clk.Now()
				sim.Schedule(r.Profile.SendCost(spec.API, 1, false, rng), func() {
					_ = tcp.Send(make([]byte, size))
				})
			}
		default:
			return nil, fmt.Errorf("methods: throughput unsupported for %s", spec.Name)
		}
	}

	deadline := sim.Now() + timeout
	for !done && sim.Now() < deadline && sim.Pending() > 0 {
		sim.Step()
	}
	if fail != nil {
		return nil, fail
	}
	if !done {
		return nil, fmt.Errorf("methods: %s throughput timed out after %v (virtual)", spec.Name, timeout)
	}
	return res, nil
}
