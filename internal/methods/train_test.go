package methods

import (
	"errors"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

func newRunner(t *testing.T, seed int64, b browser.Name, os browser.OS) *Runner {
	t.Helper()
	tb := testbed.New(testbed.Config{Seed: seed})
	return &Runner{TB: tb, Profile: browser.Lookup(b, os), Timing: browser.NanoTime}
}

func TestTrainEveryKind(t *testing.T) {
	kinds := []Kind{XHRGet, XHRPost, DOM, FlashGet, JavaGet, WebSocket, FlashTCP, JavaTCP, JavaUDP}
	for i, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			r := newRunner(t, int64(100+i), browser.Chrome, browser.Ubuntu)
			train, err := r.RunTrain(kind, 5)
			if err != nil {
				t.Fatal(err)
			}
			rtts := train.BrowserRTTs()
			if len(rtts) != 5 {
				t.Fatalf("answered = %d, want 5", len(rtts))
			}
			for _, rtt := range rtts {
				if rtt < 50*time.Millisecond || rtt > 250*time.Millisecond {
					t.Fatalf("train RTT %v outside plausible band", rtt)
				}
			}
		})
	}
}

func TestTrainDefaultsProbes(t *testing.T) {
	r := newRunner(t, 7, browser.Chrome, browser.Ubuntu)
	train, err := r.RunTrain(JavaTCP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.TBs) != 10 {
		t.Fatalf("default probes = %d, want 10", len(train.TBs))
	}
}

func TestTrainUnsupported(t *testing.T) {
	r := newRunner(t, 8, browser.IE, browser.Windows)
	if _, err := r.RunTrain(WebSocket, 5); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestTrainUDPLossCounting(t *testing.T) {
	tb := testbed.New(testbed.Config{Seed: 9, LossRate: 0.3})
	r := &Runner{TB: tb, Profile: browser.Lookup(browser.Chrome, browser.Ubuntu), Timing: browser.NanoTime}
	train, err := r.RunTrain(JavaUDP, 40)
	if err != nil {
		t.Fatal(err)
	}
	if train.Lost == 0 {
		t.Fatal("no losses counted at 30% link loss")
	}
	if train.Lost+len(train.BrowserRTTs()) != 40 {
		t.Fatalf("lost %d + answered %d != 40", train.Lost, len(train.BrowserRTTs()))
	}
	if lr := train.LossRate(); lr <= 0 || lr >= 1 {
		t.Fatalf("loss rate = %v", lr)
	}
}

func TestTrainResultEmptyLossRate(t *testing.T) {
	tr := &TrainResult{}
	if tr.LossRate() != 0 {
		t.Fatal("empty train loss rate should be 0")
	}
}

func TestThroughputHTTPDownload(t *testing.T) {
	r := newRunner(t, 11, browser.Chrome, browser.Ubuntu)
	res, err := r.RunThroughput(XHRGet, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 128<<10 {
		t.Fatalf("bytes = %d", res.Bytes)
	}
	tput := res.BrowserThroughput()
	if tput <= 0 || tput > 100e6 {
		t.Fatalf("throughput = %v bit/s", tput)
	}
	// The transfer is paced by slow start over a 50 ms RTT: multiple
	// round trips, so well below the line rate.
	if tput > 50e6 {
		t.Fatalf("throughput %v implausibly close to line rate for a 50ms path", tput)
	}
}

func TestThroughputSocketEcho(t *testing.T) {
	for _, kind := range []Kind{WebSocket, JavaTCP, FlashTCP} {
		r := newRunner(t, 12, browser.Chrome, browser.Ubuntu)
		res, err := r.RunThroughput(kind, 32<<10)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.BrowserThroughput() <= 0 {
			t.Fatalf("%v: nonpositive throughput", kind)
		}
	}
}

func TestThroughputDefaultsSize(t *testing.T) {
	r := newRunner(t, 13, browser.Chrome, browser.Ubuntu)
	res, err := r.RunThroughput(XHRGet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 64<<10 {
		t.Fatalf("default size = %d", res.Bytes)
	}
}

func TestThroughputUnsupportedKinds(t *testing.T) {
	r := newRunner(t, 14, browser.Chrome, browser.Ubuntu)
	if _, err := r.RunThroughput(JavaUDP, 1024); err == nil {
		t.Fatal("UDP throughput should be rejected")
	}
	r2 := newRunner(t, 15, browser.IE, browser.Windows)
	if _, err := r2.RunThroughput(WebSocket, 1024); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
}

func TestThroughputZeroBrowserDuration(t *testing.T) {
	res := &ThroughputResult{Bytes: 100}
	if res.BrowserThroughput() != 0 {
		t.Fatal("zero-duration transfer should report 0")
	}
}
