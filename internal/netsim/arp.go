package netsim

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
)

// EtherTypeARP is the ARP ethertype.
const EtherTypeARP uint16 = 0x0806

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPPacket is an Ethernet/IPv4 ARP payload (RFC 826).
type ARPPacket struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  netip.Addr
	TargetMAC MAC
	TargetIP  netip.Addr
}

const arpLen = 28

// Serialize encodes the ARP payload (hardware=Ethernet, protocol=IPv4).
func (a *ARPPacket) Serialize() []byte {
	b := make([]byte, arpLen)
	binary.BigEndian.PutUint16(b[0:2], 1)      // hardware: Ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // protocol: IPv4
	b[4], b[5] = 6, 4                          // address lengths
	binary.BigEndian.PutUint16(b[6:8], a.Op)
	copy(b[8:14], a.SenderMAC[:])
	sip := a.SenderIP.As4()
	copy(b[14:18], sip[:])
	copy(b[18:24], a.TargetMAC[:])
	tip := a.TargetIP.As4()
	copy(b[24:28], tip[:])
	return b
}

// DecodeARP parses an ARP payload.
func DecodeARP(b []byte) (*ARPPacket, error) {
	if len(b) < arpLen {
		return nil, fmt.Errorf("%w: arp needs %d bytes, have %d", ErrTruncated, arpLen, len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != 0x0800 {
		return nil, fmt.Errorf("%w: unsupported arp hardware/protocol", ErrBadHeader)
	}
	a := &ARPPacket{Op: binary.BigEndian.Uint16(b[6:8])}
	copy(a.SenderMAC[:], b[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(b[14:18]))
	copy(a.TargetMAC[:], b[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(b[24:28]))
	return a, nil
}

// ARP implements the address-resolution protocol for one NIC: it answers
// requests for the NIC's own address and resolves peer addresses on
// demand, queueing at most one callback per pending resolution.
//
// The simulated testbed normally runs with a preconfigured static table
// (the paper's hosts had exchanged traffic before any experiment, so
// their caches were warm); ARP exists for cold-start realism and for
// multi-host topologies built on the substrate.
type ARP struct {
	sim *eventsim.Simulator
	nic *NIC

	// Timeout bounds a resolution attempt (default 1 s).
	Timeout time.Duration

	cache   map[netip.Addr]MAC
	pending map[netip.Addr][]func(MAC, bool)
	// passthrough preserves the NIC's previous handler for non-ARP frames.
	passthrough func(frame []byte)
}

// NewARP attaches an ARP engine to nic. It chains the NIC's existing
// frame handler: ARP frames are consumed, everything else passes through.
func NewARP(sim *eventsim.Simulator, nic *NIC, prev func(frame []byte)) *ARP {
	a := &ARP{
		sim:         sim,
		nic:         nic,
		Timeout:     time.Second,
		cache:       make(map[netip.Addr]MAC),
		pending:     make(map[netip.Addr][]func(MAC, bool)),
		passthrough: prev,
	}
	nic.SetHandler(a.receive)
	return a
}

// Lookup returns a cached mapping.
func (a *ARP) Lookup(ip netip.Addr) (MAC, bool) {
	m, ok := a.cache[ip]
	return m, ok
}

// Insert seeds the cache (a static ARP entry).
func (a *ARP) Insert(ip netip.Addr, mac MAC) { a.cache[ip] = mac }

// Resolve calls done with the MAC for ip, either immediately from cache
// or after a request/reply exchange; done(_, false) signals timeout.
func (a *ARP) Resolve(ip netip.Addr, done func(MAC, bool)) {
	if m, ok := a.cache[ip]; ok {
		done(m, true)
		return
	}
	first := len(a.pending[ip]) == 0
	a.pending[ip] = append(a.pending[ip], done)
	if !first {
		return // a request is already in flight
	}
	req := &ARPPacket{
		Op:        ARPRequest,
		SenderMAC: a.nic.MAC,
		SenderIP:  a.nic.Addr,
		TargetIP:  ip,
	}
	eth := &Ethernet{Dst: Broadcast, Src: a.nic.MAC, EtherType: EtherTypeARP}
	a.nic.Send(eth.Serialize(req.Serialize()))
	a.sim.Schedule(a.Timeout, func() {
		waiters := a.pending[ip]
		if len(waiters) == 0 {
			return // already resolved
		}
		delete(a.pending, ip)
		for _, w := range waiters {
			w(MAC{}, false)
		}
	})
}

func (a *ARP) receive(frame []byte) {
	eth, payload, err := DecodeEthernet(frame)
	if err != nil || eth.EtherType != EtherTypeARP {
		if a.passthrough != nil {
			a.passthrough(frame)
		}
		return
	}
	pkt, err := DecodeARP(payload)
	if err != nil {
		return
	}
	// Opportunistic learning: the sender's mapping is always fresh.
	a.cache[pkt.SenderIP] = pkt.SenderMAC

	switch pkt.Op {
	case ARPRequest:
		if pkt.TargetIP != a.nic.Addr {
			return
		}
		reply := &ARPPacket{
			Op:        ARPReply,
			SenderMAC: a.nic.MAC,
			SenderIP:  a.nic.Addr,
			TargetMAC: pkt.SenderMAC,
			TargetIP:  pkt.SenderIP,
		}
		eth := &Ethernet{Dst: pkt.SenderMAC, Src: a.nic.MAC, EtherType: EtherTypeARP}
		a.nic.Send(eth.Serialize(reply.Serialize()))
	case ARPReply:
		waiters := a.pending[pkt.SenderIP]
		delete(a.pending, pkt.SenderIP)
		for _, w := range waiters {
			w(pkt.SenderMAC, true)
		}
	}
}
