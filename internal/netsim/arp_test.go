package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
)

func TestARPPacketRoundTrip(t *testing.T) {
	in := &ARPPacket{
		Op:        ARPRequest,
		SenderMAC: macA,
		SenderIP:  ipA,
		TargetIP:  ipB,
	}
	out, err := DecodeARP(in.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("decoded %+v, want %+v", out, in)
	}
}

func TestDecodeARPErrors(t *testing.T) {
	if _, err := DecodeARP(make([]byte, 10)); err == nil {
		t.Fatal("expected truncation error")
	}
	b := (&ARPPacket{Op: ARPRequest, SenderIP: ipA, TargetIP: ipB}).Serialize()
	b[0] = 9 // bogus hardware type
	if _, err := DecodeARP(b); err == nil {
		t.Fatal("expected hardware type error")
	}
}

// arpPair wires two NICs with ARP engines over a switch.
func arpPair(t *testing.T, sim *eventsim.Simulator) (*ARP, *ARP, *NIC, *NIC) {
	t.Helper()
	na := NewNIC(sim, "a", macA, ipA)
	nb := NewNIC(sim, "b", macB, ipB)
	sw := NewSwitch(sim, time.Microsecond)
	la := NewLink(sim, 100_000_000, 5*time.Microsecond)
	lb := NewLink(sim, 100_000_000, 5*time.Microsecond)
	na.Connect(la)
	sw.Connect(la)
	nb.Connect(lb)
	sw.Connect(lb)
	return NewARP(sim, na, nil), NewARP(sim, nb, nil), na, nb
}

func TestARPResolvesOverTheWire(t *testing.T) {
	sim := eventsim.New(81)
	aa, _, _, _ := arpPair(t, sim)

	var got MAC
	resolved := false
	aa.Resolve(ipB, func(m MAC, ok bool) {
		got, resolved = m, ok
	})
	sim.RunUntil(time.Second)
	if !resolved || got != macB {
		t.Fatalf("resolved=%v mac=%v", resolved, got)
	}
	// And the reply seeded the cache for instant re-resolution.
	if m, ok := aa.Lookup(ipB); !ok || m != macB {
		t.Fatal("cache not populated after reply")
	}
}

func TestARPOpportunisticLearning(t *testing.T) {
	sim := eventsim.New(82)
	aa, ab, _, _ := arpPair(t, sim)
	aa.Resolve(ipB, func(MAC, bool) {})
	sim.RunUntil(time.Second)
	// The responder learned the requester's mapping from the request.
	if m, ok := ab.Lookup(ipA); !ok || m != macA {
		t.Fatal("responder did not learn the sender mapping")
	}
}

func TestARPCoalescesConcurrentResolves(t *testing.T) {
	sim := eventsim.New(83)
	aa, _, na, _ := arpPair(t, sim)
	requests := 0
	na.AddTap(func(frame []byte, _ time.Duration, dir Direction) {
		if dir != DirOut {
			return
		}
		if eth, _, err := DecodeEthernet(frame); err == nil && eth.EtherType == EtherTypeARP {
			requests++
		}
	})
	done := 0
	for i := 0; i < 5; i++ {
		aa.Resolve(ipB, func(_ MAC, ok bool) {
			if ok {
				done++
			}
		})
	}
	sim.RunUntil(time.Second)
	if done != 5 {
		t.Fatalf("callbacks fired = %d, want 5", done)
	}
	if requests != 1 {
		t.Fatalf("wire requests = %d, want 1 (coalesced)", requests)
	}
}

func TestARPTimeout(t *testing.T) {
	sim := eventsim.New(84)
	// No responder: attach ARP to a NIC wired to a silent peer.
	na := NewNIC(sim, "a", macA, ipA)
	nb := NewNIC(sim, "b", macB, ipB)
	link := NewLink(sim, 0, 0)
	na.Connect(link)
	nb.Connect(link)
	nb.SetHandler(func([]byte) {}) // swallows everything
	aa := NewARP(sim, na, nil)
	aa.Timeout = 100 * time.Millisecond

	var ok = true
	fired := false
	aa.Resolve(netip.MustParseAddr("192.168.1.99"), func(_ MAC, o bool) { ok, fired = o, true })
	sim.RunUntil(time.Second)
	if !fired || ok {
		t.Fatalf("fired=%v ok=%v, want timeout failure", fired, ok)
	}
}

func TestARPPassthroughPreservesStack(t *testing.T) {
	sim := eventsim.New(85)
	na := NewNIC(sim, "a", macA, ipA)
	nb := NewNIC(sim, "b", macB, ipB)
	link := NewLink(sim, 0, 0)
	na.Connect(link)
	nb.Connect(link)

	var passed []byte
	NewARP(sim, nb, func(f []byte) { passed = f })
	frame := BuildTCP(macA, macB, ipA, ipB, 1, &TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN}, nil)
	na.Send(frame)
	sim.Run()
	if len(passed) == 0 {
		t.Fatal("non-ARP frame not passed through to the stack handler")
	}
}

func TestARPStaticInsert(t *testing.T) {
	sim := eventsim.New(86)
	na := NewNIC(sim, "a", macA, ipA)
	aa := NewARP(sim, na, nil) // not even connected: cache must suffice
	aa.Insert(ipB, macB)
	resolved := false
	aa.Resolve(ipB, func(m MAC, ok bool) { resolved = ok && m == macB })
	if !resolved {
		t.Fatal("static entry not used synchronously")
	}
}

// Property: ARP payload round-trips for arbitrary addresses and ops.
func TestQuickARPRoundTrip(t *testing.T) {
	f := func(op uint16, sm, tm [6]byte, sip, tip [4]byte) bool {
		in := &ARPPacket{
			Op:        op,
			SenderMAC: MAC(sm),
			SenderIP:  netip.AddrFrom4(sip),
			TargetMAC: MAC(tm),
			TargetIP:  netip.AddrFrom4(tip),
		}
		out, err := DecodeARP(in.Serialize())
		return err == nil && *out == *in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
