package netsim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

// fuzzSeedFrames builds the seed corpus for FuzzPacketParse: valid TCP and
// UDP frames (which pass every checksum and exercise the full decode path),
// plus systematic truncations and single-byte corruptions of each. Checked
// in as a function rather than testdata files so the corpus regenerates
// with the frame builders and cannot rot.
func fuzzSeedFrames() [][]byte {
	srcMAC := MAC{0x02, 0, 0, 0, 0, 1}
	dstMAC := MAC{0x02, 0, 0, 0, 0, 2}
	src := netip.MustParseAddr("192.168.1.10")
	dst := netip.MustParseAddr("192.168.1.20")

	tcp := BuildTCP(srcMAC, dstMAC, src, dst, 7,
		&TCP{SrcPort: 49152, DstPort: 80, Seq: 1000, Ack: 2000, Flags: FlagACK | FlagPSH, Window: 65535},
		[]byte("GET /probe HTTP/1.1\r\n\r\n"))
	syn := BuildTCP(srcMAC, dstMAC, src, dst, 1,
		&TCP{SrcPort: 49153, DstPort: 80, Seq: 1, Flags: FlagSYN, Window: 65535}, nil)
	udp := BuildUDP(srcMAC, dstMAC, src, dst, 9,
		&UDP{SrcPort: 40000, DstPort: 9001}, []byte("probe-10-1"))

	seeds := [][]byte{nil, {0}, tcp, syn, udp}
	for _, f := range [][]byte{tcp, udp} {
		for _, n := range []int{1, 13, 14, 33, 34, len(f) - 1} {
			if n >= 0 && n <= len(f) {
				seeds = append(seeds, append([]byte(nil), f[:n]...))
			}
		}
		for _, i := range []int{12, 14, 23, 34, len(f) - 1} {
			m := append([]byte(nil), f...)
			m[i] ^= 0xff
			seeds = append(seeds, m)
		}
	}
	return seeds
}

// checkParse runs the Packet.Parse invariants on one input: no panic (the
// fuzz harness catches those), a reused Packet gives the same outcome as a
// fresh one, and a successful parse yields consistent layer views into the
// original buffer.
func checkParse(t *testing.T, data []byte) {
	t.Helper()
	fresh := &Packet{}
	errFresh := fresh.Parse(data, time.Millisecond)

	// Reuse: a packet that previously parsed something else entirely must
	// reach the identical outcome (Parse resets all layer views).
	reused := &Packet{}
	_ = reused.Parse(fuzzReuseFrame, 0)
	errReused := reused.Parse(data, time.Millisecond)
	if (errFresh == nil) != (errReused == nil) {
		t.Fatalf("fresh Parse err=%v but reused Parse err=%v", errFresh, errReused)
	}

	if errFresh != nil {
		return
	}
	if fresh.Eth == nil {
		t.Fatal("successful parse without Ethernet layer")
	}
	if fresh.TCP != nil && fresh.UDP != nil {
		t.Fatal("packet cannot be both TCP and UDP")
	}
	if fresh.Payload != nil && len(data) > 0 {
		// The payload view must alias the input buffer, not a copy.
		end := len(data)
		if len(fresh.Payload) > end {
			t.Fatalf("payload longer than frame: %d > %d", len(fresh.Payload), end)
		}
	}
	if fresh.TCP != nil && reused.TCP != nil && *fresh.TCP != *reused.TCP {
		t.Fatalf("reused parse decoded different TCP header: %+v vs %+v", fresh.TCP, reused.TCP)
	}
	if !bytes.Equal(fresh.Payload, reused.Payload) {
		t.Fatal("reused parse decoded different payload")
	}
}

// fuzzReuseFrame is a valid frame used to dirty a Packet before re-parsing
// fuzz input into it.
var fuzzReuseFrame = BuildUDP(MAC{0x02, 0, 0, 0, 0, 3}, MAC{0x02, 0, 0, 0, 0, 4},
	netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), 1,
	&UDP{SrcPort: 1, DstPort: 2}, []byte("dirty"))

func FuzzPacketParse(f *testing.F) {
	for _, s := range fuzzSeedFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkParse(t, data)
	})
}

// TestPacketParseSeedCorpus replays the fuzz seed corpus as a plain test,
// so the regression coverage runs on every `go test` even without -fuzz.
func TestPacketParseSeedCorpus(t *testing.T) {
	for i, s := range fuzzSeedFrames() {
		s := s
		i := i
		t.Run(string(rune('a'+i%26))+"-seed", func(t *testing.T) {
			checkParse(t, s)
		})
	}
}

// TestPacketParseValidRoundTrip pins the happy path: the builder's frames
// must parse back to the headers they were built from.
func TestPacketParseValidRoundTrip(t *testing.T) {
	srcMAC := MAC{0x02, 0, 0, 0, 0, 1}
	dstMAC := MAC{0x02, 0, 0, 0, 0, 2}
	src := netip.MustParseAddr("192.168.1.10")
	dst := netip.MustParseAddr("192.168.1.20")
	hdr := &TCP{SrcPort: 49152, DstPort: 80, Seq: 42, Ack: 7, Flags: FlagACK, Window: 512}
	frame := BuildTCP(srcMAC, dstMAC, src, dst, 3, hdr, []byte("xyz"))
	p, err := Decode(frame, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.TCP == nil || *p.TCP != *hdr {
		t.Fatalf("TCP = %+v, want %+v", p.TCP, hdr)
	}
	if string(p.Payload) != "xyz" {
		t.Fatalf("payload = %q", p.Payload)
	}
}
