// Package netsim provides the simulated network substrate: binary packet
// codecs for Ethernet II, IPv4, TCP and UDP (the wire formats are real, so
// captured traffic can be written to pcap files and opened in Wireshark),
// plus hosts, full-duplex links and a store-and-forward switch driven by
// the eventsim virtual clock.
package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the address in the canonical colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// EtherType values used by the simulator.
const (
	EtherTypeIPv4 uint16 = 0x0800
)

// IP protocol numbers.
const (
	ProtoTCP byte = 6
	ProtoUDP byte = 17
)

// Common codec errors.
var (
	ErrTruncated = errors.New("netsim: truncated packet")
	ErrBadHeader = errors.New("netsim: malformed header")
)

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

const ethernetHeaderLen = 14

// put writes the 14-byte header into b[:ethernetHeaderLen].
func (e *Ethernet) put(b []byte) {
	copy(b[0:6], e.Dst[:])
	copy(b[6:12], e.Src[:])
	binary.BigEndian.PutUint16(b[12:14], e.EtherType)
}

// Serialize appends the header followed by payload and returns the frame.
func (e *Ethernet) Serialize(payload []byte) []byte {
	b := make([]byte, ethernetHeaderLen+len(payload))
	e.put(b)
	copy(b[ethernetHeaderLen:], payload)
	return b
}

// decode fills e from the front of b and returns the payload.
func (e *Ethernet) decode(b []byte) ([]byte, error) {
	if len(b) < ethernetHeaderLen {
		return nil, fmt.Errorf("%w: ethernet header needs %d bytes, have %d", ErrTruncated, ethernetHeaderLen, len(b))
	}
	e.EtherType = binary.BigEndian.Uint16(b[12:14])
	copy(e.Dst[:], b[0:6])
	copy(e.Src[:], b[6:12])
	return b[ethernetHeaderLen:], nil
}

// DecodeEthernet parses an Ethernet II header, returning it and the payload.
func DecodeEthernet(b []byte) (*Ethernet, []byte, error) {
	e := &Ethernet{}
	rest, err := e.decode(b)
	if err != nil {
		return nil, nil, err
	}
	return e, rest, nil
}

// IPv4 is an IPv4 header without options.
type IPv4 struct {
	TOS      byte
	ID       uint16
	Flags    byte // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      byte
	Protocol byte
	Src, Dst netip.Addr
}

const ipv4HeaderLen = 20

// put writes the 20-byte header (with computed checksum and total length
// for a payload of payloadLen bytes) into b[:ipv4HeaderLen].
func (ip *IPv4) put(b []byte, payloadLen int) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = ip.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(ipv4HeaderLen+payloadLen))
	binary.BigEndian.PutUint16(b[4:6], ip.ID)
	frag := uint16(ip.Flags)<<13 | ip.FragOff&0x1fff
	binary.BigEndian.PutUint16(b[6:8], frag)
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	b[8] = ttl
	b[9] = ip.Protocol
	b[10], b[11] = 0, 0
	src := ip.Src.As4()
	dst := ip.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	binary.BigEndian.PutUint16(b[10:12], Checksum(b[:ipv4HeaderLen]))
}

// Serialize appends the header (with computed checksum and total length)
// followed by payload.
func (ip *IPv4) Serialize(payload []byte) []byte {
	b := make([]byte, ipv4HeaderLen+len(payload))
	ip.put(b, len(payload))
	copy(b[ipv4HeaderLen:], payload)
	return b
}

// decode fills ip from the front of b and returns the payload. The header
// checksum is verified.
func (ip *IPv4) decode(b []byte) ([]byte, error) {
	if len(b) < ipv4HeaderLen {
		return nil, fmt.Errorf("%w: ipv4 header needs %d bytes, have %d", ErrTruncated, ipv4HeaderLen, len(b))
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("%w: not IPv4 (version %d)", ErrBadHeader, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return nil, fmt.Errorf("%w: bad IHL %d", ErrBadHeader, ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return nil, fmt.Errorf("%w: ipv4 checksum mismatch", ErrBadHeader)
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return nil, fmt.Errorf("%w: total length %d outside [%d,%d]", ErrBadHeader, total, ihl, len(b))
	}
	frag := binary.BigEndian.Uint16(b[6:8])
	ip.TOS = b[1]
	ip.ID = binary.BigEndian.Uint16(b[4:6])
	ip.Flags = byte(frag >> 13)
	ip.FragOff = frag & 0x1fff
	ip.TTL = b[8]
	ip.Protocol = b[9]
	ip.Src = netip.AddrFrom4([4]byte(b[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	return b[ihl:total], nil
}

// DecodeIPv4 parses an IPv4 header and returns it with its payload. The
// header checksum is verified.
func DecodeIPv4(b []byte) (*IPv4, []byte, error) {
	ip := &IPv4{}
	rest, err := ip.decode(b)
	if err != nil {
		return nil, nil, err
	}
	return ip, rest, nil
}

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// TCP is a TCP header without options.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte
	Window           uint16
}

const tcpHeaderLen = 20

// put writes the 20-byte header into b[:tcpHeaderLen] and stamps the
// pseudo-header checksum over all of b, whose tail must already hold the
// payload.
func (t *TCP) put(b []byte, src, dst netip.Addr) {
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = t.Flags
	win := t.Window
	if win == 0 {
		win = 65535
	}
	binary.BigEndian.PutUint16(b[14:16], win)
	b[16], b[17] = 0, 0
	b[18], b[19] = 0, 0
	binary.BigEndian.PutUint16(b[16:18], pseudoChecksum(src, dst, ProtoTCP, b))
}

// Serialize appends the header (with checksum over the IPv4 pseudo-header)
// followed by payload.
func (t *TCP) Serialize(src, dst netip.Addr, payload []byte) []byte {
	b := make([]byte, tcpHeaderLen+len(payload))
	copy(b[tcpHeaderLen:], payload)
	t.put(b, src, dst)
	return b
}

// decode fills t from the front of b, verifying the checksum against the
// given IPv4 endpoints, and returns the payload.
func (t *TCP) decode(src, dst netip.Addr, b []byte) ([]byte, error) {
	if len(b) < tcpHeaderLen {
		return nil, fmt.Errorf("%w: tcp header needs %d bytes, have %d", ErrTruncated, tcpHeaderLen, len(b))
	}
	off := int(b[12]>>4) * 4
	if off < tcpHeaderLen || len(b) < off {
		return nil, fmt.Errorf("%w: bad tcp data offset %d", ErrBadHeader, off)
	}
	if pseudoChecksum(src, dst, ProtoTCP, b) != 0 {
		return nil, fmt.Errorf("%w: tcp checksum mismatch", ErrBadHeader)
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	return b[off:], nil
}

// DecodeTCP parses a TCP header, verifying the checksum against the given
// IPv4 endpoints, and returns the header and payload.
func DecodeTCP(src, dst netip.Addr, b []byte) (*TCP, []byte, error) {
	t := &TCP{}
	rest, err := t.decode(src, dst, b)
	if err != nil {
		return nil, nil, err
	}
	return t, rest, nil
}

// FlagString renders the flag bits as in tcpdump (e.g. "SA" for SYN+ACK).
func (t *TCP) FlagString() string {
	s := ""
	if t.Flags&FlagSYN != 0 {
		s += "S"
	}
	if t.Flags&FlagFIN != 0 {
		s += "F"
	}
	if t.Flags&FlagRST != 0 {
		s += "R"
	}
	if t.Flags&FlagPSH != 0 {
		s += "P"
	}
	if t.Flags&FlagACK != 0 {
		s += "A"
	}
	if s == "" {
		s = "."
	}
	return s
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
}

const udpHeaderLen = 8

// put writes the 8-byte header (with length and pseudo-header checksum)
// into b[:udpHeaderLen]; the tail of b must already hold the payload.
func (u *UDP) put(b []byte, src, dst netip.Addr) {
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(b)))
	b[6], b[7] = 0, 0
	sum := pseudoChecksum(src, dst, ProtoUDP, b)
	if sum == 0 {
		sum = 0xffff // RFC 768: transmitted zero checksum means "none"
	}
	binary.BigEndian.PutUint16(b[6:8], sum)
}

// Serialize appends the header (with length and pseudo-header checksum)
// followed by payload.
func (u *UDP) Serialize(src, dst netip.Addr, payload []byte) []byte {
	b := make([]byte, udpHeaderLen+len(payload))
	copy(b[udpHeaderLen:], payload)
	u.put(b, src, dst)
	return b
}

// decode fills u from the front of b, verifying length and checksum.
func (u *UDP) decode(src, dst netip.Addr, b []byte) ([]byte, error) {
	if len(b) < udpHeaderLen {
		return nil, fmt.Errorf("%w: udp header needs %d bytes, have %d", ErrTruncated, udpHeaderLen, len(b))
	}
	length := int(binary.BigEndian.Uint16(b[4:6]))
	if length < udpHeaderLen || length > len(b) {
		return nil, fmt.Errorf("%w: udp length %d outside [%d,%d]", ErrBadHeader, length, udpHeaderLen, len(b))
	}
	if binary.BigEndian.Uint16(b[6:8]) != 0 && pseudoChecksum(src, dst, ProtoUDP, b[:length]) != 0 {
		return nil, fmt.Errorf("%w: udp checksum mismatch", ErrBadHeader)
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	return b[udpHeaderLen:length], nil
}

// DecodeUDP parses a UDP header, verifying length and checksum.
func DecodeUDP(src, dst netip.Addr, b []byte) (*UDP, []byte, error) {
	u := &UDP{}
	rest, err := u.decode(src, dst, b)
	if err != nil {
		return nil, nil, err
	}
	return u, rest, nil
}

// Checksum computes the RFC 1071 Internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header. segment must already contain a zero (or original)
// checksum field; verifying a correct segment yields 0.
func pseudoChecksum(src, dst netip.Addr, proto byte, segment []byte) uint16 {
	var sum uint32
	s4, d4 := src.As4(), dst.As4()
	sum += uint32(binary.BigEndian.Uint16(s4[0:2])) + uint32(binary.BigEndian.Uint16(s4[2:4]))
	sum += uint32(binary.BigEndian.Uint16(d4[0:2])) + uint32(binary.BigEndian.Uint16(d4[2:4]))
	sum += uint32(proto)
	sum += uint32(len(segment))
	b := segment
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
