package netsim

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = MAC{0x02, 0, 0, 0, 0, 0x0b}
	ipA  = netip.MustParseAddr("192.168.1.10")
	ipB  = netip.MustParseAddr("192.168.1.20")
)

func TestEthernetRoundTrip(t *testing.T) {
	in := &Ethernet{Dst: macB, Src: macA, EtherType: EtherTypeIPv4}
	payload := []byte("hello world")
	frame := in.Serialize(payload)
	out, rest, err := DecodeEthernet(frame)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("header = %+v, want %+v", out, in)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %q, want %q", rest, payload)
	}
}

func TestEthernetTruncated(t *testing.T) {
	if _, _, err := DecodeEthernet(make([]byte, 13)); err == nil {
		t.Fatal("expected error for 13-byte frame")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	in := &IPv4{TOS: 0x10, ID: 4242, TTL: 64, Protocol: ProtoTCP, Src: ipA, Dst: ipB}
	payload := []byte("segment bytes")
	b := in.Serialize(payload)
	out, rest, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Protocol != in.Protocol || out.Src != in.Src || out.Dst != in.Dst || out.TOS != in.TOS {
		t.Fatalf("header = %+v, want %+v", out, in)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %q, want %q", rest, payload)
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	in := &IPv4{ID: 1, Protocol: ProtoUDP, Src: ipA, Dst: ipB}
	b := in.Serialize(nil)
	b[8]++ // corrupt TTL
	if _, _, err := DecodeIPv4(b); err == nil {
		t.Fatal("expected checksum error after corruption")
	}
}

func TestIPv4RejectsVersion6(t *testing.T) {
	b := (&IPv4{Protocol: ProtoTCP, Src: ipA, Dst: ipB}).Serialize(nil)
	b[0] = 0x65
	if _, _, err := DecodeIPv4(b); err == nil {
		t.Fatal("expected version error")
	}
}

func TestIPv4TotalLengthBounds(t *testing.T) {
	b := (&IPv4{Protocol: ProtoTCP, Src: ipA, Dst: ipB}).Serialize([]byte("abc"))
	if _, _, err := DecodeIPv4(b[:20]); err == nil {
		t.Fatal("expected error when total length exceeds buffer")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	in := &TCP{SrcPort: 49152, DstPort: 80, Seq: 1<<31 + 5, Ack: 99, Flags: FlagPSH | FlagACK, Window: 1024}
	payload := []byte("GET / HTTP/1.1\r\n\r\n")
	b := in.Serialize(ipA, ipB, payload)
	out, rest, err := DecodeTCP(ipA, ipB, b)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("header = %+v, want %+v", out, in)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %q, want %q", rest, payload)
	}
}

func TestTCPChecksumBindsEndpoints(t *testing.T) {
	in := &TCP{SrcPort: 1, DstPort: 2, Window: 1}
	b := in.Serialize(ipA, ipB, nil)
	// Decoding against a different address must fail: checksum covers the
	// pseudo-header. (Swapping src/dst alone is sum-commutative, so use a
	// genuinely different endpoint.)
	other := netip.MustParseAddr("10.9.9.9")
	if _, _, err := DecodeTCP(ipA, other, b); err == nil {
		t.Fatal("expected checksum error with different endpoint")
	}
}

func TestTCPCorruptPayloadDetected(t *testing.T) {
	in := &TCP{SrcPort: 5, DstPort: 6, Window: 10}
	b := in.Serialize(ipA, ipB, []byte("data"))
	b[len(b)-1] ^= 0xff
	if _, _, err := DecodeTCP(ipA, ipB, b); err == nil {
		t.Fatal("expected checksum error after payload corruption")
	}
}

func TestTCPFlagString(t *testing.T) {
	cases := []struct {
		flags byte
		want  string
	}{
		{FlagSYN, "S"},
		{FlagSYN | FlagACK, "SA"},
		{FlagPSH | FlagACK, "PA"},
		{FlagFIN | FlagACK, "FA"},
		{FlagRST, "R"},
		{0, "."},
	}
	for _, c := range cases {
		if got := (&TCP{Flags: c.flags}).FlagString(); got != c.want {
			t.Errorf("FlagString(%08b) = %q, want %q", c.flags, got, c.want)
		}
	}
}

func TestUDPRoundTrip(t *testing.T) {
	in := &UDP{SrcPort: 5353, DstPort: 53}
	payload := []byte{1, 2, 3, 4, 5}
	b := in.Serialize(ipA, ipB, payload)
	out, rest, err := DecodeUDP(ipA, ipB, b)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("header = %+v, want %+v", out, in)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %v, want %v", rest, payload)
	}
}

func TestUDPEmptyPayload(t *testing.T) {
	b := (&UDP{SrcPort: 1, DstPort: 2}).Serialize(ipA, ipB, nil)
	_, rest, err := DecodeUDP(ipA, ipB, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("payload = %v, want empty", rest)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic RFC 1071 example: checksum of these words is 0xddf2.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Verifying data with its own checksum appended must yield zero.
	data := []byte{0xab, 0xcd, 0xef}
	sum := Checksum(data)
	full := append(append([]byte{}, data...), byte(0), byte(0))
	// Put checksum where a header would carry it: simplest check is that
	// Checksum(data with sum folded in) == 0 when appended as a 16-bit word
	// aligned; emulate by padding data to even length first.
	padded := append(append([]byte{}, data...), 0)
	sum = Checksum(padded)
	full = append(padded, byte(sum>>8), byte(sum))
	if got := Checksum(full); got != 0 {
		t.Fatalf("self-verifying checksum = %#04x, want 0", got)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Fatalf("String = %q", got)
	}
}

func TestDecodeFullStack(t *testing.T) {
	payload := []byte("ping")
	frame := BuildTCP(macA, macB, ipA, ipB, 7, &TCP{SrcPort: 1234, DstPort: 80, Seq: 1, Flags: FlagPSH | FlagACK}, payload)
	p, err := Decode(frame, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p.Eth == nil || p.IP == nil || p.TCP == nil || p.UDP != nil {
		t.Fatalf("layer set wrong: %+v", p)
	}
	if p.TCP.SrcPort != 1234 || p.TCP.DstPort != 80 {
		t.Fatalf("ports = %d>%d", p.TCP.SrcPort, p.TCP.DstPort)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload = %q", p.Payload)
	}
	if p.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestDecodeUDPStack(t *testing.T) {
	frame := BuildUDP(macA, macB, ipA, ipB, 9, &UDP{SrcPort: 999, DstPort: 7}, []byte("echo"))
	p, err := Decode(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.UDP == nil || p.TCP != nil {
		t.Fatal("expected UDP layer only")
	}
	if string(p.Payload) != "echo" {
		t.Fatalf("payload = %q", p.Payload)
	}
}

func TestDecodeNonIPFrame(t *testing.T) {
	e := &Ethernet{Dst: macB, Src: macA, EtherType: 0x0806} // ARP
	p, err := Decode(e.Serialize([]byte{0, 1}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.IP != nil {
		t.Fatal("unexpected IP layer on ARP frame")
	}
	if p.String() == "" {
		t.Fatal("String() empty for non-IP frame")
	}
}

// Property: TCP serialize/decode round-trips for arbitrary headers and
// payloads.
func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, payload []byte) bool {
		in := &TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: FlagACK, Window: 512}
		b := in.Serialize(ipA, ipB, payload)
		out, rest, err := DecodeTCP(ipA, ipB, b)
		if err != nil {
			return false
		}
		return *out == *in && bytes.Equal(rest, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: UDP round-trips for arbitrary payloads.
func TestQuickUDPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		in := &UDP{SrcPort: sp, DstPort: dp}
		b := in.Serialize(ipA, ipB, payload)
		out, rest, err := DecodeUDP(ipA, ipB, b)
		if err != nil {
			return false
		}
		return *out == *in && bytes.Equal(rest, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-bit corruption anywhere in an IPv4 header is detected.
func TestQuickIPv4CorruptionDetected(t *testing.T) {
	f := func(id uint16, bit uint8) bool {
		in := &IPv4{ID: id, Protocol: ProtoTCP, Src: ipA, Dst: ipB}
		b := in.Serialize(nil)
		pos := int(bit) % (ipv4HeaderLen * 8)
		b[pos/8] ^= 1 << (pos % 8)
		_, _, err := DecodeIPv4(b)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: full Ethernet/IP/TCP frames decode back to the same 5-tuple.
func TestQuickFullStackRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		frame := BuildTCP(macA, macB, ipA, ipB, 1, &TCP{SrcPort: sp, DstPort: dp, Flags: FlagACK}, payload)
		p, err := Decode(frame, 0)
		if err != nil || p.TCP == nil {
			return false
		}
		return p.TCP.SrcPort == sp && p.TCP.DstPort == dp &&
			p.IP.Src == ipA && p.IP.Dst == ipB && bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
