package netsim

import (
	"fmt"
	"net/netip"
	"time"
)

// Packet is a fully decoded frame as seen on a link, together with the
// virtual capture timestamp assigned by the NIC that observed it.
type Packet struct {
	Time time.Duration // virtual time the frame passed the observation point
	Raw  []byte        // the frame bytes as transmitted

	Eth *Ethernet
	IP  *IPv4
	TCP *TCP // nil unless IP.Protocol == ProtoTCP
	UDP *UDP // nil unless IP.Protocol == ProtoUDP

	Payload []byte // transport payload (nil for non-IP frames)
}

// Decode parses raw as Ethernet/IPv4/{TCP,UDP}. Unknown upper layers leave
// the corresponding fields nil; only structural errors are returned.
func Decode(raw []byte, at time.Duration) (*Packet, error) {
	p := &Packet{Time: at, Raw: raw}
	eth, rest, err := DecodeEthernet(raw)
	if err != nil {
		return nil, err
	}
	p.Eth = eth
	if eth.EtherType != EtherTypeIPv4 {
		return p, nil
	}
	ip, rest, err := DecodeIPv4(rest)
	if err != nil {
		return nil, err
	}
	p.IP = ip
	switch ip.Protocol {
	case ProtoTCP:
		t, payload, err := DecodeTCP(ip.Src, ip.Dst, rest)
		if err != nil {
			return nil, err
		}
		p.TCP = t
		p.Payload = payload
	case ProtoUDP:
		u, payload, err := DecodeUDP(ip.Src, ip.Dst, rest)
		if err != nil {
			return nil, err
		}
		p.UDP = u
		p.Payload = payload
	}
	return p, nil
}

// String renders the packet one-line, tcpdump style.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		return fmt.Sprintf("%v IP %v.%d > %v.%d: Flags [%s], seq %d, ack %d, length %d",
			p.Time, p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			p.TCP.FlagString(), p.TCP.Seq, p.TCP.Ack, len(p.Payload))
	case p.UDP != nil:
		return fmt.Sprintf("%v IP %v.%d > %v.%d: UDP, length %d",
			p.Time, p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.Payload))
	case p.IP != nil:
		return fmt.Sprintf("%v IP %v > %v: proto %d", p.Time, p.IP.Src, p.IP.Dst, p.IP.Protocol)
	default:
		return fmt.Sprintf("%v %v > %v ethertype 0x%04x", p.Time, p.Eth.Src, p.Eth.Dst, p.Eth.EtherType)
	}
}

// BuildTCP assembles a complete Ethernet/IPv4/TCP frame.
func BuildTCP(srcMAC, dstMAC MAC, src, dst netip.Addr, ipID uint16, hdr *TCP, payload []byte) []byte {
	seg := hdr.Serialize(src, dst, payload)
	ip := &IPv4{ID: ipID, Protocol: ProtoTCP, Src: src, Dst: dst}
	eth := &Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	return eth.Serialize(ip.Serialize(seg))
}

// BuildUDP assembles a complete Ethernet/IPv4/UDP frame.
func BuildUDP(srcMAC, dstMAC MAC, src, dst netip.Addr, ipID uint16, hdr *UDP, payload []byte) []byte {
	seg := hdr.Serialize(src, dst, payload)
	ip := &IPv4{ID: ipID, Protocol: ProtoUDP, Src: src, Dst: dst}
	eth := &Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	return eth.Serialize(ip.Serialize(seg))
}
