package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/browsermetric/browsermetric/internal/arena"
)

// Packet is a fully decoded frame as seen on a link, together with the
// virtual capture timestamp assigned by the NIC that observed it.
//
// The layer pointers aim into storage embedded in the Packet itself, so
// decoding with Parse allocates nothing beyond the Packet. A Packet may be
// reused across frames by calling Parse again; the previous parse's layer
// views are overwritten.
type Packet struct {
	Time time.Duration // virtual time the frame passed the observation point
	Raw  []byte        // the frame bytes as transmitted

	Eth *Ethernet
	IP  *IPv4
	TCP *TCP // nil unless IP.Protocol == ProtoTCP
	UDP *UDP // nil unless IP.Protocol == ProtoUDP

	Payload []byte // transport payload (nil for non-IP frames)

	eth Ethernet
	ip  IPv4
	tcp TCP
	udp UDP
}

// Parse decodes raw as Ethernet/IPv4/{TCP,UDP} into p, reusing p's
// embedded header storage. Unknown upper layers leave the corresponding
// fields nil; only structural errors are returned.
func (p *Packet) Parse(raw []byte, at time.Duration) error {
	p.Time, p.Raw = at, raw
	p.Eth, p.IP, p.TCP, p.UDP, p.Payload = nil, nil, nil, nil, nil
	rest, err := p.eth.decode(raw)
	if err != nil {
		return err
	}
	p.Eth = &p.eth
	if p.eth.EtherType != EtherTypeIPv4 {
		return nil
	}
	rest, err = p.ip.decode(rest)
	if err != nil {
		return err
	}
	p.IP = &p.ip
	switch p.ip.Protocol {
	case ProtoTCP:
		payload, err := p.tcp.decode(p.ip.Src, p.ip.Dst, rest)
		if err != nil {
			return err
		}
		p.TCP = &p.tcp
		p.Payload = payload
	case ProtoUDP:
		payload, err := p.udp.decode(p.ip.Src, p.ip.Dst, rest)
		if err != nil {
			return err
		}
		p.UDP = &p.udp
		p.Payload = payload
	}
	return nil
}

// Decode parses raw as Ethernet/IPv4/{TCP,UDP} into a fresh Packet.
func Decode(raw []byte, at time.Duration) (*Packet, error) {
	p := &Packet{}
	if err := p.Parse(raw, at); err != nil {
		return nil, err
	}
	return p, nil
}

// String renders the packet one-line, tcpdump style.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		return fmt.Sprintf("%v IP %v.%d > %v.%d: Flags [%s], seq %d, ack %d, length %d",
			p.Time, p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort,
			p.TCP.FlagString(), p.TCP.Seq, p.TCP.Ack, len(p.Payload))
	case p.UDP != nil:
		return fmt.Sprintf("%v IP %v.%d > %v.%d: UDP, length %d",
			p.Time, p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.Payload))
	case p.IP != nil:
		return fmt.Sprintf("%v IP %v > %v: proto %d", p.Time, p.IP.Src, p.IP.Dst, p.IP.Protocol)
	default:
		return fmt.Sprintf("%v %v > %v ethertype 0x%04x", p.Time, p.Eth.Src, p.Eth.Dst, p.Eth.EtherType)
	}
}

// BuildTCP assembles a complete Ethernet/IPv4/TCP frame in one allocation.
func BuildTCP(srcMAC, dstMAC MAC, src, dst netip.Addr, ipID uint16, hdr *TCP, payload []byte) []byte {
	return BuildTCPArena(nil, srcMAC, dstMAC, src, dst, ipID, hdr, payload)
}

// BuildTCPArena is BuildTCP carving the frame from an arena instead of the
// heap (nil arena falls back to the heap). The frame is valid until the
// arena's next Reset; every byte is written, so recycled slab memory needs
// no zeroing.
func BuildTCPArena(a *arena.Arena, srcMAC, dstMAC MAC, src, dst netip.Addr, ipID uint16, hdr *TCP, payload []byte) []byte {
	b := a.Bytes(ethernetHeaderLen + ipv4HeaderLen + tcpHeaderLen + len(payload))
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	eth.put(b)
	seg := b[ethernetHeaderLen+ipv4HeaderLen:]
	copy(seg[tcpHeaderLen:], payload)
	hdr.put(seg, src, dst)
	ip := IPv4{ID: ipID, Protocol: ProtoTCP, Src: src, Dst: dst}
	ip.put(b[ethernetHeaderLen:], tcpHeaderLen+len(payload))
	return b
}

// BuildUDP assembles a complete Ethernet/IPv4/UDP frame in one allocation.
func BuildUDP(srcMAC, dstMAC MAC, src, dst netip.Addr, ipID uint16, hdr *UDP, payload []byte) []byte {
	return BuildUDPArena(nil, srcMAC, dstMAC, src, dst, ipID, hdr, payload)
}

// BuildUDPArena is BuildUDP carving the frame from an arena instead of the
// heap (nil arena falls back to the heap).
func BuildUDPArena(a *arena.Arena, srcMAC, dstMAC MAC, src, dst netip.Addr, ipID uint16, hdr *UDP, payload []byte) []byte {
	b := a.Bytes(ethernetHeaderLen + ipv4HeaderLen + udpHeaderLen + len(payload))
	eth := Ethernet{Dst: dstMAC, Src: srcMAC, EtherType: EtherTypeIPv4}
	eth.put(b)
	seg := b[ethernetHeaderLen+ipv4HeaderLen:]
	copy(seg[udpHeaderLen:], payload)
	hdr.put(seg, src, dst)
	ip := IPv4{ID: ipID, Protocol: ProtoUDP, Src: src, Dst: dst}
	ip.put(b[ethernetHeaderLen:], udpHeaderLen+len(payload))
	return b
}
