package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// Direction of a frame relative to the tapped interface.
type Direction int

const (
	DirOut Direction = iota // frame leaving the interface
	DirIn                   // frame arriving at the interface
)

func (d Direction) String() string {
	if d == DirOut {
		return "out"
	}
	return "in"
}

// TapFunc observes a frame crossing an interface. It is called with the
// raw frame, the virtual timestamp and the direction. Taps see every frame
// (like a promiscuous capture on the host) and must not mutate it.
type TapFunc func(frame []byte, at time.Duration, dir Direction)

// Device consumes frames delivered by a Port.
type Device interface {
	Receive(port *Port, frame []byte)
}

// Verdict is an Impairer's decision for one frame: whether it survives,
// how much extra delay it picks up on top of serialization + propagation,
// and whether a duplicate copy is delivered as well.
type Verdict struct {
	// Drop discards the frame (it occupies the wire, then evaporates).
	Drop bool
	// Delay is added to the frame's delivery time. A delay large enough to
	// let later frames arrive first is how reordering reaches receivers.
	Delay time.Duration
	// Dup delivers a second copy of the frame, Delay+DupDelay after the
	// unimpaired delivery time. Frames are immutable once sent, so both
	// copies may share the same buffer.
	Dup      bool
	DupDelay time.Duration
}

// Impairer judges every frame entering a link direction. side identifies
// the transmitting end (0 or 1), size is the frame length in bytes, now is
// the virtual send time and deliverAt the unimpaired delivery time (after
// serialization and propagation). Implementations must be deterministic
// functions of their own seeded state: the simulator calls Judge in a
// reproducible order, which is what keeps impaired runs bit-stable.
type Impairer interface {
	Judge(side, size int, now, deliverAt time.Duration) Verdict
}

// Link is a full-duplex point-to-point wire with finite bandwidth and
// propagation delay, e.g. a 100 Mbps Ethernet cable. Each direction has an
// independent transmit queue.
type Link struct {
	sim *eventsim.Simulator
	// BitsPerSecond is the line rate; zero means infinitely fast.
	BitsPerSecond int64
	// Propagation is the one-way signal latency.
	Propagation time.Duration
	// LossRate drops each frame independently with this probability
	// (deterministic given the simulator seed). The paper's testbed is
	// loss-free; loss injection exists for the UDP loss-measurement
	// extension and for failure testing of the TCP substrate.
	LossRate float64
	// Dropped counts frames lost to LossRate.
	Dropped int
	// Metrics, when non-nil, counts frames and bytes crossing the link
	// (wire_frames, wire_bytes, wire_frames_dropped).
	Metrics *obs.Metrics
	// Impair, when non-nil, judges every frame after the serialization
	// point: loss, extra delay (jitter, queueing, reorder holds) and
	// duplication. Nil means the pristine wire the paper's testbed used —
	// the hot path then takes exactly the pre-impairment code path.
	Impair Impairer
	ports  [2]*Port
}

// NewLink creates a link; attach both ends with Attach before use.
func NewLink(sim *eventsim.Simulator, bitsPerSecond int64, propagation time.Duration) *Link {
	return &Link{sim: sim, BitsPerSecond: bitsPerSecond, Propagation: propagation}
}

// Attach connects dev to the next free end of the link and returns its Port.
// A link has exactly two ends; attaching a third device panics.
func (l *Link) Attach(dev Device) *Port {
	for i := range l.ports {
		if l.ports[i] == nil {
			p := &Port{link: l, side: i, dev: dev}
			p.deliver = p.deliverFrame // cached once; a method value allocates
			l.ports[i] = p
			return p
		}
	}
	panic("netsim: link already has two devices attached")
}

// txTime returns the serialization delay for n bytes at the line rate.
func (l *Link) txTime(n int) time.Duration {
	if l.BitsPerSecond <= 0 {
		return 0
	}
	bits := int64(n) * 8
	return time.Duration(bits * int64(time.Second) / l.BitsPerSecond)
}

// Port is one end of a Link.
type Port struct {
	link      *Link
	side      int
	dev       Device
	deliver   func(frame []byte) // bound deliverFrame, for ScheduleBytes
	busyUntil time.Duration
}

// deliverFrame hands an arrived frame to the attached device.
func (p *Port) deliverFrame(frame []byte) { p.dev.Receive(p, frame) }

// Send transmits frame toward the opposite end of the link, honoring the
// line rate (frames queue behind earlier transmissions) and propagation
// delay. The frame slice is not copied; callers must not reuse it.
func (p *Port) Send(frame []byte) {
	l := p.link
	other := l.ports[1-p.side]
	if other == nil {
		panic("netsim: send on a half-connected link")
	}
	now := l.sim.Now()
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	done := start + l.txTime(len(frame))
	p.busyUntil = done
	l.Metrics.Add("wire_frames", 1)
	l.Metrics.Add("wire_bytes", int64(len(frame)))
	if l.LossRate > 0 && l.sim.Rand().Float64() < l.LossRate {
		l.Dropped++
		l.Metrics.Add("wire_frames_dropped", 1)
		return // the frame occupies the wire, then evaporates
	}
	delay := done + l.Propagation - now
	if l.Impair != nil {
		v := l.Impair.Judge(p.side, len(frame), now, now+delay)
		if v.Drop {
			l.Dropped++
			l.Metrics.Add("wire_frames_dropped", 1)
			return
		}
		if v.Dup {
			l.sim.ScheduleBytes(delay+v.Delay+v.DupDelay, other.deliver, frame)
		}
		delay += v.Delay
	}
	l.sim.ScheduleBytes(delay, other.deliver, frame)
}

// NIC is a host network interface: it has a MAC and IPv4 address, delivers
// received frames to a handler, and exposes capture taps equivalent to
// running tcpdump/WinDump on the host.
type NIC struct {
	sim  *eventsim.Simulator
	Name string
	MAC  MAC
	Addr netip.Addr

	// EgressDelay postpones every outgoing frame by a fixed amount after
	// the capture tap has stamped it. The testbed sets 50 ms on the server
	// NIC to reproduce the paper's simulated Internet delay (which, being
	// applied at the network layer, also delays SYN-ACKs — the mechanism
	// behind handshake-inflated measurements). Constant delay preserves
	// frame ordering.
	EgressDelay time.Duration

	port    *Port
	egress  func(frame []byte) // bound port.Send, for ScheduleBytes
	handler func(frame []byte)
	taps    []TapFunc
}

// NewNIC creates an interface with the given addressing. Connect it to a
// link with Connect and set the inbound handler with SetHandler.
func NewNIC(sim *eventsim.Simulator, name string, mac MAC, addr netip.Addr) *NIC {
	return &NIC{sim: sim, Name: name, MAC: mac, Addr: addr}
}

// Connect attaches the NIC to one end of link.
func (n *NIC) Connect(link *Link) {
	n.port = link.Attach(n)
	n.egress = n.port.Send
}

// SetHandler installs the function invoked for every inbound frame.
func (n *NIC) SetHandler(h func(frame []byte)) { n.handler = h }

// AddTap registers a capture tap; taps fire for both directions.
func (n *NIC) AddTap(t TapFunc) { n.taps = append(n.taps, t) }

// Send transmits an Ethernet frame out the wire. Taps observe it with the
// current virtual timestamp, exactly like a capture running on this host.
//
// The frame is immutable from this point on: taps and receivers may retain
// it (the capture layer records it without copying), so callers must hand
// over a freshly built buffer and never write to it again.
func (n *NIC) Send(frame []byte) {
	if n.port == nil {
		panic(fmt.Sprintf("netsim: NIC %s is not connected", n.Name))
	}
	for _, t := range n.taps {
		t(frame, n.sim.Now(), DirOut)
	}
	if n.EgressDelay > 0 {
		n.sim.ScheduleBytes(n.EgressDelay, n.egress, frame)
		return
	}
	n.port.Send(frame)
}

// Receive implements Device.
func (n *NIC) Receive(_ *Port, frame []byte) {
	for _, t := range n.taps {
		t(frame, n.sim.Now(), DirIn)
	}
	if n.handler != nil {
		n.handler(frame)
	}
}

// Switch is a learning store-and-forward Ethernet switch. It buffers a
// whole frame (upstream link already models serialization), applies a
// fixed forwarding latency, then transmits on the learned port or floods.
type Switch struct {
	sim *eventsim.Simulator
	// ForwardingDelay models lookup plus store-and-forward latency.
	ForwardingDelay time.Duration
	ports           []*Port
	fwd             []func(frame []byte) // per-port bound forward, for ScheduleBytes
	table           map[MAC]*Port
}

// NewSwitch creates a switch with the given forwarding latency.
func NewSwitch(sim *eventsim.Simulator, forwardingDelay time.Duration) *Switch {
	return &Switch{sim: sim, ForwardingDelay: forwardingDelay, table: make(map[MAC]*Port)}
}

// Connect attaches the switch to one end of link.
func (s *Switch) Connect(link *Link) {
	p := link.Attach(s)
	s.ports = append(s.ports, p)
	s.fwd = append(s.fwd, func(frame []byte) { s.forward(p, frame) })
}

// Receive implements Device: learn the source, then forward after the
// forwarding delay.
func (s *Switch) Receive(in *Port, frame []byte) {
	if len(frame) < ethernetHeaderLen {
		return // runt frame: drop silently, as hardware would
	}
	var src MAC
	copy(src[:], frame[6:12])
	s.table[src] = in
	for i, p := range s.ports {
		if p == in {
			s.sim.ScheduleBytes(s.ForwardingDelay, s.fwd[i], frame)
			return
		}
	}
}

// forward transmits a buffered frame on the learned port, or floods.
func (s *Switch) forward(in *Port, frame []byte) {
	var dst MAC
	copy(dst[:], frame[0:6])
	if out, ok := s.table[dst]; ok && dst != Broadcast {
		if out != in {
			out.Send(frame)
		}
		return
	}
	for _, p := range s.ports { // flood
		if p != in {
			p.Send(frame)
		}
	}
}
