package netsim

import (
	"net/netip"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
)

// buildPair wires nicA <-> switch <-> nicB over 100 Mbps links.
func buildPair(sim *eventsim.Simulator, prop, fwd time.Duration) (*NIC, *NIC) {
	a := NewNIC(sim, "eth0", macA, ipA)
	b := NewNIC(sim, "eth0", macB, ipB)
	sw := NewSwitch(sim, fwd)
	la := NewLink(sim, 100_000_000, prop)
	lb := NewLink(sim, 100_000_000, prop)
	a.Connect(la)
	sw.Connect(la)
	b.Connect(lb)
	sw.Connect(lb)
	return a, b
}

func TestLinkDelivery(t *testing.T) {
	sim := eventsim.New(1)
	a := NewNIC(sim, "a", macA, ipA)
	b := NewNIC(sim, "b", macB, ipB)
	l := NewLink(sim, 100_000_000, 10*time.Microsecond)
	a.Connect(l)
	b.Connect(l)

	var gotAt time.Duration
	var got []byte
	b.SetHandler(func(f []byte) { gotAt = sim.Now(); got = f })

	frame := make([]byte, 1250) // 10000 bits -> 100us at 100 Mbps
	a.Send(frame)
	sim.Run()

	want := 100*time.Microsecond + 10*time.Microsecond
	if gotAt != want {
		t.Fatalf("delivered at %v, want %v", gotAt, want)
	}
	if len(got) != 1250 {
		t.Fatalf("frame length = %d", len(got))
	}
}

func TestLinkSerializationQueuing(t *testing.T) {
	sim := eventsim.New(1)
	a := NewNIC(sim, "a", macA, ipA)
	b := NewNIC(sim, "b", macB, ipB)
	l := NewLink(sim, 100_000_000, 0)
	a.Connect(l)
	b.Connect(l)

	var arrivals []time.Duration
	b.SetHandler(func([]byte) { arrivals = append(arrivals, sim.Now()) })

	// Two back-to-back 1250-byte frames: second must queue behind first.
	a.Send(make([]byte, 1250))
	a.Send(make([]byte, 1250))
	sim.Run()

	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[0] != 100*time.Microsecond || arrivals[1] != 200*time.Microsecond {
		t.Fatalf("arrivals = %v, want [100us 200us]", arrivals)
	}
}

func TestLinkInfiniteBandwidth(t *testing.T) {
	sim := eventsim.New(1)
	a := NewNIC(sim, "a", macA, ipA)
	b := NewNIC(sim, "b", macB, ipB)
	l := NewLink(sim, 0, time.Millisecond)
	a.Connect(l)
	b.Connect(l)
	var at time.Duration
	b.SetHandler(func([]byte) { at = sim.Now() })
	a.Send(make([]byte, 1_000_000))
	sim.Run()
	if at != time.Millisecond {
		t.Fatalf("delivered at %v, want 1ms (no serialization delay)", at)
	}
}

func TestLinkFullDuplex(t *testing.T) {
	sim := eventsim.New(1)
	a := NewNIC(sim, "a", macA, ipA)
	b := NewNIC(sim, "b", macB, ipB)
	l := NewLink(sim, 100_000_000, 0)
	a.Connect(l)
	b.Connect(l)
	var atA, atB time.Duration
	a.SetHandler(func([]byte) { atA = sim.Now() })
	b.SetHandler(func([]byte) { atB = sim.Now() })
	// Simultaneous sends in both directions must not queue behind each other.
	a.Send(make([]byte, 1250))
	b.Send(make([]byte, 1250))
	sim.Run()
	if atA != 100*time.Microsecond || atB != 100*time.Microsecond {
		t.Fatalf("full duplex broken: a<-%v b<-%v", atA, atB)
	}
}

func TestSwitchFloodsThenLearns(t *testing.T) {
	sim := eventsim.New(1)
	// Three NICs on one switch.
	a := NewNIC(sim, "a", macA, ipA)
	b := NewNIC(sim, "b", macB, ipB)
	macC := MAC{0x02, 0, 0, 0, 0, 0x0c}
	c := NewNIC(sim, "c", macC, netip.MustParseAddr("192.168.1.30"))
	sw := NewSwitch(sim, 0)
	for _, n := range []*NIC{a, b, c} {
		l := NewLink(sim, 0, 0)
		n.Connect(l)
		sw.Connect(l)
	}
	bGot, cGot := 0, 0
	b.SetHandler(func([]byte) { bGot++ })
	c.SetHandler(func([]byte) { cGot++ })

	// Unknown destination: floods to both b and c.
	eth := &Ethernet{Dst: macB, Src: macA, EtherType: EtherTypeIPv4}
	a.Send(eth.Serialize(nil))
	sim.Run()
	if bGot != 1 || cGot != 1 {
		t.Fatalf("flood: b=%d c=%d, want 1,1", bGot, cGot)
	}

	// b replies; switch learns macB and macA. Next a->b frame is unicast.
	reply := &Ethernet{Dst: macA, Src: macB, EtherType: EtherTypeIPv4}
	b.Send(reply.Serialize(nil))
	sim.Run()
	a.Send(eth.Serialize(nil))
	sim.Run()
	if bGot != 2 || cGot != 1 {
		t.Fatalf("learned: b=%d c=%d, want 2,1", bGot, cGot)
	}
}

func TestSwitchForwardingDelay(t *testing.T) {
	sim := eventsim.New(1)
	a, b := buildPair(sim, 0, 5*time.Microsecond)
	var at time.Duration
	b.SetHandler(func([]byte) { at = sim.Now() })
	frame := BuildTCP(macA, macB, ipA, ipB, 1, &TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN}, nil)
	a.Send(frame)
	sim.Run()
	// two link serializations (54B frame => 4.32us each) + 5us switch delay
	tx := time.Duration(int64(len(frame)) * 8 * int64(time.Second) / 100_000_000)
	want := 2*tx + 5*time.Microsecond
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSwitchDropsRuntFrames(t *testing.T) {
	sim := eventsim.New(1)
	a, b := buildPair(sim, 0, 0)
	got := 0
	b.SetHandler(func([]byte) { got++ })
	a.Send([]byte{1, 2, 3}) // runt: shorter than an Ethernet header
	sim.Run()
	if got != 0 {
		t.Fatalf("runt frame was forwarded")
	}
}

func TestTapsSeeBothDirections(t *testing.T) {
	sim := eventsim.New(1)
	a, b := buildPair(sim, 0, 0)
	var dirs []Direction
	a.AddTap(func(_ []byte, _ time.Duration, d Direction) { dirs = append(dirs, d) })
	b.SetHandler(func(f []byte) {
		b.Send(BuildTCP(macB, macA, ipB, ipA, 1, &TCP{SrcPort: 2, DstPort: 1, Flags: FlagACK}, nil))
	})
	a.Send(BuildTCP(macA, macB, ipA, ipB, 1, &TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN}, nil))
	sim.Run()
	if len(dirs) != 2 || dirs[0] != DirOut || dirs[1] != DirIn {
		t.Fatalf("tap directions = %v, want [out in]", dirs)
	}
}

func TestTapTimestampBeforeWireDelay(t *testing.T) {
	sim := eventsim.New(1)
	a, _ := buildPair(sim, time.Millisecond, time.Millisecond)
	var outAt time.Duration = -1
	a.AddTap(func(_ []byte, at time.Duration, d Direction) {
		if d == DirOut {
			outAt = at
		}
	})
	sim.Advance(7 * time.Millisecond)
	a.Send(BuildTCP(macA, macB, ipA, ipB, 1, &TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN}, nil))
	sim.Run()
	if outAt != 7*time.Millisecond {
		t.Fatalf("out tap at %v, want 7ms (capture stamps at send, not arrival)", outAt)
	}
}

func TestDirectionString(t *testing.T) {
	if DirOut.String() != "out" || DirIn.String() != "in" {
		t.Fatal("Direction.String broken")
	}
}

func TestSendOnDisconnectedNICPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim := eventsim.New(1)
	NewNIC(sim, "x", macA, ipA).Send([]byte{1})
}

func TestLinkThirdAttachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim := eventsim.New(1)
	l := NewLink(sim, 0, 0)
	l.Attach(NewNIC(sim, "1", macA, ipA))
	l.Attach(NewNIC(sim, "2", macB, ipB))
	l.Attach(NewNIC(sim, "3", MAC{}, ipA))
}
