package netsim

import (
	"net/netip"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
)

// TrafficGen injects Poisson cross traffic from a NIC: UDP datagrams of a
// fixed size at an exponential inter-arrival rate. The paper's testbed
// was kept free of cross traffic ("we also ensure that the network was
// free of cross traffic, packet loss, and retransmissions"); this
// generator exists to study what that control excludes — queueing delay
// and genuine network jitter competing with browser-side jitter.
type TrafficGen struct {
	sim *eventsim.Simulator
	nic *NIC

	// Rate is the mean datagram rate per second.
	Rate float64
	// Size is the datagram payload size in bytes.
	Size int
	// Dst / DstMAC / ports address the sink.
	Dst     netip.Addr
	DstMAC  MAC
	SrcPort uint16
	DstPort uint16

	// Sent counts generated datagrams.
	Sent    int
	running bool
	ipID    uint16

	tick    func()
	payload []byte
}

// NewTrafficGen builds a generator sending from nic to the given sink.
func NewTrafficGen(sim *eventsim.Simulator, nic *NIC, dst netip.Addr, dstMAC MAC, rate float64, size int) *TrafficGen {
	g := &TrafficGen{
		sim: sim, nic: nic,
		Rate: rate, Size: size,
		Dst: dst, DstMAC: dstMAC,
		SrcPort: 50001, DstPort: 50002,
	}
	g.tick = g.fire // cached once; a method value allocates
	return g
}

// Start begins generation; traffic flows until Stop.
func (g *TrafficGen) Start() {
	if g.running {
		return
	}
	g.running = true
	g.scheduleNext()
}

// Stop halts generation after any already-scheduled datagram.
func (g *TrafficGen) Stop() { g.running = false }

func (g *TrafficGen) scheduleNext() {
	if !g.running || g.Rate <= 0 {
		return
	}
	// Exponential inter-arrival: -ln(U)/rate.
	gap := time.Duration(g.sim.Rand().ExpFloat64() / g.Rate * float64(time.Second))
	g.sim.Schedule(gap, g.tick)
}

// fire emits one datagram and schedules the next. BuildUDP copies the
// payload into the frame, so the zeroed payload buffer is reused.
func (g *TrafficGen) fire() {
	if !g.running {
		return
	}
	g.ipID++
	if len(g.payload) != g.Size {
		g.payload = make([]byte, g.Size)
	}
	hdr := UDP{SrcPort: g.SrcPort, DstPort: g.DstPort}
	frame := BuildUDP(g.nic.MAC, g.DstMAC, g.nic.Addr, g.Dst, g.ipID,
		&hdr, g.payload)
	g.nic.Send(frame)
	g.Sent++
	g.scheduleNext()
}
