package netsim

import (
	"net/netip"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
)

// TrafficGen injects Poisson cross traffic from a NIC: UDP datagrams of a
// fixed size at an exponential inter-arrival rate. The paper's testbed
// was kept free of cross traffic ("we also ensure that the network was
// free of cross traffic, packet loss, and retransmissions"); this
// generator exists to study what that control excludes — queueing delay
// and genuine network jitter competing with browser-side jitter.
type TrafficGen struct {
	sim *eventsim.Simulator
	nic *NIC

	// Rate is the mean datagram rate per second.
	Rate float64
	// Size is the datagram payload size in bytes.
	Size int
	// Dst / DstMAC / ports address the sink.
	Dst     netip.Addr
	DstMAC  MAC
	SrcPort uint16
	DstPort uint16

	// Sent counts generated datagrams.
	Sent    int
	running bool
	ipID    uint16
}

// NewTrafficGen builds a generator sending from nic to the given sink.
func NewTrafficGen(sim *eventsim.Simulator, nic *NIC, dst netip.Addr, dstMAC MAC, rate float64, size int) *TrafficGen {
	return &TrafficGen{
		sim: sim, nic: nic,
		Rate: rate, Size: size,
		Dst: dst, DstMAC: dstMAC,
		SrcPort: 50001, DstPort: 50002,
	}
}

// Start begins generation; traffic flows until Stop.
func (g *TrafficGen) Start() {
	if g.running {
		return
	}
	g.running = true
	g.scheduleNext()
}

// Stop halts generation after any already-scheduled datagram.
func (g *TrafficGen) Stop() { g.running = false }

func (g *TrafficGen) scheduleNext() {
	if !g.running || g.Rate <= 0 {
		return
	}
	// Exponential inter-arrival: -ln(U)/rate.
	gap := time.Duration(g.sim.Rand().ExpFloat64() / g.Rate * float64(time.Second))
	g.sim.Schedule(gap, func() {
		if !g.running {
			return
		}
		g.ipID++
		payload := make([]byte, g.Size)
		frame := BuildUDP(g.nic.MAC, g.DstMAC, g.nic.Addr, g.Dst, g.ipID,
			&UDP{SrcPort: g.SrcPort, DstPort: g.DstPort}, payload)
		g.nic.Send(frame)
		g.Sent++
		g.scheduleNext()
	})
}
