package netsim

import (
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
)

func TestTrafficGenRateAndSize(t *testing.T) {
	sim := eventsim.New(71)
	src := NewNIC(sim, "src", macA, ipA)
	dst := NewNIC(sim, "dst", macB, ipB)
	link := NewLink(sim, 1_000_000_000, 0)
	src.Connect(link)
	dst.Connect(link)

	var got int
	var sizes []int
	dst.SetHandler(func(f []byte) {
		got++
		p, err := Decode(f, sim.Now())
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(p.Payload))
	})

	g := NewTrafficGen(sim, src, ipB, macB, 1000, 256)
	g.Start()
	sim.Advance(time.Second)
	g.Stop()
	sim.Run()

	// Poisson with mean 1000/s over 1s: expect within a wide band.
	if got < 800 || got > 1200 {
		t.Fatalf("received %d datagrams, want ~1000", got)
	}
	if g.Sent != got {
		t.Fatalf("sent %d received %d on a lossless link", g.Sent, got)
	}
	for _, s := range sizes[:5] {
		if s != 256 {
			t.Fatalf("payload size = %d, want 256", s)
		}
	}
}

func TestTrafficGenDeterministic(t *testing.T) {
	run := func() int {
		sim := eventsim.New(5)
		src := NewNIC(sim, "src", macA, ipA)
		dst := NewNIC(sim, "dst", macB, ipB)
		link := NewLink(sim, 0, 0)
		src.Connect(link)
		dst.Connect(link)
		dst.SetHandler(func([]byte) {})
		g := NewTrafficGen(sim, src, ipB, macB, 500, 100)
		g.Start()
		sim.Advance(500 * time.Millisecond)
		g.Stop()
		return g.Sent
	}
	if run() != run() {
		t.Fatal("traffic generation not deterministic per seed")
	}
}

func TestTrafficGenDoubleStart(t *testing.T) {
	sim := eventsim.New(9)
	src := NewNIC(sim, "src", macA, ipA)
	dst := NewNIC(sim, "dst", macB, ipB)
	link := NewLink(sim, 0, 0)
	src.Connect(link)
	dst.Connect(link)
	dst.SetHandler(func([]byte) {})
	g := NewTrafficGen(sim, src, ipB, macB, 1000, 64)
	g.Start()
	g.Start() // must not double the rate
	sim.Advance(200 * time.Millisecond)
	g.Stop()
	if g.Sent > 320 { // ~200 expected at 1000/s over 0.2s; doubled would be ~400
		t.Fatalf("sent %d datagrams in 200ms: double-started?", g.Sent)
	}
}

func TestTrafficGenZeroRateIsIdle(t *testing.T) {
	sim := eventsim.New(10)
	src := NewNIC(sim, "src", macA, ipA)
	dst := NewNIC(sim, "dst", macB, ipB)
	link := NewLink(sim, 0, 0)
	src.Connect(link)
	dst.Connect(link)
	g := NewTrafficGen(sim, src, ipB, macB, 0, 64)
	g.Start()
	sim.Advance(time.Second)
	if g.Sent != 0 {
		t.Fatalf("zero-rate generator sent %d", g.Sent)
	}
}
