package obs

import "testing"

// TestInternedLabelZeroAlloc is the obs-layer allocation regression guard
// for metrics labels: after the first sighting, rendering the same
// (name, labels) combination must return the interned string without
// allocating, no matter how often the hot path formats it.
func TestInternedLabelZeroAlloc(t *testing.T) {
	warm := func() string {
		return L("probe_rtt_ms", "method", "xhr", "browser", "chrome")
	}
	first := warm()
	allocs := testing.AllocsPerRun(200, func() {
		if warm() != first {
			t.Fatal("interned label changed")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm L() allocated %.2f/op, want 0", allocs)
	}
}

// TestInternReturnsStableString checks the table maps equal content to the
// identical string, including through the byte-rendered fast path.
func TestInternReturnsStableString(t *testing.T) {
	a := Intern("stage_send_ms")
	b := Intern("stage_" + "send_ms")
	if a != b {
		t.Fatalf("Intern not idempotent: %q vs %q", a, b)
	}
	l1 := L("m", "k", "v")
	l2 := L("m", "k", "v")
	if l1 != l2 {
		t.Fatalf("L not stable: %q vs %q", l1, l2)
	}
}

// TestTracerSpanLowAlloc guards the span slab: recording a span with a
// handful of attributes must cost far less than one allocation per span
// (one slab chunk per slabChunk spans plus amortized index growth).
func TestTracerSpanLowAlloc(t *testing.T) {
	tr := NewTracer()
	// Warm up so the spans index has grown past its first doublings.
	for i := 0; i < 256; i++ {
		tr.Begin("warm").Done()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Begin("probe")
		s.Int("round", 1)
		s.Bool("handshake", true)
		s.Done()
	})
	if allocs > 0.25 {
		t.Fatalf("traced span allocated %.3f/op, want amortized < 0.25", allocs)
	}
}

// TestSpanSlabPointersStable verifies the slab never invalidates
// previously returned *Span values when it starts a new chunk.
func TestSpanSlabPointersStable(t *testing.T) {
	tr := NewTracer()
	var spans []*Span
	for i := 0; i < slabChunk*3+5; i++ {
		spans = append(spans, tr.Point("p").Int("i", int64(i)))
	}
	for i, s := range spans {
		if got := s.GetInt("i"); got != int64(i) {
			t.Fatalf("span %d corrupted: attr i = %d", i, got)
		}
	}
}
