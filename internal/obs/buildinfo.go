package obs

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"
)

// RegisterBuildInfo sets the standard bm_build_info gauge on the
// registry: value 1, labelled with the module version (or VCS revision
// when built from a checkout) and the Go toolchain version. Every
// long-running binary registers it so a scrape identifies exactly what
// is serving.
func RegisterBuildInfo(m *Metrics) {
	if !m.Enabled() {
		return
	}
	m.SetHelp("bm_build_info", "Build metadata carried in labels; the value is always 1.")
	m.Set(L("bm_build_info", "version", buildVersion(), "go_version", runtime.Version()), 1)
}

// buildVersion digs a human-usable version out of the build info: the
// module version when released, the VCS revision when built from a
// checkout, "unknown" otherwise.
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			rev := s.Value[:12]
			if v == "" || v == "(devel)" {
				return rev
			}
			return v + "+" + rev
		}
	}
	if v == "" {
		return "unknown"
	}
	return v
}

// Readiness is a latch for the /readyz probe: services mark it once
// their first useful unit of work (first fan-in, first uplink ack,
// first aggregator publish) has completed.
type Readiness struct {
	ready atomic.Bool
}

// MarkReady latches the probe to ready; it never goes back.
func (r *Readiness) MarkReady() { r.ready.Store(true) }

// Ready reports the latch state. A nil Readiness is always ready, so
// binaries without a warm-up phase can share the wiring.
func (r *Readiness) Ready() bool { return r == nil || r.ready.Load() }

// ReadyzRoute builds the /readyz ops route: 503 until ready() reports
// true, 200 "ready" after. Distinct from /healthz (pure liveness, always
// 200 while the process serves): a load balancer drains on /readyz
// without the process being restarted for it.
func ReadyzRoute(ready func() bool) Route {
	return Route{
		Pattern: "/readyz",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if ready == nil || ready() {
				_, _ = w.Write([]byte("ready\n"))
				return
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("not ready\n"))
		}),
	}
}
