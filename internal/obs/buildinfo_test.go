package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRegisterBuildInfo(t *testing.T) {
	m := NewMetrics()
	RegisterBuildInfo(m)
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# HELP bm_build_info") || !strings.Contains(out, "# TYPE bm_build_info gauge") {
		t.Fatalf("exposition missing bm_build_info family:\n%s", out)
	}
	if !strings.Contains(out, `go_version="go`) || !strings.Contains(out, `version="`) {
		t.Fatalf("bm_build_info labels missing:\n%s", out)
	}
	if !strings.Contains(out, "} 1\n") {
		t.Fatalf("bm_build_info value is not 1:\n%s", out)
	}
	if missing := m.FamiliesMissingHelp(); len(missing) != 0 {
		t.Fatalf("families missing help: %v", missing)
	}
	RegisterBuildInfo(nil) // nil registry is a no-op
}

func TestReadyzRoute(t *testing.T) {
	var r Readiness
	rt := ReadyzRoute(r.Ready)
	if rt.Pattern != "/readyz" {
		t.Fatalf("pattern = %q", rt.Pattern)
	}
	rec := httptest.NewRecorder()
	rt.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("before MarkReady: status = %d", rec.Code)
	}
	r.MarkReady()
	rec = httptest.NewRecorder()
	rt.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ready") {
		t.Fatalf("after MarkReady: status = %d body = %q", rec.Code, rec.Body.String())
	}
	// nil ready func and nil *Readiness both mean "always ready".
	rec = httptest.NewRecorder()
	ReadyzRoute(nil).Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil ready fn: status = %d", rec.Code)
	}
	var nilR *Readiness
	if !nilR.Ready() {
		t.Fatal("nil Readiness not ready")
	}
}
