package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Thread is one row in an exported trace: a tid plus the spans drawn on
// it. The study exporter maps each cell to a thread so a whole study
// renders as one waterfall per cell.
type Thread struct {
	ID    int
	Name  string
	Spans []*Span
}

// traceEvent is one entry of the Chrome trace_event JSON array
// (the subset of the format chrome://tracing and Perfetto both read:
// "X" complete events and "M" metadata records). Timestamps and
// durations are microseconds.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace renders the threads as Chrome trace_event JSON
// ({"traceEvents":[...]}) loadable in chrome://tracing or Perfetto.
// All timestamps are virtual simulator time, so the export is as
// deterministic as the simulation itself. Spans still open at export
// time are emitted as instant events with an "open":true arg.
func WriteChromeTrace(w io.Writer, threads []Thread) error {
	events := make([]traceEvent, 0, 16)
	for _, th := range threads {
		if th.Name != "" {
			events = append(events, traceEvent{
				Name:  "thread_name",
				Phase: "M",
				PID:   1,
				TID:   th.ID,
				Args:  map[string]any{"name": th.Name},
			})
		}
		for _, s := range th.Spans {
			ev := traceEvent{
				Name: s.Name,
				PID:  1,
				TID:  th.ID,
				TS:   usec(s.Start),
				Args: attrArgs(s.Attrs),
			}
			switch {
			case s.Open():
				ev.Phase = "i"
				ev.Scope = "t"
				if ev.Args == nil {
					ev.Args = map[string]any{}
				}
				ev.Args["open"] = true
			case s.Start == s.End:
				ev.Phase = "i"
				ev.Scope = "t"
			default:
				d := usec(s.End - s.Start)
				ev.Phase = "X"
				ev.Dur = &d
			}
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// attrArgs converts span attributes to trace args. Durations become
// millisecond floats with a _ms suffix so they read naturally in the
// trace viewer's detail pane.
func attrArgs(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	args := make(map[string]any, len(attrs))
	for _, a := range attrs {
		switch v := a.Value.(type) {
		case time.Duration:
			args[a.Key+"_ms"] = float64(v) / float64(time.Millisecond)
		case string, bool, int64, float64:
			args[a.Key] = v
		default:
			args[a.Key] = fmt.Sprint(v)
		}
	}
	return args
}
