package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultBuckets are the fixed histogram bucket upper bounds, in
// milliseconds. They cover the dynamic range the testbed produces: from
// sub-10 µs socket-path costs through the ~15.6 ms Windows clock granule
// up to multi-second cell wall times. The final implicit bucket is +Inf.
var DefaultBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000,
}

// Histogram is a fixed-bucket histogram over float64 observations
// (milliseconds by convention). Bucket counts are cumulative-free: each
// count covers (prevBound, bound]; observations above the last bound land
// in the overflow bucket.
type Histogram struct {
	// Bounds are the bucket upper bounds; Counts has len(Bounds)+1
	// entries, the last being the overflow (+Inf) bucket.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
}

func newHistogram() *Histogram {
	return &Histogram{
		Bounds: DefaultBuckets,
		Counts: make([]uint64, len(DefaultBuckets)+1),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
}

func (h *Histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
	h.Count++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the mean observation (zero for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

func (h *Histogram) merge(o *Histogram) {
	for i, c := range o.Counts {
		if i < len(h.Counts) {
			h.Counts[i] += c
		}
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Metrics is a registry of named counters, gauges and fixed-bucket
// histograms. All methods are safe for concurrent use, and a nil *Metrics
// is the disabled registry: every method is an allocation-free no-op, so
// instrumentation can stay unconditional on hot paths.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
	sketches map[string]*Sketch
	help     map[string]string
}

// NewMetrics returns an empty enabled registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
		sketches: make(map[string]*Sketch),
		help:     make(map[string]string),
	}
}

// intern is the process-wide canonical-string table behind L and Intern.
// Keys repeat heavily (one per logical series), so the table stays small
// while hot-path lookups stop allocating: the rendered key lives in a
// stack buffer and the map lookup uses the compiler's zero-copy
// map[string(bytes)] form; only the first sighting of a series copies it
// to the heap.
var (
	internMu sync.RWMutex
	interned = make(map[string]string)
)

// Intern returns the canonical copy of s, storing it on first sight.
func Intern(s string) string {
	internMu.RLock()
	v, ok := interned[s]
	internMu.RUnlock()
	if ok {
		return v
	}
	internMu.Lock()
	if v, ok = interned[s]; !ok {
		interned[s] = s
		v = s
	}
	internMu.Unlock()
	return v
}

// internBytes is Intern for a rendered key still in its scratch buffer;
// the string copy happens only on a miss.
func internBytes(b []byte) string {
	internMu.RLock()
	v, ok := interned[string(b)]
	internMu.RUnlock()
	if ok {
		return v
	}
	s := string(b)
	internMu.Lock()
	if v, ok = interned[s]; !ok {
		interned[s] = s
		v = s
	}
	internMu.Unlock()
	return v
}

// lMaxPairs bounds the inline sort buffer in L; longer label sets take a
// (rare, allocating) fallback path.
const lMaxPairs = 8

// L builds a canonical series key: a family name plus label pairs
// rendered in Prometheus form with the label names sorted, so the same
// logical series always maps to the same registry key regardless of
// argument order. kv alternates name, value. Values are escaped at
// exposition time, not here. The returned string is interned: repeat
// calls for the same series allocate nothing, so L is safe to call
// directly on hot paths.
func L(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	n := len(kv) / 2
	if n > lMaxPairs {
		return internBytes(lSlow(name, kv))
	}
	var pairs [lMaxPairs][2]string
	for i := 0; i < n; i++ {
		pairs[i] = [2]string{kv[2*i], kv[2*i+1]}
	}
	// Insertion sort by label name: n is tiny and this stays inline.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && pairs[j][0] < pairs[j-1][0]; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	var buf [128]byte
	b := buf[:0]
	b = append(b, name...)
	b = append(b, '{')
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, pairs[i][0]...)
		b = append(b, '=', '"')
		b = append(b, pairs[i][1]...)
		b = append(b, '"')
	}
	b = append(b, '}')
	return internBytes(b)
}

// lSlow renders a key with an unbounded pair count.
func lSlow(name string, kv []string) []byte {
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b []byte
	b = append(b, name...)
	b = append(b, '{')
	for i, p := range pairs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, p.k...)
		b = append(b, '=', '"')
		b = append(b, p.v...)
		b = append(b, '"')
	}
	b = append(b, '}')
	return b
}

// SetHelp registers Prometheus HELP text for a metric family (the series
// name without labels). The exposition writer emits it once per family.
func (m *Metrics) SetHelp(family, help string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.help[family] = help
	m.mu.Unlock()
}

// Enabled reports whether the registry records anything.
func (m *Metrics) Enabled() bool { return m != nil }

// Add increments the named counter by delta.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Counter returns the current value of a counter.
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Set sets the named gauge.
func (m *Metrics) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Gauge returns the current value of a gauge.
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Observe records one observation into the named histogram (created on
// first use with DefaultBuckets).
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = newHistogram()
		m.hists[name] = h
	}
	h.observe(v)
	m.mu.Unlock()
}

// ObserveDur records a duration observation in milliseconds.
func (m *Metrics) ObserveDur(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.Observe(name, float64(d)/float64(time.Millisecond))
}

// ObserveSketch records one observation into the named streaming
// quantile sketch (created on first use with DefaultSketchTargets). The
// sketch is the bounded-memory histogram backend for long-running
// wall-clock services: it answers p50/p95/p99 over millions of samples
// without storing them.
func (m *Metrics) ObserveSketch(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	s := m.sketches[name]
	if s == nil {
		s = NewSketch()
		m.sketches[name] = s
	}
	s.Observe(v)
	m.mu.Unlock()
}

// SketchDur records a duration observation in milliseconds into the
// named sketch.
func (m *Metrics) SketchDur(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.ObserveSketch(name, float64(d)/float64(time.Millisecond))
}

// SketchQuantile returns the named sketch's estimate for quantile q
// (NaN when the sketch is absent or empty).
func (m *Metrics) SketchQuantile(name string, q float64) float64 {
	if m == nil {
		return math.NaN()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sketches[name]
	if s == nil {
		return math.NaN()
	}
	return s.Quantile(q)
}

// SketchCount returns the observation count of the named sketch.
func (m *Metrics) SketchCount(name string) uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.sketches[name]
	if s == nil {
		return 0
	}
	return s.Count()
}

// Hist returns a copy of the named histogram, or nil.
func (m *Metrics) Hist(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[name]
	if h == nil {
		return nil
	}
	cp := *h
	cp.Counts = append([]uint64(nil), h.Counts...)
	return &cp
}

// Merge folds another registry into this one: counters and histogram
// buckets add, gauges take the other's value. Counts are commutative;
// histogram Sum is a float accumulation, so callers wanting byte-identical
// snapshots must merge in a fixed order (the study scheduler merges cells
// in index order, not completion order, for exactly this reason).
func (m *Metrics) Merge(o *Metrics) {
	if m == nil || o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range o.counters {
		m.counters[k] += v
	}
	for k, v := range o.gauges {
		m.gauges[k] = v
	}
	for k, oh := range o.hists {
		h := m.hists[k]
		if h == nil {
			h = newHistogram()
			m.hists[k] = h
		}
		h.merge(oh)
	}
	for k, os := range o.sketches {
		s := m.sketches[k]
		if s == nil {
			s = NewSketch(os.targets...)
			m.sketches[k] = s
		}
		s.Merge(os)
	}
	for k, v := range o.help {
		if _, ok := m.help[k]; !ok {
			m.help[k] = v
		}
	}
}

// FamiliesMissingHelp returns the sorted metric family names present in
// the registry (counters, gauges, histograms and sketches, with label
// sets stripped) that have no SetHelp text. Package test suites assert
// this is empty, so WritePrometheus output never ships HELP-less series.
func (m *Metrics) FamiliesMissingHelp() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	missing := map[string]struct{}{}
	check := func(key string) {
		fam := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			fam = key[:i]
		}
		if _, ok := m.help[fam]; !ok {
			missing[fam] = struct{}{}
		}
	}
	for k := range m.counters {
		check(k)
	}
	for k := range m.gauges {
		check(k)
	}
	for k := range m.hists {
		check(k)
	}
	for k := range m.sketches {
		check(k)
	}
	return sortedKeys(missing)
}

// snapshot is the export form of a registry; maps marshal with sorted
// keys, so both writers are deterministic for deterministic contents.
type snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]histSnapshot `json:"histograms"`
	// Sketches is only populated by wall-clock registries; the map stays
	// nil otherwise so the virtual-time exports of PR 1/2 remain
	// byte-identical.
	Sketches map[string]sketchSnapshot `json:"sketches,omitempty"`
}

type sketchSnapshot struct {
	Count     uint64          `json:"count"`
	Sum       float64         `json:"sum"`
	Min       float64         `json:"min"`
	Max       float64         `json:"max"`
	Quantiles []quantileValue `json:"quantiles"`
}

type quantileValue struct {
	Q float64 `json:"q"`
	V float64 `json:"v"`
}

type histSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Mean    float64      `json:"mean"`
	Buckets []bucketEdge `json:"buckets"`
}

type bucketEdge struct {
	LE    float64 `json:"le"` // +Inf encodes as the JSON string "+Inf"
	Count uint64  `json:"count"`
}

func (b bucketEdge) MarshalJSON() ([]byte, error) {
	le := "null"
	if !math.IsInf(b.LE, 1) {
		le = fmt.Sprintf("%g", b.LE)
	} else {
		le = `"+Inf"`
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

func (m *Metrics) snapshot() snapshot {
	snap := snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histSnapshot{},
	}
	if m == nil {
		return snap
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		snap.Counters[k] = v
	}
	for k, v := range m.gauges {
		snap.Gauges[k] = v
	}
	for k, h := range m.hists {
		hs := histSnapshot{Count: h.Count, Sum: h.Sum, Mean: h.Mean()}
		if h.Count > 0 {
			hs.Min, hs.Max = h.Min, h.Max
		}
		for i, c := range h.Counts {
			if c == 0 {
				continue // only occupied buckets; keeps snapshots readable
			}
			le := math.Inf(1)
			if i < len(h.Bounds) {
				le = h.Bounds[i]
			}
			hs.Buckets = append(hs.Buckets, bucketEdge{LE: le, Count: c})
		}
		snap.Histograms[k] = hs
	}
	for k, s := range m.sketches {
		if snap.Sketches == nil {
			snap.Sketches = map[string]sketchSnapshot{}
		}
		ss := sketchSnapshot{Count: s.Count(), Sum: s.Sum()}
		if s.Count() > 0 {
			// Quantiles of an empty sketch are NaN, which JSON cannot
			// carry; an empty sketch snapshots as count=0 with none.
			ss.Min, ss.Max = s.Min(), s.Max()
			for _, t := range s.Targets() {
				ss.Quantiles = append(ss.Quantiles, quantileValue{Q: t.Quantile, V: s.Quantile(t.Quantile)})
			}
		}
		snap.Sketches[k] = ss
	}
	return snap
}

// WriteJSON writes the registry as an indented JSON snapshot with sorted
// keys.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.snapshot())
}

// WriteText writes a human-readable snapshot: counters, gauges, then
// histograms, each section sorted by name.
func (m *Metrics) WriteText(w io.Writer) error {
	snap := m.snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# counters\n")
	for _, k := range sortedKeys(snap.Counters) {
		p("%s %d\n", k, snap.Counters[k])
	}
	p("# gauges\n")
	for _, k := range sortedKeys(snap.Gauges) {
		p("%s %g\n", k, snap.Gauges[k])
	}
	p("# histograms (ms)\n")
	for _, k := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[k]
		p("%s count=%d sum=%.4f mean=%.4f min=%.4f max=%.4f\n", k, h.Count, h.Sum, h.Mean, h.Min, h.Max)
		for _, b := range h.Buckets {
			if math.IsInf(b.LE, 1) {
				p("  le=+Inf %d\n", b.Count)
			} else {
				p("  le=%g %d\n", b.LE, b.Count)
			}
		}
	}
	// Wall-clock registries only; absent in virtual-time snapshots so the
	// sim's text exports stay byte-identical.
	if len(snap.Sketches) > 0 {
		p("# sketches (ms)\n")
		for _, k := range sortedKeys(snap.Sketches) {
			s := snap.Sketches[k]
			p("%s count=%d sum=%.4f min=%.4f max=%.4f\n", k, s.Count, s.Sum, s.Min, s.Max)
			for _, qv := range s.Quantiles {
				p("  q%g %.4f\n", qv.Q, qv.V)
			}
		}
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
