package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer()
	var now time.Duration
	tr.Bind(func() time.Duration { return now })

	now = 10 * time.Millisecond
	s := tr.Begin("round").Int("round", 2).Bool("new_conn", true)
	if !s.Open() {
		t.Fatal("span should be open")
	}
	if s.Duration() != 0 {
		t.Fatal("open span duration should be zero")
	}
	now = 35 * time.Millisecond
	s.Done()
	if s.Open() {
		t.Fatal("span should be closed")
	}
	if got := s.Duration(); got != 25*time.Millisecond {
		t.Fatalf("duration = %v, want 25ms", got)
	}
	s.Done() // second Done must not move End
	if got := s.Duration(); got != 25*time.Millisecond {
		t.Fatalf("duration after double Done = %v", got)
	}

	if got := s.GetInt("round"); got != 2 {
		t.Fatalf("GetInt(round) = %d", got)
	}
	if v, ok := s.Get("new_conn"); !ok || v != true {
		t.Fatalf("Get(new_conn) = %v, %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) should report absent")
	}
}

func TestTracerPointAndFind(t *testing.T) {
	tr := NewTracer()
	var now time.Duration
	tr.Bind(func() time.Duration { return now })

	now = time.Second
	tr.Point("clock-read").Str("at", "tBs").Dur("err", -3*time.Millisecond)
	now = 2 * time.Second
	tr.Point("clock-read").Str("at", "tBr")
	tr.Begin("request").Done()

	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("Spans() len = %d, want 3", got)
	}
	if got := len(tr.Find("clock-read")); got != 2 {
		t.Fatalf("Find(clock-read) len = %d, want 2", got)
	}
	s := tr.FindOne("clock-read", Attr{Key: "at", Value: "tBs"})
	if s == nil || s.Start != time.Second {
		t.Fatalf("FindOne tBs = %+v", s)
	}
	if got := s.GetDur("err"); got != -3*time.Millisecond {
		t.Fatalf("GetDur(err) = %v", got)
	}
	if tr.FindOne("clock-read", Attr{Key: "at", Value: "nope"}) != nil {
		t.Fatal("FindOne should miss on wrong attr value")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	s := tr.Begin("x").Str("k", "v").Int("n", 1).Bool("b", true).Dur("d", time.Second)
	s.Done()
	if s != nil || tr.Point("y") != nil || tr.Spans() != nil || tr.Find("x") != nil || tr.FindOne("x") != nil {
		t.Fatal("nil tracer methods must return nil")
	}
	if s.Open() || s.Duration() != 0 || s.GetDur("d") != 0 || s.GetInt("n") != 0 {
		t.Fatal("nil span accessors must return zero values")
	}
	tr.Bind(func() time.Duration { return 0 }) // must not panic
}

// TestNilTracerZeroAlloc is the zero-allocation guarantee from the issue:
// fully instrumented hot-path code with observability disabled must not
// allocate.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	var m *Metrics
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Begin("round")
		s.Int("round", 1).Bool("new_conn", true).Dur("cost", time.Millisecond)
		tr.Point("clock-read").Str("at", "tBs")
		s.Done()
		m.Add("tcp_segments_sent", 1)
		m.Observe("stage_send_path_ms", 0.5)
		m.ObserveDur("delta_d_ms", 3*time.Millisecond)
		m.Set("workers", 4)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %.1f per op, want 0", allocs)
	}
}

func TestMetricsCountersGaugesHistograms(t *testing.T) {
	m := NewMetrics()
	m.Add("frames", 3)
	m.Add("frames", 2)
	m.Set("workers", 8)
	m.Observe("lat_ms", 0.02)
	m.Observe("lat_ms", 7)
	m.ObserveDur("lat_ms", 20*time.Second) // overflow bucket

	if got := m.Counter("frames"); got != 5 {
		t.Fatalf("Counter(frames) = %d", got)
	}
	if got := m.Gauge("workers"); got != 8 {
		t.Fatalf("Gauge(workers) = %g", got)
	}
	h := m.Hist("lat_ms")
	if h == nil || h.Count != 3 {
		t.Fatalf("Hist(lat_ms) = %+v", h)
	}
	if h.Min != 0.02 || h.Max != 20000 {
		t.Fatalf("min/max = %g/%g", h.Min, h.Max)
	}
	if got := h.Counts[len(h.Counts)-1]; got != 1 {
		t.Fatalf("overflow bucket = %d, want 1", got)
	}
	if m.Hist("missing") != nil {
		t.Fatal("Hist(missing) should be nil")
	}
}

func TestMetricsMergeCommutative(t *testing.T) {
	build := func(order []int) *Metrics {
		parts := []*Metrics{NewMetrics(), NewMetrics(), NewMetrics()}
		// Dyadic observation values: float sums are exact in any order,
		// so the snapshots must match bit-for-bit.
		parts[0].Add("c", 1)
		parts[0].Observe("h", 0.25)
		parts[1].Add("c", 10)
		parts[1].Observe("h", 40)
		parts[2].Add("c", 100)
		parts[2].Observe("h", 0.25)
		total := NewMetrics()
		for _, i := range order {
			total.Merge(parts[i])
		}
		return total
	}
	a, b := build([]int{0, 1, 2}), build([]int{2, 0, 1})
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("merge not order-independent:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
	if got := a.Counter("c"); got != 111 {
		t.Fatalf("merged counter = %d", got)
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	if m.Enabled() {
		t.Fatal("nil metrics reports enabled")
	}
	m.Add("c", 1)
	m.Set("g", 2)
	m.Observe("h", 3)
	m.ObserveDur("h", time.Second)
	m.Merge(NewMetrics())
	NewMetrics().Merge(m)
	if m.Counter("c") != 0 || m.Gauge("g") != 0 || m.Hist("h") != nil {
		t.Fatal("nil metrics accessors must return zeros")
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsWriteTextAndJSON(t *testing.T) {
	m := NewMetrics()
	m.Add("tcp_segments_sent", 42)
	m.Set("workers", 4)
	m.Observe("stage_send_path_ms", 0.08)

	var txt bytes.Buffer
	if err := m.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tcp_segments_sent 42", "workers 4", "stage_send_path_ms count=1"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, txt.String())
		}
	}

	var js bytes.Buffer
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count   uint64 `json:"count"`
			Buckets []struct {
				LE    any    `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, js.String())
	}
	if decoded.Counters["tcp_segments_sent"] != 42 {
		t.Fatalf("decoded counter = %d", decoded.Counters["tcp_segments_sent"])
	}
	if h := decoded.Histograms["stage_send_path_ms"]; h.Count != 1 || len(h.Buckets) != 1 {
		t.Fatalf("decoded histogram = %+v", h)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	var now time.Duration
	tr.Bind(func() time.Duration { return now })

	now = 5 * time.Millisecond
	run := tr.Begin("run").Str("method", "Flash GET")
	now = 6 * time.Millisecond
	hs := tr.Begin("handshake").Bool("new_conn", true)
	now = 8 * time.Millisecond
	hs.Done()
	tr.Point("clock-read").Str("at", "tBr").Dur("err", -time.Millisecond)
	open := tr.Begin("dangling")
	_ = open // never Done: must export as an instant with open marker
	now = 9 * time.Millisecond
	run.Done()

	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, []Thread{{ID: 1, Name: "Flash GET / Opera (W)", Spans: tr.Spans()}})
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 5 { // metadata + run + handshake + clock-read + dangling
		t.Fatalf("got %d events, want 5:\n%s", len(doc.TraceEvents), buf.String())
	}

	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
		if ev.PID != 1 {
			t.Fatalf("event %q pid = %d, want 1", ev.Name, ev.PID)
		}
	}
	meta := doc.TraceEvents[byName["thread_name"]]
	if meta.Phase != "M" || meta.Args["name"] != "Flash GET / Opera (W)" {
		t.Fatalf("metadata event = %+v", meta)
	}
	h := doc.TraceEvents[byName["handshake"]]
	if h.Phase != "X" || h.TS != 6000 || h.Dur != 2000 {
		t.Fatalf("handshake event = %+v (want X, ts=6000µs, dur=2000µs)", h)
	}
	if h.Args["new_conn"] != true {
		t.Fatalf("handshake args = %+v", h.Args)
	}
	cr := doc.TraceEvents[byName["clock-read"]]
	if cr.Phase != "i" || cr.Args["err_ms"] != -1.0 {
		t.Fatalf("clock-read event = %+v", cr)
	}
	dg := doc.TraceEvents[byName["dangling"]]
	if dg.Phase != "i" || dg.Args["open"] != true {
		t.Fatalf("dangling span event = %+v", dg)
	}
}

// The trace export must be deterministic byte-for-byte for identical
// span content (map args marshal with sorted keys).
func TestWriteChromeTraceDeterministic(t *testing.T) {
	render := func() []byte {
		tr := NewTracer()
		tr.Bind(func() time.Duration { return time.Millisecond })
		tr.Begin("round").Int("round", 1).Str("method", "XHR GET").Bool("new_conn", false).Done()
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, []Thread{{ID: 1, Name: "cell", Spans: tr.Spans()}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("trace export not deterministic")
	}
}
