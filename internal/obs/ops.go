package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format the ops handler serves.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Route is an extra endpoint mounted on the ops handler — how a service
// hangs its own surfaces (the fleet dashboard's /live, say) off the same
// listener as /metrics.
type Route struct {
	Pattern string
	Handler http.Handler
}

// NewOpsHandler builds the operational HTTP surface of a live service:
//
//	/metrics        Prometheus text exposition of the registry
//	/healthz        liveness probe ("ok")
//	/debug/pprof/*  runtime profiling (CPU, heap, goroutine, trace, ...)
//
// plus any extra routes. The handler is safe to serve concurrently with
// writers to the registry; a nil registry serves an empty exposition.
func NewOpsHandler(m *Metrics, extra ...Route) http.Handler {
	mux := http.NewServeMux()
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = m.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// OpsServer is a running ops endpoint bound to its own listener, kept
// separate from the measurement listeners so scrapes and profiles never
// contend with probe traffic on the accept path.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartOps binds addr (host:port; port 0 picks a free one) and serves
// the ops handler on it until Close or Shutdown.
func StartOps(addr string, m *Metrics, extra ...Route) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	o := &OpsServer{ln: ln, srv: &http.Server{Handler: NewOpsHandler(m, extra...)}}
	go func() { _ = o.srv.Serve(ln) }()
	return o, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:9091".
func (o *OpsServer) Addr() string { return o.ln.Addr().String() }

// Close shuts the ops endpoint down immediately.
func (o *OpsServer) Close() error { return o.srv.Close() }

// Shutdown drains the ops endpoint gracefully.
func (o *OpsServer) Shutdown(ctx context.Context) error { return o.srv.Shutdown(ctx) }
