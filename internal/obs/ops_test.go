package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestOpsHandlerEndpoints(t *testing.T) {
	m := NewMetrics()
	m.Add(L("bm_requests_total", "service", "http", "endpoint", "/probe"), 3)
	m.SketchDur(L("bm_service_latency_ms", "endpoint", "/probe"), 1500000) // 1.5 ms
	ts := httptest.NewServer(NewOpsHandler(m))
	defer ts.Close()

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, `bm_requests_total{endpoint="/probe",service="http"} 3`) {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
	if !strings.Contains(body, `bm_service_latency_ms{endpoint="/probe",quantile="0.5"}`) {
		t.Fatalf("scrape missing sketch quantile:\n%s", body)
	}

	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	resp, _ = get(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}

func TestStartOpsServesAndCloses(t *testing.T) {
	m := NewMetrics()
	m.Add("up_checks", 1)
	ops, err := StartOps("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, "http://"+ops.Addr()+"/metrics")
	if resp.StatusCode != 200 || !strings.Contains(body, "up_checks 1") {
		t.Fatalf("scrape = %d %q", resp.StatusCode, body)
	}
	if err := ops.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + ops.Addr() + "/metrics"); err == nil {
		t.Fatal("ops endpoint still reachable after Close")
	}
}

func TestOpsHandlerExtraRoutes(t *testing.T) {
	m := NewMetrics()
	h := NewOpsHandler(m, Route{
		Pattern: "/live",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			_, _ = w.Write([]byte("live-ok"))
		}),
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	for path, want := range map[string]string{"/live": "live-ok", "/healthz": "ok\n"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != want {
			t.Fatalf("%s body = %q, want %q", path, body, want)
		}
	}
}
