package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in the Prometheus text exposition
// format, version 0.0.4: one block per metric family with `# HELP` (when
// registered via SetHelp) and `# TYPE` comment lines, then every series
// of the family with its labels. Counters export as `counter`, gauges as
// `gauge`, fixed-bucket histograms as `histogram` (cumulative `le`
// buckets plus `_sum`/`_count`), and streaming sketches as `summary`
// (`quantile` label per target plus `_sum`/`_count`).
//
// The output is part of the registry's API contract: families sort by
// name, series within a family sort by label string, and two scrapes of
// an unchanged registry are byte-identical. Family and label names are
// sanitized to the Prometheus charset; label values and help text are
// escaped per the format spec.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	type series struct {
		labels string // raw label body, "" when unlabelled
		key    string // original registry key
	}
	type family struct {
		name string
		kind string // "counter", "gauge", "histogram", "summary"
		ser  []series
	}
	fams := map[string]*family{}
	collect := func(key, kind string) {
		name, labels := splitSeriesKey(key)
		name = sanitizeMetricName(name)
		id := name + " " + kind
		f := fams[id]
		if f == nil {
			f = &family{name: name, kind: kind}
			fams[id] = f
		}
		f.ser = append(f.ser, series{labels: labels, key: key})
	}
	for k := range m.counters {
		collect(k, "counter")
	}
	for k := range m.gauges {
		collect(k, "gauge")
	}
	for k := range m.hists {
		collect(k, "histogram")
	}
	for k := range m.sketches {
		collect(k, "summary")
	}

	ordered := make([]*family, 0, len(fams))
	for _, f := range fams {
		sort.Slice(f.ser, func(i, j int) bool { return f.ser[i].labels < f.ser[j].labels })
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].name != ordered[j].name {
			return ordered[i].name < ordered[j].name
		}
		return ordered[i].kind < ordered[j].kind
	})

	var b strings.Builder
	for _, f := range ordered {
		if help, ok := m.help[f.name]; ok && help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind)
		b.WriteByte('\n')
		for _, s := range f.ser {
			switch f.kind {
			case "counter":
				writeSeriesLine(&b, f.name, "", s.labels, "", strconv.FormatInt(m.counters[s.key], 10))
			case "gauge":
				writeSeriesLine(&b, f.name, "", s.labels, "", formatPromFloat(m.gauges[s.key]))
			case "histogram":
				h := m.hists[s.key]
				var cum uint64
				for i, c := range h.Counts {
					cum += c
					le := "+Inf"
					if i < len(h.Bounds) {
						le = formatPromFloat(h.Bounds[i])
					}
					writeSeriesLine(&b, f.name, "_bucket", s.labels, `le="`+le+`"`, strconv.FormatUint(cum, 10))
				}
				writeSeriesLine(&b, f.name, "_sum", s.labels, "", formatPromFloat(h.Sum))
				writeSeriesLine(&b, f.name, "_count", s.labels, "", strconv.FormatUint(h.Count, 10))
			case "summary":
				sk := m.sketches[s.key]
				for _, t := range sk.Targets() {
					q := `quantile="` + formatPromFloat(t.Quantile) + `"`
					writeSeriesLine(&b, f.name, "", s.labels, q, formatPromFloat(sk.Quantile(t.Quantile)))
				}
				writeSeriesLine(&b, f.name, "_sum", s.labels, "", formatPromFloat(sk.Sum()))
				writeSeriesLine(&b, f.name, "_count", s.labels, "", strconv.FormatUint(sk.Count(), 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSeriesLine emits `name[suffix]{labels[,extra]} value\n`. labels is
// the raw label body from the registry key; extra is an
// exposition-internal label (`le`/`quantile`) appended after it.
func writeSeriesLine(b *strings.Builder, name, suffix, labels, extra, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(sanitizeLabelBody(labels))
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// splitSeriesKey splits a registry key built by L() into the family name
// and the raw label body.
func splitSeriesKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// sanitizeMetricName maps a registry name onto the Prometheus metric
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	ok := true
	for i := 0; i < len(name); i++ {
		if !isMetricChar(name[i], i == 0) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	out := []byte(name)
	for i := range out {
		if !isMetricChar(out[i], i == 0) {
			out[i] = '_'
		}
	}
	return string(out)
}

func isMetricChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// sanitizeLabelBody escapes the label *values* inside a raw label body
// (`k="v",k2="v2"`) per the exposition format: backslash, double quote
// and newline. Label names pass through the metric-name sanitizer.
func sanitizeLabelBody(body string) string {
	if body == "" {
		return ""
	}
	var b strings.Builder
	rest := body
	first := true
	for rest != "" {
		eq := strings.Index(rest, `="`)
		if eq < 0 {
			b.WriteString(rest) // malformed; pass through
			break
		}
		name := rest[:eq]
		rest = rest[eq+2:]
		// Value runs to the closing quote; L() never embeds quotes in
		// names, so scan for `"` followed by `,` or end.
		end := len(rest)
		for i := 0; i < len(rest); i++ {
			if rest[i] == '"' && (i+1 == len(rest) || rest[i+1] == ',') {
				end = i
				break
			}
		}
		val := rest[:end]
		if end < len(rest) {
			rest = rest[end+1:]
			rest = strings.TrimPrefix(rest, ",")
		} else {
			rest = ""
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(sanitizeMetricName(name))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(val))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	var b strings.Builder
	for _, r := range h {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatPromFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with explicit +Inf/-Inf/NaN spellings.
func formatPromFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
