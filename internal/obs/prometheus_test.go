package obs

import (
	"bytes"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func scrape(t *testing.T, m *Metrics) string {
	t.Helper()
	var b bytes.Buffer
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func buildSampleRegistry() *Metrics {
	m := NewMetrics()
	m.SetHelp("bm_requests_total", "Requests served per endpoint.")
	m.SetHelp("bm_service_latency_ms", "Service latency in milliseconds.")
	m.Add(L("bm_requests_total", "service", "http", "endpoint", "/probe"), 7)
	m.Add(L("bm_requests_total", "service", "http", "endpoint", "/"), 2)
	m.Add(L("bm_requests_total", "service", "tcp", "endpoint", "echo"), 5)
	m.Set("bm_artificial_delay_config_ms", 50)
	m.Observe("stage_send_path_ms", 0.07)
	m.Observe("stage_send_path_ms", 3.2)
	for i := 0; i < 100; i++ {
		m.ObserveSketch(L("bm_service_latency_ms", "endpoint", "/probe"), float64(i))
	}
	return m
}

func TestPrometheusConformance(t *testing.T) {
	m := buildSampleRegistry()
	out := scrape(t, m)

	for _, want := range []string{
		"# HELP bm_requests_total Requests served per endpoint.\n",
		"# TYPE bm_requests_total counter\n",
		`bm_requests_total{endpoint="/",service="http"} 2` + "\n",
		`bm_requests_total{endpoint="/probe",service="http"} 7` + "\n",
		"# TYPE bm_artificial_delay_config_ms gauge\n",
		"bm_artificial_delay_config_ms 50\n",
		"# TYPE stage_send_path_ms histogram\n",
		`stage_send_path_ms_bucket{le="0.1"} 1` + "\n",
		`stage_send_path_ms_bucket{le="+Inf"} 2` + "\n",
		"stage_send_path_ms_count 2\n",
		"# HELP bm_service_latency_ms Service latency in milliseconds.\n",
		"# TYPE bm_service_latency_ms summary\n",
		`bm_service_latency_ms{endpoint="/probe",quantile="0.5"}`,
		`bm_service_latency_ms_count{endpoint="/probe"} 100` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n--- scrape ---\n%s", want, out)
		}
	}

	// Histogram buckets are cumulative: the +Inf bucket equals _count.
	if !strings.Contains(out, `stage_send_path_ms_bucket{le="2.5"} 1`) {
		t.Errorf("bucket below 3.2 should stay at 1:\n%s", out)
	}

	// Every non-comment line is `name{labels} value` with a parseable value.
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-Inf|NaN|[0-9eE.+-]+)$`)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}

	// Families appear in sorted order.
	typeRE := regexp.MustCompile(`(?m)^# TYPE ([a-zA-Z0-9_:]+) `)
	var fams []string
	for _, match := range typeRE.FindAllStringSubmatch(out, -1) {
		fams = append(fams, match[1])
	}
	if !sort.StringsAreSorted(fams) {
		t.Errorf("families not sorted: %v", fams)
	}
}

// TestPrometheusByteStable is the satellite contract: two scrapes of the
// same registry are byte-identical (sorted series keys, deterministic
// quantile evaluation), and so are two text/JSON snapshots.
func TestPrometheusByteStable(t *testing.T) {
	m := buildSampleRegistry()
	first := scrape(t, m)
	second := scrape(t, m)
	if first != second {
		t.Fatalf("scrapes differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}

	var t1, t2, j1, j2 bytes.Buffer
	if err := m.WriteText(&t1); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteText(&t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("text snapshots differ")
	}
	if err := m.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSON snapshots differ")
	}
}

func TestPrometheusEscaping(t *testing.T) {
	m := NewMetrics()
	m.SetHelp("weird_series", "line one\nline \\two")
	m.Add(L("weird_series", "path", `C:\tmp\"x"`+"\n"), 1)
	out := scrape(t, m)
	if !strings.Contains(out, `# HELP weird_series line one\nline \\two`+"\n") {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird_series{path="C:\\tmp\\\"x\"\n"} 1`+"\n") {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestPrometheusSanitizesNames(t *testing.T) {
	m := NewMetrics()
	m.Add("bad.name-with chars", 3)
	m.Add(L("ok_name", "bad-label", "v"), 1)
	out := scrape(t, m)
	if !strings.Contains(out, "bad_name_with_chars 3\n") {
		t.Errorf("metric name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `ok_name{bad_label="v"} 1`+"\n") {
		t.Errorf("label name not sanitized:\n%s", out)
	}
}

func TestPrometheusEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	if err := NewMetrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty registry scrape = %q", buf.String())
	}
	var nilM *Metrics
	if err := nilM.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPrometheusSummaryQuantilesWithinBound(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 10000; i++ {
		m.ObserveSketch("lat_ms", float64(i))
	}
	out := scrape(t, m)
	re := regexp.MustCompile(`lat_ms\{quantile="([0-9.]+)"\} ([0-9.eE+]+)`)
	matches := re.FindAllStringSubmatch(out, -1)
	if len(matches) != len(DefaultSketchTargets) {
		t.Fatalf("got %d quantile series, want %d:\n%s", len(matches), len(DefaultSketchTargets), out)
	}
	for _, match := range matches {
		q, _ := strconv.ParseFloat(match[1], 64)
		v, _ := strconv.ParseFloat(match[2], 64)
		// Data is 1..10000, so the true q-quantile is ~q*10000.
		if diff := v - q*10000; diff < -200 || diff > 200 {
			t.Errorf("quantile %g = %g, want within 200 of %g", q, v, q*10000)
		}
	}
}
