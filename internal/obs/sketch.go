package obs

import (
	"math"
	"sort"
)

// SketchTarget is one quantile a Sketch tracks, with the rank error the
// caller is willing to tolerate there. Epsilon is a fraction of the total
// observation count n: the value returned for Quantile(q) is guaranteed to
// have true rank within q·n ± Epsilon·n.
type SketchTarget struct {
	Quantile float64 // in (0, 1), e.g. 0.99
	Epsilon  float64 // allowed rank error as a fraction of n, e.g. 0.001
}

// DefaultSketchTargets track the latency quantiles the live service
// exports: the median and the tail. Tight epsilons at the tail keep p99
// honest on long runs; the bounds are what the sketch property test
// asserts against exact quantiles.
var DefaultSketchTargets = []SketchTarget{
	{Quantile: 0.5, Epsilon: 0.01},
	{Quantile: 0.9, Epsilon: 0.005},
	{Quantile: 0.95, Epsilon: 0.005},
	{Quantile: 0.99, Epsilon: 0.001},
}

// sketchSample is one stored tuple of the CKMS summary: a value, the
// number of observations it stands for (width), and the rank uncertainty
// it was inserted with (delta).
type sketchSample struct {
	value float64
	width float64
	delta float64
}

// Sketch is a bounded-memory streaming quantile estimator — the
// Cormode–Korn–Muthukrishnan–Srivastava "targeted quantiles" summary. A
// long-running server can push millions of observations through it and
// read p50/p95/p99 at any time; memory stays sublinear because adjacent
// samples merge whenever the invariant for every target still holds.
//
// Observations and queries are deterministic: the same sequence of
// Observe and Quantile calls produces the same stored tuples and the
// same answers (a query flushes the insert buffer, so it participates in
// the sequence), and re-querying an unchanged sketch never changes its
// state — two scrapes of an unchanged registry are byte-identical.
//
// A Sketch is not safe for concurrent use on its own; the Metrics
// registry serializes access under its lock.
type Sketch struct {
	targets []SketchTarget
	samples []sketchSample // sorted by value
	buf     []float64      // unsorted insert buffer
	n       float64        // observations folded into samples
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// sketchBufCap is how many observations buffer before a flush+compress
// pass. Larger buffers amortize the O(samples) merge better; 512 keeps
// worst-case per-observation cost small and memory modest.
const sketchBufCap = 512

// NewSketch returns a sketch tracking the given targets
// (DefaultSketchTargets when none are given). Quantiles are clamped to
// (0, 1) and non-positive epsilons default to 0.01.
func NewSketch(targets ...SketchTarget) *Sketch {
	if len(targets) == 0 {
		targets = DefaultSketchTargets
	}
	ts := make([]SketchTarget, 0, len(targets))
	for _, t := range targets {
		if t.Quantile <= 0 || t.Quantile >= 1 {
			continue
		}
		if t.Epsilon <= 0 {
			t.Epsilon = 0.01
		}
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Quantile < ts[j].Quantile })
	return &Sketch{
		targets: ts,
		buf:     make([]float64, 0, sketchBufCap),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Targets returns a copy of the tracked quantile targets, ascending.
func (s *Sketch) Targets() []SketchTarget {
	return append([]SketchTarget(nil), s.targets...)
}

// Observe adds one observation.
func (s *Sketch) Observe(v float64) {
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.buf = append(s.buf, v)
	if len(s.buf) >= sketchBufCap {
		s.flush()
	}
}

// Count returns the number of observations.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the sum of all observations.
func (s *Sketch) Sum() float64 { return s.sum }

// Min returns the smallest observation (+Inf when empty).
func (s *Sketch) Min() float64 { return s.min }

// Max returns the largest observation (-Inf when empty).
func (s *Sketch) Max() float64 { return s.max }

// Len returns the number of stored tuples plus buffered observations —
// the sketch's memory footprint, which the bounded-memory test pins.
func (s *Sketch) Len() int { return len(s.samples) + len(s.buf) }

// Quantile returns a value whose rank is within the configured error of
// q·n. Each stored tuple carries an honest rank interval
// [rmin, rmin+delta] (rmin = prefix width sum); the query returns the
// tuple whose interval midpoint lies closest to the requested rank.
// Unlike the classic biased CKMS rule this stays correct when deltas
// exceed the maintenance envelope — which merged summaries legitimately
// do, since Merge's COMBINE rule widens deltas to carry the other
// summary's gap uncertainty. Querying a quantile between targets
// degrades gracefully; querying an empty sketch returns NaN.
func (s *Sketch) Quantile(q float64) float64 {
	s.flush()
	if len(s.samples) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.samples[0].value
	}
	if q >= 1 {
		return s.samples[len(s.samples)-1].value
	}
	t := q * s.n
	var r float64
	best := s.samples[0].value
	bestDist := math.Inf(1)
	for _, c := range s.samples {
		r += c.width
		if d := math.Abs(r + c.delta/2 - t); d < bestDist {
			bestDist = d
			best = c.value
		}
	}
	return best
}

// sketchSafety under-fills the invariant: tuples are kept twice as
// tight as each target's epsilon demands. Batched inserts, greedy
// compression AND shard merges all consume part of the theoretical error
// budget — COMBINE sums the gap uncertainties of every merged summary at
// a given rank — so enforcing ε/2 internally is what makes the
// *configured* ε hold in practice even after N-way fan-in (the property
// tests assert the configured bound against exact quantiles for single
// streams, shard merges and repeated collector folds).
const sketchSafety = 0.5

// invariant is the CKMS targeted-quantiles error function f(r, n): the
// maximum width+delta a tuple covering rank r may have while every
// target's rank guarantee still holds.
func (s *Sketch) invariant(r float64) float64 {
	minF := s.n + 1
	for _, t := range s.targets {
		eps := t.Epsilon * sketchSafety
		var f float64
		if r <= t.Quantile*s.n {
			f = 2 * eps * (s.n - r) / (1 - t.Quantile)
		} else {
			f = 2 * eps * r / t.Quantile
		}
		if f < minF {
			minF = f
		}
	}
	if minF < 1 {
		minF = 1
	}
	return minF
}

// flush sorts the buffer, merges it into the sample list and compresses.
func (s *Sketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	merged := make([]sketchSample, 0, len(s.samples)+len(s.buf))
	var r float64
	i := 0
	for _, v := range s.buf {
		for i < len(s.samples) && s.samples[i].value <= v {
			r += s.samples[i].width
			merged = append(merged, s.samples[i])
			i++
		}
		var delta float64
		if len(merged) > 0 && i < len(s.samples) {
			// A fresh observation's honest rank uncertainty is the local
			// gap: only observations covered by the next summary tuple can
			// still precede it. Cap at the invariant envelope — tighter
			// intervals mean tighter merged summaries and queries.
			delta = s.samples[i].width + s.samples[i].delta - 1
			if env := math.Floor(s.invariant(r)) - 1; delta > env {
				delta = env
			}
			if delta < 0 {
				delta = 0
			}
		}
		merged = append(merged, sketchSample{value: v, width: 1, delta: delta})
		s.n++
	}
	merged = append(merged, s.samples[i:]...)
	s.samples = merged
	s.buf = s.buf[:0]
	s.compress()
}

// compress greedily merges each tuple into its right neighbour while the
// combined width stays under the invariant, scanning right to left so a
// single pass reaches a locally minimal summary.
func (s *Sketch) compress() {
	if len(s.samples) < 2 {
		return
	}
	keep := s.samples[len(s.samples)-1]
	ki := len(s.samples) - 1
	r := s.n - 1 - keep.width
	for i := len(s.samples) - 2; i >= 0; i-- {
		c := s.samples[i]
		if i > 0 && c.width+keep.width+keep.delta <= s.invariant(r) {
			keep.width += c.width
		} else {
			s.samples[ki] = keep
			ki--
			keep = c
		}
		r -= c.width
	}
	s.samples[ki] = keep
	s.samples = s.samples[ki:]
}

// Merge folds another sketch into this one, preserving the configured
// rank-error bounds. Both tuple lists are flushed and merged by value
// with the Greenwald–Khanna COMBINE delta rule: a tuple drawn from one
// summary inherits the rank uncertainty of the other summary's gap at
// that position (delta += width+delta−1 of the other list's next tuple).
// Absolute rank errors add under this merge — ε/2·n₁ + ε/2·n₂ = ε/2·n
// with each input maintained at the internal ε/2 safety envelope — and
// because the widened deltas now honestly carry the combined
// uncertainty, the trailing compress cannot over-merge past the
// invariant, so the *configured* ε survives arbitrarily deep fan-in
// (the property tests assert it against exact quantiles after N-way
// shard merges and hundreds of repeated collector ticks).
//
// Ties order by (value, width, delta), so a.Merge(b) and b.Merge(a)
// answer every quantile identically. The receiver is mutated; o is
// flushed but otherwise unchanged. Both sketches should track the same
// targets (the receiver's targets govern the merged summary).
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.Count() == 0 {
		return
	}
	s.flush()
	o.flush()
	a, b := s.samples, o.samples
	merged := make([]sketchSample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var t sketchSample
		var other []sketchSample
		var oi int
		if j >= len(b) || (i < len(a) && !tupleLess(b[j], a[i])) {
			t = a[i]
			i++
			other, oi = b, j
		} else {
			t = b[j]
			j++
			other, oi = a, i
		}
		if oi < len(other) {
			// COMBINE: the other summary's next tuple bounds how many of
			// its observations may still precede t.
			t.delta += other[oi].width + other[oi].delta - 1
		}
		merged = append(merged, t)
	}
	s.samples = merged
	s.n += o.n
	s.count += o.count
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.compress()
}

// MergeSketches builds one summary over N shard sketches: inputs are
// folded pairwise in a canonical order (lexicographic over their tuple
// lists), so the result is exactly order-invariant — any permutation of
// sketches yields a summary that answers every quantile identically —
// which is what makes the fleet fan-in's global snapshot independent of
// shard walk order. Inputs are flushed but otherwise unchanged; targets
// come from the first non-nil input (DefaultSketchTargets when there are
// none).
func MergeSketches(sketches ...*Sketch) *Sketch {
	var out *Sketch
	srcs := make([]*Sketch, 0, len(sketches))
	for _, sk := range sketches {
		if sk == nil {
			continue
		}
		if out == nil {
			out = NewSketch(sk.targets...)
		}
		sk.flush()
		srcs = append(srcs, sk)
	}
	if out == nil {
		return NewSketch()
	}
	sort.SliceStable(srcs, func(i, j int) bool { return tuplesLess(srcs[i].samples, srcs[j].samples) })
	for _, sk := range srcs {
		out.Merge(sk)
	}
	return out
}

// tuplesLess orders whole tuple lists lexicographically — the canonical
// fold order behind MergeSketches' order invariance.
func tuplesLess(a, b []sketchSample) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return tupleLess(a[k], b[k])
		}
	}
	return len(a) < len(b)
}

// Reset empties the sketch in place, keeping its targets and capacity —
// the fan-in loop drains per-shard delta sketches this way instead of
// reallocating them every tick.
func (s *Sketch) Reset() {
	s.samples = s.samples[:0]
	s.buf = s.buf[:0]
	s.n = 0
	s.count = 0
	s.sum = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// tupleLess is the deterministic merge order: by value, with width and
// delta breaking ties so equal-valued tuples from different shards always
// interleave the same way regardless of argument order.
func tupleLess(a, b sketchSample) bool {
	if a.value != b.value {
		return a.value < b.value
	}
	if a.width != b.width {
		return a.width < b.width
	}
	return a.delta < b.delta
}
