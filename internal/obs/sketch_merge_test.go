package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// checkMergedBound asserts that a merged sketch's estimate for every
// configured target has true rank within q·n ± ε·n against the exact
// sorted data — the *configured* bound, not a summed one: Merge has to
// preserve what NewSketch promised.
func checkMergedBound(t *testing.T, name string, sk *Sketch, sorted []float64) {
	t.Helper()
	n := float64(len(sorted))
	if sk.Count() != uint64(len(sorted)) {
		t.Fatalf("%s: merged count = %d, want %d", name, sk.Count(), len(sorted))
	}
	for _, target := range sk.Targets() {
		est := sk.Quantile(target.Quantile)
		lo, hi := exactRankBand(sorted, est)
		wantLo := (target.Quantile-target.Epsilon)*n - 1
		wantHi := (target.Quantile+target.Epsilon)*n + 1
		if float64(hi) < wantLo || float64(lo) > wantHi {
			t.Errorf("%s: q=%g est=%g rank band [%d,%d] outside [%.0f,%.0f] (ε=%g)",
				name, target.Quantile, est, lo, hi, wantLo, wantHi, target.Epsilon)
		}
	}
}

// shardData deals one data set across k sketches round-robin, the way
// fleet sessions land in shards.
func shardData(data []float64, k int) []*Sketch {
	shards := make([]*Sketch, k)
	for i := range shards {
		shards[i] = NewSketch()
	}
	for i, v := range data {
		shards[i%k].Observe(v)
	}
	return shards
}

// TestSketchMergePreservesBoundNShards is the fan-in property test: the
// merge of N shard sketches obeys each per-target rank-error bound
// against exact quantiles, for several distribution shapes including the
// bimodal Java-timer shape, several shard counts, and both fold styles
// (pairwise Merge and k-way MergeSketches).
func TestSketchMergePreservesBoundNShards(t *testing.T) {
	shapes := []struct {
		name string
		gen  func(rng *rand.Rand, n int) []float64
	}{
		{"uniform", func(rng *rand.Rand, n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = rng.Float64() * 100
			}
			return d
		}},
		{"exponential", func(rng *rand.Rand, n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = rng.ExpFloat64() * 10
			}
			return d
		}},
		{"bimodal-java-timer", func(rng *rand.Rand, n int) []float64 {
			return javaTimerBimodal(n, rng.Int63())
		}},
	}
	for _, shape := range shapes {
		for _, k := range []int{2, 8, 32} {
			rng := rand.New(rand.NewSource(int64(1000 + k)))
			data := shape.gen(rng, 60000)
			sorted := append([]float64(nil), data...)
			sort.Float64s(sorted)

			shards := shardData(data, k)
			folded := NewSketch()
			for _, sh := range shards {
				folded.Merge(sh)
			}
			checkMergedBound(t, shape.name+"/pairwise", folded, sorted)

			shards = shardData(data, k)
			kway := MergeSketches(shards...)
			checkMergedBound(t, shape.name+"/kway", kway, sorted)
		}
	}
}

// TestSketchMergeBimodalValley pins the dashboard-facing property on the
// paper's hardest shape: after a shard merge of the Windows Java-timer
// distribution, the median still sits in a mode, never in the empty
// valley between them.
func TestSketchMergeBimodalValley(t *testing.T) {
	data := javaTimerBimodal(80000, 99)
	merged := MergeSketches(shardData(data, 16)...)
	if p50 := merged.Quantile(0.5); p50 > 1 && p50 < 15 {
		t.Fatalf("merged p50 = %g ms sits in the empty valley between the modes", p50)
	}
}

// TestSketchMergeOrderInvariance: MergeSketches answers every target
// quantile identically for any permutation of its inputs, and pairwise
// Merge is symmetric (a into b ≡ b into a).
func TestSketchMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 40000)
	for i := range data {
		data[i] = rng.ExpFloat64() * 5
	}
	const k = 8
	queries := []float64{0.25, 0.5, 0.9, 0.95, 0.99}

	answers := func(sk *Sketch) []float64 {
		out := make([]float64, len(queries))
		for i, q := range queries {
			out[i] = sk.Quantile(q)
		}
		return out
	}

	base := answers(MergeSketches(shardData(data, k)...))
	for trial := 0; trial < 5; trial++ {
		shards := shardData(data, k)
		rng.Shuffle(len(shards), func(i, j int) { shards[i], shards[j] = shards[j], shards[i] })
		got := answers(MergeSketches(shards...))
		for i := range queries {
			if got[i] != base[i] {
				t.Fatalf("k-way merge order changed q=%g: %g vs %g (trial %d)",
					queries[i], got[i], base[i], trial)
			}
		}
	}

	ab := shardData(data, 2)
	ba := shardData(data, 2)
	ab[0].Merge(ab[1])
	ba[1].Merge(ba[0])
	for _, q := range queries {
		if av, bv := ab[0].Quantile(q), ba[1].Quantile(q); av != bv {
			t.Fatalf("pairwise merge not symmetric at q=%g: %g vs %g", q, av, bv)
		}
	}
}

// TestSketchMergeRepeatedFanIn models the fleet collector: a cumulative
// global sketch absorbs many small delta sketches over many ticks, and
// the configured bound must still hold at the end — repeated merging
// must not compound error past ε.
func TestSketchMergeRepeatedFanIn(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	global := NewSketch()
	var all []float64
	for tick := 0; tick < 200; tick++ {
		delta := NewSketch()
		for i := 0; i < 300; i++ {
			v := rng.ExpFloat64() * 10
			all = append(all, v)
			delta.Observe(v)
		}
		global.Merge(delta)
	}
	sort.Float64s(all)
	checkMergedBound(t, "repeated-fanin", global, all)
}

// TestSketchMergeStatsAndEdges: moment bookkeeping merges exactly, empty
// and nil inputs are no-ops, and Reset returns a sketch to its empty
// state without touching targets.
func TestSketchMergeStatsAndEdges(t *testing.T) {
	a, b := NewSketch(), NewSketch()
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Observe(float64(i))
	}
	a.Merge(b)
	if a.Count() != 200 || a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged stats: count=%d min=%g max=%g", a.Count(), a.Min(), a.Max())
	}
	if want := 200.0 * 201 / 2; a.Sum() != want {
		t.Fatalf("merged sum = %g, want %g", a.Sum(), want)
	}

	before := a.Count()
	a.Merge(nil)
	a.Merge(NewSketch())
	if a.Count() != before {
		t.Fatalf("merging nil/empty changed count: %d -> %d", before, a.Count())
	}

	empty := NewSketch()
	empty.Merge(a)
	if empty.Count() != 200 {
		t.Fatalf("merge into empty: count=%d", empty.Count())
	}
	if p50 := empty.Quantile(0.5); p50 < 90 || p50 > 110 {
		t.Fatalf("merge into empty: p50=%g", p50)
	}

	a.Reset()
	if a.Count() != 0 || a.Len() != 0 || a.Sum() != 0 {
		t.Fatalf("after Reset: count=%d len=%d sum=%g", a.Count(), a.Len(), a.Sum())
	}
	if !math.IsInf(a.Min(), 1) || !math.IsInf(a.Max(), -1) {
		t.Fatalf("after Reset: min=%g max=%g", a.Min(), a.Max())
	}
	if !math.IsNaN(a.Quantile(0.5)) {
		t.Fatal("after Reset: quantile should be NaN")
	}
	if len(a.Targets()) != len(DefaultSketchTargets) {
		t.Fatalf("Reset dropped targets: %d", len(a.Targets()))
	}
	// A reset sketch is reusable: observe again and query.
	for i := 0; i < 1000; i++ {
		a.Observe(float64(i))
	}
	if p50 := a.Quantile(0.5); p50 < 480 || p50 > 520 {
		t.Fatalf("reused sketch p50=%g", p50)
	}

	if got := MergeSketches(); got.Count() != 0 {
		t.Fatalf("MergeSketches() of nothing: count=%d", got.Count())
	}
	if got := MergeSketches(nil, nil); got.Count() != 0 {
		t.Fatalf("MergeSketches(nil,nil): count=%d", got.Count())
	}
}

// TestSketchMergeStaysCompressed pins the memory side of fan-in: merging
// 32 shards of 1e5 total observations must still compress to a bounded
// summary, not the concatenation of the inputs.
func TestSketchMergeStaysCompressed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, 100000)
	for i := range data {
		data[i] = rng.NormFloat64()*3 + 20
	}
	merged := MergeSketches(shardData(data, 32)...)
	if merged.Len() > 2000 {
		t.Fatalf("merged sketch holds %d tuples, want <= 2000", merged.Len())
	}
}

// BenchmarkSketchMerge measures one pairwise fan-in fold: a cumulative
// sketch absorbing a 512-observation delta sketch (the per-tick shard
// cost in the fleet collector).
func BenchmarkSketchMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	global := NewSketch()
	for i := 0; i < 100000; i++ {
		global.Observe(rng.ExpFloat64() * 10)
	}
	deltas := make([]*Sketch, 64)
	for i := range deltas {
		deltas[i] = NewSketch()
		for j := 0; j < 512; j++ {
			deltas[i].Observe(rng.ExpFloat64() * 10)
		}
		deltas[i].flush()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		global.Merge(deltas[i%len(deltas)])
	}
}

// BenchmarkSketchMergeKWay measures the snapshot-building fold: 32 shard
// sketches merged into one fresh summary.
func BenchmarkSketchMergeKWay(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	shards := make([]*Sketch, 32)
	for i := range shards {
		shards[i] = NewSketch()
		for j := 0; j < 4096; j++ {
			shards[i].Observe(rng.ExpFloat64() * 10)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MergeSketches(shards...)
	}
}
