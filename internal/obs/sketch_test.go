package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactRankBand returns the [lo, hi] rank range (0-based, inclusive-
// exclusive-ish) the value occupies in the sorted exact data: lo is the
// number of samples strictly below v, hi the number of samples <= v.
func exactRankBand(sorted []float64, v float64) (lo, hi int) {
	lo = sort.SearchFloat64s(sorted, v)
	hi = sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return lo, hi
}

// checkErrorBound observes data into a fresh default sketch and asserts
// that every target quantile's estimate has true rank within
// q·n ± ε·n (plus one sample of slack for boundary ties).
func checkErrorBound(t *testing.T, name string, data []float64) {
	t.Helper()
	sk := NewSketch()
	for _, v := range data {
		sk.Observe(v)
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	n := float64(len(data))
	for _, target := range sk.Targets() {
		est := sk.Quantile(target.Quantile)
		lo, hi := exactRankBand(sorted, est)
		wantLo := (target.Quantile-target.Epsilon)*n - 1
		wantHi := (target.Quantile+target.Epsilon)*n + 1
		if float64(hi) < wantLo || float64(lo) > wantHi {
			t.Errorf("%s: q=%g est=%g has rank band [%d,%d], want within [%.0f,%.0f] (ε=%g)",
				name, target.Quantile, est, lo, hi, wantLo, wantHi, target.Epsilon)
		}
	}
	if sk.Count() != uint64(len(data)) {
		t.Errorf("%s: count = %d, want %d", name, sk.Count(), len(data))
	}
}

func TestSketchErrorBoundUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 100000)
	for i := range data {
		data[i] = rng.Float64() * 100
	}
	checkErrorBound(t, "uniform", data)
}

func TestSketchErrorBoundExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 100000)
	for i := range data {
		data[i] = rng.ExpFloat64() * 10 // heavy right tail, like RTTs
	}
	checkErrorBound(t, "exponential", data)
}

// javaTimerBimodal synthesizes the paper's Fig. 4/5 shape: the Java
// timer on Windows quantizes to ~15.6 ms granules, so Δd samples pile up
// near 0 and near 15.6 with an empty valley between.
func javaTimerBimodal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		if rng.Intn(2) == 0 {
			data[i] = math.Abs(rng.NormFloat64()*0.05 + 0.2)
		} else {
			data[i] = rng.NormFloat64()*0.1 + 15.8
		}
	}
	return data
}

func TestSketchErrorBoundBimodalJavaTimer(t *testing.T) {
	data := javaTimerBimodal(100000, 3)
	checkErrorBound(t, "bimodal", data)

	// The median must sit in one of the modes, never in the empty valley
	// (1, 15) ms — a midpoint-interpolating estimator would fail this.
	sk := NewSketch()
	for _, v := range data {
		sk.Observe(v)
	}
	if p50 := sk.Quantile(0.5); p50 > 1 && p50 < 15 {
		t.Fatalf("p50 = %g ms sits in the empty valley between the modes", p50)
	}
}

func TestSketchBoundedMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sk := NewSketch()
	for i := 0; i < 100000; i++ {
		sk.Observe(rng.ExpFloat64() * 10)
	}
	// CKMS with the default targets holds a few hundred tuples; 2000 is
	// a generous ceiling that still proves sublinear growth (2% of n).
	if sk.Len() > 2000 {
		t.Fatalf("sketch holds %d tuples after 1e5 observations, want <= 2000", sk.Len())
	}
}

func TestSketchEmptyAndEdges(t *testing.T) {
	sk := NewSketch()
	if !math.IsNaN(sk.Quantile(0.5)) {
		t.Fatal("empty sketch quantile should be NaN")
	}
	sk.Observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := sk.Quantile(q); got != 7 {
			t.Fatalf("single-sample quantile(%g) = %g, want 7", q, got)
		}
	}
	if sk.Min() != 7 || sk.Max() != 7 || sk.Sum() != 7 || sk.Count() != 1 {
		t.Fatalf("stats = min %g max %g sum %g count %d", sk.Min(), sk.Max(), sk.Sum(), sk.Count())
	}
}

func TestSketchDeterministicQueries(t *testing.T) {
	// The determinism contract: an identical sequence of observes and
	// queries produces identical answers (a query flushes the buffer, so
	// it is part of the sequence), and re-querying an unchanged sketch
	// never changes later answers — that is what makes two scrapes of an
	// unchanged registry byte-identical.
	a, b := NewSketch(), NewSketch()
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	for i, v := range vals {
		a.Observe(v)
		b.Observe(v)
		if i%3000 == 0 {
			if av, bv := a.Quantile(0.99), b.Quantile(0.99); av != bv {
				t.Fatalf("mid-stream quantile diverged: %g vs %g", av, bv)
			}
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		if av, bv := a.Quantile(q), b.Quantile(q); av != bv {
			t.Fatalf("quantile(%g): %g != %g for identical sequences", q, av, bv)
		}
		if first, second := a.Quantile(q), a.Quantile(q); first != second {
			t.Fatalf("re-query changed answer: %g then %g", first, second)
		}
	}
}

func TestSketchMergeStaysBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := NewSketch(), NewSketch()
	var all []float64
	for i := 0; i < 50000; i++ {
		v := rng.ExpFloat64()
		all = append(all, v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	if a.Count() != 50000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	sort.Float64s(all)
	n := float64(len(all))
	for _, target := range a.Targets() {
		est := a.Quantile(target.Quantile)
		lo, hi := exactRankBand(all, est)
		// Merging re-inserts compressed tuples, so allow the summed
		// error of both sketches.
		eps := 2*target.Epsilon + 0.005
		wantLo := (target.Quantile-eps)*n - 1
		wantHi := (target.Quantile+eps)*n + 1
		if float64(hi) < wantLo || float64(lo) > wantHi {
			t.Errorf("merged q=%g est=%g rank [%d,%d] outside [%.0f,%.0f]",
				target.Quantile, est, lo, hi, wantLo, wantHi)
		}
	}
}

func TestMetricsSketchAPI(t *testing.T) {
	m := NewMetrics()
	key := L("live_probe_rtt_ms", "method", "http-get")
	for i := 0; i < 1000; i++ {
		m.ObserveSketch(key, float64(i))
	}
	if c := m.SketchCount(key); c != 1000 {
		t.Fatalf("sketch count = %d", c)
	}
	p50 := m.SketchQuantile(key, 0.5)
	if p50 < 480 || p50 > 520 {
		t.Fatalf("p50 = %g, want ~500 within ±1%% rank error", p50)
	}
	if !math.IsNaN(m.SketchQuantile("absent", 0.5)) {
		t.Fatal("absent sketch quantile should be NaN")
	}

	// Merge folds sketches across registries (export-time path).
	o := NewMetrics()
	for i := 1000; i < 2000; i++ {
		o.ObserveSketch(key, float64(i))
	}
	m.Merge(o)
	if c := m.SketchCount(key); c != 2000 {
		t.Fatalf("merged sketch count = %d", c)
	}
}

// TestNilMetricsSketchZeroAlloc pins the PR 2 invariant for the new
// backend: disabled wall-clock instrumentation is allocation-free.
func TestNilMetricsSketchZeroAlloc(t *testing.T) {
	var m *Metrics
	allocs := testing.AllocsPerRun(200, func() {
		m.ObserveSketch("x", 1.5)
		m.SketchDur("x", 12345)
		_ = m.SketchQuantile("x", 0.5)
		_ = m.SketchCount("x")
		m.SetHelp("x", "help")
	})
	if allocs != 0 {
		t.Fatalf("nil-Metrics sketch ops allocated %.1f/op, want 0", allocs)
	}
}

func TestLabelKeyCanonical(t *testing.T) {
	a := L("bm_requests_total", "service", "http", "endpoint", "/probe")
	b := L("bm_requests_total", "endpoint", "/probe", "service", "http")
	if a != b {
		t.Fatalf("label order not canonical: %q vs %q", a, b)
	}
	want := `bm_requests_total{endpoint="/probe",service="http"}`
	if a != want {
		t.Fatalf("key = %q, want %q", a, want)
	}
	if got := L("plain"); got != "plain" {
		t.Fatalf("no-label key = %q", got)
	}
}
