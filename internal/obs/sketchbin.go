package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary sketch codec: the exact-state serialization the fleet wire
// format ships collector delta sketches with. The encoding is canonical
// and lossless — every stored tuple's (value, width, delta) float64 bits
// travel verbatim, so a decoded sketch is indistinguishable from the
// original: Merge folds it with bit-identical results, which is what
// reduces cross-node fan-in correctness to "the codec round-trips"
// (the GK COMBINE machinery is already order-invariant and
// property-tested in-process).
//
// Layout (all integers little-endian, floats as IEEE 754 bits):
//
//	u8       codec version (sketchBinVersion)
//	uvarint  target count
//	         per target: f64 quantile, f64 epsilon
//	f64      n (observations folded into tuples)
//	u64      count
//	f64      sum, min, max
//	uvarint  tuple count
//	         per tuple: f64 value, f64 width, f64 delta
//
// The encoder flushes first, so the insert buffer never appears on the
// wire and n == count exactly.

// sketchBinVersion is the codec version byte; decoders reject anything
// else so a future layout change cannot be misparsed as tuples.
const sketchBinVersion = 1

// sketchBinMaxTargets bounds the decoded target list; real sketches
// track a handful of quantiles, so anything larger is corruption.
const sketchBinMaxTargets = 64

// ErrSketchCorrupt is returned (possibly wrapped) by DecodeSketch for
// any input that is not a well-formed, self-consistent encoding.
var ErrSketchCorrupt = errors.New("obs: corrupt sketch encoding")

// AppendBinary appends the canonical binary encoding of the sketch to b
// and returns the extended slice. The receiver is flushed (buffered
// observations fold into tuples) but is otherwise unchanged; equal
// sketch states encode to identical bytes.
func (s *Sketch) AppendBinary(b []byte) []byte {
	s.flush()
	b = append(b, sketchBinVersion)
	b = binary.AppendUvarint(b, uint64(len(s.targets)))
	for _, t := range s.targets {
		b = appendF64(b, t.Quantile)
		b = appendF64(b, t.Epsilon)
	}
	b = appendF64(b, s.n)
	b = binary.LittleEndian.AppendUint64(b, s.count)
	b = appendF64(b, s.sum)
	b = appendF64(b, s.min)
	b = appendF64(b, s.max)
	b = binary.AppendUvarint(b, uint64(len(s.samples)))
	for _, c := range s.samples {
		b = appendF64(b, c.value)
		b = appendF64(b, c.width)
		b = appendF64(b, c.delta)
	}
	return b
}

// DecodeSketch parses one sketch encoding occupying the whole of b. It
// rejects truncated, oversized, version-mismatched and structurally
// inconsistent inputs (unsorted targets or tuples, non-positive widths,
// NaN state, width sum disagreeing with n), so a torn or bit-flipped
// wire payload surfaces as an error rather than a silently skewed
// summary.
func DecodeSketch(b []byte) (*Sketch, error) {
	d := binReader{buf: b}
	v, ok := d.u8()
	if !ok {
		return nil, fmt.Errorf("%w: empty", ErrSketchCorrupt)
	}
	if v != sketchBinVersion {
		return nil, fmt.Errorf("%w: version %d", ErrSketchCorrupt, v)
	}
	nt, ok := d.uvarint()
	if !ok || nt > sketchBinMaxTargets {
		return nil, fmt.Errorf("%w: target count", ErrSketchCorrupt)
	}
	targets := make([]SketchTarget, 0, nt)
	for i := uint64(0); i < nt; i++ {
		q, ok1 := d.f64()
		eps, ok2 := d.f64()
		if !ok1 || !ok2 || !(q > 0 && q < 1) || !(eps > 0 && eps <= 1) {
			return nil, fmt.Errorf("%w: target %d", ErrSketchCorrupt, i)
		}
		if len(targets) > 0 && q <= targets[len(targets)-1].Quantile {
			return nil, fmt.Errorf("%w: targets not ascending", ErrSketchCorrupt)
		}
		targets = append(targets, SketchTarget{Quantile: q, Epsilon: eps})
	}
	n, okN := d.f64()
	count, okC := d.u64()
	sum, okS := d.f64()
	minV, okMin := d.f64()
	maxV, okMax := d.f64()
	if !okN || !okC || !okS || !okMin || !okMax {
		return nil, fmt.Errorf("%w: truncated state", ErrSketchCorrupt)
	}
	if math.IsNaN(n) || math.IsNaN(sum) || math.IsNaN(minV) || math.IsNaN(maxV) {
		return nil, fmt.Errorf("%w: NaN state", ErrSketchCorrupt)
	}
	ns, ok := d.uvarint()
	// Each tuple is 24 bytes; bounding by the remaining input rejects
	// absurd counts before allocating. Divide rather than multiply: ns
	// is attacker-controlled up to 2^64-1 and ns*24 can wrap past the
	// remaining length.
	if !ok || ns > uint64(len(d.buf)-d.off)/24 {
		return nil, fmt.Errorf("%w: tuple count", ErrSketchCorrupt)
	}
	samples := make([]sketchSample, 0, ns)
	var widthSum float64
	for i := uint64(0); i < ns; i++ {
		val, ok1 := d.f64()
		width, ok2 := d.f64()
		delta, ok3 := d.f64()
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("%w: truncated tuple %d", ErrSketchCorrupt, i)
		}
		if math.IsNaN(val) || math.IsNaN(width) || math.IsNaN(delta) || width < 1 || delta < 0 {
			return nil, fmt.Errorf("%w: tuple %d out of range", ErrSketchCorrupt, i)
		}
		if len(samples) > 0 && val < samples[len(samples)-1].value {
			return nil, fmt.Errorf("%w: tuples not sorted", ErrSketchCorrupt)
		}
		widthSum += width
		samples = append(samples, sketchSample{value: val, width: width, delta: delta})
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSketchCorrupt, len(d.buf)-d.off)
	}
	// Cross-field consistency: the encoder writes flushed sketches, where
	// the tuple widths sum exactly to n and n mirrors count (widths are
	// integer-valued floats, so the sum is exact).
	if widthSum != n || float64(count) != n {
		return nil, fmt.Errorf("%w: width sum %g != n %g (count %d)", ErrSketchCorrupt, widthSum, n, count)
	}
	if ns > 0 && (minV > samples[0].value || maxV < samples[len(samples)-1].value || minV > maxV) {
		return nil, fmt.Errorf("%w: min/max inconsistent", ErrSketchCorrupt)
	}
	if ns == 0 && count != 0 {
		return nil, fmt.Errorf("%w: count without tuples", ErrSketchCorrupt)
	}
	s := NewSketch(targets...)
	if len(s.targets) != len(targets) {
		// NewSketch filtered something the checks above admitted.
		return nil, fmt.Errorf("%w: unusable targets", ErrSketchCorrupt)
	}
	s.samples = samples
	s.n = n
	s.count = count
	s.sum = sum
	if ns > 0 {
		s.min, s.max = minV, maxV
	}
	return s, nil
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// binReader is a bounds-checked little-endian cursor; every accessor
// reports false instead of panicking on truncated input.
type binReader struct {
	buf []byte
	off int
}

func (d *binReader) u8() (byte, bool) {
	if d.off+1 > len(d.buf) {
		return 0, false
	}
	v := d.buf[d.off]
	d.off++
	return v, true
}

func (d *binReader) u64() (uint64, bool) {
	if d.off+8 > len(d.buf) {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, true
}

func (d *binReader) f64() (float64, bool) {
	v, ok := d.u64()
	return math.Float64frombits(v), ok
}

func (d *binReader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, false
	}
	d.off += n
	return v, true
}
