package obs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randomSketch(t *testing.T, seed int64, n int) *Sketch {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := NewSketch()
	for i := 0; i < n; i++ {
		v := 10 + rng.ExpFloat64()*25
		if rng.Intn(4) == 0 {
			v = 200 + rng.NormFloat64()*5 // bimodal tail, like the Java-timer shape
		}
		s.Observe(v)
	}
	return s
}

// TestSketchBinaryRoundTripExact is the codec's core contract: a decoded
// sketch is byte-for-byte the same state as the (flushed) original —
// identical re-encoding, identical answers at every quantile.
func TestSketchBinaryRoundTripExact(t *testing.T) {
	for _, n := range []int{0, 1, 7, 512, 5000} {
		s := randomSketch(t, int64(n)+1, n)
		enc := s.AppendBinary(nil)
		got, err := DecodeSketch(enc)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if !bytes.Equal(got.AppendBinary(nil), enc) {
			t.Fatalf("n=%d: re-encoding differs from original encoding", n)
		}
		if got.Count() != s.Count() || got.Sum() != s.Sum() {
			t.Fatalf("n=%d: count/sum diverged", n)
		}
		if n > 0 && (got.Min() != s.Min() || got.Max() != s.Max()) {
			t.Fatalf("n=%d: min/max diverged", n)
		}
		for _, q := range []float64{0.01, 0.5, 0.9, 0.95, 0.99, 0.999} {
			a, b := s.Quantile(q), got.Quantile(q)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("n=%d: Quantile(%g) = %g, decoded %g", n, q, a, b)
			}
		}
	}
}

// TestSketchBinaryMergeBitIdentical: merging decoded copies behaves
// bitwise identically to merging the originals — the reduction the wire
// format's correctness claim rests on.
func TestSketchBinaryMergeBitIdentical(t *testing.T) {
	a := randomSketch(t, 1, 3000)
	b := randomSketch(t, 2, 800)
	da, err := DecodeSketch(a.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	db, err := DecodeSketch(b.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	da.Merge(db)
	if !bytes.Equal(a.AppendBinary(nil), da.AppendBinary(nil)) {
		t.Fatal("merge of decoded sketches diverged from in-process merge")
	}
}

// TestSketchBinaryEncodeDeterministic: equal states encode identically,
// and encoding twice does not mutate the sketch.
func TestSketchBinaryEncodeDeterministic(t *testing.T) {
	s := randomSketch(t, 7, 1000)
	first := s.AppendBinary(nil)
	second := s.AppendBinary(nil)
	if !bytes.Equal(first, second) {
		t.Fatal("repeated encoding differs")
	}
	s2 := randomSketch(t, 7, 1000)
	if !bytes.Equal(s2.AppendBinary(nil), first) {
		t.Fatal("equal ingest histories encode differently")
	}
}

func TestSketchBinaryCustomTargets(t *testing.T) {
	s := NewSketch(SketchTarget{Quantile: 0.25, Epsilon: 0.02}, SketchTarget{Quantile: 0.75, Epsilon: 0.004})
	for i := 0; i < 100; i++ {
		s.Observe(float64(i))
	}
	got, err := DecodeSketch(s.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	want := s.Targets()
	ts := got.Targets()
	if len(ts) != len(want) {
		t.Fatalf("targets = %v, want %v", ts, want)
	}
	for i := range ts {
		if ts[i] != want[i] {
			t.Fatalf("target %d = %+v, want %+v", i, ts[i], want[i])
		}
	}
}

// TestSketchBinaryRejectsCorruption walks the reject paths: truncation
// at every prefix, a flipped byte almost anywhere, version and trailing
// garbage.
func TestSketchBinaryRejectsCorruption(t *testing.T) {
	s := randomSketch(t, 3, 2000)
	enc := s.AppendBinary(nil)

	if _, err := DecodeSketch(nil); !errors.Is(err, ErrSketchCorrupt) {
		t.Fatalf("empty input: err = %v", err)
	}
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeSketch(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = sketchBinVersion + 1
	if _, err := DecodeSketch(bad); !errors.Is(err, ErrSketchCorrupt) {
		t.Fatalf("bad version: err = %v", err)
	}
	trailing := append(append([]byte(nil), enc...), 0x00)
	if _, err := DecodeSketch(trailing); !errors.Is(err, ErrSketchCorrupt) {
		t.Fatalf("trailing byte: err = %v", err)
	}
	// A flipped width bit breaks the width-sum/n consistency check.
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)-10] ^= 0x40
	if dec, err := DecodeSketch(flipped); err == nil {
		// A flip may land somewhere harmless to structure (e.g. a delta);
		// in that case the decode must at least be self-consistent.
		if !bytes.Equal(dec.AppendBinary(nil), flipped) {
			t.Fatal("accepted a decode that does not round-trip")
		}
	}
}

// TestSketchBinaryRejectsOverflowingTupleCount: a tuple count chosen so
// that count*24 wraps the uint64 remaining-bytes bound must be rejected
// before allocation, not panic in make. 768614336404564651*24 ==
// 2^64 + 8, so the wrapped product is 8 — small enough to pass a
// multiplication-based bound when >= 8 bytes of input remain.
func TestSketchBinaryRejectsOverflowingTupleCount(t *testing.T) {
	enc := NewSketch().AppendBinary(nil)
	// The encoding of an empty sketch ends with the one-byte tuple count
	// 0; replace it with the overflowing count and 8 padding bytes.
	crafted := append([]byte(nil), enc[:len(enc)-1]...)
	crafted = binary.AppendUvarint(crafted, 768614336404564651)
	crafted = append(crafted, make([]byte, 8)...)
	if _, err := DecodeSketch(crafted); !errors.Is(err, ErrSketchCorrupt) {
		t.Fatalf("overflowing tuple count: err = %v, want ErrSketchCorrupt", err)
	}
}
