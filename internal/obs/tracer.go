// Package obs is the observability layer of the testbed: virtual-time
// span tracing and a metrics registry.
//
// The paper's contribution is *attribution* — explaining which stage of
// the browser path inflates a reported RTT (send path, TCP handshake,
// server processing, event dispatch, clock quantization). The tracer
// records those stages as nested spans stamped with the discrete-event
// simulator's virtual clock, so any Δd anomaly can be decomposed by
// reading a trace instead of re-deriving costs by hand. Exporters render
// Chrome trace_event JSON (chrome://tracing / Perfetto) and plain-text or
// JSON metrics snapshots.
//
// Two properties are load-bearing:
//
//   - A nil *Tracer and a nil *Metrics are valid receivers: every method
//     is a no-op that allocates nothing, so instrumented hot paths cost
//     nothing when observability is off (proved by TestNilTracerZeroAlloc
//     and BenchmarkRunTraced vs BenchmarkRun).
//   - Recording only observes: it never schedules events, never draws from
//     the simulator's random stream, and stamps spans with the virtual
//     clock. Enabling tracing therefore cannot perturb results — the
//     determinism-equivalence suite shows byte-identical exports with
//     tracing on and off.
package obs

import "time"

// noEnd marks a span that has not ended yet.
const noEnd = time.Duration(-1)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one traced operation: a name, virtual start/end times and
// key/value attributes. Span values are created by a Tracer; a nil *Span
// (from a nil Tracer) accepts every method call as a no-op.
type Span struct {
	Name  string
	Start time.Duration
	// End is the virtual end time; negative while the span is open.
	End   time.Duration
	Attrs []Attr

	tr *Tracer
	// attrBuf inlines the first few attributes so typical spans (<= 4
	// annotations) never allocate for Attrs.
	attrBuf [4]Attr
}

// Str annotates the span with a string attribute. Returns the span for
// chaining; safe on a nil span.
func (s *Span) Str(key, val string) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: val})
	return s
}

// Int annotates the span with an integer attribute.
func (s *Span) Int(key string, val int64) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: val})
	return s
}

// Bool annotates the span with a boolean attribute.
func (s *Span) Bool(key string, val bool) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: val})
	return s
}

// Dur annotates the span with a duration attribute.
func (s *Span) Dur(key string, val time.Duration) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: val})
	return s
}

// Get returns the value of the named attribute.
func (s *Span) Get(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// GetDur returns a duration attribute (zero when absent or mistyped).
func (s *Span) GetDur(key string) time.Duration {
	v, ok := s.Get(key)
	if !ok {
		return 0
	}
	d, _ := v.(time.Duration)
	return d
}

// GetInt returns an integer attribute (zero when absent or mistyped).
func (s *Span) GetInt(key string) int64 {
	v, ok := s.Get(key)
	if !ok {
		return 0
	}
	n, _ := v.(int64)
	return n
}

// Done closes the span at its tracer's current virtual time. Ending an
// already-ended span is a no-op; safe on a nil span.
func (s *Span) Done() {
	if s == nil || s.End >= 0 {
		return
	}
	s.End = s.tr.clock()
}

// Open reports whether the span has not ended.
func (s *Span) Open() bool { return s != nil && s.End < 0 }

// Duration returns End − Start (zero for open or nil spans).
func (s *Span) Duration() time.Duration {
	if s == nil || s.End < 0 {
		return 0
	}
	return s.End - s.Start
}

// Tracer records virtual-time spans. The zero value is not usable; create
// one with NewTracer and Bind it to a clock source (the testbed binds it
// to its simulator automatically). A nil *Tracer is the disabled tracer:
// every method is an allocation-free no-op.
//
// A Tracer is not safe for concurrent use; give each concurrently running
// testbed (study cell) its own Tracer and merge at export time — which is
// exactly what the study scheduler does.
type Tracer struct {
	now   func() time.Duration
	spans []*Span
	// slab is the current span allocation chunk. Spans are handed out as
	// pointers into it; a chunk is never grown in place (a fresh one is
	// started when full), so those pointers stay valid. This amortizes
	// span allocation to one chunk per slabChunk spans on traced runs.
	slab []Span
}

// slabChunk is the number of spans per allocation chunk.
const slabChunk = 64

// newSpan carves a span out of the slab and registers it.
func (t *Tracer) newSpan(name string, start, end time.Duration) *Span {
	if len(t.slab) == cap(t.slab) {
		t.slab = make([]Span, 0, slabChunk)
	}
	t.slab = append(t.slab, Span{Name: name, Start: start, End: end, tr: t})
	s := &t.slab[len(t.slab)-1]
	s.Attrs = s.attrBuf[:0]
	t.spans = append(t.spans, s)
	return s
}

// NewTracer returns an enabled tracer. It records spans at virtual time
// zero until Bind installs a clock source.
func NewTracer() *Tracer { return &Tracer{} }

// Bind installs the virtual clock the tracer stamps spans with.
// testbed.New calls this with its simulator's Now.
func (t *Tracer) Bind(now func() time.Duration) {
	if t == nil {
		return
	}
	t.now = now
}

// Enabled reports whether the tracer records anything. Use it to guard
// attribute computations that would allocate (label formatting etc.).
func (t *Tracer) Enabled() bool { return t != nil }

// clock returns the current virtual time (zero before Bind).
func (t *Tracer) clock() time.Duration {
	if t == nil || t.now == nil {
		return 0
	}
	return t.now()
}

// Begin opens a span starting now. Close it with Span.Done; an unfinished
// span exports as an instant with an "open" marker.
func (t *Tracer) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, t.clock(), noEnd)
}

// Point records an instant event (a zero-duration span), e.g. a clock
// read. The returned span accepts attributes like any other.
func (t *Tracer) Point(name string) *Span {
	if t == nil {
		return nil
	}
	now := t.clock()
	return t.newSpan(name, now, now)
}

// Spans returns every recorded span in creation order. The slice is the
// tracer's own storage; callers must not mutate it.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Find returns the recorded spans with the given name, in creation order.
func (t *Tracer) Find(name string) []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for _, s := range t.spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// FindOne returns the first span matching name and every given
// (key, value) pair, or nil. Attribute values compare with ==.
func (t *Tracer) FindOne(name string, kv ...Attr) *Span {
	if t == nil {
		return nil
	}
	for _, s := range t.spans {
		if s.Name != name {
			continue
		}
		ok := true
		for _, want := range kv {
			got, found := s.Get(want.Key)
			if !found || got != want.Value {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return nil
}
