package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/fleet"
	"github.com/browsermetric/browsermetric/internal/obs"
)

func TestProbeFoldsIntoFleet(t *testing.T) {
	fl := fleet.New(fleet.Config{})
	s, err := Start(Config{Fleet: fl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addrs().HTTP + "/probe"

	get := func(url string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for i := 0; i < 3; i++ {
		get(base + "?sid=7&browser=chrome&region=us")
	}
	resp, err := http.Post(base+"?sid=8&browser=firefox&region=eu",
		"application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// No sid → served but not folded.
	get(base)
	// Bad sid → served but not folded.
	get(base + "?sid=nope&browser=chrome&region=us")

	snap := fl.FanIn()
	if snap.Sessions != 2 {
		t.Fatalf("sessions = %d, want 2", snap.Sessions)
	}
	if len(snap.Keys) != 2 {
		t.Fatalf("keys = %d, want 2: %+v", len(snap.Keys), snap.Keys)
	}
	a, b := snap.Keys[0], snap.Keys[1]
	if a.Method != "http-get" || a.Browser != "chrome" || a.Region != "us" || a.Count != 3 {
		t.Fatalf("GET aggregate = %+v", a)
	}
	if b.Method != "http-post" || b.Browser != "firefox" || b.Region != "eu" || b.Count != 1 {
		t.Fatalf("POST aggregate = %+v", b)
	}
	if a.P50 <= 0 {
		t.Fatalf("service time sample missing: p50=%g", a.P50)
	}
}

func TestProbeFleetDefaultsUnknownLabels(t *testing.T) {
	fl := fleet.New(fleet.Config{})
	s, err := Start(Config{Fleet: fl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addrs().HTTP + "/probe?sid=1")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	snap := fl.FanIn()
	if len(snap.Keys) != 1 || snap.Keys[0].Browser != "unknown" || snap.Keys[0].Region != "unknown" {
		t.Fatalf("keys = %+v", snap.Keys)
	}
}

// TestServerMetricsAllHaveHelp is the registry-wide HELP guard for the
// server plane: exercise every endpoint, then assert no family the
// server (or a wired fleet plane) registered lacks SetHelp text.
func TestServerMetricsAllHaveHelp(t *testing.T) {
	m := obs.NewMetrics()
	fl := fleet.New(fleet.Config{Metrics: m})
	s, err := Start(Config{Metrics: m, Delay: time.Millisecond, Fleet: fl})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, path := range []string{"/", "/probe", "/probe?sid=1&browser=chrome&region=us"} {
		resp, err := http.Get("http://" + s.Addrs().HTTP + path)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	fl.FanIn()
	if missing := m.FamiliesMissingHelp(); len(missing) != 0 {
		t.Fatalf("server metric families missing HELP text: %v", missing)
	}
}
