package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/obs"
)

func tcpExchange(t *testing.T, addr, payload string) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte(payload)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
}

func TestServerMetricsWired(t *testing.T) {
	m := obs.NewMetrics()
	s, err := Start(Config{Delay: time.Millisecond, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	addrs := s.Addrs()

	for _, url := range []string{"/", "/probe"} {
		resp, err := http.Get("http://" + addrs.HTTP + url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	tcpExchange(t, addrs.TCPEcho, "tcp-probe")

	uc, err := net.Dial("udp", addrs.UDPEcho)
	if err != nil {
		t.Fatal(err)
	}
	uc.Write([]byte("dgram"))
	buf := make([]byte, 64)
	uc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := uc.Read(buf); err != nil {
		t.Fatal(err)
	}
	uc.Close()

	for key, want := range map[string]int64{
		obs.L("bm_requests_total", "service", "http", "endpoint", "/"):      1,
		obs.L("bm_requests_total", "service", "http", "endpoint", "/probe"): 1,
		obs.L("bm_requests_total", "service", "tcp", "endpoint", "echo"):    1,
		obs.L("bm_requests_total", "service", "udp", "endpoint", "echo"):    1,
	} {
		if got := m.Counter(key); got != want {
			t.Errorf("%s = %d, want %d", key, got, want)
		}
	}
	latKey := obs.L("bm_service_latency_ms", "service", "tcp", "endpoint", "echo")
	if n := m.SketchCount(latKey); n != 1 {
		t.Errorf("latency sketch count = %d, want 1", n)
	}
	// Service latency includes the artificial delay knob; the knob also
	// exports as its own series plus its configured value as a gauge.
	if p50 := m.SketchQuantile(latKey, 0.5); p50 < 1 {
		t.Errorf("tcp service latency p50 = %g ms, want >= 1 (the delay)", p50)
	}
	if n := m.SketchCount("bm_artificial_delay_ms"); n != 4 {
		t.Errorf("artificial delay series count = %d, want 4", n)
	}
	if g := m.Gauge("bm_artificial_delay_config_ms"); g != 1 {
		t.Errorf("configured delay gauge = %g, want 1", g)
	}

	// The wired registry scrapes as valid Prometheus text.
	var scrape bytes.Buffer
	if err := m.WritePrometheus(&scrape); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE bm_requests_total counter",
		"# TYPE bm_service_latency_ms summary",
		`bm_service_latency_ms{endpoint="echo",service="tcp",quantile="0.5"}`,
	} {
		if !strings.Contains(scrape.String(), want) {
			t.Errorf("scrape missing %q:\n%s", want, scrape.String())
		}
	}
}

func TestServerMetricsDisabledIsFree(t *testing.T) {
	s := startServer(t, 0)
	// With Metrics nil the observe path must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		s.observe(s.serTCP, time.Now())
	})
	if allocs != 0 {
		t.Fatalf("disabled observe allocated %.1f/op, want 0", allocs)
	}
}

func TestDrainCountsInFlightExactlyOnce(t *testing.T) {
	m := obs.NewMetrics()
	s, err := Start(Config{Delay: 50 * time.Millisecond, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	addrs := s.Addrs()

	c, err := net.Dial("tcp", addrs.TCPEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	// Start draining while the echo sits in the artificial delay. The
	// echo must complete, be counted exactly once, and the client still
	// receives it.
	time.Sleep(10 * time.Millisecond)
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	buf := make([]byte, 64)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "in-flight" {
		t.Fatalf("echo during drain = %q, %v", buf[:n], err)
	}
	c.Close()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, _, tcpN, _ := s.Stats()
	if tcpN != 1 {
		t.Fatalf("tcp echoes after drain = %d, want exactly 1", tcpN)
	}
	if got := m.Counter(obs.L("bm_requests_total", "service", "tcp", "endpoint", "echo")); got != 1 {
		t.Fatalf("tcp counter after drain = %d, want 1", got)
	}

	// The drained server accepts nothing new.
	if _, err := net.DialTimeout("tcp", addrs.TCPEcho, 200*time.Millisecond); err == nil {
		t.Fatal("drained server still accepts TCP connections")
	}
}

func TestDrainForceClosesIdleSessions(t *testing.T) {
	s := startServer(t, 0)
	c, err := net.Dial("tcp", s.Addrs().TCPEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tcpExchange(t, s.Addrs().TCPEcho, "warm") // separate conn, completes
	// This client never closes its connection; Drain must give up at ctx
	// and force-close it rather than hang.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Drain(ctx)
	if err == nil {
		t.Fatal("expected ctx error from forced drain")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("drain took %v despite 100ms ctx", took)
	}
	// Second drain and close are no-ops.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	s.Close()
}

func TestServerStructuredLogs(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s, err := Start(Config{Logger: lg})
	if err != nil {
		t.Fatal(err)
	}
	tcpExchange(t, s.Addrs().TCPEcho, "logged")
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	var sawStart, sawRequest, sawDrained bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q (%v)", line, err)
		}
		switch rec["msg"] {
		case "server started":
			sawStart = true
		case "request":
			sawRequest = true
			if rec["service"] != "tcp" || rec["endpoint"] != "echo" {
				t.Errorf("request log fields = %v", rec)
			}
		case "drained":
			sawDrained = true
			if rec["tcp"] != float64(1) {
				t.Errorf("drained log tcp count = %v, want 1", rec["tcp"])
			}
		}
	}
	if !sawStart || !sawRequest || !sawDrained {
		t.Fatalf("lifecycle logs missing: start=%v request=%v drained=%v\n%s",
			sawStart, sawRequest, sawDrained, buf.String())
	}
}
