// Package server implements a real-network measurement server: the
// deployable counterpart of the simulated testbed. It hosts the same
// workloads the paper's Apache box did — a container page and probe
// endpoints over HTTP, a WebSocket echo service (RFC 6455, using the same
// frame codec as the simulator), and TCP/UDP echo services — plus an
// artificial response-delay knob for testbed-style calibration.
//
// Everything binds to loopback-or-given host with ephemeral ports by
// default, so examples and tests can run unprivileged and offline.
package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/browsermetric/browsermetric/internal/fleet"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/wssim"
)

// Config controls the listeners.
type Config struct {
	// Host is the bind address (default "127.0.0.1").
	Host string
	// Delay is the artificial pause before every response (the paper's
	// +50 ms; default 0 for live use).
	Delay time.Duration
	// Metrics is the wall-clock observability registry. The server
	// records per-endpoint request counters, service-latency quantile
	// sketches and the artificial-delay knob into it. nil disables
	// instrumentation at zero cost (the obs nil-receiver contract); this
	// registry is separate from the simulator's virtual-time registries,
	// so sim exports stay byte-identical with live observability wired.
	Metrics *obs.Metrics
	// Logger receives structured request and lifecycle logs (requests at
	// Debug, lifecycle at Info). nil disables logging.
	Logger *slog.Logger
	// Fleet, when non-nil, folds probe exchanges from self-identifying
	// clients into the fleet aggregation plane: a /probe request carrying
	// ?sid=<session>&browser=<model>&region=<region> contributes its
	// service time as a delay sample under the (method, browser, region)
	// key. Requests without a sid are served normally and not folded.
	Fleet *fleet.Registry
}

// series holds the precomputed registry keys for one endpoint, so the
// per-request path does no label formatting.
type series struct {
	service  string
	endpoint string
	total    string // request counter
	latency  string // service-latency sketch (ms)
}

// Server is a running measurement server.
type Server struct {
	cfg Config

	httpSrv *http.Server
	httpLn  net.Listener
	wsLn    net.Listener
	tcpLn   net.Listener
	udpConn *net.UDPConn

	serContainer series
	serProbe     series
	serWS        series
	serTCP       series
	serUDP       series
	delayKey     string

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{} // live ws/tcp echo sessions, for forced drain
	wg     sync.WaitGroup

	// Stats.
	httpRequests int64
	wsMessages   int64
	tcpEchoes    int64
	udpEchoes    int64
}

// Addrs exposes the bound addresses of a running server.
type Addrs struct {
	HTTP    string
	WS      string
	TCPEcho string
	UDPEcho string
}

// Start brings up all four services.
func Start(cfg Config) (*Server, error) {
	if cfg.Host == "" {
		cfg.Host = "127.0.0.1"
	}
	s := &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.initSeries()

	var err error
	if s.httpLn, err = net.Listen("tcp", cfg.Host+":0"); err != nil {
		return nil, fmt.Errorf("server: http listen: %w", err)
	}
	if s.wsLn, err = net.Listen("tcp", cfg.Host+":0"); err != nil {
		s.Close()
		return nil, fmt.Errorf("server: ws listen: %w", err)
	}
	if s.tcpLn, err = net.Listen("tcp", cfg.Host+":0"); err != nil {
		s.Close()
		return nil, fmt.Errorf("server: tcp listen: %w", err)
	}
	udpAddr, err := net.ResolveUDPAddr("udp", cfg.Host+":0")
	if err == nil {
		s.udpConn, err = net.ListenUDP("udp", udpAddr)
	}
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("server: udp listen: %w", err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleContainer)
	mux.HandleFunc("/probe", s.handleProbe)
	s.httpSrv = &http.Server{Handler: mux}

	s.wg.Add(3)
	go func() { defer s.wg.Done(); _ = s.httpSrv.Serve(s.httpLn) }()
	go func() { defer s.wg.Done(); s.serveWS() }()
	go func() { defer s.wg.Done(); s.serveTCPEcho() }()
	s.wg.Add(1)
	go func() { defer s.wg.Done(); s.serveUDPEcho() }()
	if lg := s.cfg.Logger; lg != nil {
		a := s.Addrs()
		lg.Info("server started",
			"http", a.HTTP, "ws", a.WS, "tcp", a.TCPEcho, "udp", a.UDPEcho,
			"delay", cfg.Delay.String())
	}
	return s, nil
}

// initSeries precomputes the wall-clock registry keys and registers
// their HELP text, so the request paths never format labels.
func (s *Server) initSeries() {
	mk := func(service, endpoint string) series {
		return series{
			service:  service,
			endpoint: endpoint,
			total:    obs.L("bm_requests_total", "service", service, "endpoint", endpoint),
			latency:  obs.L("bm_service_latency_ms", "service", service, "endpoint", endpoint),
		}
	}
	s.serContainer = mk("http", "/")
	s.serProbe = mk("http", "/probe")
	s.serWS = mk("ws", "echo")
	s.serTCP = mk("tcp", "echo")
	s.serUDP = mk("udp", "echo")
	s.delayKey = "bm_artificial_delay_ms"
	m := s.cfg.Metrics
	if !m.Enabled() {
		return
	}
	m.SetHelp("bm_requests_total", "Exchanges served, by service and endpoint.")
	m.SetHelp("bm_service_latency_ms", "Server-side service time per exchange in milliseconds (streaming quantile sketch).")
	m.SetHelp("bm_artificial_delay_ms", "Artificial response delay applied per exchange in milliseconds (the testbed's +delay knob).")
	m.SetHelp("bm_artificial_delay_config_ms", "Configured artificial response delay in milliseconds.")
	m.Set("bm_artificial_delay_config_ms", float64(s.cfg.Delay)/float64(time.Millisecond))
}

// observe records one served exchange: counter, service-latency sketch,
// the artificial-delay series and a Debug request log. Allocation-free
// when Metrics and Logger are both nil.
func (s *Server) observe(ser series, start time.Time) {
	took := time.Since(start)
	if m := s.cfg.Metrics; m.Enabled() {
		m.Add(ser.total, 1)
		m.SketchDur(ser.latency, took)
		if s.cfg.Delay > 0 {
			m.SketchDur(s.delayKey, s.cfg.Delay)
		}
	}
	if lg := s.cfg.Logger; lg != nil {
		lg.Debug("request",
			"service", ser.service, "endpoint", ser.endpoint,
			"ms", float64(took)/float64(time.Millisecond))
	}
}

// Addrs returns the bound addresses.
func (s *Server) Addrs() Addrs {
	return Addrs{
		HTTP:    s.httpLn.Addr().String(),
		WS:      s.wsLn.Addr().String(),
		TCPEcho: s.tcpLn.Addr().String(),
		UDPEcho: s.udpConn.LocalAddr().String(),
	}
}

// Stats returns the exchange counters (http, ws, tcp, udp).
func (s *Server) Stats() (int64, int64, int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.httpRequests, s.wsMessages, s.tcpEchoes, s.udpEchoes
}

// Close shuts every listener down, force-closes live echo sessions and
// waits for the service goroutines. For a graceful stop use Drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.httpSrv != nil {
		_ = s.httpSrv.Close()
	} else if s.httpLn != nil {
		_ = s.httpLn.Close()
	}
	if s.wsLn != nil {
		_ = s.wsLn.Close()
	}
	if s.tcpLn != nil {
		_ = s.tcpLn.Close()
	}
	if s.udpConn != nil {
		_ = s.udpConn.Close()
	}
	s.closeConns()
	s.wg.Wait()
	if lg := s.cfg.Logger; lg != nil {
		lg.Info("server closed")
	}
}

// Drain gracefully stops the server: it closes every listener first (no
// new work is accepted), lets in-flight exchanges finish, and only then
// returns — so a Stats read after Drain counts each exchange exactly
// once, never mid-flight. Echo sessions whose clients keep the
// connection open past ctx are force-closed; the context error is
// returned in that case. Drain after Close (or a second Drain) is a
// no-op.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if lg := s.cfg.Logger; lg != nil {
		lg.Info("draining")
	}
	// Stop accepting: raw listeners close immediately; the HTTP server
	// drains in-flight requests up to ctx.
	_ = s.wsLn.Close()
	_ = s.tcpLn.Close()
	_ = s.udpConn.Close()
	err := s.httpSrv.Shutdown(ctx)
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.closeConns()
		<-done
		if err == nil {
			err = ctx.Err()
		}
	}
	if lg := s.cfg.Logger; lg != nil {
		h, w, tc, u := s.Stats()
		lg.Info("drained", "http", h, "ws", w, "tcp", tc, "udp", u)
	}
	return err
}

// track registers a live echo session connection for forced drain.
func (s *Server) track(c net.Conn) {
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) pause() {
	if s.cfg.Delay > 0 {
		time.Sleep(s.cfg.Delay)
	}
}

func (s *Server) handleContainer(w http.ResponseWriter, _ *http.Request) {
	start := time.Now()
	s.pause()
	s.count(&s.httpRequests)
	w.Header().Set("Content-Type", "text/html")
	_, _ = io.WriteString(w, "<html><body><script src=\"/measure.js\"></script></body></html>")
	s.observe(s.serContainer, start)
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.pause()
	s.count(&s.httpRequests)
	method := "http-get"
	if r.Method == http.MethodPost {
		method = "http-post"
		_, _ = io.Copy(io.Discard, r.Body)
		_, _ = io.WriteString(w, "post-ok")
	} else {
		_, _ = io.WriteString(w, "pong")
	}
	s.observe(s.serProbe, start)
	s.foldFleet(r, method, time.Since(start))
}

// foldFleet contributes one self-identified probe exchange to the fleet
// plane. The query is only parsed when a fleet registry is wired, so the
// plain probe path stays allocation-lean.
func (s *Server) foldFleet(r *http.Request, method string, took time.Duration) {
	if s.cfg.Fleet == nil {
		return
	}
	q := r.URL.Query()
	sid, err := strconv.ParseUint(q.Get("sid"), 10, 64)
	if err != nil {
		return
	}
	browser, region := q.Get("browser"), q.Get("region")
	if browser == "" {
		browser = "unknown"
	}
	if region == "" {
		region = "unknown"
	}
	s.cfg.Fleet.Observe(sid, fleet.Key{Method: method, Browser: browser, Region: region},
		float64(took)/float64(time.Millisecond), false)
}

func (s *Server) count(field *int64) {
	s.mu.Lock()
	*field++
	s.mu.Unlock()
}

// serveWS accepts WebSocket connections: it performs the RFC 6455 upgrade
// using the shared codec and echoes every data frame.
func (s *Server) serveWS() {
	for {
		conn, err := s.wsLn.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		s.track(conn)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.wsSession(conn)
		}()
	}
}

func (s *Server) wsSession(conn net.Conn) {
	br := bufio.NewReader(conn)
	req, err := http.ReadRequest(br)
	if err != nil {
		return
	}
	key := req.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		_, _ = io.WriteString(conn, "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n")
		return
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wssim.AcceptKey(key) + "\r\n\r\n"
	if _, err := io.WriteString(conn, resp); err != nil {
		return
	}
	var buf []byte
	chunk := make([]byte, 4096)
	for {
		n, err := br.Read(chunk)
		if n > 0 {
			buf = append(buf, chunk[:n]...)
			for {
				f, consumed, ferr := wssim.ParseFrame(buf)
				if ferr == wssim.ErrIncomplete {
					break
				}
				if ferr != nil {
					return
				}
				buf = buf[consumed:]
				switch f.Opcode {
				case wssim.OpClose:
					out := &wssim.Frame{Fin: true, Opcode: wssim.OpClose}
					_, _ = conn.Write(out.Marshal())
					return
				case wssim.OpPing:
					out := &wssim.Frame{Fin: true, Opcode: wssim.OpPong, Payload: f.Payload}
					_, _ = conn.Write(out.Marshal())
				default:
					start := time.Now()
					s.pause()
					s.count(&s.wsMessages)
					out := &wssim.Frame{Fin: true, Opcode: f.Opcode, Payload: f.Payload}
					if _, err := conn.Write(out.Marshal()); err != nil {
						return
					}
					s.observe(s.serWS, start)
				}
			}
		}
		if err != nil {
			return
		}
	}
}

func (s *Server) serveTCPEcho() {
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		s.track(conn)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			buf := make([]byte, 4096)
			for {
				n, err := conn.Read(buf)
				if n > 0 {
					start := time.Now()
					s.pause()
					s.count(&s.tcpEchoes)
					if _, werr := conn.Write(buf[:n]); werr != nil {
						return
					}
					s.observe(s.serTCP, start)
				}
				if err != nil {
					return
				}
			}
		}()
	}
}

func (s *Server) serveUDPEcho() {
	buf := make([]byte, 65535)
	for {
		n, addr, err := s.udpConn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		start := time.Now()
		s.pause()
		s.count(&s.udpEchoes)
		payload := make([]byte, n)
		copy(payload, buf[:n])
		_, _ = s.udpConn.WriteToUDP(payload, addr)
		s.observe(s.serUDP, start)
	}
}
