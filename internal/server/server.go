// Package server implements a real-network measurement server: the
// deployable counterpart of the simulated testbed. It hosts the same
// workloads the paper's Apache box did — a container page and probe
// endpoints over HTTP, a WebSocket echo service (RFC 6455, using the same
// frame codec as the simulator), and TCP/UDP echo services — plus an
// artificial response-delay knob for testbed-style calibration.
//
// Everything binds to loopback-or-given host with ephemeral ports by
// default, so examples and tests can run unprivileged and offline.
package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/browsermetric/browsermetric/internal/wssim"
)

// Config controls the listeners.
type Config struct {
	// Host is the bind address (default "127.0.0.1").
	Host string
	// Delay is the artificial pause before every response (the paper's
	// +50 ms; default 0 for live use).
	Delay time.Duration
}

// Server is a running measurement server.
type Server struct {
	cfg Config

	httpSrv *http.Server
	httpLn  net.Listener
	wsLn    net.Listener
	tcpLn   net.Listener
	udpConn *net.UDPConn

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// Stats.
	httpRequests int64
	wsMessages   int64
	tcpEchoes    int64
	udpEchoes    int64
}

// Addrs exposes the bound addresses of a running server.
type Addrs struct {
	HTTP    string
	WS      string
	TCPEcho string
	UDPEcho string
}

// Start brings up all four services.
func Start(cfg Config) (*Server, error) {
	if cfg.Host == "" {
		cfg.Host = "127.0.0.1"
	}
	s := &Server{cfg: cfg}

	var err error
	if s.httpLn, err = net.Listen("tcp", cfg.Host+":0"); err != nil {
		return nil, fmt.Errorf("server: http listen: %w", err)
	}
	if s.wsLn, err = net.Listen("tcp", cfg.Host+":0"); err != nil {
		s.Close()
		return nil, fmt.Errorf("server: ws listen: %w", err)
	}
	if s.tcpLn, err = net.Listen("tcp", cfg.Host+":0"); err != nil {
		s.Close()
		return nil, fmt.Errorf("server: tcp listen: %w", err)
	}
	udpAddr, err := net.ResolveUDPAddr("udp", cfg.Host+":0")
	if err == nil {
		s.udpConn, err = net.ListenUDP("udp", udpAddr)
	}
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("server: udp listen: %w", err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleContainer)
	mux.HandleFunc("/probe", s.handleProbe)
	s.httpSrv = &http.Server{Handler: mux}

	s.wg.Add(3)
	go func() { defer s.wg.Done(); _ = s.httpSrv.Serve(s.httpLn) }()
	go func() { defer s.wg.Done(); s.serveWS() }()
	go func() { defer s.wg.Done(); s.serveTCPEcho() }()
	s.wg.Add(1)
	go func() { defer s.wg.Done(); s.serveUDPEcho() }()
	return s, nil
}

// Addrs returns the bound addresses.
func (s *Server) Addrs() Addrs {
	return Addrs{
		HTTP:    s.httpLn.Addr().String(),
		WS:      s.wsLn.Addr().String(),
		TCPEcho: s.tcpLn.Addr().String(),
		UDPEcho: s.udpConn.LocalAddr().String(),
	}
}

// Stats returns the exchange counters (http, ws, tcp, udp).
func (s *Server) Stats() (int64, int64, int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.httpRequests, s.wsMessages, s.tcpEchoes, s.udpEchoes
}

// Close shuts every listener down and waits for the service goroutines.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	if s.httpSrv != nil {
		_ = s.httpSrv.Close()
	} else if s.httpLn != nil {
		_ = s.httpLn.Close()
	}
	if s.wsLn != nil {
		_ = s.wsLn.Close()
	}
	if s.tcpLn != nil {
		_ = s.tcpLn.Close()
	}
	if s.udpConn != nil {
		_ = s.udpConn.Close()
	}
	s.wg.Wait()
}

func (s *Server) pause() {
	if s.cfg.Delay > 0 {
		time.Sleep(s.cfg.Delay)
	}
}

func (s *Server) handleContainer(w http.ResponseWriter, _ *http.Request) {
	s.pause()
	s.count(&s.httpRequests)
	w.Header().Set("Content-Type", "text/html")
	_, _ = io.WriteString(w, "<html><body><script src=\"/measure.js\"></script></body></html>")
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	s.pause()
	s.count(&s.httpRequests)
	if r.Method == http.MethodPost {
		_, _ = io.Copy(io.Discard, r.Body)
		_, _ = io.WriteString(w, "post-ok")
		return
	}
	_, _ = io.WriteString(w, "pong")
}

func (s *Server) count(field *int64) {
	s.mu.Lock()
	*field++
	s.mu.Unlock()
}

// serveWS accepts WebSocket connections: it performs the RFC 6455 upgrade
// using the shared codec and echoes every data frame.
func (s *Server) serveWS() {
	for {
		conn, err := s.wsLn.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.wsSession(conn)
		}()
	}
}

func (s *Server) wsSession(conn net.Conn) {
	br := bufio.NewReader(conn)
	req, err := http.ReadRequest(br)
	if err != nil {
		return
	}
	key := req.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		_, _ = io.WriteString(conn, "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n")
		return
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wssim.AcceptKey(key) + "\r\n\r\n"
	if _, err := io.WriteString(conn, resp); err != nil {
		return
	}
	var buf []byte
	chunk := make([]byte, 4096)
	for {
		n, err := br.Read(chunk)
		if n > 0 {
			buf = append(buf, chunk[:n]...)
			for {
				f, consumed, ferr := wssim.ParseFrame(buf)
				if ferr == wssim.ErrIncomplete {
					break
				}
				if ferr != nil {
					return
				}
				buf = buf[consumed:]
				switch f.Opcode {
				case wssim.OpClose:
					out := &wssim.Frame{Fin: true, Opcode: wssim.OpClose}
					_, _ = conn.Write(out.Marshal())
					return
				case wssim.OpPing:
					out := &wssim.Frame{Fin: true, Opcode: wssim.OpPong, Payload: f.Payload}
					_, _ = conn.Write(out.Marshal())
				default:
					s.pause()
					s.count(&s.wsMessages)
					out := &wssim.Frame{Fin: true, Opcode: f.Opcode, Payload: f.Payload}
					if _, err := conn.Write(out.Marshal()); err != nil {
						return
					}
				}
			}
		}
		if err != nil {
			return
		}
	}
}

func (s *Server) serveTCPEcho() {
	for {
		conn, err := s.tcpLn.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			buf := make([]byte, 4096)
			for {
				n, err := conn.Read(buf)
				if n > 0 {
					s.pause()
					s.count(&s.tcpEchoes)
					if _, werr := conn.Write(buf[:n]); werr != nil {
						return
					}
				}
				if err != nil {
					return
				}
			}
		}()
	}
}

func (s *Server) serveUDPEcho() {
	buf := make([]byte, 65535)
	for {
		n, addr, err := s.udpConn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		s.pause()
		s.count(&s.udpEchoes)
		payload := make([]byte, n)
		copy(payload, buf[:n])
		_, _ = s.udpConn.WriteToUDP(payload, addr)
	}
}
