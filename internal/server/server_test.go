package server

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/wssim"
)

func startServer(t *testing.T, delay time.Duration) *Server {
	t.Helper()
	s, err := Start(Config{Delay: delay})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestHTTPEndpoints(t *testing.T) {
	s := startServer(t, 0)
	addrs := s.Addrs()

	resp, err := http.Get("http://" + addrs.HTTP + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body[:6]) != "<html>" {
		t.Fatalf("container: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get("http://" + addrs.HTTP + "/probe")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("probe GET = %q", body)
	}

	resp, err = http.Post("http://"+addrs.HTTP+"/probe", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "post-ok" {
		t.Fatalf("probe POST = %q", body)
	}

	httpN, _, _, _ := s.Stats()
	if httpN != 3 {
		t.Fatalf("http requests = %d, want 3", httpN)
	}
}

func TestTCPEcho(t *testing.T) {
	s := startServer(t, 0)
	c, err := net.Dial("tcp", s.Addrs().TCPEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello-echo")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello-echo" {
		t.Fatalf("echo = %q", buf[:n])
	}
}

func TestUDPEcho(t *testing.T) {
	s := startServer(t, 0)
	c, err := net.Dial("udp", s.Addrs().UDPEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("dgram")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "dgram" {
		t.Fatalf("echo = %q", buf[:n])
	}
}

func TestWebSocketEcho(t *testing.T) {
	s := startServer(t, 0)
	c, err := net.Dial("tcp", s.Addrs().WS)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req := "GET / HTTP/1.1\r\nHost: x\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n" +
		"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\nSec-WebSocket-Version: 13\r\n\r\n"
	if _, err := io.WriteString(c, req); err != nil {
		t.Fatal(err)
	}
	// Read the 101 response headers.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	hdr := make([]byte, 0, 512)
	tmp := make([]byte, 1)
	for {
		if _, err := c.Read(tmp); err != nil {
			t.Fatal(err)
		}
		hdr = append(hdr, tmp[0])
		if len(hdr) >= 4 && string(hdr[len(hdr)-4:]) == "\r\n\r\n" {
			break
		}
	}
	if string(hdr[:12]) != "HTTP/1.1 101" {
		t.Fatalf("upgrade response: %q", hdr)
	}
	// Send a masked frame, expect an unmasked echo.
	f := &wssim.Frame{Fin: true, Opcode: wssim.OpBinary, Masked: true, MaskKey: [4]byte{9, 8, 7, 6}, Payload: []byte("ws-ping")}
	if _, err := c.Write(f.Marshal()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 256)
	tmp = make([]byte, 256)
	for {
		n, err := c.Read(tmp)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, tmp[:n]...)
		echo, _, ferr := wssim.ParseFrame(buf)
		if ferr == wssim.ErrIncomplete {
			continue
		}
		if ferr != nil {
			t.Fatal(ferr)
		}
		if string(echo.Payload) != "ws-ping" {
			t.Fatalf("echo payload = %q", echo.Payload)
		}
		break
	}
}

func TestWebSocketRejectsPlainHTTP(t *testing.T) {
	s := startServer(t, 0)
	c, err := net.Dial("tcp", s.Addrs().WS)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	io.WriteString(c, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 128)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:12]) != "HTTP/1.1 400" {
		t.Fatalf("response = %q", buf[:n])
	}
}

func TestDelayApplied(t *testing.T) {
	s := startServer(t, 30*time.Millisecond)
	c, err := net.Dial("tcp", s.Addrs().TCPEcho)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	c.Write([]byte("p"))
	buf := make([]byte, 16)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 30*time.Millisecond {
		t.Fatalf("RTT = %v, want >= 30ms", rtt)
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := startServer(t, 0)
	s.Close()
	s.Close() // must not panic or deadlock
}
