package shard

import (
	"fmt"
	"io"
	"net"
	"time"
)

// ioTimeout bounds any single control-frame read or write. The protocol
// is strict request/response with renewals at TTL/3, so a healthy peer
// always speaks well inside this window; a peer silent past it is
// treated as dead (the lease machinery then reassigns its shards).
const ioTimeout = 30 * time.Second

// writeMsg encodes and sends one control frame with a write deadline.
func writeMsg(conn net.Conn, m *Msg) error {
	b, err := AppendMsg(nil, m)
	if err != nil {
		return err
	}
	if err := conn.SetWriteDeadline(time.Now().Add(ioTimeout)); err != nil {
		return err
	}
	_, err = conn.Write(b)
	return err
}

// readMsg reads exactly one control frame: the fixed header first (which
// carries the payload length), then the payload and checksum, handing
// the whole frame to DecodeMsg. A read deadline turns a dead peer into
// an error instead of a wedged goroutine.
func readMsg(conn net.Conn) (*Msg, error) {
	if err := conn.SetReadDeadline(time.Now().Add(ioTimeout)); err != nil {
		return nil, err
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	// Validate the length before allocating; DecodeMsg re-checks
	// everything on the assembled frame.
	payloadLen := int(uint32(hdr[8]) | uint32(hdr[9])<<8 | uint32(hdr[10])<<16 | uint32(hdr[11])<<24)
	if payloadLen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrCorrupt, payloadLen)
	}
	frame := make([]byte, headerLen+payloadLen+crcLen)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(conn, frame[headerLen:]); err != nil {
		return nil, err
	}
	m, _, err := DecodeMsg(frame)
	return m, err
}

// call sends a request and reads the single response — the protocol is
// strictly one-in-flight, so every exchange is a call.
func call(conn net.Conn, req *Msg) (*Msg, error) {
	if err := writeMsg(conn, req); err != nil {
		return nil, err
	}
	return readMsg(conn)
}
