package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/sweep"
)

// CoordinatorOptions configures the shard coordinator.
type CoordinatorOptions struct {
	// Listen is the control-protocol listen address (e.g. 127.0.0.1:0).
	Listen string
	// Sweep is the full sweep configuration. Workers must be started
	// with an identical configuration; the Hello handshake enforces it
	// by comparing sweep IDs.
	Sweep sweep.Options
	// Shards is the partition count (DefaultShards when 0). More shards
	// than workers keeps reassignment granular.
	Shards int
	// LeaseTTL is how long a shard lease lives without renewal before
	// the monitor reassigns it (default 5 s). Workers renew at TTL/3.
	LeaseTTL time.Duration
	// Log, when non-nil, receives progress and fault notices.
	Log func(format string, args ...any)
	// Metrics, when non-nil, receives the shard_* families plus the
	// final warm pass's sweep_cache_* counters.
	Metrics *obs.Metrics
}

// Stats is a point-in-time snapshot of the coordinator's counters — the
// numbers behind the shard_* metric families.
type Stats struct {
	// Shards is the partition count; ShardsDone how many completed.
	Shards, ShardsDone int
	// Cells is the executable (non-skipped) cell count of the plan.
	Cells int
	// CellsComputed/CellsCached sum the per-shard completion reports:
	// cached cells were replayed from the shared cache (including cells
	// a dead worker computed before dying).
	CellsComputed, CellsCached int
	// LeasesGranted and Renewals count lease traffic; Reassigned counts
	// shards taken back from dead or silent workers.
	LeasesGranted, Renewals, Reassigned int
	// WorkersSeen counts distinct worker names; WorkersLive the
	// currently connected ones.
	WorkersSeen, WorkersLive int
	// Rejected counts corrupt frames and refused Hellos.
	Rejected int
}

type shardStatus uint8

const (
	shardPending shardStatus = iota
	shardLeased
	shardDone
)

type shardState struct {
	status shardStatus
	holder string
	expiry time.Time
}

// Coordinator partitions a sweep's cell matrix and leases the shards to
// worker processes. Create with NewCoordinator (which starts listening
// immediately), point workers at Addr(), then Wait for the merged result.
type Coordinator struct {
	opts    CoordinatorOptions
	sweepID string
	plan    []sweep.PlannedCell
	parts   [][]int
	ln      net.Listener

	mu      sync.Mutex
	shards  []shardState
	pending int             // shards not yet done
	workers map[string]bool // seen worker names
	live    map[string]int  // open conns per worker name
	stats   Stats
	done    chan struct{}
	stopped bool

	stopMonitor chan struct{}
}

// NewCoordinator plans and partitions the sweep, binds the listener and
// starts serving leases. The sweep itself does not execute here until
// Wait's final warm pass — workers do the computing.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Sweep.Dir == "" {
		return nil, fmt.Errorf("shard: coordinator requires a cache dir")
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 5 * time.Second
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	// The cache directory must exist before workers race to open it.
	if _, err := sweep.OpenCache(opts.Sweep.Dir, opts.Sweep.Salt); err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:        opts,
		sweepID:     opts.Sweep.ID(),
		plan:        sweep.Plan(opts.Sweep),
		workers:     map[string]bool{},
		live:        map[string]int{},
		done:        make(chan struct{}),
		stopMonitor: make(chan struct{}),
	}
	c.parts = Partition(c.plan, opts.Shards)
	c.shards = make([]shardState, opts.Shards)
	c.stats.Shards = opts.Shards
	c.stats.Cells = len(c.plan)
	// Empty shards (rendezvous imbalance on tiny plans) are born done.
	for s := range c.parts {
		if len(c.parts[s]) == 0 {
			c.shards[s].status = shardDone
			c.stats.ShardsDone++
		}
	}
	c.pending = opts.Shards - c.stats.ShardsDone
	c.registerMetrics()
	if c.pending == 0 {
		close(c.done)
	}

	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("shard: coordinator listen: %w", err)
	}
	c.ln = ln
	go c.acceptLoop()
	go c.monitor()
	return c, nil
}

// Addr returns the bound control address workers connect to.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Coordinator) registerMetrics() {
	m := c.opts.Metrics
	if !m.Enabled() {
		return
	}
	m.SetHelp("shard_shards", "Partition count of the sweep's cell matrix.")
	m.SetHelp("shard_cells", "Executable (non-skipped) cells in the sweep plan.")
	m.SetHelp("shard_shards_done_total", "Shards reported complete by workers.")
	m.SetHelp("shard_cells_done_total", "Cells completed across all shard reports.")
	m.SetHelp("shard_cells_computed_total", "Cells workers computed fresh.")
	m.SetHelp("shard_cells_cached_total", "Cells workers replayed from the shared cache (including a dead worker's completed cells after reassignment).")
	m.SetHelp("shard_leases_granted_total", "Shard leases handed to workers.")
	m.SetHelp("shard_lease_renewals_total", "Mid-shard lease renewals.")
	m.SetHelp("shard_shards_reassigned_total", "Leases reclaimed from dead or silent workers and returned to the pending pool.")
	m.SetHelp("shard_workers_seen_total", "Distinct worker names that completed the Hello handshake.")
	m.SetHelp("shard_workers_live", "Currently connected workers.")
	m.SetHelp("shard_frames_rejected_total", "Corrupt control frames and refused Hello handshakes.")
	m.Set("shard_shards", float64(c.stats.Shards))
	m.Set("shard_cells", float64(c.stats.Cells))
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed by Wait/Close
		}
		go c.handleConn(conn)
	}
}

// monitor reclaims expired leases so a SIGKILLed worker's shard goes
// back to the pending pool even if its TCP teardown never surfaced.
func (c *Coordinator) monitor() {
	tick := time.NewTicker(c.opts.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stopMonitor:
			return
		case now := <-tick.C:
			c.mu.Lock()
			for s := range c.shards {
				st := &c.shards[s]
				if st.status == shardLeased && now.After(st.expiry) {
					c.opts.Log("shard: lease on shard %d held by %q expired; reassigning", s, st.holder)
					st.status, st.holder = shardPending, ""
					c.stats.Reassigned++
					c.opts.Metrics.Add("shard_shards_reassigned_total", 1)
				}
			}
			c.mu.Unlock()
		}
	}
}

// handleConn speaks the strict request/response protocol with one
// worker. Any framing error or EOF drops the connection and releases
// the worker's leases immediately (faster than waiting out the TTL).
func (c *Coordinator) handleConn(conn net.Conn) {
	var worker string // set by a successful Hello
	defer func() {
		conn.Close()
		if worker != "" {
			c.releaseWorker(worker)
		}
	}()
	for {
		req, err := readMsg(conn)
		if err != nil {
			if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) {
				c.countReject()
				c.opts.Log("shard: dropping connection: %v", err)
			}
			return
		}
		var resp *Msg
		switch req.Type {
		case MsgHello:
			resp = c.hello(req, &worker)
		case MsgLeaseReq:
			if worker == "" {
				return // protocol violation: lease before Hello
			}
			resp = c.grant(worker)
		case MsgRenew:
			if worker == "" {
				return
			}
			resp = c.renew(worker, req)
		case MsgShardDone:
			if worker == "" {
				return
			}
			resp = c.shardDone(worker, req)
		default:
			c.countReject()
			return
		}
		if err := writeMsg(conn, resp); err != nil {
			return
		}
	}
}

func (c *Coordinator) countReject() {
	c.mu.Lock()
	c.stats.Rejected++
	c.mu.Unlock()
	c.opts.Metrics.Add("shard_frames_rejected_total", 1)
}

func (c *Coordinator) hello(req *Msg, worker *string) *Msg {
	if req.SweepID != c.sweepID {
		c.countReject()
		return &Msg{Type: MsgHelloAck, OK: false,
			Reason: fmt.Sprintf("sweep configuration mismatch: worker %s, coordinator %s (same flags on both sides?)",
				req.SweepID[:12], c.sweepID[:12])}
	}
	if !validWorkerName(req.Name) {
		c.countReject()
		return &Msg{Type: MsgHelloAck, OK: false, Reason: fmt.Sprintf("worker name %q is not path-safe", req.Name)}
	}
	*worker = req.Name
	c.mu.Lock()
	if !c.workers[req.Name] {
		c.workers[req.Name] = true
		c.stats.WorkersSeen++
		c.opts.Metrics.Add("shard_workers_seen_total", 1)
	}
	c.live[req.Name]++
	c.stats.WorkersLive = len(c.live)
	c.opts.Metrics.Set("shard_workers_live", float64(len(c.live)))
	c.mu.Unlock()
	c.opts.Log("shard: worker %q connected", req.Name)
	return &Msg{Type: MsgHelloAck, OK: true, Shards: uint32(c.opts.Shards)}
}

func (c *Coordinator) grant(worker string) *Msg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending == 0 {
		return &Msg{Type: MsgAllDone}
	}
	for s := range c.shards {
		if c.shards[s].status != shardPending {
			continue
		}
		c.shards[s] = shardState{status: shardLeased, holder: worker, expiry: time.Now().Add(c.opts.LeaseTTL)}
		c.stats.LeasesGranted++
		c.opts.Metrics.Add("shard_leases_granted_total", 1)
		c.opts.Log("shard: leased shard %d (%d cells) to %q", s, len(c.parts[s]), worker)
		return &Msg{Type: MsgLeaseGrant, Shard: uint32(s), Shards: uint32(c.opts.Shards), TTL: c.opts.LeaseTTL}
	}
	// Everything is leased but not all done: the worker should retry
	// after a fraction of the TTL (a dying holder's shard reappears then).
	return &Msg{Type: MsgNoWork, Retry: c.opts.LeaseTTL / 2}
}

func (c *Coordinator) renew(worker string, req *Msg) *Msg {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := int(req.Shard)
	if s >= len(c.shards) || c.shards[s].status != shardLeased || c.shards[s].holder != worker {
		// Revoked: the monitor reclaimed it (or it was never this
		// worker's). The worker aborts the shard; its completed cells
		// are in the cache either way.
		return &Msg{Type: MsgRenewAck, OK: false}
	}
	c.shards[s].expiry = time.Now().Add(c.opts.LeaseTTL)
	c.stats.Renewals++
	c.opts.Metrics.Add("shard_lease_renewals_total", 1)
	return &Msg{Type: MsgRenewAck, OK: true}
}

func (c *Coordinator) shardDone(worker string, req *Msg) *Msg {
	c.mu.Lock()
	s := int(req.Shard)
	if s >= len(c.shards) {
		c.mu.Unlock()
		c.countReject()
		return &Msg{Type: MsgDoneAck, OK: false}
	}
	if c.shards[s].status != shardDone {
		// Accept completion even from a worker whose lease was
		// reclaimed — the cells are content-addressed in the shared
		// cache, so a late finisher and a reassigned runner produced
		// identical entries.
		c.shards[s] = shardState{status: shardDone}
		c.pending--
		c.stats.ShardsDone++
		c.stats.CellsComputed += int(req.Computed)
		c.stats.CellsCached += int(req.Cached)
		c.opts.Metrics.Add("shard_shards_done_total", 1)
		c.opts.Metrics.Add("shard_cells_done_total", int64(req.Computed+req.Cached))
		c.opts.Metrics.Add("shard_cells_computed_total", int64(req.Computed))
		c.opts.Metrics.Add("shard_cells_cached_total", int64(req.Cached))
		c.opts.Log("shard: shard %d done by %q (%d computed, %d cached); %d shard(s) remaining",
			s, worker, req.Computed, req.Cached, c.pending)
		if c.pending == 0 {
			close(c.done)
		}
	}
	c.mu.Unlock()
	return &Msg{Type: MsgDoneAck, OK: true}
}

// releaseWorker returns a disconnected worker's leases to the pool.
func (c *Coordinator) releaseWorker(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.live[name]; n > 1 {
		c.live[name] = n - 1
	} else {
		delete(c.live, name)
	}
	c.stats.WorkersLive = len(c.live)
	c.opts.Metrics.Set("shard_workers_live", float64(len(c.live)))
	for s := range c.shards {
		st := &c.shards[s]
		if st.status == shardLeased && st.holder == name {
			c.opts.Log("shard: worker %q disconnected holding shard %d; reassigning", name, s)
			st.status, st.holder = shardPending, ""
			c.stats.Reassigned++
			c.opts.Metrics.Add("shard_shards_reassigned_total", 1)
		}
	}
}

// Close tears the coordinator down without running the final pass. Wait
// calls it; explicit calls are for error paths.
func (c *Coordinator) Close() {
	c.mu.Lock()
	stopped := c.stopped
	c.stopped = true
	c.mu.Unlock()
	if stopped {
		return
	}
	close(c.stopMonitor)
	c.ln.Close()
}

// Wait blocks until every shard is done (or ctx fires), merges the
// per-worker manifests into the sweep's main manifest, and runs the
// final warm pass: the whole sweep replayed from the now-fully-populated
// cache in this single process. Because cached replay is proven
// byte-identical to recomputation (PR 6's equivalence suite), the
// returned Result's CSV and report are byte-identical to an
// uninterrupted single-process sweep — no matter how many workers ran,
// died, or were reassigned. Any cell that somehow never reached the
// cache is recomputed here, so the output is correct even under total
// worker loss.
func (c *Coordinator) Wait(ctx context.Context) (*sweep.Result, error) {
	select {
	case <-c.done:
	case <-ctx.Done():
		c.Close()
		return nil, ctx.Err()
	}
	c.Close()
	if err := c.mergeWorkerManifests(); err != nil {
		return nil, err
	}
	final := c.opts.Sweep
	final.Resume = true
	if final.Log == nil {
		final.Log = c.opts.Log
	}
	if final.Metrics == nil {
		final.Metrics = c.opts.Metrics
	}
	return sweep.Run(ctx, final)
}

// mergeWorkerManifests folds every worker-*.jsonl in the cache dir into
// the sweep's main manifest. Merge rules: entries parse with the same
// torn-tail tolerance as resume (a SIGKILLed worker's last line may be
// torn — dropped, its cell revalidates from the cache); entries from a
// different sweep configuration are skipped whole-file; duplicate keys
// across workers (a reassigned shard's overlap) collapse via the
// manifest's own append-dedupe.
func (c *Coordinator) mergeWorkerManifests() error {
	paths, err := filepath.Glob(filepath.Join(c.opts.Sweep.Dir, "worker-*.jsonl"))
	if err != nil {
		return fmt.Errorf("shard: merge manifests: %w", err)
	}
	sort.Strings(paths)
	var m *sweep.Manifest
	if c.opts.Sweep.Resume {
		m, err = sweep.ResumeManifest(sweep.ManifestPath(c.opts.Sweep.Dir), c.sweepID)
	} else {
		m, err = sweep.CreateManifest(sweep.ManifestPath(c.opts.Sweep.Dir), c.sweepID)
	}
	if err != nil {
		return fmt.Errorf("shard: merge manifests: %w", err)
	}
	defer m.Close()
	merged, files := 0, 0
	for _, p := range paths {
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return fmt.Errorf("shard: merge manifests: %w", rerr)
		}
		gotID, entries, dropped, perr := sweep.ParseManifest(data)
		if perr != nil || gotID != c.sweepID {
			c.opts.Log("shard: skipping worker manifest %s (different sweep or unparseable)", filepath.Base(p))
			continue
		}
		if dropped > 0 {
			c.opts.Log("shard: worker manifest %s: dropped %d torn line(s)", filepath.Base(p), dropped)
		}
		for _, e := range entries {
			if aerr := m.Append(e); aerr != nil {
				return fmt.Errorf("shard: merge manifests: %w", aerr)
			}
		}
		merged += len(entries)
		files++
	}
	c.opts.Log("shard: merged %d entries from %d worker manifest(s)", merged, files)
	return m.Close()
}

// validWorkerName accepts names safe to embed in a manifest file name.
func validWorkerName(s string) bool {
	if s == "" || len(s) > maxName || s[0] == '.' || s[0] == '-' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}
