package shard

import (
	"bytes"
	"testing"
)

// FuzzControlDecode drives DecodeMsg with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to the exact frame it
// consumed (canonical encoding round trip).
func FuzzControlDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		b, err := AppendMsg(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// Seed structural near-misses: bad magic, truncated header, huge
	// declared length.
	f.Add([]byte("bmsh"))
	f.Add([]byte("bmsX\x01\x00\x01\x00\x00\x00\x00\x00"))
	f.Add([]byte{'b', 'm', 's', 'h', 1, 0, 3, 0, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := DecodeMsg(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		out, err := AppendMsg(nil, m)
		if err != nil {
			t.Fatalf("accepted message fails to re-encode: %+v: %v", m, err)
		}
		if !bytes.Equal(out, data[:n]) {
			t.Fatalf("non-canonical accept:\n in  %x\n out %x", data[:n], out)
		}
	})
}
