package shard

import (
	"encoding/binary"
	"hash/fnv"

	"github.com/browsermetric/browsermetric/internal/sweep"
)

// DefaultShards is the default partition count. More shards than workers
// keeps reassignment granular (a dead worker forfeits one shard's tail,
// not half the sweep) without adding per-cell coordination.
const DefaultShards = 16

// ShardOf assigns a cell to a shard by rendezvous (highest-random-weight)
// hashing its content address against every shard index: the winner is
// the shard whose (hash, shard) score is highest. The assignment is a
// pure function of the cell hash and the shard count — every process
// derives it identically, which is why the control protocol never has to
// ship cell lists.
func ShardOf(cellHash string, shards int) int {
	if shards <= 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	var idx [4]byte
	for s := 0; s < shards; s++ {
		h := fnv.New64a()
		h.Write([]byte(cellHash))
		binary.LittleEndian.PutUint32(idx[:], uint32(s))
		h.Write(idx[:])
		if score := h.Sum64(); s == 0 || score > bestScore {
			best, bestScore = s, score
		}
	}
	return best
}

// Partition splits a plan into shard cell-index lists: partition[s]
// holds the indices into plan of shard s's cells, each list in plan
// (matrix) order. Deterministic for a given plan and shard count.
func Partition(plan []sweep.PlannedCell, shards int) [][]int {
	if shards < 1 {
		shards = 1
	}
	out := make([][]int, shards)
	for i := range plan {
		s := ShardOf(plan[i].Hash, shards)
		out[s] = append(out[s], i)
	}
	return out
}
