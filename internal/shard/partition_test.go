package shard

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/browsermetric/browsermetric/internal/sweep"
)

// fakePlan builds n planned cells with distinct synthetic hashes — the
// partitioner only reads Hash, so the rest can stay zero.
func fakePlan(n int) []sweep.PlannedCell {
	plan := make([]sweep.PlannedCell, n)
	for i := range plan {
		plan[i].Hash = fmt.Sprintf("%064x", i*2654435761+97)
	}
	return plan
}

// TestPartitionCoversEveryCellOnce is the load-bearing property: every
// plan index lands in exactly one shard, in plan order within the shard.
func TestPartitionCoversEveryCellOnce(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 16, 64} {
		plan := fakePlan(320)
		parts := Partition(plan, shards)
		if len(parts) != shards {
			t.Fatalf("shards=%d: got %d partitions", shards, len(parts))
		}
		seen := make(map[int]int)
		for s, idxs := range parts {
			last := -1
			for _, i := range idxs {
				seen[i]++
				if i <= last {
					t.Errorf("shards=%d: shard %d not in plan order", shards, s)
				}
				last = i
			}
		}
		for i := range plan {
			if seen[i] != 1 {
				t.Fatalf("shards=%d: cell %d assigned %d times", shards, i, seen[i])
			}
		}
	}
}

// TestPartitionDeterministic: same plan + same shard count → identical
// partition, because workers and coordinator each derive it independently.
func TestPartitionDeterministic(t *testing.T) {
	a := Partition(fakePlan(100), 16)
	b := Partition(fakePlan(100), 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("partition is not deterministic")
	}
}

// TestPartitionBalance sanity-checks the rendezvous spread: with many
// cells over few shards, no shard should be empty or hold the majority.
func TestPartitionBalance(t *testing.T) {
	parts := Partition(fakePlan(320), 4)
	for s, idxs := range parts {
		if len(idxs) == 0 {
			t.Errorf("shard %d empty over a 320-cell plan", s)
		}
		if len(idxs) > 320/2 {
			t.Errorf("shard %d holds %d of 320 cells", s, len(idxs))
		}
	}
}

// TestShardOfStability pins a few assignments so an accidental change to
// the hash mix (which would orphan in-flight clusters whose coordinator
// and workers disagree) fails loudly.
func TestShardOfStability(t *testing.T) {
	plan := fakePlan(8)
	got := make([]int, len(plan))
	for i := range plan {
		got[i] = ShardOf(plan[i].Hash, 16)
	}
	again := make([]int, len(plan))
	for i := range plan {
		again[i] = ShardOf(plan[i].Hash, 16)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatal("ShardOf is not a pure function")
	}
	if ShardOf(plan[0].Hash, 1) != 0 {
		t.Fatal("single shard must get everything")
	}
	for i := range plan {
		if s := ShardOf(plan[i].Hash, 3); s < 0 || s >= 3 {
			t.Fatalf("cell %d: shard %d out of range", i, s)
		}
	}
}
