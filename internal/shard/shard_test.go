package shard

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/sweep"
)

// smallOpts mirrors the sweep package's 16-cell equivalence matrix:
// 4 methods × 2 profiles × 2 faults, 2 runs per cell.
func smallOpts(dir string) sweep.Options {
	return sweep.Options{
		Methods: []methods.Kind{methods.XHRGet, methods.DOM, methods.WebSocket, methods.JavaTCP},
		Profiles: []*browser.Profile{
			browser.Lookup(browser.Chrome, browser.Windows),
			browser.Lookup(browser.Firefox, browser.Ubuntu),
		},
		Faults:   []faults.Profile{faults.Clean, faults.BurstyWiFi},
		Runs:     2,
		Gap:      time.Second,
		BaseSeed: 11,
		Dir:      dir,
	}
}

// exportBytes renders the two deterministic byte surfaces equivalence is
// asserted over: the full per-sample CSV and the text report.
func exportBytes(t testing.TB, r *sweep.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(r.Report())
	return buf.Bytes()
}

// runCluster spins up a coordinator and n in-process workers against a
// fresh cache dir, waits for the merged result, and returns it with the
// coordinator stats. Worker options may be customized per index.
func runCluster(t *testing.T, opts sweep.Options, n int, coord CoordinatorOptions, tweak func(i int, w *WorkerOptions)) (*sweep.Result, Stats) {
	t.Helper()
	coord.Sweep = opts
	c, err := NewCoordinator(coord)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		w := WorkerOptions{
			Addr:  c.Addr(),
			Name:  "w" + string(rune('0'+i)),
			Sweep: opts,
			Log:   t.Logf,
		}
		if tweak != nil {
			tweak(i, &w)
		}
		wg.Add(1)
		go func(i int, w WorkerOptions) {
			defer wg.Done()
			_, errs[i] = RunWorker(ctx, w)
		}(i, w)
	}
	res, err := c.Wait(ctx)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()
	for i, e := range errs {
		// Crash-injected workers die by design; everyone else must exit
		// cleanly.
		if e != nil && !strings.Contains(e.Error(), "injected crash") &&
			!strings.Contains(e.Error(), "use of closed network connection") {
			t.Errorf("worker %d: %v", i, e)
		}
	}
	return res, c.Stats()
}

// TestShardEquivalence proves the tentpole contract: a 1-worker cluster,
// a 2-worker cluster, and a 4-worker cluster all export byte-identically
// to a plain single-process sweep of the same configuration.
func TestShardEquivalence(t *testing.T) {
	baseline, err := sweep.Run(context.Background(), smallOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	want := exportBytes(t, baseline)

	for _, workers := range []int{1, 2, 4} {
		opts := smallOpts(t.TempDir())
		res, stats := runCluster(t, opts, workers, CoordinatorOptions{Shards: 8, Log: t.Logf}, nil)
		got := exportBytes(t, res)
		if !bytes.Equal(got, want) {
			t.Errorf("%d-worker cluster export differs from single-process sweep (%d vs %d bytes)",
				workers, len(got), len(want))
		}
		if stats.ShardsDone != stats.Shards {
			t.Errorf("%d workers: %d of %d shards done", workers, stats.ShardsDone, stats.Shards)
		}
		if done := stats.CellsComputed + stats.CellsCached; done < stats.Cells {
			t.Errorf("%d workers: shard reports cover %d of %d cells", workers, done, stats.Cells)
		}
		if res.Stats.Computed > 0 {
			t.Errorf("%d workers: final warm pass computed %d cells; cache should have been complete", workers, res.Stats.Computed)
		}
	}
}

// TestShardWorkerCrashMidRun kills one of three workers after two cells
// (severed connection, no goodbye — the in-process analogue of the CI
// job's SIGKILL). The coordinator must reassign the dead worker's lease
// and the merged output must still be byte-identical to an uninterrupted
// single-process run, with the dead worker's completed cells replayed
// from the cache rather than recomputed.
func TestShardWorkerCrashMidRun(t *testing.T) {
	baseline, err := sweep.Run(context.Background(), smallOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	want := exportBytes(t, baseline)

	opts := smallOpts(t.TempDir())
	// A short TTL keeps the lease-expiry path fast; 8 shards over 16
	// cells gives the survivors work to steal.
	res, stats := runCluster(t, opts, 3,
		CoordinatorOptions{Shards: 8, LeaseTTL: time.Second, Log: t.Logf},
		func(i int, w *WorkerOptions) {
			if i == 0 {
				w.crashAfterCells = 2
			}
		})
	if got := exportBytes(t, res); !bytes.Equal(got, want) {
		t.Errorf("post-crash cluster export differs from single-process sweep")
	}
	if stats.Reassigned == 0 {
		t.Error("worker died holding a lease but nothing was reassigned")
	}
	if stats.ShardsDone != stats.Shards {
		t.Errorf("%d of %d shards done", stats.ShardsDone, stats.Shards)
	}
	if res.Stats.Computed > 0 {
		t.Errorf("final warm pass computed %d cells", res.Stats.Computed)
	}
}

// TestShardSilentWorkerLeaseExpires takes a lease over the raw wire and
// then goes silent without disconnecting: the TTL monitor (not the
// conn-drop fast path) must reclaim the shard so a real worker can run it.
func TestShardSilentWorkerLeaseExpires(t *testing.T) {
	opts := smallOpts(t.TempDir())
	c, err := NewCoordinator(CoordinatorOptions{Sweep: opts, Shards: 4, LeaseTTL: 300 * time.Millisecond, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ack, err := call(conn, &Msg{Type: MsgHello, Name: "zombie", SweepID: opts.ID()})
	if err != nil || !ack.OK {
		t.Fatalf("hello: %v %+v", err, ack)
	}
	grant, err := call(conn, &Msg{Type: MsgLeaseReq})
	if err != nil || grant.Type != MsgLeaseGrant {
		t.Fatalf("lease: %v %+v", err, grant)
	}
	// Hold the lease silently past the TTL; keep the conn open so only
	// the monitor can reclaim it.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Reassigned == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// A renewal after reclamation must come back revoked.
	rack, err := call(conn, &Msg{Type: MsgRenew, Shard: grant.Shard})
	if err != nil {
		t.Fatal(err)
	}
	if rack.Type != MsgRenewAck || rack.OK {
		t.Fatalf("renew after expiry: %+v, want revoked", rack)
	}
}

// TestShardHelloRejectsMismatchedSweep: a worker whose flags derive a
// different sweep configuration must be refused at Hello, not allowed to
// poison the cache with cells of another matrix.
func TestShardHelloRejectsMismatchedSweep(t *testing.T) {
	opts := smallOpts(t.TempDir())
	c, err := NewCoordinator(CoordinatorOptions{Sweep: opts, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	other := opts
	other.BaseSeed = 999 // different seed → different sweep ID
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, werr := RunWorker(ctx, WorkerOptions{Addr: c.Addr(), Name: "stray", Sweep: other, Log: t.Logf})
	if werr == nil || !strings.Contains(werr.Error(), "mismatch") {
		t.Fatalf("mismatched worker got %v, want configuration-mismatch refusal", werr)
	}
	if c.Stats().Rejected == 0 {
		t.Error("refused Hello not counted in Rejected")
	}
}

// TestShardCorruptFrameCounted: garbage on the control port is counted
// and dropped without disturbing the coordinator.
func TestShardCorruptFrameCounted(t *testing.T) {
	opts := smallOpts(t.TempDir())
	c, err := NewCoordinator(CoordinatorOptions{Sweep: opts, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// A full-size frame with a corrupted payload byte (CRC mismatch).
	b, err := AppendMsg(nil, &Msg{Type: MsgHello, Name: "x", SweepID: opts.ID()})
	if err != nil {
		t.Fatal(err)
	}
	b[headerLen] ^= 0xff
	if _, err := conn.Write(b); err != nil {
		t.Fatal(err)
	}
	// The coordinator drops the conn; the read observes EOF.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, rerr := conn.Read(make([]byte, 1)); rerr == nil {
		t.Error("coordinator kept talking after a corrupt frame")
	}
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Rejected == 0 {
		if time.Now().After(deadline) {
			t.Fatal("corrupt frame never counted")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShardMetricsRegistered: the coordinator exposes the shard_* metric
// families on a live registry.
func TestShardMetricsRegistered(t *testing.T) {
	m := obs.NewMetrics()
	opts := smallOpts(t.TempDir())
	res, _ := runCluster(t, opts, 2, CoordinatorOptions{Shards: 4, Log: t.Logf, Metrics: m}, nil)
	if res == nil {
		t.Fatal("no result")
	}
	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	text := buf.String()
	for _, name := range []string{
		"shard_shards", "shard_cells", "shard_shards_done_total",
		"shard_cells_done_total", "shard_leases_granted_total", "shard_workers_seen_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s missing from exposition:\n%s", name, text)
		}
	}
}

// TestShardResumeSkipsWarmCells: a second cluster over the same cache
// dir (Resume) must replay everything from the cache — zero computes.
func TestShardResumeSkipsWarmCells(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts(dir)
	first, stats := runCluster(t, opts, 2, CoordinatorOptions{Shards: 4, Log: t.Logf}, nil)
	if stats.CellsComputed == 0 {
		t.Fatal("cold cluster computed nothing")
	}
	warm := smallOpts(dir)
	warm.Resume = true
	second, wstats := runCluster(t, warm, 2, CoordinatorOptions{Shards: 4, Log: t.Logf}, nil)
	if wstats.CellsComputed != 0 {
		t.Errorf("warm cluster computed %d cells, want 0", wstats.CellsComputed)
	}
	if !bytes.Equal(exportBytes(t, first), exportBytes(t, second)) {
		t.Error("warm cluster export differs from cold")
	}
}
