// Package shard is the distributed sweep runner: a coordinator process
// partitions the sweep's cell matrix into shards (rendezvous-hashed over
// cell content addresses, so the assignment is a pure function of the
// sweep configuration), leases shards to worker processes over a small
// framed control protocol, and — once every shard is done — merges the
// per-worker JSONL manifests and replays the whole sweep warm from the
// shared content-addressed cache, producing a CSV/report byte-identical
// to a single-process run.
//
// Design rules, inherited from the fleet plane and the sweep cache:
//
//   - coordination stays off the per-cell compute path: the control
//     protocol exchanges shard numbers and lease renewals, never cell
//     configs or samples (workers re-derive the cell list from the same
//     sweep options, verified by the sweep configuration ID at Hello);
//   - every frame is length-prefixed and CRC-32C checksummed (the
//     fleetwire framing discipline), so a torn stream or bit flip is a
//     counted rejection at the frame boundary, never a misparsed lease;
//   - worker death is survivable by construction: per-cell cache files
//     are content-addressed, self-checking and written temp-then-rename,
//     so a reassigned shard replays the dead worker's completed cells
//     from the cache instead of recomputing them, and the final merged
//     output cannot depend on which worker computed what.
//
// Frame layout (integers little-endian):
//
//	[4]byte  magic "bmsh"
//	u16      wire version (Version)
//	u16      message type
//	u32      payload length
//	payload  (per-type encoding, uvarint-length strings)
//	u32      CRC-32 (Castagnoli) over version, type, length and payload
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Version is the control-protocol version this package speaks.
const Version = 1

// magic opens every control frame.
var magic = [4]byte{'b', 'm', 's', 'h'}

const (
	headerLen = 12 // magic + version + type + payload length
	crcLen    = 4

	// maxPayload bounds one control frame. Control messages are tens of
	// bytes; the cap keeps a corrupt length prefix from becoming an
	// allocation bomb.
	maxPayload = 1 << 16

	// maxName bounds a worker name; names become manifest file names, so
	// they are further restricted to path-safe characters at Hello.
	maxName = 64
	// maxReason bounds a rejection reason string.
	maxReason = 512
	// sweepIDLen is the exact length of a sweep configuration ID
	// (lowercase hex SHA-256).
	sweepIDLen = 64
)

// Sentinel errors; DecodeMsg wraps them with positional detail.
var (
	// ErrTruncated marks an input that ends mid-frame: a stream reader
	// may retry with more bytes.
	ErrTruncated = errors.New("shard: truncated frame")
	// ErrCorrupt marks a structurally invalid or checksum-failing frame.
	ErrCorrupt = errors.New("shard: corrupt frame")
	// ErrVersion marks a well-formed frame of an unsupported version.
	ErrVersion = errors.New("shard: unsupported wire version")
)

// MsgType enumerates the control messages.
type MsgType uint16

const (
	// MsgHello (worker→coordinator) opens a session: the worker's name
	// and the sweep configuration ID it derived from its flags.
	MsgHello MsgType = 1
	// MsgHelloAck (coordinator→worker) accepts or rejects the session.
	MsgHelloAck MsgType = 2
	// MsgLeaseReq (worker→coordinator) asks for a shard lease.
	MsgLeaseReq MsgType = 3
	// MsgLeaseGrant (coordinator→worker) leases one shard: the worker
	// re-derives the shard's cells from (shard, shards) locally.
	MsgLeaseGrant MsgType = 4
	// MsgNoWork (coordinator→worker) reports every shard is leased but
	// not all are done; retry after the hinted delay.
	MsgNoWork MsgType = 5
	// MsgAllDone (coordinator→worker) reports the sweep is complete; the
	// worker exits.
	MsgAllDone MsgType = 6
	// MsgRenew (worker→coordinator) extends a lease mid-shard.
	MsgRenew MsgType = 7
	// MsgRenewAck (coordinator→worker) confirms or revokes the lease.
	MsgRenewAck MsgType = 8
	// MsgShardDone (worker→coordinator) reports a completed shard with
	// its computed/cached cell counts.
	MsgShardDone MsgType = 9
	// MsgDoneAck (coordinator→worker) acknowledges MsgShardDone.
	MsgDoneAck MsgType = 10
)

// String names the message type for logs.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgLeaseReq:
		return "lease-req"
	case MsgLeaseGrant:
		return "lease-grant"
	case MsgNoWork:
		return "no-work"
	case MsgAllDone:
		return "all-done"
	case MsgRenew:
		return "renew"
	case MsgRenewAck:
		return "renew-ack"
	case MsgShardDone:
		return "shard-done"
	case MsgDoneAck:
		return "done-ack"
	}
	return fmt.Sprintf("shard.MsgType(%d)", uint16(t))
}

// Msg is one decoded control message. Which fields are meaningful
// depends on Type; encoding writes only the fields the type defines, so
// stray fields can never leak onto the wire.
type Msg struct {
	Type MsgType

	// Name and SweepID travel in MsgHello.
	Name    string
	SweepID string
	// OK rides MsgHelloAck / MsgRenewAck / MsgDoneAck; Reason explains a
	// rejection (MsgHelloAck only).
	OK     bool
	Reason string
	// Shard/Shards identify a shard of a fixed partition count
	// (MsgLeaseGrant, MsgRenew, MsgShardDone; Shards also in MsgHelloAck).
	Shard  uint32
	Shards uint32
	// TTL is the lease duration (MsgLeaseGrant); Retry the no-work
	// backoff hint (MsgNoWork).
	TTL   time.Duration
	Retry time.Duration
	// Done counts cells finished so far in the renewed shard (MsgRenew).
	// Computed/Cached are the completed shard's counts (MsgShardDone).
	Done             uint32
	Computed, Cached uint32
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendMsg appends the canonical encoding of m to b.
func AppendMsg(b []byte, m *Msg) ([]byte, error) {
	var payload []byte
	switch m.Type {
	case MsgHello:
		if len(m.Name) == 0 || len(m.Name) > maxName {
			return nil, fmt.Errorf("shard: worker name %q out of range", m.Name)
		}
		if len(m.SweepID) != sweepIDLen {
			return nil, fmt.Errorf("shard: sweep ID length %d, want %d", len(m.SweepID), sweepIDLen)
		}
		payload = appendString(payload, m.Name)
		payload = appendString(payload, m.SweepID)
	case MsgHelloAck:
		if len(m.Reason) > maxReason {
			return nil, fmt.Errorf("shard: reason too long")
		}
		payload = appendBool(payload, m.OK)
		payload = appendString(payload, m.Reason)
		payload = binary.LittleEndian.AppendUint32(payload, m.Shards)
	case MsgLeaseReq, MsgAllDone:
		// empty payload
	case MsgLeaseGrant:
		payload = binary.LittleEndian.AppendUint32(payload, m.Shard)
		payload = binary.LittleEndian.AppendUint32(payload, m.Shards)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(m.TTL))
	case MsgNoWork:
		payload = binary.LittleEndian.AppendUint64(payload, uint64(m.Retry))
	case MsgRenew:
		payload = binary.LittleEndian.AppendUint32(payload, m.Shard)
		payload = binary.LittleEndian.AppendUint32(payload, m.Done)
	case MsgRenewAck, MsgDoneAck:
		payload = appendBool(payload, m.OK)
	case MsgShardDone:
		payload = binary.LittleEndian.AppendUint32(payload, m.Shard)
		payload = binary.LittleEndian.AppendUint32(payload, m.Computed)
		payload = binary.LittleEndian.AppendUint32(payload, m.Cached)
	default:
		return nil, fmt.Errorf("shard: cannot encode message type %v", m.Type)
	}
	start := len(b)
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.LittleEndian.AppendUint16(b, uint16(m.Type))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	// The CRC covers everything after the magic — version, type, length
	// and payload — so a flipped type field cannot alias two messages
	// that share a payload shape.
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[start+4:], castagnoli))
	return b, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// DecodeMsg parses the first control frame in b and returns it with the
// number of bytes consumed. Errors wrap ErrTruncated (incomplete input),
// ErrVersion (recognizable frame of another version; consumed reports
// the full frame length so a stream can skip it) or ErrCorrupt.
func DecodeMsg(b []byte) (*Msg, int, error) {
	if len(b) < headerLen {
		return nil, 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	if [4]byte(b[:4]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := binary.LittleEndian.Uint16(b[4:])
	typ := MsgType(binary.LittleEndian.Uint16(b[6:]))
	payloadLen := int(binary.LittleEndian.Uint32(b[8:]))
	if payloadLen > maxPayload {
		return nil, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, payloadLen)
	}
	total := headerLen + payloadLen + crcLen
	if len(b) < total {
		return nil, 0, fmt.Errorf("%w: have %d of %d bytes", ErrTruncated, len(b), total)
	}
	if version != Version {
		return nil, total, fmt.Errorf("%w: got %d, want %d", ErrVersion, version, Version)
	}
	payload := b[headerLen : headerLen+payloadLen]
	wantCRC := binary.LittleEndian.Uint32(b[headerLen+payloadLen:])
	if crc32.Checksum(b[4:headerLen+payloadLen], castagnoli) != wantCRC {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	m, err := decodePayload(typ, payload)
	if err != nil {
		return nil, 0, err
	}
	return m, total, nil
}

func decodePayload(typ MsgType, p []byte) (*Msg, error) {
	d := wireReader{buf: p}
	m := &Msg{Type: typ}
	ok := true
	switch typ {
	case MsgHello:
		if m.Name, ok = d.str(maxName); !ok || m.Name == "" {
			return nil, fmt.Errorf("%w: hello name", ErrCorrupt)
		}
		if m.SweepID, ok = d.str(sweepIDLen); !ok || len(m.SweepID) != sweepIDLen {
			return nil, fmt.Errorf("%w: hello sweep ID", ErrCorrupt)
		}
	case MsgHelloAck:
		if m.OK, ok = d.boolean(); !ok {
			return nil, fmt.Errorf("%w: hello-ack flag", ErrCorrupt)
		}
		if m.Reason, ok = d.str(maxReason); !ok {
			return nil, fmt.Errorf("%w: hello-ack reason", ErrCorrupt)
		}
		if m.Shards, ok = d.u32(); !ok {
			return nil, fmt.Errorf("%w: hello-ack shards", ErrCorrupt)
		}
	case MsgLeaseReq, MsgAllDone:
		// empty payload
	case MsgLeaseGrant:
		var ttl uint64
		if m.Shard, ok = d.u32(); !ok {
			return nil, fmt.Errorf("%w: grant shard", ErrCorrupt)
		}
		if m.Shards, ok = d.u32(); !ok {
			return nil, fmt.Errorf("%w: grant shards", ErrCorrupt)
		}
		if ttl, ok = d.u64(); !ok || ttl > uint64(time.Hour) {
			return nil, fmt.Errorf("%w: grant ttl", ErrCorrupt)
		}
		if m.Shards == 0 || m.Shard >= m.Shards {
			return nil, fmt.Errorf("%w: grant shard %d of %d", ErrCorrupt, m.Shard, m.Shards)
		}
		m.TTL = time.Duration(ttl)
	case MsgNoWork:
		var retry uint64
		if retry, ok = d.u64(); !ok || retry > uint64(time.Hour) {
			return nil, fmt.Errorf("%w: no-work retry", ErrCorrupt)
		}
		m.Retry = time.Duration(retry)
	case MsgRenew:
		if m.Shard, ok = d.u32(); !ok {
			return nil, fmt.Errorf("%w: renew shard", ErrCorrupt)
		}
		if m.Done, ok = d.u32(); !ok {
			return nil, fmt.Errorf("%w: renew done", ErrCorrupt)
		}
	case MsgRenewAck, MsgDoneAck:
		if m.OK, ok = d.boolean(); !ok {
			return nil, fmt.Errorf("%w: ack flag", ErrCorrupt)
		}
	case MsgShardDone:
		if m.Shard, ok = d.u32(); !ok {
			return nil, fmt.Errorf("%w: done shard", ErrCorrupt)
		}
		if m.Computed, ok = d.u32(); !ok {
			return nil, fmt.Errorf("%w: done computed", ErrCorrupt)
		}
		if m.Cached, ok = d.u32(); !ok {
			return nil, fmt.Errorf("%w: done cached", ErrCorrupt)
		}
	default:
		return nil, fmt.Errorf("%w: unknown message type %d", ErrCorrupt, uint16(typ))
	}
	if d.off != len(p) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p)-d.off)
	}
	return m, nil
}

// uvarintLen is the minimal encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// wireReader is a bounds-checked cursor over one payload.
type wireReader struct {
	buf []byte
	off int
}

func (d *wireReader) u32() (uint32, bool) {
	if d.off+4 > len(d.buf) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, true
}

func (d *wireReader) u64() (uint64, bool) {
	if d.off+8 > len(d.buf) {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, true
}

func (d *wireReader) boolean() (bool, bool) {
	if d.off >= len(d.buf) || d.buf[d.off] > 1 {
		return false, false
	}
	v := d.buf[d.off] == 1
	d.off++
	return v, true
}

func (d *wireReader) str(max int) (string, bool) {
	n, sz := binary.Uvarint(d.buf[d.off:])
	if sz <= 0 || n > uint64(max) || d.off+sz+int(n) > len(d.buf) {
		return "", false
	}
	// Reject non-minimal varints so every accepted frame has exactly one
	// encoding (the fuzz harness asserts decode∘encode is the identity).
	if sz != uvarintLen(n) {
		return "", false
	}
	d.off += sz
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, true
}
