package shard

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"
	"time"
)

// sampleMsgs covers every message type with every per-type field set to
// a non-zero value, so round-trip failures cannot hide in defaults.
func sampleMsgs() []*Msg {
	id := strings.Repeat("ab", 32)
	return []*Msg{
		{Type: MsgHello, Name: "worker-1", SweepID: id},
		{Type: MsgHelloAck, OK: true, Shards: 16},
		{Type: MsgHelloAck, OK: false, Reason: "sweep configuration mismatch", Shards: 0},
		{Type: MsgLeaseReq},
		{Type: MsgLeaseGrant, Shard: 3, Shards: 16, TTL: 5 * time.Second},
		{Type: MsgNoWork, Retry: 2500 * time.Millisecond},
		{Type: MsgAllDone},
		{Type: MsgRenew, Shard: 7, Done: 42},
		{Type: MsgRenewAck, OK: true},
		{Type: MsgRenewAck, OK: false},
		{Type: MsgShardDone, Shard: 15, Computed: 9, Cached: 4},
		{Type: MsgDoneAck, OK: true},
	}
}

func TestWireRoundTrip(t *testing.T) {
	for _, want := range sampleMsgs() {
		b, err := AppendMsg(nil, want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Type, err)
		}
		got, n, err := DecodeMsg(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Type, err)
		}
		if n != len(b) {
			t.Errorf("%v: consumed %d of %d bytes", want.Type, n, len(b))
		}
		if *got != *want {
			t.Errorf("%v: round trip:\n got %+v\nwant %+v", want.Type, got, want)
		}
	}
}

// TestWireRoundTripConcatenated decodes a stream of back-to-back frames,
// verifying the consumed-byte accounting that a stream reader relies on.
func TestWireRoundTripConcatenated(t *testing.T) {
	msgs := sampleMsgs()
	var b []byte
	var err error
	for _, m := range msgs {
		if b, err = AppendMsg(b, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; len(b) > 0; i++ {
		got, n, err := DecodeMsg(b)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if *got != *msgs[i] {
			t.Errorf("frame %d: got %+v want %+v", i, got, msgs[i])
		}
		b = b[n:]
	}
}

// TestWireTruncation feeds every strict prefix of every encoded message:
// each must fail cleanly (never panic, never decode) and report
// ErrTruncated whenever the header survived intact.
func TestWireTruncation(t *testing.T) {
	for _, m := range sampleMsgs() {
		b, err := AppendMsg(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(b); n++ {
			_, _, err := DecodeMsg(b[:n])
			if err == nil {
				t.Fatalf("%v: decoded from %d of %d bytes", m.Type, n, len(b))
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("%v: prefix %d/%d: got %v, want ErrTruncated", m.Type, n, len(b), err)
			}
		}
	}
}

// TestWireBitFlips flips every bit of every encoded message; each flip
// must either fail to decode or decode to a different-but-valid message
// whose frame is internally consistent — a flip may never pass CRC and
// still misreport fields. (Flips inside the CRC or the length prefix are
// what make "decodes differently" impossible; this asserts it.)
func TestWireBitFlips(t *testing.T) {
	for _, m := range sampleMsgs() {
		b, err := AppendMsg(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(b)*8; i++ {
			mut := make([]byte, len(b))
			copy(mut, b)
			mut[i/8] ^= 1 << (i % 8)
			got, _, err := DecodeMsg(mut)
			if err != nil {
				continue // rejection is the expected outcome
			}
			// A surviving decode means the flip produced a
			// self-consistent frame, which a single-bit flip cannot:
			// payload flips break the CRC, header flips break the magic,
			// version, type, or length, and CRC flips break themselves.
			t.Fatalf("%v: bit %d flip decoded to %+v", m.Type, i, got)
		}
	}
}

// TestWireVersionSkew rewrites the version field; decode must return
// ErrVersion and still report the full frame length so a stream can skip.
func TestWireVersionSkew(t *testing.T) {
	b, err := AppendMsg(nil, &Msg{Type: MsgLeaseReq})
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(b[4:], Version+1)
	_, n, err := DecodeMsg(b)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
	if n != len(b) {
		t.Fatalf("version skew consumed %d of %d bytes", n, len(b))
	}
}

func TestWireRejectsOversizedPayloadLength(t *testing.T) {
	b, err := AppendMsg(nil, &Msg{Type: MsgLeaseReq})
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(b[8:], maxPayload+1)
	if _, _, err := DecodeMsg(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestWireEncodeValidation(t *testing.T) {
	id := strings.Repeat("ab", 32)
	bad := []*Msg{
		{Type: MsgHello, Name: "", SweepID: id},                       // empty name
		{Type: MsgHello, Name: strings.Repeat("x", 65), SweepID: id},  // long name
		{Type: MsgHello, Name: "w", SweepID: "abc"},                   // short sweep ID
		{Type: MsgHelloAck, Reason: strings.Repeat("r", maxReason+1)}, // long reason
		{Type: MsgType(99)}, // unknown type
	}
	for _, m := range bad {
		if _, err := AppendMsg(nil, m); err == nil {
			t.Errorf("%+v: encode accepted invalid message", m)
		}
	}
}

// TestWireDecodeRejectsInvalidGrants checks the semantic bounds baked
// into decode: a grant's shard must index its partition and the TTL is
// capped, so a corrupt-but-CRC-valid peer cannot push a worker out of
// range.
func TestWireDecodeRejectsInvalidGrants(t *testing.T) {
	frame := func(shard, shards uint32, ttl time.Duration) []byte {
		var payload []byte
		payload = binary.LittleEndian.AppendUint32(payload, shard)
		payload = binary.LittleEndian.AppendUint32(payload, shards)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(ttl))
		return rawFrame(MsgLeaseGrant, payload)
	}
	cases := [][]byte{
		frame(5, 5, time.Second),         // shard == shards
		frame(0, 0, time.Second),         // zero shards
		frame(0, 1, 2*time.Hour),         // TTL over cap
		rawFrame(MsgLeaseGrant, nil),     // empty payload
		rawFrame(MsgLeaseReq, []byte{0}), // trailing bytes
		rawFrame(MsgRenewAck, []byte{2}), // non-canonical bool
	}
	for i, b := range cases {
		if _, _, err := DecodeMsg(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: got %v, want ErrCorrupt", i, err)
		}
	}
}

// rawFrame assembles a frame around an arbitrary payload, bypassing
// AppendMsg's validation — for testing decode's own checks.
func rawFrame(typ MsgType, payload []byte) []byte {
	var b []byte
	b = append(b, magic[:]...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.LittleEndian.AppendUint16(b, uint16(typ))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[4:], castagnoli))
}
