package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/browsermetric/browsermetric/internal/arena"
	"github.com/browsermetric/browsermetric/internal/core"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/sweep"
)

// WorkerOptions configures one shard worker process.
type WorkerOptions struct {
	// Addr is the coordinator's control address.
	Addr string
	// Name identifies the worker; it must be unique in the cluster and
	// path-safe (it names the worker's manifest file).
	Name string
	// Sweep must be identical to the coordinator's configuration; the
	// Hello handshake compares sweep IDs and refuses a mismatch.
	Sweep sweep.Options
	// Workers caps in-process cell concurrency per shard
	// (0 = GOMAXPROCS). Purely a wall-clock knob: cell results are
	// byte-identical at any value.
	Workers int
	// Log, when non-nil, receives progress notices.
	Log func(format string, args ...any)
	// Metrics, when non-nil, receives the worker-side sweep_cache_*
	// counters.
	Metrics *obs.Metrics
	// OnCell, when non-nil, fires per completed cell.
	OnCell func(pc *sweep.PlannedCell, cached bool)

	// crashAfterCells, when positive, abruptly severs the connection and
	// aborts after that many completed cells — the test hook behind the
	// in-process worker-death equivalence suite. The CI cluster job does
	// the same thing to a real process with SIGKILL.
	crashAfterCells int
}

// WorkerStats summarizes one worker's contribution.
type WorkerStats struct {
	// ShardsDone counts shards this worker completed and reported.
	ShardsDone int
	// Computed cells ran the simulator here; Cached were replayed from
	// the shared cache (warm entries, or a dead worker's leftovers).
	Computed, Cached int
	// Revoked counts shards abandoned mid-run because the lease was
	// reclaimed (another worker finished them).
	Revoked int
}

// errLeaseRevoked aborts a shard whose lease the coordinator reclaimed.
var errLeaseRevoked = errors.New("shard: lease revoked")

// errCrashInjected is the test hook's abort.
var errCrashInjected = errors.New("shard: injected crash")

// RunWorker connects to the coordinator and executes leased shards until
// the coordinator reports the sweep complete. Cells run through the
// shared content-addressed cache exactly as the in-process scheduler
// would run them (same config construction, same keys), so any mix of
// workers produces the same cache contents.
func RunWorker(ctx context.Context, o WorkerOptions) (WorkerStats, error) {
	var stats WorkerStats
	if o.Name == "" || !validWorkerName(o.Name) {
		return stats, fmt.Errorf("shard: worker name %q must be non-empty and path-safe", o.Name)
	}
	if o.Sweep.Dir == "" {
		return stats, fmt.Errorf("shard: worker requires a cache dir")
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	sweepID := o.Sweep.ID()
	plan := sweep.Plan(o.Sweep)
	cache, err := sweep.OpenCache(o.Sweep.Dir, o.Sweep.Salt)
	if err != nil {
		return stats, err
	}
	cache.SetLog(o.Log)
	cache.SetMetrics(o.Metrics)
	manifest, err := sweep.CreateManifest(WorkerManifestPath(o.Sweep.Dir, o.Name), sweepID)
	if err != nil {
		return stats, err
	}
	defer manifest.Close()

	conn, err := net.DialTimeout("tcp", o.Addr, 10*time.Second)
	if err != nil {
		return stats, fmt.Errorf("shard: worker dial: %w", err)
	}
	defer conn.Close()
	ack, err := call(conn, &Msg{Type: MsgHello, Name: o.Name, SweepID: sweepID})
	if err != nil {
		return stats, fmt.Errorf("shard: worker hello: %w", err)
	}
	if ack.Type != MsgHelloAck {
		return stats, fmt.Errorf("shard: worker hello: unexpected %v reply", ack.Type)
	}
	if !ack.OK {
		return stats, fmt.Errorf("shard: coordinator refused worker: %s", ack.Reason)
	}

	w := &workerRun{opts: &o, plan: plan, cache: cache, manifest: manifest, conn: conn}
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		resp, err := call(conn, &Msg{Type: MsgLeaseReq})
		if err != nil {
			return stats, fmt.Errorf("shard: worker lease request: %w", err)
		}
		switch resp.Type {
		case MsgAllDone:
			o.Log("shard: worker %q done (%d shards, %d computed, %d cached)",
				o.Name, stats.ShardsDone, stats.Computed, stats.Cached)
			return stats, nil
		case MsgNoWork:
			retry := resp.Retry
			if retry <= 0 {
				retry = time.Second
			}
			select {
			case <-time.After(retry):
			case <-ctx.Done():
				return stats, ctx.Err()
			}
		case MsgLeaseGrant:
			computed, cached, err := w.runShard(ctx, resp)
			stats.Computed += computed
			stats.Cached += cached
			switch {
			case err == nil:
				stats.ShardsDone++
			case errors.Is(err, errLeaseRevoked):
				// Another worker owns the shard now; its cells are
				// content-addressed, so whatever we finished still counts
				// (the new holder replays it from the cache).
				stats.Revoked++
				o.Log("shard: worker %q lost the lease on shard %d; moving on", o.Name, resp.Shard)
			default:
				return stats, err
			}
		default:
			return stats, fmt.Errorf("shard: worker lease request: unexpected %v reply", resp.Type)
		}
	}
}

// WorkerManifestPath is where worker name's JSONL manifest lives inside
// the shared cache dir; the coordinator merges these after all shards
// complete.
func WorkerManifestPath(dir, name string) string {
	return filepath.Join(dir, "worker-"+name+".jsonl")
}

// workerRun carries one worker session's execution state.
type workerRun struct {
	opts     *WorkerOptions
	plan     []sweep.PlannedCell
	cache    *sweep.Cache
	manifest *sweep.Manifest
	conn     net.Conn
	parts    [][]int // lazily derived from the granted partition count
	nShards  int
	crashed  atomic.Int64 // completed-cell counter for the crash hook
}

// runShard executes one leased shard: the cells run on a local worker
// pool while this goroutine — the connection's only user — renews the
// lease at TTL/3. Returns errLeaseRevoked if the coordinator reclaimed
// the lease mid-run.
func (w *workerRun) runShard(parent context.Context, grant *Msg) (computed, cached int, err error) {
	if w.parts == nil || w.nShards != int(grant.Shards) {
		w.nShards = int(grant.Shards)
		w.parts = Partition(w.plan, w.nShards)
	}
	idxs := w.parts[grant.Shard]
	w.opts.Log("shard: worker %q running shard %d (%d cells)", w.opts.Name, grant.Shard, len(idxs))

	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var done32 atomic.Int64
	result := make(chan error, 1)
	go func() {
		c, h, rerr := w.runCells(ctx, idxs, &done32)
		computed, cached = c, h
		result <- rerr
	}()

	ttl := grant.TTL
	if ttl <= 0 {
		ttl = 5 * time.Second
	}
	tick := time.NewTicker(ttl / 3)
	defer tick.Stop()
	for {
		select {
		case rerr := <-result:
			if rerr != nil {
				return computed, cached, rerr
			}
			ack, cerr := call(w.conn, &Msg{Type: MsgShardDone, Shard: grant.Shard,
				Computed: uint32(computed), Cached: uint32(cached)})
			if cerr != nil {
				return computed, cached, fmt.Errorf("shard: report shard done: %w", cerr)
			}
			if ack.Type != MsgDoneAck || !ack.OK {
				return computed, cached, fmt.Errorf("shard: shard %d completion not acknowledged", grant.Shard)
			}
			return computed, cached, nil
		case <-tick.C:
			ack, cerr := call(w.conn, &Msg{Type: MsgRenew, Shard: grant.Shard, Done: uint32(done32.Load())})
			if cerr != nil {
				cancel()
				<-result
				return computed, cached, fmt.Errorf("shard: lease renewal: %w", cerr)
			}
			if ack.Type != MsgRenewAck || !ack.OK {
				cancel()
				<-result
				return computed, cached, errLeaseRevoked
			}
		case <-ctx.Done():
			<-result
			return computed, cached, ctx.Err()
		}
	}
}

// runCells executes the shard's cells on a pool: cache hit → replay and
// record; miss → simulate (arena-backed, same as the study scheduler),
// store, record. Both paths append to the worker's manifest.
func (w *workerRun) runCells(ctx context.Context, idxs []int, doneCells *atomic.Int64) (computed, cached int, err error) {
	if len(idxs) == 0 {
		return 0, 0, nil
	}
	workers := w.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(idxs) {
		workers = len(idxs)
	}
	jobs := make(chan int, len(idxs))
	for _, i := range idxs {
		jobs <- i
	}
	close(jobs)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(e error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		mu.Unlock()
		cancel()
	}
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := arena.New(0)
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				pc := &w.plan[i]
				if _, ok := w.cache.Load(pc.Config); ok {
					if aerr := w.manifest.Append(pc.ManifestEntry(true)); aerr != nil {
						fail(aerr)
						return
					}
					mu.Lock()
					cached++
					mu.Unlock()
					if !w.cellDone(pc, true, doneCells) {
						fail(errCrashInjected)
						return
					}
					continue
				}
				cfg := pc.Config
				cfg.Testbed.Arena = a
				exp, rerr := core.RunContext(ctx, cfg)
				if rerr != nil {
					if errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded) {
						return
					}
					fail(fmt.Errorf("shard: cell %s: %w", pc.Hash[:8], rerr))
					return
				}
				// Store under the plan's pristine config (no arena), the
				// exact key the study scheduler uses.
				if serr := w.cache.Store(pc.Config, exp); serr != nil {
					fail(serr)
					return
				}
				if aerr := w.manifest.Append(pc.ManifestEntry(false)); aerr != nil {
					fail(aerr)
					return
				}
				mu.Lock()
				computed++
				mu.Unlock()
				if !w.cellDone(pc, false, doneCells) {
					fail(errCrashInjected)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return computed, cached, firstErr
	}
	return computed, cached, ctx.Err()
}

// cellDone fires the progress hook and the crash-injection hook; a false
// return means the injected crash tripped (the conn is already severed).
func (w *workerRun) cellDone(pc *sweep.PlannedCell, cachedHit bool, doneCells *atomic.Int64) bool {
	doneCells.Add(1)
	if cb := w.opts.OnCell; cb != nil {
		cb(pc, cachedHit)
	}
	if w.opts.crashAfterCells > 0 && w.crashed.Add(1) == int64(w.opts.crashAfterCells) {
		// Die the way SIGKILL dies: no ShardDone, no goodbye — just a
		// severed connection. The coordinator must reassign the lease.
		w.conn.Close()
		return false
	}
	return true
}
