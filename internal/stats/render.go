package stats

import (
	"fmt"
	"math"
	"strings"
)

// RenderBoxes draws labeled box-and-whisker plots as ASCII art, one row
// per box, sharing a common horizontal scale — a terminal rendition of
// the paper's Figure 3 panels.
//
//	C (U) Δd1  |    ·  ├────[█──╂────]──────┤        ·    |
//
// Glyphs: [ ] box (Q1..Q3), ╂ median, ├ ┤ whiskers, · outliers.
func RenderBoxes(labels []string, boxes []Box, width int) string {
	if len(labels) != len(boxes) {
		panic("stats: RenderBoxes label/box count mismatch")
	}
	if len(boxes) == 0 {
		return ""
	}
	if width < 20 {
		width = 60
	}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
	}
	if hi == lo {
		hi = lo + 1
	}
	span := hi - lo
	lo -= span * 0.02
	hi += span * 0.02
	span = hi - lo

	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}

	col := func(v float64) int {
		c := int((v - lo) / span * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var out strings.Builder
	for i, b := range boxes {
		row := make([]rune, width)
		for j := range row {
			row[j] = ' '
		}
		// Whisker span.
		for j := col(b.WhiskerLo); j <= col(b.WhiskerHi); j++ {
			row[j] = '─'
		}
		row[col(b.WhiskerLo)] = '├'
		row[col(b.WhiskerHi)] = '┤'
		// Box.
		q1, q3 := col(b.Q1), col(b.Q3)
		for j := q1; j <= q3; j++ {
			if row[j] == '─' || row[j] == ' ' {
				row[j] = '█'
			}
		}
		row[q1] = '['
		row[q3] = ']'
		// Median.
		row[col(b.Median)] = '╂'
		// Outliers.
		for _, o := range b.Outliers {
			j := col(o)
			if row[j] == ' ' {
				row[j] = '·'
			}
		}
		fmt.Fprintf(&out, "%-*s |%s|\n", labelW, labels[i], string(row))
	}
	// Axis with three ticks.
	axis := make([]rune, width)
	for j := range axis {
		axis[j] = '-'
	}
	fmt.Fprintf(&out, "%-*s +%s+\n", labelW, "", string(axis))
	mid := (lo + hi) / 2
	tick := fmt.Sprintf("%-*s  %-*.1f%*.1f%*s", labelW, "",
		width/2, lo, 0, mid, width-width/2-len(fmt.Sprintf("%.1f", mid)), fmt.Sprintf("%.1f", hi))
	out.WriteString(strings.TrimRight(tick, " ") + " (ms)\n")
	return out.String()
}

// RenderCDF draws an ASCII CDF: one row per decile with a bar whose length
// is proportional to the x position of that quantile within [min,max].
func RenderCDF(label string, c *CDF, width int) string {
	if width < 20 {
		width = 50
	}
	lo := c.Quantile(0)
	hi := c.Quantile(1)
	if hi == lo {
		hi = lo + 1
	}
	var out strings.Builder
	fmt.Fprintf(&out, "%s (x: %.2f .. %.2f ms)\n", label, lo, hi)
	for p := 10; p <= 100; p += 10 {
		q := c.Quantile(float64(p) / 100)
		n := int((q - lo) / (hi - lo) * float64(width))
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&out, "  p%-3d %8.2f |%s\n", p, q, strings.Repeat("#", n))
	}
	return out.String()
}
