package stats

import (
	"strings"
	"testing"
)

func TestRenderBoxesBasic(t *testing.T) {
	boxes := []Box{
		NewBox([]float64{1, 2, 3, 4, 5}),
		NewBox([]float64{10, 20, 30, 40, 100}),
	}
	s := RenderBoxes([]string{"a", "bb"}, boxes, 60)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // 2 boxes + axis + ticks
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	for _, glyph := range []string{"╂", "[", "]", "├", "┤"} {
		if !strings.Contains(s, glyph) {
			t.Fatalf("missing glyph %q:\n%s", glyph, s)
		}
	}
	if !strings.Contains(s, "(ms)") {
		t.Fatal("missing axis unit")
	}
}

func TestRenderBoxesOutliersShown(t *testing.T) {
	b := NewBox([]float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 100})
	s := RenderBoxes([]string{"x"}, []Box{b}, 80)
	if !strings.Contains(s, "·") {
		t.Fatalf("outlier glyph missing:\n%s", s)
	}
}

func TestRenderBoxesConstantSamples(t *testing.T) {
	b := NewBox([]float64{5, 5, 5})
	s := RenderBoxes([]string{"flat"}, []Box{b}, 40)
	if s == "" || !strings.Contains(s, "flat") {
		t.Fatalf("render = %q", s)
	}
}

func TestRenderBoxesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RenderBoxes([]string{"a"}, nil, 40)
}

func TestRenderBoxesEmpty(t *testing.T) {
	if RenderBoxes(nil, nil, 40) != "" {
		t.Fatal("empty input should render nothing")
	}
}

func TestRenderBoxesMedianPosition(t *testing.T) {
	// A median at the far right of the range must land near the end of
	// the row.
	b := NewBox([]float64{0, 99, 100, 100, 100})
	s := RenderBoxes([]string{"m"}, []Box{b}, 100)
	row := strings.Split(s, "\n")[0]
	idx := strings.IndexRune(row, '╂')
	if idx < len(row)/2 {
		t.Fatalf("median glyph at %d, expected right half:\n%s", idx, s)
	}
}

func TestRenderCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	s := RenderCDF("test", c, 40)
	if !strings.Contains(s, "p100") || !strings.Contains(s, "p10 ") {
		t.Fatalf("missing decile rows:\n%s", s)
	}
	// Bars must be monotone non-decreasing in length.
	prev := -1
	for _, line := range strings.Split(s, "\n") {
		if !strings.Contains(line, "|") {
			continue
		}
		n := strings.Count(line, "#")
		if n < prev {
			t.Fatalf("bars not monotone:\n%s", s)
		}
		prev = n
	}
}

func TestRenderCDFDegenerate(t *testing.T) {
	c := NewCDF([]float64{7})
	s := RenderCDF("one", c, 30)
	if s == "" {
		t.Fatal("empty render")
	}
}
